// Dronefollow: the §9 personal-drone workload — a quadrotor follows a
// walking user at a fixed 1.4 m distance using only Chronos range
// estimates and the negative-feedback controller, in a simulated 6 m ×
// 5 m motion-capture room (§12.4).
//
//	go run ./examples/dronefollow
package main

import (
	"fmt"
	"math/rand"

	"chronos"
	"chronos/internal/stats"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	res := chronos.DroneTrack(rng, chronos.DroneSensor{}, chronos.DroneConfig{
		Duration: 45,
		Desired:  1.4,
	})

	fmt.Println("drone following a walking user at 1.4 m (12 Hz control)")
	fmt.Printf("%6s  %-18s  %-18s  %8s\n", "t (s)", "user", "drone", "dist (m)")
	for i := 0; i < len(res.UserPath); i += 36 { // every 3 s
		u, d := res.UserPath[i], res.DronePath[i]
		fmt.Printf("%6.0f  %-18s  %-18s  %8.2f\n", float64(i)/12, u, d, u.Dist(d))
	}

	cm := make([]float64, len(res.Deviations))
	for i, d := range res.Deviations {
		cm[i] = d * 100
	}
	fmt.Printf("\ndeviation from 1.4 m: median %.1f cm, p90 %.1f cm, RMSE %.1f cm\n",
		stats.Median(cm), stats.Percentile(cm, 90), stats.RMSE(cm))
	fmt.Println("(paper Fig. 10a: median ≈4.2 cm with repeated-measurement averaging)")
}
