// Tracking walkthrough: stream Chronos range fixes over a walking target
// and smooth them with the per-device Kalman tracker, then interleave
// sweeps across several devices to see the capacity trade-off.
//
// Sweep by sweep, the incremental estimator folds CSI in band by band on
// the hop protocol's virtual timeline; each completed sweep yields a raw
// range fix that the constant-velocity filter smooths and gates.
//
//	go run ./examples/tracking
//	go run ./examples/tracking -obs    # + live observability walkthrough
//
// With -obs, the run doubles as the observability demo: metric
// recording is enabled (chronos.SetObsEnabled), the same live /metrics
// JSON endpoint the cmd binaries expose via their -metrics flag is
// served on a loopback port and polled once, and the final
// chronos.CaptureObs snapshot — pipeline counters and p50/p99 stage
// latencies — is summarized at the end. The fixes themselves are
// byte-identical either way; instrumentation never changes a result.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"

	"chronos"
	"chronos/internal/obs/obshttp"
)

func main() {
	withObs := flag.Bool("obs", false, "enable metrics, serve+poll a live /metrics endpoint, and print a final snapshot summary")
	flag.Parse()

	var metricsAddr string
	if *withObs {
		// Equivalent to chronos-track's -metrics flag: enables recording
		// and serves JSON /metrics plus pprof for the process lifetime.
		addr, err := obshttp.Serve("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		metricsAddr = addr
		fmt.Printf("observability on: http://%s/metrics\n\n", addr)
	}

	rng := rand.New(rand.NewSource(42))

	// A generated office floor and a 5 GHz-only estimator (fast, quirk-free).
	office := chronos.NewOffice(rng, chronos.OfficeConfig{})
	est := chronos.NewToFEstimator(chronos.ToFConfig{
		Mode: chronos.Bands5GHzOnly, MaxIter: 600,
	})

	// Stream six sweeps over a target walking at 1 m/s.
	res, err := chronos.RunTrackSession(rng, office, est, chronos.TrackSessionConfig{
		Speed:  1.0,
		Sweeps: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("streamed fixes (target walking at 1 m/s):")
	fmt.Println("  t (ms)   raw (m)  smoothed (m)  truth (m)  gate")
	for _, f := range res.Fixes {
		gate := "pass"
		if !f.Accepted {
			gate = "REJECT"
		}
		fmt.Printf("  %6.0f   %6.2f   %6.2f        %6.2f     %s\n",
			f.At.Seconds()*1000, f.Range, f.Smoothed, f.TrueRange, gate)
	}
	fmt.Printf("raw RMSE %.3f m → smoothed RMSE %.3f m (%d fixes, %d gated out)\n\n",
		res.RawRMSE, res.SmoothedRMSE, len(res.Fixes), res.Rejected)

	// Capacity: interleave sweeps across concurrent devices on the
	// single-anchor schedule and watch fix latency stretch.
	fmt.Println("multi-device capacity (3 sweeps per device):")
	for _, n := range []int{1, 4, 8} {
		m := chronos.RunTrackMulti(rng, chronos.TrackMultiConfig{
			Scheduler: chronos.TrackSchedulerConfig{Devices: n, SweepsPerDevice: 3},
			Speed:     0.8,
		})
		s := m.Schedule
		fmt.Printf("  %2d devices: %5.2f fixes/s aggregate, %6.1f ms fix latency, %4.1f%% airtime\n",
			n, s.FixesPerSecond, s.MeanFixLatency().Seconds()*1000, 100*s.Utilization)
	}

	// Batched solving: range four devices through real channel inversion
	// on concurrent goroutines, with one shared coalescer merging their
	// simultaneous solves into batched SolveBatch calls. Fixes are
	// byte-identical to per-session solving — only throughput and the
	// per-fix BatchSize telemetry change.
	co := chronos.NewSolveCoalescer(chronos.SolveCoalescerConfig{MaxBatch: 4})
	m := chronos.RunTrackMulti(rng, chronos.TrackMultiConfig{
		Scheduler: chronos.TrackSchedulerConfig{
			Bands: chronos.Bands5GHz(), Devices: 4, SweepsPerDevice: 2,
		},
		Speed: 0.8,
		Solver: &chronos.TrackMultiSolver{
			Office:    office,
			Estimator: chronos.ToFConfig{Mode: chronos.Bands5GHzOnly, MaxIter: 600, Coalescer: co},
		},
	})
	fixes, batched := 0, 0
	for _, d := range m.Devices {
		for _, f := range d.Fixes {
			fixes++
			if f.BatchSize > 1 {
				batched++
			}
		}
	}
	fmt.Printf("\nsolver-backed ranging, 4 concurrent devices: %d fixes, %d from coalesced batches\n",
		fixes, batched)

	if *withObs {
		// Poll the endpoint once, exactly as an external watcher would...
		resp, err := http.Get("http://" + metricsAddr + "/metrics")
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("\n/metrics serves %d bytes of snapshot JSON; headline:\n", len(body))
		// ...and read the in-process snapshot for the same numbers the
		// cmd binaries' -watch mode prints live.
		s := chronos.CaptureObs()
		fmt.Printf("  %s\n", obshttp.WatchLine(s))
		fmt.Printf("  ndft.solve.requests=%d iterations=%d  tof.alias.refits=%d  hop.hops=%d\n",
			s.Counters["ndft.solve.requests"], s.Counters["ndft.solve.iterations"],
			s.Counters["tof.alias.refits"], s.Counters["hop.hops"])
	}
}
