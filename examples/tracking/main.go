// Tracking walkthrough: stream Chronos range fixes over a walking target
// and smooth them with the per-device Kalman tracker, then interleave
// sweeps across several devices to see the capacity trade-off.
//
// Sweep by sweep, the incremental estimator folds CSI in band by band on
// the hop protocol's virtual timeline; each completed sweep yields a raw
// range fix that the constant-velocity filter smooths and gates.
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"log"
	"math/rand"

	"chronos"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A generated office floor and a 5 GHz-only estimator (fast, quirk-free).
	office := chronos.NewOffice(rng, chronos.OfficeConfig{})
	est := chronos.NewToFEstimator(chronos.ToFConfig{
		Mode: chronos.Bands5GHzOnly, MaxIter: 600,
	})

	// Stream six sweeps over a target walking at 1 m/s.
	res, err := chronos.RunTrackSession(rng, office, est, chronos.TrackSessionConfig{
		Speed:  1.0,
		Sweeps: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("streamed fixes (target walking at 1 m/s):")
	fmt.Println("  t (ms)   raw (m)  smoothed (m)  truth (m)  gate")
	for _, f := range res.Fixes {
		gate := "pass"
		if !f.Accepted {
			gate = "REJECT"
		}
		fmt.Printf("  %6.0f   %6.2f   %6.2f        %6.2f     %s\n",
			f.At.Seconds()*1000, f.Range, f.Smoothed, f.TrueRange, gate)
	}
	fmt.Printf("raw RMSE %.3f m → smoothed RMSE %.3f m (%d fixes, %d gated out)\n\n",
		res.RawRMSE, res.SmoothedRMSE, len(res.Fixes), res.Rejected)

	// Capacity: interleave sweeps across concurrent devices on the
	// single-anchor schedule and watch fix latency stretch.
	fmt.Println("multi-device capacity (3 sweeps per device):")
	for _, n := range []int{1, 4, 8} {
		m := chronos.RunTrackMulti(rng, chronos.TrackMultiConfig{
			Scheduler: chronos.TrackSchedulerConfig{Devices: n, SweepsPerDevice: 3},
			Speed:     0.8,
		})
		s := m.Schedule
		fmt.Printf("  %2d devices: %5.2f fixes/s aggregate, %6.1f ms fix latency, %4.1f%% airtime\n",
			n, s.FixesPerSecond, s.MeanFixLatency().Seconds()*1000, 100*s.Utilization)
	}

	// Batched solving: range four devices through real channel inversion
	// on concurrent goroutines, with one shared coalescer merging their
	// simultaneous solves into batched SolveBatch calls. Fixes are
	// byte-identical to per-session solving — only throughput and the
	// per-fix BatchSize telemetry change.
	co := chronos.NewSolveCoalescer(chronos.SolveCoalescerConfig{MaxBatch: 4})
	m := chronos.RunTrackMulti(rng, chronos.TrackMultiConfig{
		Scheduler: chronos.TrackSchedulerConfig{
			Bands: chronos.Bands5GHz(), Devices: 4, SweepsPerDevice: 2,
		},
		Speed: 0.8,
		Solver: &chronos.TrackMultiSolver{
			Office:    office,
			Estimator: chronos.ToFConfig{Mode: chronos.Bands5GHzOnly, MaxIter: 600, Coalescer: co},
		},
	})
	fixes, batched := 0, 0
	for _, d := range m.Devices {
		for _, f := range d.Fixes {
			fixes++
			if f.BatchSize > 1 {
				batched++
			}
		}
	}
	fmt.Printf("\nsolver-backed ranging, 4 concurrent devices: %d fixes, %d from coalesced batches\n",
		fixes, batched)
}
