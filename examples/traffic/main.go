// Traffic: the §10/§12.3 workload — what one Chronos localization sweep
// does to an access point's live traffic. Client-1 streams video and runs
// a TCP download; client-2 asks the AP for localization at t = 6 s,
// pulling the AP off-channel for one band sweep.
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"chronos"
	"chronos/internal/netsim"
)

func main() {
	rng := rand.New(rand.NewSource(5))

	// How long does one sweep take on this link? Run the real hop
	// protocol in virtual time.
	sweep := chronos.HopSweep(rng, chronos.USBands(), chronos.HopConfig{})
	fmt.Printf("band sweep over %d bands: %.0f ms, %d announce frames, %d fail-safes\n\n",
		len(sweep.Visits), sweep.Duration.Seconds()*1000, sweep.Announces, sweep.FailSafes)

	outage := netsim.Outage{Start: 6 * time.Second, Duration: sweep.Duration}

	// TCP flow through the AP.
	samples := netsim.TCPTrace(rng, netsim.TCPConfig{}, 15*time.Second, time.Second, []netsim.Outage{outage})
	fmt.Println("TCP throughput (1 s windows):")
	for _, s := range samples {
		marker := ""
		if s.At > outage.Start && s.At <= outage.Start+time.Second {
			marker = "  <- localization sweep"
		}
		fmt.Printf("  t=%2.0fs  %6.2f Mbit/s%s\n", s.At.Seconds(), s.Value/1e6, marker)
	}
	fmt.Printf("dip: %.1f%% (paper Fig. 9c: ≈6.5%%)\n\n", netsim.ThroughputDipPercent(samples, outage))

	// Video stream with a playout buffer.
	tr := netsim.Video(netsim.VideoConfig{}, 12*time.Second, []netsim.Outage{outage})
	fmt.Printf("video: stalls=%d (paper Fig. 9b: 0 — the buffer rides out the sweep)\n\n", tr.Stalls)

	// Airtime is one cost of serving localization; the other is the AP's
	// solver compute. When several clients ask at once, their inversions
	// share one plan — and SolveBatch amortizes the dictionary's memory
	// traffic across all of them with byte-identical results.
	var freqs []float64
	for _, b := range chronos.USBands() {
		freqs = append(freqs, b.Center)
	}
	plan, err := chronos.NewSolverPlan(freqs, chronos.SolverTauGrid(2*60e-9, 2*0.1e-9))
	if err != nil {
		panic(err)
	}
	reqs := make([]chronos.SolveRequest, 8)
	for i := range reqs {
		tau := (8 + 3*float64(i)) * 1e-9
		h := make([]complex128, len(freqs))
		for j, f := range freqs {
			// One direct path per client, h̃² delay domain.
			ph := -2 * 2 * math.Pi * f * tau
			h[j] = complex(math.Cos(ph), math.Sin(ph))
		}
		reqs[i] = chronos.SolveRequest{H: h, InvertOptions: chronos.SolveOptions{MaxIter: 300}}
	}
	t0 := time.Now()
	for i := range reqs {
		if _, err := plan.Solve(reqs[i]); err != nil {
			panic(err)
		}
	}
	seq := time.Since(t0)
	t0 = time.Now()
	if err := plan.SolveBatch(reqs); err != nil {
		panic(err)
	}
	batch := time.Since(t0)
	fmt.Printf("AP solver compute for 8 queued clients: %.1f ms sequential, %.1f ms batched (%.1f×)\n",
		seq.Seconds()*1000, batch.Seconds()*1000, seq.Seconds()/batch.Seconds())
}
