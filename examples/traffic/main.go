// Traffic: the §10/§12.3 workload — what one Chronos localization sweep
// does to an access point's live traffic. Client-1 streams video and runs
// a TCP download; client-2 asks the AP for localization at t = 6 s,
// pulling the AP off-channel for one band sweep.
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"math/rand"
	"time"

	"chronos"
	"chronos/internal/netsim"
)

func main() {
	rng := rand.New(rand.NewSource(5))

	// How long does one sweep take on this link? Run the real hop
	// protocol in virtual time.
	sweep := chronos.HopSweep(rng, chronos.USBands(), chronos.HopConfig{})
	fmt.Printf("band sweep over %d bands: %.0f ms, %d announce frames, %d fail-safes\n\n",
		len(sweep.Visits), sweep.Duration.Seconds()*1000, sweep.Announces, sweep.FailSafes)

	outage := netsim.Outage{Start: 6 * time.Second, Duration: sweep.Duration}

	// TCP flow through the AP.
	samples := netsim.TCPTrace(rng, netsim.TCPConfig{}, 15*time.Second, time.Second, []netsim.Outage{outage})
	fmt.Println("TCP throughput (1 s windows):")
	for _, s := range samples {
		marker := ""
		if s.At > outage.Start && s.At <= outage.Start+time.Second {
			marker = "  <- localization sweep"
		}
		fmt.Printf("  t=%2.0fs  %6.2f Mbit/s%s\n", s.At.Seconds(), s.Value/1e6, marker)
	}
	fmt.Printf("dip: %.1f%% (paper Fig. 9c: ≈6.5%%)\n\n", netsim.ThroughputDipPercent(samples, outage))

	// Video stream with a playout buffer.
	tr := netsim.Video(netsim.VideoConfig{}, 12*time.Second, []netsim.Outage{outage})
	fmt.Printf("video: stalls=%d (paper Fig. 9b: 0 — the buffer rides out the sweep)\n", tr.Stalls)
}
