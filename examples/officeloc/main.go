// Officeloc: the §12.1–§12.2 workload — device-to-device localization on
// a simulated 20 m × 20 m office floor. A 3-antenna receiver locates a
// single-antenna transmitter with no infrastructure support: per-antenna
// time of flight → distances → outlier rejection → least squares.
//
//	go run ./examples/officeloc
package main

import (
	"fmt"
	"log"
	"math/rand"

	"chronos"
	"chronos/internal/csi"
	"chronos/internal/sim"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	office := chronos.NewOffice(rng, chronos.OfficeConfig{})
	bands := chronos.Bands5GHz()

	// A laptop-class receiver: 3 antennas spread ~30 cm apart in a
	// triangle (non-collinear, as §8 requires for a unique fix). All
	// chains share one card, so each forward packet is measured by every
	// antenna with the same detection delay and CFO.
	array := chronos.TriangleArray(0.30)
	localizer := chronos.NewLocalizer(array, chronos.ToFConfig{Mode: chronos.Bands5GHzOnly, MaxIter: 1000})

	tx := chronos.NewRadio(rng)
	tx.Quirk24 = false
	rx := chronos.NewRadio(rng)
	rx.Quirk24 = false
	link := &csi.ArrayLink{TX: tx, RX: rx, SNRdB: 26}

	rxCenter := office.Locations[0]
	place := func(txPos chronos.Point, nlos bool) {
		ap := sim.AntennaPlacement{TX: txPos, RXCenter: rxCenter, Array: array, NLOS: nlos}
		link.Channels = office.AntennaChannels(ap, 5.5e9)
	}

	// Calibrate each antenna chain once at a known geometry: a marked
	// spot a few meters from the receiver (close enough for high SNR).
	calTx := office.Locations[1]
	for _, l := range office.Locations[1:] {
		if d := l.Dist(rxCenter); d > 2 && d < 6 {
			calTx = l
			break
		}
	}
	place(calTx, false)
	trueDist := make([]float64, 3)
	for i, ant := range array.At(rxCenter) {
		trueDist[i] = calTx.Dist(ant)
	}
	if err := localizer.CalibrateArray(rng, bands, link, trueDist, 3); err != nil {
		log.Fatal(err)
	}
	fmt.Println("calibration complete: 3 antenna chains")

	// Locate five transmitter placements within the evaluation envelope
	// (≤ 10 m from the receiver, as in Fig. 6's pairings).
	var targets []chronos.Point
	for _, l := range office.Locations[2:] {
		if d := l.Dist(rxCenter); d > 1.5 && d <= 10 && len(targets) < 5 {
			targets = append(targets, l)
		}
	}
	for trial, target := range targets {
		nlos := trial%2 == 1
		place(target, nlos)
		fix, err := localizer.LocateArray(bands, link.Sweep(rng, bands, 3, 2.4e-3))
		if err != nil {
			fmt.Printf("trial %d: %v\n", trial, err)
			continue
		}
		truthLocal := target.Sub(rxCenter)
		cls := "LOS"
		if nlos {
			cls = "NLOS"
		}
		fmt.Printf("trial %d (%s): fix %s, truth %s, error %.2f m (%d antennas kept)\n",
			trial, cls, fix.Position, truthLocal, fix.Position.Dist(truthLocal), len(fix.KeptAntennas))
	}
}
