// Quickstart: measure the distance between two simulated Wi-Fi devices
// with the Chronos time-of-flight pipeline.
//
// The flow mirrors real deployment: pair two radios, calibrate the
// constant hardware offset once at a known distance, then range freely.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"chronos"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Two commodity 3-antenna cards; we use one antenna on each. The
	// radios carry realistic impairments: packet-detection delay,
	// residual CFO, 8-bit CSI quantization, hardware chain delays.
	tx := chronos.NewRadio(rng)
	rx := chronos.NewRadio(rng)
	tx.Quirk24, rx.Quirk24 = false, false // clean 5 GHz-only setup

	// The devices sit 4.2 m apart with one wall reflection.
	direct := 4.2 / chronos.SpeedOfLight
	link := &chronos.Link{
		TX: tx, RX: rx,
		Channel: chronos.NewChannel([]chronos.Path{
			{Delay: direct, Gain: 1.0},
			{Delay: direct + 9e-9, Gain: 0.4}, // a bounce off a wall
		}),
		SNRdB: 28,
	}

	bands := chronos.Bands5GHz()
	est := chronos.NewToFEstimator(chronos.ToFConfig{Mode: chronos.Bands5GHzOnly})

	// One-time calibration: place the devices at a known 4.2 m and
	// record the constant offset (hardware chain delays).
	calSweep := link.Sweep(rng, bands, 3, 2.4e-3)
	offset, err := chronos.CalibrateToF(est, bands, calSweep, 4.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated hardware offset: %.2f ns\n", offset*1e9)

	// Measure five times.
	for i := 0; i < 5; i++ {
		d, err := chronos.MeasureDistance(rng, link, est, bands, offset)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("measurement %d: %.3f m (truth 4.200 m, error %+.1f cm)\n",
			i+1, d, (d-4.2)*100)
	}
}
