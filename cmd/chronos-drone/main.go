// Command chronos-drone runs the §9/§12.4 personal-drone simulation: a
// quadrotor holds a fixed distance to a walking user using Chronos range
// estimates and a negative-feedback controller, and the run's deviation
// statistics and trajectory samples are printed.
//
//	chronos-drone -duration 60 -desired 1.4
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"chronos/internal/drone"
	"chronos/internal/stats"
)

func main() {
	duration := flag.Float64("duration", 60, "flight duration (s)")
	desired := flag.Float64("desired", 1.4, "distance to hold (m)")
	seed := flag.Int64("seed", 1, "simulation seed")
	trace := flag.Bool("trace", false, "print the sampled trajectory")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	res := drone.Track(rng, drone.StatSensor{}, drone.TrackConfig{
		Duration: *duration,
		Desired:  *desired,
	})

	cm := make([]float64, len(res.Deviations))
	for i, d := range res.Deviations {
		cm[i] = d * 100
	}
	fmt.Printf("flight %.0f s at %.2f m target (12 Hz control)\n\n", *duration, *desired)
	fmt.Printf("deviation from target: median %.1f cm, p90 %.1f cm, RMSE %.1f cm\n",
		stats.Median(cm), stats.Percentile(cm, 90), stats.RMSE(cm))

	if *trace {
		fmt.Printf("\n%6s  %-18s  %-18s  %8s\n", "t (s)", "user", "drone", "dist (m)")
		for i := 0; i < len(res.UserPath); i += 24 { // every 2 s
			u, d := res.UserPath[i], res.DronePath[i]
			fmt.Printf("%6.1f  %-18s  %-18s  %8.2f\n", float64(i)/12, u, d, u.Dist(d))
		}
	}
}
