// Command chronos-bench regenerates every table and figure of the paper's
// evaluation (§12) from the simulated testbed and prints them as text
// tables. Each figure can be selected individually:
//
//	chronos-bench              # run everything
//	chronos-bench -fig 7a      # one figure
//	chronos-bench -ablate cfo  # one ablation study
//	chronos-bench -trials 50   # scale campaign sizes
//	chronos-bench -workers 4   # bound the trial worker pool (0 = all cores)
//	chronos-bench -json        # machine-readable output (feeds BENCH_*.json)
//
// Campaign trials are seeded per trial, so tables are byte-identical for
// a given -seed regardless of -workers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"chronos/internal/exp"
)

var figures = []struct {
	key string
	fn  func(exp.Options) *exp.Result
}{
	{"3", exp.Fig3},
	{"4", exp.Fig4},
	{"7a", exp.Fig7a},
	{"7b", exp.Fig7b},
	{"7c", exp.Fig7c},
	{"8a", exp.Fig8a},
	{"8b", exp.Fig8b},
	{"8c", exp.Fig8c},
	{"9a", exp.Fig9a},
	{"9b", exp.Fig9b},
	{"9c", exp.Fig9c},
	{"10a", exp.Fig10a},
	{"10b", exp.Fig10b},
}

var ablations = []struct {
	key string
	fn  func(exp.Options) *exp.Result
}{
	{"bands", exp.AblationBands},
	{"delay", exp.AblationDelay},
	{"cfo", exp.AblationCFO},
	{"sparsity", exp.AblationSparsity},
	{"separation", exp.AblationSeparation},
}

func main() {
	fig := flag.String("fig", "", "figure to regenerate (3,4,7a,7b,7c,8a,8b,8c,9a,9b,9c,10a,10b); empty = all")
	ablate := flag.String("ablate", "", "ablation to run (bands,delay,cfo,sparsity,separation, or 'all')")
	trials := flag.Int("trials", 0, "trials per condition (0 = experiment default)")
	seed := flag.Int64("seed", 1, "campaign seed")
	workers := flag.Int("workers", 0, "campaign worker-pool size (0 = all cores); tables are identical for a given -seed at any worker count")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of text tables")
	flag.Parse()

	opts := exp.Options{Seed: *seed, Trials: *trials, Workers: *workers}

	// Text mode streams each table as its campaign finishes (full runs
	// take minutes); JSON buffers so the output is one valid array.
	var results []*exp.Result
	collect := func(r *exp.Result) {
		if *asJSON {
			results = append(results, r)
			return
		}
		fmt.Println(r)
	}

	ran := false
	if *ablate != "" {
		for _, a := range ablations {
			if *ablate == "all" || a.key == *ablate {
				collect(a.fn(opts))
				ran = true
			}
		}
		if !ran {
			fmt.Fprintf(os.Stderr, "unknown ablation %q (have: %s, all)\n", *ablate, keys(len(ablations), func(i int) string { return ablations[i].key }))
			os.Exit(2)
		}
	} else {
		for _, f := range figures {
			if *fig == "" || f.key == *fig {
				collect(f.fn(opts))
				ran = true
			}
		}
		if !ran {
			fmt.Fprintf(os.Stderr, "unknown figure %q (have: %s)\n", *fig, keys(len(figures), func(i int) string { return figures[i].key }))
			os.Exit(2)
		}
	}

	if *asJSON {
		if err := exp.WriteJSON(os.Stdout, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func keys(n int, get func(int) string) string {
	out := make([]string, n)
	for i := range out {
		out[i] = get(i)
	}
	return strings.Join(out, ",")
}
