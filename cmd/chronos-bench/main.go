// Command chronos-bench regenerates every table and figure of the paper's
// evaluation (§12) from the simulated testbed and prints them as text
// tables. Each figure can be selected individually:
//
//	chronos-bench              # run everything
//	chronos-bench -fig 7a      # one figure
//	chronos-bench -ablate cfo  # one ablation study
//	chronos-bench -trials 50   # scale campaign sizes
//	chronos-bench -workers 4   # bound the trial worker pool (0 = all cores)
//	chronos-bench -json        # machine-readable output (feeds BENCH_*.json)
//
// Campaign trials are seeded per trial, so tables are byte-identical for
// a given -seed regardless of -workers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"chronos/internal/exp"
)

var figures = []struct {
	key string
	fn  func(exp.Options) *exp.Result
	// explicitOnly excludes a pseudo-figure from the empty -fig "run
	// everything" loop: the default invocation must keep the documented
	// byte-identical-per-seed contract, which wall-clock columns break.
	explicitOnly bool
}{
	{key: "3", fn: exp.Fig3},
	{key: "4", fn: exp.Fig4},
	{key: "7a", fn: exp.Fig7a},
	{key: "7b", fn: exp.Fig7b},
	{key: "7c", fn: exp.Fig7c},
	{key: "8a", fn: exp.Fig8a},
	{key: "8b", fn: exp.Fig8b},
	{key: "8c", fn: exp.Fig8c},
	{key: "9a", fn: exp.Fig9a},
	{key: "9b", fn: exp.Fig9b},
	{key: "9c", fn: exp.Fig9c},
	{key: "10a", fn: exp.Fig10a},
	{key: "10b", fn: exp.Fig10b},
	// perf is not a paper figure: it snapshots the solver core's cold vs
	// warm-started iteration counts and latency (the BENCH_baseline.json
	// trajectory). Its µs columns are wall-clock, so it only runs when
	// requested explicitly.
	{key: "perf", fn: exp.PerfSolver, explicitOnly: true},
	// alias is the alias-resolution ablation (vertex- vs family-ranked
	// peaks); aliasperf snapshots the alias-refit cost cold vs
	// warm-started in deterministic Work units (both feed BENCH_4.json).
	// They are deterministic per seed but not paper figures, so like perf
	// they run only when requested.
	{key: "alias", fn: exp.AliasRanking, explicitOnly: true},
	{key: "aliasperf", fn: exp.PerfAlias, explicitOnly: true},
	// converge is the noise-adaptive convergence campaign (PR 5): the
	// duality-gap stop vs the fixed-tolerance ablation across SNR, the
	// office accuracy guard, the colliding-families warm-refit fixture,
	// and streaming-session convergence telemetry — all in deterministic
	// units, snapshotted into BENCH_5.json.
	{key: "converge", fn: exp.PerfConverge, explicitOnly: true},
	// batch is the batched cross-session solver campaign (PR 6):
	// SolveBatch aggregate throughput vs per-session Solve at B ∈
	// {1..16} on the service-scale subcarrier geometry, with per-request
	// byte-identity asserted. Its solves/s columns are wall-clock (the
	// speedup is a same-process ratio and the identity metrics are
	// exact), so like perf it runs only when requested, snapshotted into
	// BENCH_6.json.
	{key: "batch", fn: exp.PerfBatch, explicitOnly: true},
	// service is the always-on daemon capacity campaign (PR 9): a
	// virtual-time chronos-svc carrying a 10k-device stat fleet plus a
	// full-pipeline cohort through the shared coalescer, reporting
	// concurrent tracked devices, sustained fix throughput, p99 fix
	// latency, and drain time (BENCH_8.json). Wall-clock columns, so
	// explicit-only like perf; servicescaled is the CI-sized variant.
	{key: "service", fn: exp.PerfService, explicitOnly: true},
	{key: "servicescaled", fn: exp.PerfServiceScaled, explicitOnly: true},
	// pipeline is the staged-pipeline latency-isolation campaign (PR 10):
	// a latency-class stream under a bulk-class swarm, run through the
	// classic inline shard sweeps and again through the disaggregated
	// ingest/solve/track pools with the class queue and gap-boundary
	// preemption, comparing per-class p99 inter-fix gaps (BENCH_9.json).
	// Wall-clock columns, so explicit-only like perf.
	{key: "pipeline", fn: exp.PerfPipeline, explicitOnly: true},
}

var ablations = []struct {
	key string
	fn  func(exp.Options) *exp.Result
}{
	{key: "bands", fn: exp.AblationBands},
	{key: "delay", fn: exp.AblationDelay},
	{key: "cfo", fn: exp.AblationCFO},
	{key: "sparsity", fn: exp.AblationSparsity},
	{key: "separation", fn: exp.AblationSeparation},
}

func main() {
	fig := flag.String("fig", "", "comma-separated figures to regenerate (3,4,7a,7b,7c,8a,8b,8c,9a,9b,9c,10a,10b, plus the pseudo-figures perf, alias, aliasperf, converge, batch); empty = all paper figures (pseudo-figures run only when requested)")
	ablate := flag.String("ablate", "", "ablation to run (bands,delay,cfo,sparsity,separation, or 'all')")
	trials := flag.Int("trials", 0, "trials per condition (0 = experiment default)")
	seed := flag.Int64("seed", 1, "campaign seed")
	workers := flag.Int("workers", 0, "campaign worker-pool size (0 = all cores); tables are identical for a given -seed at any worker count")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of text tables")
	flag.Parse()

	opts := exp.Options{Seed: *seed, Trials: *trials, Workers: *workers}

	// Text mode streams each table as its campaign finishes (full runs
	// take minutes); JSON buffers so the output is one valid array.
	var results []*exp.Result
	collect := func(r *exp.Result) {
		if *asJSON {
			results = append(results, r)
			return
		}
		fmt.Println(r)
	}

	ran := false
	if *ablate != "" {
		for _, a := range ablations {
			if *ablate == "all" || a.key == *ablate {
				collect(a.fn(opts))
				ran = true
			}
		}
		if !ran {
			fmt.Fprintf(os.Stderr, "unknown ablation %q (have: %s, all)\n", *ablate, keys(len(ablations), func(i int) string { return ablations[i].key }))
			os.Exit(2)
		}
	} else {
		// -fig accepts a comma-separated list so one invocation can emit
		// a combined JSON snapshot (e.g. -fig perf,alias,aliasperf -json
		// regenerates BENCH_4.json as a single array). Keys are validated
		// up front: campaigns take minutes, and a typo must not burn a
		// run before erroring (or discard buffered -json results).
		known := map[string]bool{}
		for _, f := range figures {
			known[f.key] = true
		}
		want := map[string]bool{}
		var unknown []string
		for _, k := range strings.Split(*fig, ",") {
			if k = strings.TrimSpace(k); k != "" {
				if !known[k] {
					unknown = append(unknown, k)
				}
				want[k] = true
			}
		}
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "unknown figure(s) %q (have: %s)\n", strings.Join(unknown, ","), keys(len(figures), func(i int) string { return figures[i].key }))
			os.Exit(2)
		}
		if len(want) == 0 && strings.TrimSpace(*fig) != "" {
			// A -fig of only commas/whitespace is a typo, not a request
			// to run the full multi-minute sweep.
			fmt.Fprintf(os.Stderr, "no figure selected by -fig %q (have: %s)\n", *fig, keys(len(figures), func(i int) string { return figures[i].key }))
			os.Exit(2)
		}
		runAll := len(want) == 0
		for _, f := range figures {
			if want[f.key] || (runAll && !f.explicitOnly) {
				collect(f.fn(opts))
				ran = true
			}
		}
		if !ran {
			fmt.Fprintf(os.Stderr, "no figure selected by %q (have: %s)\n", *fig, keys(len(figures), func(i int) string { return figures[i].key }))
			os.Exit(2)
		}
	}

	if *asJSON {
		if err := exp.WriteJSON(os.Stdout, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func keys(n int, get func(int) string) string {
	out := make([]string, n)
	for i := range out {
		out[i] = get(i)
	}
	return strings.Join(out, ",")
}
