// Command chronos-sim runs a configurable end-to-end Chronos experiment:
// it generates an office floor, places a device pair, sweeps the Wi-Fi
// bands, and prints per-trial time-of-flight and distance estimates
// against ground truth.
//
//	chronos-sim -trials 10 -nlos -maxdist 12
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"chronos/internal/sim"
	"chronos/internal/stats"
	"chronos/internal/tof"
	"chronos/internal/wifi"
)

func main() {
	trials := flag.Int("trials", 10, "number of random placements")
	nlos := flag.Bool("nlos", false, "non-line-of-sight placements")
	maxDist := flag.Float64("maxdist", 15, "maximum device separation (m)")
	seed := flag.Int64("seed", 1, "simulation seed")
	mode := flag.String("mode", "fused", "band mode: fused, 5ghz, 24ghz, coherent")
	flag.Parse()

	cfg := tof.Config{MaxIter: 1200}
	switch *mode {
	case "fused":
		cfg.Mode, cfg.Quirk24 = tof.BandsFused, true
	case "5ghz":
		cfg.Mode = tof.Bands5GHzOnly
	case "24ghz":
		cfg.Mode, cfg.Quirk24 = tof.Bands24Only, true
	case "coherent":
		cfg.Mode = tof.BandsAllCoherent
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	quirk := cfg.Quirk24

	rng := rand.New(rand.NewSource(*seed))
	office := sim.NewOffice(rng, sim.OfficeConfig{})
	var bands []wifi.Band
	switch cfg.Mode {
	case tof.Bands5GHzOnly:
		bands = wifi.Bands5GHz()
	case tof.Bands24Only:
		bands = wifi.Bands24GHz()
	default:
		bands = wifi.USBands()
	}
	est := tof.NewEstimator(cfg)

	fmt.Printf("office 20x20 m, %d placements, nlos=%v, mode=%s, %d bands\n\n",
		*trials, *nlos, *mode, len(bands))
	fmt.Printf("%5s  %9s  %9s  %9s  %9s\n", "trial", "true (m)", "est (m)", "err (cm)", "err (ns)")

	var errsNs []float64
	for t := 0; t < *trials; t++ {
		p := office.RandomPlacement(rng, *maxDist, *nlos)
		link := office.NewLink(rng, p, sim.LinkConfig{Quirk: quirk})

		// One-time device-pair calibration at a known reference spot.
		calP := office.RandomPlacement(rng, 8, false)
		link.Channel = office.Channel(calP, 5.5e9)
		offset, err := tof.Calibrate(est, bands, link.Sweep(rng, bands, 3, 2.4e-3), calP.TrueDistance())
		if err != nil {
			fmt.Printf("%5d  calibration failed: %v\n", t, err)
			continue
		}

		link.Channel = office.Channel(p, 5.5e9)
		r, err := est.Estimate(bands, link.Sweep(rng, bands, 3, 2.4e-3))
		if err != nil {
			fmt.Printf("%5d  estimate failed: %v\n", t, err)
			continue
		}
		tofSec := r.ToF - offset
		estDist := tofSec * wifi.SpeedOfLight
		errNs := (tofSec - p.TrueToF()) * 1e9
		if errNs < 0 {
			errNs = -errNs
		}
		errsNs = append(errsNs, errNs)
		fmt.Printf("%5d  %9.3f  %9.3f  %9.1f  %9.3f\n",
			t, p.TrueDistance(), estDist, errNs*1e-9*wifi.SpeedOfLight*100, errNs)
	}
	if len(errsNs) > 0 {
		fmt.Printf("\nmedian error: %.3f ns (%.1f cm), p95: %.3f ns\n",
			stats.Median(errsNs), stats.Median(errsNs)*1e-9*wifi.SpeedOfLight*100,
			stats.Percentile(errsNs, 95))
	}
}
