// Command chronos-track runs the streaming multi-device tracking
// campaigns built on internal/track: tracking error against target
// speed, fix latency as bands stream into the incremental estimator, and
// capacity against concurrent tracked clients.
//
//	chronos-track                    # run every tracking campaign
//	chronos-track -campaign speed    # one campaign (speed,latency,capacity)
//	chronos-track -trials 8 -seed 7  # scale and reseed
//	chronos-track -workers 4         # bound the trial worker pool
//	chronos-track -json              # machine-readable output
//	chronos-track -metrics :6060     # live /metrics + pprof endpoint
//	chronos-track -watch 1s          # live fix-rate/p99 lines on stderr
//
// Campaign trials are seeded per trial, so tables are byte-identical for
// a given -seed regardless of -workers. -metrics and -watch enable the
// observability layer (instrumentation records nothing without them);
// -json with either set embeds the obs snapshot in the output, and
// -linger keeps the endpoint serving after the campaigns finish so a
// poller can scrape the final state.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chronos/internal/exp"
	"chronos/internal/obs"
	"chronos/internal/obs/obshttp"
)

var campaigns = []struct {
	key string
	fn  func(exp.Options) *exp.Result
}{
	{"speed", exp.TrackSpeed},
	{"latency", exp.TrackLatency},
	{"capacity", exp.TrackCapacity},
}

func main() {
	campaign := flag.String("campaign", "", "campaign to run (speed,latency,capacity); empty = all")
	trials := flag.Int("trials", 0, "trials per condition (0 = campaign default)")
	seed := flag.Int64("seed", 1, "campaign seed")
	workers := flag.Int("workers", 0, "campaign worker-pool size (0 = all cores)")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of text tables")
	metrics := flag.String("metrics", "", "serve JSON /metrics and pprof on this address (e.g. :6060)")
	watch := flag.Duration("watch", 0, "print a live fix-rate/p99 line to stderr at this interval")
	linger := flag.Duration("linger", 0, "keep the -metrics endpoint serving this long after campaigns finish")
	flag.Parse()

	if *metrics != "" {
		addr, err := obshttp.Serve(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", addr)
	}
	if *watch > 0 {
		obs.SetEnabled(true)
		stop := make(chan struct{})
		defer close(stop)
		go obshttp.Watch(*watch, stop, func(line string) {
			fmt.Fprintln(os.Stderr, line)
		})
	}

	opts := exp.Options{Seed: *seed, Trials: *trials, Workers: *workers}

	var results []*exp.Result
	for _, c := range campaigns {
		if *campaign == "" || c.key == *campaign {
			results = append(results, c.fn(opts))
		}
	}
	if len(results) == 0 {
		keys := make([]string, len(campaigns))
		for i, c := range campaigns {
			keys[i] = c.key
		}
		fmt.Fprintf(os.Stderr, "unknown campaign %q (have: %s)\n", *campaign, strings.Join(keys, ","))
		os.Exit(2)
	}

	if *asJSON {
		if err := exp.WriteJSON(os.Stdout, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		for _, r := range results {
			fmt.Println(r)
		}
	}
	if *metrics != "" && *linger > 0 {
		// Hold the endpoint open so an external poller (the CI smoke, a
		// curious operator) can scrape the finished campaign's snapshot.
		time.Sleep(*linger)
	}
}
