// Command chronos-traffic runs the §12.3 network-impact experiment: an
// access point serving a client goes off-channel for one localization
// sweep, and the effect on a TCP flow and a buffered video stream is
// reported (Fig. 9b/9c).
//
//	chronos-traffic -at 6 -sweeps 1
//	chronos-traffic -metrics :6060   # live /metrics + pprof endpoint
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"chronos/internal/hop"
	"chronos/internal/netsim"
	"chronos/internal/obs/obshttp"
	"chronos/internal/wifi"
)

func main() {
	at := flag.Float64("at", 6, "localization request time (s)")
	sweeps := flag.Int("sweeps", 1, "number of back-to-back sweeps requested")
	seed := flag.Int64("seed", 1, "simulation seed")
	metrics := flag.String("metrics", "", "serve JSON /metrics and pprof on this address (e.g. :6060)")
	linger := flag.Duration("linger", 0, "keep the -metrics endpoint serving this long after the report")
	flag.Parse()

	if *metrics != "" {
		addr, err := obshttp.Serve(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", addr)
	}

	rng := rand.New(rand.NewSource(*seed))

	// How long is the AP absent? One hop-protocol sweep per request.
	var outages []netsim.Outage
	start := time.Duration(*at * float64(time.Second))
	var total time.Duration
	for i := 0; i < *sweeps; i++ {
		sw := hop.Sweep(rng, wifi.USBands(), hop.Config{})
		outages = append(outages, netsim.Outage{Start: start + total, Duration: sw.Duration})
		total += sw.Duration
	}
	fmt.Printf("AP off-channel for %.0f ms starting at t=%.1f s (%d sweep(s))\n\n",
		total.Seconds()*1000, *at, *sweeps)

	// TCP flow.
	samples := netsim.TCPTrace(rng, netsim.TCPConfig{}, 15*time.Second, time.Second, outages)
	fmt.Println("TCP throughput (1 s windows):")
	for _, s := range samples {
		bar := ""
		for i := 0; i < int(s.Value/1e6); i++ {
			bar += "#"
		}
		fmt.Printf("  t=%2.0fs  %6.2f Mbit/s  %s\n", s.At.Seconds(), s.Value/1e6, bar)
	}
	dip := netsim.ThroughputDipPercent(samples, outages[0])
	fmt.Printf("throughput dip during localization: %.1f%%\n\n", dip)

	// Video stream.
	tr := netsim.Video(netsim.VideoConfig{}, 12*time.Second, outages)
	fmt.Printf("video stream: %d stall(s), %.0f ms stalled\n", tr.Stalls, tr.StallTime.Seconds()*1000)
	last := tr.Downloaded[len(tr.Downloaded)-1]
	lastP := tr.Played[len(tr.Played)-1]
	fmt.Printf("downloaded %.1f MB, played %.1f MB, final buffer %.0f KB\n",
		last.Value/1e6, lastP.Value/1e6, (last.Value-lastP.Value)/1e3)

	if *metrics != "" && *linger > 0 {
		time.Sleep(*linger)
	}
}
