// Command chronos-svc is the always-on localization daemon: N worker
// shards continuously tracking every attached device through the full
// Chronos pipeline (or the statistical ranging model at fleet scale),
// with the internal/obs layer as the management surface.
//
//	chronos-svc                          # 4 shards, synthetic demo fleet, wall time
//	chronos-svc -shards 8 -devices 16    # full-pipeline fleet size
//	chronos-svc -stat-devices 5000      # statistical ranging fleet size
//	chronos-svc -pipeline                # staged ingest/solve/track worker pools
//	chronos-svc -bulk-devices 24         # bulk-class full devices (yield to latency class)
//	chronos-svc -virtual                 # virtual time (as fast as the host allows)
//	chronos-svc -metrics :6060           # REQUIRED for observability: /metrics + pprof
//	chronos-svc -watch 1s                # live fix-rate line on stderr
//	chronos-svc -duration 30s            # run bounded, then drain (0 = until signal)
//	chronos-svc -drain-timeout 10s       # graceful-drain bound
//	chronos-svc -json                    # final drain snapshot as JSON on stdout
//
// The daemon runs until -duration elapses or SIGINT/SIGTERM arrives,
// then drains gracefully: admissions stop, in-flight solves flush
// through the coalescer, every session retires with its partial
// results, and the final metrics snapshot is reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chronos/internal/obs"
	"chronos/internal/obs/obshttp"
	"chronos/internal/sim"
	"chronos/internal/svc"
	"chronos/internal/tof"
	"chronos/internal/track"
)

func main() {
	shards := flag.Int("shards", 4, "worker-shard count (devices hash to shards by ID)")
	devices := flag.Int("devices", 4, "latency-class full-pipeline devices in the synthetic fleet")
	bulkDevices := flag.Int("bulk-devices", 0, "bulk-class full-pipeline devices in the synthetic fleet")
	statDevices := flag.Int("stat-devices", 64, "statistical ranging devices in the synthetic fleet")
	pipeline := flag.Bool("pipeline", false, "run sweeps through the staged pipeline (ingest/solve/track pools) instead of inline on shards")
	preempt := flag.Bool("preempt", true, "with -pipeline: latency-class work preempts in-flight bulk solves at gap checks")
	speed := flag.Float64("speed", 1.0, "device walk speed in m/s")
	sweeps := flag.Int("sweeps", -1, "full sweeps per device (-1 = track until drain)")
	seed := flag.Int64("seed", 1, "fleet seed (per-device RNGs derive from it)")
	virtual := flag.Bool("virtual", false, "run shards on virtual time instead of the wall clock")
	coalesce := flag.Bool("coalesce", true, "batch concurrent solves through the shared coalescer")
	metrics := flag.String("metrics", "", "serve JSON /metrics and pprof on this address (e.g. :6060)")
	watch := flag.Duration("watch", 0, "print a live fix-rate line to stderr at this interval")
	duration := flag.Duration("duration", 0, "run this long then drain (0 = until SIGINT/SIGTERM)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound")
	asJSON := flag.Bool("json", false, "emit the final drain snapshot as JSON on stdout")
	flag.Parse()

	if *metrics != "" {
		obs.SetEnabled(true)
		addr, err := obshttp.Serve(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", addr)
	}
	if *watch > 0 {
		obs.SetEnabled(true)
		stop := make(chan struct{})
		defer close(stop)
		go obshttp.Watch(*watch, stop, func(line string) {
			fmt.Fprintln(os.Stderr, line)
		})
	}

	rng := rand.New(rand.NewSource(*seed))
	office := sim.NewOffice(rand.New(rand.NewSource(*seed^0x0ff1ce)), sim.OfficeConfig{})
	d := svc.NewDaemon(svc.Config{
		Shards:   *shards,
		Office:   office,
		Virtual:  *virtual,
		Coalesce: *coalesce,
		Pipeline: svc.PipelineConfig{Enabled: *pipeline, Preempt: *preempt},
	})

	attachFull := func(id uint64, class svc.Class) {
		err := d.Attach(id, svc.DeviceConfig{
			Seed: rng.Int63(), Class: class,
			Session: track.SessionConfig{
				Speed: *speed, Sweeps: *sweeps,
				WarmStart: true, VelocityTranslate: true,
			},
			Estimator: tof.Config{Mode: tof.BandsFused, Quirk24: true, MaxIter: 1200},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "attach: %v\n", err)
			os.Exit(1)
		}
	}
	for i := 0; i < *devices; i++ {
		attachFull(uint64(1+i), svc.ClassLatency)
	}
	for i := 0; i < *bulkDevices; i++ {
		attachFull(uint64(1<<16+i), svc.ClassBulk)
	}
	for i := 0; i < *statDevices; i++ {
		err := d.Attach(uint64(1<<20+i), svc.DeviceConfig{
			Seed: rng.Int63(), Stat: true, Speed: *speed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "attach: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "chronos-svc: %d shards, %d latency + %d bulk full + %d stat devices (pipeline=%v)\n",
		*shards, *devices, *bulkDevices, *statDevices, *pipeline)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if *duration > 0 {
		select {
		case <-time.After(*duration):
		case s := <-sig:
			fmt.Fprintf(os.Stderr, "chronos-svc: %v\n", s)
		}
	} else {
		s := <-sig
		fmt.Fprintf(os.Stderr, "chronos-svc: %v\n", s)
	}

	fmt.Fprintln(os.Stderr, "chronos-svc: draining")
	snap, err := d.Drain(*drainTimeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	results := d.Results()
	fixes := 0
	for _, r := range results {
		fixes += r.Fixes
	}
	fmt.Fprintf(os.Stderr, "chronos-svc: drained, %d devices retired, %d fixes\n",
		len(results), fixes)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
