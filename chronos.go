// Package chronos is a Go reproduction of "Sub-Nanosecond Time of Flight
// on Commercial Wi-Fi Cards" (Vasisht, Kumar, Katabi): a complete
// implementation of the Chronos time-of-flight and device-to-device
// localization system, together with the simulated Wi-Fi substrate (CSI
// measurement, multipath propagation, channel hopping, network and drone
// models) its evaluation requires.
//
// The package re-exports the library's primary types so applications can
// depend on a single import:
//
//	est := chronos.NewToFEstimator(chronos.ToFConfig{})
//	result, err := est.Estimate(bands, sweep)
//
// Heavier experiment drivers live in the cmd/ binaries; runnable
// walkthroughs live under examples/.
package chronos

import (
	"math/rand"

	"chronos/internal/csi"
	"chronos/internal/drone"
	"chronos/internal/geo"
	"chronos/internal/hop"
	"chronos/internal/loc"
	"chronos/internal/ndft"
	"chronos/internal/obs"
	"chronos/internal/rf"
	"chronos/internal/sim"
	"chronos/internal/svc"
	"chronos/internal/tof"
	"chronos/internal/track"
	"chronos/internal/wifi"
)

// SpeedOfLight converts time of flight to distance (m/s).
const SpeedOfLight = wifi.SpeedOfLight

// Band identifies one Wi-Fi frequency band (channel number + center).
type Band = wifi.Band

// USBands returns the 35 U.S. Wi-Fi bands the paper sweeps.
func USBands() []Band { return wifi.USBands() }

// Bands5GHz returns the 5 GHz subset (quirk-free CSI).
func Bands5GHz() []Band { return wifi.Bands5GHz() }

// Bands24GHz returns the 2.4 GHz subset.
func Bands24GHz() []Band { return wifi.Bands24GHz() }

// ToFConfig configures the time-of-flight estimator. The zero value gives
// the paper-faithful pipeline: fused 5 GHz (h̃²) and 2.4 GHz (h̃⁸) groups
// with spline zero-subcarrier interpolation and CFO cancellation.
type ToFConfig = tof.Config

// Band-mode selectors for ToFConfig.Mode.
const (
	BandsFused       = tof.BandsFused
	Bands5GHzOnly    = tof.Bands5GHzOnly
	Bands24Only      = tof.Bands24Only
	BandsAllCoherent = tof.BandsAllCoherent
)

// PeakRanking selects how the direct-path peak is extracted from the
// multipath profile (ToFConfig.Ranking): alias-family ranking (default)
// or the raw-vertex baseline.
type PeakRanking = tof.PeakRanking

// Peak-ranking selectors for ToFConfig.Ranking.
const (
	RankFamilies = tof.RankFamilies
	RankVertex   = tof.RankVertex
)

// StopRule selects the profile solver's termination rule
// (ToFConfig.Stop): the noise-adaptive duality-gap stop (default) or the
// historical fixed iterate tolerance.
type StopRule = ndft.StopRule

// Stop-rule selectors for ToFConfig.Stop.
const (
	StopGap     = ndft.StopGap
	StopIterate = ndft.StopIterate
)

// SolverPlan is a precomputed NDFT solver plan for one band geometry:
// the planar dictionary, step constants, and pooled scratch behind
// every profile inversion. Estimators resolve plans from the shared
// registry automatically; construct one directly only to drive the
// solver itself (service daemons, benchmarks).
type SolverPlan = ndft.Plan

// SolveRequest is one inversion request against a SolverPlan: the
// measurement vector, an optional warm-start profile, an optional
// recycled result, and the solver options. The same request shape
// drives SolverPlan.Solve (B=1) and SolverPlan.SolveBatch — batching B
// requests amortizes the dictionary's memory traffic B ways while each
// request's result stays byte-identical to its sequential solve.
type SolveRequest = ndft.SolveRequest

// SolveResult is one inversion's output (profile, residual, telemetry).
type SolveResult = ndft.Result

// SolveOptions tunes one profile inversion (Algorithm 1 of §6).
type SolveOptions = ndft.InvertOptions

// NewSolverPlan precomputes a solver plan for the given measurement
// frequencies and delay grid (see SolverTauGrid).
func NewSolverPlan(freqs, taus []float64) (*SolverPlan, error) { return ndft.NewPlan(freqs, taus) }

// SolverTauGrid builds the uniform delay grid [0, maxTau] at the given
// step — the profile domain a plan inverts onto.
func SolverTauGrid(maxTau, step float64) []float64 { return ndft.TauGrid(maxTau, step) }

// VectorKernel reports the SIMD kernel tier the solver resolved for
// this machine: "avx512", "avx2", "neon", or "scalar". Every tier is
// byte-identical to scalar solving — the tiers differ only in
// throughput.
func VectorKernel() string { return ndft.VectorKernel() }

// HasVectorKernel reports whether solves run a vectorized kernel tier
// on this machine. Batching is always byte-identical to sequential
// solving; without a vector kernel it simply yields a smaller
// throughput gain.
//
// Deprecated: use VectorKernel, which names the resolved tier.
func HasVectorKernel() bool { return VectorKernel() != "scalar" }

// SolveCoalescer batches concurrent solve requests that target the same
// plan into one SolveBatch call (bounded wait, falls through to B=1).
// Share one instance across the estimators whose sessions should batch
// together via ToFConfig.Coalescer.
type SolveCoalescer = tof.Coalescer

// SolveCoalescerConfig tunes a coalescer (batch cap, door-hold wait,
// idle bypass horizon).
type SolveCoalescerConfig = tof.CoalescerConfig

// NewSolveCoalescer builds a coalescer with the given config.
func NewSolveCoalescer(cfg SolveCoalescerConfig) *SolveCoalescer { return tof.NewCoalescer(cfg) }

// PlanRegistryStats is a snapshot of the shared NDFT plan registry's
// occupancy (resident plans, LRU bound, builds, evictions, bytes).
type PlanRegistryStats = tof.RegistryStats

// SharedPlanRegistryStats reports the process-wide plan registry every
// estimator resolves solver plans from — the observability surface for
// long-running services sweeping many estimator configurations.
func SharedPlanRegistryStats() PlanRegistryStats { return tof.SharedRegistryStats() }

// ObsSnapshot is one point-in-time rendering of the process-wide
// observability layer: pipeline counters (solve requests, fixes, hop
// events), derived gauges (fix rate, cap rate, registry occupancy), and
// stage-latency histograms with p50/p95/p99.
type ObsSnapshot = obs.Snapshot

// SetObsEnabled turns metric recording on or off. Off (the default)
// every instrumentation point costs a single atomic load, and the
// instrumented hot paths stay 0 allocs/op either way.
func SetObsEnabled(on bool) { obs.SetEnabled(on) }

// CaptureObs renders every registered metric into a snapshot.
func CaptureObs() *ObsSnapshot { return obs.Capture() }

// ToFEstimator turns CSI band sweeps into sub-nanosecond time-of-flight
// estimates (§4–§7 of the paper).
type ToFEstimator = tof.Estimator

// ToFEstimate is one estimation result (ToF, distance, multipath profile).
type ToFEstimate = tof.Estimate

// NewToFEstimator builds an estimator.
func NewToFEstimator(cfg ToFConfig) *ToFEstimator { return tof.NewEstimator(cfg) }

// CalibrateToF measures the constant hardware offset of a device pair at
// a known distance (§7); store the result in ToFConfig.CalibrationOffset.
func CalibrateToF(est *ToFEstimator, bands []Band, sweep [][]CSIPair, trueDistance float64) (float64, error) {
	return tof.Calibrate(est, bands, sweep, trueDistance)
}

// Radio is a simulated Intel 5300-class Wi-Fi front end.
type Radio = csi.Radio

// NewRadio draws a radio with paper-calibrated impairments (detection
// delay, residual CFO, the 2.4 GHz phase quirk, 8-bit CSI quantization).
func NewRadio(rng *rand.Rand) *Radio { return csi.NewRadio(rng) }

// Link couples two radios over a reciprocal multipath channel and
// produces the forward/reverse CSI pairs of the §4 hopping protocol.
type Link = csi.Link

// CSIPair is a forward/reverse CSI measurement pair (§7).
type CSIPair = csi.Pair

// MeasureOptions controls one simulated CSI capture.
type MeasureOptions = csi.MeasureOptions

// ArrayLink couples a single-antenna transmitter with a multi-chain
// receiver card for §8 localization (shared-packet CSI across chains).
type ArrayLink = csi.ArrayLink

// Channel is a sparse multipath channel h(f) = Σ aₖ·e^{−j2πfτₖ}.
type Channel = rf.Channel

// Path is one propagation path (delay, amplitude).
type Path = rf.Path

// NewChannel builds a channel from paths, sorted by delay.
func NewChannel(paths []Path) *Channel { return rf.NewChannel(paths) }

// Point is a 2D position in meters.
type Point = geo.Point

// Array is a rigid antenna array.
type Array = geo.Array

// LinearArray builds n antennas spaced sep meters apart (§12.2 uses
// 3 antennas at 30 cm for clients and 100 cm for AP-style receivers).
func LinearArray(n int, sep float64) Array { return geo.LinearArray(n, sep) }

// TriangleArray builds three non-collinear antennas with the given side
// length — the geometry §8 needs for an unambiguous three-circle fix.
func TriangleArray(side float64) Array { return geo.TriangleArray(side) }

// Localizer performs §8 device-to-device localization from per-antenna
// time-of-flight.
type Localizer = loc.Localizer

// Fix is one localization result.
type Fix = loc.Fix

// NewLocalizer builds a localizer over an antenna array.
func NewLocalizer(array Array, cfg ToFConfig) *Localizer { return loc.NewLocalizer(array, cfg) }

// Office is the simulated 20 m × 20 m evaluation floor of §12.
type Office = sim.Office

// OfficeConfig tunes floor-plan generation.
type OfficeConfig = sim.OfficeConfig

// Placement is one TX/RX placement on the floor.
type Placement = sim.Placement

// NewOffice generates a floor plan deterministically from rng.
func NewOffice(rng *rand.Rand, cfg OfficeConfig) *Office { return sim.NewOffice(rng, cfg) }

// HopConfig tunes the §4 channel-hopping protocol.
type HopConfig = hop.Config

// HopSweep runs one hop-protocol sweep across bands in virtual time and
// returns its timing (Fig. 9a measures its duration distribution).
func HopSweep(rng *rand.Rand, bands []Band, cfg HopConfig) hop.SweepResult {
	return hop.Sweep(rng, bands, cfg)
}

// DroneTrack runs the §9 personal-drone distance-keeping simulation.
func DroneTrack(rng *rand.Rand, sensor drone.RangeSensor, cfg drone.TrackConfig) *drone.TrackResult {
	return drone.Track(rng, sensor, cfg)
}

// DroneSensor is the statistical Chronos range-sensor model used by the
// drone experiments; see internal/drone for the full-pipeline variant.
type DroneSensor = drone.StatSensor

// DroneConfig tunes a drone following run.
type DroneConfig = drone.TrackConfig

// ToFSweep is the incremental estimation core: CSI folds in band by band
// as a sweep streams in, and a (possibly early, degraded) fix can be
// requested at any point. Obtain one from ToFEstimator.NewSweep.
type ToFSweep = tof.Sweep

// TrackFilterConfig tunes the per-device constant-velocity Kalman filters.
type TrackFilterConfig = track.FilterConfig

// RangeTracker smooths a stream of scalar range fixes with outlier gating.
type RangeTracker = track.RangeTracker

// PositionTracker smooths a stream of 2D position fixes with outlier gating.
type PositionTracker = track.PositionTracker

// NewRangeTracker builds a range tracker.
func NewRangeTracker(cfg TrackFilterConfig) *RangeTracker { return track.NewRangeTracker(cfg) }

// NewPositionTracker builds a position tracker.
func NewPositionTracker(cfg TrackFilterConfig) *PositionTracker {
	return track.NewPositionTracker(cfg)
}

// TrackSessionConfig tunes one full-pipeline streaming tracking session.
type TrackSessionConfig = track.SessionConfig

// TrackFix is one streamed tracking output (raw + smoothed range).
type TrackFix = track.Fix

// TrackSessionResult is a streaming session's output.
type TrackSessionResult = track.SessionResult

// RunTrackSession streams band sweeps over a moving target in the office
// through the incremental estimator and a Kalman range tracker.
func RunTrackSession(rng *rand.Rand, office *Office, est *ToFEstimator, cfg TrackSessionConfig) (*TrackSessionResult, error) {
	return track.RunSession(rng, office, est, cfg)
}

// TrackSchedulerConfig tunes the multi-client session scheduler.
type TrackSchedulerConfig = track.SchedulerConfig

// TrackSchedule is one interleaved multi-device schedule with airtime and
// fix-capacity metrics.
type TrackSchedule = track.Schedule

// RunTrackSchedule interleaves band-hopping sweeps across N concurrent
// devices on one virtual timeline.
func RunTrackSchedule(rng *rand.Rand, cfg TrackSchedulerConfig) *TrackSchedule {
	return track.RunSchedule(rng, cfg)
}

// TrackMultiConfig tunes a capacity-scale multi-device tracking run.
type TrackMultiConfig = track.MultiConfig

// TrackMultiResult pairs a schedule's capacity metrics with per-device
// smoothed trajectories.
type TrackMultiResult = track.MultiResult

// TrackMultiSolver switches RunTrackMulti from the statistical range
// model to real per-sweep channel inversion on concurrent per-device
// goroutines — the configuration that exercises a shared SolveCoalescer
// across sessions (TrackMultiConfig.Solver).
type TrackMultiSolver = track.MultiSolver

// RunTrackMulti replays an interleaved schedule through per-device walks,
// the statistical range-error model, and Kalman trackers.
func RunTrackMulti(rng *rand.Rand, cfg TrackMultiConfig) *TrackMultiResult {
	return track.RunMulti(rng, cfg)
}

// Service is the always-on localization daemon: N worker shards, each
// exclusively owning the sessions of the devices that hash to it, a
// hierarchical timer wheel per shard pacing sweeps, and the obs layer
// as its management surface. Attach/Detach manage the fleet; Drain
// stops it gracefully.
type Service = svc.Daemon

// ServiceConfig tunes a service daemon (shard count, wheel tick,
// virtual vs wall time, solve coalescing).
type ServiceConfig = svc.Config

// ServiceDeviceConfig describes one device attached to the service:
// either a full CSI→solve→Kalman pipeline session or the statistical
// ranging model at fleet scale.
type ServiceDeviceConfig = svc.DeviceConfig

// ServiceDeviceResult is one retired device's outcome (at completion,
// detach, or drain).
type ServiceDeviceResult = svc.DeviceResult

// NewService builds and starts a localization daemon; stop it with
// Drain.
func NewService(cfg ServiceConfig) *Service { return svc.NewDaemon(cfg) }

// SetSharedPlanCap rebounds the shared solver-plan registry's LRU limit
// (0 restores the default) and returns the previous bound — an
// operational memory lever for long-running services.
func SetSharedPlanCap(maxPlans int) int { return tof.SetSharedPlanCap(maxPlans) }

// MeasureDistance is the quickstart helper: it sweeps all bands over the
// link, runs the faithful estimator, and returns the estimated distance
// in meters. calOffset is the pair's calibration constant (0 for
// uncalibrated hardware-delay-inclusive output).
func MeasureDistance(rng *rand.Rand, link *Link, est *ToFEstimator, bands []Band, calOffset float64) (float64, error) {
	sweep := link.Sweep(rng, bands, 3, 2.4e-3)
	r, err := est.Estimate(bands, sweep)
	if err != nil {
		return 0, err
	}
	return (r.ToF - calOffset) * SpeedOfLight, nil
}
