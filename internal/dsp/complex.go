// Package dsp provides the signal-processing primitives Chronos builds on:
// complex vector arithmetic, phase unwrapping, cubic-spline interpolation,
// and peak detection on multipath profiles.
//
// Everything here is allocation-conscious: the hot-path routines accept
// destination slices so callers can reuse buffers across iterations of the
// sparse-recovery solver.
package dsp

import (
	"math"
	"math/cmplx"
)

// Vec is a complex-valued signal vector.
type Vec []complex128

// NewVec returns a zeroed vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Add stores a+b into dst and returns dst. All three must have equal length.
func Add(dst, a, b Vec) Vec {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
	return dst
}

// Sub stores a-b into dst and returns dst.
func Sub(dst, a, b Vec) Vec {
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// Scale stores s*a into dst and returns dst.
func Scale(dst Vec, s complex128, a Vec) Vec {
	for i := range dst {
		dst[i] = s * a[i]
	}
	return dst
}

// AXPY computes dst = dst + s*a in place and returns dst.
func AXPY(dst Vec, s complex128, a Vec) Vec {
	for i := range dst {
		dst[i] += s * a[i]
	}
	return dst
}

// Dot returns the inner product conj(a)·b.
func Dot(a, b Vec) complex128 {
	var sum complex128
	for i := range a {
		sum += cmplx.Conj(a[i]) * b[i]
	}
	return sum
}

// Norm2 returns the Euclidean (L2) norm of v.
func Norm2(v Vec) float64 {
	var sum float64
	for _, c := range v {
		re, im := real(c), imag(c)
		sum += re*re + im*im
	}
	return math.Sqrt(sum)
}

// Norm1 returns the L1 norm Σ|vᵢ|.
func Norm1(v Vec) float64 {
	var sum float64
	for _, c := range v {
		sum += cmplx.Abs(c)
	}
	return sum
}

// NormInf returns max |vᵢ|, or 0 for an empty vector.
func NormInf(v Vec) float64 {
	var m float64
	for _, c := range v {
		if a := cmplx.Abs(c); a > m {
			m = a
		}
	}
	return m
}

// Abs stores |v| element-wise into dst (which must have len(v)) and
// returns dst.
func Abs(dst []float64, v Vec) []float64 {
	for i, c := range v {
		dst[i] = cmplx.Abs(c)
	}
	return dst
}

// Power stores v[i]^n element-wise into dst and returns dst. It is used to
// normalize channel powers across bands (h̃² from CFO cancellation, h̃⁴
// for the 2.4 GHz firmware quirk).
func Power(dst, v Vec, n int) Vec {
	for i, c := range v {
		p := complex(1, 0)
		for k := 0; k < n; k++ {
			p *= c
		}
		dst[i] = p
	}
	return dst
}

// Phases stores the argument of each element into dst and returns dst.
func Phases(dst []float64, v Vec) []float64 {
	for i, c := range v {
		dst[i] = cmplx.Phase(c)
	}
	return dst
}

// FromPolar builds a complex number from magnitude and phase.
func FromPolar(mag, phase float64) complex128 {
	return cmplx.Rect(mag, phase)
}

// SoftThreshold applies the complex soft-thresholding (shrinkage) operator
// from Algorithm 1 of the paper ("SPARSIFY"): elements with magnitude below
// t are zeroed, larger elements are shrunk toward zero by t while keeping
// their phase. The operation is in place on p.
func SoftThreshold(p Vec, t float64) {
	for i, c := range p {
		a := cmplx.Abs(c)
		if a <= t { // "<=" also zeroes a==t==0, avoiding 0/0 below
			p[i] = 0
		} else {
			p[i] = c * complex((a-t)/a, 0)
		}
	}
}

// WrapPhase reduces an angle to (-π, π].
func WrapPhase(ph float64) float64 {
	ph = math.Mod(ph, 2*math.Pi)
	if ph <= -math.Pi {
		ph += 2 * math.Pi
	} else if ph > math.Pi {
		ph -= 2 * math.Pi
	}
	return ph
}

// Unwrap removes 2π discontinuities from a phase sequence in place and
// returns it. The first element is left untouched; each subsequent element
// is shifted by a multiple of 2π so that consecutive differences stay
// within (-π, π].
func Unwrap(ph []float64) []float64 {
	if len(ph) < 2 {
		return ph
	}
	offset := 0.0
	prev := ph[0]
	for i := 1; i < len(ph); i++ {
		raw := ph[i]
		d := raw + offset - prev
		for d > math.Pi {
			offset -= 2 * math.Pi
			d -= 2 * math.Pi
		}
		for d <= -math.Pi {
			offset += 2 * math.Pi
			d += 2 * math.Pi
		}
		ph[i] = raw + offset
		prev = ph[i]
	}
	return ph
}
