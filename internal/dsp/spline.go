package dsp

import (
	"errors"
	"fmt"
	"sort"
)

// Spline is a natural cubic spline through a set of (x, y) knots. Chronos
// uses it to interpolate the measured channel phase and magnitude across
// OFDM subcarriers in order to estimate the channel at the (unmeasurable)
// zero subcarrier, which is free of packet-detection delay (§5 of the
// paper).
type Spline struct {
	xs []float64
	ys []float64
	// Per-interval polynomial coefficients:
	// s(x) = a[i] + b[i]·dx + c[i]·dx² + d[i]·dx³, dx = x - xs[i].
	b, c, d []float64
}

// ErrSplineInput reports invalid knot data.
var ErrSplineInput = errors.New("dsp: spline needs at least two strictly increasing knots")

// NewSpline builds a natural cubic spline through the given knots. The xs
// must be strictly increasing and len(xs) == len(ys) >= 2. With exactly two
// knots the spline degenerates to a line.
func NewSpline(xs, ys []float64) (*Spline, error) {
	n := len(xs)
	if n < 2 || len(ys) != n {
		return nil, fmt.Errorf("%w (got %d xs, %d ys)", ErrSplineInput, len(xs), len(ys))
	}
	if !sort.Float64sAreSorted(xs) {
		return nil, fmt.Errorf("%w: xs not sorted", ErrSplineInput)
	}
	for i := 1; i < n; i++ {
		if xs[i] == xs[i-1] {
			return nil, fmt.Errorf("%w: duplicate knot x=%g", ErrSplineInput, xs[i])
		}
	}

	s := &Spline{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
		b:  make([]float64, n),
		c:  make([]float64, n),
		d:  make([]float64, n),
	}

	if n == 2 {
		s.b[0] = (ys[1] - ys[0]) / (xs[1] - xs[0])
		s.b[1] = s.b[0]
		return s, nil
	}

	// Solve the tridiagonal system for the second derivatives (natural
	// boundary: c[0] = c[n-1] = 0) using the Thomas algorithm.
	h := make([]float64, n-1)
	for i := 0; i < n-1; i++ {
		h[i] = xs[i+1] - xs[i]
	}
	alpha := make([]float64, n)
	for i := 1; i < n-1; i++ {
		alpha[i] = 3*(ys[i+1]-ys[i])/h[i] - 3*(ys[i]-ys[i-1])/h[i-1]
	}
	l := make([]float64, n)
	mu := make([]float64, n)
	z := make([]float64, n)
	l[0] = 1
	for i := 1; i < n-1; i++ {
		l[i] = 2*(xs[i+1]-xs[i-1]) - h[i-1]*mu[i-1]
		mu[i] = h[i] / l[i]
		z[i] = (alpha[i] - h[i-1]*z[i-1]) / l[i]
	}
	l[n-1] = 1
	for j := n - 2; j >= 0; j-- {
		s.c[j] = z[j] - mu[j]*s.c[j+1]
		s.b[j] = (ys[j+1]-ys[j])/h[j] - h[j]*(s.c[j+1]+2*s.c[j])/3
		s.d[j] = (s.c[j+1] - s.c[j]) / (3 * h[j])
	}
	return s, nil
}

// At evaluates the spline at x. Outside the knot range the boundary cubic
// is extrapolated, which is exactly what the zero-subcarrier estimate
// needs when subcarrier 0 sits between the measured ±1 indices (it never
// does for 802.11n, but guard bands can push the query to the edge).
func (s *Spline) At(x float64) float64 {
	n := len(s.xs)
	// Binary search for the interval containing x.
	i := sort.SearchFloat64s(s.xs, x)
	switch {
	case i <= 0:
		i = 0
	case i >= n:
		i = n - 2
	default:
		i--
	}
	if i > n-2 {
		i = n - 2
	}
	dx := x - s.xs[i]
	return s.ys[i] + dx*(s.b[i]+dx*(s.c[i]+dx*s.d[i]))
}

// InterpolateAt is a convenience wrapper: it fits a natural cubic spline to
// (xs, ys) and evaluates it at x.
func InterpolateAt(xs, ys []float64, x float64) (float64, error) {
	sp, err := NewSpline(xs, ys)
	if err != nil {
		return 0, err
	}
	return sp.At(x), nil
}

// LinearAt performs straight-line interpolation of (xs, ys) at x, used as
// the ablation baseline for the spline (DESIGN.md: "interp" ablation).
// xs must be strictly increasing with at least two points.
func LinearAt(xs, ys []float64, x float64) (float64, error) {
	n := len(xs)
	if n < 2 || len(ys) != n {
		return 0, fmt.Errorf("%w (got %d xs, %d ys)", ErrSplineInput, len(xs), len(ys))
	}
	i := sort.SearchFloat64s(xs, x)
	switch {
	case i <= 0:
		i = 1
	case i >= n:
		i = n - 1
	}
	x0, x1 := xs[i-1], xs[i]
	y0, y1 := ys[i-1], ys[i]
	if x1 == x0 {
		return 0, fmt.Errorf("%w: duplicate knot x=%g", ErrSplineInput, x0)
	}
	t := (x - x0) / (x1 - x0)
	return y0 + t*(y1-y0), nil
}
