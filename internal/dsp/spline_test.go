package dsp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSplineReproducesKnots(t *testing.T) {
	xs := []float64{-3, -1, 0, 2, 5}
	ys := []float64{4, 0, 1, -2, 3}
	sp, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got := sp.At(xs[i]); !approx(got, ys[i], 1e-9) {
			t.Errorf("At(%v) = %v, want %v", xs[i], got, ys[i])
		}
	}
}

func TestSplineExactOnLine(t *testing.T) {
	// A natural cubic spline through collinear points is the line itself.
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2*x - 7
	}
	sp, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := -1.0; x <= 5.0; x += 0.25 {
		if got, want := sp.At(x), 2*x-7; !approx(got, want, 1e-9) {
			t.Errorf("At(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestSplineTwoKnotsIsLinear(t *testing.T) {
	sp, err := NewSpline([]float64{0, 2}, []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.At(1); !approx(got, 3, 1e-12) {
		t.Errorf("midpoint = %v, want 3", got)
	}
	if got := sp.At(3); !approx(got, 7, 1e-12) {
		t.Errorf("extrapolation = %v, want 7", got)
	}
}

func TestSplineSmoothCurveAccuracy(t *testing.T) {
	// Spline through samples of a smooth function should interpolate well
	// between knots. This mirrors the zero-subcarrier use: phase is smooth
	// in frequency across 30 subcarriers.
	xs := make([]float64, 31)
	ys := make([]float64, 31)
	for i := range xs {
		xs[i] = float64(i-15) / 15
		ys[i] = math.Sin(2 * xs[i])
	}
	sp, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Natural boundary conditions make the edge intervals slightly less
	// accurate, so allow a looser tolerance there via the interior range.
	for x := -0.8; x <= 0.8; x += 0.05 {
		if got, want := sp.At(x), math.Sin(2*x); !approx(got, want, 1e-3) {
			t.Errorf("At(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestSplineZeroSubcarrierScenario(t *testing.T) {
	// Emulate the §5 use case: subcarriers ±1..±15 with a linear phase
	// ramp (single path); interpolating at 0 must recover the ramp value.
	var xs, ys []float64
	slope, intercept := -0.31, 0.8
	for k := -15; k <= 15; k++ {
		if k == 0 {
			continue
		}
		xs = append(xs, float64(k))
		ys = append(ys, slope*float64(k)+intercept)
	}
	got, err := InterpolateAt(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, intercept, 1e-9) {
		t.Errorf("zero-subcarrier = %v, want %v", got, intercept)
	}
}

func TestSplineErrors(t *testing.T) {
	if _, err := NewSpline([]float64{1}, []float64{1}); !errors.Is(err, ErrSplineInput) {
		t.Errorf("short input: err = %v", err)
	}
	if _, err := NewSpline([]float64{1, 1}, []float64{1, 2}); !errors.Is(err, ErrSplineInput) {
		t.Errorf("duplicate knots: err = %v", err)
	}
	if _, err := NewSpline([]float64{2, 1}, []float64{1, 2}); !errors.Is(err, ErrSplineInput) {
		t.Errorf("unsorted knots: err = %v", err)
	}
	if _, err := NewSpline([]float64{1, 2}, []float64{1}); !errors.Is(err, ErrSplineInput) {
		t.Errorf("length mismatch: err = %v", err)
	}
}

func TestLinearAt(t *testing.T) {
	xs := []float64{0, 1, 3}
	ys := []float64{0, 2, 2}
	got, err := LinearAt(xs, ys, 0.5)
	if err != nil || !approx(got, 1, 1e-12) {
		t.Errorf("LinearAt(0.5) = %v, %v", got, err)
	}
	got, err = LinearAt(xs, ys, 2)
	if err != nil || !approx(got, 2, 1e-12) {
		t.Errorf("LinearAt(2) = %v, %v", got, err)
	}
	// Extrapolation uses the boundary segment.
	got, err = LinearAt(xs, ys, -1)
	if err != nil || !approx(got, -2, 1e-12) {
		t.Errorf("LinearAt(-1) = %v, %v", got, err)
	}
	if _, err := LinearAt([]float64{1}, []float64{1}, 0); err == nil {
		t.Error("LinearAt accepted single knot")
	}
}

func TestSplineInterpolationBetweenKnotsProperty(t *testing.T) {
	// Property: for a quadratic, the spline stays close to the function
	// between interior knots (cubic splines reproduce smooth functions to
	// high order with dense knots).
	f := func(a, b float64) bool {
		a = math.Mod(a, 3)
		b = math.Mod(b, 3)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		xs := make([]float64, 21)
		ys := make([]float64, 21)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = a*xs[i]*xs[i] + b*xs[i]
		}
		sp, err := NewSpline(xs, ys)
		if err != nil {
			return false
		}
		for x := 5.0; x <= 15; x += 0.5 {
			want := a*x*x + b*x
			if math.Abs(sp.At(x)-want) > 1e-2*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
