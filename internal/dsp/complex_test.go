package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAddSubScale(t *testing.T) {
	a := Vec{1 + 2i, 3 - 1i}
	b := Vec{-1 + 1i, 2 + 2i}
	dst := NewVec(2)

	Add(dst, a, b)
	if dst[0] != 0+3i || dst[1] != 5+1i {
		t.Errorf("Add = %v", dst)
	}
	Sub(dst, a, b)
	if dst[0] != 2+1i || dst[1] != 1-3i {
		t.Errorf("Sub = %v", dst)
	}
	Scale(dst, 2i, a)
	if dst[0] != -4+2i || dst[1] != 2+6i {
		t.Errorf("Scale = %v", dst)
	}
}

func TestAXPY(t *testing.T) {
	dst := Vec{1, 1}
	AXPY(dst, 3, Vec{1i, 2})
	if dst[0] != 1+3i || dst[1] != 7 {
		t.Errorf("AXPY = %v", dst)
	}
}

func TestDotConjugatesFirstArgument(t *testing.T) {
	a := Vec{1i}
	b := Vec{1i}
	// conj(i)*i = -i*i = 1
	if got := Dot(a, b); got != 1 {
		t.Errorf("Dot = %v, want 1", got)
	}
}

func TestNorms(t *testing.T) {
	v := Vec{3 + 4i, 0, -5}
	if got := Norm2(v); !approx(got, math.Sqrt(50), eps) {
		t.Errorf("Norm2 = %v", got)
	}
	if got := Norm1(v); !approx(got, 10, eps) {
		t.Errorf("Norm1 = %v", got)
	}
	if got := NormInf(v); !approx(got, 5, eps) {
		t.Errorf("NormInf = %v", got)
	}
	if got := NormInf(nil); got != 0 {
		t.Errorf("NormInf(nil) = %v", got)
	}
}

func TestPower(t *testing.T) {
	v := Vec{2i}
	dst := NewVec(1)
	Power(dst, v, 2)
	if dst[0] != -4 {
		t.Errorf("Power2 = %v", dst[0])
	}
	Power(dst, v, 4)
	if dst[0] != 16 {
		t.Errorf("Power4 = %v", dst[0])
	}
	Power(dst, v, 0)
	if dst[0] != 1 {
		t.Errorf("Power0 = %v", dst[0])
	}
}

func TestSoftThreshold(t *testing.T) {
	p := Vec{3, 1, -2i, 0.5 + 0.5i}
	SoftThreshold(p, 1.0)
	if p[0] != 2 {
		t.Errorf("p[0] = %v", p[0])
	}
	if p[1] != 0 {
		t.Errorf("p[1] = %v, want 0 (|1| not < 1 but shrinks to 0)", p[1])
	}
	if got := cmplx.Abs(p[2]); !approx(got, 1, eps) {
		t.Errorf("|p[2]| = %v", got)
	}
	if p[3] != 0 {
		t.Errorf("p[3] = %v, want 0", p[3])
	}
}

func TestSoftThresholdPreservesPhase(t *testing.T) {
	f := func(re, im float64) bool {
		if math.IsNaN(re) || math.IsNaN(im) || math.Abs(re) > 1e100 || math.Abs(im) > 1e100 {
			return true
		}
		c := complex(re, im)
		if a := cmplx.Abs(c); a < 1e-9 || a > 1e100 {
			return true
		}
		p := Vec{c}
		SoftThreshold(p, cmplx.Abs(c)/2)
		if p[0] == 0 {
			return true
		}
		return approx(cmplx.Phase(p[0]), cmplx.Phase(c), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapPhase(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-0.5, -0.5},
		{7, 7 - 2*math.Pi},
	}
	for _, c := range cases {
		if got := WrapPhase(c.in); !approx(got, c.want, 1e-9) {
			t.Errorf("WrapPhase(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWrapPhaseRange(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
			return true
		}
		w := WrapPhase(x)
		return w > -math.Pi-1e-9 && w <= math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnwrapLinearRamp(t *testing.T) {
	// A steep linear phase ramp wrapped into (-π, π] must unwrap back to
	// the original line.
	slope := 2.9 // rad per sample, below π so unwrapping is unambiguous
	n := 50
	wrapped := make([]float64, n)
	for i := range wrapped {
		wrapped[i] = WrapPhase(slope * float64(i))
	}
	got := Unwrap(wrapped)
	for i := range got {
		want := slope * float64(i)
		if !approx(got[i], want, 1e-9) {
			t.Fatalf("unwrap[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestUnwrapShortInputs(t *testing.T) {
	if got := Unwrap(nil); got != nil {
		t.Errorf("Unwrap(nil) = %v", got)
	}
	one := []float64{1.5}
	if got := Unwrap(one); got[0] != 1.5 {
		t.Errorf("Unwrap(single) = %v", got)
	}
}

func TestUnwrapConsecutiveDiffBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ph := make([]float64, 200)
	for i := range ph {
		ph[i] = (rng.Float64() - 0.5) * 2 * math.Pi
	}
	out := Unwrap(append([]float64(nil), ph...))
	for i := 1; i < len(out); i++ {
		d := out[i] - out[i-1]
		if d > math.Pi+1e-9 || d <= -math.Pi-1e-9 {
			t.Fatalf("diff[%d] = %v outside (-π, π]", i, d)
		}
	}
}

func TestAbsAndPhases(t *testing.T) {
	v := Vec{3 + 4i, -1}
	mags := Abs(make([]float64, 2), v)
	if !approx(mags[0], 5, eps) || !approx(mags[1], 1, eps) {
		t.Errorf("Abs = %v", mags)
	}
	phs := Phases(make([]float64, 2), v)
	if !approx(phs[1], math.Pi, eps) {
		t.Errorf("Phases = %v", phs)
	}
}

func TestFromPolarRoundTrip(t *testing.T) {
	f := func(mag, ph float64) bool {
		mag = math.Abs(math.Mod(mag, 1e6))
		ph = math.Mod(ph, math.Pi)
		c := FromPolar(mag, ph)
		return approx(cmplx.Abs(c), mag, 1e-6*(1+mag))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	v := Vec{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone aliases original")
	}
}
