package dsp

import "math"

// Peak is a local maximum of a multipath profile: a propagation delay (the
// x-coordinate of the profile grid) and its power.
type Peak struct {
	Index int     // grid index of the maximum
	X     float64 // refined x position (e.g. delay in seconds)
	Power float64 // refined magnitude at the peak
}

// FindPeaks locates local maxima of mag whose height is at least
// threshold·max(mag). xs carries the grid coordinate for each sample and
// must have len(mag). Maxima are refined with three-point parabolic
// interpolation. Results are ordered by ascending x.
//
// Chronos identifies the direct path as the first (smallest-delay)
// dominant peak of the inverse-NDFT profile, so callers typically take
// peaks[0].
func FindPeaks(xs, mag []float64, threshold float64) []Peak {
	n := len(mag)
	if n == 0 || len(xs) != n {
		return nil
	}
	maxV := 0.0
	for _, v := range mag {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		return nil
	}
	floor := threshold * maxV

	var peaks []Peak
	for i := 0; i < n; i++ {
		v := mag[i]
		if v < floor {
			continue
		}
		left := math.Inf(-1)
		if i > 0 {
			left = mag[i-1]
		}
		right := math.Inf(-1)
		if i < n-1 {
			right = mag[i+1]
		}
		// Use >= on the left so plateaus report their first sample only.
		if v > left && v >= right {
			p := Peak{Index: i, X: xs[i], Power: v}
			if i > 0 && i < n-1 {
				p.X, p.Power = refineParabolic(xs, mag, i)
			}
			peaks = append(peaks, p)
		}
	}
	return peaks
}

// refineParabolic fits a parabola through (i-1, i, i+1) and returns the
// vertex position and height. The grid is assumed locally uniform.
func refineParabolic(xs, mag []float64, i int) (x, y float64) {
	y0, y1, y2 := mag[i-1], mag[i], mag[i+1]
	denom := y0 - 2*y1 + y2
	if denom == 0 {
		return xs[i], y1
	}
	delta := 0.5 * (y0 - y2) / denom
	if delta > 0.5 {
		delta = 0.5
	} else if delta < -0.5 {
		delta = -0.5
	}
	step := xs[i] - xs[i-1]
	if i < len(xs)-1 && delta > 0 {
		step = xs[i+1] - xs[i]
	}
	return xs[i] + delta*step, y1 - 0.25*(y0-y2)*delta
}

// FirstPeak returns the earliest peak at or above threshold·max, or false
// if the profile has no peak. It is the direct-path extraction rule of §6.
func FirstPeak(xs, mag []float64, threshold float64) (Peak, bool) {
	peaks := FindPeaks(xs, mag, threshold)
	if len(peaks) == 0 {
		return Peak{}, false
	}
	return peaks[0], true
}

// DominantPeakCount counts peaks at or above threshold·max. The paper
// reports a mean of ~5 dominant peaks in indoor profiles (§12.1); this is
// the statistic behind that number.
func DominantPeakCount(xs, mag []float64, threshold float64) int {
	return len(FindPeaks(xs, mag, threshold))
}

// StrongestPeak returns the global maximum as a refined peak, or false for
// an empty/zero profile.
func StrongestPeak(xs, mag []float64) (Peak, bool) {
	peaks := FindPeaks(xs, mag, 0)
	if len(peaks) == 0 {
		return Peak{}, false
	}
	best := peaks[0]
	for _, p := range peaks[1:] {
		if p.Power > best.Power {
			best = p
		}
	}
	return best, true
}
