package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func gaussianBump(xs []float64, center, width, height float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		d := (x - center) / width
		out[i] = height * math.Exp(-d*d)
	}
	return out
}

func addInto(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

func grid(n int, step float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) * step
	}
	return xs
}

func TestFindPeaksSingleBump(t *testing.T) {
	xs := grid(200, 0.1)
	mag := gaussianBump(xs, 7.23, 0.5, 2.0)
	peaks := FindPeaks(xs, mag, 0.1)
	if len(peaks) != 1 {
		t.Fatalf("got %d peaks, want 1", len(peaks))
	}
	if math.Abs(peaks[0].X-7.23) > 0.05 {
		t.Errorf("peak at %v, want ~7.23", peaks[0].X)
	}
	if math.Abs(peaks[0].Power-2.0) > 0.05 {
		t.Errorf("peak power %v, want ~2.0", peaks[0].Power)
	}
}

func TestFindPeaksThreePathProfile(t *testing.T) {
	// The Fig. 4 scenario: paths at 5.2, 10 and 16 ns with descending power.
	xs := grid(500, 0.05)
	mag := gaussianBump(xs, 5.2, 0.3, 1.0)
	addInto(mag, gaussianBump(xs, 10, 0.3, 0.7))
	addInto(mag, gaussianBump(xs, 16, 0.3, 0.5))
	peaks := FindPeaks(xs, mag, 0.2)
	if len(peaks) != 3 {
		t.Fatalf("got %d peaks, want 3: %+v", len(peaks), peaks)
	}
	wants := []float64{5.2, 10, 16}
	for i, w := range wants {
		if math.Abs(peaks[i].X-w) > 0.1 {
			t.Errorf("peak %d at %v, want ~%v", i, peaks[i].X, w)
		}
	}
	// Ordered by delay, not power.
	if !(peaks[0].Power > peaks[1].Power && peaks[1].Power > peaks[2].Power) {
		t.Errorf("powers not descending: %+v", peaks)
	}
}

func TestFindPeaksThresholdSuppressesWeak(t *testing.T) {
	xs := grid(400, 0.05)
	mag := gaussianBump(xs, 5, 0.3, 1.0)
	addInto(mag, gaussianBump(xs, 12, 0.3, 0.05)) // 5% of max
	if got := DominantPeakCount(xs, mag, 0.2); got != 1 {
		t.Errorf("DominantPeakCount = %d, want 1", got)
	}
	if got := DominantPeakCount(xs, mag, 0.01); got != 2 {
		t.Errorf("low-threshold count = %d, want 2", got)
	}
}

func TestFirstPeakPicksEarliest(t *testing.T) {
	// Direct path weaker than a reflection — first peak must still win.
	xs := grid(400, 0.05)
	mag := gaussianBump(xs, 4, 0.3, 0.6)
	addInto(mag, gaussianBump(xs, 9, 0.3, 1.0))
	p, ok := FirstPeak(xs, mag, 0.3)
	if !ok {
		t.Fatal("no peak found")
	}
	if math.Abs(p.X-4) > 0.1 {
		t.Errorf("first peak at %v, want ~4", p.X)
	}
}

func TestStrongestPeak(t *testing.T) {
	xs := grid(400, 0.05)
	mag := gaussianBump(xs, 4, 0.3, 0.6)
	addInto(mag, gaussianBump(xs, 9, 0.3, 1.0))
	p, ok := StrongestPeak(xs, mag)
	if !ok || math.Abs(p.X-9) > 0.1 {
		t.Errorf("strongest peak = %+v, ok=%v, want ~9", p, ok)
	}
}

func TestFindPeaksEmptyAndZero(t *testing.T) {
	if got := FindPeaks(nil, nil, 0.5); got != nil {
		t.Errorf("nil input: %v", got)
	}
	xs := grid(10, 1)
	zero := make([]float64, 10)
	if got := FindPeaks(xs, zero, 0.5); got != nil {
		t.Errorf("zero profile: %v", got)
	}
	if _, ok := FirstPeak(xs, zero, 0.5); ok {
		t.Error("FirstPeak found peak in zero profile")
	}
	if _, ok := StrongestPeak(xs, zero); ok {
		t.Error("StrongestPeak found peak in zero profile")
	}
}

func TestFindPeaksMismatchedLengths(t *testing.T) {
	if got := FindPeaks([]float64{1, 2}, []float64{1}, 0.5); got != nil {
		t.Errorf("mismatched lengths: %v", got)
	}
}

func TestParabolicRefinementBeatsGrid(t *testing.T) {
	// With a peak deliberately placed off-grid, refinement should land
	// closer to the true center than the nearest grid point.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		step := 0.1
		xs := grid(300, step)
		center := 5 + rng.Float64()*10
		mag := gaussianBump(xs, center, 0.8, 1.0)
		p, ok := FirstPeak(xs, mag, 0.5)
		if !ok {
			t.Fatal("no peak")
		}
		gridErr := math.Abs(float64(int(center/step+0.5))*step - center)
		refErr := math.Abs(p.X - center)
		if refErr > gridErr+1e-9 {
			t.Errorf("trial %d: refined err %v worse than grid err %v", trial, refErr, gridErr)
		}
	}
}

func TestPeakAtBoundary(t *testing.T) {
	// Monotone increasing profile peaks at the last sample.
	xs := grid(50, 1)
	mag := make([]float64, 50)
	for i := range mag {
		mag[i] = float64(i)
	}
	peaks := FindPeaks(xs, mag, 0.5)
	if len(peaks) != 1 || peaks[0].Index != 49 {
		t.Errorf("boundary peak: %+v", peaks)
	}
}
