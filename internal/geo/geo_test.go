package geo

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntersectCirclesTwoPoints(t *testing.T) {
	a := Circle{Center: Point{0, 0}, Radius: 5}
	b := Circle{Center: Point{6, 0}, Radius: 5}
	p1, p2, ok := IntersectCircles(a, b)
	if !ok {
		t.Fatal("no intersection")
	}
	// Intersections at (3, ±4).
	for _, p := range []Point{p1, p2} {
		if math.Abs(p.X-3) > 1e-9 || math.Abs(math.Abs(p.Y)-4) > 1e-9 {
			t.Errorf("intersection %v, want (3, ±4)", p)
		}
	}
	if p1.Y*p2.Y >= 0 {
		t.Error("intersections on the same side")
	}
}

func TestIntersectCirclesDegenerate(t *testing.T) {
	a := Circle{Center: Point{0, 0}, Radius: 1}
	if _, _, ok := IntersectCircles(a, Circle{Center: Point{5, 0}, Radius: 1}); ok {
		t.Error("disjoint circles intersected")
	}
	if _, _, ok := IntersectCircles(a, Circle{Center: Point{0, 0}, Radius: 2}); ok {
		t.Error("concentric circles intersected")
	}
	if _, _, ok := IntersectCircles(a, Circle{Center: Point{0.1, 0}, Radius: 3}); ok {
		t.Error("contained circle intersected")
	}
}

func TestIntersectCirclesTangent(t *testing.T) {
	a := Circle{Center: Point{0, 0}, Radius: 2}
	b := Circle{Center: Point{4, 0}, Radius: 2}
	p1, p2, ok := IntersectCircles(a, b)
	if !ok {
		t.Fatal("tangent circles should intersect")
	}
	if p1.Dist(p2) > 1e-9 {
		t.Errorf("tangent intersections differ: %v %v", p1, p2)
	}
	if math.Abs(p1.X-2) > 1e-9 || math.Abs(p1.Y) > 1e-9 {
		t.Errorf("tangent point %v, want (2,0)", p1)
	}
}

func TestTrilaterateThreeCircles(t *testing.T) {
	truth := Point{3.7, 8.1}
	anchors := []Point{{0, 0}, {10, 0}, {0, 10}}
	var circles []Circle
	for _, a := range anchors {
		circles = append(circles, Circle{Center: a, Radius: truth.Dist(a)})
	}
	got, amb, err := Trilaterate(circles)
	if err != nil {
		t.Fatal(err)
	}
	if amb != nil {
		t.Errorf("unexpected ambiguity: %v", amb)
	}
	if got.Dist(truth) > 1e-6 {
		t.Errorf("position %v, want %v", got, truth)
	}
}

func TestTrilaterateTwoCirclesAmbiguous(t *testing.T) {
	truth := Point{3, 4}
	mirror := Point{3, -4} // reflected across the baseline (y=0)
	anchors := []Point{{0, 0}, {6, 0}}
	var circles []Circle
	for _, a := range anchors {
		circles = append(circles, Circle{Center: a, Radius: truth.Dist(a)})
	}
	_, amb, err := Trilaterate(circles)
	if err != nil {
		t.Fatal(err)
	}
	if len(amb) != 2 {
		t.Fatalf("ambiguous solutions = %d, want 2 (%v)", len(amb), amb)
	}
	foundTruth, foundMirror := false, false
	for _, p := range amb {
		if p.Dist(truth) < 1e-3 {
			foundTruth = true
		}
		if p.Dist(mirror) < 1e-3 {
			foundMirror = true
		}
	}
	if !foundTruth || !foundMirror {
		t.Errorf("candidates %v missing truth/mirror", amb)
	}
}

func TestTrilaterateNoisyOverdetermined(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := Point{12, 7}
	anchors := []Point{{0, 0}, {20, 0}, {0, 20}, {20, 20}}
	for trial := 0; trial < 20; trial++ {
		var circles []Circle
		for _, a := range anchors {
			circles = append(circles, Circle{Center: a, Radius: truth.Dist(a) + rng.NormFloat64()*0.1})
		}
		got, _, err := Trilaterate(circles)
		if err != nil {
			t.Fatal(err)
		}
		if got.Dist(truth) > 0.3 {
			t.Errorf("trial %d: error %v m", trial, got.Dist(truth))
		}
	}
}

func TestTrilaterateErrors(t *testing.T) {
	if _, _, err := Trilaterate(nil); !errors.Is(err, ErrTooFewCircles) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := Trilaterate([]Circle{{Center: Point{0, 0}, Radius: 1}}); !errors.Is(err, ErrTooFewCircles) {
		t.Errorf("err = %v", err)
	}
}

func TestTrilaterateLeastSquaresProperty(t *testing.T) {
	// Property: the returned point's residual is no worse than at small
	// perturbations around it (local optimality).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := Point{rng.Float64() * 10, rng.Float64() * 10}
		anchors := []Point{{0, 0}, {10, 0}, {5, 10}}
		var circles []Circle
		for _, a := range anchors {
			circles = append(circles, Circle{Center: a, Radius: truth.Dist(a) + rng.NormFloat64()*0.05})
		}
		got, _, err := Trilaterate(circles)
		if err != nil {
			return true
		}
		ssq := func(p Point) float64 {
			var s float64
			for _, c := range circles {
				r := p.Dist(c.Center) - c.Radius
				s += r * r
			}
			return s
		}
		base := ssq(got)
		for _, d := range []Point{{0.01, 0}, {-0.01, 0}, {0, 0.01}, {0, -0.01}} {
			if ssq(got.Add(d)) < base-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLinearArray(t *testing.T) {
	a := LinearArray(3, 0.3)
	if len(a.Antennas) != 3 {
		t.Fatalf("antennas = %d", len(a.Antennas))
	}
	if math.Abs(a.Span()-0.6) > 1e-12 {
		t.Errorf("span = %v, want 0.6", a.Span())
	}
	// Centered: mean position at origin.
	var mean Point
	for _, p := range a.Antennas {
		mean = mean.Add(p)
	}
	if mean.Norm() > 1e-12 {
		t.Errorf("array not centered: %v", mean)
	}
}

func TestArrayAt(t *testing.T) {
	a := LinearArray(2, 1)
	pts := a.At(Point{10, 5})
	if pts[0].Dist(Point{9.5, 5}) > 1e-12 || pts[1].Dist(Point{10.5, 5}) > 1e-12 {
		t.Errorf("At = %v", pts)
	}
}

func TestRejectOutliersDropsBadDistance(t *testing.T) {
	// Three antennas 0.3 m apart; one distance is wildly wrong.
	arr := LinearArray(3, 0.3)
	target := Point{5, 4}
	var circles []Circle
	for _, ant := range arr.At(Point{0, 0}) {
		circles = append(circles, Circle{Center: ant, Radius: target.Dist(ant)})
	}
	circles[1].Radius += 4 // 4 m outlier on the middle antenna
	kept := RejectOutliers(circles, 0.3)
	for _, i := range kept {
		if i == 1 {
			t.Errorf("outlier circle kept: %v", kept)
		}
	}
	if len(kept) != 2 {
		t.Errorf("kept = %v, want the two good circles", kept)
	}
}

func TestRejectOutliersKeepsConsistent(t *testing.T) {
	arr := LinearArray(3, 0.3)
	target := Point{5, 4}
	var circles []Circle
	for _, ant := range arr.At(Point{0, 0}) {
		circles = append(circles, Circle{Center: ant, Radius: target.Dist(ant) + 0.05})
	}
	kept := RejectOutliers(circles, 0.3)
	if len(kept) != 3 {
		t.Errorf("kept = %v, want all 3", kept)
	}
}

func TestRejectOutliersSmallInputs(t *testing.T) {
	c := []Circle{{Radius: 1}, {Center: Point{1, 0}, Radius: 99}}
	if got := RejectOutliers(c, 0.1); len(got) != 2 {
		t.Errorf("two circles must always be kept: %v", got)
	}
	if got := RejectOutliers(nil, 0.1); len(got) != 0 {
		t.Errorf("empty input: %v", got)
	}
}

func TestDisambiguateByMotion(t *testing.T) {
	// The receiver moves +1 m in x between fixes. The true target is at
	// (3, 4) in the world; the first fix (receiver at origin) yields
	// candidates (3, ±4); the second fix (receiver at (1,0)) yields
	// candidates (2, ±4) in the receiver frame.
	prev := []Point{{3, 4}, {3, -4}}
	cur := []Point{{2, 4}, {2, -4}}
	got, err := DisambiguateByMotion(prev, cur, Point{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(Point{2, 4}) > 1e-9 && got.Dist(Point{2, -4}) > 1e-9 {
		t.Fatalf("unexpected candidate %v", got)
	}
	// Both (2,4)+(1,0)=(3,4) and (2,-4)+(1,0)=(3,-4) match a prev
	// candidate exactly here, so refine: move the receiver along y too.
	prev = []Point{{3, 4}, {3, -4}}
	cur = []Point{{2, 3}, {2, -5}}
	got, err = DisambiguateByMotion(prev, cur, Point{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(Point{2, 3}) > 1e-9 {
		t.Errorf("disambiguation chose %v, want (2,3)", got)
	}
}

func TestDisambiguateByMotionErrors(t *testing.T) {
	if _, err := DisambiguateByMotion(nil, []Point{{1, 1}}, Point{}); err == nil {
		t.Error("empty prev accepted")
	}
	if _, err := DisambiguateByMotion([]Point{{1, 1}}, nil, Point{}); err == nil {
		t.Error("empty cur accepted")
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	if got := p.Add(Point{3, -1}); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(Point{1, 1}); got != (Point{0, 1}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := (Point{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := p.String(); got != "(1.000, 2.000)" {
		t.Errorf("String = %q", got)
	}
}
