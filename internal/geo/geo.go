// Package geo implements the geometry of §8: converting per-antenna
// distances into a device position by intersecting circles, with
// least-squares refinement, geometric outlier rejection, and the
// two-solution disambiguation strategies the paper describes.
package geo

import (
	"errors"
	"fmt"
	"math"

	"chronos/internal/linalg"
)

// Point is a 2D position in meters.
type Point struct{ X, Y float64 }

// Dist returns the Euclidean distance to q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Add returns p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p−q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns s·p.
func (p Point) Scale(s float64) Point { return Point{s * p.X, s * p.Y} }

// Norm returns the Euclidean norm of p as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Circle is a distance constraint: the target lies Radius meters from
// Center.
type Circle struct {
	Center Point
	Radius float64
}

// IntersectCircles returns the (up to two) intersection points of two
// circles. ok is false when the circles are disjoint, concentric, or one
// contains the other without touching.
func IntersectCircles(a, b Circle) (p1, p2 Point, ok bool) {
	d := a.Center.Dist(b.Center)
	if d == 0 || d > a.Radius+b.Radius || d < math.Abs(a.Radius-b.Radius) {
		return Point{}, Point{}, false
	}
	// Standard two-circle intersection.
	x := (d*d - b.Radius*b.Radius + a.Radius*a.Radius) / (2 * d)
	h2 := a.Radius*a.Radius - x*x
	if h2 < 0 {
		h2 = 0
	}
	h := math.Sqrt(h2)
	ex := b.Center.Sub(a.Center).Scale(1 / d)
	ey := Point{-ex.Y, ex.X}
	mid := a.Center.Add(ex.Scale(x))
	return mid.Add(ey.Scale(h)), mid.Sub(ey.Scale(h)), true
}

// ErrTooFewCircles reports fewer than two distance constraints.
var ErrTooFewCircles = errors.New("geo: need at least two circles")

// ErrNoIntersection reports that no consistent position exists.
var ErrNoIntersection = errors.New("geo: circles do not intersect")

// circlesResidual adapts the trilateration problem to Gauss–Newton.
type circlesResidual struct{ circles []Circle }

func (c *circlesResidual) Dims() (int, int) { return len(c.circles), 2 }

func (c *circlesResidual) Eval(x, r, jac []float64) {
	for i, ci := range c.circles {
		dx, dy := x[0]-ci.Center.X, x[1]-ci.Center.Y
		d := math.Hypot(dx, dy)
		r[i] = d - ci.Radius
		if d < 1e-9 {
			jac[i*2], jac[i*2+1] = 0, 0
			continue
		}
		jac[i*2], jac[i*2+1] = dx/d, dy/d
	}
}

// Trilaterate finds the point minimizing the squared distance residuals to
// all circles via multi-start Gauss–Newton (§8: "well-known least-squares
// optimizations"). With exactly two circles the two intersection points
// are both returned via the ambiguous pair; with three or more the unique
// least-squares point is returned in best and ambiguous is nil.
func Trilaterate(circles []Circle) (best Point, ambiguous []Point, err error) {
	if len(circles) < 2 {
		return Point{}, nil, ErrTooFewCircles
	}

	// Seed points: pairwise circle intersections, plus the centroid.
	var seeds []Point
	for i := 0; i < len(circles); i++ {
		for j := i + 1; j < len(circles); j++ {
			if p1, p2, ok := IntersectCircles(circles[i], circles[j]); ok {
				seeds = append(seeds, p1, p2)
			}
		}
	}
	var centroid Point
	for _, c := range circles {
		centroid = centroid.Add(c.Center)
	}
	centroid = centroid.Scale(1 / float64(len(circles)))
	seeds = append(seeds, centroid, centroid.Add(Point{0.5, 0.5}))

	// Physical bound: the target cannot be farther from the anchor
	// centroid than the largest measured radius plus the array span
	// (with slack). Near-tangent circles otherwise send Gauss–Newton
	// kilometers down the baseline.
	maxR := 0.0
	for _, c := range circles {
		if c.Radius > maxR {
			maxR = c.Radius
		}
	}
	bound := 1.5*maxR + 2

	res := &circlesResidual{circles: circles}
	type sol struct {
		p    Point
		norm float64
	}
	var sols []sol
	for _, s := range seeds {
		x, norm, gnErr := linalg.GaussNewton(res, []float64{s.X, s.Y},
			linalg.GNOptions{MaxIter: 80, StepLimit: maxR/4 + 0.5})
		if gnErr != nil && !errors.Is(gnErr, linalg.ErrNoConverge) {
			continue
		}
		p := Point{x[0], x[1]}
		if p.Sub(centroid).Norm() > bound {
			continue
		}
		sols = append(sols, sol{p, norm})
	}
	if len(sols) == 0 {
		// Every refined solution diverged; fall back to the best raw
		// seed inside the bound.
		best, bestScore := Point{}, math.Inf(1)
		found := false
		for _, s := range seeds {
			if s.Sub(centroid).Norm() > bound {
				continue
			}
			var score float64
			for _, c := range circles {
				r := s.Dist(c.Center) - c.Radius
				score += r * r
			}
			if score < bestScore {
				best, bestScore, found = s, score, true
			}
		}
		if !found {
			return Point{}, nil, ErrNoIntersection
		}
		sols = append(sols, sol{best, math.Sqrt(bestScore)})
	}

	bestSol := sols[0]
	for _, s := range sols[1:] {
		if s.norm < bestSol.norm {
			bestSol = s
		}
	}

	if len(circles) == 2 {
		// Report both near-optimal minima as the ambiguous pair.
		var distinct []Point
		for _, s := range sols {
			if s.norm > bestSol.norm+1e-6 {
				continue
			}
			dup := false
			for _, p := range distinct {
				if p.Dist(s.p) < 1e-3 {
					dup = true
					break
				}
			}
			if !dup {
				distinct = append(distinct, s.p)
			}
		}
		return bestSol.p, distinct, nil
	}
	return bestSol.p, nil, nil
}

// Array is a rigid antenna array: the known relative positions of a
// device's antennas (§8, §10 antenna-separation trade-off).
type Array struct {
	Antennas []Point
}

// LinearArray builds n antennas spaced sep meters apart along the x-axis,
// centered on the origin — the laptop (30 cm mean) and AP-style (100 cm)
// geometries of §12.2.
func LinearArray(n int, sep float64) Array {
	pts := make([]Point, n)
	mid := float64(n-1) / 2
	for i := range pts {
		pts[i] = Point{(float64(i) - mid) * sep, 0}
	}
	return Array{Antennas: pts}
}

// TriangleArray builds three antennas at the vertices of an equilateral
// triangle with the given side length, centered on the origin. Unlike a
// collinear array, a triangle breaks the mirror ambiguity of §8: three
// non-collinear circles intersect at a unique point. Real laptop antennas
// (spread around a screen bezel) are closer to this geometry than to a
// perfect line.
func TriangleArray(side float64) Array {
	r := side / math.Sqrt(3) // circumradius
	return Array{Antennas: []Point{
		{X: 0, Y: r},
		{X: -side / 2, Y: -r / 2},
		{X: side / 2, Y: -r / 2},
	}}
}

// Span returns the largest inter-antenna distance.
func (a Array) Span() float64 {
	var m float64
	for i := range a.Antennas {
		for j := i + 1; j < len(a.Antennas); j++ {
			if d := a.Antennas[i].Dist(a.Antennas[j]); d > m {
				m = d
			}
		}
	}
	return m
}

// At returns the array's antenna positions when the array origin sits at
// pos (no rotation).
func (a Array) At(pos Point) []Point {
	out := make([]Point, len(a.Antennas))
	for i, ant := range a.Antennas {
		out[i] = pos.Add(ant)
	}
	return out
}

// RejectOutliers drops distance estimates inconsistent with the array
// geometry: any two antennas of the same rigid device can observe
// distances differing by at most the antenna separation (triangle
// inequality), plus a noise slack. It returns the kept circle indices.
// This is the geometric outlier rejection of §12.2.
func RejectOutliers(circles []Circle, slack float64) []int {
	n := len(circles)
	if n <= 2 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	// Score each circle by how many pairwise constraints it satisfies.
	ok := make([]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sep := circles[i].Center.Dist(circles[j].Center)
			if math.Abs(circles[i].Radius-circles[j].Radius) <= sep+slack {
				ok[i]++
				ok[j]++
			}
		}
	}
	// Keep circles consistent with a majority of the others.
	var kept []int
	need := (n - 1) / 2
	for i, score := range ok {
		if score >= need {
			kept = append(kept, i)
		}
	}
	if len(kept) < 2 {
		// Fall back to keeping everything rather than failing outright.
		kept = kept[:0]
		for i := 0; i < n; i++ {
			kept = append(kept, i)
		}
	}
	return kept
}

// DisambiguateByMotion implements §8 strategy (2): given the two candidate
// positions from a 2-antenna fix and a second fix taken after moving the
// receiver by the known displacement, pick the candidate that stayed
// consistent. prev are the candidates from the first fix (in the first
// fix's frame), cur from the second, and displacement is how far the
// receiver moved between fixes. The winner is the current-fix candidate
// whose implied target position (relative to the world) moved least.
func DisambiguateByMotion(prev, cur []Point, displacement Point) (Point, error) {
	if len(prev) == 0 || len(cur) == 0 {
		return Point{}, errors.New("geo: missing candidates")
	}
	best := cur[0]
	bestMove := math.Inf(1)
	for _, c := range cur {
		world := c.Add(displacement) // candidate in the first fix's frame
		for _, p := range prev {
			if move := world.Dist(p); move < bestMove {
				bestMove = move
				best = c
			}
		}
	}
	return best, nil
}
