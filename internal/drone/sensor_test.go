package drone

import (
	"math"
	"math/rand"
	"testing"

	"chronos/internal/geo"
	"chronos/internal/stats"
)

func TestPipelineSensorAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("full ToF pipeline per range — slow under -race")
	}
	rng := rand.New(rand.NewSource(1))
	s, err := NewPipelineSensor(rng, Room(6, 5))
	if err != nil {
		t.Fatal(err)
	}
	pos := geo.Point{X: 1, Y: 2}
	for _, target := range []geo.Point{{X: 2.4, Y: 2}, {X: 4, Y: 4}, {X: 5, Y: 1}} {
		d := s.Range(rng, pos, target)
		truth := pos.Dist(target)
		if e := math.Abs(d - truth); e > 0.3 {
			t.Errorf("target %v: range %.3f, truth %.3f (err %.0f cm)", target, d, truth, e*100)
		}
	}
}

func TestPipelineSensorNonNegative(t *testing.T) {
	if testing.Short() {
		t.Skip("full ToF pipeline per range — slow under -race")
	}
	rng := rand.New(rand.NewSource(2))
	s, err := NewPipelineSensor(rng, Room(6, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Nearly coincident devices must not produce a negative range.
	if d := s.Range(rng, geo.Point{X: 2, Y: 2}, geo.Point{X: 2.15, Y: 2}); d < 0 {
		t.Errorf("negative range %v", d)
	}
}

func TestTrackWithPipelineSensor(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline flight is slow")
	}
	rng := rand.New(rand.NewSource(3))
	s, err := NewPipelineSensor(rng, Room(6, 5))
	if err != nil {
		t.Fatal(err)
	}
	// A short flight at a reduced control rate keeps the full pipeline
	// tractable in tests; the controller still has to hold distance.
	res := Track(rng, s, TrackConfig{Duration: 8, RateHz: 4, Settle: 2})
	if len(res.Deviations) == 0 {
		t.Fatal("no deviations recorded")
	}
	med := stats.Median(res.Deviations)
	if med > 0.5 {
		t.Errorf("median deviation %.0f cm with full pipeline", med*100)
	}
}

func TestRoomGeometry(t *testing.T) {
	env := Room(6, 5)
	if len(env.Walls) != 4 {
		t.Fatalf("walls = %d", len(env.Walls))
	}
}
