package drone

import (
	"math"
	"math/rand"
	"testing"

	"chronos/internal/geo"
	"chronos/internal/stats"
)

func TestStatSensorCoreAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := StatSensor{OutlierProb: 1e-12}
	pos, target := geo.Point{X: 0, Y: 0}, geo.Point{X: 3, Y: 4}
	var errs []float64
	for i := 0; i < 5000; i++ {
		errs = append(errs, s.Range(rng, pos, target)-5)
	}
	if m := stats.Mean(errs); math.Abs(m) > 0.01 {
		t.Errorf("bias = %v", m)
	}
	if sd := stats.StdDev(errs); sd < 0.08 || sd > 0.12 {
		t.Errorf("std = %v, want ≈0.10", sd)
	}
}

func TestStatSensorOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := StatSensor{OutlierProb: 0.5, OutlierMag: 5}
	pos, target := geo.Point{}, geo.Point{X: 10, Y: 0}
	big := 0
	n := 2000
	for i := 0; i < n; i++ {
		if math.Abs(s.Range(rng, pos, target)-10) > 2 {
			big++
		}
	}
	if frac := float64(big) / float64(n); frac < 0.4 || frac > 0.6 {
		t.Errorf("outlier fraction = %v, want ≈0.5", frac)
	}
}

func TestStatSensorNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := StatSensor{OutlierProb: 0.5, OutlierMag: 10}
	for i := 0; i < 1000; i++ {
		if d := s.Range(rng, geo.Point{}, geo.Point{X: 0.5, Y: 0}); d < 0 {
			t.Fatal("negative range")
		}
	}
}

func TestControllerConvergesFromOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ctl := NewController(1.4)
	user := geo.Point{X: 0, Y: 0}
	pos := geo.Point{X: 4, Y: 0} // far too distant
	s := StatSensor{CoreSigma: 0.02, OutlierProb: 1e-12}
	for i := 0; i < 100; i++ {
		meas := s.Range(rng, pos, user)
		pos = ctl.Step(pos, meas, user.Sub(pos))
	}
	if d := pos.Dist(user); math.Abs(d-1.4) > 0.1 {
		t.Errorf("settled at %v m, want 1.4", d)
	}
}

func TestControllerBacksAwayWhenTooClose(t *testing.T) {
	ctl := NewController(1.4)
	pos := geo.Point{X: 0.5, Y: 0}
	user := geo.Point{}
	next := ctl.Step(pos, 0.5, user.Sub(pos))
	if next.Dist(user) <= pos.Dist(user) {
		t.Errorf("drone moved closer when too close: %v → %v", pos, next)
	}
}

func TestControllerStepClamped(t *testing.T) {
	ctl := NewController(1.4)
	pos := geo.Point{X: 100, Y: 0}
	next := ctl.Step(pos, 100, geo.Point{X: -1, Y: 0})
	if moved := pos.Dist(next); moved > ctl.MaxStep+1e-12 {
		t.Errorf("step %v exceeds MaxStep %v", moved, ctl.MaxStep)
	}
}

func TestControllerMedianRejectsOutlier(t *testing.T) {
	ctl := NewController(1.4)
	pos := geo.Point{X: 1.4, Y: 0}
	user := geo.Point{}
	// Prime the history at the desired distance, then feed one wild
	// outlier: the median filter must keep the drone steady.
	for i := 0; i < 5; i++ {
		ctl.Step(pos, 1.4, user.Sub(pos))
	}
	next := ctl.Step(pos, 8.0, user.Sub(pos))
	if moved := pos.Dist(next); moved > 0.02 {
		t.Errorf("outlier moved drone by %v m", moved)
	}
}

func TestControllerZeroDirection(t *testing.T) {
	ctl := NewController(1.4)
	pos := geo.Point{X: 1, Y: 1}
	if next := ctl.Step(pos, 2, geo.Point{}); next != pos {
		t.Error("zero direction moved the drone")
	}
}

func TestWalkStaysInRoom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := NewWalk(rng, 6, 5)
	for i := 0; i < 5000; i++ {
		p := w.Advance(1.0 / 12)
		if p.X < 0 || p.X > 6 || p.Y < 0 || p.Y > 5 {
			t.Fatalf("user left the room: %v", p)
		}
	}
}

func TestWalkSpeed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := NewWalk(rng, 50, 50) // huge room: rarely reaches waypoints
	prev := w.Pos()
	for i := 0; i < 100; i++ {
		cur := w.Advance(0.1)
		if d := cur.Dist(prev); d > 0.8*0.1+1e-9 {
			t.Fatalf("step %d moved %v m in 0.1 s at 0.8 m/s", i, d)
		}
		prev = cur
	}
}

func TestTrackHoldsDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sensor := StatSensor{}
	res := Track(rng, sensor, TrackConfig{Duration: 60})
	if len(res.Deviations) == 0 {
		t.Fatal("no deviations recorded")
	}
	med := stats.Median(res.Deviations)
	// Fig. 10a: median deviation ≈ 4.2 cm. Allow a loose band around it.
	if med > 0.15 {
		t.Errorf("median deviation = %.1f cm, want < 15 cm", med*100)
	}
	if len(res.DronePath) != len(res.UserPath) {
		t.Error("trajectory lengths differ")
	}
}

func TestTrackDroneFollowsUser(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	res := Track(rng, StatSensor{}, TrackConfig{Duration: 30})
	// At every step the drone should be within a couple of meters of the
	// user (it is trying to hold 1.4 m).
	for i := range res.DronePath {
		if d := res.DronePath[i].Dist(res.UserPath[i]); d > 4 {
			t.Fatalf("step %d: drone %v m from user", i, d)
		}
	}
}

func TestTrackDeterministic(t *testing.T) {
	a := Track(rand.New(rand.NewSource(9)), StatSensor{}, TrackConfig{Duration: 10})
	b := Track(rand.New(rand.NewSource(9)), StatSensor{}, TrackConfig{Duration: 10})
	if stats.Median(a.Deviations) != stats.Median(b.Deviations) {
		t.Error("same seed produced different runs")
	}
}
