package drone

import (
	"math/rand"

	"chronos/internal/csi"
	"chronos/internal/geo"
	"chronos/internal/rf"
	"chronos/internal/tof"
	"chronos/internal/wifi"
)

// PipelineSensor is a RangeSensor backed by the complete Chronos
// time-of-flight pipeline: every Range call rebuilds the multipath
// channel for the current drone/user geometry, sweeps the Wi-Fi bands
// through the simulated radios, and runs the full estimator. It is what
// the real drone runs (§9); StatSensor is its fast statistical stand-in
// for large campaigns.
type PipelineSensor struct {
	Env    *rf.Environment
	Link   *csi.Link
	Est    *tof.Estimator
	Bands  []wifi.Band
	Offset float64 // calibration offset in seconds (hardware delays)
	// PairsPerBand is the CSI pairs collected per band (default 2).
	PairsPerBand int
}

// NewPipelineSensor wires fresh radios and a 5 GHz estimator over the
// given environment (the §12.4 room) and calibrates them at a known
// 2 m reference geometry.
func NewPipelineSensor(rng *rand.Rand, env *rf.Environment) (*PipelineSensor, error) {
	tx, rx := csi.NewRadio(rng), csi.NewRadio(rng)
	tx.Quirk24, rx.Quirk24 = false, false
	s := &PipelineSensor{
		Env:          env,
		Link:         &csi.Link{TX: tx, RX: rx, SNRdB: 28},
		Est:          tof.NewEstimator(tof.Config{Mode: tof.Bands5GHzOnly, MaxIter: 800}),
		Bands:        wifi.Bands5GHz(),
		PairsPerBand: 2,
	}
	// Calibration at a marked 2 m spot in the room.
	a, b := geo.Point{X: 1, Y: 1}, geo.Point{X: 3, Y: 1}
	s.setChannel(a, b)
	sweep := s.Link.Sweep(rng, s.Bands, 3, 2.4e-3)
	off, err := tof.Calibrate(s.Est, s.Bands, sweep, a.Dist(b))
	if err != nil {
		return nil, err
	}
	s.Offset = off
	return s, nil
}

func (s *PipelineSensor) setChannel(pos, target geo.Point) {
	s.Link.Channel = rf.GenerateChannel(s.Env,
		rf.Point2{X: pos.X, Y: pos.Y},
		rf.Point2{X: target.X, Y: target.Y},
		rf.PropagationOptions{Freq: 5.5e9, MinGain: 0.15, MaxPaths: 6})
}

// Range implements RangeSensor via a full band sweep and inversion.
func (s *PipelineSensor) Range(rng *rand.Rand, pos, target geo.Point) float64 {
	pairs := s.PairsPerBand
	if pairs == 0 {
		pairs = 2
	}
	s.setChannel(pos, target)
	sweep := s.Link.Sweep(rng, s.Bands, pairs, 2.4e-3)
	r, err := s.Est.Estimate(s.Bands, sweep)
	if err != nil {
		// A failed sweep (e.g. all bands faded) reports the last-known
		// geometry as a crude fallback; the controller's median filter
		// absorbs it.
		return pos.Dist(target)
	}
	d := (r.ToF - s.Offset) * wifi.SpeedOfLight
	if d < 0 {
		d = 0
	}
	return d
}

// Room builds the §12.4 motion-capture room as an rf.Environment: a
// 6 m × 5 m space with reflective walls.
func Room(w, h float64) *rf.Environment {
	return &rf.Environment{Walls: rf.Rectangle(0, 0, w, h, 0.55)}
}
