// Package drone implements the §9 personal-drone application: a quadrotor
// that keeps a fixed distance to the user's device using only Chronos
// range estimates and a negative-feedback controller, evaluated in a
// motion-capture room as in §12.4.
package drone

import (
	"math"
	"math/rand"

	"chronos/internal/geo"
)

// RangeSensor produces a distance measurement from the drone to the user
// device. The production implementation wraps the full Chronos ToF
// pipeline; experiments may use a statistical model fitted to the
// pipeline's measured error distribution for speed.
type RangeSensor interface {
	// Range returns a distance estimate in meters between pos and target.
	Range(rng *rand.Rand, pos, target geo.Point) float64
}

// StatSensor is a range sensor whose errors follow the empirical Chronos
// ToF error model: a tight Gaussian core with occasional heavy-tail
// outliers (the profile ghost failures of §12.1's CDF tail).
type StatSensor struct {
	CoreSigma   float64 // core error std dev in meters (default 0.10)
	OutlierProb float64 // probability of a tail error (default 0.05)
	OutlierMag  float64 // tail error magnitude in meters (default 3.75 ≈ 12.5 ns)
}

// Range implements RangeSensor.
func (s StatSensor) Range(rng *rand.Rand, pos, target geo.Point) float64 {
	sigma := s.CoreSigma
	if sigma == 0 {
		sigma = 0.10
	}
	op := s.OutlierProb
	if op == 0 {
		op = 0.05
	}
	om := s.OutlierMag
	if om == 0 {
		om = 3.75
	}
	d := pos.Dist(target) + rng.NormFloat64()*sigma
	if rng.Float64() < op {
		if rng.Float64() < 0.5 {
			d -= om
		} else {
			d += om
		}
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Controller is the §9 negative-feedback distance keeper with the
// measurement averaging and outlier rejection the paper credits for the
// drone's higher accuracy (§12.4: "drones measure multiple distances as
// they navigate, which helps de-noise measurements and remove outliers").
type Controller struct {
	Target geo.Point // current believed user position (for direction)
	// Desired is the distance to hold (the paper uses 1.4 m).
	Desired float64
	// Gain is the proportional step factor (default 1.0).
	Gain float64
	// DGain adds derivative action to counter tracking lag against a
	// moving user (default 0.6).
	DGain float64
	// MaxStep clamps movement per control tick in meters (default 0.3 —
	// a gentle quadrotor step at 12 Hz).
	MaxStep float64
	// History is the median/outlier window (default 3 measurements —
	// enough to reject single-sweep ghosts without adding much lag).
	History int

	recent  []float64
	prevErr float64
	primed  bool
}

// NewController builds a controller holding the desired distance.
func NewController(desired float64) *Controller {
	return &Controller{Desired: desired, Gain: 1.0, DGain: 0.6, MaxStep: 0.3, History: 3}
}

// filteredRange folds a new measurement into the history window and
// returns the outlier-rejected estimate: the median of the window.
func (c *Controller) filteredRange(meas float64) float64 {
	c.recent = append(c.recent, meas)
	if len(c.recent) > c.History {
		c.recent = c.recent[1:]
	}
	cp := append([]float64(nil), c.recent...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	if n := len(cp); n%2 == 1 {
		return cp[n/2]
	} else {
		return (cp[n/2-1] + cp[n/2]) / 2
	}
}

// Step computes the drone's next position given its current position, a
// fresh range measurement, and the (compass-derived, §12.4) unit
// direction from drone to user. If the user is closer than desired the
// drone backs away; farther, it approaches.
func (c *Controller) Step(pos geo.Point, meas float64, toUser geo.Point) geo.Point {
	d := c.filteredRange(meas)
	err := d - c.Desired // positive → too far → move toward the user
	derr := 0.0
	if c.primed {
		derr = err - c.prevErr
	}
	c.prevErr, c.primed = err, true
	step := c.Gain*err + c.DGain*derr
	if step > c.MaxStep {
		step = c.MaxStep
	} else if step < -c.MaxStep {
		step = -c.MaxStep
	}
	norm := toUser.Norm()
	if norm < 1e-9 {
		return pos
	}
	dir := toUser.Scale(1 / norm)
	return pos.Add(dir.Scale(step))
}

// Walk is a user trajectory generator: a random-waypoint walk inside a
// rectangular room (the 6 m × 5 m VICON room of §12.4).
type Walk struct {
	RoomW, RoomH float64 // room size in meters
	Speed        float64 // walking speed m/s (default 0.8)
	pos          geo.Point
	waypoint     geo.Point
	rng          *rand.Rand
}

// NewWalk starts a walk at the room center.
func NewWalk(rng *rand.Rand, w, h float64) *Walk {
	wk := &Walk{RoomW: w, RoomH: h, Speed: 0.8, rng: rng}
	wk.pos = geo.Point{X: w / 2, Y: h / 2}
	wk.pickWaypoint()
	return wk
}

func (w *Walk) pickWaypoint() {
	w.waypoint = geo.Point{
		X: 0.5 + w.rng.Float64()*(w.RoomW-1),
		Y: 0.5 + w.rng.Float64()*(w.RoomH-1),
	}
}

// Pos returns the user's current position.
func (w *Walk) Pos() geo.Point { return w.pos }

// Advance moves the user dt seconds along the walk.
func (w *Walk) Advance(dt float64) geo.Point {
	remaining := w.Speed * dt
	for remaining > 0 {
		to := w.waypoint.Sub(w.pos)
		d := to.Norm()
		if d <= remaining {
			w.pos = w.waypoint
			remaining -= d
			w.pickWaypoint()
			continue
		}
		w.pos = w.pos.Add(to.Scale(remaining / d))
		remaining = 0
	}
	return w.pos
}

// TrackResult is the outcome of one following run.
type TrackResult struct {
	// Deviations are |distance − desired| per control tick, in meters
	// (the Fig. 10a sample).
	Deviations []float64
	// DronePath and UserPath are the trajectories (Fig. 10b).
	DronePath []geo.Point
	UserPath  []geo.Point
}

// TrackConfig tunes a following run.
type TrackConfig struct {
	Desired  float64 // distance to hold (default 1.4 m)
	Duration float64 // seconds of flight (default 60)
	RateHz   float64 // control rate (default 12, the sweep rate of §4)
	RoomW    float64 // default 6
	RoomH    float64 // default 5
	// Settle discards the first seconds while the controller converges
	// (default 3 s).
	Settle float64
}

func (c TrackConfig) withDefaults() TrackConfig {
	if c.Desired == 0 {
		c.Desired = 1.4
	}
	if c.Duration == 0 {
		c.Duration = 60
	}
	if c.RateHz == 0 {
		c.RateHz = 12
	}
	if c.RoomW == 0 {
		c.RoomW = 6
	}
	if c.RoomH == 0 {
		c.RoomH = 5
	}
	if c.Settle == 0 {
		c.Settle = 3
	}
	return c
}

// Track runs the full §12.4 experiment: the user walks, the drone follows
// with the feedback controller fed by sensor measurements.
func Track(rng *rand.Rand, sensor RangeSensor, cfg TrackConfig) *TrackResult {
	cfg = cfg.withDefaults()
	walk := NewWalk(rng, cfg.RoomW, cfg.RoomH)
	ctl := NewController(cfg.Desired)

	// Drone starts at the desired offset from the user.
	user := walk.Pos()
	drone := user.Add(geo.Point{X: cfg.Desired, Y: 0})

	dt := 1 / cfg.RateHz
	steps := int(cfg.Duration * cfg.RateHz)
	res := &TrackResult{}
	for i := 0; i < steps; i++ {
		user = walk.Advance(dt)
		meas := sensor.Range(rng, drone, user)
		// Direction to the user via the device compasses (§12.4); add a
		// little bearing noise so heading is not oracle-perfect.
		bearing := user.Sub(drone)
		ang := math.Atan2(bearing.Y, bearing.X) + rng.NormFloat64()*0.05
		toUser := geo.Point{X: math.Cos(ang), Y: math.Sin(ang)}
		drone = ctl.Step(drone, meas, toUser)

		if float64(i)*dt >= cfg.Settle {
			res.Deviations = append(res.Deviations, math.Abs(drone.Dist(user)-cfg.Desired))
		}
		res.DronePath = append(res.DronePath, drone)
		res.UserPath = append(res.UserPath, user)
	}
	return res
}
