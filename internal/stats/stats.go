// Package stats provides the descriptive statistics the Chronos evaluation
// harness reports: empirical CDFs, percentiles, histograms, RMSE, and
// running moments. All functions are deterministic and allocation-light so
// they can run inside benchmarks.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Median returns the median of xs, or NaN for an empty slice. The input is
// not modified.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics, or NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n−1 denominator), or NaN
// for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// RMSE returns the root-mean-square of xs (typically a slice of errors),
// or NaN for empty input.
func RMSE(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var ss float64
	for _, x := range xs {
		ss += x * x
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample (which is copied).
func NewCDF(xs []float64) *CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (q in [0,1]).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return percentileSorted(c.sorted, q*100)
}

// Median is shorthand for Quantile(0.5).
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Points samples the CDF at n evenly spaced probabilities and returns
// (value, probability) pairs suitable for plotting the paper's CDF figures.
func (c *CDF) Points(n int) [][2]float64 {
	if n < 2 || len(c.sorted) == 0 {
		return nil
	}
	out := make([][2]float64, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		out[i] = [2]float64{c.Quantile(q), q}
	}
	return out
}

// Histogram is a fixed-width-bin histogram over [Min, Max).
type Histogram struct {
	Min, Max float64
	Counts   []int
	total    int
	under    int // samples below Min
	over     int // samples at or above Max
}

// NewHistogram creates a histogram with bins equal-width bins spanning
// [min, max). It panics if bins < 1 or max <= min, which indicates a
// programming error in the harness.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins < 1 || max <= min {
		panic(fmt.Sprintf("stats: invalid histogram [%g,%g) bins=%d", min, max, bins))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Min:
		h.under++
	case x >= h.Max:
		h.over++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // float edge case at upper boundary
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// AddAll records every value in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of observations recorded (including out-of-range).
func (h *Histogram) Total() int { return h.total }

// OutOfRange returns the counts below Min and at/above Max.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// Fraction returns the fraction of all observations landing in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Running accumulates streaming mean/variance via Welford's algorithm.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (NaN when empty).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// StdDev returns the running sample standard deviation (NaN below 2 samples).
func (r *Running) StdDev() float64 {
	if r.n < 2 {
		return math.NaN()
	}
	return math.Sqrt(r.m2 / float64(r.n-1))
}

// Min and Max return the observed extrema (NaN when empty).
func (r *Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max returns the largest observation (NaN when empty).
func (r *Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}
