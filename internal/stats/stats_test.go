package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	if got := Median(nil); !math.IsNaN(got) {
		t.Errorf("empty median = %v", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentileEndpoints(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 0); got != 10 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 25 {
		t.Errorf("p50 = %v", got)
	}
}

func TestPercentileMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("mean = %v", got)
	}
	want := math.Sqrt(32.0 / 7.0)
	if got := StdDev(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", got, want)
	}
	if !math.IsNaN(StdDev([]float64{1})) {
		t.Error("stddev of single sample should be NaN")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("mean of empty should be NaN")
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{3, -4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
	if !math.IsNaN(RMSE(nil)) {
		t.Error("RMSE of empty should be NaN")
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); got != cse.want {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
}

func TestCDFQuantileInverse(t *testing.T) {
	// Quantile and At are approximate inverses on the sample support.
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	c := NewCDF(xs)
	for q := 0.05; q < 1; q += 0.05 {
		x := c.Quantile(q)
		if got := c.At(x); math.Abs(got-q) > 0.01 {
			t.Errorf("At(Quantile(%v)) = %v", q, got)
		}
	}
}

func TestCDFMedianMatchesMedian(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7}
	if got, want := NewCDF(xs).Median(), Median(xs); got != want {
		t.Errorf("CDF median %v != %v", got, want)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0][1] != 0 || pts[4][1] != 1 {
		t.Errorf("probability endpoints: %v %v", pts[0], pts[4])
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i][0] < pts[j][0] }) {
		// Values must be non-decreasing.
		for i := 1; i < len(pts); i++ {
			if pts[i][0] < pts[i-1][0] {
				t.Errorf("points not sorted: %v", pts)
			}
		}
	}
	if c.Points(1) != nil {
		t.Error("Points(1) should be nil")
	}
	if NewCDF(nil).Points(5) != nil {
		t.Error("empty CDF Points should be nil")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{0, 1.9, 2, 5, 9.999, -3, 10, 42})
	if h.Total() != 8 {
		t.Errorf("total = %d", h.Total())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("out of range: %d %d", under, over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.999
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v", got)
	}
	if got := h.Fraction(0); got != 0.25 {
		t.Errorf("Fraction(0) = %v", got)
	}
}

func TestHistogramPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestHistogramFractionsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	h := NewHistogram(-3, 3, 20)
	for i := 0; i < 5000; i++ {
		h.Add(rng.NormFloat64() * 0.8) // mostly in range
	}
	var sum float64
	for i := range h.Counts {
		sum += h.Fraction(i)
	}
	under, over := h.OutOfRange()
	sum += float64(under+over) / float64(h.Total())
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions sum to %v", sum)
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	xs := make([]float64, 500)
	var r Running
	for i := range xs {
		xs[i] = rng.NormFloat64()*7 + 3
		r.Add(xs[i])
	}
	if math.Abs(r.Mean()-Mean(xs)) > 1e-9 {
		t.Errorf("running mean %v vs %v", r.Mean(), Mean(xs))
	}
	if math.Abs(r.StdDev()-StdDev(xs)) > 1e-9 {
		t.Errorf("running std %v vs %v", r.StdDev(), StdDev(xs))
	}
	if r.N() != 500 {
		t.Errorf("N = %d", r.N())
	}
	minV, maxV := xs[0], xs[0]
	for _, x := range xs {
		minV = math.Min(minV, x)
		maxV = math.Max(maxV, x)
	}
	if r.Min() != minV || r.Max() != maxV {
		t.Errorf("min/max %v/%v vs %v/%v", r.Min(), r.Max(), minV, maxV)
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.StdDev()) || !math.IsNaN(r.Min()) || !math.IsNaN(r.Max()) {
		t.Error("empty Running should return NaN everywhere")
	}
}
