// Package netsim reproduces the §12.3 network-impact experiments: an
// access point serving a long-running flow to client-1 goes off-channel
// for one Chronos band sweep when client-2 requests localization, and we
// observe what the absence does to a TCP flow and to a buffered video
// stream (Fig. 9b and 9c).
//
// The flows are modeled at the fluid level on the mac virtual clock: TCP
// as an AIMD congestion window over a fixed RTT, video as a constant-
// bit-rate stream feeding a playout buffer. That level of detail is all
// the figures measure — bytes over time around a service gap.
package netsim

import (
	"math/rand"
	"time"
)

// TCPConfig tunes the AIMD flow model.
type TCPConfig struct {
	LinkRate   float64       // bottleneck rate in bits/s (default 24 Mbit/s 802.11n MCS)
	RTT        time.Duration // round-trip time (default 15 ms)
	SegBytes   int           // segment size (default 1448)
	Tick       time.Duration // sampling resolution (default 10 ms)
	WindowInit float64       // initial cwnd in segments (default 4)
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.LinkRate == 0 {
		c.LinkRate = 24e6
	}
	if c.RTT == 0 {
		c.RTT = 15 * time.Millisecond
	}
	if c.SegBytes == 0 {
		c.SegBytes = 1448
	}
	if c.Tick == 0 {
		c.Tick = 10 * time.Millisecond
	}
	if c.WindowInit == 0 {
		c.WindowInit = 4
	}
	return c
}

// Sample is one point of a time series.
type Sample struct {
	At    time.Duration
	Value float64
}

// Outage is a service interruption: the AP is off-channel in [Start,
// Start+Duration).
type Outage struct {
	Start    time.Duration
	Duration time.Duration
}

func inOutage(t time.Duration, outages []Outage) bool {
	for _, o := range outages {
		if t >= o.Start && t < o.Start+o.Duration {
			return true
		}
	}
	return false
}

// TCPTrace simulates an AIMD TCP flow for total duration with the given
// outages and returns throughput samples averaged over windows of
// `window` (Fig. 9c uses 1 s windows). rng adds small service jitter so
// traces look like measurements rather than staircases.
func TCPTrace(rng *rand.Rand, cfg TCPConfig, total, window time.Duration, outages []Outage) []Sample {
	cfg = cfg.withDefaults()
	// cwnd in segments; capacity in segments per RTT.
	capacity := cfg.LinkRate * cfg.RTT.Seconds() / float64(cfg.SegBytes*8)
	cwnd := cfg.WindowInit

	var samples []Sample
	var winBytes float64
	winStart := time.Duration(0)
	outageNow := false

	for t := time.Duration(0); t < total; t += cfg.Tick {
		wasOutage := outageNow
		outageNow = inOutage(t, outages)
		switch {
		case outageNow:
			// Off-channel: nothing delivered. (Bytes this tick: 0.)
		case wasOutage && !outageNow:
			// Coming back: the gap looks like loss — multiplicative
			// decrease once, then resume.
			cwnd /= 2
			if cwnd < 1 {
				cwnd = 1
			}
			fallthrough
		default:
			// Deliver cwnd segments per RTT, capped by link rate.
			rate := cwnd / cfg.RTT.Seconds() * float64(cfg.SegBytes*8) // bits/s
			if rate > cfg.LinkRate {
				rate = cfg.LinkRate
			}
			jitter := 1.0
			if rng != nil {
				jitter = 1 + rng.NormFloat64()*0.01
			}
			winBytes += rate * cfg.Tick.Seconds() / 8 * jitter
			// Additive increase up to capacity; drop back on overflow
			// (buffer loss), the classic sawtooth.
			cwnd += cfg.Tick.Seconds() / cfg.RTT.Seconds()
			if cwnd > capacity*1.1 {
				cwnd = capacity * 0.55
			}
		}

		if t-winStart+cfg.Tick >= window {
			elapsed := (t - winStart + cfg.Tick).Seconds()
			samples = append(samples, Sample{At: t + cfg.Tick, Value: winBytes * 8 / elapsed})
			winBytes = 0
			winStart = t + cfg.Tick
		}
	}
	return samples
}

// VideoConfig tunes the CBR streaming model of Fig. 9b.
type VideoConfig struct {
	BitRate      float64       // playback rate in bits/s (default 4 Mbit/s)
	DownloadRate float64       // network download rate (default 6 Mbit/s)
	Prebuffer    time.Duration // startup buffering before playback (default 1 s)
	Tick         time.Duration // sampling resolution (default 20 ms)
}

func (c VideoConfig) withDefaults() VideoConfig {
	if c.BitRate == 0 {
		c.BitRate = 4e6
	}
	if c.DownloadRate == 0 {
		c.DownloadRate = 6e6
	}
	if c.Prebuffer == 0 {
		c.Prebuffer = time.Second
	}
	if c.Tick == 0 {
		c.Tick = 20 * time.Millisecond
	}
	return c
}

// VideoTrace is the Fig. 9b result: cumulative downloaded and played
// bytes over time, plus stall accounting.
type VideoTrace struct {
	Downloaded []Sample // cumulative bytes fetched
	Played     []Sample // cumulative bytes consumed by the decoder
	Stalls     int      // playback interruptions (0 in the paper's trace)
	StallTime  time.Duration
}

// Video simulates a buffered CBR stream for total duration with outages.
func Video(cfg VideoConfig, total time.Duration, outages []Outage) *VideoTrace {
	cfg = cfg.withDefaults()
	tr := &VideoTrace{}
	var downloaded, played float64 // bytes
	playing := false
	stalled := false

	for t := time.Duration(0); t < total; t += cfg.Tick {
		if !inOutage(t, outages) {
			// The client downloads only while it is behind a modest
			// buffer target (streaming apps cap their buffer).
			if downloaded-played < cfg.BitRate*4/8 { // ≤ 4 s of media buffered
				downloaded += cfg.DownloadRate * cfg.Tick.Seconds() / 8
			}
		}
		if !playing && t >= cfg.Prebuffer {
			playing = true
		}
		if playing {
			need := cfg.BitRate * cfg.Tick.Seconds() / 8
			if downloaded-played >= need {
				played += need
				if stalled {
					stalled = false
				}
			} else {
				// Buffer underrun: the user sees a stall.
				if !stalled {
					tr.Stalls++
					stalled = true
				}
				tr.StallTime += cfg.Tick
			}
		}
		tr.Downloaded = append(tr.Downloaded, Sample{At: t, Value: downloaded})
		tr.Played = append(tr.Played, Sample{At: t, Value: played})
	}
	return tr
}

// ThroughputDipPercent computes the Fig. 9c headline number: the relative
// throughput drop (percent) of the sample window containing the outage
// versus the median of the windows before it.
func ThroughputDipPercent(samples []Sample, outage Outage) float64 {
	var before []float64
	dipValue := -1.0
	for _, s := range samples {
		switch {
		case s.At <= outage.Start:
			before = append(before, s.Value)
		case dipValue < 0:
			dipValue = s.Value
		}
	}
	if len(before) == 0 || dipValue < 0 {
		return 0
	}
	// Median of the pre-outage windows.
	med := medianOf(before)
	if med == 0 {
		return 0
	}
	return (med - dipValue) / med * 100
}

func medianOf(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	if n := len(cp); n%2 == 1 {
		return cp[n/2]
	} else {
		return (cp[n/2-1] + cp[n/2]) / 2
	}
}
