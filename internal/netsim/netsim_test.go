package netsim

import (
	"math/rand"
	"testing"
	"time"
)

func TestTCPTraceReachesLinkRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := TCPConfig{}
	samples := TCPTrace(rng, cfg, 10*time.Second, time.Second, nil)
	if len(samples) != 10 {
		t.Fatalf("samples = %d", len(samples))
	}
	// After slow ramp, throughput should hover near the link rate.
	last := samples[len(samples)-1].Value
	if last < 0.6*24e6 || last > 1.05*24e6 {
		t.Errorf("steady throughput = %.1f Mbit/s", last/1e6)
	}
}

func TestTCPTraceOutageDip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	outage := Outage{Start: 6 * time.Second, Duration: 84 * time.Millisecond}
	samples := TCPTrace(rng, TCPConfig{}, 15*time.Second, time.Second, []Outage{outage})
	dip := ThroughputDipPercent(samples, outage)
	// Fig. 9c: ≈6.5% dip for an 84 ms absence in a 1 s window.
	if dip < 2 || dip > 20 {
		t.Errorf("dip = %.1f%%, want single-digit-ish", dip)
	}
	// Throughput must recover after the outage window.
	last := samples[len(samples)-1].Value
	if last < 0.6*24e6 {
		t.Errorf("no recovery: %.1f Mbit/s", last/1e6)
	}
}

func TestTCPTraceLongerOutageBiggerDip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	short := Outage{Start: 6 * time.Second, Duration: 84 * time.Millisecond}
	long := Outage{Start: 6 * time.Second, Duration: 500 * time.Millisecond}
	dipShort := ThroughputDipPercent(TCPTrace(rng, TCPConfig{}, 12*time.Second, time.Second, []Outage{short}), short)
	dipLong := ThroughputDipPercent(TCPTrace(rng, TCPConfig{}, 12*time.Second, time.Second, []Outage{long}), long)
	if dipLong <= dipShort {
		t.Errorf("500 ms dip (%.1f%%) not bigger than 84 ms dip (%.1f%%)", dipLong, dipShort)
	}
}

func TestTCPTraceNoRngDeterministic(t *testing.T) {
	a := TCPTrace(nil, TCPConfig{}, 5*time.Second, time.Second, nil)
	b := TCPTrace(nil, TCPConfig{}, 5*time.Second, time.Second, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nil-rng traces differ")
		}
	}
}

func TestVideoNoStallWithSweepOutage(t *testing.T) {
	// Fig. 9b: an 84 ms localization outage must not stall playback —
	// the playout buffer absorbs it.
	outage := Outage{Start: 6 * time.Second, Duration: 84 * time.Millisecond}
	tr := Video(VideoConfig{}, 12*time.Second, []Outage{outage})
	if tr.Stalls != 0 {
		t.Errorf("stalls = %d, want 0", tr.Stalls)
	}
	// Downloaded stays ahead of played throughout.
	for i := range tr.Downloaded {
		if tr.Downloaded[i].Value < tr.Played[i].Value-1 {
			t.Fatalf("played ahead of downloaded at %v", tr.Downloaded[i].At)
		}
	}
}

func TestVideoDownloadPausesDuringOutage(t *testing.T) {
	outage := Outage{Start: 6 * time.Second, Duration: 500 * time.Millisecond}
	tr := Video(VideoConfig{}, 10*time.Second, []Outage{outage})
	var before, during float64
	for i := 1; i < len(tr.Downloaded); i++ {
		s := tr.Downloaded[i]
		delta := s.Value - tr.Downloaded[i-1].Value
		if s.At > outage.Start && s.At < outage.Start+outage.Duration {
			during += delta
		} else if s.At > 5*time.Second && s.At <= outage.Start {
			before += delta
		}
	}
	if during != 0 {
		t.Errorf("bytes downloaded during outage: %v", during)
	}
	if before == 0 {
		t.Error("no bytes downloaded before outage")
	}
}

func TestVideoHugeOutageStalls(t *testing.T) {
	// An outage longer than the playout buffer must eventually stall —
	// the §10 caveat about frequent localization requests.
	outage := Outage{Start: 6 * time.Second, Duration: 6 * time.Second}
	tr := Video(VideoConfig{}, 15*time.Second, []Outage{outage})
	if tr.Stalls == 0 {
		t.Error("6 s outage did not stall playback")
	}
	if tr.StallTime == 0 {
		t.Error("stall time not accounted")
	}
}

func TestVideoPrebufferDelaysPlayback(t *testing.T) {
	tr := Video(VideoConfig{Prebuffer: 2 * time.Second}, 5*time.Second, nil)
	for _, s := range tr.Played {
		if s.At < 2*time.Second && s.Value > 0 {
			t.Fatalf("playback started at %v, before prebuffer", s.At)
		}
	}
	last := tr.Played[len(tr.Played)-1]
	if last.Value == 0 {
		t.Error("playback never started")
	}
}

func TestThroughputDipEdgeCases(t *testing.T) {
	if got := ThroughputDipPercent(nil, Outage{}); got != 0 {
		t.Errorf("empty samples dip = %v", got)
	}
	s := []Sample{{At: time.Second, Value: 10}}
	if got := ThroughputDipPercent(s, Outage{Start: 2 * time.Second}); got != 0 {
		t.Errorf("no post-outage sample dip = %v", got)
	}
}

func TestMedianOfHelper(t *testing.T) {
	if got := medianOf([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := medianOf([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
}
