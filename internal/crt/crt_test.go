package crt

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"chronos/internal/wifi"
)

// makeObs builds noiseless observations for a single path of delay tau.
func makeObs(freqs []float64, tau float64, rng *rand.Rand, phaseNoise float64) []Observation {
	obs := make([]Observation, len(freqs))
	for i, f := range freqs {
		ph := -2 * math.Pi * f * tau
		if phaseNoise > 0 {
			ph += rng.NormFloat64() * phaseNoise
		}
		// Wrap as a real receiver would.
		ph = math.Mod(ph, 2*math.Pi)
		obs[i] = Observation{Freq: f, Phase: ph}
	}
	return obs
}

// fig3Freqs are the five bands of the paper's Fig. 3 example.
func fig3Freqs() []float64 {
	return []float64{2.412e9, 2.462e9, 5.18e9, 5.3e9, 5.825e9}
}

func TestSolveFig3Scenario(t *testing.T) {
	// A source at 0.6 m → τ = 2 ns, the exact example of Fig. 3.
	tau := 2e-9
	obs := makeObs(fig3Freqs(), tau, nil, 0)
	got, score, err := Solve(obs, Config{MaxTau: 10e-9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-tau) > 5e-12 {
		t.Errorf("tau = %v, want %v", got, tau)
	}
	if score < 0.999 {
		t.Errorf("score = %v, want ≈1", score)
	}
}

func TestSolveAllUSBands(t *testing.T) {
	freqs := wifi.Centers(wifi.USBands())
	for _, tau := range []float64{0.5e-9, 2e-9, 17e-9, 49.9e-9} {
		obs := makeObs(freqs, tau, nil, 0)
		got, _, err := Solve(obs, Config{MaxTau: 60e-9})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tau) > 5e-12 {
			t.Errorf("tau = %v, want %v", got, tau)
		}
	}
}

func TestSolveWithPhaseNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	freqs := wifi.Centers(wifi.USBands())
	tau := 10e-9
	var worst float64
	for trial := 0; trial < 20; trial++ {
		obs := makeObs(freqs, tau, rng, 0.2) // ~11° of phase noise
		got, _, err := Solve(obs, Config{MaxTau: 60e-9})
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(got - tau); e > worst {
			worst = e
		}
	}
	// Sub-nanosecond accuracy despite noise — the paper's core claim for
	// the single-path case.
	if worst > 0.5e-9 {
		t.Errorf("worst error = %v, want < 0.5 ns", worst)
	}
}

func TestSolveEmpty(t *testing.T) {
	if _, _, err := Solve(nil, Config{}); !errors.Is(err, ErrNoObservations) {
		t.Errorf("err = %v", err)
	}
}

func TestScorePerfectAndRandom(t *testing.T) {
	freqs := fig3Freqs()
	tau := 3e-9
	obs := makeObs(freqs, tau, nil, 0)
	if s := Score(obs, tau); s < 0.9999 {
		t.Errorf("true-tau score = %v", s)
	}
	// A far-off candidate scores clearly lower.
	if s := Score(obs, tau+1.77e-9); s > 0.9 {
		t.Errorf("wrong-tau score = %v, too high", s)
	}
	if got := Score(nil, 0); got != 0 {
		t.Errorf("empty score = %v", got)
	}
}

func TestCandidatesSpacingAndMembership(t *testing.T) {
	tau := 2e-9
	f := 2.412e9
	o := Observation{Freq: f, Phase: math.Mod(-2*math.Pi*f*tau, 2*math.Pi)}
	cands := Candidates(o, 5e-9)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	period := 1 / f
	for i, c := range cands {
		if c < 0 || c > 5e-9+1e-15 {
			t.Errorf("candidate %v out of range", c)
		}
		if i > 0 && math.Abs((c-cands[i-1])-period) > 1e-15 {
			t.Errorf("spacing %v != period %v", c-cands[i-1], period)
		}
	}
	// 2 ns must be (approximately) among the candidates.
	found := false
	for _, c := range cands {
		if math.Abs(c-tau) < 1e-13 {
			found = true
		}
	}
	if !found {
		t.Errorf("true tau not among candidates %v", cands)
	}
}

func TestCandidatesCountMatchesPeriod(t *testing.T) {
	o := Observation{Freq: 5e9, Phase: 0}
	cands := Candidates(o, 1e-9)
	// Period 0.2 ns → candidates at 0, 0.2, ..., 1.0 ns.
	if len(cands) != 6 {
		t.Errorf("got %d candidates: %v", len(cands), cands)
	}
}

func TestUnequalSpacingBoostsAmbiguityRange(t *testing.T) {
	// §4: unequally separated bands share fewer common factors, pushing
	// the first ambiguous alias farther out. With two bands 100 MHz apart
	// the alias appears at 10 ns; adding an offset band must break that
	// alias.
	tau := 1e-9
	twoBands := makeObs([]float64{5.0e9, 5.1e9}, tau, nil, 0)
	// Score at the first joint alias of the two-band system (10 ns).
	alias := tau + 10e-9
	if s := Score(twoBands, alias); s < 0.999 {
		t.Fatalf("expected alias at %v, score %v", alias, s)
	}
	three := makeObs([]float64{5.0e9, 5.1e9, 5.745e9}, tau, nil, 0)
	if s := Score(three, alias); s > 0.99 {
		t.Errorf("third band failed to break alias: score %v", s)
	}
}
