// Package crt implements the §4 Chinese-remainder-style time-of-flight
// solver: each Wi-Fi band's channel phase pins the time of flight modulo
// 1/fᵢ, and the solver finds the τ that best satisfies every band's
// congruence simultaneously — the "most aligned colored lines" search of
// Fig. 3 in the paper.
//
// Real measurements are noisy, so rather than exact modular arithmetic the
// solver scores candidate τ values by phase agreement and returns the
// best-scoring candidate. This is the noise-tolerant CRT resolution the
// paper cites [13]; the full multipath-aware generalization is the sparse
// inverse NDFT in package ndft.
package crt

import (
	"errors"
	"math"
	"math/cmplx"

	"chronos/internal/dsp"
)

// Observation is one band's phase measurement: the channel phase observed
// at carrier frequency Freq.
type Observation struct {
	Freq  float64 // carrier frequency in Hz
	Phase float64 // measured channel phase ∠h in radians
}

// ObservationsFromChannels converts per-band complex channel values into
// phase observations.
func ObservationsFromChannels(freqs []float64, h dsp.Vec) []Observation {
	obs := make([]Observation, len(freqs))
	for i := range freqs {
		obs[i] = Observation{Freq: freqs[i], Phase: cmplx.Phase(h[i])}
	}
	return obs
}

// Config tunes the alignment search.
type Config struct {
	// MaxTau bounds the search range in seconds (default 200 ns, the
	// paper's 2.4 GHz unambiguous range, ≈60 m).
	MaxTau float64
	// CoarseStep is the scan resolution in seconds (default 10 ps).
	CoarseStep float64
	// RefineIters controls the golden-section refinement around the best
	// coarse candidate (default 40).
	RefineIters int
}

func (c Config) withDefaults() Config {
	if c.MaxTau == 0 {
		c.MaxTau = 200e-9
	}
	if c.CoarseStep == 0 {
		c.CoarseStep = 10e-12
	}
	if c.RefineIters == 0 {
		c.RefineIters = 40
	}
	return c
}

// ErrNoObservations reports an empty observation set.
var ErrNoObservations = errors.New("crt: no observations")

// Score returns the phase-alignment score of candidate τ: the mean of
// cos(∠hᵢ + 2πfᵢτ) over all observations. A perfect noiseless candidate
// scores 1; random candidates score near 0. This is the continuous
// analogue of counting aligned lines in Fig. 3.
func Score(obs []Observation, tau float64) float64 {
	if len(obs) == 0 {
		return 0
	}
	var s float64
	for _, o := range obs {
		s += math.Cos(o.Phase + 2*math.Pi*o.Freq*tau)
	}
	return s / float64(len(obs))
}

// Solve scans τ ∈ [0, MaxTau] for the best phase-aligned time of flight
// and refines it. It returns the estimated τ and its alignment score.
func Solve(obs []Observation, cfg Config) (tau, score float64, err error) {
	if len(obs) == 0 {
		return 0, 0, ErrNoObservations
	}
	cfg = cfg.withDefaults()

	bestTau, bestScore := 0.0, math.Inf(-1)
	for t := 0.0; t <= cfg.MaxTau; t += cfg.CoarseStep {
		if s := Score(obs, t); s > bestScore {
			bestTau, bestScore = t, s
		}
	}

	// Golden-section refinement in a ±1 coarse-step bracket.
	lo := math.Max(0, bestTau-cfg.CoarseStep)
	hi := math.Min(cfg.MaxTau, bestTau+cfg.CoarseStep)
	const invPhi = 0.6180339887498949
	a, b := lo, hi
	c1 := b - (b-a)*invPhi
	c2 := a + (b-a)*invPhi
	f1, f2 := Score(obs, c1), Score(obs, c2)
	for i := 0; i < cfg.RefineIters; i++ {
		if f1 > f2 {
			b, c2, f2 = c2, c1, f1
			c1 = b - (b-a)*invPhi
			f1 = Score(obs, c1)
		} else {
			a, c1, f1 = c1, c2, f2
			c2 = a + (b-a)*invPhi
			f2 = Score(obs, c2)
		}
	}
	mid := (a + b) / 2
	if s := Score(obs, mid); s > bestScore {
		bestTau, bestScore = mid, s
	}
	return bestTau, bestScore, nil
}

// Candidates returns, for one observation, every τ in [0, maxTau] that
// satisfies its congruence τ ≡ −∠h/(2πf) (mod 1/f) — the colored vertical
// lines of Fig. 3. Useful for visualization and for testing the solver.
func Candidates(o Observation, maxTau float64) []float64 {
	period := 1 / o.Freq
	base := math.Mod(-o.Phase/(2*math.Pi*o.Freq), period)
	if base < 0 {
		base += period
	}
	var out []float64
	for t := base; t <= maxTau; t += period {
		out = append(out, t)
	}
	return out
}
