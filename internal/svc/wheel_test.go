package svc

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestWheelFiresInOrder schedules timers at scattered delays — same
// tick, adjacent ticks, across cascade boundaries — and asserts they
// fire in (due, seq) order at exactly their due ticks.
func TestWheelFiresInOrder(t *testing.T) {
	w := NewWheel(time.Millisecond)
	type fire struct {
		due time.Duration
		seq int
	}
	var got []fire
	delays := []time.Duration{
		5 * time.Millisecond,
		5 * time.Millisecond, // same tick: FIFO by schedule order
		1 * time.Millisecond,
		64 * time.Millisecond,                          // level-0/1 boundary
		65 * time.Millisecond,                          // just past it
		4096 * time.Millisecond,                        // level-1/2 boundary
		time.Duration(wheelSpan+10) * time.Millisecond, // overflow
	}
	for i, d := range delays {
		i, d := i, d
		w.Schedule(d, func() { got = append(got, fire{w.Now(), i}) })
	}
	if w.Len() != len(delays) {
		t.Fatalf("Len=%d want %d", w.Len(), len(delays))
	}
	w.Advance(time.Duration(wheelSpan+20) * time.Millisecond)
	if len(got) != len(delays) {
		t.Fatalf("fired %d of %d timers", len(got), len(delays))
	}
	if w.Len() != 0 {
		t.Errorf("Len=%d after firing everything", w.Len())
	}
	for i := 1; i < len(got); i++ {
		if got[i].due < got[i-1].due {
			t.Errorf("fire %d at %v before fire %d at %v", i, got[i].due, i-1, got[i-1].due)
		}
	}
	// Each timer fires at exactly its due time.
	want := make([]time.Duration, len(delays))
	copy(want, delays)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i, f := range got {
		if f.due != want[i] {
			t.Errorf("fire %d at %v, want %v", i, f.due, want[i])
		}
	}
	// Same-tick FIFO: the two 5 ms timers keep schedule order.
	var at5 []int
	for _, f := range got {
		if f.due == 5*time.Millisecond {
			at5 = append(at5, f.seq)
		}
	}
	if len(at5) != 2 || at5[0] != 0 || at5[1] != 1 {
		t.Errorf("same-tick order %v, want [0 1]", at5)
	}
}

// TestWheelCancel pins cancellation semantics: a canceled timer never
// fires, Cancel is idempotent, and canceling a fired timer reports false.
func TestWheelCancel(t *testing.T) {
	w := NewWheel(time.Millisecond)
	fired := 0
	keep := w.Schedule(3*time.Millisecond, func() { fired++ })
	drop := w.Schedule(3*time.Millisecond, func() { t.Error("canceled timer fired") })
	far := w.Schedule(200*time.Millisecond, func() { t.Error("canceled parked timer fired") })
	over := w.Schedule(time.Duration(wheelSpan+5)*time.Millisecond, func() { t.Error("canceled overflow timer fired") })
	if !w.Cancel(drop) || !w.Cancel(far) || !w.Cancel(over) {
		t.Fatal("Cancel of pending timers returned false")
	}
	if w.Cancel(drop) {
		t.Error("second Cancel returned true")
	}
	if w.Len() != 1 {
		t.Fatalf("Len=%d want 1", w.Len())
	}
	w.Advance(time.Duration(wheelSpan+10) * time.Millisecond)
	if fired != 1 {
		t.Errorf("fired=%d want 1", fired)
	}
	if w.Cancel(keep) {
		t.Error("Cancel of fired timer returned true")
	}
	if w.Cancel(nil) {
		t.Error("Cancel(nil) returned true")
	}
}

// TestWheelPastDue pins the clamp: scheduling at or before Now fires on
// the very next tick, never silently in the past.
func TestWheelPastDue(t *testing.T) {
	w := NewWheel(time.Millisecond)
	w.Advance(10 * time.Millisecond)
	var at time.Duration
	w.ScheduleAt(2*time.Millisecond, func() { at = w.Now() })
	w.Advance(20 * time.Millisecond)
	if at != 11*time.Millisecond {
		t.Errorf("past-due timer fired at %v, want 11ms", at)
	}
}

// TestWheelRescheduleFromCallback pins that a callback scheduling its
// successor (the daemon's sweep pattern) fires on a later Advance at the
// right tick, never recursively within the firing Advance.
func TestWheelRescheduleFromCallback(t *testing.T) {
	w := NewWheel(time.Millisecond)
	var fires []time.Duration
	var step func()
	step = func() {
		fires = append(fires, w.Now())
		if len(fires) < 5 {
			w.Schedule(84*time.Millisecond, step)
		}
	}
	w.Schedule(84*time.Millisecond, step)
	for i := 0; i < 5; i++ {
		if n := w.AdvanceToNext(); n != 1 {
			t.Fatalf("AdvanceToNext fired %d, want 1", n)
		}
	}
	if w.AdvanceToNext() != 0 {
		t.Error("idle wheel fired")
	}
	for i, at := range fires {
		if want := time.Duration(84*(i+1)) * time.Millisecond; at != want {
			t.Errorf("fire %d at %v, want %v", i, at, want)
		}
	}
}

// TestWheelNextDue pins the idle-edge scan used by the wall-time loop
// and virtual stepping.
func TestWheelNextDue(t *testing.T) {
	w := NewWheel(time.Millisecond)
	if _, ok := w.NextDue(); ok {
		t.Error("empty wheel reported a next due")
	}
	w.Schedule(700*time.Millisecond, func() {})
	tm := w.Schedule(3*time.Millisecond, func() {})
	if tm.Due(w) != 3*time.Millisecond {
		t.Errorf("Due=%v want 3ms", tm.Due(w))
	}
	if due, ok := w.NextDue(); !ok || due != 3*time.Millisecond {
		t.Errorf("NextDue=%v,%v want 3ms,true", due, ok)
	}
	w.Cancel(tm)
	if due, ok := w.NextDue(); !ok || due != 700*time.Millisecond {
		t.Errorf("NextDue=%v,%v after cancel, want 700ms,true", due, ok)
	}
}

// TestWheelDefaultTick pins the 1 ms default and ceil-to-tick rounding.
func TestWheelDefaultTick(t *testing.T) {
	w := NewWheel(0)
	if w.Tick() != time.Millisecond {
		t.Fatalf("default tick %v", w.Tick())
	}
	var at time.Duration
	w.ScheduleAt(1500*time.Microsecond, func() { at = w.Now() })
	w.Advance(5 * time.Millisecond)
	if at != 2*time.Millisecond {
		t.Errorf("sub-tick due fired at %v, want 2ms (ceil)", at)
	}
}

// TestWheelStrideSkip pins that a sparse wheel advances over huge empty
// ranges without per-tick cost: a single far timer fires correctly and
// Fired accounts for it.
func TestWheelStrideSkip(t *testing.T) {
	w := NewWheel(time.Millisecond)
	far := time.Duration(wheelSpan-3) * time.Millisecond
	hit := false
	w.ScheduleAt(far, func() { hit = true })
	if n := w.AdvanceToNext(); n != 1 || !hit {
		t.Fatalf("fired=%d hit=%v", n, hit)
	}
	if w.Now() != far {
		t.Errorf("Now=%v want %v", w.Now(), far)
	}
	if w.Fired() != 1 {
		t.Errorf("Fired=%d want 1", w.Fired())
	}
}

// wheelModel runs a random schedule/cancel/advance script against the
// wheel and an oracle (sorted list), asserting identical fire sequences:
// no lost timers, no duplicates, monotonic due order, FIFO within a
// tick. Shared by the fuzz target and the seeded random test.
func wheelModel(t *testing.T, data []byte) {
	t.Helper()
	w := NewWheel(time.Millisecond)
	type ev struct {
		id  int
		due int64
		seq uint64
	}
	var (
		handles []*WheelTimer
		meta    []ev
		alive   = map[int]ev{}
		fired   []ev
		oracle  []ev
		nextID  int
	)
	schedule := func(delay int64) {
		id := nextID
		nextID++
		var tm *WheelTimer
		tm = w.ScheduleAt(time.Duration(w.Now())+time.Duration(delay)*time.Millisecond, func() {
			fired = append(fired, ev{id, int64(w.Now() / time.Millisecond), tm.seq})
		})
		handles = append(handles, tm)
		e := ev{id, tm.due, tm.seq}
		meta = append(meta, e)
		alive[id] = e
	}
	for i := 0; i+2 < len(data); i += 3 {
		op, a, b := data[i], int64(data[i+1]), int64(data[i+2])
		switch op % 4 {
		case 0: // near schedule
			schedule(a + 1)
		case 1: // far schedule: cross cascade boundaries, sometimes overflow
			schedule((a+1)*257 + b<<17)
		case 2: // cancel a random handle (maybe already fired)
			if len(handles) > 0 {
				id := int(a) % len(handles)
				if w.Cancel(handles[id]) {
					delete(alive, meta[id].id)
				}
			}
		case 3: // advance
			target := w.Now() + time.Duration(a*64+b)*time.Millisecond
			tick := int64(target / time.Millisecond)
			for id, e := range alive {
				if e.due <= tick {
					oracle = append(oracle, e)
					delete(alive, id)
				}
			}
			w.Advance(target)
		}
	}
	// Flush everything still pending.
	for id, e := range alive {
		oracle = append(oracle, e)
		delete(alive, id)
	}
	for w.Len() > 0 {
		w.AdvanceToNext()
	}
	sort.Slice(oracle, func(i, j int) bool {
		if oracle[i].due != oracle[j].due {
			return oracle[i].due < oracle[j].due
		}
		return oracle[i].seq < oracle[j].seq
	})
	if len(fired) != len(oracle) {
		t.Fatalf("fired %d timers, oracle expects %d", len(fired), len(oracle))
	}
	for i := range fired {
		if fired[i].id != oracle[i].id {
			t.Fatalf("fire %d: got timer %d, oracle says %d", i, fired[i].id, oracle[i].id)
		}
		if fired[i].due != oracle[i].due {
			t.Fatalf("timer %d fired at tick %d, due %d", fired[i].id, fired[i].due, oracle[i].due)
		}
	}
}

// FuzzWheel drives wheelModel from fuzzer-chosen scripts.
func FuzzWheel(f *testing.F) {
	f.Add([]byte{0, 5, 0, 3, 10, 0})
	f.Add([]byte{1, 200, 9, 2, 0, 0, 3, 255, 255})
	f.Add([]byte{0, 63, 0, 0, 64, 0, 0, 65, 0, 3, 2, 0, 3, 255, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*512 {
			data = data[:3*512]
		}
		wheelModel(t, data)
	})
}

// TestWheelRandomizedModel runs the fuzz model over seeded random
// scripts so the property check executes in every plain `go test` run.
func TestWheelRandomizedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		data := make([]byte, 3*(20+rng.Intn(150)))
		rng.Read(data)
		wheelModel(t, data)
	}
}
