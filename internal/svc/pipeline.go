package svc

import (
	"sync"
	"sync/atomic"

	"chronos/internal/obs"
)

// This file holds the daemon's staged execution pipeline. The classic
// path runs a device's whole sweep inline on its shard goroutine
// (run-to-completion); the staged pipeline instead cuts the sweep at the
// track.Session stage boundaries — ingest → solve → track — and runs
// each stage on its own independently sized worker pool connected by
// bounded queues:
//
//	shard wheel fire ──► [ingest queue] ─► ingest pool (CSI capture, RNG)
//	                           │
//	                           ▼
//	                   [solve class queue] ─► solve pool (profile inversion)
//	                     latency ▸▸ bulk        │
//	                           ▼                ▼
//	                     [track queue] ──► track pool (Kalman, bookkeeping)
//	                           │
//	                           ▼
//	                 per-shard completion queue ─► owning shard
//	                 (retire / schedule next sweep)
//
// Ownership follows the token, not the goroutine: a sweepToken carries
// the device session through the stages, and while a token is in flight
// its shard never touches the session (the no-concurrent-token
// invariant — at most one token per device exists, enforced by the
// shard only submitting from a timer fire and only rescheduling on
// completion). Shard-exclusive state therefore stays single-threaded
// even though three different worker goroutines may step one sweep.
//
// Devices carry a scheduling class. The solve stage — the expensive,
// variance-heavy stage — dequeues latency-class tokens ahead of
// bulk-class ones (strict priority with a starvation bound), and may
// preempt an in-flight bulk solve at its duality-gap check boundaries:
// the solver parks, the token re-enqueues with its iterate retained as
// a resume seed (tof's parked-seed machinery), and the freed worker
// picks up the waiting latency token.

// Class is a device's scheduling class in the staged pipeline.
type Class int

const (
	// ClassLatency (the zero value) marks interactive devices — e.g. a
	// drone-follow stream — whose fix cadence the service protects:
	// their solves dequeue first and may preempt bulk solves.
	ClassLatency Class = iota
	// ClassBulk marks throughput devices (fleet surveys, batch
	// localization) that absorb queueing delay: their solves yield to
	// latency-class work and are preemptible at gap-check boundaries.
	ClassBulk
)

// String renders the class for logs and labels.
func (c Class) String() string {
	if c == ClassBulk {
		return "bulk"
	}
	return "latency"
}

// PipelineConfig tunes the staged pipeline.
type PipelineConfig struct {
	// Enabled switches the daemon from run-to-completion shard sweeps to
	// the staged pipeline. Off (the default) keeps the classic path.
	Enabled bool
	// IngestWorkers, SolveWorkers, TrackWorkers size the per-stage
	// pools (defaults 2, 4, 2). The solve stage dominates sweep cost,
	// so it gets the widest default pool.
	IngestWorkers, SolveWorkers, TrackWorkers int
	// QueueDepth bounds the ingest and track stage queues and the solve
	// class queue (default 256 tokens each). A full queue blocks the
	// upstream stage — backpressure, never loss. Parked-solve
	// re-enqueues bypass the bound (a worker re-queueing its own token
	// must not deadlock the stage).
	QueueDepth int
	// StarveBound caps consecutive latency-class solve grants while
	// bulk work waits (default 8): after that many, one bulk token is
	// granted even if latency tokens are queued, bounding bulk-class
	// starvation under latency saturation. The same bound caps parks
	// per bulk sweep when Preempt is armed: after StarveBound yields,
	// a sweep's remaining solves run non-preemptible.
	StarveBound int
	// Preempt arms solver preemption: while a latency-class token waits
	// in the solve queue, in-flight bulk solves park at their next
	// duality-gap check and re-enqueue (resuming later from the parked
	// iterate). Preemption changes bulk solve trajectories (park/resume
	// is numerically equivalent but not bit-identical to an unbroken
	// solve), so golden byte-identity runs leave it off.
	Preempt bool
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.IngestWorkers <= 0 {
		c.IngestWorkers = 2
	}
	if c.SolveWorkers <= 0 {
		c.SolveWorkers = 4
	}
	if c.TrackWorkers <= 0 {
		c.TrackWorkers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.StarveBound <= 0 {
		c.StarveBound = 8
	}
	return c
}

// sweepToken carries one device's in-flight sweep through the stages.
// Exactly one token exists per device at a time; whichever goroutine
// holds the token owns the device session.
type sweepToken struct {
	ds    *deviceSession
	class Class
	start int64 // obs.Tick at submission (end-to-end sweep span)
	enq   int64 // obs.Tick at solve enqueue (solve-wait span)
	parks int   // times this sweep's solve parked (bounded by StarveBound)
	err   error // terminal stage error; the shard retires the device
}

// classQueue is the solve stage's two-class priority queue: strict
// latency-over-bulk dequeue with a starvation bound, a blocking bound
// on total depth, and a lock-free waiting-latency count that the bulk
// preemption hook polls from inside solver iterations.
type classQueue struct {
	mu     sync.Mutex
	nonEmp *sync.Cond // wait: poppers; signal: push
	nonFul *sync.Cond // wait: bounded pushers; signal: pop
	lat    []*sweepToken
	bulk   []*sweepToken
	depth  int
	starve int
	latRun int // consecutive latency grants while bulk waited
	closed bool

	latWaiting atomic.Int64
}

func newClassQueue(depth, starve int) *classQueue {
	q := &classQueue{depth: depth, starve: starve}
	q.nonEmp = sync.NewCond(&q.mu)
	q.nonFul = sync.NewCond(&q.mu)
	return q
}

// push enqueues a token at its class's tail, blocking while the queue
// is at depth. Returns false once the queue is closed.
func (q *classQueue) push(t *sweepToken) bool {
	q.mu.Lock()
	if len(q.lat)+len(q.bulk) >= q.depth && !q.closed {
		obsBackpressure.Inc()
		for len(q.lat)+len(q.bulk) >= q.depth && !q.closed {
			q.nonFul.Wait()
		}
	}
	return q.pushLocked(t)
}

// pushParked re-enqueues a parked bulk token at the head of its class,
// bypassing the depth bound: the pushing solve worker just freed a
// slot's worth of work, and blocking it here could deadlock the stage.
// Head placement resumes the half-done solve before fresh bulk work, so
// preemption adds latency to at most one bulk sweep at a time.
func (q *classQueue) pushParked(t *sweepToken) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	if t.class == ClassBulk {
		q.bulk = append([]*sweepToken{t}, q.bulk...)
	} else {
		q.lat = append([]*sweepToken{t}, q.lat...)
		q.latWaiting.Add(1)
	}
	q.nonEmp.Signal()
	q.mu.Unlock()
	return true
}

func (q *classQueue) pushLocked(t *sweepToken) bool {
	if q.closed {
		q.mu.Unlock()
		return false
	}
	if t.class == ClassBulk {
		q.bulk = append(q.bulk, t)
	} else {
		q.lat = append(q.lat, t)
		q.latWaiting.Add(1)
	}
	q.nonEmp.Signal()
	q.mu.Unlock()
	return true
}

// pop dequeues the next token by class priority: latency first, except
// that after starve consecutive latency grants with bulk work waiting,
// one bulk token is granted (the starvation bound). Blocks while empty;
// returns ok=false once the queue is closed and empty.
func (q *classQueue) pop() (*sweepToken, bool) {
	q.mu.Lock()
	for len(q.lat) == 0 && len(q.bulk) == 0 && !q.closed {
		q.nonEmp.Wait()
	}
	if len(q.lat) == 0 && len(q.bulk) == 0 {
		q.mu.Unlock()
		return nil, false
	}
	var t *sweepToken
	takeLat := len(q.lat) > 0
	if takeLat && len(q.bulk) > 0 && q.latRun >= q.starve {
		takeLat = false
		obsStarveGrants.Inc()
	}
	if takeLat {
		t = q.lat[0]
		q.lat = q.lat[1:]
		q.latWaiting.Add(-1)
		if len(q.bulk) > 0 {
			q.latRun++
		} else {
			q.latRun = 0
		}
	} else {
		t = q.bulk[0]
		q.bulk = q.bulk[1:]
		q.latRun = 0
	}
	q.nonFul.Signal()
	q.mu.Unlock()
	return t, true
}

// close wakes every waiter; pops drain the remainder and then report
// ok=false.
func (q *classQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.nonEmp.Broadcast()
	q.nonFul.Broadcast()
	q.mu.Unlock()
}

// depths reports the per-class queue lengths (snapshot gauges).
func (q *classQueue) depths() (lat, bulk int) {
	q.mu.Lock()
	lat, bulk = len(q.lat), len(q.bulk)
	q.mu.Unlock()
	return
}

// pipeline owns the stage queues and worker pools of one daemon.
type pipeline struct {
	d   *Daemon
	cfg PipelineConfig

	ingestQ chan *sweepToken
	solveQ  *classQueue
	trackQ  chan *sweepToken

	ingestWG, solveWG, trackWG sync.WaitGroup

	ingestBusy, solveBusy, trackBusy atomic.Int64
}

func newPipeline(d *Daemon, cfg PipelineConfig) *pipeline {
	cfg = cfg.withDefaults()
	p := &pipeline{
		d:       d,
		cfg:     cfg,
		ingestQ: make(chan *sweepToken, cfg.QueueDepth),
		solveQ:  newClassQueue(cfg.QueueDepth, cfg.StarveBound),
		trackQ:  make(chan *sweepToken, cfg.QueueDepth),
	}
	p.ingestWG.Add(cfg.IngestWorkers)
	for i := 0; i < cfg.IngestWorkers; i++ {
		go p.ingestWorker()
	}
	p.solveWG.Add(cfg.SolveWorkers)
	for i := 0; i < cfg.SolveWorkers; i++ {
		go p.solveWorker()
	}
	p.trackWG.Add(cfg.TrackWorkers)
	for i := 0; i < cfg.TrackWorkers; i++ {
		go p.trackWorker()
	}
	return p
}

// submit hands a device's next sweep to the pipeline. Called from the
// owning shard's timer fire; blocks when the ingest queue is full
// (backpressure stalls that shard's wheel, never drops a sweep).
func (p *pipeline) submit(t *sweepToken) {
	select {
	case p.ingestQ <- t:
	default:
		obsBackpressure.Inc()
		p.ingestQ <- t
	}
}

// shutdown stops the pools stage by stage, upstream first. The daemon
// calls it after every shard has exited, so no further submissions can
// arrive and each close finds a queue that only drains.
func (p *pipeline) shutdown() {
	close(p.ingestQ)
	p.ingestWG.Wait()
	p.solveQ.close()
	p.solveWG.Wait()
	close(p.trackQ)
	p.trackWG.Wait()
}

// ingestWorker runs the capture stage: every RNG draw of a sweep
// happens here, on whichever worker holds the token.
func (p *pipeline) ingestWorker() {
	defer p.ingestWG.Done()
	for t := range p.ingestQ {
		p.ingestBusy.Add(1)
		tick := obs.Tick()
		err := t.ds.full.StepIngest()
		obsStageIngestNs.Since(tick)
		p.ingestBusy.Add(-1)
		if err != nil {
			t.err = err
			t.ds.shard.complete(t)
			continue
		}
		t.enq = obs.Tick()
		if !p.solveQ.push(t) {
			// Closed mid-flight (only possible on a torn-down daemon);
			// surface the sweep back to the shard unfinished.
			t.err = ErrDraining
			t.ds.shard.complete(t)
		}
	}
}

// solveWorker runs the inversion stage. Bulk-class tokens install the
// preemption hook when armed: the device estimator's solves then poll
// the queue's waiting-latency count at gap-check boundaries and park
// when latency work is behind them.
func (p *pipeline) solveWorker() {
	defer p.solveWG.Done()
	for {
		t, ok := p.solveQ.pop()
		if !ok {
			return
		}
		p.solveBusy.Add(1)
		obsStageSolveWaitNs.Since(t.enq)
		// The park cap is the preemption-side starvation bound: once a
		// sweep has yielded StarveBound times, its remaining solves run
		// non-preemptible so bulk devices make progress even under a
		// saturating latency stream.
		preemptible := p.cfg.Preempt && t.class == ClassBulk && t.parks < p.cfg.StarveBound
		if preemptible {
			q := p.solveQ
			t.ds.est.SetPreempt(func() bool { return q.latWaiting.Load() > 0 })
		}
		tick := obs.Tick()
		parked, err := t.ds.full.StepSolve()
		obsStageSolveNs.Since(tick)
		if preemptible {
			t.ds.est.SetPreempt(nil)
		}
		p.solveBusy.Add(-1)
		switch {
		case err != nil:
			t.err = err
			t.ds.shard.complete(t)
		case parked:
			t.parks++
			obsPreemptions.Inc()
			t.enq = obs.Tick()
			if !p.solveQ.pushParked(t) {
				t.err = ErrDraining
				t.ds.shard.complete(t)
			}
		default:
			p.trackQ <- t
		}
	}
}

// trackWorker runs the tracking stage and hands the finished token back
// to its owning shard. Completion delivery never blocks (per-shard
// mutex-guarded slice), so the track pool cannot be wedged by a slow
// shard.
func (p *pipeline) trackWorker() {
	defer p.trackWG.Done()
	for t := range p.trackQ {
		p.trackBusy.Add(1)
		tick := obs.Tick()
		err := t.ds.full.StepTrack()
		obsStageTrackNs.Since(tick)
		p.trackBusy.Add(-1)
		t.err = err
		if err == nil {
			obsSweepNs.Since(t.start)
			obsFullSweeps.Inc()
			t.ds.recordFixGap()
		}
		t.ds.shard.complete(t)
	}
}
