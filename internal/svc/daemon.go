package svc

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"chronos/internal/obs"
	"chronos/internal/sim"
	"chronos/internal/tof"
	"chronos/internal/track"
)

// Config tunes a daemon.
type Config struct {
	// Shards is the worker-shard count (default 4). Devices map to
	// shards by FNV-1a over the device ID — the same hashing discipline
	// the campaign engine uses for per-trial seeds — so a device's
	// sessions always land on one shard and its warm solver state,
	// Kalman tracker, and alias-window seeds are shard-exclusive.
	Shards int
	// Office is the shared multipath world every full session ranges in
	// (required for full-pipeline devices; read-only during operation).
	Office *sim.Office
	// Tick is the shard timer-wheel granularity (default 1 ms).
	Tick time.Duration
	// Virtual runs the shard loops on virtual time: each shard advances
	// its wheel directly to the next pending timer instead of pacing
	// against the wall clock. Sessions execute identically — virtual
	// mode is how the test harness and the PerfService campaign make
	// daemon runs deterministic and faster than real time.
	Virtual bool
	// Coalesce arms one shared tof.Coalescer across all shards: full
	// sessions' concurrent main-profile inversions batch per plan into
	// SolveBatch calls (results stay byte-identical; see tof.Coalescer).
	Coalesce bool
	// CoalescerConfig tunes the shared coalescer when Coalesce is set.
	CoalescerConfig tof.CoalescerConfig
	// QueueDepth bounds each shard's pending lifecycle-command queue
	// (default 1024). Attach blocks when the owning shard's queue is
	// full — backpressure, not loss.
	QueueDepth int
	// Pipeline configures the staged execution pipeline (see
	// pipeline.go). Disabled by default: full sweeps then run inline on
	// their shard goroutine, the classic run-to-completion path.
	Pipeline PipelineConfig
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Tick <= 0 {
		c.Tick = time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	return c
}

// DeviceConfig describes one device attached to the daemon.
type DeviceConfig struct {
	// Seed seeds the device's private RNG; every random draw the device
	// makes (walk waypoints, radio noise, channel fading) comes from it,
	// which is what makes daemon runs reproducible per device.
	Seed int64
	// Stat selects the statistical session kind: ranges drawn from the
	// empirical Chronos error model (drone.StatSensor) instead of full
	// CSI sweeps and profile inversion — the cheap fleet-scale workload,
	// exactly as track.RunMulti's sensor mode. Default is the full
	// pipeline.
	Stat bool
	// Class is the device's scheduling class in the staged pipeline
	// (default ClassLatency). Bulk-class full devices yield the solve
	// stage to latency-class work and are preemptible mid-solve when
	// PipelineConfig.Preempt is armed. Ignored on the classic inline
	// path except for metric attribution, and by stat devices (their
	// fixes are too cheap to stage — they stay inline on their shard).
	Class Class

	// Session configures a full-pipeline device (track.Session).
	// Session.Sweeps < 0 keeps the device tracked until detach or drain.
	Session track.SessionConfig
	// Estimator configures the full device's tof.Estimator. The zero
	// value is the estimator default config; the daemon fills in the
	// shared coalescer when Config.Coalesce is set.
	Estimator tof.Config

	// FixPeriod paces a stat device's fixes (default 84 ms — the
	// paper's median full-sweep latency).
	FixPeriod time.Duration
	// Fixes bounds a stat device's fix count; 0 means until detach.
	Fixes int
	// Speed is a stat device's walk speed in m/s.
	Speed float64
	// RoomW, RoomH bound a stat device's walk (default 12 × 10 m).
	RoomW, RoomH float64
}

// DeviceResult is one retired device's outcome, collected at session
// completion, detach, or drain.
type DeviceResult struct {
	ID   uint64
	Stat bool
	// Fixes is the device's total fix count.
	Fixes int
	// Session is the full-pipeline session's result (nil for stat
	// devices); partial when the device was detached or drained
	// mid-stream.
	Session *track.SessionResult
	// Err records a session that failed to build or stream (calibration
	// failure, malformed config); such devices retire immediately.
	Err error
}

var (
	// ErrDraining rejects lifecycle calls after Drain has begun.
	ErrDraining = errors.New("svc: daemon is draining")
	// ErrUnknownDevice rejects a Detach for an ID that is not attached.
	ErrUnknownDevice = errors.New("svc: unknown device")
)

// Daemon is the always-on localization service: N worker shards, each
// exclusively owning the sessions of the devices that hash to it and
// driving their sweeps from a private hierarchical timer wheel. See the
// package comment for the ownership model.
type Daemon struct {
	cfg       Config
	coalescer *tof.Coalescer
	pipe      *pipeline // nil unless cfg.Pipeline.Enabled
	shards    []*shard
	start     time.Time

	mu       sync.Mutex
	draining bool
	wg       sync.WaitGroup

	// results retains every drained retirement; shards publish onto
	// their own lock-free stacks and Results() merges them here.
	resMu   sync.Mutex
	results map[uint64]*DeviceResult

	stopCh chan struct{}
}

// NewDaemon builds and starts a daemon: shard goroutines spin up
// immediately and idle until devices attach. Stop it with Drain.
func NewDaemon(cfg Config) *Daemon {
	cfg = cfg.withDefaults()
	d := &Daemon{
		cfg:     cfg,
		start:   time.Now(),
		results: make(map[uint64]*DeviceResult),
		stopCh:  make(chan struct{}),
	}
	if cfg.Coalesce {
		d.coalescer = tof.NewCoalescer(cfg.CoalescerConfig)
	}
	if cfg.Pipeline.Enabled {
		d.pipe = newPipeline(d, cfg.Pipeline)
	}
	d.shards = make([]*shard, cfg.Shards)
	for i := range d.shards {
		d.shards[i] = newShard(d, i)
	}
	currentDaemon.Store(d)
	d.wg.Add(len(d.shards))
	for _, s := range d.shards {
		go s.run()
	}
	return d
}

// shardFor maps a device ID to its owning shard: FNV-1a over the ID's
// little-endian bytes, mod the shard count — the PR-1 seed-hashing
// discipline, so the mapping is stable across runs and shard restarts.
func (d *Daemon) shardFor(id uint64) *shard {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(id >> (8 * i))
	}
	h.Write(b[:])
	return d.shards[h.Sum64()%uint64(len(d.shards))]
}

// Attach registers a device and schedules its first sweep on its owning
// shard. It is asynchronous: the shard builds (and calibrates) the
// session on its own goroutine, so Attach returns once the command is
// enqueued. A duplicate ID retires immediately with an error recorded in
// its DeviceResult. Attach blocks only when the shard's command queue is
// full, and fails once draining has begun.
func (d *Daemon) Attach(id uint64, cfg DeviceConfig) error {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return ErrDraining
	}
	d.mu.Unlock()
	if !cfg.Stat && d.cfg.Office == nil {
		return errors.New("svc: full-pipeline device requires Config.Office")
	}
	s := d.shardFor(id)
	s.pending.Add(1)
	select {
	case s.cmds <- shardCmd{attach: true, id: id, cfg: cfg}:
		obsAttaches.Inc()
		return nil
	case <-d.stopCh:
		s.pending.Add(-1)
		return ErrDraining
	}
}

// Detach removes a device: its session retires with whatever it has
// streamed so far. Asynchronous like Attach; detaching an unknown ID is
// recorded (and counted) when the owning shard processes the command.
func (d *Daemon) Detach(id uint64) error {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return ErrDraining
	}
	d.mu.Unlock()
	s := d.shardFor(id)
	s.pending.Add(1)
	select {
	case s.cmds <- shardCmd{attach: false, id: id}:
		obsDetaches.Inc()
		return nil
	case <-d.stopCh:
		s.pending.Add(-1)
		return ErrDraining
	}
}

// Results snapshots the retired devices by ID: it drains every shard's
// retirement stack into the retained map (in each shard's publish
// order, so a duplicate ID's later retirement wins exactly as the old
// single-map scheme behaved) and returns a copy. Complete only after
// Quiesce (finite fleets) or Drain.
func (d *Daemon) Results() map[uint64]*DeviceResult {
	d.resMu.Lock()
	defer d.resMu.Unlock()
	for _, s := range d.shards {
		// The stack pops newest-first; a device's retirements all land
		// on its owning shard's stack, so reversing restores their
		// publish order before the map merge.
		var list []*DeviceResult
		for n := s.retired.Swap(nil); n != nil; n = n.next {
			list = append(list, n.r)
		}
		for i := len(list) - 1; i >= 0; i-- {
			d.results[list[i].ID] = list[i]
		}
	}
	out := make(map[uint64]*DeviceResult, len(d.results))
	for k, v := range d.results {
		out[k] = v
	}
	return out
}

// Sessions reports the live session count across shards.
func (d *Daemon) Sessions() int {
	n := int64(0)
	for _, s := range d.shards {
		n += s.live.Load()
	}
	return int(n)
}

// QueueDepth reports the pending lifecycle commands across shards.
func (d *Daemon) QueueDepth() int {
	n := int64(0)
	for _, s := range d.shards {
		n += s.pending.Load()
	}
	return int(n)
}

// PendingTimers reports scheduled-but-unfired sweep timers across shards.
func (d *Daemon) PendingTimers() int {
	n := int64(0)
	for _, s := range d.shards {
		n += s.timers.Load()
	}
	return int(n)
}

// Quiesce blocks until every shard is idle — no live sessions, no
// pending commands, no scheduled timers — or the timeout expires. It is
// how finite-fleet runs (the golden harness, PerfService) wait for
// completion; an always-on fleet with endless sessions never quiesces.
func (d *Daemon) Quiesce(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if d.Sessions() == 0 && d.QueueDepth() == 0 && d.PendingTimers() == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("svc: quiesce timed out with %d sessions, %d queued cmds, %d timers",
				d.Sessions(), d.QueueDepth(), d.PendingTimers())
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Drain gracefully stops the daemon: admissions close immediately, each
// shard finishes the sweep it is executing (in-flight solves flush
// through the coalescer as usual), cancels the remaining schedule,
// retires every live session with its partial results, and exits. Drain
// waits for the shards up to timeout and then captures the final metrics
// snapshot. A second Drain returns ErrDraining.
func (d *Daemon) Drain(timeout time.Duration) (*obs.Snapshot, error) {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return nil, ErrDraining
	}
	d.draining = true
	d.mu.Unlock()

	close(d.stopCh)
	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		return nil, fmt.Errorf("svc: drain timed out after %v", timeout)
	}
	if d.pipe != nil {
		// Every shard has exited, so no further submissions exist; the
		// pools drain their queues stage by stage and stop.
		d.pipe.shutdown()
	}
	obsDrains.Inc()
	return obs.Capture(), nil
}

// shardCmd is one lifecycle command bound for a shard.
type shardCmd struct {
	attach bool
	id     uint64
	cfg    DeviceConfig
}

// shard owns a disjoint set of device sessions: the only goroutine that
// touches them is the shard's run loop — except while a session's sweep
// token is in flight through the staged pipeline, during which the
// token's holder owns the session and the shard keeps its hands off
// until the completion comes back. The atomic mirrors (live, timers,
// pending, inflight) exist for the management surface — gauges and
// Quiesce read them cross-shard.
type shard struct {
	d     *Daemon
	id    int
	wheel *Wheel
	cmds  chan shardCmd

	sessions map[uint64]*deviceSession

	live     atomic.Int64 // live sessions (mirror of len(sessions))
	timers   atomic.Int64 // pending wheel timers
	pending  atomic.Int64 // queued-but-unprocessed commands
	inflight atomic.Int64 // sweep tokens out in the pipeline

	// comps is the completion mailbox: track workers append finished
	// tokens (never blocking) and nudge compWake; the shard drains it
	// on its own goroutine, where retiring and rescheduling are safe.
	compMu   sync.Mutex
	comps    []*sweepToken
	compWake chan struct{}

	// retired is the shard's lock-free retirement stack (Treiber);
	// Results() drains it. Publishing here instead of a daemon-wide
	// mutexed map keeps retirement off the cross-shard lock.
	retired atomic.Pointer[retNode]
}

// retNode is one link of a shard's retirement stack.
type retNode struct {
	r    *DeviceResult
	next *retNode
}

func newShard(d *Daemon, id int) *shard {
	return &shard{
		d:        d,
		id:       id,
		wheel:    NewWheel(d.cfg.Tick),
		cmds:     make(chan shardCmd, d.cfg.QueueDepth),
		sessions: make(map[uint64]*deviceSession),
		compWake: make(chan struct{}, 1),
	}
}

// retire publishes a finished device onto the shard's retirement stack.
// Called from the shard goroutine only; Results() swaps the stack out.
func (s *shard) retire(r *DeviceResult) {
	n := &retNode{r: r}
	for {
		old := s.retired.Load()
		n.next = old
		if s.retired.CompareAndSwap(old, n) {
			break
		}
	}
	obsRetired.Inc()
}

// complete delivers a finished sweep token back to its owning shard.
// Called from pipeline workers; never blocks.
func (s *shard) complete(t *sweepToken) {
	s.compMu.Lock()
	s.comps = append(s.comps, t)
	s.compMu.Unlock()
	select {
	case s.compWake <- struct{}{}:
	default:
	}
}

// drainCompletions processes every delivered completion on the shard
// goroutine: retire on error or exhaustion, reschedule otherwise. With
// retiring=true (shutdown) nothing is rescheduled — live sessions stay
// in the map for the final retirement pass.
func (s *shard) drainCompletions(retiring bool) {
	s.compMu.Lock()
	list := s.comps
	s.comps = nil
	s.compMu.Unlock()
	for _, t := range list {
		ds := t.ds
		ds.inflight = false
		s.inflight.Add(-1)
		switch {
		case t.err != nil:
			s.remove(ds, t.err)
		case retiring:
			// Shutdown retires it with partial results below.
		case ds.full.Done() || ds.detachWanted:
			s.remove(ds, nil)
		default:
			ds.scheduleNext()
			s.timers.Store(int64(s.wheel.Len()))
		}
	}
}

// run is the shard loop. Virtual mode: drain completions and commands,
// advance the wheel straight to its next pending timer, repeat; block
// only when idle (no timers and nothing in flight). Wall mode: one
// Advance call fires every timer due at this wakeup — all same-tick
// fires batch into a single pass — then the loop sleeps until the
// earliest pending timer is due, or blocks indefinitely on lifecycle
// traffic, completions, and stop when the wheel is empty. (It
// historically woke every wheel tick regardless of the schedule, which
// at the 1 ms default burned a wakeup per shard per millisecond on an
// idle fleet.)
func (s *shard) run() {
	defer s.d.wg.Done()
	for {
		s.drainCompletions(false)
		s.drainCmds()
		if s.stopRequested() {
			s.shutdown()
			return
		}
		if s.d.cfg.Virtual {
			if s.wheel.Len() > 0 {
				s.wheel.AdvanceToNext()
				s.timers.Store(int64(s.wheel.Len()))
				continue
			}
			// No timers: wait for pipeline completions (which schedule
			// the next timer), lifecycle traffic, or stop.
			select {
			case <-s.compWake:
			case c := <-s.cmds:
				s.apply(c)
			case <-s.d.stopCh:
			}
			continue
		}

		now := time.Since(s.d.start)
		s.wheel.Advance(now)
		s.timers.Store(int64(s.wheel.Len()))
		var tmr *time.Timer
		var timerC <-chan time.Time
		if due, ok := s.wheel.NextDue(); ok {
			wait := due - time.Since(s.d.start)
			if wait <= 0 {
				continue
			}
			tmr = time.NewTimer(wait)
			timerC = tmr.C
		}
		select {
		case c := <-s.cmds:
			s.apply(c)
		case <-s.compWake:
		case <-s.d.stopCh:
		case <-timerC:
		}
		if tmr != nil {
			tmr.Stop()
		}
	}
}

// stopRequested reports whether drain has been signaled.
func (s *shard) stopRequested() bool {
	select {
	case <-s.d.stopCh:
		return true
	default:
		return false
	}
}

// drainCmds applies every queued command without blocking.
func (s *shard) drainCmds() {
	for {
		c, ok := s.takeCmd()
		if !ok {
			return
		}
		s.apply(c)
	}
}

// takeCmd pops one queued command without blocking.
func (s *shard) takeCmd() (shardCmd, bool) {
	select {
	case c := <-s.cmds:
		return c, true
	default:
		return shardCmd{}, false
	}
}

// apply processes one lifecycle command on the shard goroutine.
func (s *shard) apply(c shardCmd) {
	defer s.pending.Add(-1)
	if c.attach {
		s.attach(c.id, c.cfg)
		return
	}
	ds, ok := s.sessions[c.id]
	if !ok {
		obsAttachErrors.Inc()
		return
	}
	if ds.inflight {
		// The session is out in the pipeline; the completion handler
		// performs the removal once the token comes home.
		ds.detachWanted = true
		return
	}
	s.remove(ds, nil)
}

// attach builds the device's session and schedules its first event.
func (s *shard) attach(id uint64, cfg DeviceConfig) {
	if _, dup := s.sessions[id]; dup {
		obsAttachErrors.Inc()
		s.retire(&DeviceResult{ID: id, Stat: cfg.Stat,
			Err: fmt.Errorf("svc: device %d already attached", id)})
		return
	}
	ds, err := newDeviceSession(s, id, cfg)
	if err != nil {
		obsAttachErrors.Inc()
		s.retire(&DeviceResult{ID: id, Stat: cfg.Stat, Err: err})
		return
	}
	s.sessions[id] = ds
	s.live.Add(1)
	ds.scheduleNext()
	s.timers.Store(int64(s.wheel.Len()))
}

// remove retires a session and cancels its schedule.
func (s *shard) remove(ds *deviceSession, err error) {
	s.wheel.Cancel(ds.timer)
	ds.timer = nil
	delete(s.sessions, ds.id)
	s.live.Add(-1)
	s.timers.Store(int64(s.wheel.Len()))
	s.retire(ds.result(err))
}

// shutdown drains the shard at stop: leftover queued attaches retire
// as ErrDraining without building (accounted, never lost), queued
// detaches apply, in-flight pipeline sweeps finish and come home, every
// live session retires with partial results, and the wheel is
// discarded.
func (s *shard) shutdown() {
	for {
		c, ok := s.takeCmd()
		if !ok {
			break
		}
		if c.attach {
			s.retire(&DeviceResult{ID: c.id, Stat: c.cfg.Stat, Err: ErrDraining})
		} else if ds, live := s.sessions[c.id]; live && !ds.inflight {
			s.remove(ds, nil)
		} else if live {
			ds.detachWanted = true
		} else {
			obsAttachErrors.Inc()
		}
		s.pending.Add(-1)
	}
	// Wait out sweeps still in the pipeline: their tokens own the
	// session state, so retiring before they land would race the
	// workers. The pools keep draining until every token is home.
	for s.inflight.Load() > 0 {
		<-s.compWake
		s.drainCompletions(true)
	}
	s.drainCompletions(true)
	for _, ds := range s.sessions {
		s.wheel.Cancel(ds.timer)
		ds.timer = nil
		s.retire(ds.result(nil))
	}
	s.sessions = make(map[uint64]*deviceSession)
	s.live.Store(0)
	s.timers.Store(0)
}

// seedRNG builds the device's private RNG.
func seedRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
