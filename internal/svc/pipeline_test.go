package svc

import (
	"testing"
	"time"

	"chronos/internal/obs"
	"chronos/internal/track"
)

// TestClassQueueOrder pins the solve queue's dequeue discipline: strict
// latency-over-bulk priority, FIFO within a class, and one bulk grant
// after starve consecutive latency grants while bulk work waits.
func TestClassQueueOrder(t *testing.T) {
	q := newClassQueue(64, 2)
	mk := func(c Class, id uint64) *sweepToken {
		return &sweepToken{class: c, ds: &deviceSession{id: id}}
	}
	for i := uint64(1); i <= 5; i++ {
		q.push(mk(ClassLatency, i)) // L1..L5
	}
	for i := uint64(101); i <= 103; i++ {
		q.push(mk(ClassBulk, i)) // B101..B103
	}
	if w := q.latWaiting.Load(); w != 5 {
		t.Fatalf("latWaiting = %d, want 5", w)
	}
	// With starve=2: two latency grants, then one bulk, repeating while
	// both classes are queued; leftovers drain FIFO.
	want := []uint64{1, 2, 101, 3, 4, 102, 5, 103}
	for i, id := range want {
		tok, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: queue closed early", i)
		}
		if tok.ds.id != id {
			t.Fatalf("pop %d: got device %d, want %d", i, tok.ds.id, id)
		}
	}
	if w := q.latWaiting.Load(); w != 0 {
		t.Fatalf("latWaiting after drain = %d, want 0", w)
	}
	q.close()
	if _, ok := q.pop(); ok {
		t.Fatal("pop on a closed empty queue reported a token")
	}
}

// TestClassQueueParkedResumesFirst pins the parked re-enqueue position:
// a preempted bulk token goes back at the head of the bulk lane, ahead
// of fresh bulk work, so preemption delays at most one half-done solve.
func TestClassQueueParkedResumesFirst(t *testing.T) {
	q := newClassQueue(64, 8)
	a := &sweepToken{class: ClassBulk, ds: &deviceSession{id: 1}}
	b := &sweepToken{class: ClassBulk, ds: &deviceSession{id: 2}}
	q.push(a)
	q.push(b)
	got, _ := q.pop()
	if got != a {
		t.Fatalf("first pop got device %d, want 1", got.ds.id)
	}
	q.pushParked(a) // parked mid-solve; must resume before b
	if got, _ = q.pop(); got != a {
		t.Fatalf("parked token did not resume first (got device %d)", got.ds.id)
	}
	if got, _ = q.pop(); got != b {
		t.Fatalf("tail pop got device %d, want 2", got.ds.id)
	}
}

// pipelineFleet attaches n full devices of alternating class to d and
// waits for the whole fleet to retire.
func pipelineFleet(t *testing.T, d *Daemon, n, sweeps int) map[uint64]*DeviceResult {
	t.Helper()
	scfg := track.SessionConfig{Sweeps: sweeps, WarmStart: true}
	for i := 0; i < n; i++ {
		class := ClassLatency
		if i%2 == 1 {
			class = ClassBulk
		}
		err := d.Attach(uint64(i+1), DeviceConfig{
			Seed: int64(40 + i), Class: class,
			Session: scfg, Estimator: goldenEstimator(),
		})
		if err != nil {
			t.Fatalf("attach %d: %v", i+1, err)
		}
	}
	if err := d.Quiesce(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	results := d.Results()
	if _, err := d.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(results) != n {
		t.Fatalf("retired %d devices, want %d", len(results), n)
	}
	for id, r := range results {
		if r.Err != nil {
			t.Fatalf("device %d retired with error: %v", id, r.Err)
		}
		if r.Fixes != sweeps {
			t.Fatalf("device %d streamed %d fixes, want %d", id, r.Fixes, sweeps)
		}
	}
	return results
}

// TestPipelineBackpressureCompletes runs a mixed-class fleet through a
// pipeline whose every stage queue holds ONE token and whose every pool
// has one worker: maximum backpressure. The run must still complete —
// bounded queues block upstream stages, they never deadlock or drop.
func TestPipelineBackpressureCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline fleet")
	}
	d := NewDaemon(Config{
		Shards: 2, Office: goldenOffice(), Virtual: true,
		Pipeline: PipelineConfig{
			Enabled: true, QueueDepth: 1,
			IngestWorkers: 1, SolveWorkers: 1, TrackWorkers: 1,
		},
	})
	pipelineFleet(t, d, 6, 2)
}

// TestPipelinePreemptionFires runs one latency device against a bulk
// swarm on a single solve worker with preemption armed, and asserts
// that bulk solves actually parked for the latency stream (the
// svc.preemptions counter moved) and that every device still finished
// every sweep — parked solves resume and lose nothing.
func TestPipelinePreemptionFires(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline fleet")
	}
	obs.SetEnabled(true)
	obs.Reset()
	defer obs.SetEnabled(false)

	d := NewDaemon(Config{
		Shards: 2, Office: goldenOffice(), Virtual: true,
		Pipeline: PipelineConfig{
			Enabled: true, SolveWorkers: 1, Preempt: true,
		},
	})
	scfg := track.SessionConfig{Sweeps: 4, WarmStart: true}
	est := goldenEstimator()
	for i := 0; i < 8; i++ {
		class := ClassBulk
		if i == 0 {
			class = ClassLatency
		}
		err := d.Attach(uint64(i+1), DeviceConfig{
			Seed: int64(70 + i), Class: class, Session: scfg, Estimator: est,
		})
		if err != nil {
			t.Fatalf("attach %d: %v", i+1, err)
		}
	}
	if err := d.Quiesce(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	results := d.Results()
	snap, err := d.Drain(10 * time.Second)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	for id, r := range results {
		if r.Err != nil {
			t.Fatalf("device %d retired with error: %v", id, r.Err)
		}
		if r.Fixes != 4 {
			t.Fatalf("device %d streamed %d fixes, want 4", id, r.Fixes)
		}
	}
	if snap.Counters["svc.preemptions"] == 0 {
		t.Error("no bulk solve parked despite a contending latency stream on one solve worker")
	}
	if snap.Counters["svc.preemptions"] != snap.Counters["tof.solve.parks"] {
		t.Errorf("svc.preemptions (%d) and tof.solve.parks (%d) disagree",
			snap.Counters["svc.preemptions"], snap.Counters["tof.solve.parks"])
	}
}

// TestPipelineDetachMidFlight covers the deferred-detach path: a detach
// that lands while the device's sweep token is out in the pipeline must
// retire the device when the token comes home, with partial results.
func TestPipelineDetachMidFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline fleet")
	}
	d := NewDaemon(Config{
		Shards: 1, Office: goldenOffice(), Virtual: true,
		Pipeline: PipelineConfig{Enabled: true, SolveWorkers: 1},
	})
	// Endless session: only detach (or drain) retires it.
	scfg := track.SessionConfig{Sweeps: -1, WarmStart: true}
	if err := d.Attach(1, DeviceConfig{Seed: 91, Session: scfg, Estimator: goldenEstimator()}); err != nil {
		t.Fatal(err)
	}
	// Let it stream a few sweeps, then detach whenever — likely while a
	// token is in flight.
	deadline := time.Now().Add(60 * time.Second)
	for d.Sessions() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if err := d.Detach(1); err != nil {
		t.Fatal(err)
	}
	for d.Sessions() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	results := d.Results()
	if _, err := d.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	r, ok := results[1]
	if !ok {
		t.Fatal("detached device has no result")
	}
	if r.Err != nil {
		t.Fatalf("detached device retired with error: %v", r.Err)
	}
	if r.Session == nil {
		t.Fatal("detached device has no session result")
	}
}
