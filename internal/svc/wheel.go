// Package svc is the always-on localization service: a long-running
// daemon that continuously tracks every attached device through the full
// Chronos pipeline. It is organized around per-shard exclusive ownership
// (modeled on ndn-dpdk's service architecture): devices shard by an FNV
// hash of their ID, each shard's goroutine exclusively owns its
// sessions' warm solver state, Kalman trackers, and alias-window seeds —
// no cross-shard locking on any per-device state — and a hierarchical
// timer wheel per shard drives sweep scheduling for thousands of
// sessions. Shards feed one shared tof.Coalescer (plan-keyed
// internally), so concurrent sweeps across shards batch into SolveBatch
// calls; the internal/obs layer is the management surface.
//
// The wheel, and therefore the whole daemon, runs on virtual time under
// test and wall time in production: in virtual mode a shard advances its
// wheel directly to the next pending timer, so a daemon run is
// deterministic per device — byte-identical to sequential
// track.RunSession calls with the same seeds, at any shard count.
package svc

import (
	"sort"
	"time"
)

const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64 slots per level
	wheelMask   = wheelSlots - 1
	wheelLevels = 4 // span = tick × 64⁴ (≈ 4.6 days at 1 ms ticks)
)

// wheelSpan is the wheel's direct horizon in ticks; timers due further
// out park in an overflow list until they come within range.
const wheelSpan = int64(1) << (wheelBits * wheelLevels)

type timerState uint8

const (
	timerPending timerState = iota
	timerFired
	timerCanceled
)

// WheelTimer is one scheduled callback. Handles are single-owner, like
// the wheel itself: only the owning shard schedules, cancels, or fires.
type WheelTimer struct {
	due   int64 // tick at which the timer fires
	seq   uint64
	fn    func()
	state timerState
}

// Due returns the timer's fire time on the wheel's clock.
func (t *WheelTimer) Due(w *Wheel) time.Duration { return time.Duration(t.due) * w.tick }

// Wheel is a hierarchical timing wheel: wheelLevels levels of 64 slots,
// each level covering 64× the span of the one below, with timers
// cascading toward level 0 as their due tick approaches. Insertion and
// cancellation are O(1); advancing one tick touches one level-0 slot
// plus an occasional cascade. The wheel has no clock of its own — the
// owner calls Advance with either wall-derived or virtual targets, which
// is what lets the daemon run deterministically under test.
//
// Fire order is monotonic: timers fire in non-decreasing due-tick order,
// and within one tick in scheduling order (FIFO by sequence number) —
// the property the fuzz harness pins. A Wheel is not safe for concurrent
// use; each shard owns exactly one.
type Wheel struct {
	tick  time.Duration
	cur   int64 // last processed tick; timers due ≤ cur have fired
	seq   uint64
	n     int   // pending (scheduled, not yet fired or canceled)
	fired int64 // lifetime fired count
	slots [wheelLevels][wheelSlots][]*WheelTimer
	// levelN counts timers physically filed per level (canceled residue
	// included); Advance uses it to stride over empty tick ranges
	// instead of visiting every slot.
	levelN   [wheelLevels]int
	overflow []*WheelTimer // due beyond the wheel's span
	scratch  []*WheelTimer
}

// NewWheel builds a wheel with the given tick granularity (default 1 ms:
// fine enough to pace ~84 ms sweep cadences, coarse enough that a shard
// advancing wall time does ~1k slot touches per second).
func NewWheel(tick time.Duration) *Wheel {
	if tick <= 0 {
		tick = time.Millisecond
	}
	return &Wheel{tick: tick}
}

// Tick returns the wheel's tick granularity.
func (w *Wheel) Tick() time.Duration { return w.tick }

// Now returns the wheel's current time (the last processed tick).
func (w *Wheel) Now() time.Duration { return time.Duration(w.cur) * w.tick }

// Len returns the number of pending timers.
func (w *Wheel) Len() int { return w.n }

// Fired returns the lifetime count of fired timers.
func (w *Wheel) Fired() int64 { return w.fired }

// ScheduleAt schedules fn at absolute wheel time at, rounded up to the
// next tick; times at or before the current tick fire on the next
// Advance. The returned handle cancels via Wheel.Cancel.
func (w *Wheel) ScheduleAt(at time.Duration, fn func()) *WheelTimer {
	dueTick := (int64(at) + int64(w.tick) - 1) / int64(w.tick)
	if dueTick <= w.cur {
		dueTick = w.cur + 1
	}
	t := &WheelTimer{due: dueTick, seq: w.seq, fn: fn}
	w.seq++
	w.place(t)
	w.n++
	return t
}

// Schedule schedules fn after delay of wheel time.
func (w *Wheel) Schedule(delay time.Duration, fn func()) *WheelTimer {
	return w.ScheduleAt(w.Now()+delay, fn)
}

// Cancel prevents a pending timer from firing. It reports whether the
// timer was still pending (false if already fired or canceled).
func (w *Wheel) Cancel(t *WheelTimer) bool {
	if t == nil || t.state != timerPending {
		return false
	}
	t.state = timerCanceled
	w.n--
	return true
}

// place files a timer into the level whose span covers its remaining
// delta. Level ℓ slots are indexed by due-tick bits [6ℓ, 6ℓ+6): a timer
// with delta ≤ 64^(ℓ+1) lands in the level-ℓ slot that is visited
// (fired for ℓ=0, cascaded for ℓ≥1) exactly at — or one cascade before —
// its due tick. Deltas beyond the wheel's span park in overflow.
func (w *Wheel) place(t *WheelTimer) {
	delta := t.due - w.cur
	if delta > wheelSpan {
		w.overflow = append(w.overflow, t)
		return
	}
	span := int64(wheelSlots)
	for l := 0; l < wheelLevels; l++ {
		if delta <= span {
			idx := (t.due >> (wheelBits * l)) & wheelMask
			w.slots[l][idx] = append(w.slots[l][idx], t)
			w.levelN[l]++
			return
		}
		span <<= wheelBits
	}
	// Unreachable: delta ≤ wheelSpan always fits the top level.
	w.overflow = append(w.overflow, t)
}

// Advance processes every tick in (Now, to], cascading higher levels at
// their boundaries and firing due timers in (due, seq) order. It returns
// the number of timers fired. Callbacks may schedule and cancel freely;
// a callback's same-tick schedules fire on the next Advance, never
// recursively within this one.
func (w *Wheel) Advance(to time.Duration) int {
	toTick := int64(to) / int64(w.tick)
	fired := 0
	for w.cur < toTick {
		if w.n == 0 {
			// Nothing pending anywhere: jump straight to the target.
			w.cur = toTick
			break
		}
		// Stride over tick ranges no filed timer can fire or cascade in:
		// with levels 0..k-1 empty, nothing happens until the next
		// level-k cascade boundary (a multiple of 64^k).
		stride := int64(1)
		for l := 0; l < wheelLevels-1 && w.levelN[l] == 0; l++ {
			stride <<= wheelBits
		}
		if stride > 1 {
			next := (w.cur/stride + 1) * stride
			if next-1 > toTick {
				w.cur = toTick
				break
			}
			w.cur = next - 1
		}
		t := w.cur + 1
		w.cur = t

		// Cascade top-down at each level's boundary so a timer parked
		// high can sift through several levels in one tick.
		if t&((int64(1)<<(wheelBits*(wheelLevels-1)))-1) == 0 && len(w.overflow) > 0 {
			w.recheckOverflow()
		}
		for l := wheelLevels - 1; l >= 1; l-- {
			if t&((int64(1)<<(wheelBits*l))-1) != 0 {
				continue
			}
			idx := (t >> (wheelBits * l)) & wheelMask
			moved := w.slots[l][idx]
			if len(moved) == 0 {
				continue
			}
			w.slots[l][idx] = nil
			w.levelN[l] -= len(moved)
			for _, tm := range moved {
				if tm.state != timerPending {
					continue // canceled while parked: drop it here
				}
				w.place(tm)
			}
		}

		slot := &w.slots[0][t&wheelMask]
		if len(*slot) == 0 {
			continue
		}
		w.scratch = append(w.scratch[:0], *slot...)
		w.levelN[0] -= len(*slot)
		*slot = (*slot)[:0]
		// FIFO within the tick: cascades append in slot order, so
		// restore scheduling order explicitly.
		sort.Slice(w.scratch, func(i, j int) bool { return w.scratch[i].seq < w.scratch[j].seq })
		for _, tm := range w.scratch {
			if tm.state != timerPending {
				continue
			}
			if tm.due > t {
				// A level-0 slot is revisited every 64 ticks, so a
				// not-yet-due timer sharing the slot index re-files.
				w.place(tm)
				continue
			}
			tm.state = timerFired
			w.n--
			w.fired++
			fired++
			obsTimerFires.Inc()
			tm.fn()
		}
	}
	return fired
}

// recheckOverflow re-files parked beyond-span timers that have come
// within the wheel's horizon. Called at top-level boundaries (every 64³
// ticks) and from NextTick, so overflow timers cost nothing per tick.
func (w *Wheel) recheckOverflow() {
	kept := w.overflow[:0]
	for _, tm := range w.overflow {
		if tm.state != timerPending {
			continue
		}
		if tm.due-w.cur <= wheelSpan {
			w.place(tm)
		} else {
			kept = append(kept, tm)
		}
	}
	w.overflow = kept
}

// NextTick scans for the earliest pending timer and returns its due tick.
// The scan is O(pending + slots) — cheap at shard scale, and only the
// idle edge of the loop pays it (a busy shard advances straight to due
// work). Returns false when nothing is pending.
func (w *Wheel) NextTick() (int64, bool) {
	if w.n == 0 {
		return 0, false
	}
	best := int64(-1)
	consider := func(t *WheelTimer) {
		if t.state == timerPending && (best < 0 || t.due < best) {
			best = t.due
		}
	}
	for l := 0; l < wheelLevels; l++ {
		for s := 0; s < wheelSlots; s++ {
			for _, t := range w.slots[l][s] {
				consider(t)
			}
		}
	}
	for _, t := range w.overflow {
		consider(t)
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// NextDue is NextTick on the wheel's clock — what a wall-time shard loop
// sleeps toward.
func (w *Wheel) NextDue() (time.Duration, bool) {
	t, ok := w.NextTick()
	return time.Duration(t) * w.tick, ok
}

// AdvanceToNext advances the wheel to its earliest pending timer and
// fires everything due there — the virtual-time stepping primitive.
// Returns the number fired (0 when nothing is pending).
func (w *Wheel) AdvanceToNext() int {
	t, ok := w.NextTick()
	if !ok {
		return 0
	}
	return w.Advance(time.Duration(t) * w.tick)
}
