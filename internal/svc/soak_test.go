package svc

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"chronos/internal/obs"
	"chronos/internal/tof"
)

// TestDaemonChurnSoak is the service race soak: Poisson attach/detach
// churn from concurrent clients against a live shard set with the
// coalescer armed and the shared plan registry squeezed to a tiny bound
// (so LRU eviction fires under concurrent full-pipeline solves). After
// drain it asserts no session was lost — every successful Attach is
// accounted by exactly one DeviceResult — and that the obs lifecycle
// counters cohere with the ground truth. Run under -race in CI; -short
// scales the fleet down so the race lane stays fast.
func TestDaemonChurnSoak(t *testing.T) {
	churners, statEach, fullEach := 4, 40, 3
	if testing.Short() {
		churners, statEach, fullEach = 2, 12, 1
	}

	// Force registry eviction: two resident plans, while the full fleet
	// cycles through several distinct geometries (MaxTau variants), each
	// needing a main plan and an alias-window plan.
	defer tof.SetSharedPlanCap(tof.SetSharedPlanCap(2))
	evictionsBefore := tof.SharedRegistryStats().Evictions

	obs.SetEnabled(true)
	obs.Reset()
	defer obs.SetEnabled(false)

	d := NewDaemon(Config{
		Shards:   4,
		Office:   goldenOffice(),
		Virtual:  true,
		Coalesce: true,
	})

	var (
		mu        sync.Mutex
		attached  = map[uint64]bool{} // successful Attach calls
		finite    = map[uint64]int{}  // finite devices → expected fix count
		detached  int64               // successful Detach calls
		endlessMu sync.Mutex
		endless   []uint64 // devices that only retire via detach/drain
	)
	var wg sync.WaitGroup
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(900 + int64(c)))
			base := uint64(c+1) << 32
			mk := func(i int) (uint64, DeviceConfig) {
				id := base + uint64(i)
				if i < fullEach {
					// Full pipeline, rotating plan geometry; short
					// finite sessions.
					est := goldenEstimator()
					est.MaxTau = 60e-9 + float64(i%4)*10e-9
					s := goldenSession()
					s.Sweeps = 2
					return id, DeviceConfig{Seed: rng.Int63(), Session: s, Estimator: est}
				}
				cfg := DeviceConfig{Seed: rng.Int63(), Stat: true,
					FixPeriod: 2 * time.Millisecond, Speed: 1}
				if i%3 == 0 {
					cfg.Fixes = 0 // endless: retires only via detach or drain
				} else {
					cfg.Fixes = 1 + rng.Intn(6)
				}
				return id, cfg
			}
			for i := 0; i < statEach+fullEach; i++ {
				// Poisson arrivals: exponential inter-attach gaps.
				time.Sleep(time.Duration(rng.ExpFloat64() * float64(150*time.Microsecond)))
				id, cfg := mk(i)
				if err := d.Attach(id, cfg); err != nil {
					t.Errorf("attach %d: %v", id, err)
					continue
				}
				mu.Lock()
				attached[id] = true
				if !cfg.Stat {
					finite[id] = cfg.Session.Sweeps
				} else if cfg.Fixes > 0 {
					finite[id] = cfg.Fixes
				}
				mu.Unlock()
				if cfg.Stat && cfg.Fixes == 0 {
					endlessMu.Lock()
					endless = append(endless, id)
					endlessMu.Unlock()
				}
				// Occasionally reap an endless device mid-churn.
				if rng.Intn(4) == 0 {
					endlessMu.Lock()
					var victim uint64
					if len(endless) > 0 {
						victim = endless[0]
						endless = endless[1:]
					}
					endlessMu.Unlock()
					if victim != 0 {
						if err := d.Detach(victim); err != nil {
							t.Errorf("detach %d: %v", victim, err)
						} else {
							mu.Lock()
							detached++
							mu.Unlock()
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()

	// Let every finite device stream to completion before draining (the
	// attach queue may still be deep in session builds when the churners
	// return); the endless devices then ride into the drain, which must
	// retire them with partial results, not lose them.
	deadline := time.Now().Add(300 * time.Second)
	for {
		results := d.Results()
		done := 0
		mu.Lock()
		for id := range finite {
			if results[id] != nil {
				done++
			}
		}
		n := len(finite)
		mu.Unlock()
		if done == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d finite devices retired before deadline", done, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	snap, err := d.Drain(120 * time.Second)
	if err != nil {
		t.Fatal(err)
	}

	results := d.Results()
	mu.Lock()
	nAttached := len(attached)
	nDetached := detached
	for id := range attached {
		r, ok := results[id]
		if !ok {
			t.Errorf("device %d attached but never retired", id)
			continue
		}
		if r.Err != nil {
			t.Errorf("device %d retired with error: %v", id, r.Err)
		}
		// Finite devices completed before drain: exact fix counts.
		if want, fin := finite[id]; fin && ok && r.Fixes != want {
			t.Errorf("device %d retired with %d fixes, want %d", id, r.Fixes, want)
		}
	}
	mu.Unlock()
	if len(results) != nAttached {
		t.Errorf("retired %d devices, attached %d", len(results), nAttached)
	}

	// Counter coherence against ground truth.
	if got := snap.Counters["svc.attaches"]; got != int64(nAttached) {
		t.Errorf("svc.attaches=%d, want %d", got, nAttached)
	}
	if got := snap.Counters["svc.retired"]; got != int64(nAttached) {
		t.Errorf("svc.retired=%d, want %d", got, nAttached)
	}
	if got := snap.Counters["svc.detaches"]; got != nDetached {
		t.Errorf("svc.detaches=%d, want %d", got, nDetached)
	}
	if got := snap.Counters["svc.attach_errors"]; got != 0 {
		t.Errorf("svc.attach_errors=%d, want 0", got)
	}
	if snap.Counters["svc.stat_fixes"] == 0 {
		t.Error("no stat fixes recorded")
	}
	if snap.Counters["svc.full_sweeps"] == 0 {
		t.Error("no full sweeps recorded")
	}
	if d.Sessions() != 0 || d.QueueDepth() != 0 {
		t.Errorf("post-drain: %d sessions, %d queued", d.Sessions(), d.QueueDepth())
	}

	// The squeezed registry must actually have evicted under churn.
	if ev := tof.SharedRegistryStats().Evictions; ev <= evictionsBefore {
		t.Errorf("registry evictions %d → %d: bound never forced eviction", evictionsBefore, ev)
	}
}

// TestDaemonWallTime runs a small stat fleet in production (wall-clock)
// mode: the shard loops pace the wheel against real time, devices
// complete their fix quota, and Quiesce/Drain behave exactly as in
// virtual mode — same code path the smoke lane boots.
func TestDaemonWallTime(t *testing.T) {
	d := NewDaemon(Config{Shards: 2})
	const devices, fixes = 6, 5
	for id := uint64(1); id <= devices; id++ {
		err := d.Attach(id, DeviceConfig{
			Seed: int64(id), Stat: true, Fixes: fixes,
			FixPeriod: 5 * time.Millisecond, Speed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// ~25 ms of protocol time; generous wall deadline for loaded CI.
	if err := d.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	results := d.Results()
	if len(results) != devices {
		t.Fatalf("retired %d devices, want %d", len(results), devices)
	}
	for id, r := range results {
		if r.Err != nil || r.Fixes != fixes {
			t.Errorf("device %d: fixes=%d err=%v, want %d fixes", id, r.Fixes, r.Err, fixes)
		}
	}
}

// TestDaemonLifecycleErrors pins the edge contracts the soak can't hit
// deterministically: duplicate attach, detach of an unknown ID, and
// post-drain rejections.
func TestDaemonLifecycleErrors(t *testing.T) {
	d := NewDaemon(Config{Shards: 2, Virtual: true})
	if err := d.Attach(7, DeviceConfig{Stat: true, Fixes: 0, FixPeriod: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	// Full-pipeline attach without an office is rejected synchronously.
	if err := d.Attach(8, DeviceConfig{}); err == nil {
		t.Error("full attach without office succeeded")
	}
	// Duplicate attach retires with an error result.
	if err := d.Attach(7, DeviceConfig{Stat: true, FixPeriod: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if r := d.Results()[7]; r != nil && r.Err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("duplicate attach never retired with an error")
		}
		time.Sleep(time.Millisecond)
	}
	// Detach of an unknown ID is asynchronous and counted, not fatal.
	if err := d.Detach(99); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Device 7 (endless) must have been drained with its partial results.
	if r := d.Results()[7]; r == nil {
		t.Error("endless device lost at drain")
	}
	if err := d.Attach(11, DeviceConfig{Stat: true}); err != ErrDraining {
		t.Errorf("post-drain Attach err=%v, want ErrDraining", err)
	}
	if err := d.Detach(7); err != ErrDraining {
		t.Errorf("post-drain Detach err=%v, want ErrDraining", err)
	}
	if _, err := d.Drain(time.Second); err != ErrDraining {
		t.Errorf("second Drain err=%v, want ErrDraining", err)
	}
}
