package svc

import (
	"sync/atomic"

	"chronos/internal/obs"
)

// Service observability handles. Lifecycle counters count
// scheduling-independent events, so their totals are deterministic at
// any shard count; the fleet gauges are derived at snapshot time from
// the most recently started daemon's atomic shard mirrors.
var (
	// obsAttaches counts accepted Attach calls.
	obsAttaches = obs.NewCounter("svc.attaches")
	// obsDetaches counts accepted Detach calls.
	obsDetaches = obs.NewCounter("svc.detaches")
	// obsRetired counts retired devices (completed, detached, drained,
	// or failed).
	obsRetired = obs.NewCounter("svc.retired")
	// obsAttachErrors counts rejected lifecycle commands: duplicate
	// attaches, detaches of unknown IDs, session build failures.
	obsAttachErrors = obs.NewCounter("svc.attach_errors")
	// obsDrains counts completed graceful drains.
	obsDrains = obs.NewCounter("svc.drains")
	// obsTimerFires counts wheel timer fires across all shards.
	obsTimerFires = obs.NewCounter("svc.timer_fires")
	// obsFullSweeps counts full-pipeline sweeps executed by the daemon.
	obsFullSweeps = obs.NewCounter("svc.full_sweeps")
	// obsStatFixes counts stat-device fixes executed by the daemon.
	obsStatFixes = obs.NewCounter("svc.stat_fixes")

	// obsSweepNs spans one full-pipeline sweep, in wall nanoseconds —
	// the service's full-fix latency distribution. Inline it spans the
	// StepSweep call; staged it spans submission to track completion
	// (queueing included), so the two modes stay comparable.
	obsSweepNs = obs.NewHist("svc.sweep_ns")
	// obsStatFixNs spans one stat fix (walk advance, sensor draw, Kalman
	// observe) in wall nanoseconds.
	obsStatFixNs = obs.NewHist("svc.stat_fix_ns")

	// Per-class inter-fix wall gap of full devices: the time between a
	// device's consecutive completed sweeps. Head-of-line blocking shows
	// up here identically on both execution paths — as timer-fire delay
	// inline, as queueing delay staged — which is what the pipeline
	// campaign's p99 comparison and the CI smoke lane assert against.
	obsFixLatencyNs = obs.NewHist("svc.fix.latency_ns")
	obsFixBulkNs    = obs.NewHist("svc.fix.bulk_ns")

	// Staged-pipeline stage spans (work time on a pool worker) and the
	// solve queue wait (class-queue enqueue → dequeue).
	obsStageIngestNs    = obs.NewHist("svc.stage.ingest_ns")
	obsStageSolveNs     = obs.NewHist("svc.stage.solve_ns")
	obsStageSolveWaitNs = obs.NewHist("svc.stage.solve_wait_ns")
	obsStageTrackNs     = obs.NewHist("svc.stage.track_ns")

	// obsPreemptions counts bulk solves parked at a gap-check boundary
	// to yield a solve worker to waiting latency-class work.
	obsPreemptions = obs.NewCounter("svc.preemptions")
	// obsStarveGrants counts bulk tokens granted by the starvation
	// bound while latency tokens were still queued.
	obsStarveGrants = obs.NewCounter("svc.starve_grants")
	// obsBackpressure counts stage-queue pushes that found the queue
	// full and blocked (bounded-queue backpressure events).
	obsBackpressure = obs.NewCounter("svc.backpressure")

	obsSessions    = obs.NewGauge("svc.sessions")
	obsShards      = obs.NewGauge("svc.shards")
	obsQueueDepth  = obs.NewGauge("svc.queue_depth")
	obsWheelTimers = obs.NewGauge("svc.wheel_timers")

	// Staged-pipeline queue depths and pool utilization (busy workers /
	// pool size), refreshed at snapshot time. All zero when the staged
	// pipeline is disabled.
	obsPipeQueueIngest    = obs.NewGauge("svc.pipe.queue.ingest")
	obsPipeQueueSolveLat  = obs.NewGauge("svc.pipe.queue.solve_lat")
	obsPipeQueueSolveBulk = obs.NewGauge("svc.pipe.queue.solve_bulk")
	obsPipeQueueTrack     = obs.NewGauge("svc.pipe.queue.track")
	obsPipeUtilIngest     = obs.NewGauge("svc.pipe.util.ingest")
	obsPipeUtilSolve      = obs.NewGauge("svc.pipe.util.solve")
	obsPipeUtilTrack      = obs.NewGauge("svc.pipe.util.track")
	obsPipeInflight       = obs.NewGauge("svc.pipe.inflight")
)

// currentDaemon is the daemon the snapshot gauges describe. The metric
// registry is process-wide while daemons are per-instance, so the last
// daemon started wins — in production there is exactly one; tests that
// assert gauges start their daemon last.
var currentDaemon atomic.Pointer[Daemon]

func init() {
	obs.OnSnapshot(func(s *obs.Snapshot) {
		d := currentDaemon.Load()
		if d == nil {
			return
		}
		obsSessions.Set(float64(d.Sessions()))
		obsShards.Set(float64(len(d.shards)))
		obsQueueDepth.Set(float64(d.QueueDepth()))
		obsWheelTimers.Set(float64(d.PendingTimers()))
		s.Gauges["svc.sessions"] = obsSessions.Value()
		s.Gauges["svc.shards"] = obsShards.Value()
		s.Gauges["svc.queue_depth"] = obsQueueDepth.Value()
		s.Gauges["svc.wheel_timers"] = obsWheelTimers.Value()
		if p := d.pipe; p != nil {
			lat, bulk := p.solveQ.depths()
			inflight := int64(0)
			for _, sh := range d.shards {
				inflight += sh.inflight.Load()
			}
			set := func(g *obs.Gauge, name string, v float64) {
				g.Set(v)
				s.Gauges[name] = v
			}
			set(obsPipeQueueIngest, "svc.pipe.queue.ingest", float64(len(p.ingestQ)))
			set(obsPipeQueueSolveLat, "svc.pipe.queue.solve_lat", float64(lat))
			set(obsPipeQueueSolveBulk, "svc.pipe.queue.solve_bulk", float64(bulk))
			set(obsPipeQueueTrack, "svc.pipe.queue.track", float64(len(p.trackQ)))
			set(obsPipeUtilIngest, "svc.pipe.util.ingest",
				float64(p.ingestBusy.Load())/float64(p.cfg.IngestWorkers))
			set(obsPipeUtilSolve, "svc.pipe.util.solve",
				float64(p.solveBusy.Load())/float64(p.cfg.SolveWorkers))
			set(obsPipeUtilTrack, "svc.pipe.util.track",
				float64(p.trackBusy.Load())/float64(p.cfg.TrackWorkers))
			set(obsPipeInflight, "svc.pipe.inflight", float64(inflight))
		}
	})
}
