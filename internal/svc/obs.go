package svc

import (
	"sync/atomic"

	"chronos/internal/obs"
)

// Service observability handles. Lifecycle counters count
// scheduling-independent events, so their totals are deterministic at
// any shard count; the fleet gauges are derived at snapshot time from
// the most recently started daemon's atomic shard mirrors.
var (
	// obsAttaches counts accepted Attach calls.
	obsAttaches = obs.NewCounter("svc.attaches")
	// obsDetaches counts accepted Detach calls.
	obsDetaches = obs.NewCounter("svc.detaches")
	// obsRetired counts retired devices (completed, detached, drained,
	// or failed).
	obsRetired = obs.NewCounter("svc.retired")
	// obsAttachErrors counts rejected lifecycle commands: duplicate
	// attaches, detaches of unknown IDs, session build failures.
	obsAttachErrors = obs.NewCounter("svc.attach_errors")
	// obsDrains counts completed graceful drains.
	obsDrains = obs.NewCounter("svc.drains")
	// obsTimerFires counts wheel timer fires across all shards.
	obsTimerFires = obs.NewCounter("svc.timer_fires")
	// obsFullSweeps counts full-pipeline sweeps executed by the daemon.
	obsFullSweeps = obs.NewCounter("svc.full_sweeps")
	// obsStatFixes counts stat-device fixes executed by the daemon.
	obsStatFixes = obs.NewCounter("svc.stat_fixes")

	// obsSweepNs spans one full-pipeline sweep executed on a shard, in
	// wall nanoseconds — the service's full-fix latency distribution.
	obsSweepNs = obs.NewHist("svc.sweep_ns")
	// obsStatFixNs spans one stat fix (walk advance, sensor draw, Kalman
	// observe) in wall nanoseconds.
	obsStatFixNs = obs.NewHist("svc.stat_fix_ns")

	obsSessions    = obs.NewGauge("svc.sessions")
	obsShards      = obs.NewGauge("svc.shards")
	obsQueueDepth  = obs.NewGauge("svc.queue_depth")
	obsWheelTimers = obs.NewGauge("svc.wheel_timers")
)

// currentDaemon is the daemon the snapshot gauges describe. The metric
// registry is process-wide while daemons are per-instance, so the last
// daemon started wins — in production there is exactly one; tests that
// assert gauges start their daemon last.
var currentDaemon atomic.Pointer[Daemon]

func init() {
	obs.OnSnapshot(func(s *obs.Snapshot) {
		d := currentDaemon.Load()
		if d == nil {
			return
		}
		obsSessions.Set(float64(d.Sessions()))
		obsShards.Set(float64(len(d.shards)))
		obsQueueDepth.Set(float64(d.QueueDepth()))
		obsWheelTimers.Set(float64(d.PendingTimers()))
		s.Gauges["svc.sessions"] = obsSessions.Value()
		s.Gauges["svc.shards"] = obsShards.Value()
		s.Gauges["svc.queue_depth"] = obsQueueDepth.Value()
		s.Gauges["svc.wheel_timers"] = obsWheelTimers.Value()
	})
}
