package svc

import (
	"math/rand"
	"time"

	"chronos/internal/drone"
	"chronos/internal/geo"
	"chronos/internal/obs"
	"chronos/internal/tof"
	"chronos/internal/track"
)

// statFixPeriod is the default stat-device fix cadence: the paper's
// median full-sweep latency, so a stat fleet loads the wheel at the same
// event rate a full fleet would.
const statFixPeriod = 84 * time.Millisecond

// deviceSession is one attached device's state, owned exclusively by its
// shard goroutine. Full devices wrap a steppable track.Session (the
// exact RunSession pipeline, one sweep per timer fire); stat devices
// carry the lightweight walk + sensor + Kalman chain of track.RunMulti's
// sensor mode, one fix per timer fire.
type deviceSession struct {
	shard *shard
	id    uint64
	cfg   DeviceConfig

	// attachedAt anchors the device's virtual timeline on the shard
	// wheel: event k is due at attachedAt + (session virtual time of k).
	attachedAt time.Duration
	timer      *WheelTimer

	// Full pipeline.
	full *track.Session
	est  *tof.Estimator // the full session's estimator (preempt hook target)

	// Staged-pipeline state, owned by the shard goroutine except where
	// noted. inflight marks a sweep token out in the pipeline (the
	// token holder owns the session until it completes); detachWanted
	// defers a detach that arrived mid-flight. lastFixWall is the wall
	// clock of the device's previous completed sweep (obs.Tick units),
	// touched only by whoever owns the session at fix time — it backs
	// the per-class inter-fix latency histograms.
	inflight     bool
	detachWanted bool
	lastFixWall  int64

	// Stat pipeline.
	rng     *rand.Rand
	walk    *drone.Walk
	tracker *track.RangeTracker
	sensor  drone.RangeSensor
	anchor  geo.Point
	origin  geo.Point
	now     time.Duration // stat virtual clock
	walked  float64
	fixes   int
	failed  error
}

// newDeviceSession builds the session on the shard goroutine. Full
// sessions calibrate here (the expensive part of attach); a calibration
// failure surfaces as an immediate retire with the error recorded.
func newDeviceSession(s *shard, id uint64, cfg DeviceConfig) (*deviceSession, error) {
	ds := &deviceSession{shard: s, id: id, cfg: cfg, attachedAt: s.wheel.Now()}
	rng := seedRNG(cfg.Seed)
	if cfg.Stat {
		if cfg.FixPeriod <= 0 {
			cfg.FixPeriod = statFixPeriod
		}
		if cfg.RoomW == 0 {
			cfg.RoomW = 12
		}
		if cfg.RoomH == 0 {
			cfg.RoomH = 10
		}
		ds.cfg = cfg
		ds.rng = rng
		ds.walk = drone.NewWalk(rng, cfg.RoomW, cfg.RoomH)
		ds.walk.Speed = cfg.Speed
		ds.tracker = track.NewRangeTracker(track.FilterConfig{})
		ds.sensor = drone.StatSensor{}
		return ds, nil
	}

	ecfg := cfg.Estimator
	if s.d.coalescer != nil {
		ecfg.Coalescer = s.d.coalescer
	}
	est := tof.NewEstimator(ecfg)
	full, err := track.NewSession(rng, s.d.cfg.Office, est, cfg.Session)
	if err != nil {
		return nil, err
	}
	ds.full = full
	ds.est = est
	return ds, nil
}

// recordFixGap feeds the device's wall time since its previous
// completed sweep into its class's inter-fix histogram. Recorded on
// both execution paths (inline and staged), so the same metric compares
// head-of-line blocking across modes: inline, a delayed timer fire
// widens the gap; staged, queueing does.
func (ds *deviceSession) recordFixGap() {
	now := obs.Tick()
	if ds.lastFixWall != 0 {
		if ds.cfg.Class == ClassBulk {
			obsFixBulkNs.Observe(float64(now - ds.lastFixWall))
		} else {
			obsFixLatencyNs.Observe(float64(now - ds.lastFixWall))
		}
	}
	ds.lastFixWall = now
}

// scheduleNext books the device's next event on the shard wheel, mapping
// the session's own virtual time onto the wheel clock relative to the
// attach instant. In wall mode this paces sweeps in real protocol time;
// in virtual mode the wheel collapses the waits and the mapping only
// orders events.
func (ds *deviceSession) scheduleNext() {
	var at time.Duration
	if ds.full != nil {
		at = ds.attachedAt + ds.full.Now()
	} else {
		at = ds.attachedAt + ds.now + ds.cfg.FixPeriod
	}
	ds.timer = ds.shard.wheel.ScheduleAt(at, ds.fire)
}

// fire executes one session event on the shard goroutine: a full band
// sweep (full devices) or one sensor fix (stat devices), then either
// reschedules or retires the device.
func (ds *deviceSession) fire() {
	if ds.full != nil {
		if p := ds.shard.d.pipe; p != nil {
			// Staged path: hand the sweep to the pipeline as a token.
			// The session is untouchable until the completion returns;
			// rescheduling and retirement happen there.
			ds.inflight = true
			ds.shard.inflight.Add(1)
			p.submit(&sweepToken{ds: ds, class: ds.cfg.Class, start: obs.Tick()})
			return
		}
		start := obs.Tick()
		if err := ds.full.StepSweep(); err != nil {
			ds.shard.remove(ds, err)
			return
		}
		obsSweepNs.Since(start)
		obsFullSweeps.Inc()
		ds.recordFixGap()
		if ds.full.Done() {
			ds.shard.remove(ds, nil)
			return
		}
		ds.scheduleNext()
		return
	}

	start := obs.Tick()
	ds.now += ds.cfg.FixPeriod
	if t := ds.now.Seconds(); t > ds.walked {
		ds.walk.Advance(t - ds.walked)
		ds.walked = t
	}
	p := ds.walk.Pos()
	pos := geo.Point{X: ds.origin.X + p.X, Y: ds.origin.Y + p.Y}
	meas := ds.sensor.Range(ds.rng, ds.anchor, pos)
	ds.tracker.Observe(ds.now, meas)
	ds.fixes++
	obsStatFixNs.Since(start)
	obsStatFixes.Inc()
	if ds.cfg.Fixes > 0 && ds.fixes >= ds.cfg.Fixes {
		ds.shard.remove(ds, nil)
		return
	}
	ds.scheduleNext()
}

// result renders the device's retirement record.
func (ds *deviceSession) result(err error) *DeviceResult {
	if err == nil {
		err = ds.failed
	}
	r := &DeviceResult{ID: ds.id, Stat: ds.cfg.Stat, Err: err}
	if ds.full != nil {
		r.Session = ds.full.Result()
		r.Fixes = len(r.Session.Fixes)
	} else {
		r.Fixes = ds.fixes
	}
	return r
}
