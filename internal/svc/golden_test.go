package svc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"chronos/internal/sim"
	"chronos/internal/tof"
	"chronos/internal/track"
)

// goldenEstimator is the fixture estimator config shared by the
// sequential baseline and the daemon.
func goldenEstimator() tof.Config {
	return tof.Config{Mode: tof.BandsFused, Quirk24: true, MaxIter: 1200}
}

// goldenSession is the full steady-state session the daemon must
// reproduce: moving target, warm starts, velocity translation, an
// early-fix checkpoint.
func goldenSession() track.SessionConfig {
	return track.SessionConfig{
		Speed:             1.2,
		Sweeps:            3,
		WarmStart:         true,
		VelocityTranslate: true,
		EarlyFixBands:     []int{8},
	}
}

// svcFixTable renders a session result's fixes at full float precision
// (same schema as the track golden harness) so runs compare
// byte-for-byte.
func svcFixTable(r *track.SessionResult) string {
	var b strings.Builder
	for _, f := range append(append([]track.Fix{}, r.EarlyFixes...), r.Fixes...) {
		fmt.Fprintf(&b, "at=%d lat=%d bands=%d range=%x true=%x early=%v acc=%v\n",
			f.At, f.Latency, f.Bands, f.Range, f.TrueRange, f.Early, f.Accepted)
	}
	return b.String()
}

// goldenOffice is the shared multipath world (read-only at run time, so
// one office serves every run in the test).
func goldenOffice() *sim.Office {
	return sim.NewOffice(rand.New(rand.NewSource(3)), sim.OfficeConfig{})
}

// sequentialTraces runs K sessions back to back through track.RunSession
// — the daemon-free reference — and returns fix tables keyed by device.
func sequentialTraces(t *testing.T, office *sim.Office, seeds map[uint64]int64) map[uint64]string {
	t.Helper()
	out := make(map[uint64]string, len(seeds))
	for id, seed := range seeds {
		est := tof.NewEstimator(goldenEstimator())
		r, err := track.RunSession(rand.New(rand.NewSource(seed)), office, est, goldenSession())
		if err != nil {
			t.Fatalf("sequential session %d: %v", id, err)
		}
		out[id] = svcFixTable(r)
	}
	return out
}

// daemonTraces runs the same fleet through a virtual-time daemon at the
// given shard count and returns the fix tables. Devices attach with the
// given scheduling class (relevant only when cfg arms the staged
// pipeline).
func daemonTraces(t *testing.T, office *sim.Office, seeds map[uint64]int64, cfg Config, class Class) map[uint64]string {
	t.Helper()
	cfg.Office = office
	cfg.Virtual = true
	d := NewDaemon(cfg)
	for id, seed := range seeds {
		if err := d.Attach(id, DeviceConfig{Seed: seed, Class: class,
			Session: goldenSession(), Estimator: goldenEstimator()}); err != nil {
			t.Fatalf("attach %d: %v", id, err)
		}
	}
	if err := d.Quiesce(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	results := d.Results()
	if _, err := d.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	out := make(map[uint64]string, len(results))
	for id, r := range results {
		if r.Err != nil {
			t.Fatalf("device %d retired with error: %v", id, r.Err)
		}
		if r.Session == nil {
			t.Fatalf("device %d has no session result", id)
		}
		out[id] = svcFixTable(r.Session)
	}
	return out
}

// TestDaemonGoldenTraceMatchesSequential is the service golden-trace
// gate: a daemon running K full-pipeline devices on virtual time must
// produce byte-identical fix tables to K sequential track.RunSession
// calls with the same seeds — at 1 shard and at 8 shards (where the
// fleet genuinely interleaves across goroutines, with the shared
// coalescer armed). This is what licenses every later scheduling change:
// the daemon may reorder work however it likes, but per-device results
// are pinned.
func TestDaemonGoldenTraceMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline fleet")
	}
	office := goldenOffice()
	seeds := map[uint64]int64{1: 11, 2: 12, 3: 13, 4: 14}
	want := sequentialTraces(t, office, seeds)
	for id, tab := range want {
		if tab == "" {
			t.Fatalf("device %d: empty sequential fix table", id)
		}
	}

	// The staged-pipeline cases pin the tentpole invariant: cutting a
	// sweep into ingest/solve/track stages executed by three different
	// worker pools must not change a single byte of any device's fix
	// trace — at 1 shard, at 8 shards, with the coalescer merging
	// cross-device solves, and regardless of class (bulk class only
	// changes dequeue ORDER; preemption stays off here because
	// park/resume legitimately alters solve trajectories).
	for _, tc := range []struct {
		name  string
		cfg   Config
		class Class
	}{
		{"1shard", Config{Shards: 1}, ClassLatency},
		{"8shards_coalesced", Config{Shards: 8, Coalesce: true}, ClassLatency},
		{"1shard_pipeline", Config{Shards: 1,
			Pipeline: PipelineConfig{Enabled: true}}, ClassLatency},
		{"8shards_pipeline_coalesced", Config{Shards: 8, Coalesce: true,
			Pipeline: PipelineConfig{Enabled: true}}, ClassLatency},
		{"8shards_pipeline_bulk", Config{Shards: 8,
			Pipeline: PipelineConfig{Enabled: true, SolveWorkers: 2, QueueDepth: 2}}, ClassBulk},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := daemonTraces(t, office, seeds, tc.cfg, tc.class)
			if len(got) != len(want) {
				t.Fatalf("daemon retired %d devices, want %d", len(got), len(want))
			}
			for id, tab := range want {
				if got[id] != tab {
					t.Errorf("device %d diverged from sequential run:\ndaemon:\n%s\nsequential:\n%s",
						id, got[id], tab)
				}
			}
		})
	}
}
