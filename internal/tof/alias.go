package tof

import (
	"math"
	"math/cmplx"
	"sort"

	"chronos/internal/dsp"
	"chronos/internal/ndft"
)

// PeakRanking selects how the direct-path peak is extracted from a
// multipath profile.
type PeakRanking int

const (
	// RankFamilies (default) applies the §6 windowed first-peak rule
	// with peaks ranked by alias-family mass: profile magnitude folded
	// modulo the alias period, baseline-subtracted, so a path keeps its
	// full rank however the solver split its mass across grating-lobe
	// vertices of the degenerate LASSO face. Families whose mass was
	// stranded entirely outside the search window contribute virtual
	// candidates that must win a decisive refit against the best real
	// peak, and the §4 alias-window refit places the final candidate
	// using discrimination-weighted residuals.
	RankFamilies PeakRanking = iota
	// RankVertex trusts the raw profile vertex the solver converged to:
	// the earliest dominant peak within SearchWindow of the strongest
	// vertex, then a ±1-period disambiguation refit anchored on that
	// vertex with unweighted residuals. Kept as the ablation baseline;
	// it is right only when the solver's trajectory lands on the true
	// vertex of the degenerate face.
	RankVertex
)

// aliasWindow is the width of the disambiguation refit window in τ:
// [cand−2 ns, cand+22 ns]. 24 ns < the 25 ns alias period, so the window
// holds at most one hypothesis.
const aliasWindow = 24e-9

// windowPlan resolves the canonical alias-refit window plan for one band
// group: the [0, aliasWindow] grid in the group's h̃ᵖ delay domain, built
// once per geometry in the shared registry and reused by every hypothesis
// of every sweep (a window shift is a per-frequency phase rotation).
func (e *Estimator) windowPlan(freqs []float64, power int) (*ndft.Plan, planKey, error) {
	pf := float64(power)
	key := newPlanKey(freqs, power, aliasWindow, e.cfg.GridStep)
	key.window = true
	plan, err := e.plans.planFor(key, func() (*ndft.Plan, error) {
		return ndft.NewPlan(freqs, ndft.TauGrid(pf*aliasWindow, pf*e.cfg.GridStep))
	})
	return plan, key, err
}

// windowRefit bundles the per-group refit context — the canonical window
// plan and the scratch every hypothesis solve of one estimate call
// shares — so the solve call sites thread one receiver instead of a long
// positional argument list.
type windowRefit struct {
	e     *Estimator
	s     *Sweep
	plan  *ndft.Plan
	key   planKey
	freqs []float64
	h     dsp.Vec
	power int
	noise float64 // per-sweep ‖w‖₂ estimate; rotation preserves it
	rot   dsp.Vec
	dst   *ndft.Result
}

func (e *Estimator) newWindowRefit(freqs []float64, h dsp.Vec, power int, s *Sweep, noise float64) (*windowRefit, error) {
	plan, key, err := e.windowPlan(freqs, power)
	if err != nil {
		return nil, err
	}
	return &windowRefit{
		e: e, s: s, plan: plan, key: key, freqs: freqs, h: h, power: power, noise: noise,
		rot: make(dsp.Vec, len(h)), dst: &ndft.Result{},
	}, nil
}

// solve fits the group measurement against the canonical window plan
// with the delay origin shifted to cand−2 ns (clamped at 0): fitting on
// [lo, lo+W] equals fitting the phase-rotated measurement h·e^{+j2πf·lo}
// on [0, W], since a delay shift is a per-frequency rotation that
// preserves the residual norm. The candidate delay labels the alias
// hypothesis for the sweep's per-hypothesis warm state (family-stable
// nearest-candidate matching, see windowWarmState): the window tracks
// the candidate, so in window coordinates the profile barely moves
// between sweeps and the previous converged window profile is an
// excellent seed (forceCold bypasses the seed; the result still
// refreshes the warm state). Warm seeding follows the same
// measured-efficacy policy as the main solve — after warmStrikes
// consecutive warm refits that cost more than the cold baseline, that
// hypothesis permanently reverts to cold starts.
//
// alpha, when nonzero, overrides the solver's per-measurement α
// auto-scaling: residuals of competing hypotheses are only comparable
// under one shared sparsity penalty, since the auto α grows with the
// window's atom correlations and would shrink the well-matched window
// harder than a displaced one. eps, when nonzero, loosens the iterate
// convergence tolerance: a refit feeds a 15%-margin residual comparison,
// not a peak readout, so ranking callers stop at 1e−3·‖h‖ instead of
// ringing toward the solver's default 1e−6 — which both cuts the cold
// refit cost and lets refits actually converge, the precondition for
// retaining their profiles as next-sweep warm seeds. w, when non-nil,
// additionally scores the refit by the w-weighted residual (see
// aliasWeights); otherwise the weighted score equals the plain one.
func (wr *windowRefit) solve(cand, alpha, eps float64, w []float64, forceCold bool) (refitScore, int64, error) {
	obsAliasRefits.Inc()
	rotateWindow(wr.freqs, wr.h, cand, float64(wr.power), wr.rot)
	g := wr.s.windowWarmState(wr.key, cand)
	// Without a usable noise estimate (or above the gap ceiling) the
	// refit scores feed decisions whose margins sit near the score
	// noise, and a warm-seeded score that lands on the other side of a
	// margin than the cold score would make a warm stream decide
	// differently than a cold one. Scoring those refits cold keeps
	// warm-stream decisions exactly equal to cold-stream decisions where
	// the evidence is thin; the warm savings concentrate in the regime
	// where the margins have real slack.
	if wr.noise <= 0 {
		forceCold = true
	}
	var warm dsp.Vec
	if g != nil && !forceCold && !g.off && len(g.profile) == len(wr.plan.Taus) {
		warm = g.profile
	}
	res, err := wr.plan.Solve(ndft.SolveRequest{
		H: wr.rot, Warm: warm, Dst: wr.dst,
		InvertOptions: ndft.InvertOptions{
			Alpha: alpha, Epsilon: eps, MaxIter: 600,
			Stop: wr.e.cfg.Stop, GapScale: wr.e.cfg.GapScale, NoiseFloor: wr.noise,
		},
	})
	if err != nil {
		return refitScore{}, 0, err
	}
	if g != nil {
		g.observe(warm != nil, res)
	}
	score := refitScore{plain: res.Residual, weighted: res.Residual}
	if w != nil {
		score.weighted = wr.plan.WeightedResidual(res.Profile, wr.rot, w)
	}
	return score, res.Work, nil
}

// rotateWindow writes h·e^{+j2πf·lo} into rot for the refit window
// anchored at candidate cand: lo = (cand − 2 ns)·pf, clamped at 0 — the
// delay-shift rotation that maps the candidate's window onto the
// canonical [0, W] plan. Every consumer of a window measurement (the
// refits and the shared-α reference) goes through this one function so
// the anchoring can never diverge between them.
func rotateWindow(freqs []float64, h dsp.Vec, cand, pf float64, rot dsp.Vec) {
	lo := (cand - 2e-9) * pf
	if lo < 0 {
		lo = 0
	}
	for i, f := range freqs {
		ph := math.Mod(2*math.Pi*f*lo, 2*math.Pi)
		rot[i] = h[i] * cmplx.Rect(1, ph)
	}
}

// aliasWeights scores each band's power to discriminate alias
// hypotheses. Two hypotheses one period apart differ by the rotation
// e^{−j2πf·p·P} per band: a band whose f·p·P is an integer (the
// on-lattice raster) fits every hypothesis identically and contributes
// only noise to a residual comparison, so placement weights each band by
// sin²(π·f·p·P) — zero on the lattice, maximal half a cycle off it.
// Returns nil when no band discriminates (a pure-raster geometry), in
// which case callers fall back to the unweighted residual.
func aliasWeights(freqs []float64, power int, period float64) []float64 {
	w := make([]float64, len(freqs))
	any := false
	for i, f := range freqs {
		frac := math.Mod(f*float64(power)*period, 1)
		s := math.Sin(math.Pi * frac)
		w[i] = s * s
		if w[i] > 1e-6 {
			any = true
		}
	}
	if !any {
		return nil
	}
	return w
}

// aliasMargin is the historical evidence margin of the vertex chain (and
// the family chain's FixedThresholds ablation): a refit hypothesis
// displaces the incumbent only when its residual beats the incumbent's
// by this factor — residual comparisons are noisy when the off-lattice
// channels are faded, so near-ties must never flip decisions.
const aliasMargin = 0.85

// anchorMargin is the historical fixed margin for how decisively another
// family's folded mass must beat the tallest vertex's family before it
// takes over as the window anchor. Folding sums mass across
// ~MaxTau/AliasPeriod periods, so two unrelated noise bumps that happen
// to share a residue can edge past a real path's family; a genuine split
// or stranded path carries its full conserved mass and clears the
// margin, chance alignments rarely do.
const anchorMargin = 1.3

// refitFitGate is the historical fixed bound on how much of the
// measurement a window refit may leave unexplained before its residual
// comparisons stop being evidence: when the best fit still strands over
// this fraction of ‖h‖ (deep NLOS, low SNR, model mismatch), hypothesis
// residuals differ only by noise and no refit outcome may overturn the
// profile's own placement.
const refitFitGate = 0.35

// evidenceGates bundles the alias-evidence thresholds one estimate uses:
// the refit displacement margin, the anchor takeover margin, and the
// refit fit-quality gate.
type evidenceGates struct {
	refitMargin  float64
	anchorMargin float64
	fitGate      float64
}

// fixedGates are the historical constants, tuned on the simulated
// testbed at its standard campaign SNR (relative noise ≈ 0.05 per band
// group). They remain the FixedThresholds ablation values and the
// fallback when no per-sweep noise estimate exists.
var fixedGates = evidenceGates{refitMargin: aliasMargin, anchorMargin: anchorMargin, fitGate: refitFitGate}

// Slopes of the noise-adaptive evidence thresholds in the relative noise
// estimate, anchored so that at the historical tuning point
// (noiseRel ≈ 0.05) each gate reproduces its fixed constant:
//
//	refit margin  1 − 3·noiseRel   (0.85 at 0.05): cleaner sweeps make
//	  residual comparisons sharper, so near-ties flip on thinner margins;
//	  noisier sweeps must be more conservative.
//	anchor margin 1 + 6·noiseRel   (1.3 at 0.05): folded-mass contrasts
//	  blur as noise mass spreads across residues.
//	fit gate      7·noiseRel       (0.35 at 0.05): the residual a refit
//	  may leave unexplained and still count as evidence scales directly
//	  with the noise the best possible fit must leave behind.
//
// Clamps keep degenerate estimates (near-noiseless fixtures, very deep
// fades) inside the regime the chain was validated in.
const (
	refitMarginSlope = 3.0
	anchorSlope      = 6.0
	fitGateSlope     = 7.0
)

// gatesFor derives the estimate's evidence thresholds from the
// per-sweep relative noise estimate, making the family chain
// self-calibrating across SNR regimes; the historical constants remain
// as the FixedThresholds ablation and the no-estimate fallback.
func (e *Estimator) gatesFor(noiseRel float64) evidenceGates {
	if e.cfg.FixedThresholds || noiseRel <= 0 {
		return fixedGates
	}
	return evidenceGates{
		refitMargin:  clampF(1-refitMarginSlope*noiseRel, 0.6, 0.97),
		anchorMargin: clampF(1+anchorSlope*noiseRel, 1.1, 1.9),
		fitGate:      clampF(fitGateSlope*noiseRel, 0.15, 0.6),
	}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// refitScore is one candidate's anchored refit outcome: the plain data
// residual and the discrimination-weighted one (equal when the geometry
// has no discriminating bands).
type refitScore struct {
	plain    float64
	weighted float64
}

// aliasScorer memoizes anchored window refits for one band group within
// one estimate call: the first-peak scan and the final placement often
// score the same candidate, and a candidate's score is deterministic
// within a call, so each distinct grid cell is solved once.
type aliasScorer struct {
	wr       *windowRefit
	hNorm    float64
	gates    evidenceGates // noise-adaptive evidence thresholds
	alpha    float64       // shared sparsity penalty; set from the first candidate
	weights  []float64
	memo     map[int]refitScore
	memoCold map[int]refitScore // forced-cold confirmation scores
	work     int64
}

func (e *Estimator) newAliasScorer(freqs []float64, h dsp.Vec, power int, s *Sweep, noiseRel float64) (*aliasScorer, error) {
	hNorm := dsp.Norm2(h)
	// The refit solver floor follows the same gap ceiling as the main
	// solve: deep-fade refits feed fragile residual comparisons and keep
	// the precise rule. The evidence gates below still adapt — they are
	// decision thresholds, not solve tolerances.
	noise := noiseRel * hNorm
	if noiseRel > gapNoiseCeil {
		noise = 0
	}
	wr, err := e.newWindowRefit(freqs, h, power, s, noise)
	if err != nil {
		return nil, err
	}
	return &aliasScorer{
		wr:      wr,
		hNorm:   hNorm,
		gates:   e.gatesFor(noiseRel),
		weights: aliasWeights(freqs, power, e.cfg.AliasPeriod),
		memo:    make(map[int]refitScore, 4),
	}, nil
}

// score runs (or recalls) the anchored refit for one direct-path
// candidate. Warm state is labeled by the candidate's period index, which
// is stable while the tracked path stays within one alias cell. The
// first candidate scored fixes the shared sparsity penalty α for every
// later hypothesis — callers score their incumbent first, so α is scaled
// to the window the solver's own evidence points at.
//
// forceCold bypasses warm seeding (the result still refreshes the warm
// state): decisive actions — placement flips, virtual admissions — are
// confirmed on cold refits, so a warm-seeded stream takes exactly the
// decisions a cold stream would, and a marginal warm solve can never
// manufacture a ±1-period flip the data does not support. On sweeps
// without warm starting both modes are identical and share one memo.
func (sc *aliasScorer) score(cand float64, forceCold bool) refitScore {
	cfg := sc.wr.e.cfg
	cell := int(math.Round(cand / cfg.GridStep))
	memo := sc.memo
	if forceCold && sc.wr.s.warm {
		if sc.memoCold == nil {
			sc.memoCold = make(map[int]refitScore, 4)
		}
		memo = sc.memoCold
	}
	if v, ok := memo[cell]; ok {
		return v
	}
	if sc.alpha == 0 {
		sc.alpha = sc.referenceAlpha(cand)
	}
	v, w, err := sc.wr.solve(cand, sc.alpha, 1e-3*sc.hNorm, sc.weights, forceCold && sc.wr.s.warm)
	sc.work += w
	out := refitScore{plain: math.Inf(1), weighted: math.Inf(1)}
	if err == nil {
		out = v
	}
	memo[cell] = out
	if !sc.wr.s.warm {
		// Cold sessions: both modes are the same solve.
		sc.memoCold = sc.memo
	}
	return out
}

// referenceAlpha resolves the shared refit α: the configured override
// when set, otherwise the solver's standard scaling (10% of the largest
// atom correlation, times the ablation factor) evaluated on the
// reference candidate's rotated window.
func (sc *aliasScorer) referenceAlpha(cand float64) float64 {
	cfg := sc.wr.e.cfg
	if cfg.Alpha != 0 {
		return cfg.Alpha
	}
	rotateWindow(sc.wr.freqs, sc.wr.h, cand, float64(sc.wr.power), sc.wr.rot)
	scale := cfg.AlphaFactor
	if scale == 0 {
		scale = 1
	}
	return 0.1 * scale * sc.wr.plan.MaxCorrelation(sc.wr.rot)
}

// trusted reports whether a refit outcome explains enough of the
// measurement for its residual comparisons to carry evidence. The gate
// scales with the per-sweep noise estimate: at low SNR the best
// possible fit strands more of ‖h‖, so a fixed gate would reject
// genuine evidence there and accept noise-floor comparisons at high
// SNR.
func (sc *aliasScorer) trusted(r refitScore) bool {
	return !math.IsInf(r.plain, 1) && r.plain <= sc.gates.fitGate*sc.hNorm
}

// beats reports whether challenger fits decisively better than the
// incumbent: the noise-adaptive margin on the discrimination-weighted
// residual, plus a plain-residual sanity check so a weighted fluke on
// faded bands cannot flip a decision the full measurement contradicts.
func (sc *aliasScorer) beats(challenger, incumbent refitScore) bool {
	return challenger.weighted < sc.gates.refitMargin*incumbent.weighted &&
		challenger.plain < incumbent.plain
}

// familyRank extracts the direct-path delay with alias-family ranking.
// It follows the §6 windowed first-peak structure of the vertex chain,
// with three ghost-insensitivity repairs:
//
//  1. dominance and the window anchor are ranked by baseline-subtracted
//     folded family mass, so a path whose vertex the solver split across
//     grating-lobe members keeps its full rank;
//  2. a dominant family with no real peak inside the search window
//     contributes a virtual candidate at its in-window member position —
//     admitted as the first peak only when its anchored refit beats the
//     best real candidate decisively (energy stranded wholly on an
//     out-of-window ghost is recoverable, but never on a noisy tie);
//  3. the final ±1-period placement refit compares
//     discrimination-weighted residuals (aliasWeights), sharpening the
//     §4 test on geometries with off-lattice bands while leaving
//     pure-raster geometries to the solver's own placement.
//
// ok is false when folding is degenerate for the grid or the refits
// failed; callers fall back to the vertex chain. noiseRel is the
// group's per-sweep relative noise estimate, from which the evidence
// thresholds (anchor margin, refit margin, fit gate) are derived.
func (e *Estimator) familyRank(freqs []float64, h dsp.Vec, power int, prof *Profile, s *Sweep, noiseRel float64) (float64, bool, int64) {
	step := e.cfg.GridStep
	gates := e.gatesFor(noiseRel)
	cells := int(math.Round(e.cfg.AliasPeriod / step))
	if cells < 4 || cells >= len(prof.Magnitude) {
		return 0, false, 0
	}
	period := float64(cells) * step

	// Half the vertex floor admits direct paths whose tallest member was
	// halved by a family split; what this lets through is filtered by
	// family dominance below.
	peaks := dsp.FindPeaks(prof.Taus, prof.Magnitude, 0.5*e.cfg.PeakThreshold)
	if len(peaks) == 0 {
		return 0, false, 0
	}

	// Folding sums the nonnegative noise floor of every period into each
	// residue, so family mass is measured above the folded baseline (the
	// median residue mass) — otherwise noise families at campaign SNR
	// pass any threshold set relative to the strongest family.
	fold := ndft.FoldMass(nil, prof.Magnitude, cells)
	sorted := append([]float64(nil), fold...)
	sort.Float64s(sorted)
	baseline := sorted[len(sorted)/2]
	famMass := func(idx int) float64 {
		r := ((idx % cells) + cells) % cells
		m := fold[r] - baseline
		// A refined peak can straddle a cell boundary; take the best of
		// the neighboring residues.
		if v := fold[(r+cells-1)%cells] - baseline; v > m {
			m = v
		}
		if v := fold[(r+1)%cells] - baseline; v > m {
			m = v
		}
		return m
	}

	// Anchor: the tallest vertex's family, displaced only by a family
	// whose folded mass is decisively larger (anchorMargin). Raw height
	// breaks within-family ties, so the anchor sits on the member the
	// solver believes in.
	tallest := peaks[0]
	for _, p := range peaks[1:] {
		if p.Power > tallest.Power {
			tallest = p
		}
	}
	anchor, anchorMass := tallest, famMass(tallest.Index)
	byMass, byMassVal := anchor, anchorMass
	for _, p := range peaks {
		m := famMass(p.Index)
		if m > byMassVal || (m == byMassVal && p.Power > byMass.Power) {
			byMass, byMassVal = p, m
		}
	}
	if byMassVal > gates.anchorMargin*anchorMass || anchorMass <= 0 {
		anchor, anchorMass = byMass, byMassVal
	}
	if anchorMass <= 0 {
		return 0, false, 0
	}
	floor := e.cfg.PeakThreshold * anchorMass
	lo := anchor.X - e.cfg.SearchWindow

	// Earliest dominant real peak inside the window (the anchor itself
	// when nothing dominant precedes it).
	first := anchor
	for _, p := range peaks {
		if p.X >= lo && p.X < first.X && famMass(p.Index) >= floor {
			first = p
		}
	}

	scorer, err := e.newAliasScorer(freqs, h, power, s, noiseRel)
	if err != nil {
		return 0, false, 0
	}

	// Virtual candidates: dominant families whose in-window member
	// position holds no real peak — their mass is stranded on an
	// out-of-window ghost member. Each is admitted over the current
	// first peak only on a decisively better anchored refit, and only
	// when the refits explain the data well enough to be evidence.
	virtuals := e.virtualCandidates(peaks, famMass, floor, lo, first.X, anchor.X, period)
	if len(virtuals) > 0 {
		firstScore := scorer.score(first.X, false)
		if scorer.trusted(firstScore) {
			for _, v := range virtuals {
				if vs := scorer.score(v, false); scorer.trusted(vs) && scorer.beats(vs, firstScore) {
					// Admitting a virtual candidate is a decisive action:
					// confirm it on cold refits before acting.
					fsC, vsC := scorer.score(first.X, true), scorer.score(v, true)
					if scorer.trusted(fsC) && scorer.trusted(vsC) && scorer.beats(vsC, fsC) {
						return e.placeCandidate(scorer, v), true, scorer.work
					}
				}
			}
		}
	}
	return e.placeCandidate(scorer, first.X), true, scorer.work
}

// virtualCandidates returns, in ascending delay order, the in-window
// member positions of dominant families that have no real candidate peak
// nearby and that would precede the current first peak.
func (e *Estimator) virtualCandidates(peaks []dsp.Peak, famMass func(int) float64, floor, lo, firstX, anchorX, period float64) []float64 {
	step := e.cfg.GridStep
	var out []float64
	for _, p := range peaks {
		if famMass(p.Index) < floor {
			continue
		}
		// The family's unique member position at or before the anchor.
		v := anchorX - math.Mod(anchorX-p.X+64*period, period)
		if v < lo-step || v >= firstX-2*step || v < -1e-9 {
			continue
		}
		covered := false
		for _, q := range peaks {
			if math.Abs(q.X-v) <= 2*step {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		dup := false
		for _, u := range out {
			if math.Abs(u-v) <= 2*step {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}

// placeCandidate resolves which grating-lobe member the chosen first
// peak belongs to: the §4 refit over cand + k·AliasPeriod, k ∈ {−1,0,1},
// with the candidate as the incumbent — the vertex chain's
// disambiguation, sharpened by discrimination weighting and warm-started
// refits, and gated on fit quality so an uninformative refit can never
// displace the solver's placement.
func (e *Estimator) placeCandidate(scorer *aliasScorer, cand float64) float64 {
	decide := func(forceCold bool) float64 {
		base := scorer.score(cand, forceCold)
		if !scorer.trusted(base) {
			return cand
		}
		best, bestScore := cand, base
		for k := -1; k <= 1; k += 2 {
			c := cand + float64(k)*e.cfg.AliasPeriod
			if c < -1e-9 || c > e.cfg.MaxTau {
				continue
			}
			if sc := scorer.score(c, forceCold); scorer.beats(sc, base) && sc.weighted < bestScore.weighted {
				best, bestScore = c, sc
			}
		}
		return best
	}
	best := decide(false)
	if best != cand {
		// A ±1-period flip is rare and decisive: confirm it with cold
		// refits so warm-seeded streams place exactly as cold ones.
		best = decide(true)
	}
	if best != cand {
		obsAliasFlips.Inc()
	}
	return best
}

// disambiguateAlias resolves which grating-lobe hypothesis a
// vertex-ranked first peak belongs to. For each shift k·AliasPeriod
// around the candidate, it refits the measurements on a delay window
// shorter than one alias period; the displaced hypotheses fit the
// on-lattice channels but rotate the off-lattice channels, so the true
// hypothesis has the smallest residual. When a candidate sits within
// 2 ns of zero the shift clamps to lo=0 and the fixed-width window
// extends slightly past cand+22 ns; the extra atoms stay inside one alias
// period (24 ns < 25 ns), so the window still holds at most one
// hypothesis. Returns the resolved delay and the solver work spent.
//
// This is the RankVertex ablation baseline: historical per-solve α,
// unweighted residuals, and the fixed displacement margin. The family
// chain never calls it — its fallback placement runs placeCandidate,
// which shares α across hypotheses, weights residuals, gates on fit
// quality with noise-adaptive thresholds, and cold-confirms flips.
// noiseFloor still feeds the solver's stopping rule: the ranking
// ablation isolates the ranking, not the convergence model.
func (e *Estimator) disambiguateAlias(freqs []float64, h dsp.Vec, power int, tau float64, s *Sweep, noiseFloor float64) (float64, int64) {
	wr, err := e.newWindowRefit(freqs, h, power, s, noiseFloor)
	if err != nil {
		return tau, 0
	}
	resids := map[int]float64{}
	var work int64
	for k := -1; k <= 1; k++ {
		cand := tau + float64(k)*e.cfg.AliasPeriod
		if cand < -1e-9 || cand > e.cfg.MaxTau {
			continue
		}
		// Warm labels use the candidate delay — the same family-stable
		// convention as aliasScorer — so vertex-mode streams keep one
		// consistent warm-state keying.
		resid, w, err := wr.solve(cand, e.cfg.Alpha, 0, nil, false)
		work += w
		if err != nil {
			continue
		}
		resids[k] = resid.plain
	}
	base, ok := resids[0]
	if !ok {
		return tau, work
	}
	// Shift only when a competing hypothesis fits the data decisively
	// better than the incumbent — a conservative test, since residual
	// comparisons are noisy when the off-lattice channels are faded.
	bestK, bestResid := 0, base
	for k, r := range resids {
		if r < aliasMargin*base && r < bestResid {
			bestK, bestResid = k, r
		}
	}
	return tau + float64(bestK)*e.cfg.AliasPeriod, work
}
