package tof

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"chronos/internal/csi"
	"chronos/internal/wifi"
)

// TestSweepIncrementalMatchesBatch is the refactor's core contract: folding
// bands in one at a time and estimating at the end must reproduce the batch
// Estimate bit for bit (same measurements, same grouping, same inversion).
func TestSweepIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	link := testLink(rng, 12, nil, true)
	bands := wifi.USBands()
	est := NewEstimator(Config{Mode: BandsFused, Quirk24: true, MaxIter: 600})
	sweep := link.Sweep(rng, bands, 3, 2.4e-3)

	batch, err := est.Estimate(bands, sweep)
	if err != nil {
		t.Fatal(err)
	}

	acc := est.NewSweep()
	for i, b := range bands {
		if err := acc.AddBand(b, sweep[i]); err != nil {
			t.Fatal(err)
		}
	}
	inc, err := acc.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if inc.ToF != batch.ToF || inc.Distance != batch.Distance ||
		inc.Peaks != batch.Peaks || inc.Fused != batch.Fused {
		t.Errorf("incremental fix diverged from batch: %+v vs %+v", inc, batch)
	}
}

// TestSweepEarlyFix checks the streaming property the track subsystem
// relies on: a usable (if degraded) fix is available from a partial band
// set, and the full-sweep fix refines it.
func TestSweepEarlyFix(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	link := testLink(rng, 10, nil, false)
	bands := wifi.Bands5GHz()
	est := calibrated(t, Config{Mode: Bands5GHzOnly, MaxIter: 800}, link, rng, bands)

	sweep := link.Sweep(rng, bands, 3, 2.4e-3)
	acc := est.NewSweep()
	var earlyToF float64
	for i, b := range bands {
		if err := acc.AddBand(b, sweep[i]); err != nil {
			t.Fatal(err)
		}
		if acc.Bands() == 8 {
			early, err := acc.Estimate()
			if err != nil {
				t.Fatalf("early fix at 8 bands: %v", err)
			}
			earlyToF = early.ToF
		}
	}
	full, err := acc.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	// The first 8 5 GHz bands all sit on the 20 MHz channel raster, so an
	// early fix is only unambiguous modulo the 25 ns grating-lobe period —
	// the off-lattice bands that resolve the alias arrive later in the
	// sweep. Accept the early fix up to that alias.
	earlyErr := math.Inf(1)
	for k := -1.0; k <= 1; k++ {
		if e := math.Abs(earlyToF - 10e-9 + k*25e-9); e < earlyErr {
			earlyErr = e
		}
	}
	if earlyErr > 6e-9 {
		t.Errorf("early fix error = %v ns (mod alias), want coarse agreement", earlyErr*1e9)
	}
	if e := math.Abs(full.ToF - 10e-9); e > 0.5e-9 {
		t.Errorf("full fix error = %v ns, want < 0.5 ns", e*1e9)
	}
}

// TestSweepEmptyAndFiltered covers the no-measurement edge cases.
func TestSweepEmptyAndFiltered(t *testing.T) {
	est := NewEstimator(Config{Mode: Bands5GHzOnly})
	acc := est.NewSweep()
	if _, err := acc.Estimate(); !errors.Is(err, ErrNoBands) {
		t.Errorf("empty sweep error = %v, want ErrNoBands", err)
	}
	// A 2.4 GHz band is mode-filtered: accepted silently, not counted.
	b24 := wifi.Bands24GHz()[0]
	if err := acc.AddBand(b24, make([]csi.Pair, 0)); err != nil {
		t.Errorf("empty pairs: %v", err)
	}
	rng := rand.New(rand.NewSource(13))
	link := testLink(rng, 5, nil, false)
	pairs := []csi.Pair{link.MeasurePair(rng, b24, 0)}
	if err := acc.AddBand(b24, pairs); err != nil {
		t.Errorf("mode-filtered band: %v", err)
	}
	if acc.Bands() != 0 {
		t.Errorf("bands = %d, want 0 after filtered adds", acc.Bands())
	}
	if _, err := acc.Estimate(); !errors.Is(err, ErrNoBands) {
		t.Errorf("filtered sweep error = %v, want ErrNoBands", err)
	}
}

// TestSweepReset confirms a Sweep can be reused across band cycles.
func TestSweepReset(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	link := testLink(rng, 9, nil, false)
	bands := wifi.Bands5GHz()
	est := NewEstimator(Config{Mode: Bands5GHzOnly, MaxIter: 500})

	acc := est.NewSweep()
	for cycle := 0; cycle < 2; cycle++ {
		sweep := link.Sweep(rng, bands, 2, 2.4e-3)
		for i, b := range bands {
			if err := acc.AddBand(b, sweep[i]); err != nil {
				t.Fatal(err)
			}
		}
		if acc.Bands() != len(bands) {
			t.Fatalf("cycle %d folded %d bands, want %d", cycle, acc.Bands(), len(bands))
		}
		if _, err := acc.Estimate(); err != nil {
			t.Fatalf("cycle %d estimate: %v", cycle, err)
		}
		acc.Reset()
		if acc.Bands() != 0 {
			t.Fatal("Reset did not clear measurements")
		}
	}
}
