package tof

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"chronos/internal/csi"
	"chronos/internal/rf"
	"chronos/internal/wifi"
)

// testLink builds a link over a multipath channel whose direct path has
// the given delay (ns).
func testLink(rng *rand.Rand, directNs float64, extraPaths []rf.Path, quirk bool) *csi.Link {
	tx, rx := csi.NewRadio(rng), csi.NewRadio(rng)
	tx.Quirk24, rx.Quirk24 = quirk, quirk
	paths := append([]rf.Path{{Delay: directNs * 1e-9, Gain: 1}}, extraPaths...)
	return &csi.Link{TX: tx, RX: rx, Channel: rf.NewChannel(paths), SNRdB: 30}
}

// calibrated returns an estimator calibrated against the hardware delays
// of the link, emulating the paper's one-time known-distance calibration.
func calibrated(t *testing.T, cfg Config, link *csi.Link, rng *rand.Rand, bands []wifi.Band) *Estimator {
	t.Helper()
	est := NewEstimator(cfg)
	sweep := link.Sweep(rng, bands, 3, 2.4e-3)
	trueDist := link.Channel.DirectDelay() * wifi.SpeedOfLight
	off, err := Calibrate(est, bands, sweep, trueDist)
	if err != nil {
		t.Fatal(err)
	}
	est.cfg.CalibrationOffset = off
	return est
}

func TestEstimateSinglePath5GHz(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	link := testLink(rng, 10, nil, false)
	bands := wifi.Bands5GHz()
	est := calibrated(t, Config{Mode: Bands5GHzOnly, MaxIter: 800}, link, rng, bands)

	sweep := link.Sweep(rng, bands, 3, 2.4e-3)
	got, err := est.Estimate(bands, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(got.ToF - 10e-9); e > 0.5e-9 {
		t.Errorf("ToF error = %v, want < 0.5 ns", e)
	}
	if math.Abs(got.Distance-got.ToF*wifi.SpeedOfLight) > 1e-9 {
		t.Error("Distance inconsistent with ToF")
	}
}

func TestEstimateMultipath5GHz(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	extra := []rf.Path{
		{Delay: 14e-9, Gain: 0.6},
		{Delay: 21e-9, Gain: 0.4},
	}
	link := testLink(rng, 8, extra, false)
	bands := wifi.Bands5GHz()
	est := calibrated(t, Config{Mode: Bands5GHzOnly, MaxIter: 1200}, link, rng, bands)

	var errs []float64
	for trial := 0; trial < 5; trial++ {
		sweep := link.Sweep(rng, bands, 3, 2.4e-3)
		got, err := est.Estimate(bands, sweep)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, math.Abs(got.ToF-8e-9))
	}
	// Median-ish check: at least 3 of 5 trials within 1 ns.
	good := 0
	for _, e := range errs {
		if e < 1e-9 {
			good++
		}
	}
	if good < 3 {
		t.Errorf("only %d/5 trials within 1 ns: %v", good, errs)
	}
}

func TestEstimateFusedWithQuirk(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	link := testLink(rng, 12, []rf.Path{{Delay: 18e-9, Gain: 0.5}}, true)
	bands := wifi.USBands()
	est := calibrated(t, Config{Mode: BandsFused, Quirk24: true, MaxIter: 1200}, link, rng, bands)

	sweep := link.Sweep(rng, bands, 3, 2.4e-3)
	got, err := est.Estimate(bands, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(got.ToF - 12e-9); e > 1.5e-9 {
		t.Errorf("fused ToF error = %v", e)
	}
}

func TestEstimateAllCoherentQuirkFree(t *testing.T) {
	// The clean-firmware what-if: all 35 bands in one inversion.
	rng := rand.New(rand.NewSource(4))
	link := testLink(rng, 9, []rf.Path{{Delay: 15e-9, Gain: 0.5}}, false)
	bands := wifi.USBands()
	est := calibrated(t, Config{Mode: BandsAllCoherent, MaxIter: 1200}, link, rng, bands)

	sweep := link.Sweep(rng, bands, 3, 2.4e-3)
	got, err := est.Estimate(bands, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(got.ToF - 9e-9); e > 0.5e-9 {
		t.Errorf("all-coherent ToF error = %v", e)
	}
}

func TestEstimateAllCoherentRejectsQuirk(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	link := testLink(rng, 9, nil, true)
	bands := wifi.USBands()
	est := NewEstimator(Config{Mode: BandsAllCoherent, Quirk24: true})
	sweep := link.Sweep(rng, bands, 1, 2.4e-3)
	if _, err := est.Estimate(bands, sweep); err == nil {
		t.Error("BandsAllCoherent accepted quirked radios")
	}
}

func TestEstimateBandsMismatch(t *testing.T) {
	est := NewEstimator(Config{})
	if _, err := est.Estimate(wifi.USBands(), nil); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestEstimateNoUsableBands(t *testing.T) {
	est := NewEstimator(Config{Mode: Bands5GHzOnly})
	bands := wifi.Bands24GHz()
	sweep := make([][]csi.Pair, len(bands))
	if _, err := est.Estimate(bands, sweep); !errors.Is(err, ErrNoBands) {
		t.Errorf("err = %v, want ErrNoBands", err)
	}
}

func TestEstimateProfilePeaksReported(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	extra := []rf.Path{{Delay: 13e-9, Gain: 0.7}, {Delay: 19e-9, Gain: 0.5}}
	link := testLink(rng, 7, extra, false)
	bands := wifi.Bands5GHz()
	est := calibrated(t, Config{Mode: Bands5GHzOnly, MaxIter: 1200}, link, rng, bands)

	sweep := link.Sweep(rng, bands, 3, 2.4e-3)
	got, err := est.Estimate(bands, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if got.Profile == nil {
		t.Fatal("no profile")
	}
	if got.Peaks < 1 || got.Peaks > 12 {
		t.Errorf("peaks = %d", got.Peaks)
	}
	if got.Profile.Power != 2 {
		t.Errorf("profile power = %d, want 2", got.Profile.Power)
	}
	// Profile taus must be in true τ units: first peak near 7 ns (sum
	// domain divided by power). Find max tau in the grid: should span
	// MaxTau.
	lastTau := got.Profile.Taus[len(got.Profile.Taus)-1]
	if math.Abs(lastTau-est.Config().MaxTau) > est.Config().GridStep*2 {
		t.Errorf("profile grid ends at %v, want %v", lastTau, est.Config().MaxTau)
	}
}

func TestCalibrationRemovesHardwareOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	link := testLink(rng, 10, nil, false)
	bands := wifi.Bands5GHz()

	// Uncalibrated: the chain delays bias the estimate.
	est := NewEstimator(Config{Mode: Bands5GHzOnly, MaxIter: 800})
	sweep := link.Sweep(rng, bands, 3, 2.4e-3)
	raw, err := est.Estimate(bands, sweep)
	if err != nil {
		t.Fatal(err)
	}
	hwSum := (link.TX.Osc.HWDelayNs + link.RX.Osc.HWDelayNs) * 1e-9
	if hwSum > 0.5e-9 {
		if math.Abs(raw.ToF-10e-9) < hwSum/2 {
			t.Errorf("expected hardware bias ≈ %v, got error %v", hwSum, math.Abs(raw.ToF-10e-9))
		}
	}

	// Calibrated at a known distance, the bias disappears.
	cal := calibrated(t, Config{Mode: Bands5GHzOnly, MaxIter: 800}, link, rng, bands)
	sweep2 := link.Sweep(rng, bands, 3, 2.4e-3)
	got, err := cal.Estimate(bands, sweep2)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(got.ToF - 10e-9); e > 0.5e-9 {
		t.Errorf("calibrated error = %v", e)
	}
}

func TestEstimateNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	link := testLink(rng, 0.5, nil, false) // 15 cm — devices nearly touching
	bands := wifi.Bands5GHz()
	est := calibrated(t, Config{Mode: Bands5GHzOnly, MaxIter: 800}, link, rng, bands)
	for trial := 0; trial < 3; trial++ {
		sweep := link.Sweep(rng, bands, 3, 2.4e-3)
		got, err := est.Estimate(bands, sweep)
		if err != nil {
			t.Fatal(err)
		}
		if got.ToF < 0 {
			t.Errorf("negative ToF %v", got.ToF)
		}
	}
}
