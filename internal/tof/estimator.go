package tof

import (
	"errors"
	"fmt"
	"math"

	"chronos/internal/csi"
	"chronos/internal/dsp"
	"chronos/internal/ndft"
	"chronos/internal/obs"
	"chronos/internal/wifi"
)

// BandMode selects which frequency bands feed the profile inversion.
type BandMode int

const (
	// BandsFused (default) inverts the 5 GHz bands in the h̃² domain and,
	// when 2.4 GHz measurements are present, fuses the coarse 2.4 GHz
	// estimate with the fine 5 GHz one by precision weighting. This is
	// the faithful mode for quirked hardware: the two groups live in
	// different channel-power domains (h̃² vs h̃⁸) and cannot share one
	// NDFT (their delay supports differ).
	BandsFused BandMode = iota
	// Bands5GHzOnly uses only the 5 GHz bands (h̃², 645 MHz span).
	Bands5GHzOnly
	// Bands24Only uses only the 2.4 GHz bands (h̃⁸ when quirked).
	Bands24Only
	// BandsAllCoherent inverts every band in one NDFT in the h̃² domain,
	// spanning the full 2.4–5.8 GHz ≈ 3.4 GHz. Valid only when the
	// radio's 2.4 GHz quirk is disabled (clean-firmware what-if); it is
	// the upper bound on stitching resolution.
	BandsAllCoherent
)

// Config tunes the estimator.
type Config struct {
	Mode     BandMode
	Interp   InterpMode
	Quirk24  bool    // whether the radios exhibit the 2.4 GHz phase quirk
	MaxTau   float64 // largest resolvable time of flight (default 60 ns ≈ 18 m)
	GridStep float64 // τ-domain grid step (default 0.1 ns)
	// Alpha is the sparsity parameter forwarded to Algorithm 1 (0 = auto).
	Alpha float64
	// AlphaFactor multiplies the auto-scaled α when Alpha is 0 (default
	// 1). The sparsity ablation sweeps this.
	AlphaFactor float64
	// PeakThreshold is the dominant-peak cutoff as a fraction of the
	// profile maximum (default 0.15).
	PeakThreshold float64
	// SearchWindow bounds how far before the strongest profile peak the
	// first-peak search may reach, in seconds of true τ (default 12 ns).
	// With indoor delay spreads bounded by ~25 ns, the squared-channel
	// content spans at most 12.5 ns (τ) before its strongest component,
	// while the grating-lobe ghosts of the mostly-20 MHz-spaced band
	// lattice appear 25 ns (τ) below their parents — i.e. always more
	// than 12.5 ns below the strongest peak. A 12 ns window therefore
	// admits every genuine direct path and rejects every lattice ghost.
	SearchWindow float64
	MaxIter      int // ISTA iteration cap (default 1500)
	// AliasPeriod is the τ-domain grating-lobe period of the band
	// lattice (default 25 ns: the 20 MHz channel raster gives 50 ns in
	// the h̃² delay domain, and the 2.4 GHz 5 MHz raster gives 200 ns in
	// the h̃⁸ domain — both 25 ns in τ). The estimator disambiguates the
	// first peak across ±1 alias period by refitting each hypothesis on
	// a window shorter than the period and keeping the best data fit;
	// only the off-lattice channels can tell the hypotheses apart, which
	// is exactly the §4 observation that unequally spaced bands raise
	// the unambiguous range. Set negative to disable the test.
	AliasPeriod float64
	// Ranking selects how the direct-path peak is extracted from the
	// profile: RankFamilies (default) ranks alias families by folded
	// mass and lets the window refit place the winner; RankVertex is the
	// historical chain that trusts the raw solver vertex (kept for the
	// alias ablation). With AliasPeriod disabled both reduce to the
	// plain windowed first-peak rule.
	Ranking PeakRanking
	// Stop selects the solver's termination rule (default ndft.StopGap:
	// stop once a duality-gap bound certifies the objective within the
	// per-sweep noise energy, estimated from the spread of repeated CSI
	// pairs per band). ndft.StopIterate restores the fixed
	// 1e−6·‖h‖ iterate tolerance — the convergence ablation path, which
	// routinely runs to the iteration cap at campaign SNR.
	Stop ndft.StopRule
	// GapScale scales the noise-derived duality-gap tolerance (0 = the
	// solver default, 0.7). The SNR-sweep ablation varies it.
	GapScale float64
	// FixedThresholds pins the alias-evidence thresholds (refit margin,
	// fit gate, anchor margin) to their historical constants instead of
	// deriving them from the per-sweep noise estimate — the threshold
	// ablation path.
	FixedThresholds bool
	// ForwardOnly disables the §7 CFO cancellation (ablation).
	ForwardOnly bool
	// CalibrationOffset is subtracted from every τ estimate; it absorbs
	// the constant hardware chain delays (§7 observation 2). Obtain it
	// once via Calibrate.
	CalibrationOffset float64
	// Coalescer, when non-nil, batches this estimator's main profile
	// inversions with concurrent inversions of the same plan geometry
	// from other sessions (see Coalescer). Results are byte-identical
	// with or without it; only throughput, latency, and the
	// Estimate.BatchSize telemetry change. Alias-window refits stay
	// un-coalesced: they are short, latency-critical, and their window
	// geometries rarely coincide across sessions.
	Coalescer *Coalescer
	// Preempt, when non-nil, is forwarded to the main profile inversions
	// (ndft.InvertOptions.Preempt): the solver polls it at duality-gap
	// check boundaries and, when it fires, parks the solve — Estimate
	// returns ErrSolveParked and the parked iterate is retained on the
	// Sweep as a one-shot resume seed for the next Estimate of the same
	// geometry. Alias refits are never preemptible. Schedulers that own
	// an estimator exclusively install the hook only around the solves
	// they want preemptible (see SetPreempt). Nil disables preemption.
	Preempt func() bool
}

func (c Config) withDefaults() Config {
	if c.MaxTau == 0 {
		c.MaxTau = 60e-9
	}
	if c.GridStep == 0 {
		c.GridStep = 0.1e-9
	}
	if c.PeakThreshold == 0 {
		c.PeakThreshold = 0.15
	}
	if c.SearchWindow == 0 {
		c.SearchWindow = 12e-9
	}
	if c.MaxIter == 0 {
		c.MaxIter = 1500
	}
	if c.AliasPeriod == 0 {
		c.AliasPeriod = 25e-9
	}
	return c
}

// Estimator turns band sweeps of CSI pairs into time-of-flight estimates.
// The expensive solver state (NDFT dictionaries, step constants, scratch
// buffers) lives in a process-wide plan registry keyed by the band-group
// signature, so estimators are cheap to construct and every worker,
// sweep accumulator, and track scheduler that inverts the same geometry
// shares one precomputed plan.
//
// Concurrency contract: Estimate and the plan registry are safe for
// concurrent use — an Estimator holds no per-call mutable state, and
// plan solves synchronize internally. Two exceptions remain
// single-goroutine: Calibrate temporarily rewrites
// Config.CalibrationOffset, and a Sweep accumulator (which carries
// folded measurements and warm-start state) must stay confined to one
// goroutine at a time.
type Estimator struct {
	cfg   Config
	plans *planRegistry
}

// NewEstimator builds an estimator with the given configuration. All
// estimators share the process-wide plan registry.
func NewEstimator(cfg Config) *Estimator {
	return &Estimator{cfg: cfg.withDefaults(), plans: sharedPlans}
}

// Config returns the estimator's effective (defaulted) configuration.
func (e *Estimator) Config() Config { return e.cfg }

// SetCalibrationOffset installs a measured hardware-chain offset (the
// value Calibrate returns) without rebuilding the estimator.
func (e *Estimator) SetCalibrationOffset(off float64) { e.cfg.CalibrationOffset = off }

// SetPreempt installs (nil clears) the preemption hook without
// rebuilding the estimator — see Config.Preempt. Like Calibrate it
// mutates the estimator's config, so it must not race with Estimate
// calls; schedulers that own an estimator exclusively install the hook
// before a preemptible solve and clear it after.
func (e *Estimator) SetPreempt(f func() bool) { e.cfg.Preempt = f }

// Profile is a multipath profile expressed in true time-of-flight units
// (the channel-power scaling has been divided out).
type Profile struct {
	Taus      []float64 // delays in seconds (τ domain)
	Magnitude []float64
	Power     int // channel power the profile was computed in (2 or 8)
}

// Estimate is the result of one sweep.
type Estimate struct {
	ToF      float64 // direct-path time of flight in seconds
	Distance float64 // ToF × c, meters
	Profile  *Profile
	// Peaks is the number of dominant peaks in the profile (§12.1).
	Peaks int
	// Fused reports whether a 2.4 GHz estimate was blended in.
	Fused bool
	// Work counts solver grid cells processed for this estimate across
	// every group inversion and alias refit — the deterministic cost
	// measure the perf campaigns snapshot (wall clock varies by host,
	// Work does not).
	Work int64
	// AliasWork is the portion of Work spent in alias-window refits
	// (family placement or vertex disambiguation).
	AliasWork int64
	// Iterations totals the main profile inversions' solver iterations
	// across band groups (alias refits are counted in AliasWork, not
	// here). Deterministic, like Work.
	Iterations int
	// Converged reports whether every group's main inversion met its
	// stopping rule. False means at least one solve ran to its iteration
	// cap and returned its best iterate — the condition campaign
	// summaries surface as cap-rate, previously indistinguishable from
	// genuine convergence.
	Converged bool
	// GapAtStop is the largest certified LASSO duality gap at stop
	// across the group inversions (0 when no gap check ran).
	GapAtStop float64
	// NoiseFloor is the largest per-group relative noise estimate
	// ‖w‖₂/‖h‖₂ measured from the spread of repeated CSI pairs (0 when
	// no band carried repeated pairs).
	NoiseFloor float64
	// BatchSize is the widest coalesced solve that carried one of this
	// estimate's main inversions (1 when every group solved alone or no
	// coalescer is configured). Unlike the other counters it depends on
	// wall-clock arrival timing, so it is telemetry, not part of the
	// deterministic result — the solves themselves are byte-identical
	// at any batch width.
	BatchSize int
}

// ErrNoBands reports that no usable band measurements were supplied.
var ErrNoBands = errors.New("tof: no usable band measurements")

// ErrSolveParked reports that a main profile inversion was preempted
// (Config.Preempt fired): the estimate was not produced, but the parked
// iterate is retained on the Sweep as a one-shot warm seed, so retrying
// the same Estimate resumes the optimization from its restricted
// support instead of starting over.
var ErrSolveParked = errors.New("tof: solve parked by preemption")

type bandMeas struct {
	freq  float64
	value complex128
	power int
	// noiseVar is the variance of the folded value's mean across the
	// band's CSI pairs (total over real+imaginary components); noiseOK
	// marks bands with at least two pairs, the minimum for a spread.
	noiseVar float64
	noiseOK  bool
}

// Sweep accumulates one band sweep incrementally: CSI pairs are folded
// in band by band as the hopping protocol delivers them, and an estimate
// can be requested at any point — a degraded early fix from a partial
// band set, or the full-resolution fix the moment the last band lands.
// The batch Estimator.Estimate is a thin wrapper over this type.
//
// A Sweep carries mutable per-stream state (folded measurements and,
// when warm starts are enabled, the last converged profile per power
// group) and must stay confined to one goroutine at a time. Each
// distinct partial band set inverted by an early Estimate call resolves
// (and registers) its own plans, so callers should take early fixes at a
// few fixed checkpoints rather than after every band.
type Sweep struct {
	est  *Estimator
	meas []bandMeas
	// warm enables warm-started inversions: each inversion geometry's
	// converged profile seeds the next Estimate of that geometry,
	// surviving Reset so consecutive band cycles of a tracking stream
	// start from the previous fix. State is keyed by the full plan key —
	// not just the power group — so the partial band sets of early fixes
	// and the full sweep each keep their own seed and cold baseline.
	warm       bool
	warmGroups map[planKey]*warmGroup
	// warmWindows carries the alias-refit warm state, keyed by window
	// geometry with per-hypothesis seeds labeled by the candidate delay
	// each refit window tracks: the window origin follows its candidate,
	// so in window coordinates each hypothesis's profile is nearly
	// stationary between sweeps and seeds its own next solve. Labeling
	// by candidate (matched within a fraction of the alias period, see
	// windowWarmState) is family-stable: two dominant families whose
	// candidates share a period cell — the deep-NLOS refit case — keep
	// distinct seeds, where the period-index labels this replaced made
	// them collide, clobber each other's profiles, and trip the efficacy
	// policy into reverting exactly those hypotheses to cold. Window
	// profiles are never velocity-translated — the window origin already
	// follows the moving candidate.
	warmWindows map[planKey][]*windowSeed
	// estSeq counts Estimate calls on this sweep stream; window seeds
	// stamp it to drive least-recently-matched eviction.
	estSeq int64
	// parked holds the iterates of preempted main inversions, keyed like
	// the warm groups by full plan geometry. Each entry is consumed by
	// the next Estimate of that geometry as a one-shot warm seed — the
	// restricted-support resume — independent of the warm-start policy
	// (a parked seed works even with warm starts disabled or reverted).
	parked map[planKey]dsp.Vec
	// foldScratch holds per-pair folded values while AddBand measures a
	// band's mean and spread.
	foldScratch dsp.Vec
}

// windowSeed is one alias hypothesis's warm state, labeled by the
// (slowly drifting) candidate delay its refit window tracks.
type windowSeed struct {
	cand float64 // τ-domain candidate the seed's window last anchored on
	used int64   // Sweep.estSeq at the last match
	g    warmGroup
}

// windowSeedTolFrac is the candidate-matching radius for window warm
// seeds, as a fraction of the alias period: a seed is reused when the
// new candidate lies within this distance of the delay the seed last
// tracked. Inter-sweep drift is a small fraction of a nanosecond at
// walking speeds, far inside the radius, while distinct families in one
// period cell sit several nanoseconds apart and stay distinct.
const windowSeedTolFrac = 0.1

// windowSeedMax bounds the retained hypothesis seeds per window
// geometry; beyond it the least-recently-matched seed is recycled.
const windowSeedMax = 16

// gapNoiseCeil is the relative-noise ceiling for the duality-gap stop:
// groups whose per-sweep noise estimate exceeds this fraction of ‖h‖
// solve with the precise iterate rule instead. Calibrated between the
// campaign operating point (noiseRel ≈ 0.05 at 26 dB, where gap
// stopping is accurate and reclaims most of the cold-solve latency) and
// the deep-fade regime (noiseRel ≳ 0.2 at 12 dB, where two equally
// gap-certified iterates can fold to different alias anchors).
const gapNoiseCeil = 0.08

// warmStrikes is how many consecutive unprofitable warm solves a group
// tolerates before permanently reverting to cold starts. A single miss
// is usually the target outrunning the predicted working set for one
// sweep (a KKT fallback already produced a correct dense answer); a run
// of misses means warm starting structurally does not pay here.
const warmStrikes = 3

// warmGroup is one power group's warm-start state and its measured
// efficacy. Warm starting helps when the optimum barely moves between
// solves (coarse grids, static targets, velocity-translated seeds) and
// can cost extra iterations when per-sweep noise shifts the fine-grid
// support; rather than guess, the sweep compares each warm solve's
// actual solver work against the group's cold baseline and reverts the
// group to cold starts after warmStrikes consecutive misses.
type warmGroup struct {
	profile  dsp.Vec
	coldWork int64 // solver work of the group's last cold solve
	strikes  int   // consecutive unprofitable warm solves
	off      bool  // warm starting measured unprofitable for this group
}

// observe folds one solve's outcome into the group's policy. Profiles
// are retained as seeds whether or not the solve met its convergence
// tolerance: an iteration-capped iterate still sits near the optimum
// (noisy measurements routinely cap the main solve), and seeding from it
// lets optimization effectively continue across sweeps. Correctness is
// guarded by the solver's full-grid KKT audit, and cost by this policy —
// warmStrikes consecutive warm solves that fail to beat the group's cold
// baseline permanently revert the group to cold starts.
func (g *warmGroup) observe(warmed bool, res *ndft.Result) {
	if g.off {
		return // reverted to cold starts; nothing to maintain
	}
	if !warmed {
		g.coldWork = res.Work
		g.store(res.Profile)
		return
	}
	if res.Work < g.coldWork {
		g.strikes = 0
		g.store(res.Profile)
		return
	}
	// Unprofitable — but the solve still produced the best current
	// iterate (an over-budget restricted pass, or a KKT fallback's dense
	// answer), so keep it as the seed while the strike budget lasts. The
	// cold baseline is deliberately NOT re-based on this solve's work:
	// measuring strikes against an inflated pseudo-cold baseline would
	// let a group that persistently costs a little more than cold look
	// alternately profitable and never revert.
	g.strikes++
	if g.strikes >= warmStrikes {
		g.off = true
		g.profile = nil
		return
	}
	g.store(res.Profile)
}

// store retains a converged profile, reusing the backing array.
func (g *warmGroup) store(profile dsp.Vec) {
	if cap(g.profile) < len(profile) {
		g.profile = make(dsp.Vec, len(profile))
	}
	g.profile = g.profile[:len(profile)]
	copy(g.profile, profile)
}

// NewSweep starts an empty sweep accumulator on this estimator.
func (e *Estimator) NewSweep() *Sweep { return &Sweep{est: e} }

// SetWarmStart toggles warm-started inversions on this sweep stream:
// when enabled, each Estimate seeds Algorithm 1 from the previous
// converged profile of the same band group, cutting steady-state
// iterations dramatically on slowly-moving targets. The solver's fixed
// points do not depend on the start, so warm and cold fixes agree within
// the convergence tolerance; results remain deterministic for a given
// measurement stream. Disabling also drops any retained profiles.
func (s *Sweep) SetWarmStart(on bool) {
	s.warm = on
	if !on {
		s.warmGroups = nil
		s.warmWindows = nil
	}
}

// TranslateWarm circularly shifts every retained main-grid warm profile
// by dTau seconds of predicted delay drift — the velocity feed-forward
// for tracking streams. A target moving radially at v for Δt seconds
// shifts every path delay by v·Δt/c; shifting the seed by the same
// amount keeps the warm working set centered on the predicted optimum
// instead of trailing it by one sweep, which is what keeps warm starts
// profitable at walking speeds. The shift is the same cell count for
// every power group: the h̃ᵖ grids scale both the drift (p·dTau) and the
// step (p·GridStep) by p. Alias-window warm profiles are left alone
// (their window origin tracks the candidate). No-op when warm starting
// is off or the drift rounds to zero cells.
func (s *Sweep) TranslateWarm(dTau float64) {
	if !s.warm || len(s.warmGroups) == 0 {
		return
	}
	cells := int(math.Round(dTau / s.est.cfg.GridStep))
	if cells == 0 {
		return
	}
	for _, g := range s.warmGroups {
		if g.off || len(g.profile) == 0 {
			continue
		}
		ndft.ShiftProfile(g.profile, cells)
	}
}

// warmState returns (creating on demand) the warm policy state for one
// inversion geometry, or nil when warm starting is disabled on this
// sweep.
func (s *Sweep) warmState(key planKey) *warmGroup {
	if !s.warm {
		return nil
	}
	if s.warmGroups == nil {
		s.warmGroups = make(map[planKey]*warmGroup, 2)
	}
	g := s.warmGroups[key]
	if g == nil {
		g = &warmGroup{}
		s.warmGroups[key] = g
	}
	return g
}

// windowWarmState returns (creating on demand) the warm policy state for
// the alias hypothesis tracking candidate delay cand on one window
// geometry, or nil when warm starting is disabled on this sweep. Seeds
// are matched to the nearest retained candidate within
// windowSeedTolFrac of the alias period — the family-stable labeling —
// and the matched seed re-anchors on the new candidate so it follows
// the hypothesis as it drifts. Matching scans the geometry's seed list
// in insertion order, so resolution is deterministic for a given
// scoring sequence.
func (s *Sweep) windowWarmState(key planKey, cand float64) *warmGroup {
	if !s.warm {
		return nil
	}
	if s.warmWindows == nil {
		s.warmWindows = make(map[planKey][]*windowSeed, 2)
	}
	list := s.warmWindows[key]
	var best *windowSeed
	bestD := windowSeedTolFrac * s.est.cfg.AliasPeriod
	for _, ws := range list {
		if d := math.Abs(ws.cand - cand); d < bestD {
			best, bestD = ws, d
		}
	}
	if best != nil {
		best.cand = cand
		best.used = s.estSeq
		return &best.g
	}
	if len(list) >= windowSeedMax {
		// Recycle the least-recently-matched seed rather than growing
		// without bound on long multi-family streams.
		victim := list[0]
		for _, ws := range list[1:] {
			if ws.used < victim.used {
				victim = ws
			}
		}
		*victim = windowSeed{cand: cand, used: s.estSeq}
		return &victim.g
	}
	ws := &windowSeed{cand: cand, used: s.estSeq}
	s.warmWindows[key] = append(list, ws)
	return &ws.g
}

// AddBand folds the CSI pairs captured on one band into the sweep. Bands
// with no pairs, and bands excluded by the estimator's Mode, are ignored.
func (s *Sweep) AddBand(b wifi.Band, pairs []csi.Pair) error {
	e := s.est
	if len(pairs) == 0 {
		return nil
	}
	quirked := IsQuirked(b, e.cfg.Quirk24)
	if e.cfg.Mode == BandsAllCoherent && quirked {
		return errors.New("tof: BandsAllCoherent requires quirk-free radios")
	}
	switch e.cfg.Mode {
	case Bands5GHzOnly:
		if b.GHz24() {
			return nil
		}
	case Bands24Only:
		if !b.GHz24() {
			return nil
		}
	}
	// Fold the pairs inline (BandValue's internals) so the per-pair
	// spread — the per-sweep noise estimate's raw material — is measured
	// on the same values that produce the band mean.
	power, total := bandPowers(quirked, e.cfg.ForwardOnly)
	vals, err := foldValues(s.foldScratch, pairs, power, e.cfg.Interp, e.cfg.ForwardOnly)
	if err != nil {
		return err
	}
	s.foldScratch = vals
	v, noiseVar, noiseOK := pairSpread(vals)
	s.meas = append(s.meas, bandMeas{
		freq: b.Center, value: v, power: total,
		noiseVar: noiseVar, noiseOK: noiseOK,
	})
	return nil
}

// Bands returns the number of usable band measurements folded in so far.
func (s *Sweep) Bands() int { return len(s.meas) }

// Reset discards the accumulated measurements so the Sweep can accumulate
// the next band cycle without reallocating. Warm-start profiles survive a
// Reset — carrying the previous cycle's fix forward is their purpose.
func (s *Sweep) Reset() { s.meas = s.meas[:0] }

// Estimate inverts the bands folded in so far. It may be called more than
// once per sweep: a call before the sweep completes yields an early fix
// whose resolution is limited by the partial frequency span.
func (s *Sweep) Estimate() (*Estimate, error) { return s.est.estimate(s) }

// Estimate processes one full sweep: sweep[i] holds the CSI pairs
// captured on bands[i]. It is the batch entry point over the incremental
// Sweep core.
func (e *Estimator) Estimate(bands []wifi.Band, sweep [][]csi.Pair) (*Estimate, error) {
	if len(bands) != len(sweep) {
		return nil, fmt.Errorf("tof: %d bands but %d sweep entries", len(bands), len(sweep))
	}
	s := e.NewSweep()
	for i, b := range bands {
		if err := s.AddBand(b, sweep[i]); err != nil {
			return nil, err
		}
	}
	return s.Estimate()
}

// estimate runs the grouped inversion over a sweep's accumulated band
// measurements.
func (e *Estimator) estimate(s *Sweep) (*Estimate, error) {
	meas := s.meas
	if len(meas) == 0 {
		return nil, ErrNoBands
	}
	s.estSeq++
	obsEstimates.Inc()

	// Group by channel power: each group gets its own inversion because
	// the delay supports differ (h̃ᵖ has delays that are sums of p path
	// delays).
	groups := map[int][]bandMeas{}
	for _, m := range meas {
		groups[m.power] = append(groups[m.power], m)
	}

	type groupEst struct {
		tau     float64
		profile *Profile
		peaks   int
		weight  float64
	}
	var ests []groupEst
	var totalWork, aliasWork int64
	var totalIters int
	allConverged := true
	var gapMax, noiseRelMax float64
	batchMax := 1
	for power, g := range groups {
		if len(g) < 3 {
			continue // too few bands to invert meaningfully
		}
		freqs := make([]float64, len(g))
		h := make(dsp.Vec, len(g))
		for i, m := range g {
			freqs[i] = m.freq
			h[i] = m.value
		}
		// Resolve the group's plan before the noise estimate: the
		// single-pair fallback below needs the dictionary.
		key, plan, err := e.planForGroup(freqs, power)
		if err != nil {
			return nil, err
		}
		// The per-sweep noise estimate drives both the solver's gap
		// tolerance and the alias-evidence gates; noiseRel normalizes it
		// for the gates (residual comparisons scale with ‖h‖).
		noiseEst := groupNoiseFloor(g)
		if noiseEst == 0 {
			// Single-pair dwells: no repeated-pair spread to measure, so
			// fall back to the cross-band robust estimate — the MAD of
			// the adjoint-correlation magnitudes over the delay grid
			// (ndft.Plan.NoiseFloor), which reads the same ‖w‖₂ off the
			// measurement itself. One dense adjoint pass, paid only when
			// the spread estimator has nothing to say.
			noiseEst = plan.NoiseFloor(h)
			obsNoiseFallbacks.Inc()
		}
		noiseRel := 0.0
		if hNorm := dsp.Norm2(h); hNorm > 0 {
			noiseRel = noiseEst / hNorm
		}
		if noiseRel > noiseRelMax {
			noiseRelMax = noiseRel
		}
		obsNoiseRel.Observe(noiseRel)
		// Above the gap ceiling the noise-equivalence class of solutions
		// is too wide to anchor alias decisions (a fade can flip the
		// folded-mass anchor by a whole period between two equally
		// certified iterates), so deep-fade sweeps keep the precise
		// iterate rule and the gap rule engages only where profiles are
		// noise-determined. Zero disables the gap stop in ndft.
		gapFloor := noiseEst
		if noiseRel > gapNoiseCeil {
			gapFloor = 0
		}
		solveStart := obs.Tick()
		prof, sol, err := e.invertGroup(key, plan, h, power, s, gapFloor)
		obsStageSolveNs.Since(solveStart)
		totalWork += sol.Work
		if err != nil {
			return nil, err
		}
		totalIters += sol.Iterations
		allConverged = allConverged && sol.Converged
		if sol.GapAtStop > gapMax {
			gapMax = sol.GapAtStop
		}
		if sol.BatchSize > batchMax {
			batchMax = sol.BatchSize
		}
		aliasStart := obs.Tick()
		var tau float64
		ok := false
		if e.cfg.Ranking == RankFamilies && e.cfg.AliasPeriod > 0 {
			var aw int64
			tau, ok, aw = e.familyRank(freqs, h, power, prof, s, noiseRel)
			aliasWork += aw
			totalWork += aw
		}
		if !ok {
			// RankVertex, alias test disabled, or family ranking could
			// not fold/place on this geometry: fall back to the vertex
			// first peak. In family mode its placement still runs the
			// full scorer machinery (shared α, discrimination weights,
			// fit gate, cold-confirmed flips); the explicit RankVertex
			// baseline keeps the historical disambiguation it documents.
			tau, ok = e.firstPeakWindowed(prof)
			if ok && e.cfg.AliasPeriod > 0 {
				if e.cfg.Ranking == RankFamilies {
					if scorer, err := e.newAliasScorer(freqs, h, power, s, noiseRel); err == nil {
						tau = e.placeCandidate(scorer, tau)
						aliasWork += scorer.work
						totalWork += scorer.work
					}
				} else {
					var aw int64
					tau, aw = e.disambiguateAlias(freqs, h, power, tau, s, gapFloor)
					aliasWork += aw
					totalWork += aw
				}
			}
		}
		obsStageAliasNs.Since(aliasStart)
		if !ok {
			continue
		}
		span := spanOf(freqs)
		ests = append(ests, groupEst{
			tau:     tau,
			profile: prof,
			peaks:   dsp.DominantPeakCount(prof.Taus, prof.Magnitude, e.cfg.PeakThreshold),
			// Precision ∝ (effective span)², where the channel power
			// multiplies the phase sensitivity but also the noise; span
			// dominates in practice.
			weight: span * span,
		})
	}
	if len(ests) == 0 {
		return nil, ErrNoBands
	}

	// Pick the highest-weight group as primary; fuse others that agree
	// within 3 ns (outlier guard).
	primary := ests[0]
	for _, g := range ests[1:] {
		if g.weight > primary.weight {
			primary = g
		}
	}
	tauSum, wSum := primary.tau*primary.weight, primary.weight
	fused := false
	for _, g := range ests {
		if g.profile == primary.profile {
			continue
		}
		if math.Abs(g.tau-primary.tau) < 3e-9 {
			tauSum += g.tau * g.weight
			wSum += g.weight
			fused = true
		}
	}
	tau := tauSum/wSum - e.cfg.CalibrationOffset
	if tau < 0 {
		tau = 0
	}
	return &Estimate{
		ToF:        tau,
		Distance:   tau * wifi.SpeedOfLight,
		Profile:    primary.profile,
		Peaks:      primary.peaks,
		Fused:      fused,
		Work:       totalWork,
		AliasWork:  aliasWork,
		Iterations: totalIters,
		Converged:  allConverged,
		GapAtStop:  gapMax,
		NoiseFloor: noiseRelMax,
		BatchSize:  batchMax,
	}, nil
}

// firstPeakWindowed applies the §6 first-peak rule with an alias guard:
// the earliest dominant peak is searched only within SearchWindow before
// the strongest peak. The band lattice's grating-lobe ghosts land a full
// alias period earlier and are excluded; the genuine direct path, bounded
// by the indoor delay spread, is not.
func (e *Estimator) firstPeakWindowed(prof *Profile) (float64, bool) {
	strongest, ok := dsp.StrongestPeak(prof.Taus, prof.Magnitude)
	if !ok {
		return 0, false
	}
	peaks := dsp.FindPeaks(prof.Taus, prof.Magnitude, e.cfg.PeakThreshold)
	lo := strongest.X - e.cfg.SearchWindow
	for _, p := range peaks {
		if p.X >= lo && p.X <= strongest.X+1e-15 {
			return p.X, true
		}
	}
	return strongest.X, true
}

// solveMeta is the per-group solver telemetry estimate aggregates into
// the Estimate's convergence counters.
type solveMeta struct {
	Work       int64
	Iterations int
	Converged  bool
	GapAtStop  float64
	BatchSize  int
}

// solveGroup runs one main profile inversion, routing it through the
// configured coalescer when one is set. The returned batch size is the
// width of the coalesced solve that carried the request (1 when solved
// alone or no coalescer is configured).
func (e *Estimator) solveGroup(plan *ndft.Plan, req ndft.SolveRequest) (*ndft.Result, int, error) {
	if e.cfg.Coalescer != nil {
		return e.cfg.Coalescer.Submit(plan, req)
	}
	res, err := plan.Solve(req)
	return res, 1, err
}

// planForGroup resolves (building and registering on demand) the shared
// plan for one power group's inversion geometry.
func (e *Estimator) planForGroup(freqs []float64, power int) (planKey, *ndft.Plan, error) {
	key := newPlanKey(freqs, power, e.cfg.MaxTau, e.cfg.GridStep)
	plan, err := e.plans.planFor(key, func() (*ndft.Plan, error) {
		// The h̃ᵖ profile lives on delays that are sums of p path delays,
		// so the grid must span p·MaxTau. Keep the column count constant
		// by scaling the step too: resolution in τ is preserved after
		// division by p.
		taus := ndft.TauGrid(float64(power)*e.cfg.MaxTau, float64(power)*e.cfg.GridStep)
		return ndft.NewPlan(freqs, taus)
	})
	return key, plan, err
}

// invertGroup runs Algorithm 1 for one power group and rescales the
// resulting profile from the h̃ᵖ delay domain back to true τ. The sweep
// supplies (and retains) the warm-start profile when enabled; a parked
// seed left by a preempted solve of the same geometry takes precedence
// and is consumed. noiseFloor is the group's per-sweep ‖w‖₂ estimate,
// which scales the solver's duality-gap stopping tolerance (0 disables
// the gap rule). A solve parked by the Preempt hook stores its iterate
// as the geometry's resume seed and surfaces as ErrSolveParked.
func (e *Estimator) invertGroup(key planKey, plan *ndft.Plan, h dsp.Vec, power int, s *Sweep, noiseFloor float64) (*Profile, solveMeta, error) {
	g := s.warmState(key)
	var warm dsp.Vec
	resumed := false
	if seed, ok := s.parked[key]; ok && len(seed) == len(plan.Taus) {
		warm = seed
		resumed = true
		delete(s.parked, key)
	} else if g != nil && !g.off && len(g.profile) == len(plan.Taus) {
		warm = g.profile
	}
	res, batch, err := e.solveGroup(plan, ndft.SolveRequest{
		H: h, Warm: warm,
		InvertOptions: ndft.InvertOptions{
			Alpha:      e.cfg.Alpha,
			AlphaScale: e.cfg.AlphaFactor,
			MaxIter:    e.cfg.MaxIter,
			Stop:       e.cfg.Stop,
			GapScale:   e.cfg.GapScale,
			NoiseFloor: noiseFloor,
			Preempt:    e.cfg.Preempt,
		},
	})
	if err != nil {
		return nil, solveMeta{}, err
	}
	if res.Parked {
		// Preempted: retain the iterate as the geometry's one-shot
		// resume seed (copied — res.Profile's backing array belongs to
		// the solve) and report the work paid so far. The warm policy is
		// not consulted: a parked iterate is neither a hit nor a miss.
		if s.parked == nil {
			s.parked = make(map[planKey]dsp.Vec, 1)
		}
		s.parked[key] = append(s.parked[key][:0], res.Profile...)
		obsSolveParks.Inc()
		return nil, solveMeta{Work: res.Work, Iterations: res.Iterations}, ErrSolveParked
	}
	if g != nil {
		if resumed {
			// A resumed solve's work is subsidized by the parked phase,
			// so it must not skew the warm-efficacy policy; just retain
			// the converged profile as the next seed.
			if !g.off {
				g.store(res.Profile)
			}
		} else {
			g.observe(warm != nil, res)
		}
	}
	taus := make([]float64, len(res.Taus))
	for i, t := range res.Taus {
		taus[i] = t / float64(power)
	}
	meta := solveMeta{Work: res.Work, Iterations: res.Iterations, Converged: res.Converged, GapAtStop: res.GapAtStop, BatchSize: batch}
	return &Profile{Taus: taus, Magnitude: res.Magnitude, Power: power}, meta, nil
}

// BandsFor returns the band plan a sweep should cover for the config's
// mode: the subset the estimator will actually use. Callers that drive
// sweeps (the exp campaigns, the track sessions) share this mapping so a
// new mode cannot diverge between them.
func BandsFor(cfg Config) []wifi.Band {
	switch cfg.Mode {
	case Bands5GHzOnly:
		return wifi.Bands5GHz()
	case Bands24Only:
		return wifi.Bands24GHz()
	default:
		return wifi.USBands()
	}
}

func spanOf(freqs []float64) float64 {
	lo, hi := freqs[0], freqs[0]
	for _, f := range freqs[1:] {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi == lo {
		// A single-band group still carries some information; use the
		// channel bandwidth as its effective span.
		return wifi.BandwidthHT20
	}
	return hi - lo
}

// Calibrate measures the constant hardware offset of a device pair by
// estimating ToF at a known true distance and returning the difference.
// The paper performs this once per pair (§7 observation 2); the returned
// value is meant to be stored in Config.CalibrationOffset.
func Calibrate(est *Estimator, bands []wifi.Band, sweep [][]csi.Pair, trueDistance float64) (float64, error) {
	saved := est.cfg.CalibrationOffset
	est.cfg.CalibrationOffset = 0
	defer func() { est.cfg.CalibrationOffset = saved }()
	r, err := est.Estimate(bands, sweep)
	if err != nil {
		return 0, err
	}
	return r.ToF - trueDistance/wifi.SpeedOfLight, nil
}
