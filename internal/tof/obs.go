package tof

import "chronos/internal/obs"

// Estimation-stage observability handles. Counters here are
// scheduling-independent except the coalescer family, whose door-hold
// timing makes leader/follower/bypass splits (and batch widths)
// legitimately vary run to run — they are documented as
// timing-dependent and excluded from the determinism golden tests.
// Registry occupancy is exported as snapshot-time gauges (builds and
// evictions depend on process-wide cache warmth, so they are state, not
// a deterministic event count).
var (
	// obsEstimates counts Estimate calls that reached inversion.
	obsEstimates = obs.NewCounter("tof.estimates")
	// obsAliasRefits counts alias-window refit solves (each one is an
	// extra restricted Plan.Solve issued by the scorer).
	obsAliasRefits = obs.NewCounter("tof.alias.refits")
	// obsAliasFlips counts candidate placements the alias scorer moved
	// to a different fold than the solver's first peak.
	obsAliasFlips = obs.NewCounter("tof.alias.flips")
	// obsRegistryLookups counts plan-registry resolutions (hits and
	// builds alike — deterministic, unlike the build/eviction split).
	obsRegistryLookups = obs.NewCounter("tof.registry.lookups")
	// obsNoiseRel is the per-group relative noise floor ‖w‖/‖h‖ — the
	// quantity that gates gap stopping and alias evidence.
	obsNoiseRel = obs.NewHist("tof.noise_rel")
	// obsNoiseFallbacks counts groups whose pair-spread noise estimate
	// was empty (single-pair dwells) and fell back to the cross-band MAD
	// floor (ndft.Plan.NoiseFloor).
	obsNoiseFallbacks = obs.NewCounter("tof.noise_fallbacks")
	// obsSolveParks counts main inversions preempted mid-solve
	// (ErrSolveParked): the parked iterate was retained as a resume seed
	// and the sweep's estimate deferred.
	obsSolveParks = obs.NewCounter("tof.solve.parks")
	// obsStageSolveNs spans the coalesced-solve stage of one group:
	// registry resolution plus Plan.Solve (or the coalescer round trip).
	obsStageSolveNs = obs.NewHist("tof.stage.solve_ns")
	// obsStageAliasNs spans the alias ranking/refit stage of one group.
	obsStageAliasNs = obs.NewHist("tof.stage.alias_ns")

	// Coalescer events (timing-dependent; see package comment above).
	obsCoalesceSubmits   = obs.NewCounter("tof.coalesce.submits")
	obsCoalesceHolds     = obs.NewCounter("tof.coalesce.holds")
	obsCoalesceFollowers = obs.NewCounter("tof.coalesce.followers")
	obsCoalesceBypass    = obs.NewCounter("tof.coalesce.bypass")
	obsCoalesceWidth     = obs.NewHist("tof.coalesce.batch_width")

	obsRegistryPlans     = obs.NewGauge("tof.registry.plans")
	obsRegistryMaxPlans  = obs.NewGauge("tof.registry.max_plans")
	obsRegistryBuilds    = obs.NewGauge("tof.registry.builds")
	obsRegistryEvictions = obs.NewGauge("tof.registry.evictions")
	obsRegistryBytes     = obs.NewGauge("tof.registry.bytes")
)

func init() {
	// Registry occupancy is read at snapshot time rather than pushed on
	// every mutation: the registry converges to a steady state within
	// one campaign, and a poll-time gauge read avoids putting the stats
	// lock on the solve path.
	obs.OnSnapshot(func(s *obs.Snapshot) {
		st := SharedRegistryStats()
		obsRegistryPlans.Set(float64(st.Plans))
		obsRegistryMaxPlans.Set(float64(st.MaxPlans))
		obsRegistryBuilds.Set(float64(st.Builds))
		obsRegistryEvictions.Set(float64(st.Evictions))
		obsRegistryBytes.Set(float64(st.Bytes))
		// Callbacks run after the gauge map is rendered, so snapshot-time
		// gauges write the map directly (Set alone would lag a snapshot).
		s.Gauges["tof.registry.plans"] = float64(st.Plans)
		s.Gauges["tof.registry.max_plans"] = float64(st.MaxPlans)
		s.Gauges["tof.registry.builds"] = float64(st.Builds)
		s.Gauges["tof.registry.evictions"] = float64(st.Evictions)
		s.Gauges["tof.registry.bytes"] = float64(st.Bytes)
	})
}
