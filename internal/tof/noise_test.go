package tof

import (
	"math"
	"math/rand"
	"testing"

	"chronos/internal/dsp"
	"chronos/internal/rf"
	"chronos/internal/wifi"
)

// TestPairSpreadMoments pins the estimator's arithmetic on a hand-sized
// sample: the mean matches BandValue's fold, and the variance of the
// mean is the sample variance over k·(k−1).
func TestPairSpreadMoments(t *testing.T) {
	vals := dsp.Vec{1 + 2i, 3 - 2i, 2 + 0i}
	mean, varMean, ok := pairSpread(vals)
	if !ok {
		t.Fatal("three pairs reported no spread")
	}
	if mean != 2+0i {
		t.Errorf("mean = %v, want 2", mean)
	}
	// Deviations: (−1+2i), (1−2i), 0 → Σ|d|² = 10; 10/(3·2) = 5/3.
	if math.Abs(varMean-10.0/6.0) > 1e-12 {
		t.Errorf("varMean = %v, want %v", varMean, 10.0/6.0)
	}
}

// TestPairSpreadSignalInvariance pins the property that makes the
// pair-spread estimator signal-free: adding a common (signal) value to
// every pair moves the mean but leaves the spread untouched, and
// scaling all pairs scales the spread quadratically.
func TestPairSpreadSignalInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := make(dsp.Vec, 5)
	for i := range vals {
		vals[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	_, v0, _ := pairSpread(vals)
	shifted := make(dsp.Vec, len(vals))
	for i := range vals {
		shifted[i] = vals[i] + (17 - 9i)
	}
	if _, v1, _ := pairSpread(shifted); math.Abs(v1-v0) > 1e-9*v0 {
		t.Errorf("signal shift changed the spread: %v vs %v", v1, v0)
	}
	scaled := make(dsp.Vec, len(vals))
	for i := range vals {
		scaled[i] = vals[i] * 3
	}
	if _, v9, _ := pairSpread(scaled); math.Abs(v9-9*v0) > 1e-9*v0 {
		t.Errorf("3× scale: spread %v, want %v", v9, 9*v0)
	}
}

// TestPairSpreadDegenerate covers the no-information inputs.
func TestPairSpreadDegenerate(t *testing.T) {
	if _, _, ok := pairSpread(nil); ok {
		t.Error("empty input reported a spread")
	}
	mean, v, ok := pairSpread(dsp.Vec{2 + 1i})
	if ok || v != 0 || mean != 2+1i {
		t.Errorf("single pair: mean %v var %v ok %v, want (2+1i, 0, false)", mean, v, ok)
	}
}

// TestGroupNoiseFloorImputation checks the missing-band scaling: bands
// without repeated pairs are imputed at the measured average, so the
// estimate reflects the full group length.
func TestGroupNoiseFloorImputation(t *testing.T) {
	g := []bandMeas{
		{noiseVar: 4, noiseOK: true},
		{noiseVar: 0, noiseOK: false},
		{noiseVar: 2, noiseOK: true},
		{noiseVar: 0, noiseOK: false},
	}
	want := math.Sqrt(6 * 4.0 / 2.0)
	if got := groupNoiseFloor(g); math.Abs(got-want) > 1e-12 {
		t.Errorf("groupNoiseFloor = %v, want %v", got, want)
	}
	if got := groupNoiseFloor([]bandMeas{{noiseOK: false}}); got != 0 {
		t.Errorf("no measured bands: %v, want 0", got)
	}
}

// TestEstimateNoiseFloorTracksSNR checks the end-to-end per-sweep
// estimator: the relative noise estimate surfaced on Estimate must fall
// monotonically as link SNR rises, and sit near the historical tuning
// point (≈0.05) at the campaign's 26 dB.
func TestEstimateNoiseFloorTracksSNR(t *testing.T) {
	bands := wifi.Bands5GHz()
	prev := math.Inf(1)
	for _, snr := range []float64{12, 18, 26, 35} {
		rng := rand.New(rand.NewSource(5))
		link := testLink(rng, 20, []rf.Path{{Delay: 24.2e-9, Gain: 0.6}}, false)
		link.SNRdB = snr
		est := NewEstimator(Config{Mode: Bands5GHzOnly, MaxIter: 1200})
		r, err := est.Estimate(bands, link.Sweep(rng, bands, 3, 2.4e-3))
		if err != nil {
			t.Fatal(err)
		}
		if r.NoiseFloor <= 0 || r.NoiseFloor >= prev {
			t.Errorf("SNR %v: noiseRel %v, want positive and below %v", snr, r.NoiseFloor, prev)
		}
		if snr == 26 && (r.NoiseFloor < 0.02 || r.NoiseFloor > 0.09) {
			t.Errorf("campaign SNR: noiseRel %v, want near the 0.05 tuning point", r.NoiseFloor)
		}
		prev = r.NoiseFloor
	}
}

// TestAdaptiveGatesAnchoring pins the noise-adaptive threshold formulas
// at their calibration anchor (the historical constants at
// noiseRel = 0.05), their clamps, and the ablation/fallback paths.
func TestAdaptiveGatesAnchoring(t *testing.T) {
	e := NewEstimator(Config{})
	g := e.gatesFor(0.05)
	if math.Abs(g.refitMargin-aliasMargin) > 1e-12 ||
		math.Abs(g.anchorMargin-anchorMargin) > 1e-12 ||
		math.Abs(g.fitGate-refitFitGate) > 1e-12 {
		t.Errorf("gates at the tuning point %+v, want the historical constants", g)
	}
	if g := e.gatesFor(10); g.refitMargin != 0.6 || g.anchorMargin != 1.9 || g.fitGate != 0.6 {
		t.Errorf("deep-fade clamps: %+v", g)
	}
	if g := e.gatesFor(0); g != fixedGates {
		t.Errorf("no estimate: %+v, want fixed gates", g)
	}
	fixed := NewEstimator(Config{FixedThresholds: true})
	if g := fixed.gatesFor(0.3); g != fixedGates {
		t.Errorf("FixedThresholds ablation: %+v, want fixed gates", g)
	}
}
