package tof

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"chronos/internal/ndft"
)

// planKey is the fixed-size signature of one inversion geometry: the
// channel power (which fixes the delay-domain scaling), the frequency
// list (hashed, plus its length so unequal-length collisions are
// impossible), and the grid parameters that determine the τ lattice. It
// replaces the fmt-formatted string key the Estimator used to build per
// cache probe — a comparable struct costs one FNV pass over the
// frequency bits and no heap traffic.
type planKey struct {
	power    int
	nFreq    int
	freqHash uint64
	maxTau   float64
	gridStep float64
	// window marks the fixed-width alias-disambiguation geometry, whose
	// grid parameters could otherwise collide with a main grid's.
	window bool
}

func newPlanKey(freqs []float64, power int, maxTau, gridStep float64) planKey {
	h := fnv.New64a()
	var b [8]byte
	for _, f := range freqs {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		h.Write(b[:])
	}
	return planKey{
		power: power, nFreq: len(freqs), freqHash: h.Sum64(),
		maxTau: maxTau, gridStep: gridStep,
	}
}

// planRegistry shares ndft.Plans across every Estimator that uses it:
// the exp worker pool, Sweep accumulators, and the multi-device track
// schedulers all resolve the same band-group signature to one plan
// instead of rebuilding identical dictionaries per worker. Lookups take
// a read lock; each key's plan is built exactly once (a sync.Once per
// entry), with concurrent requesters blocking on the build rather than
// duplicating it. Plans are immutable and their solves are internally
// synchronized, so handing one plan to many goroutines is safe.
//
// Entries live for the registry's lifetime. The key space is bounded by
// the distinct (band group, grid) geometries a process uses — a handful
// per estimator configuration — so there is no eviction.
type planRegistry struct {
	mu      sync.RWMutex
	entries map[planKey]*planEntry
	builds  atomic.Int64 // dictionary constructions actually performed
}

type planEntry struct {
	once sync.Once
	plan *ndft.Plan
	err  error
}

func newPlanRegistry() *planRegistry {
	return &planRegistry{entries: make(map[planKey]*planEntry)}
}

// sharedPlans is the process-wide default registry. Every Estimator
// built by NewEstimator resolves plans here.
var sharedPlans = newPlanRegistry()

// planFor returns the plan for key, building it via build on first use.
func (r *planRegistry) planFor(key planKey, build func() (*ndft.Plan, error)) (*ndft.Plan, error) {
	r.mu.RLock()
	e := r.entries[key]
	r.mu.RUnlock()
	if e == nil {
		r.mu.Lock()
		if e = r.entries[key]; e == nil {
			e = &planEntry{}
			r.entries[key] = e
		}
		r.mu.Unlock()
	}
	e.once.Do(func() {
		r.builds.Add(1)
		e.plan, e.err = build()
	})
	return e.plan, e.err
}

// size reports how many distinct geometries the registry holds.
func (r *planRegistry) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// buildCount reports how many dictionary builds actually ran.
func (r *planRegistry) buildCount() int64 { return r.builds.Load() }
