package tof

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"chronos/internal/ndft"
)

// planKey is the fixed-size signature of one inversion geometry: the
// channel power (which fixes the delay-domain scaling), the frequency
// list (hashed, plus its length so unequal-length collisions are
// impossible), and the grid parameters that determine the τ lattice. It
// replaces the fmt-formatted string key the Estimator used to build per
// cache probe — a comparable struct costs one FNV pass over the
// frequency bits and no heap traffic.
type planKey struct {
	power    int
	nFreq    int
	freqHash uint64
	maxTau   float64
	gridStep float64
	// window marks the fixed-width alias-disambiguation geometry, whose
	// grid parameters could otherwise collide with a main grid's.
	window bool
}

func newPlanKey(freqs []float64, power int, maxTau, gridStep float64) planKey {
	h := fnv.New64a()
	var b [8]byte
	for _, f := range freqs {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		h.Write(b[:])
	}
	return planKey{
		power: power, nFreq: len(freqs), freqHash: h.Sum64(),
		maxTau: maxTau, gridStep: gridStep,
	}
}

// defaultMaxPlans bounds the shared registry. The fixed evaluation
// geometries use a handful of plans; a long-running multi-tenant service
// sweeping many configurations is what the bound protects. At the
// evaluation dimensions a plan is a few hundred kilobytes of planar
// dictionary, so 64 resident geometries cap the registry around tens of
// megabytes.
const defaultMaxPlans = 64

// planRegistry shares ndft.Plans across every Estimator that uses it:
// the exp worker pool, Sweep accumulators, and the multi-device track
// schedulers all resolve the same band-group signature to one plan
// instead of rebuilding identical dictionaries per worker. Lookups take
// a read lock; each key's plan is built exactly once (a sync.Once per
// entry), with concurrent requesters blocking on the build rather than
// duplicating it. Plans are immutable and their solves are internally
// synchronized, so handing one plan to many goroutines is safe.
//
// Occupancy is LRU-bounded: each hit stamps the entry with a logical
// clock tick, and an insert that exceeds maxPlans evicts the
// least-recently-stamped entries. Eviction is safe under races — a
// goroutine still holding an evicted entry finishes (or awaits) its
// build and uses the plan normally; the plan is simply no longer cached,
// and the next request for that geometry rebuilds it.
type planRegistry struct {
	mu        sync.RWMutex
	entries   map[planKey]*planEntry
	maxPlans  int
	clock     atomic.Int64 // logical recency clock
	builds    atomic.Int64 // dictionary constructions actually performed
	evictions atomic.Int64 // entries dropped by the LRU bound
}

type planEntry struct {
	once     sync.Once
	plan     *ndft.Plan
	err      error
	lastUsed atomic.Int64
	bytes    atomic.Int64
}

// newPlanRegistry builds a registry bounded to maxPlans resident
// geometries (0 means the default bound).
func newPlanRegistry(maxPlans int) *planRegistry {
	if maxPlans <= 0 {
		maxPlans = defaultMaxPlans
	}
	return &planRegistry{entries: make(map[planKey]*planEntry), maxPlans: maxPlans}
}

// sharedPlans is the process-wide default registry. Every Estimator
// built by NewEstimator resolves plans here.
var sharedPlans = newPlanRegistry(0)

// planFor returns the plan for key, building it via build on first use.
func (r *planRegistry) planFor(key planKey, build func() (*ndft.Plan, error)) (*ndft.Plan, error) {
	obsRegistryLookups.Inc()
	r.mu.RLock()
	e := r.entries[key]
	r.mu.RUnlock()
	if e == nil {
		r.mu.Lock()
		if e = r.entries[key]; e == nil {
			e = &planEntry{}
			// Stamp before publishing so a racing insert cannot see this
			// entry at recency zero and evict it immediately.
			e.lastUsed.Store(r.clock.Add(1))
			r.entries[key] = e
			r.evictLocked(e)
		}
		r.mu.Unlock()
	}
	e.lastUsed.Store(r.clock.Add(1))
	e.once.Do(func() {
		r.builds.Add(1)
		e.plan, e.err = build()
		if e.plan != nil {
			e.bytes.Store(e.plan.MemoryBytes())
		}
	})
	return e.plan, e.err
}

// evictLocked drops least-recently-used entries until the bound holds,
// sparing keep (the entry just inserted). Callers hold r.mu.
func (r *planRegistry) evictLocked(keep *planEntry) {
	for len(r.entries) > r.maxPlans {
		var victimKey planKey
		var victim *planEntry
		for k, e := range r.entries {
			if e == keep {
				continue
			}
			if victim == nil || e.lastUsed.Load() < victim.lastUsed.Load() {
				victim, victimKey = e, k
			}
		}
		if victim == nil {
			return
		}
		delete(r.entries, victimKey)
		r.evictions.Add(1)
	}
}

// RegistryStats is a point-in-time snapshot of a plan registry's
// occupancy and lifetime counters — the observability surface for
// long-running services sweeping many estimator configurations.
type RegistryStats struct {
	Plans     int   // resident geometries
	MaxPlans  int   // LRU bound on resident geometries
	Builds    int64 // dictionary builds performed over the lifetime
	Evictions int64 // entries dropped by the LRU bound
	Bytes     int64 // approximate resident bytes across built plans
}

// stats snapshots the registry.
func (r *planRegistry) stats() RegistryStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := RegistryStats{
		Plans:     len(r.entries),
		MaxPlans:  r.maxPlans,
		Builds:    r.builds.Load(),
		Evictions: r.evictions.Load(),
	}
	for _, e := range r.entries {
		s.Bytes += e.bytes.Load()
	}
	return s
}

// SharedRegistryStats reports the process-wide plan registry every
// NewEstimator-built estimator resolves plans from.
func SharedRegistryStats() RegistryStats { return sharedPlans.stats() }

// setCap rebounds the registry to maxPlans (0 restores the default) and
// evicts down to the new bound immediately. Returns the previous bound.
func (r *planRegistry) setCap(maxPlans int) int {
	if maxPlans <= 0 {
		maxPlans = defaultMaxPlans
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.maxPlans
	r.maxPlans = maxPlans
	r.evictLocked(nil)
	return prev
}

// SetSharedPlanCap rebounds the process-wide plan registry and returns
// the previous bound, evicting least-recently-used plans immediately if
// the new bound is tighter. Shrinking the cap is an operational lever
// (and a test lever: the service soak pins registry-eviction behavior
// under churn by forcing a tiny bound); correctness is unaffected either
// way — an evicted geometry simply rebuilds on next use. Callers should
// restore the previous bound when done:
//
//	defer tof.SetSharedPlanCap(tof.SetSharedPlanCap(8))
func SetSharedPlanCap(maxPlans int) int { return sharedPlans.setCap(maxPlans) }

// size reports how many distinct geometries the registry holds.
func (r *planRegistry) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// buildCount reports how many dictionary builds actually ran.
func (r *planRegistry) buildCount() int64 { return r.builds.Load() }
