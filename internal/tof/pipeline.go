// Package tof assembles the paper's full time-of-flight pipeline:
//
//  1. per-packet CSI on 30 subcarriers per band (package csi);
//  2. cubic-spline interpolation of phase and magnitude to the zero
//     subcarrier, which is free of packet-detection delay (§5);
//  3. forward×reverse CSI multiplication to cancel carrier frequency
//     offset (§7), yielding the squared channel h̃² per band — and, on
//     2.4 GHz bands affected by the Intel firmware quirk, fourth powers
//     so the π/2 phase folds cancel (§11), yielding h̃⁸;
//  4. sparse inverse-NDFT over the per-band values (§6, Algorithm 1);
//  5. first-peak extraction and division by the channel power to recover
//     the direct-path time of flight.
package tof

import (
	"errors"
	"fmt"
	"math/cmplx"

	"chronos/internal/csi"
	"chronos/internal/dsp"
	"chronos/internal/wifi"
)

// InterpMode selects how the zero-subcarrier channel is estimated.
type InterpMode int

const (
	// InterpSpline is the paper's choice: natural cubic spline across the
	// 30 reported subcarriers (§5, footnote 3).
	InterpSpline InterpMode = iota
	// InterpLinear is the ablation baseline.
	InterpLinear
	// InterpNone skips detection-delay compensation entirely: it reports
	// the raw value of the subcarrier closest to DC, whose phase still
	// carries the ramp error −2π(f_k−f_0)δ of the packet-detection delay.
	// Used to demonstrate how badly uncompensated delay hurts (Fig. 7c).
	InterpNone
)

// ZeroSubcarrier estimates the channel at subcarrier 0 of one measurement:
// the value whose phase is unaffected by packet-detection delay. power is
// applied to each subcarrier value first (4 on quirked 2.4 GHz bands so
// the π/2 folds vanish, 1 otherwise).
func ZeroSubcarrier(m csi.Measurement, power int, mode InterpMode) (complex128, error) {
	n := len(m.Subcarriers)
	if n < 2 || len(m.Values) != n {
		return 0, fmt.Errorf("tof: malformed measurement (%d subcarriers, %d values)", n, len(m.Values))
	}

	vals := m.Values
	if power != 1 {
		vals = dsp.Power(make(dsp.Vec, n), m.Values, power)
	}

	if mode == InterpNone {
		best := 0
		for i, k := range m.Subcarriers {
			if abs(k) < abs(m.Subcarriers[best]) {
				best = i
			}
		}
		return vals[best], nil
	}

	// De-ramp before unwrapping: the detection-delay phase slope (times
	// the channel power) can exceed π between reported subcarriers two
	// indices apart, which would send Unwrap down a wrong 2π branch.
	// Estimating the dominant linear slope from adjacent subcarriers and
	// removing it keeps every step small; since the query point is k=0,
	// no re-rotation is needed afterwards.
	slope := estimateSlope(m.Subcarriers, vals)
	xs := make([]float64, n)
	mags := make([]float64, n)
	phases := make([]float64, n)
	for i, k := range m.Subcarriers {
		xs[i] = float64(k)
		mags[i] = cmplx.Abs(vals[i])
		phases[i] = cmplx.Phase(vals[i] * cmplx.Rect(1, -slope*float64(k)))
	}
	dsp.Unwrap(phases)

	var mag0, ph0 float64
	var err error
	switch mode {
	case InterpSpline:
		if ph0, err = dsp.InterpolateAt(xs, phases, 0); err != nil {
			return 0, err
		}
		if mag0, err = dsp.InterpolateAt(xs, mags, 0); err != nil {
			return 0, err
		}
	case InterpLinear:
		if ph0, err = dsp.LinearAt(xs, phases, 0); err != nil {
			return 0, err
		}
		if mag0, err = dsp.LinearAt(xs, mags, 0); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("tof: unknown interpolation mode %d", mode)
	}
	if mag0 < 0 {
		mag0 = 0
	}
	return dsp.FromPolar(mag0, ph0), nil
}

// BandValue reduces the CSI pairs collected on one band to a single
// CFO-free complex channel value, and reports the total channel power of
// that value: 2 for clean bands (h̃²), 8 for quirked 2.4 GHz bands (h̃⁸,
// since each side is raised to the 4th power before multiplication).
//
// When fwdOnly is true the reverse measurement is ignored (the CFO
// ablation) and the power is 1 or 4.
func BandValue(pairs []csi.Pair, quirked bool, mode InterpMode, fwdOnly bool) (complex128, int, error) {
	if len(pairs) == 0 {
		return 0, 0, errors.New("tof: no CSI pairs for band")
	}
	power, total := bandPowers(quirked, fwdOnly)
	vals, err := foldValues(nil, pairs, power, mode, fwdOnly)
	if err != nil {
		return 0, 0, err
	}
	acc, _, _ := pairSpread(vals)
	return acc, total, nil
}

// bandPowers is the single home of the channel-power convention: the
// per-side power applied before folding (4 on quirked 2.4 GHz bands so
// the π/2 phase folds cancel, 1 otherwise) and the total power label of
// the folded value (doubled by the forward×reverse CFO product unless
// fwdOnly). BandValue and Sweep.AddBand both resolve it here so the
// batch and incremental paths can never diverge.
func bandPowers(quirked, fwdOnly bool) (power, total int) {
	power = 1
	if quirked {
		power = 4
	}
	total = power
	if !fwdOnly {
		total = 2 * power
	}
	return power, total
}

// IsQuirked reports whether band b needs the 4th-power workaround on a
// radio with the 2.4 GHz firmware quirk.
func IsQuirked(b wifi.Band, quirk bool) bool { return quirk && b.GHz24() }

func abs(k int) int {
	if k < 0 {
		return -k
	}
	return k
}

// estimateSlope returns the dominant linear phase slope of vals across
// subcarrier indices, in radians per index. Stage one takes the phase of
// the sum of conjugate products over index-adjacent pairs (step 1), which
// stays unaliased for detection delays up to ≈350 ns even in the
// fourth-power domain. Stage two de-rotates with the coarse slope and
// refines with a least-squares fit over every consecutive pair.
func estimateSlope(subs []int, vals dsp.Vec) float64 {
	n := len(subs)
	// Coarse: step-1 pairs only.
	var r complex128
	minStep := 1 << 30
	for i := 1; i < n; i++ {
		if d := subs[i] - subs[i-1]; d < minStep {
			minStep = d
		}
	}
	if minStep <= 0 {
		return 0
	}
	for i := 1; i < n; i++ {
		if subs[i]-subs[i-1] == minStep {
			r += vals[i] * cmplx.Conj(vals[i-1])
		}
	}
	coarse := cmplx.Phase(r) / float64(minStep)

	// Refine: all consecutive pairs, phases now small after de-rotation.
	var num, den float64
	for i := 1; i < n; i++ {
		d := float64(subs[i] - subs[i-1])
		prod := vals[i] * cmplx.Conj(vals[i-1]) * cmplx.Rect(1, -coarse*d)
		w := cmplx.Abs(prod)
		if w == 0 {
			continue
		}
		num += cmplx.Phase(prod) * d * w
		den += d * d * w
	}
	if den == 0 {
		return coarse
	}
	return coarse + num/den
}
