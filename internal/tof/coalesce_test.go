package tof

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"chronos/internal/dsp"
	"chronos/internal/ndft"
	"chronos/internal/wifi"
)

// coalescePlan builds the evaluation geometry plan and k synthetic
// three-path measurements against it.
func coalescePlan(t testing.TB, k int) (*ndft.Plan, []dsp.Vec) {
	t.Helper()
	freqs := wifi.Centers(wifi.USBands())
	plan, err := ndft.NewPlan(freqs, ndft.TauGrid(2*60e-9, 2*0.1e-9))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	hs := make([]dsp.Vec, k)
	for i := range hs {
		tau := 8 + rng.Float64()*30
		h := make(dsp.Vec, len(freqs))
		for j, f := range freqs {
			for p, d := range []float64{tau, tau + 4.2, tau + 9.5} {
				ph := -2 * 2 * math.Pi * f * d * 1e-9
				h[j] += dsp.FromPolar([]float64{1, 0.6, 0.4}[p], ph)
			}
			h[j] += complex(rng.NormFloat64()*0.05, rng.NormFloat64()*0.05)
		}
		hs[i] = h
	}
	return plan, hs
}

// sameResult asserts two results are byte-identical in every field the
// solver computes.
func sameResult(t *testing.T, got, want *ndft.Result) {
	t.Helper()
	if len(got.Profile) != len(want.Profile) {
		t.Fatalf("profile length %d != %d", len(got.Profile), len(want.Profile))
	}
	for i := range got.Profile {
		if got.Profile[i] != want.Profile[i] {
			t.Fatalf("profile[%d]: %v != %v", i, got.Profile[i], want.Profile[i])
		}
	}
	if got.Residual != want.Residual || got.Iterations != want.Iterations ||
		got.Converged != want.Converged || got.Work != want.Work {
		t.Fatalf("telemetry mismatch: got %+v want %+v", got, want)
	}
}

// TestCoalescerMergesConcurrentSubmits pins the coalescer's core
// promise: concurrent submissions for one plan merge into one batch,
// and every merged result is byte-identical to a solo Solve.
func TestCoalescerMergesConcurrentSubmits(t *testing.T) {
	const k = 8
	plan, hs := coalescePlan(t, k)
	opts := ndft.InvertOptions{MaxIter: 600}

	want := make([]*ndft.Result, k)
	for i, h := range hs {
		r, err := plan.Solve(ndft.SolveRequest{H: h, InvertOptions: opts})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	// A generous door-hold: the batch fills (k == MaxBatch) long before
	// the timer, so the timer path never decides this test.
	c := NewCoalescer(CoalescerConfig{MaxBatch: k, Wait: 2 * time.Second})
	armCoalescer(c)
	got := make([]*ndft.Result, k)
	widths := make([]int, k)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			r, b, err := c.Submit(plan, ndft.SolveRequest{H: hs[i], InvertOptions: opts})
			if err != nil {
				t.Error(err)
				return
			}
			got[i], widths[i] = r, b
		}(i)
	}
	close(start)
	wg.Wait()

	for i := range got {
		if got[i] == nil {
			t.Fatalf("request %d: no result", i)
		}
		sameResult(t, got[i], want[i])
		if widths[i] < 1 || widths[i] > k {
			t.Fatalf("request %d: batch width %d out of range", i, widths[i])
		}
	}
	// All k submissions started together against an idle coalescer with
	// MaxBatch == k: they must have merged into the single full batch.
	for i, w := range widths {
		if w != k {
			t.Fatalf("request %d: batch width %d, want %d (full merge)", i, w, k)
		}
	}
}

// armCoalescer marks c as having just observed concurrent submissions,
// so its next leader holds the door. Tests that pin the door-hold
// contracts arm explicitly instead of racing real overlapping submits.
func armCoalescer(c *Coalescer) {
	c.mu.Lock()
	c.lastOverlap = time.Now()
	c.mu.Unlock()
}

// TestCoalescerSoloFallsThrough pins the bounded wait: a lone request
// against an armed coalescer holds the door, then flushes as a B=1
// batch after Wait and matches a direct Solve.
func TestCoalescerSoloFallsThrough(t *testing.T) {
	plan, hs := coalescePlan(t, 1)
	opts := ndft.InvertOptions{MaxIter: 600}
	want, err := plan.Solve(ndft.SolveRequest{H: hs[0], InvertOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoalescer(CoalescerConfig{MaxBatch: 16, Wait: time.Millisecond})
	armCoalescer(c)
	got, width, err := c.Submit(plan, ndft.SolveRequest{H: hs[0], InvertOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	if width != 1 {
		t.Fatalf("solo submit coalesced to width %d", width)
	}
	sameResult(t, got, want)
}

// TestCoalescerDisabledPaths pins the degradation contract: a nil
// coalescer and a MaxBatch=1 coalescer both reduce to plain Solve.
func TestCoalescerDisabledPaths(t *testing.T) {
	plan, hs := coalescePlan(t, 1)
	opts := ndft.InvertOptions{MaxIter: 600}
	want, err := plan.Solve(ndft.SolveRequest{H: hs[0], InvertOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	var nilC *Coalescer
	got, width, err := nilC.Submit(plan, ndft.SolveRequest{H: hs[0], InvertOptions: opts})
	if err != nil || width != 1 {
		t.Fatalf("nil coalescer: width %d err %v", width, err)
	}
	sameResult(t, got, want)

	c := NewCoalescer(CoalescerConfig{MaxBatch: 1, Wait: time.Second})
	got, width, err = c.Submit(plan, ndft.SolveRequest{H: hs[0], InvertOptions: opts})
	if err != nil || width != 1 {
		t.Fatalf("MaxBatch=1: width %d err %v", width, err)
	}
	sameResult(t, got, want)
}

// TestCoalescerIdleBypass pins the single-session fast path: a coalescer
// that has never observed two submissions in flight at once must not
// hold the door at all. Wait is an hour here, so this test finishing at
// all proves the leaders bypassed the hold — and the bypassed solves
// are still byte-identical to a direct Solve.
func TestCoalescerIdleBypass(t *testing.T) {
	plan, hs := coalescePlan(t, 1)
	opts := ndft.InvertOptions{MaxIter: 600}
	want, err := plan.Solve(ndft.SolveRequest{H: hs[0], InvertOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoalescer(CoalescerConfig{MaxBatch: 16, Wait: time.Hour})
	for i := 0; i < 2; i++ {
		// Sequential submissions never overlap, so the bypass persists
		// across solves.
		got, width, err := c.Submit(plan, ndft.SolveRequest{H: hs[0], InvertOptions: opts})
		if err != nil {
			t.Fatal(err)
		}
		if width != 1 {
			t.Fatalf("idle submit %d coalesced to width %d", i, width)
		}
		sameResult(t, got, want)
	}
}
