package tof

import (
	"sync"
	"time"

	"chronos/internal/ndft"
)

// CoalescerConfig tunes a cross-session solve coalescer.
type CoalescerConfig struct {
	// MaxBatch caps how many requests one coalesced solve may carry
	// (default 16, one batch-lane pair of the solver's vector kernel;
	// 1 disables coalescing entirely). A batch flushes the moment it
	// fills, so the cap also bounds how much laggard work one flush can
	// pick up.
	MaxBatch int
	// Wait bounds how long the first request of a forming batch holds
	// the door open for companions before flushing whatever arrived
	// (default 200 µs — roughly one cold solve on the evaluation
	// geometry, so waiting can at most double a solo solve's latency
	// while a filled batch repays the wait many times over). A solo
	// request therefore never stalls: after Wait it falls through to a
	// B=1 solve, which is byte-identical to an uncoalesced Solve.
	// Leaders only hold the door at all while companions are plausible —
	// see IdleAfter.
	Wait time.Duration
	// IdleAfter bounds how long leaders keep paying the door-hold after
	// the coalescer last observed concurrency (two submissions in flight
	// at once). Past it, a leader flushes immediately instead of holding
	// for Wait, so an estimator that turns out to be the only active
	// session pays no added latency per solve; the next concurrent
	// collision re-arms holding. The default 250 ms spans a few sweep
	// rounds at the paper's sweep rate, so sessions whose sweeps overlap
	// once a round keep the hold armed between rounds. Negative means
	// always hold.
	IdleAfter time.Duration
}

func (c CoalescerConfig) withDefaults() CoalescerConfig {
	if c.MaxBatch == 0 {
		c.MaxBatch = 16
	}
	if c.Wait == 0 {
		c.Wait = 200 * time.Microsecond
	}
	if c.IdleAfter == 0 {
		c.IdleAfter = 250 * time.Millisecond
	}
	return c
}

// Coalescer gathers concurrent solve requests that target the same
// NDFT plan into batched SolveBatch calls. Sessions that share a band
// geometry already share one plan through the registry; the coalescer
// closes the remaining gap by letting their simultaneous inversions
// share the dictionary's memory traffic too. Because SolveBatch is
// byte-identical to sequential Solve per request, coalescing changes
// only throughput and latency — never a result — so sessions stay
// deterministic even though batch composition depends on timing.
//
// A Coalescer is safe for concurrent use and is meant to be shared: set
// one instance in the Config of every estimator whose sessions should
// batch together. Requests for different plans never wait on each
// other, and the door-hold is adaptive: until two submissions have
// actually overlapped (and again whenever they stop overlapping for
// IdleAfter) leaders flush immediately, so a coalescer configured "just
// in case" costs a single-session deployment nothing.
type Coalescer struct {
	cfg CoalescerConfig

	mu      sync.Mutex
	forming map[*ndft.Plan]*formingBatch
	// inflight counts Submits currently inside the coalescer (forming,
	// waiting, or solving); lastOverlap is the last instant a Submit
	// arrived while another was in flight — the signal that companions
	// are plausible and a leader's door-hold can pay off.
	inflight    int
	lastOverlap time.Time
}

// formingBatch is one plan's open batch: the leader (first arrival)
// owns the flush, followers append themselves and wait on done.
type formingBatch struct {
	reqs []ndft.SolveRequest
	full chan struct{} // closed by the follower that fills the batch
	done chan struct{} // closed by the leader after SolveBatch returns
	err  error
}

// NewCoalescer builds a coalescer with the given (defaulted) config.
func NewCoalescer(cfg CoalescerConfig) *Coalescer {
	return &Coalescer{cfg: cfg.withDefaults(), forming: make(map[*ndft.Plan]*formingBatch)}
}

// Submit solves one request against plan, coalescing it with any
// concurrent submissions for the same plan. It returns the request's
// result and the width of the batch that carried it (1 when the request
// ran alone). A nil Coalescer degrades to a plain Solve, so callers can
// thread an optional coalescer without guarding every call site; a
// non-nil one adds latency only while concurrency is actually being
// observed (see CoalescerConfig.IdleAfter).
//
// Error semantics follow SolveBatch: a malformed request fails its
// whole batch, so callers should validate shapes before submitting —
// exactly as they would before a direct Solve.
func (c *Coalescer) Submit(plan *ndft.Plan, req ndft.SolveRequest) (*ndft.Result, int, error) {
	if c == nil || c.cfg.MaxBatch <= 1 {
		res, err := plan.Solve(req)
		return res, 1, err
	}
	obsCoalesceSubmits.Inc()

	c.mu.Lock()
	if c.inflight > 0 {
		c.lastOverlap = time.Now()
	}
	c.inflight++
	if b := c.forming[plan]; b != nil {
		// Follower: join the open batch and wait for the leader's flush.
		idx := len(b.reqs)
		b.reqs = append(b.reqs, req)
		if len(b.reqs) == c.cfg.MaxBatch {
			// Full: close the door so later arrivals start a new batch,
			// and release the leader from its bounded wait.
			delete(c.forming, plan)
			close(b.full)
		}
		c.mu.Unlock()
		obsCoalesceFollowers.Inc()
		<-b.done
		c.exit()
		if b.err != nil {
			return nil, len(b.reqs), b.err
		}
		return b.reqs[idx].Dst, len(b.reqs), nil
	}

	// Holding the door only pays when a companion might arrive: if no
	// two submissions have overlapped for IdleAfter, the coalescer is
	// effectively single-session and the leader flushes immediately — a
	// B=1 solve with zero added latency. A request arriving during this
	// solve records the overlap (above), re-arming the hold for the
	// leaders that follow.
	hold := c.cfg.IdleAfter < 0 || time.Since(c.lastOverlap) <= c.cfg.IdleAfter
	if !hold {
		c.mu.Unlock()
		obsCoalesceBypass.Inc()
		res, err := plan.Solve(req)
		c.exit()
		return res, 1, err
	}

	// Leader: open a batch, hold the door for Wait (or until full), then
	// flush whatever gathered.
	obsCoalesceHolds.Inc()
	b := &formingBatch{full: make(chan struct{}), done: make(chan struct{})}
	b.reqs = append(b.reqs, req)
	c.forming[plan] = b
	c.mu.Unlock()

	timer := time.NewTimer(c.cfg.Wait)
	select {
	case <-b.full:
		timer.Stop()
	case <-timer.C:
	}

	c.mu.Lock()
	if c.forming[plan] == b {
		delete(c.forming, plan)
	}
	c.mu.Unlock()
	// No follower can reach b anymore: joins happen under mu, and the
	// map entry is gone. reqs is now stable.
	b.err = plan.SolveBatch(b.reqs)
	obsCoalesceWidth.Observe(float64(len(b.reqs)))
	close(b.done)
	c.exit()
	if b.err != nil {
		return nil, len(b.reqs), b.err
	}
	return b.reqs[0].Dst, len(b.reqs), nil
}

// exit retires one in-flight submission.
func (c *Coalescer) exit() {
	c.mu.Lock()
	c.inflight--
	c.mu.Unlock()
}
