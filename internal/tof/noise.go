package tof

import (
	"math"

	"chronos/internal/csi"
	"chronos/internal/dsp"
)

// Per-sweep noise estimation. Every band dwell captures several CSI
// pairs of the same (quasi-static) channel, and BandValue folds them
// into one mean value; the spread of the per-pair folded values around
// that mean is therefore a direct, signal-free measurement of the
// effective noise on the band value — it includes thermal noise,
// interpolation error, and any residual per-packet effects, exactly the
// disturbances that bound the useful precision of the profile
// inversion. Summing the per-band variances of the mean gives the noise
// energy of the group measurement vector, which scales the solver's
// duality-gap stopping tolerance and the alias-evidence thresholds so
// the whole estimation chain self-calibrates across SNR regimes.

// pairSpread reduces per-pair folded values to their mean and the
// variance of that mean. The variance is the total complex variance
// (real + imaginary components): Σ|vₚ − mean|² / (k·(k−1)), i.e. the
// sample variance shrunk by the 1/k averaging BandValue performs. A
// single pair carries no spread information and reports variance 0 with
// ok=false.
func pairSpread(vals dsp.Vec) (mean complex128, varMean float64, ok bool) {
	k := len(vals)
	if k == 0 {
		return 0, 0, false
	}
	for _, v := range vals {
		mean += v
	}
	mean /= complex(float64(k), 0)
	if k < 2 {
		return mean, 0, false
	}
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += real(d)*real(d) + imag(d)*imag(d)
	}
	return mean, ss / float64(k*(k-1)), true
}

// foldValues computes the per-pair CFO-free folded values for one band —
// the terms BandValue averages. dst is reused when it has capacity.
func foldValues(dst dsp.Vec, pairs []csi.Pair, power int, mode InterpMode, fwdOnly bool) (dsp.Vec, error) {
	if cap(dst) < len(pairs) {
		dst = make(dsp.Vec, 0, len(pairs))
	}
	dst = dst[:0]
	for _, p := range pairs {
		fwd, err := ZeroSubcarrier(p.Forward, power, mode)
		if err != nil {
			return nil, err
		}
		v := fwd
		if !fwdOnly {
			rev, err := ZeroSubcarrier(p.Reverse, power, mode)
			if err != nil {
				return nil, err
			}
			v = fwd * rev
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// groupNoiseFloor estimates ‖w‖₂ — the L2 norm of the noise component of
// one band group's measurement vector — by summing the per-band
// variances of the folded means. Bands measured with a single pair carry
// no spread information; their noise is imputed at the average of the
// measured bands (the estimate scales the observed energy up to the full
// band count). Returns 0 when no band has repeated pairs, which
// downstream consumers treat as "no estimate": the solver falls back to
// the fixed iterate tolerance and the alias gates to their fixed
// constants.
func groupNoiseFloor(g []bandMeas) float64 {
	var sum float64
	measured := 0
	for _, m := range g {
		if m.noiseOK {
			sum += m.noiseVar
			measured++
		}
	}
	if measured == 0 {
		return 0
	}
	return math.Sqrt(sum * float64(len(g)) / float64(measured))
}
