package tof

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"chronos/internal/rf"
	"chronos/internal/wifi"
)

// TestEstimatorParkResume exercises the preemption path end to end: a
// hook that fires once parks the sweep's main inversion (ErrSolveParked,
// sweep state intact), and the retry resumes from the parked iterate to
// land on the same fix as a never-preempted estimator.
func TestEstimatorParkResume(t *testing.T) {
	bands := wifi.Bands5GHz()
	mk := func() (*Estimator, *Sweep) {
		rng := rand.New(rand.NewSource(9))
		link := testLink(rng, 20, []rf.Path{{Delay: 27e-9, Gain: 0.6}}, false)
		link.SNRdB = 22
		est := NewEstimator(Config{Mode: Bands5GHzOnly, MaxIter: 3000})
		s := est.NewSweep()
		sweep := link.Sweep(rng, bands, 3, 2.4e-3)
		for i, b := range bands {
			if err := s.AddBand(b, sweep[i]); err != nil {
				t.Fatal(err)
			}
		}
		return est, s
	}

	refEst, refSweep := mk()
	ref, err := refSweep.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	_ = refEst

	est, s := mk()
	fired := false
	est.SetPreempt(func() bool {
		if fired {
			return false
		}
		fired = true
		return true
	})
	if _, err := s.Estimate(); !errors.Is(err, ErrSolveParked) {
		t.Fatalf("preempted estimate returned %v, want ErrSolveParked", err)
	}
	if !fired {
		t.Fatal("preempt hook never polled")
	}
	if len(s.parked) != 1 {
		t.Fatalf("parked seeds retained: %d, want 1", len(s.parked))
	}

	est.SetPreempt(nil)
	got, err := s.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.parked) != 0 {
		t.Fatalf("resume left %d parked seeds; the seed must be one-shot", len(s.parked))
	}
	if e := math.Abs(got.ToF - ref.ToF); e > 0.5e-9 {
		t.Errorf("resumed ToF %v vs reference %v (off by %v, want < 0.5 ns)", got.ToF, ref.ToF, e)
	}
}

// TestEstimatorPreemptNilIdentical pins that a nil (or never-firing)
// hook leaves estimation untouched — the invariant the golden
// determinism tests lean on when the daemon installs hooks only around
// bulk-class solves.
func TestEstimatorPreemptNilIdentical(t *testing.T) {
	bands := wifi.Bands5GHz()
	run := func(hook func() bool) *Estimate {
		rng := rand.New(rand.NewSource(14))
		link := testLink(rng, 12, []rf.Path{{Delay: 19e-9, Gain: 0.5}}, false)
		est := NewEstimator(Config{Mode: Bands5GHzOnly, MaxIter: 1500})
		est.SetPreempt(hook)
		r, err := est.Estimate(bands, link.Sweep(rng, bands, 3, 2.4e-3))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ref := run(nil)
	idle := run(func() bool { return false })
	if ref.ToF != idle.ToF || ref.Distance != idle.Distance ||
		ref.Iterations != idle.Iterations || ref.NoiseFloor != idle.NoiseFloor {
		t.Fatalf("idle hook changed the estimate: %+v vs %+v", idle, ref)
	}
}

// TestEstimateSinglePairNoiseFallback covers the cross-band MAD
// fallback: a single-pair-per-band dwell has no repeated-pair spread, so
// the per-sweep noise floor must come from ndft.Plan.NoiseFloor instead
// of silently collapsing to zero (which would disable gap stopping for
// exactly the fast low-dwell sweeps that need it most).
func TestEstimateSinglePairNoiseFallback(t *testing.T) {
	bands := wifi.Bands5GHz()
	single := func(snr float64) *Estimate {
		rng := rand.New(rand.NewSource(6))
		link := testLink(rng, 18, []rf.Path{{Delay: 25e-9, Gain: 0.5}}, false)
		link.SNRdB = snr
		est := NewEstimator(Config{Mode: Bands5GHzOnly, MaxIter: 1500})
		r, err := est.Estimate(bands, link.Sweep(rng, bands, 1, 2.4e-3))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r := single(26)
	if r.NoiseFloor <= 0 || math.IsInf(r.NoiseFloor, 0) || math.IsNaN(r.NoiseFloor) {
		t.Fatalf("single-pair sweep: NoiseFloor = %v, want the MAD fallback to engage", r.NoiseFloor)
	}
	// The MAD floor is documented as an upper bound under signal leakage
	// (sidelobes of a strong sparse signal lift the off-support cells),
	// so it must never read below the calibrated repeated-pair estimate
	// on the same link — conservatism is what keeps the gap stop from
	// engaging on an underestimated floor.
	rng := rand.New(rand.NewSource(6))
	link := testLink(rng, 18, []rf.Path{{Delay: 25e-9, Gain: 0.5}}, false)
	link.SNRdB = 26
	est := NewEstimator(Config{Mode: Bands5GHzOnly, MaxIter: 1500})
	r3, err := est.Estimate(bands, link.Sweep(rng, bands, 3, 2.4e-3))
	if err != nil {
		t.Fatal(err)
	}
	if r.NoiseFloor < r3.NoiseFloor {
		t.Errorf("fallback noiseRel %v below the pair-spread estimate %v; the upper-bound property broke",
			r.NoiseFloor, r3.NoiseFloor)
	}
	// And it tracks the link: a noisier link must not read cleaner.
	if lo, hi := single(26), single(8); hi.NoiseFloor < lo.NoiseFloor {
		t.Errorf("fallback at 8 dB (%v) reads below 26 dB (%v)", hi.NoiseFloor, lo.NoiseFloor)
	}
}
