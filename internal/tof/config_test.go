package tof

import (
	"math"
	"math/rand"
	"testing"

	"chronos/internal/rf"
	"chronos/internal/wifi"
)

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.MaxTau != 60e-9 || cfg.GridStep != 0.1e-9 {
		t.Errorf("grid defaults: %+v", cfg)
	}
	if cfg.PeakThreshold != 0.15 || cfg.SearchWindow != 12e-9 {
		t.Errorf("peak defaults: %+v", cfg)
	}
	if cfg.MaxIter != 1500 || cfg.AliasPeriod != 25e-9 {
		t.Errorf("solver defaults: %+v", cfg)
	}
}

func TestConfigExplicitValuesKept(t *testing.T) {
	cfg := Config{MaxTau: 1e-9, GridStep: 1e-12, PeakThreshold: 0.5,
		SearchWindow: 1e-9, MaxIter: 7, AliasPeriod: -1}.withDefaults()
	if cfg.MaxTau != 1e-9 || cfg.GridStep != 1e-12 || cfg.PeakThreshold != 0.5 ||
		cfg.SearchWindow != 1e-9 || cfg.MaxIter != 7 || cfg.AliasPeriod != -1 {
		t.Errorf("explicit values overridden: %+v", cfg)
	}
}

func TestEstimateAliasPeriodDisabled(t *testing.T) {
	// With AliasPeriod < 0 the hypothesis test is skipped entirely; on a
	// clean single path the answer must be unaffected.
	rng := rand.New(rand.NewSource(1))
	link := testLink(rng, 10, nil, false)
	bands := wifi.Bands5GHz()
	for _, alias := range []float64{-1, 25e-9} {
		est := calibrated(t, Config{Mode: Bands5GHzOnly, MaxIter: 800, AliasPeriod: alias}, link, rng, bands)
		sweep := link.Sweep(rng, bands, 3, 2.4e-3)
		got, err := est.Estimate(bands, sweep)
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(got.ToF - 10e-9); e > 0.5e-9 {
			t.Errorf("alias=%v: error %v", alias, e)
		}
	}
}

func TestEstimateAlphaFactorRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	link := testLink(rng, 8, []rf.Path{{Delay: 13e-9, Gain: 0.5}}, false)
	bands := wifi.Bands5GHz()
	for _, f := range []float64{0.3, 3} {
		est := calibrated(t, Config{Mode: Bands5GHzOnly, MaxIter: 800, AlphaFactor: f}, link, rng, bands)
		sweep := link.Sweep(rng, bands, 3, 2.4e-3)
		got, err := est.Estimate(bands, sweep)
		if err != nil {
			t.Fatalf("alpha factor %v: %v", f, err)
		}
		if e := math.Abs(got.ToF - 8e-9); e > 2e-9 {
			t.Errorf("alpha factor %v: error %v", f, e)
		}
	}
}

func TestEstimateCustomGrid(t *testing.T) {
	// A coarse grid must still find the path, just less precisely.
	rng := rand.New(rand.NewSource(3))
	link := testLink(rng, 12, nil, false)
	bands := wifi.Bands5GHz()
	est := calibrated(t, Config{Mode: Bands5GHzOnly, MaxIter: 600, GridStep: 0.5e-9, MaxTau: 30e-9}, link, rng, bands)
	sweep := link.Sweep(rng, bands, 3, 2.4e-3)
	got, err := est.Estimate(bands, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(got.ToF - 12e-9); e > 1e-9 {
		t.Errorf("coarse-grid error %v", e)
	}
}

func TestEstimateAliasNearZeroCandidate(t *testing.T) {
	// A target ~26 ns out places the k=−1 alias hypothesis within 2 ns of
	// zero, exercising the clamped refit window (the canonical [0, 24 ns]
	// plan with the shift clamped to lo=0). The disambiguation must keep
	// the true delay, not shift onto the near-zero ghost.
	rng := rand.New(rand.NewSource(9))
	link := testLink(rng, 26, nil, false)
	bands := wifi.Bands5GHz()
	est := calibrated(t, Config{Mode: Bands5GHzOnly, MaxIter: 1200}, link, rng, bands)
	sweep := link.Sweep(rng, bands, 3, 2.4e-3)
	got, err := est.Estimate(bands, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(got.ToF - 26e-9); e > 1e-9 {
		t.Errorf("near-clamp alias error %v ns", e*1e9)
	}
}

func TestSpanOfSingleFrequency(t *testing.T) {
	if got := spanOf([]float64{5e9}); got != wifi.BandwidthHT20 {
		t.Errorf("single-band span = %v, want channel bandwidth", got)
	}
	if got := spanOf([]float64{5e9, 5.1e9}); got != 0.1e9 {
		t.Errorf("span = %v", got)
	}
}
