package tof

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"chronos/internal/csi"
	"chronos/internal/rf"
	"chronos/internal/wifi"
)

func cleanRadio(rng *rand.Rand) *csi.Radio {
	r := csi.NewRadio(rng)
	r.PhaseJitterRad = 0
	r.QuantBits = 0
	r.Quirk24 = false
	r.Osc.HWPhase = 0
	r.Osc.HWDelayNs = 0
	return r
}

func band5() wifi.Band  { return wifi.Band{Channel: 36, Center: 5.18e9} }
func band24() wifi.Band { return wifi.Band{Channel: 1, Center: 2.412e9} }

func singlePath(tauNs float64) *rf.Channel {
	return rf.NewChannel([]rf.Path{{Delay: tauNs * 1e-9, Gain: 1}})
}

func TestZeroSubcarrierRemovesDetectionDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rx, tx := cleanRadio(rng), cleanRadio(rng)
	ch := singlePath(5)
	b := band5()

	// Measure twice with very different detection delays; the
	// zero-subcarrier estimates must agree in phase regardless.
	m1 := rx.Measure(rng, ch, b, csi.MeasureOptions{SNRdB: 60, TX: tx, DisableCFO: true})
	rx.DetectDelayMed = 400e-9 // force a very different delay
	m2 := rx.Measure(rng, ch, b, csi.MeasureOptions{SNRdB: 60, TX: tx, DisableCFO: true})

	z1, err := ZeroSubcarrier(m1, 1, InterpSpline)
	if err != nil {
		t.Fatal(err)
	}
	z2, err := ZeroSubcarrier(m2, 1, InterpSpline)
	if err != nil {
		t.Fatal(err)
	}
	truth := ch.Response(b.Center)
	for i, z := range []complex128{z1, z2} {
		diff := math.Abs(phaseDiff(cmplx.Phase(z), cmplx.Phase(truth)))
		if diff > 0.03 {
			t.Errorf("measurement %d: zero-subcarrier phase off by %v rad", i+1, diff)
		}
	}
}

func phaseDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	} else if d < -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

func TestZeroSubcarrierInterpNoneKeepsDelayError(t *testing.T) {
	// The ablation mode must NOT cancel detection delay: two captures
	// with different δ should disagree in phase.
	rng := rand.New(rand.NewSource(2))
	rx, tx := cleanRadio(rng), cleanRadio(rng)
	ch := singlePath(5)
	b := band5()
	m1 := rx.Measure(rng, ch, b, csi.MeasureOptions{SNRdB: 60, TX: tx, DisableCFO: true})
	rx.DetectDelayMed = 500e-9
	m2 := rx.Measure(rng, ch, b, csi.MeasureOptions{SNRdB: 60, TX: tx, DisableCFO: true})

	z1, _ := ZeroSubcarrier(m1, 1, InterpNone)
	z2, _ := ZeroSubcarrier(m2, 1, InterpNone)
	// The nearest-to-DC subcarrier (±1) keeps a ramp error of
	// 2π·312.5 kHz·δ, so the two captures (δ ≈ 177 vs ≈ 500 ns) should
	// disagree by roughly 2π·312.5e3·Δδ ≈ 0.6 rad.
	if d := math.Abs(phaseDiff(cmplx.Phase(z1), cmplx.Phase(z2))); d < 0.05 {
		t.Errorf("InterpNone phases agree to %v rad — delay unexpectedly cancelled", d)
	}
}

func TestZeroSubcarrierLinearClose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rx, tx := cleanRadio(rng), cleanRadio(rng)
	ch := singlePath(3)
	b := band5()
	m := rx.Measure(rng, ch, b, csi.MeasureOptions{SNRdB: 60, TX: tx, DisableCFO: true})
	zs, _ := ZeroSubcarrier(m, 1, InterpSpline)
	zl, _ := ZeroSubcarrier(m, 1, InterpLinear)
	if d := math.Abs(phaseDiff(cmplx.Phase(zs), cmplx.Phase(zl))); d > 0.1 {
		t.Errorf("spline and linear differ by %v rad on a clean channel", d)
	}
}

func TestZeroSubcarrierMalformed(t *testing.T) {
	if _, err := ZeroSubcarrier(csi.Measurement{}, 1, InterpSpline); err == nil {
		t.Error("empty measurement accepted")
	}
	if _, err := ZeroSubcarrier(csi.Measurement{Subcarriers: []int{1, 2}, Values: make([]complex128, 2)}, 1, InterpMode(99)); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestBandValueCancelsCFO(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rx, tx := cleanRadio(rng), cleanRadio(rng)
	tx.ResidualCFOHz, rx.ResidualCFOHz = 45, -25
	link := &csi.Link{TX: tx, RX: rx, Channel: singlePath(6), SNRdB: 60}
	b := band5()

	// Collect pairs at two very different times: CFO phase drifts a lot
	// between them, but the products must agree.
	p1 := link.MeasurePair(rng, b, 0.001)
	p2 := link.MeasurePair(rng, b, 0.050)
	v1, pow1, err := BandValue([]csi.Pair{p1}, false, InterpSpline, false)
	if err != nil {
		t.Fatal(err)
	}
	v2, pow2, err := BandValue([]csi.Pair{p2}, false, InterpSpline, false)
	if err != nil {
		t.Fatal(err)
	}
	if pow1 != 2 || pow2 != 2 {
		t.Fatalf("power = %d, %d, want 2", pow1, pow2)
	}
	if d := math.Abs(phaseDiff(cmplx.Phase(v1), cmplx.Phase(v2))); d > 0.05 {
		t.Errorf("CFO not cancelled: products differ by %v rad", d)
	}
	truth := link.Channel.Response(b.Center)
	if d := math.Abs(phaseDiff(cmplx.Phase(v1), cmplx.Phase(truth*truth))); d > 0.05 {
		t.Errorf("product phase off truth² by %v rad", d)
	}
}

func TestBandValueForwardOnlyKeepsCFOError(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rx, tx := cleanRadio(rng), cleanRadio(rng)
	tx.ResidualCFOHz, rx.ResidualCFOHz = 45, -25
	link := &csi.Link{TX: tx, RX: rx, Channel: singlePath(6), SNRdB: 60}
	b := band5()
	p1 := link.MeasurePair(rng, b, 0.001)
	p2 := link.MeasurePair(rng, b, 0.050)
	v1, pow, _ := BandValue([]csi.Pair{p1}, false, InterpSpline, true)
	v2, _, _ := BandValue([]csi.Pair{p2}, false, InterpSpline, true)
	if pow != 1 {
		t.Fatalf("forward-only power = %d, want 1", pow)
	}
	if d := math.Abs(phaseDiff(cmplx.Phase(v1), cmplx.Phase(v2))); d < 0.1 {
		t.Errorf("forward-only phases agree to %v rad — CFO unexpectedly cancelled", d)
	}
}

func TestBandValueQuirked24GHz(t *testing.T) {
	// With the quirk active the band value must equal h̃⁸ in phase.
	rng := rand.New(rand.NewSource(6))
	rx, tx := cleanRadio(rng), cleanRadio(rng)
	rx.Quirk24, tx.Quirk24 = true, true
	link := &csi.Link{TX: tx, RX: rx, Channel: singlePath(4), SNRdB: 60, DisableCFO: true}
	b := band24()
	p := link.MeasurePair(rng, b, 0.001)
	v, pow, err := BandValue([]csi.Pair{p}, true, InterpSpline, false)
	if err != nil {
		t.Fatal(err)
	}
	if pow != 8 {
		t.Fatalf("power = %d, want 8", pow)
	}
	truth := link.Channel.Response(b.Center)
	t8 := complex(1, 0)
	for i := 0; i < 8; i++ {
		t8 *= truth
	}
	if d := math.Abs(phaseDiff(cmplx.Phase(v), cmplx.Phase(t8))); d > 0.1 {
		t.Errorf("quirked product phase off truth⁸ by %v rad", d)
	}
}

func TestBandValueAveragingReducesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rx, tx := cleanRadio(rng), cleanRadio(rng)
	link := &csi.Link{TX: tx, RX: rx, Channel: singlePath(5), SNRdB: 15}
	b := band5()
	truth := link.Channel.Response(b.Center)
	truePh := cmplx.Phase(truth * truth)

	spread := func(pairsPer int) float64 {
		var errs []float64
		for trial := 0; trial < 40; trial++ {
			pairs := make([]csi.Pair, pairsPer)
			for i := range pairs {
				pairs[i] = link.MeasurePair(rng, b, float64(trial)*1e-3+float64(i)*1e-4)
			}
			v, _, err := BandValue(pairs, false, InterpSpline, false)
			if err != nil {
				t.Fatal(err)
			}
			errs = append(errs, math.Abs(phaseDiff(cmplx.Phase(v), truePh)))
		}
		var s float64
		for _, e := range errs {
			s += e
		}
		return s / float64(len(errs))
	}
	if one, ten := spread(1), spread(10); ten >= one {
		t.Errorf("averaging did not reduce phase error: 1 pair %v vs 10 pairs %v", one, ten)
	}
}

func TestBandValueEmpty(t *testing.T) {
	if _, _, err := BandValue(nil, false, InterpSpline, false); err == nil {
		t.Error("empty pairs accepted")
	}
}

func TestIsQuirked(t *testing.T) {
	if IsQuirked(band24(), false) {
		t.Error("quirk reported with quirk disabled")
	}
	if !IsQuirked(band24(), true) {
		t.Error("2.4 GHz band not quirked")
	}
	if IsQuirked(band5(), true) {
		t.Error("5 GHz band quirked")
	}
}
