package tof

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"chronos/internal/ndft"
	"chronos/internal/wifi"
)

func TestPlanKeyDistinguishesGeometries(t *testing.T) {
	freqs := []float64{5.18e9, 5.2e9, 5.22e9}
	base := newPlanKey(freqs, 2, 60e-9, 0.1e-9)
	if newPlanKey(freqs, 2, 60e-9, 0.1e-9) != base {
		t.Error("identical geometry produced different keys")
	}
	variants := []planKey{
		newPlanKey(freqs, 8, 60e-9, 0.1e-9),
		newPlanKey(freqs[:2], 2, 60e-9, 0.1e-9),
		newPlanKey([]float64{5.18e9, 5.2e9, 5.24e9}, 2, 60e-9, 0.1e-9),
		newPlanKey(freqs, 2, 30e-9, 0.1e-9),
		newPlanKey(freqs, 2, 60e-9, 0.2e-9),
	}
	for i, k := range variants {
		if k == base {
			t.Errorf("variant %d collided with base key", i)
		}
	}
	window := base
	window.window = true
	if window == base {
		t.Error("window key collided with group key")
	}
}

// TestPlanRegistryConcurrentSingleBuild is the registry acceptance test:
// N goroutines estimating over the same band grid must resolve to one
// shared plan per geometry, built exactly once, with every goroutine
// producing the identical estimate. Run under -race this also proves the
// registry and shared-plan solves are data-race free.
func TestPlanRegistryConcurrentSingleBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	link := testLink(rng, 9, nil, false)
	bands := wifi.Bands5GHz()
	sweep := link.Sweep(rng, bands, 2, 2.4e-3)

	reg := newPlanRegistry()
	cfg := Config{Mode: Bands5GHzOnly, MaxIter: 600}.withDefaults()

	const workers = 16
	var wg sync.WaitGroup
	tofs := make([]float64, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each goroutine gets its own Estimator (the public contract),
			// all sharing one registry — the exp worker-pool shape.
			est := &Estimator{cfg: cfg, plans: reg}
			r, err := est.Estimate(bands, sweep)
			if err != nil {
				errs[w] = err
				return
			}
			tofs[w] = r.ToF
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatal(errs[w])
		}
		if tofs[w] != tofs[0] {
			t.Errorf("worker %d ToF %v != worker 0 ToF %v", w, tofs[w], tofs[0])
		}
	}
	// One 5 GHz group geometry plus its alias-disambiguation window.
	if n := reg.size(); n != 2 {
		t.Errorf("registry holds %d plans, want 2 (group + alias window)", n)
	}
	if b := reg.buildCount(); b != 2 {
		t.Errorf("registry built %d plans for %d workers, want 2", b, workers)
	}
}

func TestPlanRegistryCachesErrors(t *testing.T) {
	reg := newPlanRegistry()
	key := newPlanKey([]float64{1e9}, 2, 60e-9, 0.1e-9)
	build := func() (*ndft.Plan, error) { return ndft.NewPlan(nil, nil) }
	if _, err := reg.planFor(key, build); err == nil {
		t.Fatal("invalid build succeeded")
	}
	if _, err := reg.planFor(key, build); err == nil {
		t.Fatal("cached error lost")
	}
	if b := reg.buildCount(); b != 1 {
		t.Errorf("failed build ran %d times, want 1", b)
	}
}

// TestSweepWarmStartEquivalence pins the upper-layer warm-start contract:
// a warm-started sweep stream and a cold one over the same measurement
// cycles must produce matching ToF fixes (within the solver's convergence
// tolerance, ≪ the 0.1 ns grid step).
func TestSweepWarmStartEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	link := testLink(rng, 11, nil, false)
	bands := wifi.Bands5GHz()

	// Both arms fold the identical measurement stream, cycle by cycle.
	est := NewEstimator(Config{Mode: Bands5GHzOnly, MaxIter: 1200})
	cold := est.NewSweep()
	warm := est.NewSweep()
	warm.SetWarmStart(true)

	for cycle := 0; cycle < 3; cycle++ {
		sweep := link.Sweep(rng, bands, 2, 2.4e-3)
		for i, b := range bands {
			if err := cold.AddBand(b, sweep[i]); err != nil {
				t.Fatal(err)
			}
			if err := warm.AddBand(b, sweep[i]); err != nil {
				t.Fatal(err)
			}
		}
		rc, err := cold.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		rw, err := warm.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(rc.ToF - rw.ToF); d > 0.05e-9 {
			t.Errorf("cycle %d: warm ToF %v differs from cold %v by %v ns", cycle, rw.ToF, rc.ToF, d*1e9)
		}
		cold.Reset()
		warm.Reset()
	}
}
