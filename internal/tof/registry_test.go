package tof

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"chronos/internal/ndft"
	"chronos/internal/wifi"
)

func TestPlanKeyDistinguishesGeometries(t *testing.T) {
	freqs := []float64{5.18e9, 5.2e9, 5.22e9}
	base := newPlanKey(freqs, 2, 60e-9, 0.1e-9)
	if newPlanKey(freqs, 2, 60e-9, 0.1e-9) != base {
		t.Error("identical geometry produced different keys")
	}
	variants := []planKey{
		newPlanKey(freqs, 8, 60e-9, 0.1e-9),
		newPlanKey(freqs[:2], 2, 60e-9, 0.1e-9),
		newPlanKey([]float64{5.18e9, 5.2e9, 5.24e9}, 2, 60e-9, 0.1e-9),
		newPlanKey(freqs, 2, 30e-9, 0.1e-9),
		newPlanKey(freqs, 2, 60e-9, 0.2e-9),
	}
	for i, k := range variants {
		if k == base {
			t.Errorf("variant %d collided with base key", i)
		}
	}
	window := base
	window.window = true
	if window == base {
		t.Error("window key collided with group key")
	}
}

// TestPlanRegistryConcurrentSingleBuild is the registry acceptance test:
// N goroutines estimating over the same band grid must resolve to one
// shared plan per geometry, built exactly once, with every goroutine
// producing the identical estimate. Run under -race this also proves the
// registry and shared-plan solves are data-race free.
func TestPlanRegistryConcurrentSingleBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	link := testLink(rng, 9, nil, false)
	bands := wifi.Bands5GHz()
	sweep := link.Sweep(rng, bands, 2, 2.4e-3)

	reg := newPlanRegistry(0)
	cfg := Config{Mode: Bands5GHzOnly, MaxIter: 600}.withDefaults()

	const workers = 16
	var wg sync.WaitGroup
	tofs := make([]float64, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each goroutine gets its own Estimator (the public contract),
			// all sharing one registry — the exp worker-pool shape.
			est := &Estimator{cfg: cfg, plans: reg}
			r, err := est.Estimate(bands, sweep)
			if err != nil {
				errs[w] = err
				return
			}
			tofs[w] = r.ToF
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatal(errs[w])
		}
		if tofs[w] != tofs[0] {
			t.Errorf("worker %d ToF %v != worker 0 ToF %v", w, tofs[w], tofs[0])
		}
	}
	// One 5 GHz group geometry plus its alias-disambiguation window.
	if n := reg.size(); n != 2 {
		t.Errorf("registry holds %d plans, want 2 (group + alias window)", n)
	}
	if b := reg.buildCount(); b != 2 {
		t.Errorf("registry built %d plans for %d workers, want 2", b, workers)
	}
}

func TestPlanRegistryCachesErrors(t *testing.T) {
	reg := newPlanRegistry(0)
	key := newPlanKey([]float64{1e9}, 2, 60e-9, 0.1e-9)
	build := func() (*ndft.Plan, error) { return ndft.NewPlan(nil, nil) }
	if _, err := reg.planFor(key, build); err == nil {
		t.Fatal("invalid build succeeded")
	}
	if _, err := reg.planFor(key, build); err == nil {
		t.Fatal("cached error lost")
	}
	if b := reg.buildCount(); b != 1 {
		t.Errorf("failed build ran %d times, want 1", b)
	}
}

// TestSweepWarmStartEquivalence pins the upper-layer warm-start contract:
// a warm-started sweep stream and a cold one over the same measurement
// cycles must produce matching ToF fixes (within the solver's convergence
// tolerance, ≪ the 0.1 ns grid step).
func TestSweepWarmStartEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	link := testLink(rng, 11, nil, false)
	bands := wifi.Bands5GHz()

	// Both arms fold the identical measurement stream, cycle by cycle.
	est := NewEstimator(Config{Mode: Bands5GHzOnly, MaxIter: 1200})
	cold := est.NewSweep()
	warm := est.NewSweep()
	warm.SetWarmStart(true)

	for cycle := 0; cycle < 3; cycle++ {
		sweep := link.Sweep(rng, bands, 2, 2.4e-3)
		for i, b := range bands {
			if err := cold.AddBand(b, sweep[i]); err != nil {
				t.Fatal(err)
			}
			if err := warm.AddBand(b, sweep[i]); err != nil {
				t.Fatal(err)
			}
		}
		rc, err := cold.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		rw, err := warm.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(rc.ToF - rw.ToF); d > 0.05e-9 {
			t.Errorf("cycle %d: warm ToF %v differs from cold %v by %v ns", cycle, rw.ToF, rc.ToF, d*1e9)
		}
		cold.Reset()
		warm.Reset()
	}
}

// TestPlanRegistryLRUEviction exercises the occupancy bound: filling a
// small registry past maxPlans evicts the least-recently-used geometry,
// stats reflect it, and an evicted geometry is rebuilt correctly on the
// next request.
func TestPlanRegistryLRUEviction(t *testing.T) {
	reg := newPlanRegistry(3)
	build := func(maxTau float64) func() (*ndft.Plan, error) {
		return func() (*ndft.Plan, error) {
			return ndft.NewPlan([]float64{5.18e9, 5.2e9, 5.22e9}, ndft.TauGrid(maxTau, 1e-9))
		}
	}
	keys := make([]planKey, 5)
	for i := range keys {
		maxTau := float64(i+1) * 10e-9
		keys[i] = newPlanKey([]float64{5.18e9, 5.2e9, 5.22e9}, 2, maxTau, 1e-9)
		if _, err := reg.planFor(keys[i], build(maxTau)); err != nil {
			t.Fatal(err)
		}
	}
	st := reg.stats()
	if st.Plans != 3 || st.MaxPlans != 3 {
		t.Errorf("stats plans = %d (max %d), want 3", st.Plans, st.MaxPlans)
	}
	if st.Builds != 5 || st.Evictions != 2 {
		t.Errorf("builds = %d evictions = %d, want 5 and 2", st.Builds, st.Evictions)
	}
	if st.Bytes <= 0 {
		t.Errorf("resident bytes = %d, want > 0", st.Bytes)
	}
	// keys[0] was evicted (least recently used): requesting it again
	// must rebuild a correct plan, not resurrect stale state.
	plan, err := reg.planFor(keys[0], build(10e-9))
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Taus[len(plan.Taus)-1]; got > 10e-9+1e-12 {
		t.Errorf("rebuilt plan has wrong grid end %v", got)
	}
	if b := reg.buildCount(); b != 6 {
		t.Errorf("builds after re-request = %d, want 6", b)
	}
	// Touch keys[3] (making keys[2] the LRU), insert a new geometry, and
	// confirm recency was honored.
	if _, err := reg.planFor(keys[3], build(40e-9)); err != nil {
		t.Fatal(err)
	}
	k5 := newPlanKey([]float64{5.18e9, 5.2e9, 5.22e9}, 2, 70e-9, 1e-9)
	if _, err := reg.planFor(k5, build(70e-9)); err != nil {
		t.Fatal(err)
	}
	reg.mu.RLock()
	_, lruGone := reg.entries[keys[2]]
	_, kept3 := reg.entries[keys[3]]
	reg.mu.RUnlock()
	if lruGone || !kept3 {
		t.Errorf("LRU order not honored: keys[2] present=%v keys[3] present=%v", lruGone, kept3)
	}
}

// TestSetCapRebounds pins the runtime rebound lever the service soak
// leans on: shrinking the cap evicts down to the new bound immediately,
// the previous bound is returned for restore, and growing it back does
// not resurrect evicted entries.
func TestSetCapRebounds(t *testing.T) {
	reg := newPlanRegistry(4)
	build := func(maxTau float64) func() (*ndft.Plan, error) {
		return func() (*ndft.Plan, error) {
			return ndft.NewPlan([]float64{5.18e9, 5.2e9, 5.22e9}, ndft.TauGrid(maxTau, 1e-9))
		}
	}
	for i := 0; i < 4; i++ {
		maxTau := float64(i+1) * 10e-9
		k := newPlanKey([]float64{5.18e9, 5.2e9, 5.22e9}, 2, maxTau, 1e-9)
		if _, err := reg.planFor(k, build(maxTau)); err != nil {
			t.Fatal(err)
		}
	}
	if prev := reg.setCap(2); prev != 4 {
		t.Errorf("setCap returned %d, want previous bound 4", prev)
	}
	st := reg.stats()
	if st.Plans != 2 || st.MaxPlans != 2 || st.Evictions != 2 {
		t.Errorf("after shrink: plans=%d max=%d evictions=%d, want 2/2/2", st.Plans, st.MaxPlans, st.Evictions)
	}
	if prev := reg.setCap(0); prev != 2 {
		t.Errorf("setCap(0) returned %d, want 2", prev)
	}
	if st = reg.stats(); st.MaxPlans != defaultMaxPlans || st.Plans != 2 {
		t.Errorf("after restore: plans=%d max=%d, want 2 resident at default bound", st.Plans, st.MaxPlans)
	}
}

// TestSetSharedPlanCap exercises the exported lever on the process-wide
// registry, restoring the bound afterward so other tests are unaffected.
func TestSetSharedPlanCap(t *testing.T) {
	prev := SetSharedPlanCap(7)
	defer SetSharedPlanCap(prev)
	if got := SharedRegistryStats().MaxPlans; got != 7 {
		t.Errorf("shared MaxPlans = %d, want 7", got)
	}
	if back := SetSharedPlanCap(prev); back != 7 {
		t.Errorf("restore returned %d, want 7", back)
	}
	SetSharedPlanCap(prev)
}

// TestPlanRegistryEvictionUnderRace hammers a bound-1 registry from many
// goroutines over more geometries than it can hold: every caller must
// still get a plan with its own geometry (an in-flight holder of an
// evicted entry keeps using it safely), and under -race this doubles as
// the eviction data-race check.
func TestPlanRegistryEvictionUnderRace(t *testing.T) {
	reg := newPlanRegistry(1)
	const workers, geoms = 8, 4
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				g := (w + i) % geoms
				maxTau := float64(g+1) * 10e-9
				key := newPlanKey([]float64{5.18e9, 5.2e9}, 2, maxTau, 1e-9)
				plan, err := reg.planFor(key, func() (*ndft.Plan, error) {
					return ndft.NewPlan([]float64{5.18e9, 5.2e9}, ndft.TauGrid(maxTau, 1e-9))
				})
				if err != nil {
					errs[w] = err
					return
				}
				if got := plan.Taus[len(plan.Taus)-1]; math.Abs(got-maxTau) > 1e-9+1e-12 {
					errs[w] = fmt.Errorf("geometry mismatch: grid end %v for maxTau %v", got, maxTau)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := reg.stats()
	if st.Plans > 1 {
		t.Errorf("bound-1 registry holds %d plans", st.Plans)
	}
	if st.Evictions == 0 {
		t.Error("no evictions recorded under churn")
	}
}

func TestSharedRegistryStats(t *testing.T) {
	// Resolve a plan through the shared registry so the snapshot must
	// report activity regardless of test ordering.
	key := newPlanKey([]float64{5.19e9, 5.21e9, 5.23e9}, 2, 12e-9, 1e-9)
	if _, err := sharedPlans.planFor(key, func() (*ndft.Plan, error) {
		return ndft.NewPlan([]float64{5.19e9, 5.21e9, 5.23e9}, ndft.TauGrid(12e-9, 1e-9))
	}); err != nil {
		t.Fatal(err)
	}
	st := SharedRegistryStats()
	if st.MaxPlans <= 0 {
		t.Errorf("shared registry has no bound: %+v", st)
	}
	if st.Plans < 1 || st.Builds < 1 || st.Bytes <= 0 {
		t.Errorf("shared registry reports no activity: %+v", st)
	}
}
