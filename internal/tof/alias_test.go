package tof

import (
	"math"
	"math/rand"
	"testing"

	"chronos/internal/csi"
	"chronos/internal/ndft"
	"chronos/internal/rf"
	"chronos/internal/wifi"
)

// ghostScenario is one deep-NLOS geometry whose LASSO optimum strands
// direct-path mass on a ±25 ns grating-lobe ghost vertex of the
// degenerate face: the PR-3 ablate-delay regression, distilled into a
// deterministic fixture. Seeds are pinned to draws where the solver's
// trajectory demonstrably lands on the ghost (Go's rand is stable, so
// these reproduce bit-for-bit). These scenarios run at 12 dB, above the
// estimator's gap-noise ceiling, so the noise-adaptive stop of PR 5
// defers to the precise iterate rule here and the PR-4 draws remain
// valid specimens.
type ghostScenario struct {
	name    string
	direct  float64 // ns
	extra   []rf.Path
	snr     float64
	maxIter int
	seed    int64
}

func ghostScenarios() []ghostScenario {
	weak := []rf.Path{{Delay: 37e-9, Gain: 1.8}, {Delay: 42e-9, Gain: 1.0}}
	deep := []rf.Path{{Delay: 49e-9, Gain: 1.2}}
	return []ghostScenario{
		{"weak-direct/6", 30, weak, 12, 400, 6},
		{"weak-direct/8", 30, weak, 12, 400, 8},
		{"weak-direct/42", 30, weak, 12, 400, 42},
		{"weak-direct/114", 30, weak, 12, 400, 114},
		{"deep/114", 44, deep, 12, 500, 114},
	}
}

// ghostMeasure produces the scenario's sweep and the true direct delay
// including the pair's hardware-chain bias (the fixture asserts raw
// estimates, so the hardware delay is part of the truth).
func (sc ghostScenario) measure() (bands []wifi.Band, sweep [][]csi.Pair, trueNs float64) {
	rng := rand.New(rand.NewSource(sc.seed))
	link := testLink(rng, sc.direct, sc.extra, false)
	link.SNRdB = sc.snr
	bands = wifi.Bands5GHz()
	sweep = link.Sweep(rng, bands, 3, 2.4e-3)
	return bands, sweep, sc.direct + link.TX.Osc.HWDelayNs + link.RX.Osc.HWDelayNs
}

// TestAliasFamilyRecoversGhostVertices is the alias-family acceptance
// fixture: on each pinned deep-NLOS draw, vertex ranking returns a
// ghost (an error beyond half the 25 ns alias period) while family
// ranking recovers the true alias cell.
func TestAliasFamilyRecoversGhostVertices(t *testing.T) {
	for _, sc := range ghostScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			bands, sweep, trueNs := sc.measure()
			estFor := func(rk PeakRanking) float64 {
				est := NewEstimator(Config{Mode: Bands5GHzOnly, MaxIter: sc.maxIter, Ranking: rk})
				r, err := est.Estimate(bands, sweep)
				if err != nil {
					t.Fatal(err)
				}
				return math.Abs(r.ToF*1e9 - trueNs)
			}
			vErr := estFor(RankVertex)
			fErr := estFor(RankFamilies)
			if vErr <= 12.5 {
				t.Errorf("vertex ranking error %.2f ns — fixture no longer exhibits the ghost (solver changed?); re-pin seeds", vErr)
			}
			if fErr >= 12.5 {
				t.Errorf("family ranking error %.2f ns — ghost not recovered (vertex: %.2f ns)", fErr, vErr)
			}
			if fErr >= 6 {
				t.Errorf("family ranking error %.2f ns, want < 6 ns (right alias cell, modest NLOS blur)", fErr)
			}
		})
	}
}

// TestAliasFamilyMatchesVertexOnCleanLinks pins the conservative-
// extension contract: on clean LOS links the family chain must return
// exactly what the vertex chain returns — its extra machinery may only
// engage on decisive evidence.
func TestAliasFamilyMatchesVertexOnCleanLinks(t *testing.T) {
	bands := wifi.Bands5GHz()
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		link := testLink(rng, 10+float64(seed)*3, []rf.Path{{Delay: 30e-9, Gain: 0.5}}, false)
		sweep := link.Sweep(rng, bands, 3, 2.4e-3)
		var tofs [2]float64
		for i, rk := range []PeakRanking{RankVertex, RankFamilies} {
			est := NewEstimator(Config{Mode: Bands5GHzOnly, MaxIter: 1000, Ranking: rk})
			r, err := est.Estimate(bands, sweep)
			if err != nil {
				t.Fatal(err)
			}
			tofs[i] = r.ToF
		}
		if d := math.Abs(tofs[0]-tofs[1]) * 1e9; d > 0.05 {
			t.Errorf("seed %d: family ToF differs from vertex by %.3f ns on a clean link", seed, d)
		}
	}
}

// TestAliasWarmRefitCost pins the warm-start acceptance criterion: over
// a steady sweep stream, warm-seeded alias-window refits must cost at
// most 75% of the cold refits (they measure ~50% in practice), while
// producing the same fixes.
func TestAliasWarmRefitCost(t *testing.T) {
	bands := wifi.Bands5GHz()
	rng := rand.New(rand.NewSource(21))
	link := testLink(rng, 23, []rf.Path{{Delay: 27.2e-9, Gain: 0.6}, {Delay: 32.5e-9, Gain: 0.4}}, false)
	link.SNRdB = 26

	est := NewEstimator(Config{Mode: Bands5GHzOnly, MaxIter: 1200})
	cold := est.NewSweep()
	warm := est.NewSweep()
	warm.SetWarmStart(true)

	var coldAlias, warmAlias []int64
	for s := 0; s < 6; s++ {
		sweep := link.Sweep(rng, bands, 3, 2.4e-3)
		for i, b := range bands {
			if err := cold.AddBand(b, sweep[i]); err != nil {
				t.Fatal(err)
			}
			if err := warm.AddBand(b, sweep[i]); err != nil {
				t.Fatal(err)
			}
		}
		rc, err := cold.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		rw, err := warm.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(rc.ToF-rw.ToF) * 1e9; d > 0.05 {
			t.Errorf("sweep %d: warm ToF differs from cold by %.3f ns", s, d)
		}
		if s > 0 { // the first warm sweep has nothing to warm from
			coldAlias = append(coldAlias, rc.AliasWork)
			warmAlias = append(warmAlias, rw.AliasWork)
		}
		cold.Reset()
		warm.Reset()
	}
	var cSum, wSum int64
	for i := range coldAlias {
		cSum += coldAlias[i]
		wSum += warmAlias[i]
	}
	if cSum == 0 {
		t.Fatal("no alias work recorded")
	}
	if ratio := float64(wSum) / float64(cSum); ratio > 0.75 {
		t.Errorf("warm alias work ratio %.3f, want ≤ 0.75 (cold %d, warm %d)", ratio, cSum, wSum)
	}
}

// TestTranslateWarmKeepsSeedsProfitable exercises the velocity
// feed-forward on a target drifting a full 1 ns (10 grid cells, beyond
// the solver's working-set dilation) per sweep: untranslated warm seeds
// miss the moved optimum, while translated seeds keep most sweeps on
// the restricted fast path — at identical fixes.
func TestTranslateWarmKeepsSeedsProfitable(t *testing.T) {
	bands := wifi.Bands5GHz()
	const driftNs = 1.0
	run := func(translate bool) (total int64, tofs []float64) {
		rng := rand.New(rand.NewSource(9))
		link := testLink(rng, 18, nil, false)
		link.SNRdB = 28
		est := NewEstimator(Config{Mode: Bands5GHzOnly, MaxIter: 1200})
		acc := est.NewSweep()
		acc.SetWarmStart(true)
		tau := 18.0
		for s := 0; s < 8; s++ {
			link.Channel = rf.NewChannel([]rf.Path{
				{Delay: tau * 1e-9, Gain: 1},
				{Delay: (tau + 4.2) * 1e-9, Gain: 0.6},
			})
			sweep := link.Sweep(rng, bands, 3, 2.4e-3)
			for i, b := range bands {
				if err := acc.AddBand(b, sweep[i]); err != nil {
					t.Fatal(err)
				}
			}
			r, err := acc.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			total += r.Work
			tofs = append(tofs, r.ToF*1e9)
			acc.Reset()
			if translate {
				acc.TranslateWarm(driftNs * 1e-9)
			}
			tau += driftNs
		}
		return total, tofs
	}
	staticWork, staticToFs := run(false)
	transWork, transToFs := run(true)
	for i := range staticToFs {
		if d := math.Abs(staticToFs[i] - transToFs[i]); d > 0.1 {
			t.Errorf("sweep %d: translated ToF %.3f differs from untranslated %.3f", i, transToFs[i], staticToFs[i])
		}
	}
	if transWork >= staticWork*3/4 {
		t.Errorf("translated warm work %d not clearly below untranslated %d", transWork, staticWork)
	}
}

// TestAliasWeights checks the discrimination weighting: on-raster bands
// get zero weight, off-raster bands positive, and a pure-raster geometry
// (every 2.4 GHz channel shares one fractional rotation) reports nil —
// no discrimination.
func TestAliasWeights(t *testing.T) {
	// 5 GHz: channels divisible by 4 sit on the 20 MHz raster (f·2·25ns
	// integer); U-NII-3 odd channels sit off it.
	w := aliasWeights([]float64{5.18e9, 5.2e9, 5.745e9, 5.825e9}, 2, 25e-9)
	if w == nil {
		t.Fatal("discriminating geometry reported nil weights")
	}
	if w[0] > 1e-9 || w[1] > 1e-9 {
		t.Errorf("on-raster bands weighted: %v", w[:2])
	}
	if w[2] < 0.4 || w[3] < 0.4 {
		t.Errorf("off-raster bands under-weighted: %v", w[2:])
	}
	// 2.4 GHz h̃⁸: every channel center is 2407+5k MHz, so f·8·25ns has
	// the same fractional part for all — a period shift is a global
	// phase the profile absorbs, and no band discriminates relative to
	// any other... but the shared fraction is nonzero, so the weights
	// are uniformly positive. The true no-discrimination case is a set
	// where every f·p·P is an integer.
	w = aliasWeights([]float64{5.18e9, 5.2e9, 5.5e9}, 2, 25e-9)
	if w != nil {
		t.Errorf("pure-raster geometry got weights %v, want nil", w)
	}
}

// TestFoldMassConservation pins the fold invariant the ranking rests on.
func TestFoldMassConservation(t *testing.T) {
	mag := make([]float64, 601)
	rng := rand.New(rand.NewSource(1))
	var want float64
	for i := range mag {
		mag[i] = rng.Float64()
		want += mag[i]
	}
	fold := ndft.FoldMass(nil, mag, 250)
	if len(fold) != 250 {
		t.Fatalf("fold length %d, want 250", len(fold))
	}
	var got float64
	for _, v := range fold {
		got += v
	}
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("folded mass %v != total mass %v", got, want)
	}
}

// TestWindowWarmStateFamilyStable is the unit regression for the PR-4
// warm-key collision: seeds are labeled by the candidate delay they
// track, so two hypotheses whose candidates share a period cell — the
// deep-NLOS two-dominant-families case, which the old period-index
// labels mapped to one clobbered slot — keep distinct warm states,
// while one hypothesis drifting between sweeps keeps matching its own
// seed.
func TestWindowWarmStateFamilyStable(t *testing.T) {
	est := NewEstimator(Config{Mode: Bands5GHzOnly})
	s := est.NewSweep()
	s.SetWarmStart(true)
	key := planKey{power: 2, window: true}

	// Two families in period cell 1 (old labels: both round(c/25ns)=1).
	a := s.windowWarmState(key, 30e-9)
	b := s.windowWarmState(key, 37e-9)
	if a == b {
		t.Fatal("candidates 30 ns and 37 ns share one warm state (period-index collision)")
	}
	// A drifted revisit matches the original seed, not a fresh one.
	if got := s.windowWarmState(key, 30.4e-9); got != a {
		t.Error("0.4 ns drift did not match the tracked seed")
	}
	// The matched seed re-anchors: a further drift from the new position
	// still matches.
	if got := s.windowWarmState(key, 30.9e-9); got != a {
		t.Error("re-anchored seed lost its hypothesis after cumulative drift")
	}
	// The other family's seed is untouched by the drift updates.
	if got := s.windowWarmState(key, 37e-9); got != b {
		t.Error("neighbor family's seed was disturbed")
	}
	// Same residue one period apart is a different hypothesis.
	if got := s.windowWarmState(key, 55e-9); got == a || got == b {
		t.Error("candidate one period away reused another hypothesis's seed")
	}
	// Warm starting off: no state.
	s.SetWarmStart(false)
	if s.windowWarmState(key, 30e-9) != nil {
		t.Error("warm state handed out while warm starting is off")
	}
}

// TestWindowWarmStateEviction pins the per-geometry seed bound: the
// least-recently-matched seed is recycled once windowSeedMax distinct
// hypotheses accumulate.
func TestWindowWarmStateEviction(t *testing.T) {
	est := NewEstimator(Config{Mode: Bands5GHzOnly})
	s := est.NewSweep()
	s.SetWarmStart(true)
	key := planKey{power: 2, window: true}
	first := s.windowWarmState(key, 5e-9)
	s.estSeq++
	for i := 1; i < windowSeedMax; i++ {
		s.windowWarmState(key, float64(i)*60e-9)
	}
	if len(s.warmWindows[key]) != windowSeedMax {
		t.Fatalf("seed count %d, want %d", len(s.warmWindows[key]), windowSeedMax)
	}
	// The next unmatched candidate recycles the stalest seed (the first,
	// stamped at an older estSeq).
	got := s.windowWarmState(key, 2000e-9)
	if got != first {
		t.Error("eviction did not recycle the least-recently-matched seed")
	}
	if len(s.warmWindows[key]) != windowSeedMax {
		t.Errorf("eviction grew the list to %d", len(s.warmWindows[key]))
	}
}

// TestCollidingFamiliesKeepWarm is the PR-5 acceptance fixture for
// family-stable warm keys: a deep-NLOS multipath geometry (weak direct
// under two strong late reflections) whose refit candidates land two
// alias hypotheses in one period cell. Under the PR-4 period-index
// labels those hypotheses clobbered each other's seeds every sweep and
// the efficacy policy reverted exactly these refits to cold; with
// candidate-keyed seeds the stream must hold warm alias work at or
// below 75% of cold while producing identical fixes.
func TestCollidingFamiliesKeepWarm(t *testing.T) {
	bands := wifi.Bands5GHz()
	rng := rand.New(rand.NewSource(9))
	link := testLink(rng, 30, []rf.Path{{Delay: 37e-9, Gain: 1.8}, {Delay: 42e-9, Gain: 1.0}}, false)
	link.SNRdB = 26

	est := NewEstimator(Config{Mode: Bands5GHzOnly, MaxIter: 1200})
	cold := est.NewSweep()
	warm := est.NewSweep()
	warm.SetWarmStart(true)

	var coldWork, warmWork int64
	for s := 0; s < 6; s++ {
		sweep := link.Sweep(rng, bands, 3, 2.4e-3)
		for i, b := range bands {
			if err := cold.AddBand(b, sweep[i]); err != nil {
				t.Fatal(err)
			}
			if err := warm.AddBand(b, sweep[i]); err != nil {
				t.Fatal(err)
			}
		}
		rc, err := cold.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		rw, err := warm.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(rc.ToF-rw.ToF) * 1e9; d > 0.05 {
			t.Errorf("sweep %d: warm ToF differs from cold by %.4f ns", s, d)
		}
		if s > 0 {
			coldWork += rc.AliasWork
			warmWork += rw.AliasWork
		}
		cold.Reset()
		warm.Reset()
	}
	if coldWork == 0 {
		t.Fatal("fixture scored no alias refits")
	}
	if ratio := float64(warmWork) / float64(coldWork); ratio > 0.75 {
		t.Errorf("colliding-families warm/cold alias work %.3f, want ≤ 0.75", ratio)
	}
	// The pinned property that makes this the collision fixture: at
	// least one window geometry retains two hypothesis seeds in one
	// period cell — the configuration the period-index labels collapsed.
	colliding := 0
	for _, list := range warm.warmWindows {
		byPeriod := map[int]int{}
		for _, ws := range list {
			byPeriod[int(math.Round(ws.cand/est.cfg.AliasPeriod))]++
		}
		for _, c := range byPeriod {
			if c > 1 {
				colliding++
			}
		}
	}
	if colliding == 0 {
		t.Error("fixture no longer places two hypotheses in one period cell; re-pin the geometry")
	}
}
