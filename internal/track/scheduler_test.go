package track

import (
	"math/rand"
	"testing"
	"time"

	"chronos/internal/hop"
	"chronos/internal/wifi"
)

func TestScheduleSingleDeviceMatchesHopSweep(t *testing.T) {
	// With one device the scheduler must reproduce hop.Sweep's shape: one
	// dwell per band and a duration in the Fig. 9a neighborhood.
	s := RunSchedule(rand.New(rand.NewSource(1)), SchedulerConfig{})
	if len(s.Fixes) != 1 {
		t.Fatalf("fixes = %d, want 1", len(s.Fixes))
	}
	if len(s.Slots) != len(wifi.USBands()) {
		t.Errorf("slots = %d, want %d", len(s.Slots), len(wifi.USBands()))
	}
	if d := s.Duration; d < 60*time.Millisecond || d > 130*time.Millisecond {
		t.Errorf("single-device sweep = %v, want ≈84 ms", d)
	}
	if s.Utilization <= 0 || s.Utilization >= 1 {
		t.Errorf("utilization = %v, want in (0,1)", s.Utilization)
	}
}

func TestScheduleCompletesAllSweeps(t *testing.T) {
	cfg := SchedulerConfig{Devices: 4, SweepsPerDevice: 3, Bands: wifi.USBands()[:10]}
	s := RunSchedule(rand.New(rand.NewSource(2)), cfg)
	if len(s.Fixes) != 4*3 {
		t.Fatalf("fixes = %d, want 12", len(s.Fixes))
	}
	for d := 0; d < 4; d++ {
		if got := len(s.DeviceFixes(d)); got != 3 {
			t.Errorf("device %d completed %d sweeps, want 3", d, got)
		}
	}
	if len(s.Slots) != 4*3*10 {
		t.Errorf("slots = %d, want 120", len(s.Slots))
	}
}

// TestScheduleSlotsSerialize pins the single-anchor-radio invariant: the
// timeline never overlaps two slots.
func TestScheduleSlotsSerialize(t *testing.T) {
	cfg := SchedulerConfig{Devices: 3, SweepsPerDevice: 2, Bands: wifi.USBands()[:8]}
	s := RunSchedule(rand.New(rand.NewSource(3)), cfg)
	for i := 1; i < len(s.Slots); i++ {
		if s.Slots[i].Start < s.Slots[i-1].End {
			t.Fatalf("slot %d starts (%v) before slot %d ends (%v)",
				i, s.Slots[i].Start, i-1, s.Slots[i-1].End)
		}
	}
}

// TestScheduleContentionStretchesLatency checks the capacity trade the
// campaign measures: more concurrent devices mean longer per-device fix
// latency but higher aggregate fix throughput than a lone device would
// leave idle.
func TestScheduleContentionStretchesLatency(t *testing.T) {
	bands := wifi.USBands()[:12]
	one := RunSchedule(rand.New(rand.NewSource(4)), SchedulerConfig{Devices: 1, SweepsPerDevice: 4, Bands: bands})
	eight := RunSchedule(rand.New(rand.NewSource(4)), SchedulerConfig{Devices: 8, SweepsPerDevice: 4, Bands: bands})
	if eight.MeanFixLatency() <= one.MeanFixLatency() {
		t.Errorf("8-device fix latency (%v) not above single-device (%v)",
			eight.MeanFixLatency(), one.MeanFixLatency())
	}
	// The anchor's inter-device retunes cost airtime, so utilization
	// drops under contention…
	if eight.Utilization >= one.Utilization {
		t.Errorf("utilization did not drop under contention: %v vs %v",
			eight.Utilization, one.Utilization)
	}
	// …but within a factor that keeps aggregate throughput comparable.
	if eight.FixesPerSecond < one.FixesPerSecond/2 {
		t.Errorf("aggregate throughput collapsed: %v vs %v fixes/s",
			eight.FixesPerSecond, one.FixesPerSecond)
	}
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	cfg := SchedulerConfig{Devices: 5, SweepsPerDevice: 2, Bands: wifi.USBands()[:6]}
	a := RunSchedule(rand.New(rand.NewSource(7)), cfg)
	b := RunSchedule(rand.New(rand.NewSource(7)), cfg)
	if a.Duration != b.Duration || len(a.Slots) != len(b.Slots) || a.Announces != b.Announces {
		t.Error("same seed produced different schedules")
	}
	for i := range a.Fixes {
		if a.Fixes[i] != b.Fixes[i] {
			t.Fatalf("fix %d differs: %+v vs %+v", i, a.Fixes[i], b.Fixes[i])
		}
	}
}

// TestScheduleLossyLinkStillCompletes drives the fail-safe path through
// the scheduler: heavy control-frame loss must not wedge the rotation.
func TestScheduleLossyLinkStillCompletes(t *testing.T) {
	cfg := SchedulerConfig{
		Devices: 3, SweepsPerDevice: 2, Bands: wifi.USBands()[:6],
		Hop: hop.Config{LossProb: 0.7, MaxRetries: 2},
	}
	s := RunSchedule(rand.New(rand.NewSource(8)), cfg)
	if len(s.Fixes) != 6 {
		t.Fatalf("fixes = %d, want 6 despite losses", len(s.Fixes))
	}
	if s.FailSafes == 0 || s.RevertTime == 0 {
		t.Errorf("expected fail-safes at 70%% loss: failsafes=%d revert=%v", s.FailSafes, s.RevertTime)
	}
}

func TestRunMultiTracksEveryDevice(t *testing.T) {
	cfg := MultiConfig{
		Scheduler: SchedulerConfig{Devices: 4, SweepsPerDevice: 6, Bands: wifi.USBands()[:10]},
		Speed:     0.8,
	}
	m := RunMulti(rand.New(rand.NewSource(9)), cfg)
	if len(m.Devices) != 4 {
		t.Fatalf("devices = %d", len(m.Devices))
	}
	for _, d := range m.Devices {
		if len(d.Fixes) != 6 {
			t.Errorf("device %d has %d fixes, want 6", d.Device, len(d.Fixes))
		}
		if d.RawRMSE <= 0 {
			t.Errorf("device %d raw RMSE = %v", d.Device, d.RawRMSE)
		}
		for _, f := range d.Fixes {
			if f.TrueRange < 0 || f.TrueRange > 20 {
				t.Errorf("device %d truth out of room: %v", d.Device, f.TrueRange)
			}
		}
	}
}
