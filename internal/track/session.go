package track

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"chronos/internal/csi"
	"chronos/internal/drone"
	"chronos/internal/geo"
	"chronos/internal/hop"
	"chronos/internal/mac"
	"chronos/internal/obs"
	"chronos/internal/sim"
	"chronos/internal/tof"
	"chronos/internal/wifi"
)

// SessionConfig tunes one streaming tracking session: a fixed anchor
// ranges a walking target through the full CSI → incremental-estimator →
// Kalman pipeline, sweep after sweep, on the hop protocol's virtual
// timeline.
type SessionConfig struct {
	Hop hop.Config
	// Speed is the target's walking speed in m/s; 0 pins the target for
	// a static baseline.
	Speed float64
	// Sweeps is the number of full band sweeps to stream (default 6).
	// Negative means unbounded: the session never reports Done and runs
	// until its owner stops stepping it — the mode the always-on service
	// daemon uses. RunSession treats a negative count as zero sweeps.
	Sweeps int
	// PairsPerBand is the CSI pairs captured per band dwell (default 2).
	PairsPerBand int
	// NLOS marks the link non-line-of-sight for the whole session.
	NLOS   bool
	Filter FilterConfig
	// EarlyFixBands lists checkpoints (in usable folded bands, ascending)
	// at which a degraded early fix is also taken mid-sweep. Early fixes
	// are recorded but not fed to the Kalman filter: before the
	// off-lattice bands arrive they are ambiguous modulo the band
	// lattice's 25 ns grating-lobe period.
	EarlyFixBands []int
	// WarmStart seeds each sweep's profile inversion from the previous
	// sweep's converged profile (tof.Sweep warm starts). On a target that
	// moves little between sweeps the iterate starts near the new fix and
	// the solver converges in a fraction of the cold iterations; the
	// session remains deterministic for a given rng.
	WarmStart bool
	// VelocityTranslate feeds the Kalman radial-velocity estimate
	// forward into the warm seeds: after each fix, the retained profiles
	// are circularly shifted by the predicted inter-sweep delay change
	// (tof.Sweep.TranslateWarm), so on a walking target the warm working
	// set is centered on where the paths will be rather than where they
	// were. Requires WarmStart; ignored otherwise. Deterministic for a
	// given rng like the rest of the session.
	VelocityTranslate bool
	// RoomW, RoomH bound the target's random-waypoint walk, centered on
	// the office floor (default 10 × 10 m, clamped to fit).
	RoomW, RoomH float64
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.Sweeps == 0 {
		c.Sweeps = 6
	}
	if c.PairsPerBand == 0 {
		c.PairsPerBand = 2
	}
	if c.RoomW == 0 {
		c.RoomW = 10
	}
	if c.RoomH == 0 {
		c.RoomH = 10
	}
	return c
}

// Fix is one streamed tracking output.
type Fix struct {
	Device    int
	At        time.Duration // virtual time the fix was emitted
	Latency   time.Duration // sweep start → fix
	Bands     int           // usable bands folded in
	Range     float64       // raw per-sweep range estimate (m)
	Smoothed  float64       // Kalman output (m); raw value for early fixes
	TrueRange float64       // ground-truth anchor–target distance at emission
	Early     bool
	Accepted  bool // measurement passed the Kalman gate
	// Work is the deterministic solver cost of the fix's estimate (grid
	// cells processed, tof.Estimate.Work); Converged reports whether
	// every profile inversion behind the fix met its stopping rule —
	// false marks an iteration-capped fix, which SessionResult counts as
	// CappedFixes so campaigns can expose cap-rate.
	Work      int64
	Converged bool
	// BatchSize is the widest coalesced solve behind the fix's estimate
	// (tof.Estimate.BatchSize): 1 when the session solves alone, >1 when
	// a shared tof.Coalescer merged its inversions with concurrent
	// sessions'. Timing-dependent telemetry — the fix itself is
	// byte-identical at any batch width.
	BatchSize int
}

// SessionResult is one session's streamed output.
type SessionResult struct {
	Fixes      []Fix // final (full-sweep) fixes, one per surviving sweep
	EarlyFixes []Fix
	// RawRMSE and SmoothedRMSE compare per-sweep raw estimates and
	// Kalman-smoothed ranges against ground truth over the final fixes.
	RawRMSE, SmoothedRMSE float64
	Rejected              int // fixes discarded by the Kalman gate
	// CappedFixes counts final fixes whose estimate hit the solver's
	// iteration cap instead of converging — the convergence-telemetry
	// roll-up the PerfConverge campaign asserts drops to ~0 under the
	// noise-adaptive stopping rule.
	CappedFixes int
	Duration    time.Duration
}

// Session is one streaming tracking session in steppable form: the same
// pipeline RunSession runs — calibration, then full band sweeps over a
// moving target, each ending in a Kalman-filtered fix — but one sweep
// per StepSweep call, so an external scheduler (the chronos-svc shard
// loops, driven by their timer wheels) can interleave thousands of
// sessions and pace them on wall or virtual time. Each session owns all
// of its mutable state (walk, radios, MAC simulator, warm solver seeds,
// Kalman tracker) and draws every random value from the rng it was built
// with, so stepping K sessions in any interleaving produces exactly the
// per-session outputs of K sequential RunSession calls with the same
// seeds. A Session is not safe for concurrent use; step it from one
// goroutine at a time.
type Session struct {
	cfg    SessionConfig
	rng    *rand.Rand
	office *sim.Office
	est    *tof.Estimator
	bands  []wifi.Band

	roomOrigin geo.Point
	anchor     geo.Point
	walk       *drone.Walk
	link       *csi.Link
	offset     float64

	msim    *mac.Sim
	hopper  *hop.Hopper
	hcfg    hop.Config
	tracker *RangeTracker
	acc     *tof.Sweep

	res             *SessionResult
	walkedTo        float64
	rawSq, smoothSq float64
	prevFixAt       time.Duration
	havePrevFix     bool
	sweeps          int // completed sweeps

	// Staged-pipeline state: one sweep in flight between StepIngest and
	// StepTrack. sweepStart is the virtual time the in-flight sweep
	// began; pendEst holds the solved estimate between StepSolve and
	// StepTrack (nil when the estimator failed and the fix is skipped).
	sweepStart time.Duration
	ingested   bool
	pendEst    *tof.Estimate
}

// NewSession builds and calibrates a steppable session. It performs the
// same setup as RunSession's preamble — room geometry, fresh radios, the
// one-time LOS reference calibration (§7 observation 2) — consuming rng
// identically, so a Session stepped to completion reproduces RunSession
// byte for byte. The estimator is left as it found it apart from the
// shared plan registry warming; only Calibrate requires est to stay on
// one goroutine for the duration of this call.
func NewSession(rng *rand.Rand, office *sim.Office, est *tof.Estimator, cfg SessionConfig) (*Session, error) {
	cfg = cfg.withDefaults()
	s := &Session{
		cfg: cfg, rng: rng, office: office, est: est,
		bands: tof.BandsFor(est.Config()),
		res:   &SessionResult{},
	}

	// The target random-waypoint-walks a room centered on the office
	// floor; the anchor sits at the room's corner.
	roomW := math.Min(cfg.RoomW, office.Width-2)
	roomH := math.Min(cfg.RoomH, office.Height-2)
	s.roomOrigin = geo.Point{X: (office.Width - roomW) / 2, Y: (office.Height - roomH) / 2}
	s.anchor = s.roomOrigin
	s.walk = drone.NewWalk(rng, roomW, roomH)
	s.walk.Speed = cfg.Speed

	// Fresh radios for this device pair.
	tx, rx := csi.NewRadio(rng), csi.NewRadio(rng)
	quirk := est.Config().Quirk24
	tx.Quirk24, rx.Quirk24 = quirk, quirk
	s.link = &csi.Link{TX: tx, RX: rx}

	// One-time calibration of the pair at a known LOS reference placement
	// (§7 observation 2), exactly as the batch campaigns calibrate.
	calP := office.RandomPlacement(rng, 8, false)
	s.link.Channel = office.Channel(calP, 5.5e9)
	s.link.SNRdB = sim.LinkSNR(0, calP.TrueDistance(), false)
	calSweep := s.link.Sweep(rng, s.bands, 3, 2.4e-3)
	offset, err := tof.Calibrate(est, s.bands, calSweep, calP.TrueDistance())
	if err != nil {
		return nil, err
	}
	s.offset = offset

	s.msim = mac.NewSim()
	s.hopper = hop.NewHopper(s.msim, rng, cfg.Hop)
	s.hcfg = s.hopper.Cfg
	s.tracker = NewRangeTracker(cfg.Filter)
	s.acc = est.NewSweep()
	s.acc.SetWarmStart(cfg.WarmStart)
	return s, nil
}

// targetAt advances the walk to virtual time now and returns the
// target's office-frame position.
func (s *Session) targetAt(now time.Duration) geo.Point {
	if t := now.Seconds(); t > s.walkedTo {
		s.walk.Advance(t - s.walkedTo)
		s.walkedTo = t
	}
	p := s.walk.Pos()
	return geo.Point{X: s.roomOrigin.X + p.X, Y: s.roomOrigin.Y + p.Y}
}

// Now is the session's virtual protocol time: how far its MAC timeline
// has advanced. Schedulers pace a session by mapping this onto their own
// clock (the daemon maps it to wall time; tests leave it virtual).
func (s *Session) Now() time.Duration { return s.msim.Now() }

// Sweeps reports how many full sweeps have completed.
func (s *Session) Sweeps() int { return s.sweeps }

// Done reports whether the configured sweep budget is exhausted. A
// session built with SessionConfig.Sweeps < 0 is never done; its owner
// decides when to stop stepping it.
func (s *Session) Done() bool { return s.cfg.Sweeps >= 0 && s.sweeps >= s.cfg.Sweeps }

// ErrSessionDone is returned by StepSweep after the sweep budget is
// exhausted.
var ErrSessionDone = errors.New("track: session already ran its configured sweeps")

// ErrStageOrder is returned when the staged entry points are called out
// of order: StepSolve or StepTrack without a completed StepIngest, or
// StepIngest while a sweep is still in flight.
var ErrStageOrder = errors.New("track: pipeline stage called out of order")

// StepSweep streams one full band sweep: band-by-band CSI capture while
// the target keeps walking, hop-protocol timing on the session's virtual
// MAC timeline, early checkpoint fixes, and the final Kalman-filtered
// fix with warm-seed bookkeeping. It is exactly one iteration of
// RunSession's sweep loop, including the inter-sweep hop back to the
// first band when more sweeps remain.
//
// StepSweep is the run-to-completion composition of the staged entry
// points — StepIngest, StepSolve (repeated while the solve parks), then
// StepTrack — and is byte-identical to executing the stages separately.
// The chronos-svc staged pipeline calls the stages individually so each
// can run on its own worker pool.
func (s *Session) StepSweep() error {
	if err := s.StepIngest(); err != nil {
		return err
	}
	for {
		parked, err := s.StepSolve()
		if err != nil {
			return err
		}
		if !parked {
			break
		}
	}
	return s.StepTrack()
}

// StepIngest runs the capture stage of one sweep: band-by-band CSI
// acquisition while the target walks, hop timing on the virtual MAC
// timeline, and the early checkpoint fixes. Every random draw of the
// sweep happens here, which is what lets the later stages run on other
// worker pools without touching the session's rng. After a successful
// return the sweep is in flight: the session expects StepSolve next.
func (s *Session) StepIngest() error {
	if s.Done() {
		return ErrSessionDone
	}
	if s.ingested {
		return ErrStageOrder
	}
	cfg := s.cfg
	s.acc.Reset()
	start := s.msim.Now()
	sweepTick := obs.Tick()
	checkpoint := 0
	for bi, b := range s.bands {
		// The channel follows the target band by band: motion during
		// the sweep is exactly what blurs high-speed tracking.
		pos := s.targetAt(s.msim.Now())
		pl := sim.Placement{TX: s.anchor, RX: pos, NLOS: cfg.NLOS}
		s.link.Channel = s.office.Channel(pl, 5.5e9)
		s.link.SNRdB = sim.LinkSNR(0, pl.TrueDistance(), cfg.NLOS)

		step := s.hcfg.Dwell.Seconds() / float64(cfg.PairsPerBand+1)
		pairs := make([]csi.Pair, cfg.PairsPerBand)
		for pi := range pairs {
			pairs[pi] = s.link.MeasurePair(s.rng, b, s.msim.Now().Seconds()+float64(pi+1)*step)
		}
		s.msim.Run(s.msim.Now() + s.hcfg.Dwell)
		if err := s.acc.AddBand(b, pairs); err != nil {
			return err
		}

		if checkpoint < len(cfg.EarlyFixBands) && s.acc.Bands() >= cfg.EarlyFixBands[checkpoint] && bi+1 < len(s.bands) {
			if r, err := s.acc.Estimate(); err == nil {
				raw := r.Distance - s.offset*wifi.SpeedOfLight
				s.res.EarlyFixes = append(s.res.EarlyFixes, Fix{
					At: s.msim.Now(), Latency: s.msim.Now() - start, Bands: s.acc.Bands(),
					Range: raw, Smoothed: raw,
					TrueRange: s.anchor.Dist(s.targetAt(s.msim.Now())), Early: true,
				})
				obsEarlyFixes.Inc()
			}
			checkpoint++
		}
		if bi+1 < len(s.bands) {
			s.hopper.Hop(func(retries, failsafes int) {})
			s.msim.RunAll()
		}
	}

	obsStageSweepNs.Since(sweepTick)
	s.sweepStart = start
	s.ingested = true
	s.pendEst = nil
	return nil
}

// StepSolve runs the inversion stage of the in-flight sweep: one
// tof.Sweep.Estimate over the bands StepIngest folded in. It returns
// parked=true when the estimator's preemption hook yielded the solve
// mid-iterate (tof.ErrSolveParked); the sweep stays in flight and a
// later StepSolve resumes from the parked seed. Estimator failures are
// swallowed exactly as RunSession's loop swallows them — the fix is
// skipped and StepTrack completes the sweep without one.
func (s *Session) StepSolve() (parked bool, err error) {
	if !s.ingested {
		return false, ErrStageOrder
	}
	r, err := s.acc.Estimate()
	if err != nil {
		if errors.Is(err, tof.ErrSolveParked) {
			return true, nil
		}
		s.pendEst = nil
		return false, nil
	}
	s.pendEst = r
	return false, nil
}

// StepTrack runs the tracking stage of the in-flight sweep: Kalman
// filtering of the solved range, fix recording, warm-seed translation,
// and the inter-sweep hop back to the first band. It completes the
// sweep; the session is ready for the next StepIngest afterwards.
func (s *Session) StepTrack() error {
	if !s.ingested {
		return ErrStageOrder
	}
	cfg := s.cfg
	start := s.sweepStart
	if r := s.pendEst; r != nil {
		raw := r.Distance - s.offset*wifi.SpeedOfLight
		now := s.msim.Now()
		truth := s.anchor.Dist(s.targetAt(now))
		kalmanTick := obs.Tick()
		smoothed, accepted := s.tracker.Observe(now, raw)
		obsStageKalmanNs.Since(kalmanTick)
		recordFix(int64(now-start), accepted, r.Converged)
		s.res.Fixes = append(s.res.Fixes, Fix{
			At: now, Latency: now - start, Bands: s.acc.Bands(),
			Range: raw, Smoothed: smoothed, TrueRange: truth, Accepted: accepted,
			Work: r.Work, Converged: r.Converged, BatchSize: r.BatchSize,
		})
		if !r.Converged {
			s.res.CappedFixes++
		}
		s.rawSq += (raw - truth) * (raw - truth)
		s.smoothSq += (smoothed - truth) * (smoothed - truth)
		if cfg.WarmStart && cfg.VelocityTranslate && s.havePrevFix {
			// Predict the delay drift the next sweep will see: the
			// filter's radial velocity over one inter-fix interval
			// (sweep cadence is steady, so the last interval is the
			// forecast), converted to seconds of τ. Shift the warm
			// seeds so the restricted working set is already centered
			// when the next inversion starts.
			dt := (now - s.prevFixAt).Seconds()
			s.acc.TranslateWarm(s.tracker.Velocity() * dt / wifi.SpeedOfLight)
		}
		s.prevFixAt, s.havePrevFix = now, true
	}
	if cfg.Sweeps < 0 || s.sweeps+1 < cfg.Sweeps {
		// Hop back to the first band for the next cycle.
		s.hopper.Hop(func(retries, failsafes int) {})
		s.msim.RunAll()
	}
	s.sweeps++
	s.ingested = false
	s.pendEst = nil
	return nil
}

// Result finalizes and returns the session's accumulated output. The
// returned value is the session's own result struct, refreshed on every
// call, so it can be taken mid-stream (a drain snapshot) or after Done.
func (s *Session) Result() *SessionResult {
	s.res.Duration = s.msim.Now()
	s.res.Rejected = s.tracker.Rejected
	if n := float64(len(s.res.Fixes)); n > 0 {
		s.res.RawRMSE = math.Sqrt(s.rawSq / n)
		s.res.SmoothedRMSE = math.Sqrt(s.smoothSq / n)
	} else {
		s.res.RawRMSE, s.res.SmoothedRMSE = math.NaN(), math.NaN()
	}
	return s.res
}

// RunSession streams cfg.Sweeps full band sweeps over a moving target in
// the office and returns the resulting fixes. The session leaves est as
// it found it: tof.Calibrate briefly rewrites (and restores) the
// estimator's calibration offset, and the shared plan registry warms,
// but no configuration survives the call. Estimators are cheap to build
// (solver state lives in the registry), so campaign workers simply
// construct one per trial; only Calibrate requires the estimator to stay
// on one goroutine for the duration of the call.
//
// RunSession is the sequential wrapper over the steppable Session: it
// builds one and steps it to completion. The chronos-svc daemon steps
// the same Session type from its shard timer wheels, which is what makes
// the daemon's per-device fixes byte-identical to this call.
func RunSession(rng *rand.Rand, office *sim.Office, est *tof.Estimator, cfg SessionConfig) (*SessionResult, error) {
	s, err := NewSession(rng, office, est, cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < s.cfg.Sweeps; i++ {
		if err := s.StepSweep(); err != nil {
			return nil, err
		}
	}
	return s.Result(), nil
}
