package track

import (
	"math"
	"math/rand"
	"time"

	"chronos/internal/csi"
	"chronos/internal/drone"
	"chronos/internal/geo"
	"chronos/internal/hop"
	"chronos/internal/mac"
	"chronos/internal/obs"
	"chronos/internal/sim"
	"chronos/internal/tof"
	"chronos/internal/wifi"
)

// SessionConfig tunes one streaming tracking session: a fixed anchor
// ranges a walking target through the full CSI → incremental-estimator →
// Kalman pipeline, sweep after sweep, on the hop protocol's virtual
// timeline.
type SessionConfig struct {
	Hop hop.Config
	// Speed is the target's walking speed in m/s; 0 pins the target for
	// a static baseline.
	Speed float64
	// Sweeps is the number of full band sweeps to stream (default 6).
	Sweeps int
	// PairsPerBand is the CSI pairs captured per band dwell (default 2).
	PairsPerBand int
	// NLOS marks the link non-line-of-sight for the whole session.
	NLOS   bool
	Filter FilterConfig
	// EarlyFixBands lists checkpoints (in usable folded bands, ascending)
	// at which a degraded early fix is also taken mid-sweep. Early fixes
	// are recorded but not fed to the Kalman filter: before the
	// off-lattice bands arrive they are ambiguous modulo the band
	// lattice's 25 ns grating-lobe period.
	EarlyFixBands []int
	// WarmStart seeds each sweep's profile inversion from the previous
	// sweep's converged profile (tof.Sweep warm starts). On a target that
	// moves little between sweeps the iterate starts near the new fix and
	// the solver converges in a fraction of the cold iterations; the
	// session remains deterministic for a given rng.
	WarmStart bool
	// VelocityTranslate feeds the Kalman radial-velocity estimate
	// forward into the warm seeds: after each fix, the retained profiles
	// are circularly shifted by the predicted inter-sweep delay change
	// (tof.Sweep.TranslateWarm), so on a walking target the warm working
	// set is centered on where the paths will be rather than where they
	// were. Requires WarmStart; ignored otherwise. Deterministic for a
	// given rng like the rest of the session.
	VelocityTranslate bool
	// RoomW, RoomH bound the target's random-waypoint walk, centered on
	// the office floor (default 10 × 10 m, clamped to fit).
	RoomW, RoomH float64
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.Sweeps == 0 {
		c.Sweeps = 6
	}
	if c.PairsPerBand == 0 {
		c.PairsPerBand = 2
	}
	if c.RoomW == 0 {
		c.RoomW = 10
	}
	if c.RoomH == 0 {
		c.RoomH = 10
	}
	return c
}

// Fix is one streamed tracking output.
type Fix struct {
	Device    int
	At        time.Duration // virtual time the fix was emitted
	Latency   time.Duration // sweep start → fix
	Bands     int           // usable bands folded in
	Range     float64       // raw per-sweep range estimate (m)
	Smoothed  float64       // Kalman output (m); raw value for early fixes
	TrueRange float64       // ground-truth anchor–target distance at emission
	Early     bool
	Accepted  bool // measurement passed the Kalman gate
	// Work is the deterministic solver cost of the fix's estimate (grid
	// cells processed, tof.Estimate.Work); Converged reports whether
	// every profile inversion behind the fix met its stopping rule —
	// false marks an iteration-capped fix, which SessionResult counts as
	// CappedFixes so campaigns can expose cap-rate.
	Work      int64
	Converged bool
	// BatchSize is the widest coalesced solve behind the fix's estimate
	// (tof.Estimate.BatchSize): 1 when the session solves alone, >1 when
	// a shared tof.Coalescer merged its inversions with concurrent
	// sessions'. Timing-dependent telemetry — the fix itself is
	// byte-identical at any batch width.
	BatchSize int
}

// SessionResult is one session's streamed output.
type SessionResult struct {
	Fixes      []Fix // final (full-sweep) fixes, one per surviving sweep
	EarlyFixes []Fix
	// RawRMSE and SmoothedRMSE compare per-sweep raw estimates and
	// Kalman-smoothed ranges against ground truth over the final fixes.
	RawRMSE, SmoothedRMSE float64
	Rejected              int // fixes discarded by the Kalman gate
	// CappedFixes counts final fixes whose estimate hit the solver's
	// iteration cap instead of converging — the convergence-telemetry
	// roll-up the PerfConverge campaign asserts drops to ~0 under the
	// noise-adaptive stopping rule.
	CappedFixes int
	Duration    time.Duration
}

// RunSession streams cfg.Sweeps full band sweeps over a moving target in
// the office and returns the resulting fixes. The session leaves est as
// it found it: tof.Calibrate briefly rewrites (and restores) the
// estimator's calibration offset, and the shared plan registry warms,
// but no configuration survives the call. Estimators are cheap to build
// (solver state lives in the registry), so campaign workers simply
// construct one per trial; only Calibrate requires the estimator to stay
// on one goroutine for the duration of the call.
func RunSession(rng *rand.Rand, office *sim.Office, est *tof.Estimator, cfg SessionConfig) (*SessionResult, error) {
	cfg = cfg.withDefaults()
	bands := tof.BandsFor(est.Config())

	// The target random-waypoint-walks a room centered on the office
	// floor; the anchor sits at the room's corner.
	roomW := math.Min(cfg.RoomW, office.Width-2)
	roomH := math.Min(cfg.RoomH, office.Height-2)
	roomOrigin := geo.Point{X: (office.Width - roomW) / 2, Y: (office.Height - roomH) / 2}
	anchor := roomOrigin
	walk := drone.NewWalk(rng, roomW, roomH)
	walk.Speed = cfg.Speed

	// Fresh radios for this device pair.
	tx, rx := csi.NewRadio(rng), csi.NewRadio(rng)
	quirk := est.Config().Quirk24
	tx.Quirk24, rx.Quirk24 = quirk, quirk
	link := &csi.Link{TX: tx, RX: rx}

	// One-time calibration of the pair at a known LOS reference placement
	// (§7 observation 2), exactly as the batch campaigns calibrate.
	calP := office.RandomPlacement(rng, 8, false)
	link.Channel = office.Channel(calP, 5.5e9)
	link.SNRdB = sim.LinkSNR(0, calP.TrueDistance(), false)
	calSweep := link.Sweep(rng, bands, 3, 2.4e-3)
	offset, err := tof.Calibrate(est, bands, calSweep, calP.TrueDistance())
	if err != nil {
		return nil, err
	}

	msim := mac.NewSim()
	hopper := hop.NewHopper(msim, rng, cfg.Hop)
	hcfg := hopper.Cfg
	tracker := NewRangeTracker(cfg.Filter)
	acc := est.NewSweep()
	acc.SetWarmStart(cfg.WarmStart)
	res := &SessionResult{}

	// targetAt advances the walk to virtual time now and returns the
	// target's office-frame position.
	walkedTo := 0.0
	targetAt := func(now time.Duration) geo.Point {
		if t := now.Seconds(); t > walkedTo {
			walk.Advance(t - walkedTo)
			walkedTo = t
		}
		p := walk.Pos()
		return geo.Point{X: roomOrigin.X + p.X, Y: roomOrigin.Y + p.Y}
	}

	var rawSq, smoothSq float64
	var prevFixAt time.Duration
	havePrevFix := false
	for sweep := 0; sweep < cfg.Sweeps; sweep++ {
		acc.Reset()
		start := msim.Now()
		sweepTick := obs.Tick()
		checkpoint := 0
		for bi, b := range bands {
			// The channel follows the target band by band: motion during
			// the sweep is exactly what blurs high-speed tracking.
			pos := targetAt(msim.Now())
			pl := sim.Placement{TX: anchor, RX: pos, NLOS: cfg.NLOS}
			link.Channel = office.Channel(pl, 5.5e9)
			link.SNRdB = sim.LinkSNR(0, pl.TrueDistance(), cfg.NLOS)

			step := hcfg.Dwell.Seconds() / float64(cfg.PairsPerBand+1)
			pairs := make([]csi.Pair, cfg.PairsPerBand)
			for pi := range pairs {
				pairs[pi] = link.MeasurePair(rng, b, msim.Now().Seconds()+float64(pi+1)*step)
			}
			msim.Run(msim.Now() + hcfg.Dwell)
			if err := acc.AddBand(b, pairs); err != nil {
				return nil, err
			}

			if checkpoint < len(cfg.EarlyFixBands) && acc.Bands() >= cfg.EarlyFixBands[checkpoint] && bi+1 < len(bands) {
				if r, err := acc.Estimate(); err == nil {
					raw := r.Distance - offset*wifi.SpeedOfLight
					res.EarlyFixes = append(res.EarlyFixes, Fix{
						At: msim.Now(), Latency: msim.Now() - start, Bands: acc.Bands(),
						Range: raw, Smoothed: raw,
						TrueRange: anchor.Dist(targetAt(msim.Now())), Early: true,
					})
					obsEarlyFixes.Inc()
				}
				checkpoint++
			}
			if bi+1 < len(bands) {
				hopper.Hop(func(retries, failsafes int) {})
				msim.RunAll()
			}
		}

		obsStageSweepNs.Since(sweepTick)
		if r, err := acc.Estimate(); err == nil {
			raw := r.Distance - offset*wifi.SpeedOfLight
			now := msim.Now()
			truth := anchor.Dist(targetAt(now))
			kalmanTick := obs.Tick()
			smoothed, accepted := tracker.Observe(now, raw)
			obsStageKalmanNs.Since(kalmanTick)
			recordFix(int64(now-start), accepted, r.Converged)
			res.Fixes = append(res.Fixes, Fix{
				At: now, Latency: now - start, Bands: acc.Bands(),
				Range: raw, Smoothed: smoothed, TrueRange: truth, Accepted: accepted,
				Work: r.Work, Converged: r.Converged, BatchSize: r.BatchSize,
			})
			if !r.Converged {
				res.CappedFixes++
			}
			rawSq += (raw - truth) * (raw - truth)
			smoothSq += (smoothed - truth) * (smoothed - truth)
			if cfg.WarmStart && cfg.VelocityTranslate && havePrevFix {
				// Predict the delay drift the next sweep will see: the
				// filter's radial velocity over one inter-fix interval
				// (sweep cadence is steady, so the last interval is the
				// forecast), converted to seconds of τ. Shift the warm
				// seeds so the restricted working set is already centered
				// when the next inversion starts.
				dt := (now - prevFixAt).Seconds()
				acc.TranslateWarm(tracker.Velocity() * dt / wifi.SpeedOfLight)
			}
			prevFixAt, havePrevFix = now, true
		}
		if sweep+1 < cfg.Sweeps {
			// Hop back to the first band for the next cycle.
			hopper.Hop(func(retries, failsafes int) {})
			msim.RunAll()
		}
	}

	res.Duration = msim.Now()
	res.Rejected = tracker.Rejected
	if n := float64(len(res.Fixes)); n > 0 {
		res.RawRMSE = math.Sqrt(rawSq / n)
		res.SmoothedRMSE = math.Sqrt(smoothSq / n)
	} else {
		res.RawRMSE, res.SmoothedRMSE = math.NaN(), math.NaN()
	}
	return res, nil
}
