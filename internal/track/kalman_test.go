package track

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"chronos/internal/geo"
)

// noisyRange draws a Chronos-like range fix: tight Gaussian core with
// occasional heavy-tail profile-ghost outliers.
func noisyRange(rng *rand.Rand, truth, sigma, outlierProb, outlierMag float64) float64 {
	m := truth + rng.NormFloat64()*sigma
	if rng.Float64() < outlierProb {
		if rng.Float64() < 0.5 {
			m -= outlierMag
		} else {
			m += outlierMag
		}
	}
	return m
}

// TestRangeTrackerSmoothsMovingTarget is the subsystem's acceptance
// criterion: over a moving-target scenario the Kalman-smoothed error must
// come in below the raw per-sweep fix error.
func TestRangeTrackerSmoothsMovingTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := NewRangeTracker(FilterConfig{})

	// Target recedes at 0.9 m/s with gentle speed modulation; fixes
	// arrive at the ≈84 ms sweep cadence with 12 cm core noise and 5%
	// ±3.75 m ghosts (the §12.1 CDF tail).
	const dt = 84 * time.Millisecond
	var rawSq, smoothSq float64
	n := 400
	for i := 0; i < n; i++ {
		at := time.Duration(i) * dt
		ts := at.Seconds()
		truth := 3 + 0.9*ts + 0.3*math.Sin(ts/2)
		meas := noisyRange(rng, truth, 0.12, 0.05, 3.75)
		smoothed, _ := tr.Observe(at, meas)
		rawSq += (meas - truth) * (meas - truth)
		smoothSq += (smoothed - truth) * (smoothed - truth)
	}
	raw := math.Sqrt(rawSq / float64(n))
	smooth := math.Sqrt(smoothSq / float64(n))
	if smooth >= raw {
		t.Fatalf("smoothed RMSE %.3f m not below raw %.3f m", smooth, raw)
	}
	// The ghosts dominate the raw RMSE; gating should remove nearly all
	// of them, leaving a large margin.
	if smooth > raw/2 {
		t.Errorf("smoothed RMSE %.3f m, want < half of raw %.3f m", smooth, raw)
	}
	if tr.Rejected == 0 {
		t.Error("gate rejected no outliers despite 5% ghost rate")
	}
}

// TestRangeTrackerTracksVelocity checks the constant-velocity state
// converges to the target's true radial speed.
func TestRangeTrackerTracksVelocity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := NewRangeTracker(FilterConfig{})
	const dt = 100 * time.Millisecond
	for i := 0; i < 200; i++ {
		at := time.Duration(i) * dt
		truth := 2 + 1.2*at.Seconds()
		tr.Observe(at, truth+rng.NormFloat64()*0.1)
	}
	if v := tr.Velocity(); math.Abs(v-1.2) > 0.25 {
		t.Errorf("velocity estimate = %.2f m/s, want ≈1.2", v)
	}
}

// TestRangeTrackerReacquires checks the MaxRejects escape hatch: a target
// that genuinely jumps (reacquisition after a tracking gap) must not be
// gated out forever.
func TestRangeTrackerReacquires(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := NewRangeTracker(FilterConfig{MaxRejects: 3})
	const dt = 100 * time.Millisecond
	at := time.Duration(0)
	for i := 0; i < 50; i++ {
		tr.Observe(at, 4+rng.NormFloat64()*0.05)
		at += dt
	}
	// The target teleports 8 m away and stays there.
	var lastAccepted bool
	var last float64
	for i := 0; i < 10; i++ {
		last, lastAccepted = tr.Observe(at, 12+rng.NormFloat64()*0.05)
		at += dt
	}
	if !lastAccepted {
		t.Fatal("tracker never reacquired the jumped target")
	}
	if math.Abs(last-12) > 0.5 {
		t.Errorf("post-reacquisition range = %.2f m, want ≈12", last)
	}
}

// TestPositionTrackerSmoothsWalk runs the 2D filter over a random-waypoint
// walk with ghost outliers; the smoothed path must beat the raw fixes.
func TestPositionTrackerSmoothsWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := NewPositionTracker(FilterConfig{})
	const dt = 84 * time.Millisecond
	pos := geo.Point{X: 2, Y: 3}
	vel := geo.Point{X: 0.6, Y: -0.4}
	var rawSq, smoothSq float64
	n := 300
	for i := 0; i < n; i++ {
		at := time.Duration(i) * dt
		pos = pos.Add(vel.Scale(dt.Seconds()))
		meas := geo.Point{
			X: noisyRange(rng, pos.X, 0.12, 0.04, 3.0),
			Y: noisyRange(rng, pos.Y, 0.12, 0.04, 3.0),
		}
		smoothed, _ := tr.Observe(at, meas)
		rawSq += meas.Sub(pos).Norm() * meas.Sub(pos).Norm()
		smoothSq += smoothed.Sub(pos).Norm() * smoothed.Sub(pos).Norm()
	}
	raw, smooth := math.Sqrt(rawSq/float64(n)), math.Sqrt(smoothSq/float64(n))
	if smooth >= raw {
		t.Fatalf("2D smoothed RMSE %.3f m not below raw %.3f m", smooth, raw)
	}
	if v := tr.Velocity(); math.Abs(v.X-0.6) > 0.3 || math.Abs(v.Y+0.4) > 0.3 {
		t.Errorf("velocity = %+v, want ≈(0.6, −0.4)", v)
	}
}

// TestTrackerFirstObservationPrimes pins the initialization contract.
func TestTrackerFirstObservationPrimes(t *testing.T) {
	tr := NewRangeTracker(FilterConfig{})
	got, ok := tr.Observe(0, 7.5)
	if !ok || got != 7.5 {
		t.Errorf("first observation = (%v, %v), want (7.5, true)", got, ok)
	}
	pt := NewPositionTracker(FilterConfig{})
	p, ok := pt.Observe(0, geo.Point{X: 1, Y: 2})
	if !ok || p != (geo.Point{X: 1, Y: 2}) {
		t.Errorf("first 2D observation = (%v, %v)", p, ok)
	}
}

// TestTrackerGateDisabled checks Gate < 0 accepts everything.
func TestTrackerGateDisabled(t *testing.T) {
	tr := NewRangeTracker(FilterConfig{Gate: -1})
	tr.Observe(0, 5)
	for i := 1; i <= 10; i++ {
		if _, ok := tr.Observe(time.Duration(i)*time.Second, float64(5+i*10)); !ok {
			t.Fatal("disabled gate rejected a measurement")
		}
	}
	if tr.Rejected != 0 {
		t.Errorf("Rejected = %d with gate disabled", tr.Rejected)
	}
}
