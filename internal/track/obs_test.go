package track

import (
	"testing"

	"chronos/internal/obs"
)

// TestObsDoesNotChangeResults is the golden-trace guard for the
// observability layer: one full warm-start session with metrics
// disabled and one with metrics enabled must produce byte-identical
// fixes — instrumentation observes the pipeline, it never steers it.
func TestObsDoesNotChangeResults(t *testing.T) {
	cfg := goldenSessionConfig()

	obs.SetEnabled(false)
	plain := fixTable(runGolden(t, 9, cfg))

	obs.Reset()
	obs.SetEnabled(true)
	defer func() { obs.SetEnabled(false); obs.Reset() }()
	instrumented := fixTable(runGolden(t, 9, cfg))

	if plain != instrumented {
		t.Fatalf("instrumentation changed session results\nplain:\n%s\ninstrumented:\n%s", plain, instrumented)
	}

	// And the instrumented run actually recorded the pipeline.
	s := obs.Capture()
	for _, name := range []string{"track.fixes", "ndft.solve.requests", "tof.estimates", "hop.hops"} {
		if s.Counters[name] == 0 {
			t.Errorf("counter %s = 0 after an instrumented session", name)
		}
	}
	if got, want := s.Counters["track.fixes"], int64(cfg.Sweeps); got != want {
		t.Errorf("track.fixes = %d, want %d (one per sweep)", got, want)
	}
	if fl := s.Hists["track.fix_latency_ns"]; fl.Count != int64(cfg.Sweeps) {
		t.Errorf("fix latency count = %d, want %d", fl.Count, cfg.Sweeps)
	}
}
