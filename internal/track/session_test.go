package track

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"chronos/internal/sim"
	"chronos/internal/tof"
)

// sessionFixture builds the office and a cheap estimator config shared by
// the session tests: 5 GHz-only with a reduced iteration cap keeps a
// full-pipeline sweep fast while exercising every layer.
func sessionFixture() (*sim.Office, *tof.Estimator) {
	office := sim.NewOffice(rand.New(rand.NewSource(42)), sim.OfficeConfig{})
	est := tof.NewEstimator(tof.Config{Mode: tof.Bands5GHzOnly, MaxIter: 400})
	return office, est
}

// TestSessionStreamsFixes runs the full CSI → incremental estimator →
// Kalman pipeline over a walking target and checks the streamed output's
// shape: one fix per sweep, plausible ranges, finite errors.
func TestSessionStreamsFixes(t *testing.T) {
	office, est := sessionFixture()
	res, err := RunSession(rand.New(rand.NewSource(5)), office, est, SessionConfig{
		Speed: 0.8, Sweeps: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fixes) == 0 {
		t.Fatal("session streamed no fixes")
	}
	if len(res.Fixes) > 4 {
		t.Fatalf("fixes = %d > sweeps", len(res.Fixes))
	}
	for i, f := range res.Fixes {
		if f.TrueRange <= 0 || f.TrueRange > 20 {
			t.Errorf("fix %d truth = %v m, out of office scale", i, f.TrueRange)
		}
		if f.Latency <= 0 || f.At < f.Latency {
			t.Errorf("fix %d has inconsistent timing: at=%v latency=%v", i, f.At, f.Latency)
		}
		if math.Abs(f.Range-f.TrueRange) > 10 {
			t.Errorf("fix %d raw range %v m vs truth %v m — pipeline broken", i, f.Range, f.TrueRange)
		}
		if f.Early {
			t.Errorf("fix %d flagged early in final stream", i)
		}
	}
	if math.IsNaN(res.RawRMSE) || math.IsNaN(res.SmoothedRMSE) {
		t.Error("RMSEs not computed")
	}
	if res.Duration <= 0 {
		t.Error("no virtual time elapsed")
	}
}

// TestSessionEarlyFixes checks mid-sweep degraded fixes are emitted at the
// configured checkpoints with fewer bands and shorter latency.
func TestSessionEarlyFixes(t *testing.T) {
	office, est := sessionFixture()
	res, err := RunSession(rand.New(rand.NewSource(6)), office, est, SessionConfig{
		Speed: 0.5, Sweeps: 2, EarlyFixBands: []int{8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EarlyFixes) == 0 {
		t.Fatal("no early fixes at checkpoint 8")
	}
	for i, f := range res.EarlyFixes {
		if !f.Early {
			t.Errorf("early fix %d not flagged", i)
		}
		if f.Bands < 8 || f.Bands >= 24 {
			t.Errorf("early fix %d folded %d bands, want ≥8 and < full sweep", i, f.Bands)
		}
	}
	// Early fixes must come in faster than the full-sweep fixes.
	if len(res.Fixes) > 0 && res.EarlyFixes[0].Latency >= res.Fixes[0].Latency {
		t.Errorf("early fix latency %v not below full-sweep %v",
			res.EarlyFixes[0].Latency, res.Fixes[0].Latency)
	}
}

// TestSessionDeterministicPerSeed reruns a session from the same seed on a
// fresh estimator; the streamed fixes must agree exactly.
func TestSessionDeterministicPerSeed(t *testing.T) {
	run := func() *SessionResult {
		office, est := sessionFixture()
		res, err := RunSession(rand.New(rand.NewSource(7)), office, est, SessionConfig{
			Speed: 1.0, Sweeps: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different sessions:\n%+v\n%+v", a, b)
	}
}

// TestSessionStaticTarget pins the Speed=0 baseline: ground truth must not
// drift between sweeps.
func TestSessionStaticTarget(t *testing.T) {
	office, est := sessionFixture()
	res, err := RunSession(rand.New(rand.NewSource(8)), office, est, SessionConfig{
		Speed: 0, Sweeps: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fixes) < 2 {
		t.Skip("too few fixes to compare")
	}
	for i := 1; i < len(res.Fixes); i++ {
		if res.Fixes[i].TrueRange != res.Fixes[0].TrueRange {
			t.Errorf("static target moved: %v vs %v", res.Fixes[i].TrueRange, res.Fixes[0].TrueRange)
		}
	}
}

// TestSessionEstimatorReusableAcrossSessions mirrors the sync.Pool
// pattern: one estimator drives two sessions in sequence, and the second
// must behave identically to a fresh-estimator run (the session never
// mutates estimator config; only the matrix cache warms).
func TestSessionEstimatorReusableAcrossSessions(t *testing.T) {
	office := sim.NewOffice(rand.New(rand.NewSource(42)), sim.OfficeConfig{})
	shared := tof.NewEstimator(tof.Config{Mode: tof.Bands5GHzOnly, MaxIter: 400})
	cfg := SessionConfig{Speed: 0.8, Sweeps: 2}

	if _, err := RunSession(rand.New(rand.NewSource(30)), office, shared, cfg); err != nil {
		t.Fatal(err)
	}
	warm, err := RunSession(rand.New(rand.NewSource(31)), office, shared, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := RunSession(rand.New(rand.NewSource(31)), office,
		tof.NewEstimator(tof.Config{Mode: tof.Bands5GHzOnly, MaxIter: 400}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, fresh) {
		t.Error("warm pooled estimator diverged from fresh estimator")
	}
}
