package track

import (
	"math/rand"
	"time"

	"chronos/internal/hop"
	"chronos/internal/mac"
	"chronos/internal/wifi"
)

// SchedulerConfig tunes the multi-client session scheduler.
type SchedulerConfig struct {
	// Hop carries the per-band protocol timing (dwell, switch, timeouts).
	Hop hop.Config
	// Bands is the sweep plan per device (default: all 35 U.S. bands).
	Bands []wifi.Band
	// Devices is the number of concurrent tracked devices (default 1).
	Devices int
	// SweepsPerDevice is how many full sweeps each device completes
	// before the schedule ends (default 1).
	SweepsPerDevice int
}

func (c SchedulerConfig) withDefaults() SchedulerConfig {
	if c.Bands == nil {
		c.Bands = wifi.USBands()
	}
	if c.Devices == 0 {
		c.Devices = 1
	}
	if c.SweepsPerDevice == 0 {
		c.SweepsPerDevice = 1
	}
	return c
}

// Slot is one device's stay on one band within the interleaved schedule.
type Slot struct {
	Device     int
	Band       wifi.Band
	Start, End time.Duration
}

// FixEvent marks one device completing a full band sweep: the moment a
// position fix becomes available to the incremental estimator.
type FixEvent struct {
	Device int
	At     time.Duration
	// Latency is the time from the sweep's first dwell to the fix —
	// under contention it includes the slots spent serving other devices.
	Latency time.Duration
}

// Schedule is the outcome of one interleaved multi-device run.
type Schedule struct {
	Duration time.Duration
	Slots    []Slot
	Fixes    []FixEvent // in completion order
	// Utilization is the fraction of the timeline spent exchanging CSI
	// (dwell time); the rest is retunes, control frames, and fail-safes.
	Utilization float64
	// FixesPerSecond is the aggregate fix throughput across all devices.
	FixesPerSecond float64
	Announces      int
	FailSafes      int
	RevertTime     time.Duration
}

// MeanFixLatency averages the per-sweep fix latency across all fixes.
func (s *Schedule) MeanFixLatency() time.Duration {
	if len(s.Fixes) == 0 {
		return 0
	}
	var sum time.Duration
	for _, f := range s.Fixes {
		sum += f.Latency
	}
	return sum / time.Duration(len(s.Fixes))
}

// DeviceFixes returns device d's fix events in time order.
func (s *Schedule) DeviceFixes(d int) []FixEvent {
	var out []FixEvent
	for _, f := range s.Fixes {
		if f.Device == d {
			out = append(out, f)
		}
	}
	return out
}

// RunSchedule interleaves band-hopping sweeps across N concurrent devices
// on one virtual timeline. The anchor (AP) has a single radio, so slots
// serialize through it: each round-robin turn serves one device for one
// band dwell, then hops that device pair to its next band; turning to a
// different device costs the anchor a retune onto that device's current
// band. With one device the schedule degenerates to hop.Sweep's timing.
//
// All randomness (losses, jitter) is drawn from rng, and execution is
// strictly sequential on the simulator, so a seed reproduces the schedule
// exactly regardless of where it runs.
func RunSchedule(rng *rand.Rand, cfg SchedulerConfig) *Schedule {
	cfg = cfg.withDefaults()
	sim := mac.NewSim()
	hoppers := make([]*hop.Hopper, cfg.Devices)
	for i := range hoppers {
		hoppers[i] = hop.NewHopper(sim, rng, cfg.Hop)
	}
	hcfg := hoppers[0].Cfg

	res := &Schedule{}
	pos := make([]int, cfg.Devices)    // next band index in the current sweep
	sweeps := make([]int, cfg.Devices) // completed sweeps
	sweepStart := make([]time.Duration, cfg.Devices)
	var totalDwell time.Duration
	lastDevice := -1

	// next picks the following unfinished device in round-robin order.
	next := func(after int) int {
		for k := 1; k <= cfg.Devices; k++ {
			d := (after + k) % cfg.Devices
			if sweeps[d] < cfg.SweepsPerDevice {
				return d
			}
		}
		return -1
	}

	var beginSlot func(d int)
	advance := func(d int) {
		lastDevice = d
		if n := next(d); n >= 0 {
			beginSlot(n)
		}
	}
	dwell := func(d int) {
		if pos[d] == 0 {
			sweepStart[d] = sim.Now()
		}
		start := sim.Now()
		sim.Schedule(hcfg.Dwell, func() {
			totalDwell += hcfg.Dwell
			res.Slots = append(res.Slots, Slot{Device: d, Band: cfg.Bands[pos[d]], Start: start, End: sim.Now()})
			pos[d]++
			if pos[d] == len(cfg.Bands) {
				res.Fixes = append(res.Fixes, FixEvent{Device: d, At: sim.Now(), Latency: sim.Now() - sweepStart[d]})
				sweeps[d]++
				pos[d] = 0
			}
			if sweeps[d] < cfg.SweepsPerDevice {
				// Hop this pair to its next band (or back to the first
				// band for its next sweep) before the anchor turns away.
				hoppers[d].Hop(func(retries, failsafes int) { advance(d) })
			} else {
				advance(d)
			}
		})
	}
	beginSlot = func(d int) {
		if lastDevice != d && lastDevice >= 0 {
			// The anchor retunes onto this device's current band, at the
			// same retune cost the hop protocol charges.
			sim.Schedule(hoppers[d].SwitchDelay(), func() { dwell(d) })
			return
		}
		dwell(d)
	}

	beginSlot(0)
	sim.RunAll()

	res.Duration = sim.Now()
	for _, h := range hoppers {
		res.Announces += h.Announces
		res.FailSafes += h.FailSafes
		res.RevertTime += h.RevertTime
	}
	if res.Duration > 0 {
		res.Utilization = totalDwell.Seconds() / res.Duration.Seconds()
		res.FixesPerSecond = float64(len(res.Fixes)) / res.Duration.Seconds()
	}
	return res
}
