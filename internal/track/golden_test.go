package track

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"chronos/internal/sim"
	"chronos/internal/tof"
)

// goldenSessionConfig is the fixture session: a moving target tracked
// with warm starts and velocity-translated seeds — the full steady-state
// pipeline this PR locks down.
func goldenSessionConfig() SessionConfig {
	return SessionConfig{
		Speed:             1.2,
		Sweeps:            5,
		WarmStart:         true,
		VelocityTranslate: true,
		EarlyFixBands:     []int{8},
	}
}

// fixTable renders a session's fixes (early and final) at full float
// precision, so two runs compare byte-for-byte.
func fixTable(r *SessionResult) string {
	var b strings.Builder
	for _, f := range append(append([]Fix{}, r.EarlyFixes...), r.Fixes...) {
		fmt.Fprintf(&b, "at=%d lat=%d bands=%d range=%x true=%x early=%v acc=%v\n",
			f.At, f.Latency, f.Bands, f.Range, f.TrueRange, f.Early, f.Accepted)
	}
	return b.String()
}

func runGolden(t *testing.T, seed int64, cfg SessionConfig) *SessionResult {
	t.Helper()
	office := sim.NewOffice(rand.New(rand.NewSource(3)), sim.OfficeConfig{})
	est := tof.NewEstimator(tof.Config{Mode: tof.BandsFused, Quirk24: true, MaxIter: 1200})
	r, err := RunSession(rand.New(rand.NewSource(seed)), office, est, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Fixes) == 0 {
		t.Fatal("session produced no fixes")
	}
	return r
}

// TestSessionGoldenTraceDeterministic pins the warm, velocity-translated
// session's full fix table: two runs from the same seed must agree
// byte-for-byte (warm-start state, translation, and alias refits are all
// deterministic for a given measurement stream).
func TestSessionGoldenTraceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline session")
	}
	a := fixTable(runGolden(t, 11, goldenSessionConfig()))
	b := fixTable(runGolden(t, 11, goldenSessionConfig()))
	if a != b {
		t.Errorf("same-seed sessions diverged:\n%s\nvs\n%s", a, b)
	}
	if a == "" {
		t.Error("empty fix table")
	}
}

// TestSessionWarmTranslatedMatchesCold pins the accuracy contract of the
// fast path: warm starts with velocity translation must reproduce the
// cold session's raw ranges within solver tolerance, fix for fix.
func TestSessionWarmTranslatedMatchesCold(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline session")
	}
	warmCfg := goldenSessionConfig()
	coldCfg := warmCfg
	coldCfg.WarmStart, coldCfg.VelocityTranslate = false, false
	warm := runGolden(t, 11, warmCfg)
	cold := runGolden(t, 11, coldCfg)
	if len(warm.Fixes) != len(cold.Fixes) {
		t.Fatalf("fix counts differ: warm %d cold %d", len(warm.Fixes), len(cold.Fixes))
	}
	for i := range warm.Fixes {
		if d := math.Abs(warm.Fixes[i].Range - cold.Fixes[i].Range); d > 0.05 {
			t.Errorf("fix %d: warm range %.4f differs from cold %.4f by %.4f m",
				i, warm.Fixes[i].Range, cold.Fixes[i].Range, d)
		}
	}
	if math.Abs(warm.RawRMSE-cold.RawRMSE) > 0.05 {
		t.Errorf("warm RawRMSE %.4f vs cold %.4f", warm.RawRMSE, cold.RawRMSE)
	}
}

// TestSessionVelocityTranslateRequiresWarm checks the config contract:
// translation without warm starts is a no-op session that still runs.
func TestSessionVelocityTranslateRequiresWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline session")
	}
	cfg := goldenSessionConfig()
	cfg.WarmStart = false // VelocityTranslate left on; must be ignored
	cfg.Sweeps = 2
	r := runGolden(t, 7, cfg)
	if len(r.Fixes) != 2 {
		t.Errorf("fixes = %d, want 2", len(r.Fixes))
	}
}
