package track

import (
	"math/rand"
	"testing"
	"time"

	"chronos/internal/sim"
	"chronos/internal/tof"
	"chronos/internal/wifi"
)

// runSolverMulti runs one solver-backed multi-device campaign with the
// given coalescer (nil = per-session solving).
func runSolverMulti(seed int64, office *sim.Office, co *tof.Coalescer) *MultiResult {
	rng := rand.New(rand.NewSource(seed))
	return RunMulti(rng, MultiConfig{
		Scheduler: SchedulerConfig{
			Bands:           wifi.Bands5GHz(),
			Devices:         4,
			SweepsPerDevice: 2,
		},
		// Deliberately unphysical: fix instants are tens of milliseconds
		// apart, so at 300 m/s every advance spans more than the room
		// diagonal and is guaranteed to cross waypoints — exercising each
		// device's walk RNG from its goroutine, which is what -race must
		// see to prove the walks don't share the parent generator.
		Speed: 300.0,
		Solver: &MultiSolver{
			Office: office,
			Estimator: tof.Config{
				Mode: tof.Bands5GHzOnly, MaxIter: 600, Coalescer: co,
			},
		},
	})
}

// TestRunMultiSolverCoalesced is the coalescer's race and determinism
// test: four devices range concurrently through real channel inversion,
// once solving per-session and once through a shared coalescer. Under
// -race this exercises the coalescer's leader/follower handoff; in any
// mode it pins the end-to-end batching contract — every fix must be
// byte-identical whether or not (and however) its solve was batched.
func TestRunMultiSolverCoalesced(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-device solver campaign")
	}
	rng := rand.New(rand.NewSource(3))
	office := sim.NewOffice(rng, sim.OfficeConfig{})

	solo := runSolverMulti(9, office, nil)
	co := tof.NewCoalescer(tof.CoalescerConfig{MaxBatch: 4, Wait: 5 * time.Millisecond})
	batched := runSolverMulti(9, office, co)

	if len(batched.Devices) != len(solo.Devices) {
		t.Fatalf("device count %d != %d", len(batched.Devices), len(solo.Devices))
	}
	fixes := 0
	for d := range solo.Devices {
		sf, bf := solo.Devices[d].Fixes, batched.Devices[d].Fixes
		if len(sf) != len(bf) {
			t.Fatalf("device %d: %d solo fixes, %d batched", d, len(sf), len(bf))
		}
		fixes += len(sf)
		for i := range sf {
			if sf[i].Range != bf[i].Range || sf[i].Smoothed != bf[i].Smoothed ||
				sf[i].Work != bf[i].Work || sf[i].Converged != bf[i].Converged {
				t.Fatalf("device %d fix %d: solo %+v != batched %+v", d, i, sf[i], bf[i])
			}
			if bf[i].BatchSize < 1 || bf[i].BatchSize > 4 {
				t.Fatalf("device %d fix %d: batch size %d out of range", d, i, bf[i].BatchSize)
			}
			if sf[i].BatchSize != 1 {
				t.Fatalf("device %d fix %d: solo batch size %d, want 1", d, i, sf[i].BatchSize)
			}
		}
	}
	if fixes == 0 {
		t.Fatal("no fixes produced")
	}
}
