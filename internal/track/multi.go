package track

import (
	"math"
	"math/rand"
	"sync"

	"chronos/internal/csi"
	"chronos/internal/drone"
	"chronos/internal/geo"
	"chronos/internal/sim"
	"chronos/internal/tof"
	"chronos/internal/wifi"
)

// MultiConfig tunes a multi-device tracking run: the scheduler interleaves
// sweeps across N device pairs, and each device's fixes are drawn from the
// empirical Chronos range-error model (drone.StatSensor) at the virtual
// instants the schedule makes them available, then Kalman-smoothed. This
// is the capacity-scale counterpart of RunSession: protocol timing is
// exact, ranging error is statistical.
type MultiConfig struct {
	Scheduler SchedulerConfig
	// Speed is each target's walking speed in m/s (0 = static targets).
	Speed float64
	// RoomW, RoomH bound each target's walk (default 12 × 10 m).
	RoomW, RoomH float64
	// Sensor models per-fix ranging error (default drone.StatSensor{}).
	Sensor drone.RangeSensor
	Filter FilterConfig
	// Solver, when non-nil, replaces the statistical sensor with real
	// channel inversion: each fix event triggers a full CSI sweep and
	// profile inversion for its device, and devices run on concurrent
	// goroutines so their simultaneous solves coalesce into batched
	// SolveBatch calls when the estimator config carries a shared
	// tof.Coalescer. All per-device randomness — walk waypoints, radio
	// noise, channel draws — comes from a device RNG seeded in device
	// order from rng, so ranges and RMSEs stay deterministic at any
	// goroutine interleaving — batching changes Fix.BatchSize, never a
	// result.
	Solver *MultiSolver
}

// MultiSolver configures solver-backed ranging for RunMulti.
type MultiSolver struct {
	// Office supplies the multipath channel model (required).
	Office *sim.Office
	// Estimator is the per-device estimator configuration. Set its
	// Coalescer field to one shared tof.Coalescer to batch the devices'
	// concurrent inversions; leave it nil to solve per-session.
	Estimator tof.Config
	// PairsPerBand is the CSI pairs measured per band sweep (default 2).
	PairsPerBand int
}

func (c MultiConfig) withDefaults() MultiConfig {
	if c.RoomW == 0 {
		c.RoomW = 12
	}
	if c.RoomH == 0 {
		c.RoomH = 10
	}
	if c.Sensor == nil {
		c.Sensor = drone.StatSensor{}
	}
	return c
}

// DeviceTrack is one device's smoothed trajectory over the schedule.
type DeviceTrack struct {
	Device                int
	Fixes                 []Fix
	RawRMSE, SmoothedRMSE float64
	Rejected              int
}

// MultiResult combines the schedule's capacity metrics with the
// per-device tracking error they imply.
type MultiResult struct {
	Schedule *Schedule
	Devices  []DeviceTrack
}

// RunMulti runs the interleaved schedule and replays its fix events
// through per-device walks, sensors, and Kalman trackers. Each device
// walks independently; fix staleness under contention (fewer fixes per
// second as N grows) directly inflates its tracking error.
func RunMulti(rng *rand.Rand, cfg MultiConfig) *MultiResult {
	cfg = cfg.withDefaults()
	sched := RunSchedule(rng, cfg.Scheduler)
	n := cfg.Scheduler.withDefaults().Devices

	anchor := geo.Point{}
	walks := make([]*drone.Walk, n)
	trackers := make([]*RangeTracker, n)
	walkedTo := make([]float64, n)
	for d := 0; d < n; d++ {
		if cfg.Solver == nil {
			// Solver-mode walks are built inside each device's goroutine
			// from that device's own RNG: a walk retains the *rand.Rand it
			// was built with for waypoint draws, and the shared rng is not
			// goroutine-safe.
			walks[d] = drone.NewWalk(rng, cfg.RoomW, cfg.RoomH)
			walks[d].Speed = cfg.Speed
		}
		trackers[d] = NewRangeTracker(cfg.Filter)
	}

	out := &MultiResult{Schedule: sched, Devices: make([]DeviceTrack, n)}
	for d := range out.Devices {
		out.Devices[d].Device = d
	}
	rawSq := make([]float64, n)
	smoothSq := make([]float64, n)

	if cfg.Solver != nil {
		runMultiSolver(rng, cfg, sched, trackers, out, rawSq, smoothSq)
		finishMulti(out, trackers, rawSq, smoothSq)
		return out
	}

	// Fix events are already in completion order; walks advance lazily to
	// each device's fix instants.
	for _, fe := range sched.Fixes {
		d := fe.Device
		if t := fe.At.Seconds(); t > walkedTo[d] {
			walks[d].Advance(t - walkedTo[d])
			walkedTo[d] = t
		}
		pos := walks[d].Pos()
		truth := anchor.Dist(pos)
		meas := cfg.Sensor.Range(rng, anchor, pos)
		smoothed, accepted := trackers[d].Observe(fe.At, meas)
		recordFix(int64(fe.Latency), accepted, true)
		out.Devices[d].Fixes = append(out.Devices[d].Fixes, Fix{
			Device: d, At: fe.At, Latency: fe.Latency,
			Range: meas, Smoothed: smoothed, TrueRange: truth, Accepted: accepted,
		})
		rawSq[d] += (meas - truth) * (meas - truth)
		smoothSq[d] += (smoothed - truth) * (smoothed - truth)
	}

	finishMulti(out, trackers, rawSq, smoothSq)
	return out
}

// finishMulti rolls per-device error sums into the RMSE fields.
func finishMulti(out *MultiResult, trackers []*RangeTracker, rawSq, smoothSq []float64) {
	for d := range out.Devices {
		dt := &out.Devices[d]
		dt.Rejected = trackers[d].Rejected
		if k := float64(len(dt.Fixes)); k > 0 {
			dt.RawRMSE = math.Sqrt(rawSq[d] / k)
			dt.SmoothedRMSE = math.Sqrt(smoothSq[d] / k)
		} else {
			dt.RawRMSE, dt.SmoothedRMSE = math.NaN(), math.NaN()
		}
	}
}

// runMultiSolver replays the schedule's fix events through real channel
// inversion, one goroutine per device so concurrent sweeps of the shared
// band geometry coalesce into batched solves. Each device draws from its
// own RNG (seeded in device order before the fan-out) and constructs its
// own walk, link, estimator, and tracker inside its goroutine — nothing
// random is shared, so the only cross-device coupling is the coalescer,
// whose batches are byte-identical to solo solves, keeping the output
// deterministic even though batch composition is not.
func runMultiSolver(rng *rand.Rand, cfg MultiConfig, sched *Schedule, trackers []*RangeTracker, out *MultiResult, rawSq, smoothSq []float64) {
	ms := cfg.Solver
	pairs := ms.PairsPerBand
	if pairs == 0 {
		pairs = 2
	}
	n := len(out.Devices)
	seeds := make([]int64, n)
	for d := range seeds {
		seeds[d] = rng.Int63()
	}
	byDev := make([][]FixEvent, n)
	for _, fe := range sched.Fixes {
		byDev[fe.Device] = append(byDev[fe.Device], fe)
	}

	office := ms.Office
	roomW := math.Min(cfg.RoomW, office.Width-2)
	roomH := math.Min(cfg.RoomH, office.Height-2)
	roomOrigin := geo.Point{X: (office.Width - roomW) / 2, Y: (office.Height - roomH) / 2}
	anchor := roomOrigin

	var wg sync.WaitGroup
	for d := 0; d < n; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			rngd := rand.New(rand.NewSource(seeds[d]))
			// The walk is owned by this goroutine and draws its waypoints
			// from the device RNG; it lives in the office-clamped room, so
			// walk geometry and simulated placements always agree even
			// when cfg.RoomW/RoomH exceed the office.
			walk := drone.NewWalk(rngd, roomW, roomH)
			walk.Speed = cfg.Speed
			est := tof.NewEstimator(ms.Estimator)
			bands := tof.BandsFor(est.Config())

			tx, rx := csi.NewRadio(rngd), csi.NewRadio(rngd)
			tx.Quirk24, rx.Quirk24 = ms.Estimator.Quirk24, ms.Estimator.Quirk24
			link := &csi.Link{TX: tx, RX: rx}

			// Per-pair hardware calibration, exactly as RunSession's.
			calP := office.RandomPlacement(rngd, 8, false)
			link.Channel = office.Channel(calP, 5.5e9)
			link.SNRdB = sim.LinkSNR(0, calP.TrueDistance(), false)
			calSweep := link.Sweep(rngd, bands, 3, 2.4e-3)
			offset, err := tof.Calibrate(est, bands, calSweep, calP.TrueDistance())
			if err != nil {
				return
			}

			walkedTo := 0.0
			for _, fe := range byDev[d] {
				if t := fe.At.Seconds(); t > walkedTo {
					walk.Advance(t - walkedTo)
					walkedTo = t
				}
				p := walk.Pos()
				pos := geo.Point{X: roomOrigin.X + p.X, Y: roomOrigin.Y + p.Y}
				pl := sim.Placement{TX: anchor, RX: pos}
				link.Channel = office.Channel(pl, 5.5e9)
				link.SNRdB = sim.LinkSNR(0, pl.TrueDistance(), false)
				sweep := link.Sweep(rngd, bands, pairs, 2.4e-3)
				r, err := est.Estimate(bands, sweep)
				if err != nil {
					continue
				}
				meas := r.Distance - offset*wifi.SpeedOfLight
				truth := anchor.Dist(pos)
				smoothed, accepted := trackers[d].Observe(fe.At, meas)
				recordFix(int64(fe.Latency), accepted, r.Converged)
				out.Devices[d].Fixes = append(out.Devices[d].Fixes, Fix{
					Device: d, At: fe.At, Latency: fe.Latency, Bands: len(bands),
					Range: meas, Smoothed: smoothed, TrueRange: truth, Accepted: accepted,
					Work: r.Work, Converged: r.Converged, BatchSize: r.BatchSize,
				})
				rawSq[d] += (meas - truth) * (meas - truth)
				smoothSq[d] += (smoothed - truth) * (smoothed - truth)
			}
		}(d)
	}
	wg.Wait()
}
