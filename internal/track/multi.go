package track

import (
	"math"
	"math/rand"

	"chronos/internal/drone"
	"chronos/internal/geo"
)

// MultiConfig tunes a multi-device tracking run: the scheduler interleaves
// sweeps across N device pairs, and each device's fixes are drawn from the
// empirical Chronos range-error model (drone.StatSensor) at the virtual
// instants the schedule makes them available, then Kalman-smoothed. This
// is the capacity-scale counterpart of RunSession: protocol timing is
// exact, ranging error is statistical.
type MultiConfig struct {
	Scheduler SchedulerConfig
	// Speed is each target's walking speed in m/s (0 = static targets).
	Speed float64
	// RoomW, RoomH bound each target's walk (default 12 × 10 m).
	RoomW, RoomH float64
	// Sensor models per-fix ranging error (default drone.StatSensor{}).
	Sensor drone.RangeSensor
	Filter FilterConfig
}

func (c MultiConfig) withDefaults() MultiConfig {
	if c.RoomW == 0 {
		c.RoomW = 12
	}
	if c.RoomH == 0 {
		c.RoomH = 10
	}
	if c.Sensor == nil {
		c.Sensor = drone.StatSensor{}
	}
	return c
}

// DeviceTrack is one device's smoothed trajectory over the schedule.
type DeviceTrack struct {
	Device                int
	Fixes                 []Fix
	RawRMSE, SmoothedRMSE float64
	Rejected              int
}

// MultiResult combines the schedule's capacity metrics with the
// per-device tracking error they imply.
type MultiResult struct {
	Schedule *Schedule
	Devices  []DeviceTrack
}

// RunMulti runs the interleaved schedule and replays its fix events
// through per-device walks, sensors, and Kalman trackers. Each device
// walks independently; fix staleness under contention (fewer fixes per
// second as N grows) directly inflates its tracking error.
func RunMulti(rng *rand.Rand, cfg MultiConfig) *MultiResult {
	cfg = cfg.withDefaults()
	sched := RunSchedule(rng, cfg.Scheduler)
	n := cfg.Scheduler.withDefaults().Devices

	anchor := geo.Point{}
	walks := make([]*drone.Walk, n)
	trackers := make([]*RangeTracker, n)
	walkedTo := make([]float64, n)
	for d := 0; d < n; d++ {
		walks[d] = drone.NewWalk(rng, cfg.RoomW, cfg.RoomH)
		walks[d].Speed = cfg.Speed
		trackers[d] = NewRangeTracker(cfg.Filter)
	}

	out := &MultiResult{Schedule: sched, Devices: make([]DeviceTrack, n)}
	for d := range out.Devices {
		out.Devices[d].Device = d
	}
	rawSq := make([]float64, n)
	smoothSq := make([]float64, n)

	// Fix events are already in completion order; walks advance lazily to
	// each device's fix instants.
	for _, fe := range sched.Fixes {
		d := fe.Device
		if t := fe.At.Seconds(); t > walkedTo[d] {
			walks[d].Advance(t - walkedTo[d])
			walkedTo[d] = t
		}
		pos := walks[d].Pos()
		truth := anchor.Dist(pos)
		meas := cfg.Sensor.Range(rng, anchor, pos)
		smoothed, accepted := trackers[d].Observe(fe.At, meas)
		out.Devices[d].Fixes = append(out.Devices[d].Fixes, Fix{
			Device: d, At: fe.At, Latency: fe.Latency,
			Range: meas, Smoothed: smoothed, TrueRange: truth, Accepted: accepted,
		})
		rawSq[d] += (meas - truth) * (meas - truth)
		smoothSq[d] += (smoothed - truth) * (smoothed - truth)
	}

	for d := range out.Devices {
		dt := &out.Devices[d]
		dt.Rejected = trackers[d].Rejected
		if k := float64(len(dt.Fixes)); k > 0 {
			dt.RawRMSE = math.Sqrt(rawSq[d] / k)
			dt.SmoothedRMSE = math.Sqrt(smoothSq[d] / k)
		} else {
			dt.RawRMSE, dt.SmoothedRMSE = math.NaN(), math.NaN()
		}
	}
	return out
}
