// Package track is the streaming multi-device tracking subsystem: it
// turns the per-sweep position/range fixes of the batch pipeline into
// continuous trajectories. Three layers compose:
//
//  1. the incremental estimator core (tof.Sweep) folds CSI in band by
//     band as the hop protocol delivers it, so a fix is ready the moment
//     the last band lands — with a degraded early fix available before;
//  2. per-device constant-velocity Kalman filters (RangeTracker,
//     PositionTracker) smooth successive fixes and gate out the
//     profile-ghost outliers of §12.1's CDF tail;
//  3. a multi-client session scheduler interleaves band-hopping sweeps
//     across N concurrent devices on the mac/hop virtual-time substrate
//     and reports aggregate airtime and fix capacity.
//
// # Concurrency contract
//
// Nothing in this package is safe for concurrent use: trackers carry
// filter state, sessions own a simulator, and a session's tof.Sweep
// accumulator carries warm-start state. Callers that fan sessions out
// over goroutines (internal/exp's campaign engine) give each concurrent
// trial its own tracker/session and its own tof.Estimator — estimators
// are cheap to construct because the expensive NDFT plans live in a
// shared, concurrency-safe registry inside internal/tof, warmed once per
// band-group geometry for the whole process. Per-trial estimators are
// still required (rather than one shared instance) only because the
// one-time tof.Calibrate briefly rewrites the estimator's configuration.
//
// # Warm-started tracking
//
// Steady-state tracking solves a nearly identical inversion sweep after
// sweep. SessionConfig.WarmStart threads tof.Sweep's warm starts through
// the streaming pipeline: each sweep's Algorithm 1 iterate starts from
// the previous fix's profile and the solver needs a fraction of the
// cold iterations while converging to the same fixed points. On moving
// targets SessionConfig.VelocityTranslate closes the loop between the
// filter and the solver: the Kalman radial-velocity estimate predicts
// the inter-sweep delay drift, and the retained warm profiles are
// circularly shifted by that amount (tof.Sweep.TranslateWarm) so the
// solver's restricted working set is centered on where the paths will
// be — keeping warm starts profitable at walking speeds where static
// seeds trail the target and revert to cold.
package track

import (
	"time"

	"chronos/internal/geo"
)

// FilterConfig tunes the constant-velocity Kalman filters.
type FilterConfig struct {
	// ProcessAccel is the white-acceleration noise density driving the
	// constant-velocity model, in m/s² (default 0.7 — brisk human motion
	// changes direction on the order of a second).
	ProcessAccel float64
	// MeasSigma is the measurement standard deviation in meters (default
	// 0.15, the Chronos core ranging error at room scale).
	MeasSigma float64
	// Gate is the innovation gate in standard deviations (default 3.5).
	// Measurements whose normalized innovation exceeds the gate are
	// rejected as outliers. Set negative to disable gating.
	Gate float64
	// MaxRejects bounds consecutive gate rejections before the filter
	// reinitializes on the next measurement (default 4) — the target may
	// genuinely have teleported (tracking reacquisition).
	MaxRejects int
}

func (c FilterConfig) withDefaults() FilterConfig {
	if c.ProcessAccel == 0 {
		c.ProcessAccel = 0.7
	}
	if c.MeasSigma == 0 {
		c.MeasSigma = 0.15
	}
	if c.Gate == 0 {
		c.Gate = 3.5
	}
	if c.MaxRejects == 0 {
		c.MaxRejects = 4
	}
	return c
}

// axis is one dimension of a constant-velocity Kalman filter: state
// (position p, velocity v) with covariance [[ppp, ppv], [ppv, pvv]].
type axis struct {
	p, v          float64
	ppp, ppv, pvv float64
}

// init starts the axis at a first measurement with no velocity knowledge.
func (a *axis) init(z, measVar, velVar float64) {
	a.p, a.v = z, 0
	a.ppp, a.ppv, a.pvv = measVar, 0, velVar
}

// predict propagates the state dt seconds under the CV model with
// white-acceleration density q²: F = [1 dt; 0 1], Q = q²·[dt³/3 dt²/2;
// dt²/2 dt].
func (a *axis) predict(dt, q float64) {
	if dt <= 0 {
		return
	}
	q2 := q * q
	a.p += a.v * dt
	ppp := a.ppp + 2*dt*a.ppv + dt*dt*a.pvv + q2*dt*dt*dt/3
	ppv := a.ppv + dt*a.pvv + q2*dt*dt/2
	pvv := a.pvv + q2*dt
	a.ppp, a.ppv, a.pvv = ppp, ppv, pvv
}

// innovation returns the measurement residual and its variance.
func (a *axis) innovation(z, measVar float64) (y, s float64) {
	return z - a.p, a.ppp + measVar
}

// update folds measurement z with variance measVar into the state.
func (a *axis) update(z, measVar float64) {
	y, s := a.innovation(z, measVar)
	kp, kv := a.ppp/s, a.ppv/s
	a.p += kp * y
	a.v += kv * y
	ppp := (1 - kp) * a.ppp
	ppv := (1 - kp) * a.ppv
	pvv := a.pvv - kv*a.ppv
	a.ppp, a.ppv, a.pvv = ppp, ppv, pvv
}

// initVelVar is the velocity variance assigned at (re)initialization:
// (2 m/s)² covers walking and slow-drone targets.
const initVelVar = 4.0

// RangeTracker smooths a stream of scalar range fixes (one anchor) with a
// constant-velocity Kalman filter and innovation gating.
type RangeTracker struct {
	cfg     FilterConfig
	ax      axis
	primed  bool
	last    time.Duration
	rejects int
	// Rejected counts measurements discarded by the gate over the
	// tracker's lifetime.
	Rejected int
}

// NewRangeTracker builds a range tracker.
func NewRangeTracker(cfg FilterConfig) *RangeTracker {
	return &RangeTracker{cfg: cfg.withDefaults()}
}

// Observe folds one range fix taken at virtual time at and returns the
// smoothed range plus whether the measurement was accepted by the gate.
func (t *RangeTracker) Observe(at time.Duration, r float64) (float64, bool) {
	c := t.cfg
	mv := c.MeasSigma * c.MeasSigma
	if !t.primed {
		t.ax.init(r, mv, initVelVar)
		t.primed, t.last = true, at
		return r, true
	}
	t.ax.predict((at - t.last).Seconds(), c.ProcessAccel)
	t.last = at
	if y, s := t.ax.innovation(r, mv); c.Gate > 0 && y*y > c.Gate*c.Gate*s {
		t.rejects++
		if t.rejects > c.MaxRejects {
			// Reacquire: too many consecutive rejections means the model
			// lost the target, not that the measurements are wrong. This
			// measurement is accepted (it seeds the new state), so it does
			// not count toward Rejected.
			t.ax.init(r, mv, initVelVar)
			t.rejects = 0
			return r, true
		}
		t.Rejected++
		return t.ax.p, false
	}
	t.ax.update(r, mv)
	t.rejects = 0
	return t.ax.p, true
}

// Range returns the current smoothed range estimate.
func (t *RangeTracker) Range() float64 { return t.ax.p }

// Velocity returns the current radial-velocity estimate in m/s.
func (t *RangeTracker) Velocity() float64 { return t.ax.v }

// PositionTracker smooths a stream of 2D position fixes (e.g. from the
// loc trilateration engine) with two decoupled constant-velocity axes
// and a joint innovation gate.
type PositionTracker struct {
	cfg     FilterConfig
	x, y    axis
	primed  bool
	last    time.Duration
	rejects int
	// Rejected counts measurements discarded by the gate.
	Rejected int
}

// NewPositionTracker builds a position tracker.
func NewPositionTracker(cfg FilterConfig) *PositionTracker {
	return &PositionTracker{cfg: cfg.withDefaults()}
}

// Observe folds one position fix at virtual time at and returns the
// smoothed position plus whether the fix passed the gate.
func (t *PositionTracker) Observe(at time.Duration, p geo.Point) (geo.Point, bool) {
	c := t.cfg
	mv := c.MeasSigma * c.MeasSigma
	if !t.primed {
		t.x.init(p.X, mv, initVelVar)
		t.y.init(p.Y, mv, initVelVar)
		t.primed, t.last = true, at
		return p, true
	}
	dt := (at - t.last).Seconds()
	t.x.predict(dt, c.ProcessAccel)
	t.y.predict(dt, c.ProcessAccel)
	t.last = at
	yx, sx := t.x.innovation(p.X, mv)
	yy, sy := t.y.innovation(p.Y, mv)
	// Joint Mahalanobis gate over both axes (the filter axes are
	// decoupled, so the innovation covariance is diagonal).
	if c.Gate > 0 && yx*yx/sx+yy*yy/sy > c.Gate*c.Gate {
		t.rejects++
		if t.rejects > c.MaxRejects {
			// Reacquisition: the seeding measurement is accepted, so it
			// does not count toward Rejected.
			t.x.init(p.X, mv, initVelVar)
			t.y.init(p.Y, mv, initVelVar)
			t.rejects = 0
			return p, true
		}
		t.Rejected++
		return t.Position(), false
	}
	t.x.update(p.X, mv)
	t.y.update(p.Y, mv)
	t.rejects = 0
	return t.Position(), true
}

// Position returns the current smoothed position.
func (t *PositionTracker) Position() geo.Point { return geo.Point{X: t.x.p, Y: t.y.p} }

// Velocity returns the current velocity estimate in m/s per axis.
func (t *PositionTracker) Velocity() geo.Point { return geo.Point{X: t.x.v, Y: t.y.v} }
