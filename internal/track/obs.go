package track

import "chronos/internal/obs"

// Tracking observability handles. Fix counters and the fix-latency
// histogram are measured on the MAC simulator's virtual clock, so both
// their counts and their contents are deterministic per seed; only the
// wall-clock stage spans (sweep accumulate, Kalman update) vary per
// host.
var (
	// obsFixes counts final (full-sweep) fixes across all sessions.
	obsFixes = obs.NewCounter("track.fixes")
	// obsEarlyFixes counts early partial-sweep fixes.
	obsEarlyFixes = obs.NewCounter("track.early_fixes")
	// obsCappedFixes counts fixes whose inversion hit the iteration cap.
	obsCappedFixes = obs.NewCounter("track.capped_fixes")
	// obsGateRejects counts fixes discarded by the Kalman innovation gate.
	obsGateRejects = obs.NewCounter("track.gate_rejects")
	// obsFixLatencyNs is per-fix protocol latency (sweep start to fix) in
	// virtual nanoseconds — deterministic contents, unlike the wall spans.
	obsFixLatencyNs = obs.NewHist("track.fix_latency_ns")
	// obsStageSweepNs spans one sweep's accumulate stage (all band
	// dwells, hops, and CSI bookkeeping) in wall nanoseconds.
	obsStageSweepNs = obs.NewHist("track.stage.sweep_ns")
	// obsStageKalmanNs spans one Kalman observe/update in wall
	// nanoseconds.
	obsStageKalmanNs = obs.NewHist("track.stage.kalman_ns")

	obsFixRateHz = obs.NewGauge("track.fix_rate_hz")
	obsCapRate   = obs.NewGauge("track.cap_rate")
)

func init() {
	// Fix rate and cap rate are derived at snapshot time from the
	// counters already in the snapshot — the live numbers the -watch
	// mode polls.
	obs.OnSnapshot(func(s *obs.Snapshot) {
		fixes := s.Counters["track.fixes"]
		if up := float64(s.UptimeNs) / 1e9; up > 0 {
			obsFixRateHz.Set(float64(fixes) / up)
		}
		if fixes > 0 {
			obsCapRate.Set(float64(s.Counters["track.capped_fixes"]) / float64(fixes))
		}
		s.Gauges["track.fix_rate_hz"] = obsFixRateHz.Value()
		s.Gauges["track.cap_rate"] = obsCapRate.Value()
	})
}

// recordFix folds one final fix into the tracking metrics.
func recordFix(latency int64, accepted, converged bool) {
	if !obs.Enabled() {
		return
	}
	obsFixes.Inc()
	if !accepted {
		obsGateRejects.Inc()
	}
	if !converged {
		obsCappedFixes.Inc()
	}
	obsFixLatencyNs.Observe(float64(latency))
}
