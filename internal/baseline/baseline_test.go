package baseline

import (
	"math"
	"math/rand"
	"testing"

	"chronos/internal/rf"
	"chronos/internal/stats"
	"chronos/internal/wifi"
)

func TestClockToFQuantization(t *testing.T) {
	// At 20 MHz a tick is 50 ns → a 10 ns ToF with zero delay rounds to 0.
	got := ClockToF(10e-9, 0, 0, 20e6)
	if got != 0 {
		t.Errorf("ClockToF = %v, want 0 (quantized away)", got)
	}
	// 30 ns rounds up to 50 ns.
	got = ClockToF(30e-9, 0, 0, 20e6)
	if math.Abs(got-50e-9) > 1e-15 {
		t.Errorf("ClockToF = %v, want 50 ns", got)
	}
}

func TestClockRangeErrorScale(t *testing.T) {
	// The paper cites ~2.3 m mean error for 88 MHz clock systems and
	// ~15 m granularity at 20 MHz. Our model should reproduce the order
	// of magnitude and the clock-speed ordering.
	rng := rand.New(rand.NewSource(1))
	model := DefaultDelayModel()
	meanErr := func(clockHz float64) float64 {
		var errs []float64
		for i := 0; i < 2000; i++ {
			errs = append(errs, ClockRangeError(rng, 20e-9, clockHz, model))
		}
		return stats.Mean(errs)
	}
	e20, e88 := meanErr(20e6), meanErr(88e6)
	// Both clocks land at meters of error: the per-packet detection-delay
	// variance (σ ≈ 25 ns ≈ 7.5 m) dominates the quantization difference,
	// which is exactly why faster clocks alone never fixed Wi-Fi ToF
	// (§1 "Packet Detection Delay").
	if e88 < 1 || e88 > 20 {
		t.Errorf("88 MHz mean error = %.2f m, want meters-scale", e88)
	}
	if e20 < 1 || e20 > 40 {
		t.Errorf("20 MHz mean error = %.2f m, want meters-scale", e20)
	}
	// Either way the clock baseline is ≥ an order of magnitude worse than
	// Chronos's ~15 cm.
	if e20 < 10*0.15 || e88 < 10*0.15 {
		t.Error("clock baseline implausibly close to Chronos accuracy")
	}
}

func TestDelayModelStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := DefaultDelayModel()
	var vals []float64
	for i := 0; i < 10000; i++ {
		vals = append(vals, m.Draw(rng))
	}
	med := stats.Median(vals)
	if med < 170e-9 || med > 190e-9 {
		t.Errorf("median = %v, want ≈177 ns", med)
	}
	for _, v := range vals {
		if v <= 0 {
			t.Fatal("non-positive delay")
		}
	}
}

func TestToAErrorDominatesChronos(t *testing.T) {
	// Uncompensated ToA error is tens of ns — orders beyond Chronos's
	// sub-ns. This is the Fig. 7c punchline.
	rng := rand.New(rand.NewSource(3))
	m := DefaultDelayModel()
	var errs []float64
	for i := 0; i < 5000; i++ {
		errs = append(errs, math.Abs(ToAError(rng, m)))
	}
	med := stats.Median(errs)
	if med < 5e-9 {
		t.Errorf("median ToA error = %v, implausibly small", med)
	}
	if med > 100e-9 {
		t.Errorf("median ToA error = %v, implausibly large", med)
	}
}

func TestSingleBandToFExactModulo(t *testing.T) {
	// A noiseless single path must be recovered exactly modulo 1/f.
	freq := 2.412e9
	for _, tau := range []float64{0.1e-9, 2e-9, 7.77e-9} {
		ch := rf.NewChannel([]rf.Path{{Delay: tau, Gain: 1}})
		est, period := SingleBandToF(ch, freq)
		want := math.Mod(tau, period)
		if math.Abs(est-want) > 1e-15 {
			t.Errorf("tau %v: est %v, want %v", tau, est, want)
		}
	}
}

func TestSingleBandRangeErrorSmallModulo(t *testing.T) {
	// Within its 12 cm period the single-band method is extremely
	// precise — the problem is the ambiguity, not the precision.
	ch := rf.NewChannel([]rf.Path{{Delay: 10e-9, Gain: 1}})
	if e := SingleBandRangeError(ch, 2.412e9, 10e-9); e > 1e-6 {
		t.Errorf("modular error = %v m", e)
	}
}

func TestAmbiguityCount(t *testing.T) {
	// ~12.4 cm period at 2.412 GHz → ≈80 aliases in 10 m.
	n := AmbiguityCount(2.412e9, 10)
	if n < 70 || n > 90 {
		t.Errorf("ambiguities = %d, want ≈80", n)
	}
	// Many fewer at a lower frequency.
	if n2 := AmbiguityCount(100e6, 10); n2 >= n {
		t.Errorf("lower frequency should alias less: %d vs %d", n2, n)
	}
}

func TestSpeedOfLightConsistency(t *testing.T) {
	// Guard against unit drift between packages.
	if math.Abs(wifi.SpeedOfLight-299792458) > 1 {
		t.Error("speed of light changed")
	}
}
