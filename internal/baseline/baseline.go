// Package baseline implements the comparison systems the paper positions
// Chronos against: clock-based time-of-flight (the ~tens-of-nanoseconds
// resolution the related work is limited to), time-of-arrival that
// includes packet-detection delay (the SourceSync-class measurement §5
// contrasts with), and single-band phase ranging (the 12 cm modular
// ambiguity of §4 that motivates multi-band stitching).
package baseline

import (
	"math"
	"math/rand"

	"chronos/internal/rf"
	"chronos/internal/wifi"
)

// ClockToF quantizes a (true) time of flight plus detection delay to one
// clock tick of clockHz, the best a timestamp-based ranger can do
// ([55, 10]: Wi-Fi cards expose 20–88 MHz clocks). The caller is assumed
// to subtract the average detection delay (the best static compensation),
// passed as meanDelay.
func ClockToF(trueToF, detectionDelay, meanDelay, clockHz float64) float64 {
	tick := 1 / clockHz
	measured := trueToF + detectionDelay
	quantized := math.Round(measured/tick) * tick
	return quantized - meanDelay
}

// ClockRangeError returns the absolute ranging error (meters) of the
// clock-based method for one packet.
func ClockRangeError(rng *rand.Rand, trueToF, clockHz float64, radio DelayModel) float64 {
	delay := radio.Draw(rng)
	est := ClockToF(trueToF, delay, radio.Mean(), clockHz)
	return math.Abs(est-trueToF) * wifi.SpeedOfLight
}

// DelayModel abstracts the packet-detection delay distribution so the
// baselines share the csi radio's statistics without importing it.
type DelayModel struct {
	Med   float64 // median detection delay (s)
	Sigma float64 // spread (s)
}

// DefaultDelayModel matches the Fig. 7c measurement: median 177 ns,
// σ 24.76 ns.
func DefaultDelayModel() DelayModel { return DelayModel{Med: 177e-9, Sigma: 24.76e-9} }

// Draw samples one detection delay.
func (d DelayModel) Draw(rng *rand.Rand) float64 {
	v := d.Med + rng.NormFloat64()*d.Sigma
	if rng.Float64() < 0.1 {
		v += rng.Float64() * 2 * d.Sigma
	}
	if v < 10e-9 {
		v = 10e-9
	}
	return v
}

// Mean returns the approximate mean of the model (median plus the skew
// correction of the 10% heavy shoulder).
func (d DelayModel) Mean() float64 { return d.Med + 0.1*d.Sigma }

// ToAError returns the error (seconds) of an uncompensated time-of-arrival
// measurement against the true time of flight: the per-packet detection
// delay variance leaks straight into the estimate even after subtracting
// the mean delay. This is why §5 exists.
func ToAError(rng *rand.Rand, model DelayModel) float64 {
	return model.Draw(rng) - model.Mean()
}

// SingleBandToF estimates time of flight from the channel phase on one
// band only: τ = −∠h/(2πf) mod 1/f (§4 Eq. 3). The returned estimate is
// the smallest non-negative representative; the ambiguity period 1/f is
// also returned. At 2.4 GHz the period is ≈0.4 ns ≈ 12 cm, which is what
// makes a single band useless for absolute ranging.
func SingleBandToF(ch *rf.Channel, freq float64) (tof, period float64) {
	h := ch.Response(freq)
	phase := math.Atan2(imag(h), real(h))
	period = 1 / freq
	tof = math.Mod(-phase/(2*math.Pi*freq), period)
	if tof < 0 {
		tof += period
	}
	return tof, period
}

// SingleBandRangeError returns the absolute distance error of single-band
// phase ranging: the estimate is only defined modulo ~12 cm, so the error
// is computed against the true ToF folded into the same period.
func SingleBandRangeError(ch *rf.Channel, freq, trueToF float64) float64 {
	est, period := SingleBandToF(ch, freq)
	truthMod := math.Mod(trueToF, period)
	diff := math.Abs(est - truthMod)
	if diff > period/2 {
		diff = period - diff
	}
	return diff * wifi.SpeedOfLight
}

// AmbiguityCount returns how many plausible positions a single-band
// estimate leaves within maxRange meters — the count of aliases a
// receiver cannot tell apart (≈ maxRange / 12 cm at 2.4 GHz).
func AmbiguityCount(freq, maxRange float64) int {
	period := wifi.SpeedOfLight / freq
	return int(maxRange / period)
}
