package csi

import (
	"math/rand"

	"chronos/internal/rf"
	"chronos/internal/wifi"
)

// Pair is the forward/reverse CSI pair §7 multiplies: the receiver's
// measurement of the transmitter's packet and the transmitter's
// measurement of the receiver's acknowledgment, captured a short time
// apart on the same band.
type Pair struct {
	Forward Measurement // measured at the receiver (CSIʳˣ)
	Reverse Measurement // measured at the transmitter (CSIᵗˣ)
}

// Link couples two radios through a common propagation channel and
// produces CSI pairs the way the Chronos hopping protocol does.
type Link struct {
	TX, RX *Radio
	// Channel is the over-the-air channel, assumed reciprocal (§7):
	// identical in both directions up to the hardware constant κ, which
	// the radios add themselves.
	Channel *rf.Channel
	// SNRdB is the per-subcarrier measurement SNR (default 30).
	SNRdB float64
	// PairSeparation is the packet→ACK turnaround (seconds); defaults to
	// 28 µs (SIFS + ACK duration), leaving the small residual CFO phase
	// error the paper notes in §7 observation (1).
	PairSeparation float64
	// DisableDetectionDelay / DisableCFO feed the ablation benches.
	DisableDetectionDelay bool
	DisableCFO            bool
}

// MeasurePair captures one forward/reverse CSI pair on band b at simulated
// time t.
func (l *Link) MeasurePair(rng *rand.Rand, b wifi.Band, t float64) Pair {
	sep := l.PairSeparation
	if sep == 0 {
		sep = 28e-6
	}
	snr := l.SNRdB
	if snr == 0 {
		snr = 30
	}
	fwd := l.RX.Measure(rng, l.Channel, b, MeasureOptions{
		SNRdB: snr, Time: t, TX: l.TX,
		DisableDetectionDelay: l.DisableDetectionDelay,
		DisableCFO:            l.DisableCFO,
	})
	rev := l.TX.Measure(rng, l.Channel, b, MeasureOptions{
		SNRdB: snr, Time: t + sep, TX: l.RX,
		DisableDetectionDelay: l.DisableDetectionDelay,
		DisableCFO:            l.DisableCFO,
	})
	return Pair{Forward: fwd, Reverse: rev}
}

// Sweep measures pairsPerBand CSI pairs on every band, advancing simulated
// time by dwell per band (the 2–3 ms per-band dwell of §4). It returns one
// slice of pairs per band, index-aligned with bands.
func (l *Link) Sweep(rng *rand.Rand, bands []wifi.Band, pairsPerBand int, dwell float64) [][]Pair {
	if pairsPerBand < 1 {
		pairsPerBand = 1
	}
	if dwell == 0 {
		dwell = 2.4e-3
	}
	out := make([][]Pair, len(bands))
	t := 0.0
	for i, b := range bands {
		out[i] = make([]Pair, pairsPerBand)
		step := dwell / float64(pairsPerBand+1)
		for p := 0; p < pairsPerBand; p++ {
			out[i][p] = l.MeasurePair(rng, b, t+float64(p+1)*step)
		}
		t += dwell
	}
	return out
}
