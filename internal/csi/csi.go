// Package csi emulates the channel-state-information reports of an Intel
// 5300-class 802.11n radio — the measurement substrate of the paper. It
// layers the documented impairments onto the true over-the-air channel:
//
//   - packet-detection delay: a baseband phase ramp −2π(f_k−f_0)·δ across
//     subcarriers (§5), with δ drawn from an SNR-dependent distribution
//     whose shape matches Fig. 7c (median ≈177 ns, σ ≈25 ns);
//   - carrier frequency offset: a common phase rotation e^{j(f_tx−f_rx)t}
//     (§7), opposite in sign between forward and reverse measurements;
//   - the reciprocity constant κ (hardware phases of the two chains);
//   - the 2.4 GHz firmware quirk that reports phase modulo π/2 (§11);
//   - per-subcarrier complex AWGN and fixed-point quantization.
package csi

import (
	"math"
	"math/cmplx"
	"math/rand"

	"chronos/internal/dsp"
	"chronos/internal/rf"
	"chronos/internal/wifi"
)

// Measurement is one CSI report: the measured complex channel on each
// reported subcarrier of one band, for one received packet.
type Measurement struct {
	Band        wifi.Band
	Subcarriers []int   // subcarrier indices (len == len(Values))
	Values      dsp.Vec // measured channel per subcarrier
	// DetectionDelay is the packet-detection delay that corrupted this
	// measurement, in seconds. Real hardware does not expose it; the
	// simulator records it for the Fig. 7c ground-truth histogram.
	DetectionDelay float64
	// Time is the receive timestamp in seconds of simulated time (used by
	// the CFO model).
	Time float64
}

// Radio is one simulated Wi-Fi device's RF front end.
type Radio struct {
	Osc rf.Oscillator
	// ResidualCFOHz is the carrier offset remaining in CSI after the
	// receiver's preamble-based CFO correction. The raw ±20 ppm hardware
	// offset is estimated and removed per packet; what corrupts CSI phase
	// between packets is this residual (tens of Hz), which still
	// accumulates to large phase errors over the tens of milliseconds of
	// a band sweep — exactly the error §7 cancels.
	ResidualCFOHz float64
	// PhaseJitterRad is the per-packet common phase noise (PLL jitter),
	// standard deviation in radians.
	PhaseJitterRad float64
	// DetectDelayMed and DetectDelaySigma parameterize the right-skewed
	// packet-detection delay (seconds). Defaults: 177 ns / 24.76 ns.
	DetectDelayMed   float64
	DetectDelaySigma float64
	// Quirk24 enables the 2.4 GHz phase-mod-π/2 firmware bug.
	Quirk24 bool
	// QuantBits, if nonzero, quantizes reported I/Q to that many bits
	// (the 5300 reports 8-bit CSI).
	QuantBits int
}

// NewRadio builds a radio with paper-calibrated defaults and a randomly
// drawn oscillator (±20 ppm, per 802.11 tolerance).
func NewRadio(rng *rand.Rand) *Radio {
	return &Radio{
		Osc:              rf.NewOscillator(rng, 20),
		ResidualCFOHz:    rng.NormFloat64() * 40,
		PhaseJitterRad:   0.02,
		DetectDelayMed:   177e-9,
		DetectDelaySigma: 24.76e-9,
		Quirk24:          true,
		QuantBits:        8,
	}
}

// DrawDetectionDelay samples a packet-detection delay. The delay is the
// time for the energy detector to cross threshold, so it is positive,
// right-skewed, and grows as SNR drops. We model it as
// median·(1 + exp-noise) scaled by an SNR factor, clamped positive.
func (r *Radio) DrawDetectionDelay(rng *rand.Rand, snrDB float64) float64 {
	med := r.DetectDelayMed
	if med == 0 {
		med = 177e-9
	}
	sigma := r.DetectDelaySigma
	if sigma == 0 {
		sigma = 24.76e-9
	}
	// Low SNR lengthens detection: +1%/dB below 25 dB.
	snrFactor := 1.0
	if snrDB < 25 {
		snrFactor += (25 - snrDB) * 0.01
	}
	d := med*snrFactor + rng.NormFloat64()*sigma
	// Skew: occasionally the detector needs extra symbols.
	if rng.Float64() < 0.1 {
		d += rng.Float64() * 2 * sigma
	}
	if d < 10e-9 {
		d = 10e-9
	}
	return d
}

// MeasureOptions controls one simulated CSI capture.
type MeasureOptions struct {
	SNRdB float64 // per-subcarrier SNR for AWGN (default 30 dB)
	Time  float64 // receive time in seconds (for CFO phase)
	// TX is the transmitting radio (its oscillator sets the CFO sign).
	TX *Radio
	// DisableDetectionDelay zeroes δ — used by ablation benches.
	DisableDetectionDelay bool
	// DisableCFO zeroes the carrier frequency offset phase.
	DisableCFO bool
}

// Measure produces the CSI this radio would report for a packet from tx
// over channel ch on band b. It implements Eq. 5–6 and Eq. 11 of the
// paper: measured phase = true channel phase + detection-delay ramp + CFO
// rotation (+ hardware phase), then noise, quantization, and optionally
// the 2.4 GHz quirk.
func (r *Radio) Measure(rng *rand.Rand, ch *rf.Channel, b wifi.Band, opts MeasureOptions) Measurement {
	delta, cfoPhase := r.drawPacketImpairments(rng, opts)
	return r.measureChain(rng, ch, b, opts, delta, cfoPhase)
}

// MeasureArray produces one CSI report per receive chain for a single
// received packet: every chain shares the packet's detection delay, CFO
// rotation and PLL jitter (they are card-level, not per-antenna), while
// each chain sees its own geometry and its own thermal noise and
// quantization. This per-packet correlation is what makes differential
// (antenna-to-antenna) phase far more precise than absolute phase on
// real multi-chain cards, and it is the property §8's localization
// leans on.
func (r *Radio) MeasureArray(rng *rand.Rand, chans []*rf.Channel, b wifi.Band, opts MeasureOptions) []Measurement {
	delta, cfoPhase := r.drawPacketImpairments(rng, opts)
	out := make([]Measurement, len(chans))
	for i, ch := range chans {
		out[i] = r.measureChain(rng, ch, b, opts, delta, cfoPhase)
	}
	return out
}

// drawPacketImpairments samples the card-level impairments of one packet.
func (r *Radio) drawPacketImpairments(rng *rand.Rand, opts MeasureOptions) (delta, cfoPhase float64) {
	if opts.SNRdB == 0 {
		opts.SNRdB = 30
	}
	if !opts.DisableDetectionDelay {
		delta = r.DrawDetectionDelay(rng, opts.SNRdB)
	}
	// CFO phase at the center frequency; to first order all subcarriers
	// share it because the offset is a carrier-level rotation. The raw
	// ±20 ppm offset is corrected per packet from the preamble; what
	// remains is the residual offset, which is opposite in sign between
	// forward and reverse measurements (Eq. 11 vs Eq. 12).
	if !opts.DisableCFO && opts.TX != nil {
		cfoPhase = 2 * math.Pi * (opts.TX.ResidualCFOHz - r.ResidualCFOHz) * opts.Time
	}
	if r.PhaseJitterRad > 0 {
		cfoPhase += rng.NormFloat64() * r.PhaseJitterRad
	}
	return delta, cfoPhase
}

// measureChain renders one chain's CSI given the packet-level impairments.
func (r *Radio) measureChain(rng *rand.Rand, ch *rf.Channel, b wifi.Band, opts MeasureOptions, delta, cfoPhase float64) Measurement {
	if opts.SNRdB == 0 {
		opts.SNRdB = 30
	}
	subs := wifi.CSISubcarriers()
	vals := make(dsp.Vec, len(subs))

	// Hardware constant (part of κ): receiver chain phase plus the
	// transmitter chain phase, and the fixed chain group delays.
	hwPhase := r.Osc.HWPhase
	hwDelay := r.Osc.HWDelayNs * 1e-9
	if opts.TX != nil {
		hwPhase += opts.TX.Osc.HWPhase
		hwDelay += opts.TX.Osc.HWDelayNs * 1e-9
	}

	// Reference signal RMS for the noise level: the mean channel
	// magnitude across subcarriers.
	var rms float64
	for _, k := range subs {
		rms += cmplx.Abs(ch.Response(wifi.SubcarrierFreq(b, k)))
	}
	rms /= float64(len(subs))
	sigma := rf.NoiseSigmaForSNR(rms, opts.SNRdB)

	for i, k := range subs {
		f := wifi.SubcarrierFreq(b, k)
		h := ch.Response(f)
		// Hardware group delay acts like extra time of flight at the
		// passband frequency (calibrated out later per §7 note 2).
		h *= cmplx.Rect(1, -2*math.Pi*f*hwDelay)
		// Detection-delay ramp: baseband, so proportional to (f_k − f_0).
		ramp := -2 * math.Pi * (f - b.Center) * delta
		h *= cmplx.Rect(1, ramp+cfoPhase+hwPhase)
		h = rf.AWGN(rng, h, sigma)
		if r.QuantBits > 0 {
			h = quantize(h, r.QuantBits, rms*4)
		}
		if r.Quirk24 && b.GHz24() {
			h = quirkFold(h)
		}
		vals[i] = h
	}
	return Measurement{
		Band:           b,
		Subcarriers:    subs,
		Values:         vals,
		DetectionDelay: delta,
		Time:           opts.Time,
	}
}

// quantize rounds I/Q components to a bits-wide fixed-point grid spanning
// ±fullScale, mimicking the 5300's integer CSI report.
func quantize(h complex128, bits int, fullScale float64) complex128 {
	if fullScale <= 0 {
		return h
	}
	levels := float64(int(1) << (bits - 1))
	q := func(x float64) float64 {
		s := x / fullScale * levels
		if s > levels-1 {
			s = levels - 1
		} else if s < -levels {
			s = -levels
		}
		return math.Round(s) / levels * fullScale
	}
	return complex(q(real(h)), q(imag(h)))
}

// quirkFold reports the channel with its phase folded modulo π/2,
// reproducing the Intel 5300 2.4 GHz firmware issue (§11 footnote 5).
// Magnitude is preserved.
func quirkFold(h complex128) complex128 {
	mag := cmplx.Abs(h)
	ph := cmplx.Phase(h)
	folded := math.Mod(ph, math.Pi/2)
	if folded < 0 {
		folded += math.Pi / 2
	}
	return cmplx.Rect(mag, folded)
}
