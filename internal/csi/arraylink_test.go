package csi

import (
	"math"
	"math/rand"
	"testing"

	"chronos/internal/rf"
	"chronos/internal/wifi"
)

func arrayChannels(base float64, offsets ...float64) []*rf.Channel {
	out := make([]*rf.Channel, len(offsets))
	for i, off := range offsets {
		out[i] = rf.NewChannel([]rf.Path{{Delay: (base + off) * 1e-9, Gain: 1}})
	}
	return out
}

func TestMeasureArraySharesPacketImpairments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rx, tx := NewRadio(rng), NewRadio(rng)
	chans := arrayChannels(10, 0, 0.5, 1.0)
	ms := rx.MeasureArray(rng, chans, band5(), MeasureOptions{SNRdB: 40, TX: tx})
	if len(ms) != 3 {
		t.Fatalf("measurements = %d", len(ms))
	}
	// All chains must report the identical detection delay (one detector
	// per card) and the same timestamp.
	for i := 1; i < 3; i++ {
		if ms[i].DetectionDelay != ms[0].DetectionDelay {
			t.Errorf("chain %d delay %v != chain 0 %v", i, ms[i].DetectionDelay, ms[0].DetectionDelay)
		}
		if ms[i].Time != ms[0].Time {
			t.Errorf("chain %d time differs", i)
		}
	}
	// Chains see different channels, so values must differ.
	same := true
	for k := range ms[0].Values {
		if ms[0].Values[k] != ms[1].Values[k] {
			same = false
			break
		}
	}
	if same {
		t.Error("chains reported identical CSI despite different channels")
	}
}

func TestArrayLinkMeasureSetRoundRobinACK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := &ArrayLink{
		TX: NewRadio(rng), RX: NewRadio(rng),
		Channels: arrayChannels(10, 0, 2, 4),
		SNRdB:    60,
	}
	l.TX.Quirk24 = false
	l.RX.Quirk24 = false
	set := l.MeasureSet(rng, band5(), 0.5)
	if len(set) != 3 {
		t.Fatalf("pairs = %d", len(set))
	}
	// Reverse measurements are taken at distinct times (round-robin ACKs).
	if set[0].Reverse.Time == set[1].Reverse.Time {
		t.Error("reverse measurements share a timestamp")
	}
	// Each pair's reverse must reflect that antenna's channel delay: the
	// phase slope across subcarriers differs between antennas.
	if set[0].Reverse.Values[0] == set[2].Reverse.Values[0] {
		t.Error("reverse CSI identical across antennas with different channels")
	}
}

func TestArrayLinkSweepShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := &ArrayLink{
		TX: NewRadio(rng), RX: NewRadio(rng),
		Channels: arrayChannels(8, 0, 1),
	}
	bands := wifi.Bands5GHz()
	sw := l.Sweep(rng, bands, 2, 2e-3)
	if len(sw) != 2 {
		t.Fatalf("antennas = %d", len(sw))
	}
	for a := range sw {
		if len(sw[a]) != len(bands) {
			t.Fatalf("antenna %d: bands = %d", a, len(sw[a]))
		}
		for b := range sw[a] {
			if len(sw[a][b]) != 2 {
				t.Fatalf("antenna %d band %d: pairs = %d", a, b, len(sw[a][b]))
			}
		}
	}
}

func TestArrayLinkDifferentialPrecision(t *testing.T) {
	// The decisive property: the *difference* between two antennas'
	// zero-subcarrier phases must be far more stable than the absolute
	// phases, because detection delay and CFO are packet-level.
	rng := rand.New(rand.NewSource(4))
	l := &ArrayLink{
		TX: NewRadio(rng), RX: NewRadio(rng),
		Channels: arrayChannels(10, 0, 0.7),
		SNRdB:    30,
	}
	l.TX.Quirk24, l.RX.Quirk24 = false, false
	b := band5()

	var absVar, diffVar []float64
	for i := 0; i < 40; i++ {
		set := l.MeasureSet(rng, b, float64(i)*1e-3)
		// Raw subcarrier-0-adjacent forward phase per antenna (index 14
		// is subcarrier −1): absolute phase drifts with CFO per packet.
		p0 := phaseOf(set[0].Forward.Values[14])
		p1 := phaseOf(set[1].Forward.Values[14])
		absVar = append(absVar, p0)
		diffVar = append(diffVar, wrap(p1-p0))
	}
	if spread(diffVar) > spread(absVar)/3 {
		t.Errorf("differential spread %v not much tighter than absolute %v",
			spread(diffVar), spread(absVar))
	}
}

func phaseOf(c complex128) float64 { return math.Atan2(imag(c), real(c)) }

func wrap(x float64) float64 {
	for x > math.Pi {
		x -= 2 * math.Pi
	}
	for x <= -math.Pi {
		x += 2 * math.Pi
	}
	return x
}

// spread returns a crude circular spread measure: mean absolute deviation
// from the circular mean.
func spread(ph []float64) float64 {
	var sx, sy float64
	for _, p := range ph {
		sx += math.Cos(p)
		sy += math.Sin(p)
	}
	mean := math.Atan2(sy, sx)
	var s float64
	for _, p := range ph {
		s += math.Abs(wrap(p - mean))
	}
	return s / float64(len(ph))
}
