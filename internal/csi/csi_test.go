package csi

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"chronos/internal/rf"
	"chronos/internal/wifi"
)

func cleanRadio(rng *rand.Rand) *Radio {
	r := NewRadio(rng)
	r.PhaseJitterRad = 0
	r.QuantBits = 0
	r.Quirk24 = false
	r.Osc.HWPhase = 0
	r.Osc.HWDelayNs = 0
	return r
}

func singlePathChannel(tauNs float64) *rf.Channel {
	return rf.NewChannel([]rf.Path{{Delay: tauNs * 1e-9, Gain: 1}})
}

func band5() wifi.Band  { return wifi.Band{Channel: 36, Center: 5.18e9} }
func band24() wifi.Band { return wifi.Band{Channel: 1, Center: 2.412e9} }

func TestMeasurementShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewRadio(rng)
	m := r.Measure(rng, singlePathChannel(5), band5(), MeasureOptions{TX: NewRadio(rng)})
	if len(m.Subcarriers) != 30 || len(m.Values) != 30 {
		t.Fatalf("shape: %d subs, %d values", len(m.Subcarriers), len(m.Values))
	}
	if m.DetectionDelay <= 0 {
		t.Error("detection delay not recorded")
	}
}

func TestMeasureIdealRecoversChannelPhase(t *testing.T) {
	// With every impairment disabled, the measured value at each
	// subcarrier must match the true channel response closely.
	rng := rand.New(rand.NewSource(2))
	r := cleanRadio(rng)
	tx := cleanRadio(rng)
	ch := singlePathChannel(7)
	b := band5()
	m := r.Measure(rng, ch, b, MeasureOptions{
		SNRdB: 60, TX: tx, DisableDetectionDelay: true, DisableCFO: true,
	})
	for i, k := range m.Subcarriers {
		want := ch.Response(wifi.SubcarrierFreq(b, k))
		if cmplx.Abs(m.Values[i]-want) > 0.01 {
			t.Fatalf("subcarrier %d: got %v, want %v", k, m.Values[i], want)
		}
	}
}

func TestDetectionDelayAddsLinearPhaseRamp(t *testing.T) {
	// §5: the delay phase is −2π(f_k−f_0)δ — zero at subcarrier 0,
	// linear in k. Verify by comparing a delayed and undelayed capture.
	rng := rand.New(rand.NewSource(3))
	r := cleanRadio(rng)
	tx := cleanRadio(rng)
	ch := singlePathChannel(3)
	b := band5()

	m := r.Measure(rng, ch, b, MeasureOptions{SNRdB: 90, TX: tx, DisableCFO: true})
	delta := m.DetectionDelay
	for i, k := range m.Subcarriers {
		f := wifi.SubcarrierFreq(b, k)
		want := ch.Response(f) * cmplx.Rect(1, -2*math.Pi*(f-b.Center)*delta)
		if cmplx.Abs(m.Values[i]-want) > 0.01 {
			t.Fatalf("subcarrier %d: ramp mismatch: got %v want %v", k, m.Values[i], want)
		}
	}
}

func TestDrawDetectionDelayStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := NewRadio(rng)
	n := 20000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.DrawDetectionDelay(rng, 30)
	}
	var sum float64
	for _, v := range vals {
		if v <= 0 {
			t.Fatal("non-positive delay")
		}
		sum += v
	}
	mean := sum / float64(n)
	// Mean should be near the 177 ns median (slight right skew).
	if mean < 160e-9 || mean > 210e-9 {
		t.Errorf("mean delay = %v, want ≈177–190 ns", mean)
	}
}

func TestDetectionDelayGrowsAtLowSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := NewRadio(rng)
	avg := func(snr float64) float64 {
		var s float64
		for i := 0; i < 5000; i++ {
			s += r.DrawDetectionDelay(rng, snr)
		}
		return s / 5000
	}
	if hi, lo := avg(35), avg(5); lo <= hi {
		t.Errorf("delay at 5 dB (%v) not longer than at 35 dB (%v)", lo, hi)
	}
}

func TestCFOPhaseOppositeSigns(t *testing.T) {
	// The forward and reverse CFO phases must be negatives of each other
	// so the §7 product cancels them.
	rng := rand.New(rand.NewSource(6))
	a := cleanRadio(rng)
	b := cleanRadio(rng)
	a.ResidualCFOHz = 50
	b.ResidualCFOHz = -30
	ch := singlePathChannel(4)
	bd := band5()
	tm := 0.010

	fwd := b.Measure(rng, ch, bd, MeasureOptions{SNRdB: 90, Time: tm, TX: a, DisableDetectionDelay: true})
	rev := a.Measure(rng, ch, bd, MeasureOptions{SNRdB: 90, Time: tm, TX: b, DisableDetectionDelay: true})

	truth := ch.Response(bd.Center)
	// Each individual measurement is rotated far off truth…
	k0 := 0
	for i, k := range fwd.Subcarriers {
		if k == -1 { // nearest to center
			k0 = i
		}
	}
	_ = k0
	prod := fwd.Values[14] * rev.Values[14] // subcarrier -1 (index 14)
	wantProd := truth * truth
	// …but the product phase matches the squared truth (CFO cancelled).
	gotPh := cmplx.Phase(prod)
	wantPh := cmplx.Phase(wantProd)
	diff := math.Abs(math.Mod(gotPh-wantPh+3*math.Pi, 2*math.Pi) - math.Pi)
	// Residual from the two subcarrier frequencies differing slightly
	// from center is tiny at subcarrier −1.
	if diff > 0.05 {
		t.Errorf("product phase %v, want %v (diff %v)", gotPh, wantPh, diff)
	}
}

func TestQuirkFoldsPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := cleanRadio(rng)
	r.Quirk24 = true
	tx := cleanRadio(rng)
	ch := singlePathChannel(6)

	m := r.Measure(rng, ch, band24(), MeasureOptions{SNRdB: 90, TX: tx, DisableDetectionDelay: true, DisableCFO: true})
	for i := range m.Values {
		ph := cmplx.Phase(m.Values[i])
		if ph < -1e-9 || ph >= math.Pi/2+1e-9 {
			t.Fatalf("2.4 GHz phase %v outside [0, π/2)", ph)
		}
	}
	// 5 GHz unaffected.
	m5 := r.Measure(rng, ch, band5(), MeasureOptions{SNRdB: 90, TX: tx, DisableDetectionDelay: true, DisableCFO: true})
	anyOutside := false
	for i := range m5.Values {
		if ph := cmplx.Phase(m5.Values[i]); ph < 0 || ph >= math.Pi/2 {
			anyOutside = true
		}
	}
	if !anyOutside {
		t.Error("5 GHz phases all inside [0, π/2): quirk seems applied there too")
	}
}

func TestQuirkFourthPowerInvariant(t *testing.T) {
	// fold(h)⁴ must equal h⁴ in phase — the §11 workaround.
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		h := cmplx.Rect(0.5+rng.Float64(), (rng.Float64()*2-1)*math.Pi)
		folded := quirkFold(h)
		p1 := cmplx.Phase(h * h * h * h)
		p2 := cmplx.Phase(folded * folded * folded * folded)
		diff := math.Abs(math.Mod(p1-p2+3*math.Pi, 2*math.Pi) - math.Pi)
		if diff > 1e-9 {
			t.Fatalf("4th power phase mismatch: %v vs %v", p1, p2)
		}
	}
}

func TestQuantize(t *testing.T) {
	h := complex(0.123456, -0.654321)
	q := quantize(h, 8, 1)
	if q == h {
		t.Error("quantization is a no-op")
	}
	if cmplx.Abs(q-h) > 2.0/128 {
		t.Errorf("quantization error too large: %v", cmplx.Abs(q-h))
	}
	// Saturation clamps instead of wrapping.
	big := complex(10.0, -10.0)
	qb := quantize(big, 8, 1)
	if real(qb) > 1 || imag(qb) < -1.01 {
		t.Errorf("saturation failed: %v", qb)
	}
	if got := quantize(h, 8, 0); got != h {
		t.Error("zero full-scale should be identity")
	}
}

func TestMeasurePairSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := &Link{
		TX: NewRadio(rng), RX: NewRadio(rng),
		Channel: singlePathChannel(5),
	}
	p := l.MeasurePair(rng, band5(), 1.0)
	if math.Abs(p.Reverse.Time-p.Forward.Time-28e-6) > 1e-12 {
		t.Errorf("pair separation = %v", p.Reverse.Time-p.Forward.Time)
	}
}

func TestSweepShape(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	l := &Link{TX: NewRadio(rng), RX: NewRadio(rng), Channel: singlePathChannel(5)}
	bands := wifi.USBands()
	sw := l.Sweep(rng, bands, 3, 2e-3)
	if len(sw) != len(bands) {
		t.Fatalf("sweep bands = %d", len(sw))
	}
	for i := range sw {
		if len(sw[i]) != 3 {
			t.Fatalf("band %d pairs = %d", i, len(sw[i]))
		}
		if sw[i][0].Forward.Band != bands[i] {
			t.Errorf("band %d mismatch", i)
		}
	}
	// Time advances monotonically across bands.
	if !(sw[1][0].Forward.Time > sw[0][0].Forward.Time) {
		t.Error("time does not advance between bands")
	}
}

func TestSweepDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := &Link{TX: NewRadio(rng), RX: NewRadio(rng), Channel: singlePathChannel(5)}
	sw := l.Sweep(rng, wifi.USBands()[:2], 0, 0)
	if len(sw[0]) != 1 {
		t.Errorf("default pairsPerBand = %d, want 1", len(sw[0]))
	}
}
