package csi

import (
	"math/rand"

	"chronos/internal/rf"
	"chronos/internal/wifi"
)

// ArrayLink couples a single-antenna transmitter with an n-chain receiver
// card for the §8 localization scenario. One forward packet yields one
// CSI measurement per receive antenna, all sharing the packet's detection
// delay and CFO (they are card-level effects); the receiver then sends
// its acknowledgments round-robin from each antenna, so every antenna i
// gets a reverse measurement over its own reciprocal channel and the §7
// product is the clean squared channel h̃ᵢ² with first peak at 2τᵢ —
// the per-antenna "pairwise distances" of §8.
type ArrayLink struct {
	TX *Radio // single-antenna transmitter
	RX *Radio // n-chain receiver card (shared oscillator and detector)
	// Channels is the per-receive-antenna propagation channel.
	Channels []*rf.Channel
	SNRdB    float64
	// PairSeparation is the packet→ACK turnaround (default 28 µs).
	PairSeparation        float64
	DisableDetectionDelay bool
	DisableCFO            bool
}

// MeasureSet captures one forward packet across all chains plus one
// round-robin reverse measurement per antenna, and returns one Pair per
// antenna.
func (l *ArrayLink) MeasureSet(rng *rand.Rand, b wifi.Band, t float64) []Pair {
	sep := l.PairSeparation
	if sep == 0 {
		sep = 28e-6
	}
	snr := l.SNRdB
	if snr == 0 {
		snr = 30
	}
	fwd := l.RX.MeasureArray(rng, l.Channels, b, MeasureOptions{
		SNRdB: snr, Time: t, TX: l.TX,
		DisableDetectionDelay: l.DisableDetectionDelay,
		DisableCFO:            l.DisableCFO,
	})
	pairs := make([]Pair, len(fwd))
	for i := range fwd {
		// The i-th ACK is transmitted from RX antenna i, so the
		// transmitter measures antenna i's reciprocal channel.
		rev := l.TX.Measure(rng, l.Channels[i], b, MeasureOptions{
			SNRdB: snr, Time: t + sep + float64(i)*sep, TX: l.RX,
			DisableDetectionDelay: l.DisableDetectionDelay,
			DisableCFO:            l.DisableCFO,
		})
		pairs[i] = Pair{Forward: fwd[i], Reverse: rev}
	}
	return pairs
}

// Sweep runs pairsPerBand measurement sets on every band and returns the
// per-antenna band sweeps: out[ant][band] is the pair list for that
// antenna and band, directly consumable by one tof.Estimator per antenna.
func (l *ArrayLink) Sweep(rng *rand.Rand, bands []wifi.Band, pairsPerBand int, dwell float64) [][][]Pair {
	if pairsPerBand < 1 {
		pairsPerBand = 1
	}
	if dwell == 0 {
		dwell = 2.4e-3
	}
	n := len(l.Channels)
	out := make([][][]Pair, n)
	for a := 0; a < n; a++ {
		out[a] = make([][]Pair, len(bands))
	}
	t := 0.0
	for bi, b := range bands {
		step := dwell / float64(pairsPerBand+1)
		for p := 0; p < pairsPerBand; p++ {
			set := l.MeasureSet(rng, b, t+float64(p+1)*step)
			for a := 0; a < n; a++ {
				out[a][bi] = append(out[a][bi], set[a])
			}
		}
		t += dwell
	}
	return out
}
