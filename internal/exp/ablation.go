package exp

import (
	"fmt"

	"chronos/internal/baseline"
	"chronos/internal/stats"
	"chronos/internal/tof"
)

// ablationRun measures median/p90 ToF error for one estimator
// configuration over a mixed LOS campaign. Every case of one ablation
// passes the same campaignID: per-trial RNG streams depend only on
// (seed, campaignID, trial), so trial t starts from identical placement
// draws under every configuration — a paired comparison, with the
// config under test as the only variable.
func ablationRun(o Options, campaignID string, cfg tof.Config) (median, p90 float64, n int) {
	office := newOffice(o)
	tr := runToFCampaign(o, campaignID, office, cfg, o.Trials, false, 15)
	errs := make([]float64, len(tr))
	for i, t := range tr {
		errs[i] = t.ErrNs
	}
	return stats.Median(errs), stats.Percentile(errs, 90), len(errs)
}

// AblationBands compares band subsets: the 2.4 GHz group alone, the 5 GHz
// group alone, the faithful fused mode, and the quirk-free all-coherent
// upper bound (DESIGN.md "bands" ablation).
func AblationBands(o Options) *Result {
	o = o.withDefaults(12)
	res := &Result{
		ID:     "ablate-bands",
		Title:  "Band-set ablation: ToF error vs bands used",
		Header: []string{"mode", "median (ns)", "p90 (ns)", "trials"},
	}
	res.Metrics = map[string]float64{}
	cases := []struct {
		name string
		cfg  tof.Config
	}{
		{"2.4GHz only (h^8)", tof.Config{Mode: tof.Bands24Only, Quirk24: true, MaxIter: 1200}},
		{"5GHz only (h^2)", tof.Config{Mode: tof.Bands5GHzOnly, Quirk24: true, MaxIter: 1200}},
		{"fused (faithful)", tof.Config{Mode: tof.BandsFused, Quirk24: true, MaxIter: 1200}},
		{"all coherent (no quirk)", tof.Config{Mode: tof.BandsAllCoherent, Quirk24: false, MaxIter: 1200}},
	}
	for i, c := range cases {
		med, p90, n := ablationRun(o, "ablate-bands", c.cfg)
		res.Rows = append(res.Rows, []string{c.name, fmtF(med, 3), fmtF(p90, 3), fmt.Sprintf("%d", n)})
		res.Metrics[fmt.Sprintf("median_%d_ns", i)] = med
	}
	return res
}

// AblationDelay compares the §5 zero-subcarrier detection-delay
// compensation against no compensation.
func AblationDelay(o Options) *Result {
	o = o.withDefaults(12)
	res := &Result{
		ID:     "ablate-delay",
		Title:  "Detection-delay compensation ablation",
		Header: []string{"mode", "median (ns)", "p90 (ns)", "trials"},
	}
	res.Metrics = map[string]float64{}
	cases := []struct {
		name   string
		interp tof.InterpMode
	}{
		{"spline zero-subcarrier (paper)", tof.InterpSpline},
		{"linear zero-subcarrier", tof.InterpLinear},
		{"nearest subcarrier (residual jitter)", tof.InterpNone},
	}
	for i, c := range cases {
		cfg := tof.Config{Mode: tof.Bands5GHzOnly, MaxIter: 1200, Interp: c.interp}
		med, p90, n := ablationRun(o, "ablate-delay", cfg)
		res.Rows = append(res.Rows, []string{c.name, fmtF(med, 3), fmtF(p90, 3), fmt.Sprintf("%d", n)})
		res.Metrics[fmt.Sprintf("median_%d_ns", i)] = med
		// The per-packet jitter that the zero-subcarrier interpolation
		// removes shows up mostly in the error tail, so expose p90 too.
		res.Metrics[fmt.Sprintf("p90_%d_ns", i)] = p90
	}
	// The truly uncompensated approach — time-of-arrival from the raw
	// packet timeline, detection delay included — is the §5 strawman.
	// Even after subtracting the mean delay, the per-packet variance
	// leaks straight into ToF.
	rng := trialRNG(o, "ablate-delay/toa", 0)
	model := baseline.DefaultDelayModel()
	var toaErrs []float64
	for i := 0; i < 500; i++ {
		e := baseline.ToAError(rng, model) * 1e9
		if e < 0 {
			e = -e
		}
		toaErrs = append(toaErrs, e)
	}
	res.Rows = append(res.Rows, []string{
		"time-of-arrival (delay uncompensated)",
		fmtF(stats.Median(toaErrs), 3), fmtF(stats.Percentile(toaErrs, 90), 3), "500",
	})
	res.Metrics["median_toa_ns"] = stats.Median(toaErrs)
	return res
}

// AblationCFO compares the §7 forward×reverse CFO cancellation against a
// forward-only pipeline.
func AblationCFO(o Options) *Result {
	o = o.withDefaults(12)
	res := &Result{
		ID:     "ablate-cfo",
		Title:  "CFO cancellation ablation",
		Header: []string{"mode", "median (ns)", "p90 (ns)", "trials"},
	}
	res.Metrics = map[string]float64{}
	for i, c := range []struct {
		name string
		fwd  bool
	}{
		{"fwd x rev product (paper)", false},
		{"forward only (no cancellation)", true},
	} {
		cfg := tof.Config{Mode: tof.Bands5GHzOnly, MaxIter: 1200, ForwardOnly: c.fwd}
		med, p90, n := ablationRun(o, "ablate-cfo", cfg)
		res.Rows = append(res.Rows, []string{c.name, fmtF(med, 3), fmtF(p90, 3), fmt.Sprintf("%d", n)})
		res.Metrics[fmt.Sprintf("median_%d_ns", i)] = med
	}
	return res
}

// AblationSparsity sweeps the sparsity parameter α (as a fraction of the
// auto-scaled value) to show its effect on profile quality.
func AblationSparsity(o Options) *Result {
	o = o.withDefaults(10)
	res := &Result{
		ID:     "ablate-sparsity",
		Title:  "Sparsity parameter sweep (α as fraction of auto scale)",
		Header: []string{"alpha factor", "median (ns)", "p90 (ns)", "trials"},
	}
	res.Metrics = map[string]float64{}
	// The estimator's auto α is 0.1·‖Fᴴh‖∞; Alpha overrides absolutely,
	// so express the sweep through AlphaScale-like fractions by reusing
	// the auto value per inversion: we emulate by scaling MaxIter-fixed
	// configs with Alpha=0 (auto) vs large/small constants relative to
	// typical ‖Fᴴh‖∞, which varies per trial — so instead we sweep the
	// peak threshold-independent knob the config exposes: Alpha multiples
	// are expressed via the dedicated AlphaFactor field below.
	for _, f := range []float64{0.3, 1.0, 3.0} {
		cfg := tof.Config{Mode: tof.Bands5GHzOnly, MaxIter: 1200, AlphaFactor: f}
		med, p90, n := ablationRun(o, "ablate-sparsity", cfg)
		res.Rows = append(res.Rows, []string{fmtF(f, 1), fmtF(med, 3), fmtF(p90, 3), fmt.Sprintf("%d", n)})
		res.Metrics[fmt.Sprintf("median_x%.1f_ns", f)] = med
	}
	return res
}

// AblationSeparation sweeps receiver antenna separation (the §10
// trade-off behind Fig. 8b vs 8c).
func AblationSeparation(o Options) *Result {
	o = o.withDefaults(12)
	office := newOffice(o)
	res := &Result{
		ID:     "ablate-separation",
		Title:  "Antenna-separation sweep: localization error vs array span",
		Header: []string{"separation (cm)", "median err (m)", "trials"},
	}
	res.Metrics = map[string]float64{}
	for _, sep := range []float64{0.15, 0.30, 0.60, 1.00} {
		errs := locCampaign(o, "ablate-separation", office, sep, o.Trials, false)
		res.Rows = append(res.Rows, []string{
			fmtF(sep*100, 0), fmtF(stats.Median(errs), 3), fmt.Sprintf("%d", len(errs)),
		})
		res.Metrics[fmt.Sprintf("median_%.0fcm_m", sep*100)] = stats.Median(errs)
	}
	return res
}
