package exp

import (
	"fmt"
	"math/rand"
	"sort"

	"chronos/internal/stats"
	"chronos/internal/tof"
	"chronos/internal/track"
)

// trackSessionConfig is the shared full-pipeline session shape for the
// tracking campaigns: a handful of sweeps per session, driven by the
// same fused evaluation estimator (defaultToFConfig) as the figures.
// Sessions warm-start with velocity translation: each sweep's inversion
// is seeded from the previous fix, shifted by the Kalman-predicted
// inter-sweep delay change — the steady-state mode the streaming
// subsystem is built for (per-session state, so results stay identical
// at any -workers).
func trackSessionConfig(speed float64, sweeps int) track.SessionConfig {
	return track.SessionConfig{Speed: speed, Sweeps: sweeps, WarmStart: true, VelocityTranslate: true}
}

// TrackSpeed measures streaming tracking error against target speed: for
// each speed, full-pipeline sessions stream sweeps over a walking target
// and report raw per-sweep RMSE next to the Kalman-smoothed RMSE. Like
// every campaign it fans trials out over the worker pool with per-trial
// seeding; each trial gets its own estimator, and all of them share the
// process-wide NDFT plan registry, so the dictionaries are built once
// per band-group geometry rather than once per worker.
func TrackSpeed(o Options) *Result {
	o = o.withDefaults(4)
	office := newOffice(o)
	cfg := defaultToFConfig()
	speeds := []float64{0, 0.5, 1.0, 2.0}

	res := &Result{
		ID:     "track-speed",
		Title:  "Streaming tracking error vs target speed (raw vs Kalman)",
		Header: []string{"speed (m/s)", "raw RMSE (m)", "smoothed RMSE (m)", "gated out", "fixes"},
	}
	res.Metrics = map[string]float64{}
	type out struct {
		raw, smooth float64
		rejected    int
		fixes       int
	}
	for _, v := range speeds {
		campaign := fmt.Sprintf("track-speed/v%.1f", v)
		runs := runTrials(o, campaign, o.Trials, func(t int, rng *rand.Rand) (out, bool) {
			est := tof.NewEstimator(cfg)
			r, err := track.RunSession(rng, office, est, trackSessionConfig(v, 5))
			if err != nil || len(r.Fixes) == 0 {
				return out{}, false
			}
			return out{raw: r.RawRMSE, smooth: r.SmoothedRMSE, rejected: r.Rejected, fixes: len(r.Fixes)}, true
		})
		var raws, smooths []float64
		rejected, fixes := 0, 0
		for _, r := range runs {
			raws = append(raws, r.raw)
			smooths = append(smooths, r.smooth)
			rejected += r.rejected
			fixes += r.fixes
		}
		res.Rows = append(res.Rows, []string{
			fmtF(v, 1), fmtF(stats.Median(raws), 3), fmtF(stats.Median(smooths), 3),
			fmt.Sprintf("%d", rejected), fmt.Sprintf("%d", fixes),
		})
		key := fmt.Sprintf("v%.1f", v)
		res.Metrics["raw_rmse_"+key+"_m"] = stats.Median(raws)
		res.Metrics["smooth_rmse_"+key+"_m"] = stats.Median(smooths)
	}
	return res
}

// TrackLatency measures fix latency and the accuracy of degraded early
// fixes: the incremental estimator snapshots mid-sweep at fixed band
// checkpoints, so the table shows how error falls and latency rises as
// more bands fold in — the streaming subsystem's core trade-off.
func TrackLatency(o Options) *Result {
	o = o.withDefaults(3)
	office := newOffice(o)
	cfg := defaultToFConfig()
	checkpoints := []int{8, 16}

	type fixSample struct {
		Bands     int
		ErrM      float64
		LatencyMS float64
	}
	runs := runTrials(o, "track-latency", o.Trials, func(t int, rng *rand.Rand) ([]fixSample, bool) {
		est := tof.NewEstimator(cfg)
		scfg := trackSessionConfig(1.0, 3)
		scfg.EarlyFixBands = checkpoints
		r, err := track.RunSession(rng, office, est, scfg)
		if err != nil || len(r.Fixes) == 0 {
			return nil, false
		}
		var out []fixSample
		for _, f := range append(r.EarlyFixes, r.Fixes...) {
			e := f.Range - f.TrueRange
			if e < 0 {
				e = -e
			}
			out = append(out, fixSample{Bands: f.Bands, ErrM: e, LatencyMS: f.Latency.Seconds() * 1000})
		}
		return out, true
	})

	byBands := map[int][]fixSample{}
	for _, samples := range runs {
		for _, s := range samples {
			byBands[s.Bands] = append(byBands[s.Bands], s)
		}
	}
	var bandCounts []int
	for b := range byBands {
		bandCounts = append(bandCounts, b)
	}
	sort.Ints(bandCounts)

	res := &Result{
		ID:     "track-latency",
		Title:  "Fix latency vs accuracy as bands stream in (early fixes)",
		Header: []string{"bands folded", "median |err| (m)", "median latency (ms)", "fixes"},
	}
	res.Metrics = map[string]float64{}
	if len(bandCounts) == 0 {
		// Every trial failed (e.g. calibration errors at extreme
		// configs): report an empty table rather than crashing.
		return res
	}
	full := bandCounts[len(bandCounts)-1]
	for _, b := range bandCounts {
		var errs, lats []float64
		for _, s := range byBands[b] {
			errs = append(errs, s.ErrM)
			lats = append(lats, s.LatencyMS)
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", b), fmtF(stats.Median(errs), 3), fmtF(stats.Median(lats), 1),
			fmt.Sprintf("%d", len(errs)),
		})
		key := fmt.Sprintf("%dbands", b)
		if b == full {
			key = "full"
		}
		res.Metrics["median_err_"+key+"_m"] = stats.Median(errs)
		res.Metrics["median_latency_"+key+"_ms"] = stats.Median(lats)
	}
	return res
}

// TrackCapacity measures the multi-client scheduler: aggregate fix
// throughput, per-device fix latency, anchor airtime utilization, and the
// tracking error the resulting fix staleness implies, as the number of
// concurrently tracked devices grows.
func TrackCapacity(o Options) *Result {
	o = o.withDefaults(8)
	deviceCounts := []int{1, 2, 4, 8, 16}

	res := &Result{
		ID:     "track-capacity",
		Title:  "Multi-device tracking capacity vs concurrent clients",
		Header: []string{"devices", "fixes/s", "fix latency (ms)", "airtime util", "smoothed RMSE (m)"},
	}
	res.Metrics = map[string]float64{}
	type out struct {
		fps, latencyMS, util, rmse float64
	}
	for _, n := range deviceCounts {
		campaign := fmt.Sprintf("track-capacity/n%d", n)
		runs := runTrials(o, campaign, o.Trials, func(t int, rng *rand.Rand) (out, bool) {
			m := track.RunMulti(rng, track.MultiConfig{
				Scheduler: track.SchedulerConfig{Devices: n, SweepsPerDevice: 3},
				Speed:     0.8,
			})
			var rmses []float64
			for _, d := range m.Devices {
				rmses = append(rmses, d.SmoothedRMSE)
			}
			return out{
				fps:       m.Schedule.FixesPerSecond,
				latencyMS: m.Schedule.MeanFixLatency().Seconds() * 1000,
				util:      m.Schedule.Utilization,
				rmse:      stats.Median(rmses),
			}, true
		})
		var fps, lats, utils, rmses []float64
		for _, r := range runs {
			fps = append(fps, r.fps)
			lats = append(lats, r.latencyMS)
			utils = append(utils, r.util)
			rmses = append(rmses, r.rmse)
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", n), fmtF(stats.Median(fps), 2), fmtF(stats.Median(lats), 1),
			fmtF(stats.Median(utils), 3), fmtF(stats.Median(rmses), 3),
		})
		key := fmt.Sprintf("n%d", n)
		res.Metrics["fixes_per_sec_"+key] = stats.Median(fps)
		res.Metrics["fix_latency_"+key+"_ms"] = stats.Median(lats)
		res.Metrics["util_"+key] = stats.Median(utils)
		res.Metrics["smooth_rmse_"+key+"_m"] = stats.Median(rmses)
	}
	return res
}
