package exp

import (
	"fmt"
	"math/rand"

	"chronos/internal/csi"
	"chronos/internal/geo"
	"chronos/internal/loc"
	"chronos/internal/sim"
	"chronos/internal/stats"
	"chronos/internal/tof"
	"chronos/internal/wifi"
)

// locCampaign measures localization error for a given antenna separation
// over random placements (the §12.2 method: 3-antenna receiver, per-
// antenna ToF → distances → outlier rejection → least-squares position),
// fanned out over the worker pool one placement per trial.
func locCampaign(o Options, campaignID string, office *sim.Office, sep float64, trials int, nlos bool) []float64 {
	bands := wifi.Bands5GHz()
	// Three antennas at a triangle with mean pairwise separation sep —
	// the paper's non-collinear assumption (§8).
	array := geo.TriangleArray(sep)

	return runTrials(o, campaignID, trials, func(t int, rng *rand.Rand) (float64, bool) {
		// Fresh hardware per trial: one single-antenna transmitter and
		// one 3-chain receiver card. All chains share the card's
		// oscillator and packet detector (csi.ArrayLink), so antenna-
		// differential errors stay small — as on the Intel 5300.
		tx := csi.NewRadio(rng)
		tx.Quirk24 = false
		rx := csi.NewRadio(rng)
		rx.Quirk24 = false
		link := &csi.ArrayLink{TX: tx, RX: rx, SNRdB: 26}
		localizer := loc.NewLocalizer(array, tof.Config{Mode: tof.Bands5GHzOnly, MaxIter: 1000})

		// Calibrate at a known reference geometry.
		calTx := office.RandomPlacement(rng, 8, false).TX
		rxCenter := office.Locations[rng.Intn(len(office.Locations))]
		place := func(txPos geo.Point, isNLOS bool) {
			ap := sim.AntennaPlacement{TX: txPos, RXCenter: rxCenter, Array: array, NLOS: isNLOS}
			link.Channels = office.AntennaChannels(ap, 5.5e9)
		}
		place(calTx, false)
		trueDist := make([]float64, 3)
		for i, ant := range array.At(rxCenter) {
			trueDist[i] = calTx.Dist(ant)
		}
		if err := localizer.CalibrateArray(rng, bands, link, trueDist, 3); err != nil {
			return 0, false
		}

		// Measure a random target placement relative to the same array,
		// redrawing placements that violate the distance envelope.
		var target geo.Point
		for {
			target = office.RandomPlacement(rng, 15, nlos).TX
			if d := target.Dist(rxCenter); d >= 1 && d <= 15 {
				break
			}
		}
		place(target, nlos)
		fix, err := localizer.LocateArray(bands, link.Sweep(rng, bands, 3, 2.4e-3))
		if err != nil {
			return 0, false
		}
		truthLocal := target.Sub(rxCenter)
		return fix.Position.Dist(truthLocal), true
	})
}

// Fig8b reproduces localization accuracy with a client-style 30 cm
// antenna separation (paper: median 58 cm LOS / 118 cm NLOS).
func Fig8b(o Options) *Result { return locFigure(o, "fig8b", 0.30) }

// Fig8c reproduces localization accuracy with an AP-style 100 cm antenna
// separation (paper: median 35 cm LOS / 62 cm NLOS).
func Fig8c(o Options) *Result { return locFigure(o, "fig8c", 1.00) }

func locFigure(o Options, id string, sep float64) *Result {
	o = o.withDefaults(20)
	office := newOffice(o)

	res := &Result{
		ID:     id,
		Title:  fmt.Sprintf("Localization error CDF (3 antennas, %.0f cm separation)", sep*100),
		Header: []string{"condition", "median (m)", "p80 (m)", "trials"},
	}
	res.Metrics = map[string]float64{"separation_m": sep}
	for _, nlos := range []bool{false, true} {
		errs := locCampaign(o, campaignName(id, nlos), office, sep, o.Trials, nlos)
		name := "LOS"
		if nlos {
			name = "NLOS"
		}
		res.Rows = append(res.Rows, []string{
			name, fmtF(stats.Median(errs), 3), fmtF(stats.Percentile(errs, 80), 3),
			fmt.Sprintf("%d", len(errs)),
		})
		res.Metrics["median_"+name+"_m"] = stats.Median(errs)
	}
	return res
}
