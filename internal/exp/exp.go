// Package exp is the evaluation harness: one function per figure of the
// paper's §12, each regenerating the corresponding table or series from
// the simulated testbed. The cmd/chronos-bench binary, the top-level Go
// benchmarks, and EXPERIMENTS.md all drive these functions, so the
// numbers reported everywhere come from a single implementation.
package exp

import (
	"fmt"
	"math/rand"
	"strings"

	"chronos/internal/csi"
	"chronos/internal/sim"
	"chronos/internal/tof"
	"chronos/internal/wifi"
)

// Options scales a campaign.
type Options struct {
	Seed   int64
	Trials int // per condition; 0 = experiment default
}

func (o Options) withDefaults(defTrials int) Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Trials == 0 {
		o.Trials = defTrials
	}
	return o
}

// Result is a regenerated table or series.
type Result struct {
	ID      string
	Title   string
	Header  []string
	Rows    [][]string
	Metrics map[string]float64 // headline numbers, keyed for EXPERIMENTS.md
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return b.String()
}

// tofTrial is one calibrated ToF measurement in an office.
type tofTrial struct {
	ErrNs    float64 // |estimate − truth| in ns
	DistM    float64 // ground-truth distance
	Peaks    int     // dominant profile peaks
	DelaysNs []float64
	NLOS     bool
}

// runToFCampaign measures calibrated ToF error over `trials` random
// placements of each visibility class. The estimator (and its cached NDFT
// matrices) is shared across trials; calibration offsets are applied per
// device pair, as the paper's one-time calibration does.
func runToFCampaign(rng *rand.Rand, office *sim.Office, cfg tof.Config, trials int, nlos bool, maxDist float64) []tofTrial {
	bands := pickBands(cfg)
	est := tof.NewEstimator(cfg)
	out := make([]tofTrial, 0, trials)
	for t := 0; t < trials; t++ {
		p := office.RandomPlacement(rng, maxDist, nlos)
		link := office.NewLink(rng, p, sim.LinkConfig{Quirk: cfg.Quirk24})

		// One-time calibration of this device pair at a known reference
		// placement (LOS, mid-range).
		calP := office.RandomPlacement(rng, 8, false)
		link.Channel = office.Channel(calP, 5.5e9)
		calSweep := link.Sweep(rng, bands, 3, 2.4e-3)
		offset, err := tof.Calibrate(est, bands, calSweep, calP.TrueDistance())
		if err != nil {
			continue
		}

		link.Channel = office.Channel(p, 5.5e9)
		sweep := link.Sweep(rng, bands, 3, 2.4e-3)
		r, err := est.Estimate(bands, sweep)
		if err != nil {
			continue
		}
		e := (r.ToF - offset - p.TrueToF()) * 1e9
		if e < 0 {
			e = -e
		}
		trial := tofTrial{ErrNs: e, DistM: p.TrueDistance(), Peaks: r.Peaks, NLOS: nlos}
		for _, pr := range sweep {
			for _, pair := range pr {
				trial.DelaysNs = append(trial.DelaysNs, pair.Forward.DetectionDelay*1e9)
			}
		}
		out = append(out, trial)
	}
	return out
}

// pickBands returns the band list matching the estimator mode.
func pickBands(cfg tof.Config) []wifi.Band {
	switch cfg.Mode {
	case tof.Bands5GHzOnly:
		return wifi.Bands5GHz()
	case tof.Bands24Only:
		return wifi.Bands24GHz()
	default:
		return wifi.USBands()
	}
}

// defaultToFConfig is the evaluation configuration used across figures:
// quirked radios (faithful to the Intel 5300), 5 GHz profile inversion
// fused with the 2.4 GHz group.
func defaultToFConfig() tof.Config {
	return tof.Config{Mode: tof.BandsFused, Quirk24: true, MaxIter: 1200}
}

// sweepOnce is shared by examples and benches needing raw sweeps.
func sweepOnce(rng *rand.Rand, link *csi.Link, bands []wifi.Band) [][]csi.Pair {
	return link.Sweep(rng, bands, 3, 2.4e-3)
}

func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }
