// Package exp is the evaluation harness: one function per figure of the
// paper's §12, each regenerating the corresponding table or series from
// the simulated testbed, plus the streaming tracking campaigns
// (TrackSpeed, TrackLatency, TrackCapacity) built on internal/track. The
// cmd/chronos-bench and cmd/chronos-track binaries, the top-level Go
// benchmarks, and EXPERIMENTS.md all drive these functions, so the
// numbers reported everywhere come from a single implementation.
//
// # Campaign parallelism and the per-trial seeding scheme
//
// Campaign trials are independent, so every campaign loop runs on the
// runTrials worker-pool engine (Options.Workers goroutines, defaulting
// to all cores). Determinism is preserved by making the canonical RNG
// stream per-trial rather than per-campaign: trial t of campaign id
// draws from rand.NewSource(Options.Seed ^ fnv64a(id, t)). A trial's
// randomness therefore depends only on the campaign seed, the campaign
// ID, and the trial index — never on which worker runs it or in what
// order trials finish — so a campaign's Result is bit-identical for a
// given seed at any worker count. Shared campaign fixtures (the office
// floor plan) are generated before the fan-out from their own stream
// and are read-only during trials. Each trial constructs its own
// tof.Estimator — a cheap struct, since the expensive NDFT solver plans
// live in internal/tof's shared concurrency-safe registry and are built
// once per band-group geometry for the whole process (the sync.Pool of
// estimators this package once carried existed only to amortize
// per-estimator matrix caches that no longer exist).
package exp

import (
	"fmt"
	"math/rand"
	"strings"

	"chronos/internal/csi"
	"chronos/internal/sim"
	"chronos/internal/tof"
	"chronos/internal/wifi"
)

// Options scales a campaign.
type Options struct {
	Seed   int64
	Trials int // per condition; 0 = experiment default
	// Workers is the size of the trial worker pool; 0 (or negative)
	// means one worker per CPU core. The result tables are identical
	// for a given Seed at any Workers value.
	Workers int
}

func (o Options) withDefaults(defTrials int) Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Trials == 0 {
		o.Trials = defTrials
	}
	return o
}

// Result is a regenerated table or series.
type Result struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Header  []string           `json:"header"`
	Rows    [][]string         `json:"rows"`
	Metrics map[string]float64 `json:"metrics"` // headline numbers, keyed for EXPERIMENTS.md
	// Labels carries non-numeric campaign facts (the active SIMD kernel
	// tier, for one) so snapshot consumers — the CI throughput gate keys
	// its per-tier speedup floor on labels["vector_kernel"] — never have
	// to decode strings from float metrics.
	Labels map[string]string `json:"labels,omitempty"`
	// CapRate, when set, is the fraction of the campaign's profile
	// solves that hit their iteration cap instead of converging
	// (tof.Estimate.Converged == false). Iteration-capped solves used to
	// be indistinguishable from converged ones in campaign output; the
	// solver-facing campaigns now report the rate so BENCH_*.json
	// snapshots expose it, and bench-smoke asserts it stays ~0 under the
	// noise-adaptive stopping rule.
	CapRate *float64 `json:"cap_rate,omitempty"`
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return b.String()
}

// tofTrial is one calibrated ToF measurement in an office.
type tofTrial struct {
	ErrNs    float64 // |estimate − truth| in ns
	DistM    float64 // ground-truth distance
	Peaks    int     // dominant profile peaks
	DelaysNs []float64
	NLOS     bool
}

// runToFCampaign measures calibrated ToF error over `trials` random
// placements of each visibility class, fanned out over the worker pool.
// Each trial builds its own tof.Estimator (Calibrate mutates estimator
// config, so instances cannot be shared between racing trials); all of
// them resolve NDFT plans from the shared registry, so the dictionaries
// are built once per band-group geometry, not once per worker.
func runToFCampaign(o Options, campaignID string, office *sim.Office, cfg tof.Config, trials int, nlos bool, maxDist float64) []tofTrial {
	bands := pickBands(cfg)
	return runTrials(o, campaignID, trials, func(t int, rng *rand.Rand) (tofTrial, bool) {
		est := tof.NewEstimator(cfg)

		p := office.RandomPlacement(rng, maxDist, nlos)
		link := office.NewLink(rng, p, sim.LinkConfig{Quirk: cfg.Quirk24})

		// One-time calibration of this device pair at a known reference
		// placement (LOS, mid-range).
		calP := office.RandomPlacement(rng, 8, false)
		link.Channel = office.Channel(calP, 5.5e9)
		calSweep := link.Sweep(rng, bands, 3, 2.4e-3)
		offset, err := tof.Calibrate(est, bands, calSweep, calP.TrueDistance())
		if err != nil {
			return tofTrial{}, false
		}

		link.Channel = office.Channel(p, 5.5e9)
		sweep := link.Sweep(rng, bands, 3, 2.4e-3)
		r, err := est.Estimate(bands, sweep)
		if err != nil {
			return tofTrial{}, false
		}
		e := (r.ToF - offset - p.TrueToF()) * 1e9
		if e < 0 {
			e = -e
		}
		trial := tofTrial{ErrNs: e, DistM: p.TrueDistance(), Peaks: r.Peaks, NLOS: nlos}
		for _, pr := range sweep {
			for _, pair := range pr {
				trial.DelaysNs = append(trial.DelaysNs, pair.Forward.DetectionDelay*1e9)
			}
		}
		return trial, true
	})
}

// pickBands returns the band list matching the estimator mode.
func pickBands(cfg tof.Config) []wifi.Band { return tof.BandsFor(cfg) }

// defaultToFConfig is the evaluation configuration used across figures:
// quirked radios (faithful to the Intel 5300), 5 GHz profile inversion
// fused with the 2.4 GHz group.
func defaultToFConfig() tof.Config {
	return tof.Config{Mode: tof.BandsFused, Quirk24: true, MaxIter: 1200}
}

// sweepOnce is shared by examples and benches needing raw sweeps.
func sweepOnce(rng *rand.Rand, link *csi.Link, bands []wifi.Band) [][]csi.Pair {
	return link.Sweep(rng, bands, 3, 2.4e-3)
}

func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }
