package exp

import (
	"fmt"
	"math"
	"math/rand"

	"chronos/internal/csi"
	"chronos/internal/rf"
	"chronos/internal/stats"
	"chronos/internal/tof"
	"chronos/internal/wifi"
)

// ghostNs is the error magnitude past which a ToF miss is counted as an
// alias ghost rather than estimation noise: half the 25 ns grating-lobe
// period, so any wrong-family placement lands beyond it.
const ghostNs = 12.5

// adversarialPaths is the deep-NLOS geometry that reliably strands
// direct-path mass on a grating-lobe ghost vertex of the degenerate
// LASSO face (the PR-3 ablate-delay regression, distilled): a faded
// direct path under two strong late reflections at low SNR with a tight
// iteration budget.
func adversarialPaths() (direct float64, extra []rf.Path, snr float64, maxIter int) {
	return 30, []rf.Path{{Delay: 37e-9, Gain: 1.8}, {Delay: 42e-9, Gain: 1.0}}, 12, 400
}

// adversarialTrial measures one synthetic deep-NLOS link with both
// rankings over the identical sweep, returning absolute errors in ns.
func adversarialTrial(rng *rand.Rand) (vertexErr, familyErr float64, ok bool) {
	direct, extra, snr, maxIter := adversarialPaths()
	tx, rx := csi.NewRadio(rng), csi.NewRadio(rng)
	tx.Quirk24, rx.Quirk24 = false, false
	paths := append([]rf.Path{{Delay: direct * 1e-9, Gain: 1}}, extra...)
	link := &csi.Link{TX: tx, RX: rx, Channel: rf.NewChannel(paths), SNRdB: snr}
	bands := wifi.Bands5GHz()
	sweep := link.Sweep(rng, bands, 3, 2.4e-3)
	hw := link.TX.Osc.HWDelayNs + link.RX.Osc.HWDelayNs
	errFor := func(rk tof.PeakRanking) (float64, bool) {
		est := tof.NewEstimator(tof.Config{Mode: tof.Bands5GHzOnly, MaxIter: maxIter, Ranking: rk})
		r, err := est.Estimate(bands, sweep)
		if err != nil {
			return 0, false
		}
		return math.Abs(r.ToF*1e9 - direct - hw), true
	}
	v, okV := errFor(tof.RankVertex)
	f, okF := errFor(tof.RankFamilies)
	return v, f, okV && okF
}

// AliasRanking is the alias-resolution ablation (chronos-bench -fig
// alias): vertex-ranked versus family-ranked peak extraction, measured
// on the standard office campaign (where both should agree — family
// ranking is a conservative extension) and on the adversarial deep-NLOS
// geometry where the solver strands direct-path mass on a ±25 ns ghost
// vertex and only family ranking recovers the true alias cell.
func AliasRanking(o Options) *Result {
	o = o.withDefaults(12)
	res := &Result{
		ID:     "alias-ranking",
		Title:  "Alias resolution: vertex-ranked vs family-ranked peaks",
		Header: []string{"scenario", "ranking", "median (ns)", "p90 (ns)", "ghosts", "trials"},
	}
	res.Metrics = map[string]float64{}

	rankings := []struct {
		name string
		rk   tof.PeakRanking
	}{
		{"vertex", tof.RankVertex},
		{"family", tof.RankFamilies},
	}

	// Office campaign, paired per trial: the ranking is the only
	// variable (identical placements, channels, and noise draws).
	office := newOffice(o)
	for _, rc := range rankings {
		cfg := tof.Config{Mode: tof.Bands5GHzOnly, MaxIter: 1200, Ranking: rc.rk}
		trials := runToFCampaign(o, "alias-ranking/office", office, cfg, o.Trials, false, 15)
		errs := make([]float64, len(trials))
		ghosts := 0
		for i, t := range trials {
			errs[i] = t.ErrNs
			if t.ErrNs > ghostNs {
				ghosts++
			}
		}
		res.Rows = append(res.Rows, []string{
			"office LOS", rc.name,
			fmtF(stats.Median(errs), 3), fmtF(stats.Percentile(errs, 90), 3),
			fmt.Sprintf("%d", ghosts), fmt.Sprintf("%d", len(errs)),
		})
		res.Metrics["office_median_"+rc.name+"_ns"] = stats.Median(errs)
		res.Metrics["office_ghosts_"+rc.name] = float64(ghosts)
	}

	// Adversarial deep-NLOS links: both rankings see the same sweep, so
	// the ghost-rate gap is attributable to the ranking alone.
	advTrials := o.Trials * 3
	type advOut struct{ v, f float64 }
	runs := runTrials(o, "alias-ranking/adversarial", advTrials, func(t int, rng *rand.Rand) (advOut, bool) {
		v, f, ok := adversarialTrial(rng)
		return advOut{v: v, f: f}, ok
	})
	var vErrs, fErrs []float64
	vGhosts, fGhosts := 0, 0
	for _, r := range runs {
		vErrs = append(vErrs, r.v)
		fErrs = append(fErrs, r.f)
		if r.v > ghostNs {
			vGhosts++
		}
		if r.f > ghostNs {
			fGhosts++
		}
	}
	n := len(runs)
	for _, rc := range rankings {
		errs, ghosts := vErrs, vGhosts
		if rc.rk == tof.RankFamilies {
			errs, ghosts = fErrs, fGhosts
		}
		res.Rows = append(res.Rows, []string{
			"deep NLOS (adversarial)", rc.name,
			fmtF(stats.Median(errs), 3), fmtF(stats.Percentile(errs, 90), 3),
			fmt.Sprintf("%d", ghosts), fmt.Sprintf("%d", n),
		})
		res.Metrics["adversarial_median_"+rc.name+"_ns"] = stats.Median(errs)
		res.Metrics["adversarial_ghosts_"+rc.name] = float64(ghosts)
	}
	if n > 0 {
		res.Metrics["adversarial_ghost_rate_vertex"] = float64(vGhosts) / float64(n)
		res.Metrics["adversarial_ghost_rate_family"] = float64(fGhosts) / float64(n)
	}
	return res
}

// PerfAlias characterizes the alias-disambiguation refit cost (the ~⅓ of
// estimate time the ROADMAP flagged) in solver Work units — grid cells
// processed, a deterministic measure unlike wall clock — cold versus
// warm-started across a sweep stream (chronos-bench -fig aliasperf). The
// warm column seeds each hypothesis's windowed solve from the previous
// sweep's converged window profile; the committed BENCH_4.json snapshots
// this table next to the PR-3 BENCH_baseline.json solver trajectory.
func PerfAlias(o Options) *Result {
	o = o.withDefaults(16)
	if o.Trials < 3 {
		o.Trials = 3 // warm medians need at least two seeded sweeps
	}
	bands := wifi.Bands5GHz()
	cfg := tof.Config{Mode: tof.Bands5GHzOnly, MaxIter: 1200}
	const sweepDt = 0.084 // seconds per full band sweep (Fig. 9a median)

	res := &Result{
		ID:     "perf-alias",
		Title:  "Alias-refit cost per estimate, cold vs warm-started (Work units)",
		Header: []string{"scenario", "alias work (cold)", "alias work (warm)", "warm/cold", "total work (warm)"},
	}
	res.Metrics = map[string]float64{}
	for _, sc := range []struct {
		name  string
		speed float64
	}{
		{"static", 0},
		{"walking 1 m/s", 1.0},
	} {
		rng := trialRNG(o, "perf-alias/"+sc.name, 0)
		tx, rx := csi.NewRadio(rng), csi.NewRadio(rng)
		tx.Quirk24, rx.Quirk24 = false, false
		link := &csi.Link{TX: tx, RX: rx, SNRdB: 26}

		est := tof.NewEstimator(cfg)
		cold := est.NewSweep()
		warm := est.NewSweep()
		warm.SetWarmStart(true)

		var coldAlias, warmAlias, warmTotal []float64
		tauNs := 20.0
		for s := 0; s < o.Trials; s++ {
			link.Channel = rf.NewChannel([]rf.Path{
				{Delay: tauNs * 1e-9, Gain: 1},
				{Delay: (tauNs + 4.2) * 1e-9, Gain: 0.6},
				{Delay: (tauNs + 9.5) * 1e-9, Gain: 0.4},
			})
			sweep := link.Sweep(rng, bands, 3, 2.4e-3)
			for i, b := range bands {
				if err := cold.AddBand(b, sweep[i]); err != nil {
					panic(err) // fixed synthetic geometry; cannot fail
				}
				if err := warm.AddBand(b, sweep[i]); err != nil {
					panic(err)
				}
			}
			rc, err := cold.Estimate()
			if err != nil {
				panic(err)
			}
			rw, err := warm.Estimate()
			if err != nil {
				panic(err)
			}
			coldAlias = append(coldAlias, float64(rc.AliasWork))
			if s > 0 { // the first warm sweep has nothing to warm from
				warmAlias = append(warmAlias, float64(rw.AliasWork))
				warmTotal = append(warmTotal, float64(rw.Work))
			}
			cold.Reset()
			warm.Reset()
			tauNs += sc.speed * sweepDt / wifi.SpeedOfLight * 1e9
		}
		ca, wa := stats.Median(coldAlias), stats.Median(warmAlias)
		res.Rows = append(res.Rows, []string{
			sc.name, fmtF(ca, 0), fmtF(wa, 0), fmtF(wa/ca, 3), fmtF(stats.Median(warmTotal), 0),
		})
		key := map[string]string{"static": "static", "walking 1 m/s": "walking"}[sc.name]
		res.Metrics["alias_work_cold_"+key] = ca
		res.Metrics["alias_work_warm_"+key] = wa
		if ca > 0 {
			res.Metrics["alias_warm_ratio_"+key] = wa / ca
		}
	}
	return res
}
