package exp

import (
	"fmt"
	"math"

	"chronos/internal/csi"
	"chronos/internal/ndft"
	"chronos/internal/rf"
	"chronos/internal/stats"
	"chronos/internal/tof"
	"chronos/internal/track"
	"chronos/internal/wifi"
)

// PerfConverge is the noise-adaptive convergence campaign
// (chronos-bench -fig converge): it proves the duality-gap stopping rule
// and the self-calibrating alias thresholds against the fixed-tolerance
// ablation across SNR regimes, in deterministic units (solver
// iterations, Work, ToF error — never wall clock). Four sections:
//
//  1. an SNR sweep (12/18/26 dB) over a fixed deep-multipath link,
//     gap-stopped versus fixed-epsilon solves, cold and warm: iteration
//     medians, cap-rates, and ToF error medians per arm;
//  2. an office LOS accuracy guard: the full default stack (gap stop +
//     adaptive thresholds) against the full legacy ablation
//     (StopIterate + FixedThresholds) on paired placements — the
//     campaign-SNR median must not move;
//  3. the deep-NLOS colliding-families fixture: two dominant alias
//     families in one period cell, whose warm refit seeds the PR-4
//     period-index labels collided back to cold — warm/cold alias Work
//     must stay ≤ 0.75 with identical fixes;
//  4. a streaming track session, warm versus cold, surfacing the
//     per-fix convergence telemetry (cap-rate, Work) the session now
//     records.
//
// The committed BENCH_5.json snapshots this table next to the perf and
// alias campaigns.
func PerfConverge(o Options) *Result {
	o = o.withDefaults(12)
	if o.Trials < 4 {
		o.Trials = 4 // warm medians need a few seeded sweeps
	}
	res := &Result{
		ID:     "perf-converge",
		Title:  "Noise-adaptive convergence: gap stop vs fixed tolerance across SNR",
		Header: []string{"scenario", "rule", "work (cold)", "work (warm)", "cap rate", "median err (ns)"},
	}
	res.Metrics = map[string]float64{}

	gapSolves, gapCapped := 0, 0

	// --- 1. SNR sweep over a fixed deep-multipath link ---
	type arm struct {
		name string
		mod  func(*tof.Config)
	}
	arms := []arm{
		{"gap", func(*tof.Config) {}},
		{"eps", func(c *tof.Config) { c.Stop = ndft.StopIterate; c.FixedThresholds = true }},
	}
	for _, snr := range []float64{12, 18, 26} {
		for _, a := range arms {
			rng := trialRNG(o, fmt.Sprintf("perf-converge/snr%v/%s", snr, a.name), 0)
			tx, rx := csi.NewRadio(rng), csi.NewRadio(rng)
			tx.Quirk24, rx.Quirk24 = false, false
			const tauNs = 20.0
			link := &csi.Link{TX: tx, RX: rx, SNRdB: snr, Channel: rf.NewChannel([]rf.Path{
				{Delay: tauNs * 1e-9, Gain: 1},
				{Delay: (tauNs + 4.2) * 1e-9, Gain: 0.6},
				{Delay: (tauNs + 9.5) * 1e-9, Gain: 0.4},
			})}
			hw := tx.Osc.HWDelayNs + rx.Osc.HWDelayNs
			bands := wifi.Bands5GHz()
			cfg := tof.Config{Mode: tof.Bands5GHzOnly, MaxIter: 1200}
			a.mod(&cfg)
			est := tof.NewEstimator(cfg)
			cold := est.NewSweep()
			warm := est.NewSweep()
			warm.SetWarmStart(true)

			var coldWork, warmWork, errs []float64
			solves, capped := 0, 0
			for s := 0; s < o.Trials; s++ {
				sweep := link.Sweep(rng, bands, 3, 2.4e-3)
				for i, b := range bands {
					if err := cold.AddBand(b, sweep[i]); err != nil {
						panic(err) // fixed synthetic geometry; cannot fail
					}
					if err := warm.AddBand(b, sweep[i]); err != nil {
						panic(err)
					}
				}
				rc, err := cold.Estimate()
				if err != nil {
					panic(err)
				}
				rw, err := warm.Estimate()
				if err != nil {
					panic(err)
				}
				coldWork = append(coldWork, float64(rc.Work))
				errs = append(errs, math.Abs(rc.ToF*1e9-tauNs-hw))
				solves += 2
				if !rc.Converged {
					capped++
				}
				if !rw.Converged {
					capped++
				}
				if s > 0 { // the first warm sweep has nothing to warm from
					warmWork = append(warmWork, float64(rw.Work))
				}
				cold.Reset()
				warm.Reset()
			}
			capRate := float64(capped) / float64(solves)
			if a.name == "gap" && snr == 26 {
				// The headline cap-rate is measured where the gap rule
				// engages (campaign SNR sits below the estimator's gap
				// ceiling); the 12/18 dB arms document the deliberate
				// deferral to the precise rule at deep fades.
				gapSolves += solves
				gapCapped += capped
			}
			scen := fmt.Sprintf("SNR %g dB", snr)
			cw, ww := stats.Median(coldWork), stats.Median(warmWork)
			me := stats.Median(errs)
			res.Rows = append(res.Rows, []string{
				scen, a.name, fmtF(cw, 0), fmtF(ww, 0), fmtF(capRate, 3), fmtF(me, 3),
			})
			key := fmt.Sprintf("%s_%g", a.name, snr)
			res.Metrics["work_cold_"+key] = cw
			res.Metrics["work_warm_"+key] = ww
			res.Metrics["cap_rate_"+key] = capRate
			res.Metrics["err_"+key+"_ns"] = me
		}
	}
	for _, snr := range []float64{12, 18, 26} {
		g, e := res.Metrics[fmt.Sprintf("work_cold_gap_%g", snr)], res.Metrics[fmt.Sprintf("work_cold_eps_%g", snr)]
		if g > 0 {
			res.Metrics[fmt.Sprintf("work_reduction_%g", snr)] = e / g
		}
	}

	// --- 2. Office LOS accuracy guard, placement-paired ---
	office := newOffice(o)
	for _, a := range arms {
		cfg := tof.Config{Mode: tof.Bands5GHzOnly, MaxIter: 1200}
		a.mod(&cfg)
		trials := runToFCampaign(o, "perf-converge/office", office, cfg, o.Trials, false, 15)
		errs := make([]float64, len(trials))
		for i, tr := range trials {
			errs[i] = tr.ErrNs
		}
		res.Rows = append(res.Rows, []string{
			"office LOS", a.name, "-", "-", "-", fmtF(stats.Median(errs), 3),
		})
		res.Metrics["office_median_"+a.name+"_ns"] = stats.Median(errs)
	}
	res.Metrics["office_median_delta_ns"] = math.Abs(
		res.Metrics["office_median_gap_ns"] - res.Metrics["office_median_eps_ns"])

	// --- 3. Colliding-families warm refits ---
	{
		rng := trialRNG(o, "perf-converge/collide", 0)
		tx, rx := csi.NewRadio(rng), csi.NewRadio(rng)
		tx.Quirk24, rx.Quirk24 = false, false
		link := &csi.Link{TX: tx, RX: rx, SNRdB: 26, Channel: rf.NewChannel([]rf.Path{
			{Delay: 30e-9, Gain: 1},
			{Delay: 37e-9, Gain: 1.8},
			{Delay: 42e-9, Gain: 1.0},
		})}
		bands := wifi.Bands5GHz()
		est := tof.NewEstimator(tof.Config{Mode: tof.Bands5GHzOnly, MaxIter: 1200})
		cold := est.NewSweep()
		warm := est.NewSweep()
		warm.SetWarmStart(true)
		var cW, wW int64
		var dMax float64
		for s := 0; s < o.Trials; s++ {
			sweep := link.Sweep(rng, bands, 3, 2.4e-3)
			for i, b := range bands {
				if err := cold.AddBand(b, sweep[i]); err != nil {
					panic(err)
				}
				if err := warm.AddBand(b, sweep[i]); err != nil {
					panic(err)
				}
			}
			rc, err := cold.Estimate()
			if err != nil {
				panic(err)
			}
			rw, err := warm.Estimate()
			if err != nil {
				panic(err)
			}
			if d := math.Abs(rc.ToF-rw.ToF) * 1e9; d > dMax {
				dMax = d
			}
			if s > 0 {
				cW += rc.AliasWork
				wW += rw.AliasWork
			}
			cold.Reset()
			warm.Reset()
		}
		ratio := math.NaN()
		if cW > 0 {
			ratio = float64(wW) / float64(cW)
		}
		res.Rows = append(res.Rows, []string{
			"colliding families (deep NLOS geometry)", "gap", "-", "-", "-", fmtF(dMax, 4),
		})
		res.Metrics["collide_alias_warm_ratio"] = ratio
		res.Metrics["collide_warm_cold_dtof_ns"] = dMax
	}

	// --- 4. Streaming track session, warm vs cold ---
	{
		scfg := track.SessionConfig{Speed: 1.0, Sweeps: 6}
		for _, warmStart := range []bool{false, true} {
			// Both arms replay the identical session (same rng stream), so
			// the warm row is directly comparable to the cold one.
			rng := trialRNG(o, "perf-converge/session", 0)
			cfg := scfg
			cfg.WarmStart = warmStart
			est := tof.NewEstimator(tof.Config{Mode: tof.Bands5GHzOnly, MaxIter: 1200})
			r, err := track.RunSession(rng, office, est, cfg)
			if err != nil || len(r.Fixes) == 0 {
				continue
			}
			var work []float64
			for _, f := range r.Fixes {
				work = append(work, float64(f.Work))
			}
			name := map[bool]string{false: "cold", true: "warm"}[warmStart]
			res.Rows = append(res.Rows, []string{
				"track session (" + name + ")", "gap", "-", "-",
				fmtF(float64(r.CappedFixes)/float64(len(r.Fixes)), 3), fmtF(r.RawRMSE, 3),
			})
			res.Metrics["session_"+name+"_median_work"] = stats.Median(work)
			res.Metrics["session_"+name+"_cap_fixes"] = float64(r.CappedFixes)
			res.Metrics["session_"+name+"_raw_rmse_m"] = r.RawRMSE
		}
	}

	if gapSolves > 0 {
		rate := float64(gapCapped) / float64(gapSolves)
		res.CapRate = &rate
		res.Metrics["cap_rate_gap_overall"] = rate
	}
	return res
}
