package exp

import (
	"math"
	"strings"
	"testing"
)

func TestFig3SolvesExactTau(t *testing.T) {
	r := Fig3(Options{})
	if e := r.Metrics["error_ps"]; math.IsNaN(e) || e > 10 {
		t.Errorf("CRT error = %v ps, want < 10 ps", e)
	}
	if len(r.Rows) != 6 { // 5 bands + solution row
		t.Errorf("rows = %d", len(r.Rows))
	}
}

func TestFig4RecoversThreePaths(t *testing.T) {
	r := Fig4(Options{})
	if p := r.Metrics["peaks"]; p < 3 || p > 6 {
		t.Errorf("peaks = %v, want 3–6", p)
	}
	if e := r.Metrics["first_peak_err_ps"]; e > 300 {
		t.Errorf("first peak error = %v ps", e)
	}
}

func TestFig7aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	r := Fig7a(Options{Trials: 8})
	los := r.Metrics["median_LOS_ns"]
	nlos := r.Metrics["median_NLOS_ns"]
	// Sub-ns medians, the paper's headline shape.
	if los > 1.5 {
		t.Errorf("LOS median = %v ns, want sub-ns-ish", los)
	}
	if nlos > 3 {
		t.Errorf("NLOS median = %v ns", nlos)
	}
}

func TestFig7bSparsity(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	r := Fig7b(Options{Trials: 8})
	mean := r.Metrics["mean_peaks"]
	// Paper: 5.05 ± 1.95 dominant peaks — profiles must be sparse.
	if mean < 2 || mean > 12 {
		t.Errorf("mean peaks = %v", mean)
	}
}

func TestFig7cDelayDominatesToF(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	r := Fig7c(Options{Trials: 5})
	if m := r.Metrics["median_delay_ns"]; m < 150 || m > 220 {
		t.Errorf("median delay = %v ns, want ≈177", m)
	}
	if ratio := r.Metrics["delay_tof_ratio"]; ratio < 4 {
		t.Errorf("delay/ToF ratio = %v, want ≫1 (paper ≈8)", ratio)
	}
}

func TestFig8aErrorsGrowWithDistance(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	r := Fig8a(Options{Trials: 20})
	near, far := r.Metrics["near_err_m"], r.Metrics["far_err_m"]
	if math.IsNaN(near) || math.IsNaN(far) {
		t.Skip("buckets unpopulated at this trial count")
	}
	if near > 1.0 {
		t.Errorf("near-range error = %v m", near)
	}
}

func TestFig9aMedianNear84ms(t *testing.T) {
	r := Fig9a(Options{Trials: 30})
	if m := r.Metrics["median_ms"]; m < 70 || m > 100 {
		t.Errorf("median sweep = %v ms, want ≈84", m)
	}
}

func TestFig9bNoStall(t *testing.T) {
	r := Fig9b(Options{})
	if r.Metrics["stalls"] != 0 {
		t.Errorf("stalls = %v, want 0", r.Metrics["stalls"])
	}
}

func TestFig9cDipSingleDigit(t *testing.T) {
	r := Fig9c(Options{})
	if d := r.Metrics["dip_percent"]; d < 1 || d > 25 {
		t.Errorf("dip = %v%%, want small single digits (paper 6.5%%)", d)
	}
}

func TestFig10aMedianCentimeters(t *testing.T) {
	r := Fig10a(Options{Trials: 3})
	if m := r.Metrics["median_cm"]; m > 15 {
		t.Errorf("median deviation = %v cm, want ≲10 (paper 4.2)", m)
	}
}

func TestFig10bHoldsTarget(t *testing.T) {
	mean := fig10Check(Options{})
	if math.Abs(mean-1.4) > 0.25 {
		t.Errorf("steady mean distance = %v m, want ≈1.4", mean)
	}
}

func TestResultStringRendering(t *testing.T) {
	r := &Result{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "22"}, {"333", "4"}},
	}
	s := r.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "333") {
		t.Errorf("rendering missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Errorf("lines = %d", len(lines))
	}
}

func TestAblationDelayOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	r := AblationDelay(Options{Seed: 2, Trials: 8})
	spline := r.Metrics["median_0_ns"]
	nearest := r.Metrics["median_2_ns"]
	toa := r.Metrics["median_toa_ns"]
	// Nearest-subcarrier keeps the per-packet delay jitter (~2π·312.5 kHz·σδ
	// per measurement). Its signature is strongest in the error tail —
	// occasional large misses — with a modest median penalty; the trials
	// are placement-paired with the spline arm, so the interpolation mode
	// is the only variable.
	if nearest <= spline {
		t.Errorf("nearest-subcarrier median (%v ns) not worse than spline (%v ns)", nearest, spline)
	}
	if sp90, np90 := r.Metrics["p90_0_ns"], r.Metrics["p90_2_ns"]; np90 < 5*sp90 {
		t.Errorf("nearest-subcarrier p90 (%v ns) lacks the jitter tail of spline p90 (%v ns)", np90, sp90)
	}
	// Uncompensated time of arrival is catastrophically worse: tens of ns.
	if toa < 50*spline {
		t.Errorf("ToA (%v ns) should dwarf spline (%v ns)", toa, spline)
	}
}

func TestAblationCFOOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	r := AblationCFO(Options{Trials: 6})
	paper := r.Metrics["median_0_ns"]
	fwd := r.Metrics["median_1_ns"]
	if fwd < 2*paper {
		t.Errorf("forward-only (%v ns) not clearly worse than product (%v ns)", fwd, paper)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults(7)
	if o.Seed != 1 || o.Trials != 7 {
		t.Errorf("defaults = %+v", o)
	}
	o = Options{Seed: 5, Trials: 2}.withDefaults(7)
	if o.Seed != 5 || o.Trials != 2 {
		t.Errorf("explicit = %+v", o)
	}
}
