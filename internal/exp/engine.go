package exp

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"

	"chronos/internal/sim"
)

// trialSeed derives the RNG seed for one trial of one campaign. The
// canonical RNG stream is per-trial, not per-campaign: a trial's seed
// depends only on (campaign seed, campaign ID, trial index), never on
// which worker runs it or in what order, so campaign results are
// bit-identical for a given Options.Seed at any worker count.
func trialSeed(seed int64, campaignID string, trial int) int64 {
	h := fnv.New64a()
	h.Write([]byte(campaignID))
	var idx [8]byte
	binary.LittleEndian.PutUint64(idx[:], uint64(trial))
	h.Write(idx[:])
	return seed ^ int64(h.Sum64())
}

// trialRNG builds the dedicated RNG for one trial of one campaign.
func trialRNG(o Options, campaignID string, trial int) *rand.Rand {
	return rand.New(rand.NewSource(trialSeed(o.Seed, campaignID, trial)))
}

// workerCount resolves Options.Workers: values > 0 are used as given,
// anything else means "all cores".
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// runTrials is the parallel campaign engine. It fans the trial indices
// [0, trials) out over a pool of Options.Workers goroutines; each trial
// runs fn with its own splittable RNG (seeded by trialSeed) so the
// output is independent of scheduling. fn returns (value, ok); trials
// that report ok=false (e.g. calibration failures) are dropped. Results
// are returned compacted in trial-index order, exactly as a serial loop
// over the same per-trial RNGs would produce them.
func runTrials[T any](o Options, campaignID string, trials int, fn func(trial int, rng *rand.Rand) (T, bool)) []T {
	if trials <= 0 {
		return nil
	}
	results := make([]T, trials)
	keep := make([]bool, trials)

	workers := o.workerCount()
	if workers > trials {
		workers = trials
	}
	if workers <= 1 {
		for t := 0; t < trials; t++ {
			results[t], keep[t] = fn(t, trialRNG(o, campaignID, t))
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for t := range idx {
					results[t], keep[t] = fn(t, trialRNG(o, campaignID, t))
				}
			}()
		}
		for t := 0; t < trials; t++ {
			idx <- t
		}
		close(idx)
		wg.Wait()
	}

	out := make([]T, 0, trials)
	for t := 0; t < trials; t++ {
		if keep[t] {
			out = append(out, results[t])
		}
	}
	return out
}

// campaignName qualifies a campaign ID with its visibility class so the
// LOS and NLOS arms of one figure draw disjoint per-trial RNG streams.
func campaignName(id string, nlos bool) string {
	if nlos {
		return id + "/NLOS"
	}
	return id + "/LOS"
}

// newOffice instantiates the campaign's office floor plan from a
// dedicated RNG stream derived from the campaign seed. The office is
// built once, before any trial runs, and is treated as read-only by the
// trial workers (placement draws use per-trial RNGs).
func newOffice(o Options) *sim.Office {
	return sim.NewOffice(rand.New(rand.NewSource(o.Seed)), sim.OfficeConfig{})
}
