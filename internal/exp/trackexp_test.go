package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"chronos/internal/tof"
	"chronos/internal/track"
)

// TestTrackCapacityDeterministicAcrossWorkers is the tracking acceptance
// criterion at the cheap (protocol-level) campaign: the rendered table
// must be byte-identical for Workers=1 and Workers=8. Not skipped in
// short mode — it is fast and covers the new campaign under -race.
func TestTrackCapacityDeterministicAcrossWorkers(t *testing.T) {
	serial := TrackCapacity(Options{Seed: 3, Trials: 3, Workers: 1})
	pooled := TrackCapacity(Options{Seed: 3, Trials: 3, Workers: 8})
	resultEqual(t, "track-capacity", serial, pooled)
}

// TestTrackSpeedDeterministicAcrossWorkers covers the full-pipeline
// streaming campaign (sync.Pool'd estimators under concurrent sessions).
func TestTrackSpeedDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	serial := TrackSpeed(Options{Seed: 3, Trials: 2, Workers: 1})
	pooled := TrackSpeed(Options{Seed: 3, Trials: 2, Workers: 8})
	resultEqual(t, "track-speed", serial, pooled)
}

// TestTrackCapacityShape checks the capacity trends the scheduler must
// show: per-device fix latency grows with contention while aggregate
// throughput stays within the same order.
func TestTrackCapacityShape(t *testing.T) {
	r := TrackCapacity(Options{Trials: 4})
	if r.Metrics["fix_latency_n16_ms"] <= r.Metrics["fix_latency_n1_ms"] {
		t.Errorf("16-device fix latency (%v ms) not above single-device (%v ms)",
			r.Metrics["fix_latency_n16_ms"], r.Metrics["fix_latency_n1_ms"])
	}
	if f1 := r.Metrics["fixes_per_sec_n1"]; f1 < 5 || f1 > 20 {
		t.Errorf("single-device fix rate = %v/s, want ≈12 (84 ms sweeps)", f1)
	}
	if r.Metrics["util_n16"] >= r.Metrics["util_n1"] {
		t.Errorf("airtime utilization did not drop under contention")
	}
	for _, key := range []string{"smooth_rmse_n1_m", "smooth_rmse_n16_m"} {
		if v := r.Metrics[key]; !(v > 0) || v > 3 {
			t.Errorf("%s = %v m, want plausible tracking error", key, v)
		}
	}
}

// TestTrackLatencyShape checks the early-fix trade-off: fewer bands mean
// strictly lower latency, and the full-sweep fix is the most accurate.
func TestTrackLatencyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	r := TrackLatency(Options{Trials: 2})
	if r.Metrics["median_latency_8bands_ms"] >= r.Metrics["median_latency_full_ms"] {
		t.Errorf("8-band latency (%v ms) not below full-sweep (%v ms)",
			r.Metrics["median_latency_8bands_ms"], r.Metrics["median_latency_full_ms"])
	}
	if full := r.Metrics["median_err_full_m"]; full > 1.5 {
		t.Errorf("full-sweep median error = %v m, want sub-meter-ish", full)
	}
	if r.Metrics["median_err_8bands_m"] <= r.Metrics["median_err_full_m"] {
		t.Errorf("early fixes (%v m) should be less accurate than full sweeps (%v m)",
			r.Metrics["median_err_8bands_m"], r.Metrics["median_err_full_m"])
	}
}

// TestTrackSpeedSmoothingHelps checks the campaign's headline: at walking
// speed the Kalman-smoothed RMSE must not exceed the raw per-sweep RMSE.
func TestTrackSpeedSmoothingHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	r := TrackSpeed(Options{Trials: 2})
	for _, key := range []string{"v0.0", "v1.0"} {
		raw, smooth := r.Metrics["raw_rmse_"+key+"_m"], r.Metrics["smooth_rmse_"+key+"_m"]
		if !(raw > 0) || !(smooth > 0) {
			t.Fatalf("%s RMSEs not computed: raw=%v smooth=%v", key, raw, smooth)
		}
		if smooth > raw*1.25 {
			t.Errorf("%s smoothed RMSE (%v m) well above raw (%v m)", key, smooth, raw)
		}
	}
}

// TestWriteJSONRoundTrips renders results as JSON and checks the schema
// the -json flag promises.
func TestWriteJSONRoundTrips(t *testing.T) {
	in := []*Result{{
		ID: "demo", Title: "Demo", Header: []string{"a"},
		Rows: [][]string{{"1"}}, Metrics: map[string]float64{"m": 2.5},
	}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []struct {
		ID      string             `json:"id"`
		Title   string             `json:"title"`
		Header  []string           `json:"header"`
		Rows    [][]string         `json:"rows"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 1 || out[0].ID != "demo" || out[0].Metrics["m"] != 2.5 {
		t.Errorf("round trip lost data: %+v", out)
	}
}

// TestTrackGoldenTraceAcrossWorkers is the golden-trace acceptance test
// for warm-started, velocity-translated sessions: a fixed-seed
// moving-target campaign must produce byte-identical per-fix tables at
// Workers=1 and Workers=8 (warm state is per-session, so worker
// scheduling must not leak into fixes), and the warm fix tables must
// stay within solver tolerance of the cold-start session's.
func TestTrackGoldenTraceAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	office := newOffice(Options{Seed: 5})
	trace := func(workers int, warm bool) []string {
		o := Options{Seed: 5, Workers: workers}
		return runTrials(o, "golden-trace", 4, func(trial int, rng *rand.Rand) (string, bool) {
			est := tof.NewEstimator(defaultToFConfig())
			cfg := track.SessionConfig{
				Speed: 1.2, Sweeps: 4,
				WarmStart: warm, VelocityTranslate: warm,
			}
			r, err := track.RunSession(rng, office, est, cfg)
			if err != nil || len(r.Fixes) == 0 {
				return "", false
			}
			var b strings.Builder
			for _, f := range r.Fixes {
				fmt.Fprintf(&b, "t%d at=%d bands=%d range=%x true=%x acc=%v\n",
					trial, f.At, f.Bands, f.Range, f.TrueRange, f.Accepted)
			}
			return b.String(), true
		})
	}
	serial := trace(1, true)
	pooled := trace(8, true)
	if strings.Join(serial, "") != strings.Join(pooled, "") {
		t.Errorf("warm fix tables differ across worker counts:\n%v\nvs\n%v", serial, pooled)
	}
	cold := trace(1, false)
	if len(cold) != len(serial) {
		t.Fatalf("trial counts differ: cold %d warm %d", len(cold), len(serial))
	}
	for i := range cold {
		warmLines := strings.Split(strings.TrimSpace(serial[i]), "\n")
		coldLines := strings.Split(strings.TrimSpace(cold[i]), "\n")
		if len(warmLines) != len(coldLines) {
			t.Fatalf("trial %d: fix counts differ", i)
		}
		for j := range warmLines {
			wr, cr := parseRange(t, warmLines[j]), parseRange(t, coldLines[j])
			if d := math.Abs(wr - cr); d > 0.05 {
				t.Errorf("trial %d fix %d: warm range %.4f vs cold %.4f (Δ %.4f m)\nwarm: %s\ncold: %s", i, j, wr, cr, d, warmLines[j], coldLines[j])
			}
		}
	}
}

// parseRange extracts the hex-float range field from a golden-trace line.
func parseRange(t *testing.T, line string) float64 {
	t.Helper()
	for _, f := range strings.Fields(line) {
		if strings.HasPrefix(f, "range=") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(f, "range="), 64)
			if err != nil {
				t.Fatalf("bad range in %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no range field in %q", line)
	return 0
}
