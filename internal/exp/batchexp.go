package exp

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"chronos/internal/dsp"
	"chronos/internal/ndft"
	"chronos/internal/stats"
	"chronos/internal/wifi"
)

// batchPlan is the service-scale solver geometry: every CSI subcarrier
// of every 5 GHz band on the fused h̃² evaluation grid (n ≈ 720
// frequencies × m = 601 delays). This is the geometry a chronos-svc
// daemon would hold resident per band plan — large enough that a
// sequential solve is bound by streaming the dictionary, which is
// exactly the traffic SolveBatch amortizes across requests.
var batchPlan = sync.OnceValues(func() (*ndft.Plan, error) {
	var freqs []float64
	for _, b := range wifi.Bands5GHz() {
		for _, k := range wifi.CSISubcarriers() {
			freqs = append(freqs, wifi.SubcarrierFreq(b, k))
		}
	}
	return ndft.NewPlan(freqs, ndft.TauGrid(2*60e-9, 2*0.1e-9))
})

// PerfBatch characterizes the batched cross-session solver: aggregate
// solves/sec of SolveBatch versus per-request sequential Solve at batch
// widths B ∈ {1, 2, 4, 8, 16} on the service-scale subcarrier geometry,
// with byte-identity between the two paths asserted per request. The
// workload is B independent sweeps solved cold at a fixed iteration
// budget — the steady-state shape of a ranging service draining one
// plan's queue, where every request marches the same tick count and the
// batch stays in lockstep.
//
// Sequential and batched timings for each width are interleaved within
// one process and the speedup is the median of per-repetition ratios,
// so host-speed drift between runs (or within one run) cancels out of
// the headline batch_speedup_b16 metric. Wall-clock throughputs remain
// informational; the byte_identical and vector_kernel metrics are exact.
func PerfBatch(o Options) *Result {
	o = o.withDefaults(3)
	plan, err := batchPlan()
	if err != nil {
		panic(err) // static geometry; cannot fail
	}
	freqs := plan.Freqs
	rng := rand.New(rand.NewSource(o.Seed))

	// 16 independent three-path sweeps at ~26 dB, fixed iteration budget:
	// every request runs exactly maxIter ticks, so sequential and batched
	// drivers do identical work in a different interleaving.
	const maxIter = 400
	const noiseSigma = 0.05
	const nReq = 16
	hs := make([]dsp.Vec, nReq)
	for i := range hs {
		tau := 5 + rng.Float64()*20
		h := make(dsp.Vec, len(freqs))
		for j, f := range freqs {
			for p, d := range []float64{tau, tau + 4.2, tau + 9.5} {
				ph := -2 * 2 * math.Pi * f * d * 1e-9
				h[j] += dsp.FromPolar([]float64{1, 0.6, 0.4}[p], ph)
			}
			h[j] += complex(rng.NormFloat64()*noiseSigma, rng.NormFloat64()*noiseSigma)
		}
		hs[i] = h
	}
	opts := ndft.InvertOptions{MaxIter: maxIter}

	res := &Result{
		ID:     "perf-batch",
		Title:  "SolveBatch aggregate throughput vs per-session Solve",
		Header: []string{"B", "solves/s (seq)", "solves/s (batch)", "speedup"},
	}
	res.Metrics = map[string]float64{}
	identical := 1.0
	vector := 0.0
	if ndft.HasVectorKernel() {
		vector = 1.0
	}

	seqDst := make([]*ndft.Result, nReq)
	batchDst := make([]*ndft.Result, nReq)
	for i := range seqDst {
		seqDst[i], batchDst[i] = &ndft.Result{}, &ndft.Result{}
	}
	reqs := make([]ndft.SolveRequest, nReq)

	for _, B := range []int{1, 2, 4, 8, 16} {
		var ratios, seqRates, batchRates []float64
		for rep := 0; rep < o.Trials; rep++ {
			// Each rep alternates sequential and batched legs twice and
			// keeps the minimum time per leg — the least-interference
			// estimate, which strips scheduler preemptions and frequency
			// dips from both sides of the ratio symmetrically.
			seqSec, batchSec := math.Inf(1), math.Inf(1)
			for pass := 0; pass < 2; pass++ {
				// Sequential leg: one Solve per request, the per-session
				// path.
				t0 := time.Now()
				for i := 0; i < B; i++ {
					if _, err := plan.Solve(ndft.SolveRequest{H: hs[i], Dst: seqDst[i], InvertOptions: opts}); err != nil {
						panic(err)
					}
				}
				seqSec = math.Min(seqSec, time.Since(t0).Seconds())

				// Batched leg, immediately adjacent in time.
				for i := 0; i < B; i++ {
					reqs[i] = ndft.SolveRequest{H: hs[i], Dst: batchDst[i], InvertOptions: opts}
				}
				t0 = time.Now()
				if err := plan.SolveBatch(reqs[:B]); err != nil {
					panic(err)
				}
				batchSec = math.Min(batchSec, time.Since(t0).Seconds())

				for i := 0; i < B; i++ {
					if !resultsIdentical(seqDst[i], batchDst[i]) {
						identical = 0
					}
				}
			}
			ratios = append(ratios, seqSec/batchSec)
			seqRates = append(seqRates, float64(B)/seqSec)
			batchRates = append(batchRates, float64(B)/batchSec)
		}
		speedup := stats.Median(ratios)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", B),
			fmtF(stats.Median(seqRates), 2), fmtF(stats.Median(batchRates), 2),
			fmtF(speedup, 2),
		})
		res.Metrics[fmt.Sprintf("batch_speedup_b%d", B)] = speedup
		res.Metrics[fmt.Sprintf("solves_per_sec_batch_b%d", B)] = stats.Median(batchRates)
	}
	res.Metrics["byte_identical"] = identical
	res.Metrics["vector_kernel"] = vector
	return res
}

// resultsIdentical reports whether two solver results are byte-identical
// in every computed field — the batch-equivalence contract.
func resultsIdentical(a, b *ndft.Result) bool {
	if len(a.Profile) != len(b.Profile) ||
		a.Residual != b.Residual || a.Iterations != b.Iterations ||
		a.Work != b.Work || a.Converged != b.Converged || a.GapAtStop != b.GapAtStop {
		return false
	}
	for i := range a.Profile {
		if a.Profile[i] != b.Profile[i] {
			return false
		}
	}
	return true
}
