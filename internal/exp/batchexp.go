package exp

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"chronos/internal/dsp"
	"chronos/internal/ndft"
	"chronos/internal/stats"
	"chronos/internal/wifi"
)

// batchPlan is the service-scale solver geometry: every CSI subcarrier
// of every 5 GHz band on the fused h̃² evaluation grid (n ≈ 720
// frequencies × m = 601 delays). This is the geometry a chronos-svc
// daemon would hold resident per band plan — large enough that a
// sequential solve is bound by streaming the dictionary, which is
// exactly the traffic SolveBatch amortizes across requests.
var batchPlan = sync.OnceValues(func() (*ndft.Plan, error) {
	var freqs []float64
	for _, b := range wifi.Bands5GHz() {
		for _, k := range wifi.CSISubcarriers() {
			freqs = append(freqs, wifi.SubcarrierFreq(b, k))
		}
	}
	return ndft.NewPlan(freqs, ndft.TauGrid(2*60e-9, 2*0.1e-9))
})

// PerfBatch characterizes the batched cross-session solver: aggregate
// solves/sec of SolveBatch versus per-request sequential Solve at batch
// widths B ∈ {1, 2, 4, 8, 16} on the service-scale subcarrier geometry,
// with byte-identity between the two paths asserted per request. The
// workload is B independent sweeps solved cold at a fixed iteration
// budget — the steady-state shape of a ranging service draining one
// plan's queue, where every request marches the same tick count and the
// batch stays in lockstep.
//
// Sequential and batched timings for each width are interleaved within
// one process and the speedup is the median of per-repetition ratios,
// so host-speed drift between runs (or within one run) cancels out of
// the headline speedup metrics. batch_speedup_b16 compares against
// same-tier sequential solves (now themselves vectorized), while a
// dedicated leg records batch_speedup_b16_vs_scalar against
// scalar-forced sequential solves — the PR-6-comparable headline that
// CI's per-tier throughput floor keys on. A trailing B=1 leg times the
// single-solve path cold and warm with the scalar tier forced against
// the active tier (ForceKernel A/B), measuring the vectorized adjoint
// dot on the path alias refits and tracking ticks take. Wall-clock
// throughputs remain informational; the byte_identical metric and the
// vector_kernel label (the active tier name, which CI keys its per-tier
// speedup floor on) are exact.
func PerfBatch(o Options) *Result {
	o = o.withDefaults(3)
	plan, err := batchPlan()
	if err != nil {
		panic(err) // static geometry; cannot fail
	}
	freqs := plan.Freqs
	rng := rand.New(rand.NewSource(o.Seed))

	// 16 independent three-path sweeps at ~26 dB, fixed iteration budget:
	// every request runs exactly maxIter ticks, so sequential and batched
	// drivers do identical work in a different interleaving.
	const maxIter = 400
	const noiseSigma = 0.05
	const nReq = 16
	hs := make([]dsp.Vec, nReq)
	for i := range hs {
		tau := 5 + rng.Float64()*20
		h := make(dsp.Vec, len(freqs))
		for j, f := range freqs {
			for p, d := range []float64{tau, tau + 4.2, tau + 9.5} {
				ph := -2 * 2 * math.Pi * f * d * 1e-9
				h[j] += dsp.FromPolar([]float64{1, 0.6, 0.4}[p], ph)
			}
			h[j] += complex(rng.NormFloat64()*noiseSigma, rng.NormFloat64()*noiseSigma)
		}
		hs[i] = h
	}
	opts := ndft.InvertOptions{MaxIter: maxIter}

	res := &Result{
		ID:     "perf-batch",
		Title:  "SolveBatch aggregate throughput vs per-session Solve",
		Header: []string{"B", "solves/s (seq)", "solves/s (batch)", "speedup"},
	}
	res.Metrics = map[string]float64{}
	res.Labels = map[string]string{"vector_kernel": ndft.VectorKernel()}
	identical := 1.0

	seqDst := make([]*ndft.Result, nReq)
	batchDst := make([]*ndft.Result, nReq)
	for i := range seqDst {
		seqDst[i], batchDst[i] = &ndft.Result{}, &ndft.Result{}
	}
	reqs := make([]ndft.SolveRequest, nReq)

	for _, B := range []int{1, 2, 4, 8, 16} {
		var ratios, seqRates, batchRates []float64
		for rep := 0; rep < o.Trials; rep++ {
			// Each rep alternates sequential and batched legs twice and
			// keeps the minimum time per leg — the least-interference
			// estimate, which strips scheduler preemptions and frequency
			// dips from both sides of the ratio symmetrically.
			seqSec, batchSec := math.Inf(1), math.Inf(1)
			for pass := 0; pass < 2; pass++ {
				// Sequential leg: one Solve per request, the per-session
				// path.
				t0 := time.Now()
				for i := 0; i < B; i++ {
					if _, err := plan.Solve(ndft.SolveRequest{H: hs[i], Dst: seqDst[i], InvertOptions: opts}); err != nil {
						panic(err)
					}
				}
				seqSec = math.Min(seqSec, time.Since(t0).Seconds())

				// Batched leg, immediately adjacent in time.
				for i := 0; i < B; i++ {
					reqs[i] = ndft.SolveRequest{H: hs[i], Dst: batchDst[i], InvertOptions: opts}
				}
				t0 = time.Now()
				if err := plan.SolveBatch(reqs[:B]); err != nil {
					panic(err)
				}
				batchSec = math.Min(batchSec, time.Since(t0).Seconds())

				for i := 0; i < B; i++ {
					if !resultsIdentical(seqDst[i], batchDst[i]) {
						identical = 0
					}
				}
			}
			ratios = append(ratios, seqSec/batchSec)
			seqRates = append(seqRates, float64(B)/seqSec)
			batchRates = append(batchRates, float64(B)/batchSec)
		}
		speedup := stats.Median(ratios)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", B),
			fmtF(stats.Median(seqRates), 2), fmtF(stats.Median(batchRates), 2),
			fmtF(speedup, 2),
		})
		res.Metrics[fmt.Sprintf("batch_speedup_b%d", B)] = speedup
		res.Metrics[fmt.Sprintf("solves_per_sec_batch_b%d", B)] = stats.Median(batchRates)
	}
	res.Metrics["byte_identical"] = identical

	// Scalar-baseline ratio at B=16: aggregate batched throughput on the
	// active tier versus the sequential scalar contract path. Sequential
	// Solve was scalar before the single-solve adjoint vectorized, so
	// batch_speedup_b16 above (batch vs same-tier sequential) shrank when
	// the baseline sped up; this leg preserves the PR-6-comparable
	// headline, and it is the number CI's per-tier throughput floor keys
	// on (≥4× on avx512, ≥2.5× on the 4-lane tiers).
	var vsScalar []float64
	for rep := 0; rep < o.Trials; rep++ {
		seqSec, batchSec := math.Inf(1), math.Inf(1)
		for pass := 0; pass < 2; pass++ {
			prev, err := ndft.ForceKernel("scalar")
			if err != nil {
				panic(err)
			}
			t0 := time.Now()
			for i := 0; i < nReq; i++ {
				if _, err := plan.Solve(ndft.SolveRequest{H: hs[i], Dst: seqDst[i], InvertOptions: opts}); err != nil {
					panic(err)
				}
			}
			seqSec = math.Min(seqSec, time.Since(t0).Seconds())
			if _, err := ndft.ForceKernel(prev); err != nil {
				panic(err)
			}

			for i := 0; i < nReq; i++ {
				reqs[i] = ndft.SolveRequest{H: hs[i], Dst: batchDst[i], InvertOptions: opts}
			}
			t0 = time.Now()
			if err := plan.SolveBatch(reqs[:nReq]); err != nil {
				panic(err)
			}
			batchSec = math.Min(batchSec, time.Since(t0).Seconds())
		}
		vsScalar = append(vsScalar, seqSec/batchSec)
	}
	res.Metrics["batch_speedup_b16_vs_scalar"] = stats.Median(vsScalar)

	// B=1 single-solve leg: the sequential path alias refits and
	// tracking ticks take, cold (full grid) and warm (working-set
	// restricted from the previous profile), A/B'd between the scalar
	// contract path and the active kernel tier via ForceKernel. The
	// vectorized adjoint dot and column accumulation are exactly what
	// this leg exercises — with the scalar tier forced, both runs use
	// the same arithmetic contract, so the A/B changes throughput only.
	warm := append(dsp.Vec(nil), hs[0]...)
	{
		r, err := plan.Solve(ndft.SolveRequest{H: hs[0], InvertOptions: opts})
		if err != nil {
			panic(err)
		}
		warm = append(warm[:0], r.Profile...)
	}
	singleDst := &ndft.Result{}
	singleLeg := func() (coldSec, warmSec float64) {
		coldSec, warmSec = math.Inf(1), math.Inf(1)
		for rep := 0; rep < 2*o.Trials; rep++ {
			t0 := time.Now()
			if _, err := plan.Solve(ndft.SolveRequest{H: hs[0], Dst: singleDst, InvertOptions: opts}); err != nil {
				panic(err)
			}
			coldSec = math.Min(coldSec, time.Since(t0).Seconds())
			t0 = time.Now()
			if _, err := plan.Solve(ndft.SolveRequest{H: hs[0], Warm: warm, Dst: singleDst, InvertOptions: opts}); err != nil {
				panic(err)
			}
			warmSec = math.Min(warmSec, time.Since(t0).Seconds())
		}
		return coldSec, warmSec
	}
	prevTier, err := ndft.ForceKernel("scalar")
	if err != nil {
		panic(err)
	}
	scalarCold, scalarWarm := singleLeg()
	if _, err := ndft.ForceKernel(prevTier); err != nil {
		panic(err)
	}
	activeCold, activeWarm := singleLeg()
	res.Metrics["us_per_solve_single_cold_scalar"] = scalarCold * 1e6
	res.Metrics["us_per_solve_single_cold"] = activeCold * 1e6
	res.Metrics["us_per_solve_single_warm_scalar"] = scalarWarm * 1e6
	res.Metrics["us_per_solve_single_warm"] = activeWarm * 1e6
	res.Metrics["single_solve_speedup_cold"] = scalarCold / activeCold
	res.Metrics["single_solve_speedup_warm"] = scalarWarm / activeWarm
	res.Rows = append(res.Rows, []string{
		"1 (single, cold)",
		fmtF(1/scalarCold, 2), fmtF(1/activeCold, 2), fmtF(scalarCold/activeCold, 2),
	}, []string{
		"1 (single, warm)",
		fmtF(1/scalarWarm, 2), fmtF(1/activeWarm, 2), fmtF(scalarWarm/activeWarm, 2),
	})
	return res
}

// resultsIdentical reports whether two solver results are byte-identical
// in every computed field — the batch-equivalence contract.
func resultsIdentical(a, b *ndft.Result) bool {
	if len(a.Profile) != len(b.Profile) ||
		a.Residual != b.Residual || a.Iterations != b.Iterations ||
		a.Work != b.Work || a.Converged != b.Converged || a.GapAtStop != b.GapAtStop {
		return false
	}
	for i := range a.Profile {
		if a.Profile[i] != b.Profile[i] {
			return false
		}
	}
	return true
}
