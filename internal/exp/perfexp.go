package exp

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"chronos/internal/dsp"
	"chronos/internal/ndft"
	"chronos/internal/stats"
	"chronos/internal/wifi"
)

// perfPlan is the fixed solver-snapshot geometry: the fused estimator's
// h̃² evaluation grid over all U.S. bands, built once per process.
var perfPlan = sync.OnceValues(func() (*ndft.Plan, error) {
	return ndft.NewPlan(wifi.Centers(wifi.USBands()), ndft.TauGrid(2*60e-9, 2*0.1e-9))
})

// PerfSolver characterizes the §6 solver core on the evaluation
// geometry: cold-start versus warm-started iteration counts and
// wall-clock per solve, over a simulated tracking steady state (static
// target, fresh measurement noise each sweep) and a walking target
// (profile drifts between sweeps). Iteration counts and convergence are
// deterministic for a given seed; the µs timings are informational and
// vary by host. The JSON rendering of this campaign is the
// BENCH_baseline.json perf-trajectory snapshot.
func PerfSolver(o Options) *Result {
	o = o.withDefaults(12)
	if o.Trials < 2 {
		// The warm column needs at least one seeded sweep (the first has
		// nothing to warm from); a single trial would leave it empty and
		// put NaN medians into the JSON output.
		o.Trials = 2
	}
	freqs := wifi.Centers(wifi.USBands())
	plan, err := perfPlan()
	if err != nil {
		panic(err) // static geometry; cannot fail
	}
	// The snapshot drives Plan.Solve directly (no CSI pairs to measure a
	// spread from), so it supplies the injected noise's true norm
	// σ·√(2n) as the per-sweep floor — the quantity the tof layer's
	// pair-spread estimator measures in production. The solves therefore
	// run the production noise-adaptive gap stop.
	const noiseSigma = 0.05
	wNorm := noiseSigma * math.Sqrt(2*float64(len(freqs)))
	opts := ndft.InvertOptions{MaxIter: 4000, NoiseFloor: wNorm}
	rng := rand.New(rand.NewSource(o.Seed))

	// measure returns one sweep's h̃² measurement for a direct path at
	// delay tauNs with two fixed reflections, at ~26 dB SNR.
	measure := func(tauNs float64) dsp.Vec {
		h := make(dsp.Vec, len(freqs))
		delays := []float64{tauNs, tauNs + 4.2, tauNs + 9.5}
		gains := []float64{1, 0.6, 0.4}
		for i, f := range freqs {
			for k := range delays {
				// h̃² delays are doubled relative to τ.
				ph := -2 * 2 * math.Pi * f * delays[k] * 1e-9
				h[i] += dsp.FromPolar(gains[k], ph)
			}
			h[i] += complex(rng.NormFloat64()*noiseSigma, rng.NormFloat64()*noiseSigma)
		}
		return h
	}

	type scenario struct {
		name  string
		speed float64 // m/s of τ drift applied between sweeps
	}
	scenarios := []scenario{
		{"static", 0},
		{"walking 1 m/s", 1.0},
	}

	res := &Result{
		ID:     "perf-solver",
		Title:  "Plan.Solve iterations and latency, cold vs warm-started",
		Header: []string{"scenario", "iters (cold)", "iters (warm)", "µs/solve (cold)", "µs/solve (warm)"},
	}
	res.Metrics = map[string]float64{}
	res.Labels = map[string]string{"vector_kernel": ndft.VectorKernel()}
	const sweepDt = 0.084 // seconds per full band sweep (Fig. 9a median)
	solves, capped := 0, 0
	for _, sc := range scenarios {
		var coldIters, warmIters []float64
		var coldNs, warmNs float64
		tauNs := 20.0
		warmDst, coldDst := &ndft.Result{}, &ndft.Result{}
		var warmSeed dsp.Vec
		for s := 0; s < o.Trials; s++ {
			h := measure(tauNs)
			t0 := time.Now()
			cold, err := plan.Solve(ndft.SolveRequest{H: h, Dst: coldDst, InvertOptions: opts})
			if err != nil {
				continue
			}
			coldNs += float64(time.Since(t0))
			coldIters = append(coldIters, float64(cold.Iterations))
			solves++
			if !cold.Converged {
				capped++
			}
			if warmSeed == nil {
				// The first sweep has nothing to warm from; seed the warm
				// chain from the cold solve rather than repeating it, and
				// count only the genuinely seeded sweeps.
				warmSeed = append(warmSeed, cold.Profile...)
			} else {
				t0 = time.Now()
				warm, err := plan.Solve(ndft.SolveRequest{H: h, Warm: warmSeed, Dst: warmDst, InvertOptions: opts})
				if err != nil {
					continue
				}
				warmNs += float64(time.Since(t0))
				warmIters = append(warmIters, float64(warm.Iterations))
				solves++
				if !warm.Converged {
					capped++
				}
				warmSeed = append(warmSeed[:0], warm.Profile...)
			}
			// Drift the target between sweeps: c·Δt of radial motion.
			tauNs += sc.speed * sweepDt / wifi.SpeedOfLight * 1e9
		}
		n, wn := float64(len(coldIters)), float64(len(warmIters))
		if n == 0 || wn == 0 {
			continue
		}
		ci, wi := stats.Median(coldIters), stats.Median(warmIters)
		res.Rows = append(res.Rows, []string{
			sc.name, fmtF(ci, 0), fmtF(wi, 0),
			fmtF(coldNs/n/1e3, 1), fmtF(warmNs/wn/1e3, 1),
		})
		key := map[string]string{"static": "static", "walking 1 m/s": "walking"}[sc.name]
		res.Metrics["iters_cold_"+key] = ci
		res.Metrics["iters_warm_"+key] = wi
		res.Metrics["us_per_solve_cold_"+key] = coldNs / n / 1e3
		res.Metrics["us_per_solve_warm_"+key] = warmNs / wn / 1e3
		if wi > 0 {
			res.Metrics["warm_speedup_iters_"+key] = ci / wi
		}
	}
	if solves > 0 {
		rate := float64(capped) / float64(solves)
		res.Metrics["cap_rate"] = rate
		res.CapRate = &rate
	}
	return res
}
