package exp

import (
	"fmt"
	"math"
	"sync"

	"chronos/internal/crt"
	"chronos/internal/dsp"
	"chronos/internal/ndft"
	"chronos/internal/stats"
	"chronos/internal/wifi"
)

// fig4Plan is the fixed Fig. 4 inversion geometry (all U.S. bands, 40 ns
// grid), built once per process like every other solver plan.
var fig4Plan = sync.OnceValues(func() (*ndft.Plan, error) {
	return ndft.NewPlan(wifi.Centers(wifi.USBands()), ndft.TauGrid(40e-9, 0.1e-9))
})

// Fig3 reproduces the Chinese-remainder illustration: a source at 0.6 m
// (τ = 2 ns) measured on five bands, solved by phase alignment.
func Fig3(o Options) *Result {
	o = o.withDefaults(1)
	freqs := []float64{2.412e9, 2.462e9, 5.18e9, 5.3e9, 5.825e9}
	trueTau := 2e-9
	obs := make([]crt.Observation, len(freqs))
	for i, f := range freqs {
		obs[i] = crt.Observation{Freq: f, Phase: math.Mod(-2*math.Pi*f*trueTau, 2*math.Pi)}
	}
	res := &Result{
		ID:     "fig3",
		Title:  "CRT phase alignment resolves τ=2 ns from 5 bands",
		Header: []string{"band (GHz)", "period (ns)", "candidates ≤ 3 ns"},
	}
	for i, f := range freqs {
		cands := crt.Candidates(obs[i], 3e-9)
		res.Rows = append(res.Rows, []string{
			fmtF(f/1e9, 3), fmtF(1/f*1e9, 3), fmt.Sprintf("%d", len(cands)),
		})
	}
	tau, score, err := crt.Solve(obs, crt.Config{MaxTau: 10e-9})
	if err != nil {
		tau, score = math.NaN(), math.NaN()
	}
	res.Rows = append(res.Rows, []string{"solved τ (ns)", fmtF(tau*1e9, 3), fmtF(score, 4)})
	res.Metrics = map[string]float64{
		"solved_tau_ns": tau * 1e9,
		"true_tau_ns":   trueTau * 1e9,
		"error_ps":      math.Abs(tau-trueTau) * 1e12,
	}
	return res
}

// Fig4 reproduces the multipath-profile illustration: three paths at 5.2,
// 10 and 16 ns recovered by the sparse inverse NDFT across all bands.
func Fig4(o Options) *Result {
	o = o.withDefaults(1)
	freqs := wifi.Centers(wifi.USBands())
	delays := []float64{5.2e-9, 10e-9, 16e-9}
	gains := []float64{1, 0.7, 0.5}
	h := make(dsp.Vec, len(freqs))
	for i, f := range freqs {
		for k := range delays {
			h[i] += dsp.FromPolar(gains[k], math.Mod(-2*math.Pi*f*delays[k], 2*math.Pi))
		}
	}
	plan, err := fig4Plan()
	if err != nil {
		panic(err)
	}
	inv, err := plan.Solve(ndft.SolveRequest{H: h, InvertOptions: ndft.InvertOptions{MaxIter: 4000}})
	if err != nil {
		panic(err)
	}
	peaks := dsp.FindPeaks(inv.Taus, inv.Magnitude, 0.2)
	res := &Result{
		ID:     "fig4",
		Title:  "Multipath profile: 3 paths at 5.2/10/16 ns via inverse NDFT",
		Header: []string{"peak", "delay (ns)", "relative power"},
	}
	maxP := 0.0
	for _, p := range peaks {
		if p.Power > maxP {
			maxP = p.Power
		}
	}
	for i, p := range peaks {
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", i+1), fmtF(p.X*1e9, 2), fmtF(p.Power/maxP, 3),
		})
	}
	m := map[string]float64{"peaks": float64(len(peaks))}
	if len(peaks) > 0 {
		m["first_peak_ns"] = peaks[0].X * 1e9
		m["first_peak_err_ps"] = math.Abs(peaks[0].X-5.2e-9) * 1e12
	}
	res.Metrics = m
	return res
}

// Fig7a reproduces the headline ToF-accuracy CDF: calibrated error over
// random LOS and NLOS placements up to 15 m (paper: median 0.47 ns LOS /
// 0.69 ns NLOS).
func Fig7a(o Options) *Result {
	o = o.withDefaults(30)
	office := newOffice(o)
	cfg := defaultToFConfig()

	res := &Result{
		ID:     "fig7a",
		Title:  "Time-of-flight error CDF (LOS and NLOS)",
		Header: []string{"condition", "median (ns)", "p67 (ns)", "p95 (ns)", "trials"},
	}
	res.Metrics = map[string]float64{}
	for _, nlos := range []bool{false, true} {
		trials := runToFCampaign(o, campaignName("fig7a", nlos), office, cfg, o.Trials, nlos, 15)
		errs := make([]float64, len(trials))
		for i, t := range trials {
			errs[i] = t.ErrNs
		}
		name := "LOS"
		if nlos {
			name = "NLOS"
		}
		res.Rows = append(res.Rows, []string{
			name,
			fmtF(stats.Median(errs), 3),
			fmtF(stats.Percentile(errs, 67), 3),
			fmtF(stats.Percentile(errs, 95), 3),
			fmt.Sprintf("%d", len(errs)),
		})
		res.Metrics["median_"+name+"_ns"] = stats.Median(errs)
		res.Metrics["p95_"+name+"_ns"] = stats.Percentile(errs, 95)
	}
	return res
}

// Fig7b reproduces the profile-sparsity census: the mean and standard
// deviation of the number of dominant peaks across placements (paper:
// 5.05 ± 1.95).
func Fig7b(o Options) *Result {
	o = o.withDefaults(30)
	office := newOffice(o)
	cfg := defaultToFConfig()

	var peaksAll []float64
	res := &Result{
		ID:     "fig7b",
		Title:  "Multipath profile sparsity (dominant peak census)",
		Header: []string{"condition", "mean peaks", "std", "trials"},
	}
	for _, nlos := range []bool{false, true} {
		trials := runToFCampaign(o, campaignName("fig7b", nlos), office, cfg, o.Trials/2+1, nlos, 15)
		var peaks []float64
		for _, t := range trials {
			peaks = append(peaks, float64(t.Peaks))
			peaksAll = append(peaksAll, float64(t.Peaks))
		}
		name := "LOS"
		if nlos {
			name = "NLOS"
		}
		res.Rows = append(res.Rows, []string{
			name, fmtF(stats.Mean(peaks), 2), fmtF(stats.StdDev(peaks), 2),
			fmt.Sprintf("%d", len(peaks)),
		})
	}
	res.Rows = append(res.Rows, []string{
		"overall", fmtF(stats.Mean(peaksAll), 2), fmtF(stats.StdDev(peaksAll), 2),
		fmt.Sprintf("%d", len(peaksAll)),
	})
	res.Metrics = map[string]float64{
		"mean_peaks": stats.Mean(peaksAll),
		"std_peaks":  stats.StdDev(peaksAll),
	}
	return res
}

// Fig7c reproduces the packet-detection-delay histogram and its contrast
// with time of flight (paper: median delay 177 ns, σ 24.76 ns, ≈8× ToF).
func Fig7c(o Options) *Result {
	o = o.withDefaults(20)
	office := newOffice(o)
	cfg := defaultToFConfig()

	trials := runToFCampaign(o, "fig7c", office, cfg, o.Trials, false, 15)
	var delays, tofs []float64
	for _, t := range trials {
		delays = append(delays, t.DelaysNs...)
		tofs = append(tofs, t.DistM/wifi.SpeedOfLight*1e9)
	}
	res := &Result{
		ID:     "fig7c",
		Title:  "Packet detection delay vs time of flight",
		Header: []string{"quantity", "median (ns)", "std (ns)"},
	}
	res.Rows = append(res.Rows, []string{"detection delay", fmtF(stats.Median(delays), 1), fmtF(stats.StdDev(delays), 2)})
	res.Rows = append(res.Rows, []string{"time of flight", fmtF(stats.Median(tofs), 1), fmtF(stats.StdDev(tofs), 2)})
	ratio := stats.Median(delays) / stats.Median(tofs)
	res.Rows = append(res.Rows, []string{"delay / ToF", fmtF(ratio, 1), ""})
	res.Metrics = map[string]float64{
		"median_delay_ns": stats.Median(delays),
		"std_delay_ns":    stats.StdDev(delays),
		"delay_tof_ratio": ratio,
	}
	return res
}

// Fig8a reproduces distance error bucketed by true distance (paper:
// ~10 cm near, ≤25.6 cm at 12–15 m).
func Fig8a(o Options) *Result {
	o = o.withDefaults(60)
	office := newOffice(o)
	cfg := defaultToFConfig()

	buckets := []struct{ lo, hi float64 }{
		{0, 2}, {2, 4}, {4, 6}, {6, 8}, {8, 10}, {10, 12}, {12, 15},
	}
	type agg struct{ los, nlos []float64 }
	data := make([]agg, len(buckets))

	for _, nlos := range []bool{false, true} {
		trials := runToFCampaign(o, campaignName("fig8a", nlos), office, cfg, o.Trials, nlos, 15)
		for _, t := range trials {
			for bi, b := range buckets {
				if t.DistM > b.lo && t.DistM <= b.hi {
					errM := t.ErrNs * 1e-9 * wifi.SpeedOfLight
					if nlos {
						data[bi].nlos = append(data[bi].nlos, errM)
					} else {
						data[bi].los = append(data[bi].los, errM)
					}
				}
			}
		}
	}
	res := &Result{
		ID:     "fig8a",
		Title:  "Distance error vs device separation",
		Header: []string{"distance (m)", "LOS median err (m)", "NLOS median err (m)", "n(LOS)", "n(NLOS)"},
	}
	res.Metrics = map[string]float64{}
	for bi, b := range buckets {
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%g–%g", b.lo, b.hi),
			fmtF(stats.Median(data[bi].los), 3),
			fmtF(stats.Median(data[bi].nlos), 3),
			fmt.Sprintf("%d", len(data[bi].los)),
			fmt.Sprintf("%d", len(data[bi].nlos)),
		})
	}
	// Headline: median error in the nearest and farthest populated bins.
	for bi := range buckets {
		if len(data[bi].los) > 0 {
			res.Metrics["near_err_m"] = stats.Median(data[bi].los)
			break
		}
	}
	for bi := len(buckets) - 1; bi >= 0; bi-- {
		if len(data[bi].los) > 0 {
			res.Metrics["far_err_m"] = stats.Median(data[bi].los)
			break
		}
	}
	return res
}
