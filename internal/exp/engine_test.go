package exp

import (
	"math/rand"
	"reflect"
	"testing"

	"chronos/internal/tof"
)

func TestTrialSeedSplits(t *testing.T) {
	seen := map[int64]bool{}
	for _, id := range []string{"fig7a/LOS", "fig7a/NLOS", "fig8b/LOS"} {
		for trial := 0; trial < 50; trial++ {
			s := trialSeed(7, id, trial)
			if seen[s] {
				t.Fatalf("seed collision at %s trial %d", id, trial)
			}
			seen[s] = true
		}
	}
	if got := trialSeed(7, "fig7a/LOS", 3); got != trialSeed(7, "fig7a/LOS", 3) {
		t.Errorf("trialSeed not stable: %d", got)
	}
}

func TestWorkerCountResolution(t *testing.T) {
	if n := (Options{Workers: 3}).workerCount(); n != 3 {
		t.Errorf("explicit workers = %d, want 3", n)
	}
	if n := (Options{}).workerCount(); n < 1 {
		t.Errorf("default workers = %d, want >= 1", n)
	}
}

// TestRunTrialsOrderAndCompaction checks the engine's core contract: the
// result order matches trial-index order regardless of worker count, and
// dropped trials compact without reordering survivors.
func TestRunTrialsOrderAndCompaction(t *testing.T) {
	run := func(workers int) []int {
		o := Options{Seed: 11, Workers: workers}
		return runTrials(o, "order", 64, func(trial int, rng *rand.Rand) (int, bool) {
			_ = rng.Int63() // consume the per-trial stream
			return trial, trial%5 != 0
		})
	}
	serial := run(1)
	if len(serial) != 64-13 {
		t.Fatalf("kept %d trials, want 51", len(serial))
	}
	for i := 1; i < len(serial); i++ {
		if serial[i] <= serial[i-1] {
			t.Fatalf("results out of trial order: %v", serial)
		}
	}
	for _, workers := range []int{2, 8, 100} {
		if got := run(workers); !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d diverged from serial: %v vs %v", workers, got, serial)
		}
	}
}

// TestRunTrialsRNGIsPerTrial checks that a trial's random draws depend
// only on (seed, campaign, index) — the property the whole determinism
// story rests on.
func TestRunTrialsRNGIsPerTrial(t *testing.T) {
	draw := func(workers, trials int) []int64 {
		o := Options{Seed: 5, Workers: workers}
		return runTrials(o, "rng", trials, func(trial int, rng *rand.Rand) (int64, bool) {
			return rng.Int63(), true
		})
	}
	a, b := draw(1, 16), draw(7, 16)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("per-trial draws depend on worker count:\n%v\n%v", a, b)
	}
	// A prefix of a longer campaign must match the shorter one: trial
	// seeds do not depend on the campaign size.
	c := draw(3, 8)
	if !reflect.DeepEqual(a[:8], c) {
		t.Errorf("trial streams depend on campaign size:\n%v\n%v", a[:8], c)
	}
}

// TestToFCampaignParallelSmoke runs a real (if tiny) ToF campaign with
// concurrent workers and compares it against a serial run. Unlike the
// figure-scale determinism tests it is NOT skipped in short mode: it is
// the one test that drives the estimator sync.Pool and the shared
// read-only office through runTrials under the -race CI lane.
func TestToFCampaignParallelSmoke(t *testing.T) {
	cfg := tof.Config{Mode: tof.Bands5GHzOnly, MaxIter: 300}
	run := func(workers int) []tofTrial {
		o := Options{Seed: 2, Workers: workers}
		return runToFCampaign(o, "smoke", newOffice(o), cfg, 4, false, 12)
	}
	serial, pooled := run(1), run(4)
	if len(serial) == 0 {
		t.Fatal("smoke campaign produced no trials")
	}
	if !reflect.DeepEqual(serial, pooled) {
		t.Errorf("parallel ToF campaign diverged from serial:\n%v\n%v", serial, pooled)
	}
}

// resultEqual compares two campaign results down to every rendered cell.
func resultEqual(t *testing.T, name string, a, b *Result) {
	t.Helper()
	if a.String() != b.String() {
		t.Errorf("%s tables differ across worker counts:\n--- workers=1:\n%s--- workers=8:\n%s", name, a, b)
	}
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Errorf("%s metrics differ: %v vs %v", name, a.Metrics, b.Metrics)
	}
}

// TestFigureDeterministicAcrossWorkers runs a representative figure
// campaign serially and with an oversubscribed pool; the Result tables
// must be bit-identical (the ISSUE's acceptance criterion).
func TestFigureDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	serial := Fig7a(Options{Seed: 3, Trials: 4, Workers: 1})
	pooled := Fig7a(Options{Seed: 3, Trials: 4, Workers: 8})
	resultEqual(t, "fig7a", serial, pooled)
}

// TestAblationDeterministicAcrossWorkers does the same for an ablation.
func TestAblationDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	serial := AblationCFO(Options{Seed: 3, Trials: 3, Workers: 1})
	pooled := AblationCFO(Options{Seed: 3, Trials: 3, Workers: 8})
	resultEqual(t, "ablate-cfo", serial, pooled)
}

// TestLocalizationDeterministicAcrossWorkers covers the array-campaign
// path (per-trial redraw loops included).
func TestLocalizationDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	serial := Fig8b(Options{Seed: 3, Trials: 2, Workers: 1})
	pooled := Fig8b(Options{Seed: 3, Trials: 2, Workers: 8})
	resultEqual(t, "fig8b", serial, pooled)
}
