package exp

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"chronos/internal/obs"
)

// captureCampaign runs TrackLatency under a fresh obs state and returns
// the resulting counter totals and per-histogram counts.
func captureCampaign(t *testing.T, workers int) (map[string]int64, map[string]int64) {
	t.Helper()
	obs.Reset()
	obs.SetEnabled(true)
	r := TrackLatency(Options{Seed: 5, Trials: 2, Workers: workers})
	if len(r.Rows) == 0 {
		t.Fatal("campaign produced no rows")
	}
	s := obs.Capture()
	counts := make(map[string]int64, len(s.Hists))
	for name, h := range s.Hists {
		counts[name] = h.Count
	}
	return s.Counters, counts
}

// TestObsCountersWorkerInvariant is the campaign-level golden guard:
// counters count scheduling-independent events, so a campaign at
// Workers=1 and Workers=8 must accumulate identical totals — and every
// histogram must record the same number of observations (contents of
// the wall-clock histograms legitimately differ).
func TestObsCountersWorkerInvariant(t *testing.T) {
	defer func() { obs.SetEnabled(false); obs.Reset() }()
	c1, h1 := captureCampaign(t, 1)
	c8, h8 := captureCampaign(t, 8)
	if !reflect.DeepEqual(c1, c8) {
		t.Errorf("counter totals differ across worker counts:\nworkers=1: %v\nworkers=8: %v", c1, c8)
	}
	if !reflect.DeepEqual(h1, h8) {
		t.Errorf("histogram counts differ across worker counts:\nworkers=1: %v\nworkers=8: %v", h1, h8)
	}
	if c1["track.fixes"] == 0 || c1["ndft.solve.requests"] == 0 {
		t.Errorf("campaign recorded no pipeline activity: %v", c1)
	}
}

// TestWriteJSONEmbedsSnapshot pins the additive schema: without obs the
// output is the historical result array; with obs enabled the last
// element gains an "obs" object and every pre-existing field survives
// unchanged.
func TestWriteJSONEmbedsSnapshot(t *testing.T) {
	results := []*Result{{
		ID:     "fake",
		Title:  "fake campaign",
		Header: []string{"a"},
		Rows:   [][]string{{"1"}},
	}}

	obs.SetEnabled(false)
	var plain bytes.Buffer
	if err := WriteJSON(&plain, results); err != nil {
		t.Fatal(err)
	}

	obs.Reset()
	obs.SetEnabled(true)
	defer func() { obs.SetEnabled(false); obs.Reset() }()
	var withObs bytes.Buffer
	if err := WriteJSON(&withObs, results); err != nil {
		t.Fatal(err)
	}

	var plainArr, obsArr []map[string]json.RawMessage
	if err := json.Unmarshal(plain.Bytes(), &plainArr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(withObs.Bytes(), &obsArr); err != nil {
		t.Fatal(err)
	}
	if len(plainArr) != 1 || len(obsArr) != 1 {
		t.Fatalf("want 1 element, got %d and %d", len(plainArr), len(obsArr))
	}
	if _, ok := plainArr[0]["obs"]; ok {
		t.Error("obs key present with the layer disabled")
	}
	if _, ok := obsArr[0]["obs"]; !ok {
		t.Error("obs key missing with the layer enabled")
	}
	// Every historical field is byte-identical; "obs" is the only
	// addition.
	for k, v := range plainArr[0] {
		if string(obsArr[0][k]) != string(v) {
			t.Errorf("field %q changed: %s -> %s", k, v, obsArr[0][k])
		}
	}
	if len(obsArr[0]) != len(plainArr[0])+1 {
		t.Errorf("schema gained %d keys, want exactly 1 (obs)", len(obsArr[0])-len(plainArr[0]))
	}

	var decoded []struct {
		Obs *obs.Snapshot `json:"obs"`
	}
	if err := json.Unmarshal(withObs.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded[0].Obs == nil || decoded[0].Obs.Counters == nil {
		t.Error("embedded obs object did not decode as a snapshot")
	}
}
