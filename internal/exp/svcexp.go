package exp

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"chronos/internal/obs"
	"chronos/internal/sim"
	"chronos/internal/svc"
	"chronos/internal/tof"
	"chronos/internal/track"
)

// PerfService is the always-on daemon capacity/latency snapshot (the
// BENCH_8.json trajectory, toward the 100k-devices-per-box target): a
// chronos-svc instance on virtual time carrying a mixed fleet — a large
// population of statistical ranging sessions (the fleet-scale workload,
// as track.RunMulti's sensor mode) plus a cohort of full CSI→solve→
// Kalman pipeline sessions batching through the shared coalescer — all
// endless, so every device stays concurrently tracked through the
// measurement window. It reports sustained fix throughput, per-kind fix
// latency quantiles from the obs histograms, and graceful-drain time.
// Throughput and latency columns are wall-clock (host-dependent); the
// fleet accounting is exact.
func PerfService(o Options) *Result {
	// 8 shards is the architecture under test (the golden harness's
	// upper shard count), not a host property: on fewer cores the shard
	// goroutines timeshare, and the runtime's preemption keeps stat
	// shards advancing while full-pipeline shards sit in long solves.
	return perfService(o, 10000, 64, 8, 3*time.Second)
}

// PerfServiceScaled is the CI-sized PerfService: a fleet two orders
// smaller with a short measurement window, for bench-smoke lanes and
// -short regression runs. Same code path, same metrics.
func PerfServiceScaled(o Options) *Result {
	return perfService(o, 400, 8, 4, 300*time.Millisecond)
}

func perfService(o Options, statDevices, fullDevices, shards int, window time.Duration) *Result {
	o = o.withDefaults(1)
	if shards <= 0 {
		shards = runtime.NumCPU()
	}

	wasEnabled := obs.Enabled()
	obs.SetEnabled(true)
	obs.Reset()
	defer obs.SetEnabled(wasEnabled)

	rng := rand.New(rand.NewSource(o.Seed))
	office := sim.NewOffice(rand.New(rand.NewSource(o.Seed^0x5eed0ff1ce)), sim.OfficeConfig{})
	d := svc.NewDaemon(svc.Config{
		Shards:   shards,
		Office:   office,
		Virtual:  true,
		Coalesce: true,
	})

	// Attach the whole fleet endless (stat Fixes=0, full Sweeps<0): no
	// device retires on its own, so once the attach queue clears the
	// concurrent tracked-device count holds at the full fleet size for
	// the entire measurement window.
	for i := 0; i < fullDevices; i++ {
		err := d.Attach(uint64(1+i), svc.DeviceConfig{
			Seed: rng.Int63(),
			Session: track.SessionConfig{
				Speed: 1.0, Sweeps: -1,
				WarmStart: true, VelocityTranslate: true,
			},
			Estimator: tof.Config{Mode: tof.BandsFused, Quirk24: true, MaxIter: 1200},
		})
		if err != nil {
			panic(fmt.Sprintf("perf-service: full attach: %v", err))
		}
	}
	for i := 0; i < statDevices; i++ {
		err := d.Attach(uint64(1<<20+i), svc.DeviceConfig{
			Seed: rng.Int63(), Stat: true,
			FixPeriod: 84 * time.Millisecond, Speed: 1.0,
		})
		if err != nil {
			panic(fmt.Sprintf("perf-service: stat attach: %v", err))
		}
	}

	// Wait for the shards to work through the attach queue (full
	// sessions calibrate at attach, the expensive part), then measure a
	// steady-state window.
	fleet := statDevices + fullDevices
	for d.Sessions() < fleet || d.QueueDepth() > 0 {
		time.Sleep(time.Millisecond)
	}
	tracked := d.Sessions()
	before := obs.Capture()
	t0 := time.Now()
	time.Sleep(window)
	after := obs.Capture()
	elapsed := time.Since(t0).Seconds()

	drainStart := time.Now()
	snap, err := d.Drain(120 * time.Second)
	if err != nil {
		panic(fmt.Sprintf("perf-service: %v", err))
	}
	drainMs := float64(time.Since(drainStart)) / 1e6

	statFixes := after.Counters["svc.stat_fixes"] - before.Counters["svc.stat_fixes"]
	fullSweeps := after.Counters["svc.full_sweeps"] - before.Counters["svc.full_sweeps"]
	fires := after.Counters["svc.timer_fires"] - before.Counters["svc.timer_fires"]
	statHist := snap.Hists["svc.stat_fix_ns"]
	sweepHist := snap.Hists["svc.sweep_ns"]

	res := &Result{
		ID:    "perf-service",
		Title: "chronos-svc capacity: concurrent tracked devices, fix throughput, p99 fix latency",
		Header: []string{"fleet", "tracked", "shards", "fix/s", "sweep/s (full)",
			"stat p99 µs", "sweep p99 ms", "drain ms"},
	}
	res.Metrics = map[string]float64{
		"tracked_devices":  float64(tracked),
		"stat_devices":     float64(statDevices),
		"full_devices":     float64(fullDevices),
		"shards":           float64(shards),
		"window_s":         elapsed,
		"fix_rate_hz":      float64(statFixes+fullSweeps) / elapsed,
		"stat_fix_rate_hz": float64(statFixes) / elapsed,
		"sweep_rate_hz":    float64(fullSweeps) / elapsed,
		"timer_fires_hz":   float64(fires) / elapsed,
		"stat_fix_p50_us":  statHist.P50 / 1e3,
		"stat_fix_p99_us":  statHist.P99 / 1e3,
		"fix_p99_us":       statHist.P99 / 1e3,
		"sweep_p50_ms":     sweepHist.P50 / 1e6,
		"sweep_p99_ms":     sweepHist.P99 / 1e6,
		"drain_ms":         drainMs,
		"retired":          float64(len(d.Results())),
	}
	res.Rows = append(res.Rows, []string{
		fmt.Sprintf("%d stat + %d full", statDevices, fullDevices),
		fmt.Sprintf("%d", tracked),
		fmt.Sprintf("%d", shards),
		fmtF(res.Metrics["fix_rate_hz"], 0),
		fmtF(res.Metrics["sweep_rate_hz"], 1),
		fmtF(res.Metrics["stat_fix_p99_us"], 1),
		fmtF(res.Metrics["sweep_p99_ms"], 1),
		fmtF(drainMs, 1),
	})
	return res
}

// PerfPipeline is the staged-pipeline latency-isolation campaign (the
// BENCH_9.json trajectory): one latency-class drone-follow stream
// buried under a bulk-class full-pipeline swarm that saturates the
// solve capacity, measured twice on virtual time — undisaggregated
// (classic run-to-completion shard sweeps, where the stream waits its
// turn behind whole bulk sweeps on the shard goroutine) and through the
// staged pipeline with latency classes (the stream's solves jump the
// class queue and preempt in-flight bulk solves at gap-check
// boundaries). The figure of merit is the latency-class p99 inter-fix
// wall gap, which the staged run must hold strictly below the
// undisaggregated run's at the same offered load; per-stage queue
// depths and pool utilization ride along from a mid-window snapshot.
// Wall-clock columns, so explicit-only like the other perf campaigns.
func PerfPipeline(o Options) *Result {
	o = o.withDefaults(1)
	const (
		shards      = 2
		latDevices  = 2
		bulkDevices = 24
		settle      = 400 * time.Millisecond
		window      = 2500 * time.Millisecond
	)

	wasEnabled := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(wasEnabled)

	type modeOut struct {
		latP99, bulkP99, latP50, bulkP50 float64 // ms
		sweepRate                        float64
		preemptions, starveGrants        float64
		queueBulk, utilSolve             float64
	}
	run := func(pipeline bool) modeOut {
		obs.Reset()
		rng := rand.New(rand.NewSource(o.Seed))
		office := sim.NewOffice(rand.New(rand.NewSource(o.Seed^0x5eed0ff1ce)), sim.OfficeConfig{})
		d := svc.NewDaemon(svc.Config{
			Shards: shards, Office: office, Virtual: true, Coalesce: true,
			Pipeline: svc.PipelineConfig{
				Enabled: pipeline,
				// Solve capacity matches the undisaggregated run's shard
				// parallelism, so the comparison isolates scheduling: the
				// staged run wins by ordering and preemption, not by
				// throwing more solver goroutines at the same load.
				IngestWorkers: 1, SolveWorkers: shards, TrackWorkers: 1,
				Preempt: true,
			},
		})
		scfg := track.SessionConfig{
			Speed: 1.0, Sweeps: -1, WarmStart: true, VelocityTranslate: true,
		}
		ecfg := tof.Config{Mode: tof.BandsFused, Quirk24: true, MaxIter: 1200}
		for i := 0; i < latDevices; i++ {
			if err := d.Attach(uint64(1+i), svc.DeviceConfig{
				Seed: rng.Int63(), Class: svc.ClassLatency, Session: scfg, Estimator: ecfg,
			}); err != nil {
				panic(fmt.Sprintf("perf-pipeline: latency attach: %v", err))
			}
		}
		for i := 0; i < bulkDevices; i++ {
			if err := d.Attach(uint64(1<<16+i), svc.DeviceConfig{
				Seed: rng.Int63(), Class: svc.ClassBulk, Session: scfg, Estimator: ecfg,
			}); err != nil {
				panic(fmt.Sprintf("perf-pipeline: bulk attach: %v", err))
			}
		}
		for d.Sessions() < latDevices+bulkDevices || d.QueueDepth() > 0 {
			time.Sleep(time.Millisecond)
		}
		// Settle into steady state, then reset so the histograms hold
		// only the measurement window.
		time.Sleep(settle)
		obs.Reset()
		t0 := time.Now()
		time.Sleep(window)
		mid := obs.Capture()
		elapsed := time.Since(t0).Seconds()
		snap, err := d.Drain(120 * time.Second)
		if err != nil {
			panic(fmt.Sprintf("perf-pipeline: %v", err))
		}
		// Queue depth and utilization are meaningful only mid-run, so
		// they come from the in-window capture; the per-class gap
		// histograms come from the drain snapshot so sweeps still in
		// flight at window close (under starvation, most bulk sweeps)
		// flush into the quantiles instead of vanishing.
		lat := snap.Hists["svc.fix.latency_ns"]
		bulk := snap.Hists["svc.fix.bulk_ns"]
		return modeOut{
			latP99:       lat.P99 / 1e6,
			latP50:       lat.P50 / 1e6,
			bulkP99:      bulk.P99 / 1e6,
			bulkP50:      bulk.P50 / 1e6,
			sweepRate:    float64(mid.Counters["svc.full_sweeps"]) / elapsed,
			preemptions:  float64(mid.Counters["svc.preemptions"]),
			starveGrants: float64(mid.Counters["svc.starve_grants"]),
			queueBulk:    mid.Gauges["svc.pipe.queue.solve_bulk"],
			utilSolve:    mid.Gauges["svc.pipe.util.solve"],
		}
	}

	inline := run(false)
	staged := run(true)

	res := &Result{
		ID: "perf-pipeline",
		Title: "staged pipeline with latency classes: latency-class p99 fix gap under bulk saturation, " +
			"staged (class queue + preemption) vs undisaggregated shard sweeps",
		Header: []string{"mode", "lat p50 ms", "lat p99 ms", "bulk p50 ms", "bulk p99 ms",
			"sweep/s", "preempts", "q(bulk)", "util(solve)"},
	}
	row := func(name string, m modeOut) {
		res.Rows = append(res.Rows, []string{
			name,
			fmtF(m.latP50, 1), fmtF(m.latP99, 1),
			fmtF(m.bulkP50, 1), fmtF(m.bulkP99, 1),
			fmtF(m.sweepRate, 1),
			fmtF(m.preemptions, 0),
			fmtF(m.queueBulk, 0), fmtF(m.utilSolve, 2),
		})
	}
	row("undisaggregated", inline)
	row("staged+classes", staged)
	res.Metrics = map[string]float64{
		"shards":                float64(shards),
		"latency_devices":       latDevices,
		"bulk_devices":          bulkDevices,
		"window_s":              window.Seconds(),
		"inline_lat_p50_ms":     inline.latP50,
		"inline_lat_p99_ms":     inline.latP99,
		"inline_bulk_p99_ms":    inline.bulkP99,
		"inline_sweep_rate_hz":  inline.sweepRate,
		"staged_lat_p50_ms":     staged.latP50,
		"staged_lat_p99_ms":     staged.latP99,
		"staged_bulk_p99_ms":    staged.bulkP99,
		"staged_sweep_rate_hz":  staged.sweepRate,
		"staged_preemptions":    staged.preemptions,
		"staged_starve_grants":  staged.starveGrants,
		"staged_queue_bulk":     staged.queueBulk,
		"staged_util_solve":     staged.utilSolve,
		"lat_p99_speedup":       inline.latP99 / staged.latP99,
		"lat_p99_improved":      boolMetric(staged.latP99 < inline.latP99),
		"lat_under_bulk_staged": boolMetric(staged.latP99 < staged.bulkP99),
	}
	return res
}

// boolMetric renders a pass/fail assertion as a 0/1 metric column.
func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
