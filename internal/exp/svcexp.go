package exp

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"chronos/internal/obs"
	"chronos/internal/sim"
	"chronos/internal/svc"
	"chronos/internal/tof"
	"chronos/internal/track"
)

// PerfService is the always-on daemon capacity/latency snapshot (the
// BENCH_8.json trajectory, toward the 100k-devices-per-box target): a
// chronos-svc instance on virtual time carrying a mixed fleet — a large
// population of statistical ranging sessions (the fleet-scale workload,
// as track.RunMulti's sensor mode) plus a cohort of full CSI→solve→
// Kalman pipeline sessions batching through the shared coalescer — all
// endless, so every device stays concurrently tracked through the
// measurement window. It reports sustained fix throughput, per-kind fix
// latency quantiles from the obs histograms, and graceful-drain time.
// Throughput and latency columns are wall-clock (host-dependent); the
// fleet accounting is exact.
func PerfService(o Options) *Result {
	// 8 shards is the architecture under test (the golden harness's
	// upper shard count), not a host property: on fewer cores the shard
	// goroutines timeshare, and the runtime's preemption keeps stat
	// shards advancing while full-pipeline shards sit in long solves.
	return perfService(o, 10000, 64, 8, 3*time.Second)
}

// PerfServiceScaled is the CI-sized PerfService: a fleet two orders
// smaller with a short measurement window, for bench-smoke lanes and
// -short regression runs. Same code path, same metrics.
func PerfServiceScaled(o Options) *Result {
	return perfService(o, 400, 8, 4, 300*time.Millisecond)
}

func perfService(o Options, statDevices, fullDevices, shards int, window time.Duration) *Result {
	o = o.withDefaults(1)
	if shards <= 0 {
		shards = runtime.NumCPU()
	}

	wasEnabled := obs.Enabled()
	obs.SetEnabled(true)
	obs.Reset()
	defer obs.SetEnabled(wasEnabled)

	rng := rand.New(rand.NewSource(o.Seed))
	office := sim.NewOffice(rand.New(rand.NewSource(o.Seed^0x5eed0ff1ce)), sim.OfficeConfig{})
	d := svc.NewDaemon(svc.Config{
		Shards:   shards,
		Office:   office,
		Virtual:  true,
		Coalesce: true,
	})

	// Attach the whole fleet endless (stat Fixes=0, full Sweeps<0): no
	// device retires on its own, so once the attach queue clears the
	// concurrent tracked-device count holds at the full fleet size for
	// the entire measurement window.
	for i := 0; i < fullDevices; i++ {
		err := d.Attach(uint64(1+i), svc.DeviceConfig{
			Seed: rng.Int63(),
			Session: track.SessionConfig{
				Speed: 1.0, Sweeps: -1,
				WarmStart: true, VelocityTranslate: true,
			},
			Estimator: tof.Config{Mode: tof.BandsFused, Quirk24: true, MaxIter: 1200},
		})
		if err != nil {
			panic(fmt.Sprintf("perf-service: full attach: %v", err))
		}
	}
	for i := 0; i < statDevices; i++ {
		err := d.Attach(uint64(1<<20+i), svc.DeviceConfig{
			Seed: rng.Int63(), Stat: true,
			FixPeriod: 84 * time.Millisecond, Speed: 1.0,
		})
		if err != nil {
			panic(fmt.Sprintf("perf-service: stat attach: %v", err))
		}
	}

	// Wait for the shards to work through the attach queue (full
	// sessions calibrate at attach, the expensive part), then measure a
	// steady-state window.
	fleet := statDevices + fullDevices
	for d.Sessions() < fleet || d.QueueDepth() > 0 {
		time.Sleep(time.Millisecond)
	}
	tracked := d.Sessions()
	before := obs.Capture()
	t0 := time.Now()
	time.Sleep(window)
	after := obs.Capture()
	elapsed := time.Since(t0).Seconds()

	drainStart := time.Now()
	snap, err := d.Drain(120 * time.Second)
	if err != nil {
		panic(fmt.Sprintf("perf-service: %v", err))
	}
	drainMs := float64(time.Since(drainStart)) / 1e6

	statFixes := after.Counters["svc.stat_fixes"] - before.Counters["svc.stat_fixes"]
	fullSweeps := after.Counters["svc.full_sweeps"] - before.Counters["svc.full_sweeps"]
	fires := after.Counters["svc.timer_fires"] - before.Counters["svc.timer_fires"]
	statHist := snap.Hists["svc.stat_fix_ns"]
	sweepHist := snap.Hists["svc.sweep_ns"]

	res := &Result{
		ID:    "perf-service",
		Title: "chronos-svc capacity: concurrent tracked devices, fix throughput, p99 fix latency",
		Header: []string{"fleet", "tracked", "shards", "fix/s", "sweep/s (full)",
			"stat p99 µs", "sweep p99 ms", "drain ms"},
	}
	res.Metrics = map[string]float64{
		"tracked_devices":  float64(tracked),
		"stat_devices":     float64(statDevices),
		"full_devices":     float64(fullDevices),
		"shards":           float64(shards),
		"window_s":         elapsed,
		"fix_rate_hz":      float64(statFixes+fullSweeps) / elapsed,
		"stat_fix_rate_hz": float64(statFixes) / elapsed,
		"sweep_rate_hz":    float64(fullSweeps) / elapsed,
		"timer_fires_hz":   float64(fires) / elapsed,
		"stat_fix_p50_us":  statHist.P50 / 1e3,
		"stat_fix_p99_us":  statHist.P99 / 1e3,
		"fix_p99_us":       statHist.P99 / 1e3,
		"sweep_p50_ms":     sweepHist.P50 / 1e6,
		"sweep_p99_ms":     sweepHist.P99 / 1e6,
		"drain_ms":         drainMs,
		"retired":          float64(len(d.Results())),
	}
	res.Rows = append(res.Rows, []string{
		fmt.Sprintf("%d stat + %d full", statDevices, fullDevices),
		fmt.Sprintf("%d", tracked),
		fmt.Sprintf("%d", shards),
		fmtF(res.Metrics["fix_rate_hz"], 0),
		fmtF(res.Metrics["sweep_rate_hz"], 1),
		fmtF(res.Metrics["stat_fix_p99_us"], 1),
		fmtF(res.Metrics["sweep_p99_ms"], 1),
		fmtF(drainMs, 1),
	})
	return res
}
