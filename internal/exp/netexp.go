package exp

import (
	"fmt"
	"math/rand"
	"time"

	"chronos/internal/hop"
	"chronos/internal/netsim"
	"chronos/internal/stats"
	"chronos/internal/wifi"
)

// Fig9a reproduces the band-sweep duration CDF (paper: median 84 ms over
// 35 bands on the Intel 5300).
func Fig9a(o Options) *Result {
	o = o.withDefaults(30)
	ms := runTrials(o, "fig9a", o.Trials, func(t int, rng *rand.Rand) (float64, bool) {
		return hop.Sweep(rng, wifi.USBands(), hop.Config{}).Duration.Seconds() * 1000, true
	})
	res := &Result{
		ID:     "fig9a",
		Title:  "Channel-hop sweep time over all 35 Wi-Fi bands",
		Header: []string{"percentile", "sweep time (ms)"},
	}
	for _, p := range []float64{10, 25, 50, 75, 90, 99} {
		res.Rows = append(res.Rows, []string{fmtF(p, 0), fmtF(stats.Percentile(ms, p), 1)})
	}
	res.Metrics = map[string]float64{
		"median_ms": stats.Median(ms),
		"p99_ms":    stats.Percentile(ms, 99),
	}
	return res
}

// Fig9b reproduces the video-streaming trace: a localization sweep at
// t = 6 s pauses the download but the playout buffer prevents any stall.
func Fig9b(o Options) *Result {
	o = o.withDefaults(1)
	sweep := hop.Sweep(trialRNG(o, "fig9b", 0), wifi.USBands(), hop.Config{})
	outage := netsim.Outage{Start: 6 * time.Second, Duration: sweep.Duration}
	tr := netsim.Video(netsim.VideoConfig{}, 12*time.Second, []netsim.Outage{outage})

	res := &Result{
		ID:     "fig9b",
		Title:  fmt.Sprintf("Video stream around a %.0f ms localization sweep at t=6 s", sweep.Duration.Seconds()*1000),
		Header: []string{"t (s)", "downloaded (KB)", "played (KB)", "buffer (KB)"},
	}
	for _, at := range []time.Duration{2 * time.Second, 4 * time.Second, 5900 * time.Millisecond,
		6050 * time.Millisecond, 6200 * time.Millisecond, 8 * time.Second, 11 * time.Second} {
		i := indexAt(tr.Downloaded, at)
		d, p := tr.Downloaded[i].Value, tr.Played[i].Value
		res.Rows = append(res.Rows, []string{
			fmtF(at.Seconds(), 2), fmtF(d/1e3, 0), fmtF(p/1e3, 0), fmtF((d-p)/1e3, 0),
		})
	}
	res.Rows = append(res.Rows, []string{"stalls", fmt.Sprintf("%d", tr.Stalls), "", ""})
	res.Metrics = map[string]float64{
		"stalls":       float64(tr.Stalls),
		"sweep_ms":     sweep.Duration.Seconds() * 1000,
		"stall_time_s": tr.StallTime.Seconds(),
	}
	return res
}

func indexAt(samples []netsim.Sample, at time.Duration) int {
	for i, s := range samples {
		if s.At >= at {
			return i
		}
	}
	return len(samples) - 1
}

// Fig9c reproduces the TCP-throughput trace: the sweep at t = 6 s dips
// 1 s-window throughput by a few percent (paper: ≈6.5%).
func Fig9c(o Options) *Result {
	o = o.withDefaults(1)
	rng := trialRNG(o, "fig9c", 0)
	sweep := hop.Sweep(rng, wifi.USBands(), hop.Config{})
	outage := netsim.Outage{Start: 6 * time.Second, Duration: sweep.Duration}
	samples := netsim.TCPTrace(rng, netsim.TCPConfig{}, 15*time.Second, time.Second, []netsim.Outage{outage})

	res := &Result{
		ID:     "fig9c",
		Title:  fmt.Sprintf("TCP throughput around a %.0f ms localization sweep at t=6 s", sweep.Duration.Seconds()*1000),
		Header: []string{"t (s)", "throughput (Mbit/s)"},
	}
	for _, s := range samples {
		res.Rows = append(res.Rows, []string{fmtF(s.At.Seconds(), 0), fmtF(s.Value/1e6, 2)})
	}
	dip := netsim.ThroughputDipPercent(samples, outage)
	res.Rows = append(res.Rows, []string{"dip at outage", fmtF(dip, 1) + "%"})
	res.Metrics = map[string]float64{
		"dip_percent": dip,
		"sweep_ms":    sweep.Duration.Seconds() * 1000,
	}
	return res
}
