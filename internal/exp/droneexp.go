package exp

import (
	"fmt"
	"math/rand"

	"chronos/internal/drone"
	"chronos/internal/stats"
)

// Fig10a reproduces the drone distance-keeping CDF: deviation from the
// desired 1.4 m while following a walking user (paper: median ≈4.2 cm).
func Fig10a(o Options) *Result {
	o = o.withDefaults(10)

	runs := runTrials(o, "fig10a", o.Trials, func(t int, rng *rand.Rand) ([]float64, bool) {
		res := drone.Track(rng, drone.StatSensor{}, drone.TrackConfig{Duration: 40})
		return res.Deviations, true
	})
	var all []float64
	for _, devs := range runs {
		all = append(all, devs...)
	}
	cm := make([]float64, len(all))
	for i, d := range all {
		cm[i] = d * 100
	}
	res := &Result{
		ID:     "fig10a",
		Title:  "Drone deviation from the desired 1.4 m distance",
		Header: []string{"percentile", "deviation (cm)"},
	}
	for _, p := range []float64{25, 50, 75, 90, 95} {
		res.Rows = append(res.Rows, []string{fmtF(p, 0), fmtF(stats.Percentile(cm, p), 1)})
	}
	res.Metrics = map[string]float64{
		"median_cm": stats.Median(cm),
		"p95_cm":    stats.Percentile(cm, 95),
		"rmse_cm":   stats.RMSE(cm),
	}
	return res
}

// Fig10b reproduces the trajectory trace: the drone's path alongside the
// user's, holding the pairwise distance.
func Fig10b(o Options) *Result {
	o = o.withDefaults(1)
	tr := drone.Track(trialRNG(o, "fig10b", 0), drone.StatSensor{}, drone.TrackConfig{Duration: 30})

	res := &Result{
		ID:     "fig10b",
		Title:  "Drone and user trajectories (sampled)",
		Header: []string{"t (s)", "user (x,y)", "drone (x,y)", "distance (m)"},
	}
	rate := 12.0
	for i := 0; i < len(tr.UserPath); i += int(rate * 2) { // every 2 s
		u, d := tr.UserPath[i], tr.DronePath[i]
		res.Rows = append(res.Rows, []string{
			fmtF(float64(i)/rate, 0), u.String(), d.String(), fmtF(u.Dist(d), 2),
		})
	}
	// Steady-state distance statistics over the trajectory.
	var dist []float64
	for i := range tr.UserPath {
		if float64(i)/rate >= 3 {
			dist = append(dist, tr.UserPath[i].Dist(tr.DronePath[i]))
		}
	}
	res.Metrics = map[string]float64{
		"mean_distance_m":   stats.Mean(dist),
		"median_distance_m": stats.Median(dist),
		"target_m":          1.4,
	}
	res.Rows = append(res.Rows, []string{"steady mean", "", "", fmtF(stats.Mean(dist), 2)})
	return res
}

// fig10Check is exposed for tests: the steady-state mean pairwise
// distance must sit near the 1.4 m target.
func fig10Check(o Options) (mean float64) {
	r := Fig10b(o)
	return r.Metrics["mean_distance_m"]
}

var _ = fmt.Sprintf // keep fmt referenced even if rows change
