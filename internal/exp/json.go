package exp

import (
	"encoding/json"
	"io"
)

// WriteJSON renders campaign results as an indented JSON array so the
// tables the binaries print are also machine-readable (the BENCH_*.json
// trajectory). The encoding is the Result struct verbatim: id, title,
// header, rows, the headline metrics map, and — for campaigns that
// track solver convergence — the cap_rate field distinguishing
// iteration-capped solves from converged ones.
func WriteJSON(w io.Writer, results []*Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
