package exp

import (
	"encoding/json"
	"io"

	"chronos/internal/obs"
)

// jsonResult decorates one Result with an optional observability
// snapshot. Embedding keeps the existing BENCH fields byte-for-byte
// unchanged (the wrapper promotes them at the same JSON keys); the
// "obs" object is additive and appears only on the element that
// carries the snapshot.
type jsonResult struct {
	*Result
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// WriteJSON renders campaign results as an indented JSON array so the
// tables the binaries print are also machine-readable (the BENCH_*.json
// trajectory). The encoding is the Result struct verbatim: id, title,
// header, rows, the headline metrics map, and — for campaigns that
// track solver convergence — the cap_rate field distinguishing
// iteration-capped solves from converged ones. When the observability
// layer is enabled (obs.SetEnabled), the last element additionally
// carries the process-wide obs.Snapshot — counters, gauges, and stage
// latency histograms accumulated across every campaign in the run —
// under an "obs" key; the schema change is purely additive.
func WriteJSON(w io.Writer, results []*Result) error {
	out := make([]jsonResult, len(results))
	for i, r := range results {
		out[i] = jsonResult{Result: r}
	}
	if obs.Enabled() && len(out) > 0 {
		out[len(out)-1].Obs = obs.Capture()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
