// Package rf models the over-the-air physics Chronos inverts: geometric
// multipath propagation, attenuation, thermal noise, and the oscillator
// impairments (carrier frequency offset, hardware phase constants) that
// §7 of the paper cancels with forward×reverse CSI multiplication.
//
// The model is deliberately the same equation family the estimator
// assumes — h(f) = Σₖ aₖ·e^{−j2πfτₖ} — because that equation *is* the
// physics: each propagation path delays the passband signal by τₖ and
// scales it by aₖ. Generating CSI from path geometry therefore exercises
// exactly the code path a hardware CSI trace would.
package rf

import (
	"math"
	"math/rand"
	"sort"
)

// Path is a single propagation path between transmitter and receiver.
type Path struct {
	Delay float64 // propagation delay in seconds (τₖ)
	Gain  float64 // linear amplitude (aₖ), incorporating path loss and reflection losses
}

// Channel is a multipath wireless channel: a sparse sum of delayed,
// attenuated copies of the signal.
type Channel struct {
	Paths []Path
}

// NewChannel returns a channel over the given paths sorted by delay (the
// direct path first). The input slice is copied.
func NewChannel(paths []Path) *Channel {
	ps := append([]Path(nil), paths...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Delay < ps[j].Delay })
	return &Channel{Paths: ps}
}

// Response returns the complex frequency response h(f) = Σ aₖ·e^{−j2πfτₖ}.
func (c *Channel) Response(freq float64) complex128 {
	var h complex128
	for _, p := range c.Paths {
		phase := -2 * math.Pi * freq * p.Delay
		h += complex(p.Gain*math.Cos(phase), p.Gain*math.Sin(phase))
	}
	return h
}

// DirectDelay returns the smallest path delay — the true time of flight —
// or 0 for an empty channel.
func (c *Channel) DirectDelay() float64 {
	if len(c.Paths) == 0 {
		return 0
	}
	return c.Paths[0].Delay
}

// TotalPower returns Σ aₖ².
func (c *Channel) TotalPower() float64 {
	var p float64
	for _, path := range c.Paths {
		p += path.Gain * path.Gain
	}
	return p
}

// FreeSpaceGain returns the linear amplitude gain of free-space
// propagation over distance d meters at frequency f, per the Friis
// equation amplitude λ/(4πd). Distances below 10 cm are clamped to keep
// gains finite when devices nearly touch.
func FreeSpaceGain(d, f float64) float64 {
	if d < 0.1 {
		d = 0.1
	}
	lambda := 299792458.0 / f
	return lambda / (4 * math.Pi * d)
}

// AWGN adds circularly symmetric complex Gaussian noise with the given
// standard deviation per I/Q component to h.
func AWGN(rng *rand.Rand, h complex128, sigma float64) complex128 {
	return h + complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
}

// NoiseSigmaForSNR returns the per-component noise standard deviation that
// yields the requested SNR (in dB) for a signal of the given RMS
// amplitude. SNR is defined as signalPower / (2σ²) since noise power is
// split across I and Q.
func NoiseSigmaForSNR(signalRMS, snrDB float64) float64 {
	snr := math.Pow(10, snrDB/10)
	if snr <= 0 {
		return 0
	}
	noisePower := signalRMS * signalRMS / snr
	return math.Sqrt(noisePower / 2)
}

// Oscillator models one radio's local oscillator: a part-per-million
// frequency error plus a fixed hardware phase (the per-device component of
// the reciprocity constant κ in §7).
type Oscillator struct {
	PPM       float64 // carrier frequency error in parts per million
	HWPhase   float64 // constant phase from the TX/RX chain, radians
	HWDelayNs float64 // constant group delay through the chain, nanoseconds
}

// NewOscillator draws a random oscillator with ppm error in ±maxPPM and a
// uniform hardware phase, modelling manufacturing spread.
func NewOscillator(rng *rand.Rand, maxPPM float64) Oscillator {
	return Oscillator{
		PPM:     (rng.Float64()*2 - 1) * maxPPM,
		HWPhase: rng.Float64() * 2 * math.Pi,
		// A couple of nanoseconds of chain delay, constant per device;
		// §7 notes it is pre-calibrated once, so keep it small but nonzero.
		HWDelayNs: rng.Float64() * 3,
	}
}

// CarrierFreq returns the oscillator's actual carrier for a nominal
// frequency: nominal · (1 + ppm·1e−6).
func (o Oscillator) CarrierFreq(nominal float64) float64 {
	return nominal * (1 + o.PPM*1e-6)
}

// CFOPhase returns the phase error accumulated at time t (seconds) when
// this oscillator downconverts a signal upconverted by tx at the same
// nominal carrier: 2π·(f_tx − f_rx)·t, as in Eq. 11 of the paper.
func CFOPhase(tx, rx Oscillator, nominal, t float64) float64 {
	return 2 * math.Pi * (tx.CarrierFreq(nominal) - rx.CarrierFreq(nominal)) * t
}
