package rf

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChannelResponseSinglePath(t *testing.T) {
	ch := NewChannel([]Path{{Delay: 2e-9, Gain: 0.5}})
	f := 5.18e9
	h := ch.Response(f)
	if math.Abs(cmplx.Abs(h)-0.5) > 1e-12 {
		t.Errorf("|h| = %v, want 0.5", cmplx.Abs(h))
	}
	wantPhase := math.Mod(-2*math.Pi*f*2e-9, 2*math.Pi)
	for wantPhase <= -math.Pi {
		wantPhase += 2 * math.Pi
	}
	for wantPhase > math.Pi {
		wantPhase -= 2 * math.Pi
	}
	if math.Abs(cmplx.Phase(h)-wantPhase) > 1e-6 {
		t.Errorf("phase = %v, want %v", cmplx.Phase(h), wantPhase)
	}
}

func TestChannelSortsPathsByDelay(t *testing.T) {
	ch := NewChannel([]Path{
		{Delay: 16e-9, Gain: 0.2},
		{Delay: 5.2e-9, Gain: 1},
		{Delay: 10e-9, Gain: 0.5},
	})
	if ch.DirectDelay() != 5.2e-9 {
		t.Errorf("DirectDelay = %v", ch.DirectDelay())
	}
	for i := 1; i < len(ch.Paths); i++ {
		if ch.Paths[i].Delay < ch.Paths[i-1].Delay {
			t.Error("paths not sorted")
		}
	}
}

func TestChannelResponseLinearity(t *testing.T) {
	// Response of a multi-path channel equals the sum of single-path
	// responses.
	paths := []Path{{Delay: 3e-9, Gain: 0.8}, {Delay: 7e-9, Gain: 0.3}}
	sum := NewChannel(paths[:1]).Response(2.4e9) + NewChannel(paths[1:]).Response(2.4e9)
	got := NewChannel(paths).Response(2.4e9)
	if cmplx.Abs(got-sum) > 1e-12 {
		t.Errorf("linearity violated: %v vs %v", got, sum)
	}
}

func TestDirectDelayEmpty(t *testing.T) {
	if got := NewChannel(nil).DirectDelay(); got != 0 {
		t.Errorf("empty DirectDelay = %v", got)
	}
}

func TestTotalPower(t *testing.T) {
	ch := NewChannel([]Path{{Delay: 1e-9, Gain: 3}, {Delay: 2e-9, Gain: 4}})
	if got := ch.TotalPower(); got != 25 {
		t.Errorf("TotalPower = %v", got)
	}
}

func TestFreeSpaceGainDecreasesWithDistance(t *testing.T) {
	f := 5.18e9
	prev := math.Inf(1)
	for d := 0.5; d < 30; d += 0.5 {
		g := FreeSpaceGain(d, f)
		if g >= prev {
			t.Fatalf("gain not decreasing at d=%v", d)
		}
		prev = g
	}
}

func TestFreeSpaceGainClampsNearZero(t *testing.T) {
	if g0, g1 := FreeSpaceGain(0, 5e9), FreeSpaceGain(0.05, 5e9); g0 != g1 {
		t.Error("clamp below 10 cm not applied")
	}
	if math.IsInf(FreeSpaceGain(0, 5e9), 0) {
		t.Error("gain is infinite at d=0")
	}
}

func TestFreeSpaceGainInverseLaw(t *testing.T) {
	f := func(d float64) bool {
		d = 1 + math.Abs(math.Mod(d, 50))
		g1 := FreeSpaceGain(d, 5e9)
		g2 := FreeSpaceGain(2*d, 5e9)
		return math.Abs(g1/g2-2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAWGNStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sigma := 0.1
	n := 20000
	var sumRe, sumIm, sumSq float64
	for i := 0; i < n; i++ {
		noisy := AWGN(rng, 0, sigma)
		sumRe += real(noisy)
		sumIm += imag(noisy)
		sumSq += real(noisy)*real(noisy) + imag(noisy)*imag(noisy)
	}
	if math.Abs(sumRe/float64(n)) > 0.005 || math.Abs(sumIm/float64(n)) > 0.005 {
		t.Errorf("noise mean not ~0: %v %v", sumRe/float64(n), sumIm/float64(n))
	}
	wantPower := 2 * sigma * sigma
	if got := sumSq / float64(n); math.Abs(got-wantPower) > 0.001 {
		t.Errorf("noise power = %v, want %v", got, wantPower)
	}
}

func TestNoiseSigmaForSNR(t *testing.T) {
	// At 20 dB SNR with unit signal, noise power should be 0.01.
	sigma := NoiseSigmaForSNR(1, 20)
	if got := 2 * sigma * sigma; math.Abs(got-0.01) > 1e-12 {
		t.Errorf("noise power = %v, want 0.01", got)
	}
	if got := NoiseSigmaForSNR(1, math.Inf(1)); got != 0 {
		t.Errorf("infinite SNR sigma = %v", got)
	}
}

func TestOscillatorCarrier(t *testing.T) {
	o := Oscillator{PPM: 10}
	f := o.CarrierFreq(2.4e9)
	if math.Abs(f-2.4e9*(1+1e-5)) > 1 {
		t.Errorf("carrier = %v", f)
	}
}

func TestCFOPhaseAntisymmetric(t *testing.T) {
	// §7: the offset at the transmitter is the negative of the offset at
	// the receiver — the property that CSI multiplication exploits.
	rng := rand.New(rand.NewSource(2))
	a := NewOscillator(rng, 20)
	b := NewOscillator(rng, 20)
	for _, tm := range []float64{1e-6, 5e-3, 1.7} {
		fwd := CFOPhase(a, b, 5.18e9, tm)
		rev := CFOPhase(b, a, 5.18e9, tm)
		if math.Abs(fwd+rev) > 1e-9*math.Abs(fwd) {
			t.Errorf("t=%v: fwd %v + rev %v != 0", tm, fwd, rev)
		}
	}
}

func TestNewOscillatorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		o := NewOscillator(rng, 20)
		if math.Abs(o.PPM) > 20 {
			t.Errorf("PPM %v out of bounds", o.PPM)
		}
		if o.HWPhase < 0 || o.HWPhase >= 2*math.Pi {
			t.Errorf("HWPhase %v out of range", o.HWPhase)
		}
		if o.HWDelayNs < 0 || o.HWDelayNs > 3 {
			t.Errorf("HWDelayNs %v out of range", o.HWDelayNs)
		}
	}
}
