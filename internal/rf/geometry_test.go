package rf

import (
	"math"
	"math/rand"
	"testing"
)

func TestPointDist(t *testing.T) {
	if got := (Point2{0, 0}).Dist(Point2{3, 4}); got != 5 {
		t.Errorf("Dist = %v", got)
	}
}

func TestRectangle(t *testing.T) {
	walls := Rectangle(0, 0, 20, 20, 0.6)
	if len(walls) != 4 {
		t.Fatalf("walls = %d", len(walls))
	}
	for _, w := range walls {
		if w.Loss != 0.6 {
			t.Errorf("loss = %v", w.Loss)
		}
	}
}

func TestMirror(t *testing.T) {
	// Mirror across the x-axis wall.
	w := Wall{A: Point2{0, 0}, B: Point2{10, 0}}
	got := w.mirror(Point2{3, 4})
	if math.Abs(got.X-3) > 1e-12 || math.Abs(got.Y+4) > 1e-12 {
		t.Errorf("mirror = %+v", got)
	}
	// Degenerate wall returns the point unchanged.
	deg := Wall{A: Point2{1, 1}, B: Point2{1, 1}}
	if got := deg.mirror(Point2{5, 5}); got != (Point2{5, 5}) {
		t.Errorf("degenerate mirror = %+v", got)
	}
}

func TestReflectionPointSymmetricCase(t *testing.T) {
	// TX and RX symmetric about x=5; floor wall along y=0. The specular
	// point must be at (5, 0) and satisfy the equal-angle law.
	w := Wall{A: Point2{0, 0}, B: Point2{10, 0}, Loss: 0.5}
	pt, ok := w.reflectionPoint(Point2{2, 3}, Point2{8, 3})
	if !ok {
		t.Fatal("no reflection point")
	}
	if math.Abs(pt.X-5) > 1e-9 || math.Abs(pt.Y) > 1e-9 {
		t.Errorf("reflection at %+v, want (5,0)", pt)
	}
}

func TestReflectionPointOffSegment(t *testing.T) {
	// Wall too short: specular point at x=5 is outside [0,1].
	w := Wall{A: Point2{0, 0}, B: Point2{1, 0}}
	if _, ok := w.reflectionPoint(Point2{2, 3}, Point2{8, 3}); ok {
		t.Error("reflection reported for point off segment")
	}
}

func TestGenerateChannelDirectPathDelay(t *testing.T) {
	env := &Environment{Walls: Rectangle(0, 0, 20, 20, 0.5)}
	tx, rx := Point2{5, 5}, Point2{11, 5}
	ch := GenerateChannel(env, tx, rx, PropagationOptions{Freq: 5.18e9})
	wantDelay := 6.0 / 299792458.0
	if math.Abs(ch.DirectDelay()-wantDelay) > 1e-15 {
		t.Errorf("direct delay = %v, want %v", ch.DirectDelay(), wantDelay)
	}
	if len(ch.Paths) < 2 {
		t.Errorf("expected wall reflections, got %d paths", len(ch.Paths))
	}
}

func TestGenerateChannelDirectIsStrongest(t *testing.T) {
	env := &Environment{Walls: Rectangle(0, 0, 20, 20, 0.5)}
	ch := GenerateChannel(env, Point2{5, 10}, Point2{15, 10}, PropagationOptions{Freq: 5.18e9})
	direct := ch.Paths[0].Gain
	for _, p := range ch.Paths[1:] {
		if p.Gain > direct {
			t.Errorf("reflection gain %v exceeds direct %v in LOS", p.Gain, direct)
		}
	}
}

func TestGenerateChannelNLOSAttenuation(t *testing.T) {
	env := &Environment{Walls: Rectangle(0, 0, 20, 20, 0.5), NLOSAttenDB: 12}
	tx, rx := Point2{5, 5}, Point2{15, 15}
	los := GenerateChannel(env, tx, rx, PropagationOptions{Freq: 5.18e9})
	nlos := GenerateChannel(env, tx, rx, PropagationOptions{Freq: 5.18e9, NLOS: true})
	ratio := los.Paths[0].Gain / nlos.Paths[0].Gain
	want := math.Pow(10, 12.0/20)
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("NLOS attenuation ratio = %v, want %v", ratio, want)
	}
	// Direct delay unchanged (same geometry).
	if los.DirectDelay() != nlos.DirectDelay() {
		t.Error("NLOS changed the direct delay")
	}
}

func TestGenerateChannelScatterers(t *testing.T) {
	env := &Environment{Scatterers: []Point2{{10, 8}}}
	tx, rx := Point2{5, 5}, Point2{15, 5}
	ch := GenerateChannel(env, tx, rx, PropagationOptions{Freq: 5.18e9})
	if len(ch.Paths) != 2 {
		t.Fatalf("paths = %d, want direct + scatterer", len(ch.Paths))
	}
	scatterLen := tx.Dist(Point2{10, 8}) + (Point2{10, 8}).Dist(rx)
	if math.Abs(ch.Paths[1].Delay-scatterLen/299792458.0) > 1e-15 {
		t.Errorf("scatter delay = %v", ch.Paths[1].Delay)
	}
	if ch.Paths[1].Gain >= ch.Paths[0].Gain {
		t.Error("scatterer outshines the direct path")
	}
}

func TestGenerateChannelExcessDelayCap(t *testing.T) {
	// A strong specular wall far away produces a path 30+ ns late; the
	// default 25 ns excess-delay cap must drop it.
	env := &Environment{Walls: []Wall{{A: Point2{-10, -5}, B: Point2{20, -5}, Loss: 0.9}}}
	tx, rx := Point2{0, 0}, Point2{2, 0}
	ch := GenerateChannel(env, tx, rx, PropagationOptions{Freq: 5.18e9, MinGain: 0.0001})
	for _, p := range ch.Paths[1:] {
		if p.Delay-ch.Paths[0].Delay > 25e-9 {
			t.Errorf("late path at excess %.1f ns survived", (p.Delay-ch.Paths[0].Delay)*1e9)
		}
	}
	// With a generous cap the wall bounce (path ≈ 10.2 m vs 2 m direct,
	// excess ≈ 27 ns) must reappear.
	ch2 := GenerateChannel(env, tx, rx, PropagationOptions{Freq: 5.18e9, MinGain: 0.0001, MaxExcessDelay: 100e-9})
	if len(ch2.Paths) <= len(ch.Paths) {
		t.Errorf("raising MaxExcessDelay did not admit the late path (%d vs %d)", len(ch2.Paths), len(ch.Paths))
	}
}

func TestGenerateChannelMaxPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	env := &Environment{
		Walls:      Rectangle(0, 0, 20, 20, 0.9),
		Scatterers: RandomScatterers(rng, 30, 0, 0, 20, 20),
	}
	ch := GenerateChannel(env, Point2{3, 3}, Point2{17, 17}, PropagationOptions{Freq: 5.18e9, MaxPaths: 5, MinGain: 0.0001})
	if len(ch.Paths) > 5 {
		t.Errorf("paths = %d, want ≤ 5", len(ch.Paths))
	}
}

func TestGenerateChannelPruneWeak(t *testing.T) {
	env := &Environment{Scatterers: []Point2{{1000, 1000}}} // extremely long detour
	ch := GenerateChannel(env, Point2{0, 0}, Point2{1, 0}, PropagationOptions{Freq: 5.18e9, MinGain: 0.01})
	if len(ch.Paths) != 1 {
		t.Errorf("weak scatterer not pruned: %d paths", len(ch.Paths))
	}
}

func TestRandomScatterersInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := RandomScatterers(rng, 100, 2, 3, 18, 19)
	if len(pts) != 100 {
		t.Fatalf("n = %d", len(pts))
	}
	for _, p := range pts {
		if p.X < 2 || p.X > 18 || p.Y < 3 || p.Y > 19 {
			t.Errorf("scatterer %+v out of bounds", p)
		}
	}
}
