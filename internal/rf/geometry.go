package rf

import (
	"math"
	"math/rand"
)

// Point2 is a 2D position in meters. It lives here (rather than in geo) so
// the propagation model has no dependency on the localization layer.
type Point2 struct{ X, Y float64 }

// Dist returns the Euclidean distance between two points.
func (p Point2) Dist(q Point2) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Wall is a reflective line segment (a wall face, metal cabinet side,
// etc.) used by the image method to generate first-order reflections.
type Wall struct {
	A, B Point2  // segment endpoints
	Loss float64 // linear amplitude loss factor on reflection, in (0, 1]
}

// Environment is a 2D floor plan: reflective walls plus optional point
// scatterers that re-radiate toward the receiver.
type Environment struct {
	Walls      []Wall
	Scatterers []Point2
	// ScattererLoss is the amplitude loss applied to scattered paths
	// (default 0.3 if zero).
	ScattererLoss float64
	// NLOSAttenDB is additional direct-path attenuation (dB) applied when
	// a scenario marks the link as non-line-of-sight.
	NLOSAttenDB float64
}

// Rectangle builds four walls enclosing [x0,x1]×[y0,y1] with the given
// reflection loss.
func Rectangle(x0, y0, x1, y1, loss float64) []Wall {
	return []Wall{
		{A: Point2{x0, y0}, B: Point2{x1, y0}, Loss: loss},
		{A: Point2{x1, y0}, B: Point2{x1, y1}, Loss: loss},
		{A: Point2{x1, y1}, B: Point2{x0, y1}, Loss: loss},
		{A: Point2{x0, y1}, B: Point2{x0, y0}, Loss: loss},
	}
}

// mirror reflects point p across the infinite line through the wall.
func (w Wall) mirror(p Point2) Point2 {
	dx, dy := w.B.X-w.A.X, w.B.Y-w.A.Y
	len2 := dx*dx + dy*dy
	if len2 == 0 {
		return p
	}
	// Project p-A onto the wall direction.
	t := ((p.X-w.A.X)*dx + (p.Y-w.A.Y)*dy) / len2
	foot := Point2{w.A.X + t*dx, w.A.Y + t*dy}
	return Point2{2*foot.X - p.X, 2*foot.Y - p.Y}
}

// reflectionPoint returns the point where the TX→RX reflection hits the
// wall segment, and whether that point lies within the segment.
func (w Wall) reflectionPoint(tx, rx Point2) (Point2, bool) {
	img := w.mirror(tx)
	// Intersect segment img→rx with segment A→B.
	return segIntersect(img, rx, w.A, w.B)
}

// segIntersect intersects segment p1→p2 with segment p3→p4.
func segIntersect(p1, p2, p3, p4 Point2) (Point2, bool) {
	d1x, d1y := p2.X-p1.X, p2.Y-p1.Y
	d2x, d2y := p4.X-p3.X, p4.Y-p3.Y
	denom := d1x*d2y - d1y*d2x
	if math.Abs(denom) < 1e-12 {
		return Point2{}, false
	}
	t := ((p3.X-p1.X)*d2y - (p3.Y-p1.Y)*d2x) / denom
	u := ((p3.X-p1.X)*d1y - (p3.Y-p1.Y)*d1x) / denom
	if t < 0 || t > 1 || u < 0 || u > 1 {
		return Point2{}, false
	}
	return Point2{p1.X + t*d1x, p1.Y + t*d1y}, true
}

// PropagationOptions tunes channel generation from geometry.
type PropagationOptions struct {
	Freq      float64 // representative carrier for gain computation (Hz)
	NLOS      bool    // apply Environment.NLOSAttenDB to the direct path
	MinGain   float64 // drop paths weaker than MinGain·directGain (default 0.01)
	MaxPaths  int     // cap on the number of paths kept (default 12)
	ExtraLoss float64 // additional linear loss on every path (default 1)
	// MaxExcessDelay drops paths arriving more than this long after the
	// direct path (default 25 ns). Indoor office profiles concentrate
	// their power within ~25 ns of excess delay — the spread the paper's
	// own measured profiles exhibit (Fig. 7b) — with later arrivals
	// buried below the noise floor.
	MaxExcessDelay float64
}

// GenerateChannel builds the multipath channel between tx and rx in env
// using the image method: the direct path, one first-order reflection per
// wall whose reflection point falls on the segment, and one two-hop path
// per scatterer. Paths are sorted by delay; the direct path is always
// kept, even in NLOS (attenuated), matching indoor reality where the
// direct path penetrates walls with loss.
func GenerateChannel(env *Environment, tx, rx Point2, opts PropagationOptions) *Channel {
	if opts.MinGain == 0 {
		opts.MinGain = 0.01
	}
	if opts.MaxPaths == 0 {
		opts.MaxPaths = 12
	}
	if opts.ExtraLoss == 0 {
		opts.ExtraLoss = 1
	}
	if opts.MaxExcessDelay == 0 {
		opts.MaxExcessDelay = 25e-9
	}
	c := 299792458.0

	var paths []Path

	// Direct path.
	d := tx.Dist(rx)
	directGain := FreeSpaceGain(d, opts.Freq) * opts.ExtraLoss
	if opts.NLOS && env.NLOSAttenDB > 0 {
		directGain *= math.Pow(10, -env.NLOSAttenDB/20)
	}
	paths = append(paths, Path{Delay: d / c, Gain: directGain})

	// First-order wall reflections.
	for _, w := range env.Walls {
		pt, ok := w.reflectionPoint(tx, rx)
		if !ok {
			continue
		}
		length := tx.Dist(pt) + pt.Dist(rx)
		gain := FreeSpaceGain(length, opts.Freq) * w.Loss * opts.ExtraLoss
		paths = append(paths, Path{Delay: length / c, Gain: gain})
	}

	// Scatterer paths (TX → scatterer → RX). Diffuse scattering is
	// bistatic: the scatterer intercepts power falling off as 1/d₁ and
	// re-radiates it over 1/d₂, so the amplitude decays as 1/(d₁·d₂) —
	// far faster than a specular wall bounce. We model the re-radiation
	// as a 1 m-reference source with amplitude efficiency ScattererLoss.
	sloss := env.ScattererLoss
	if sloss == 0 {
		sloss = 0.3
	}
	losDirect := FreeSpaceGain(d, opts.Freq) * opts.ExtraLoss
	for _, s := range env.Scatterers {
		d1, d2 := tx.Dist(s), s.Dist(rx)
		gain := FreeSpaceGain(d1, opts.Freq) * FreeSpaceGain(d2, opts.Freq) /
			FreeSpaceGain(1, opts.Freq) * sloss * opts.ExtraLoss
		// A diffuse scatterer cannot outshine the unobstructed direct
		// path; clamp near-device scatterers to a fraction of it.
		if gain > 0.5*losDirect {
			gain = 0.5 * losDirect
		}
		paths = append(paths, Path{Delay: (d1 + d2) / c, Gain: gain})
	}

	ch := NewChannel(paths)

	// Prune weak and very late paths (always keep the direct one at
	// index 0).
	ref := ch.Paths[0].Gain
	directDelay := ch.Paths[0].Delay
	kept := ch.Paths[:1]
	for _, p := range ch.Paths[1:] {
		if p.Gain >= opts.MinGain*ref && p.Delay-directDelay <= opts.MaxExcessDelay {
			kept = append(kept, p)
		}
	}
	if len(kept) > opts.MaxPaths {
		kept = kept[:opts.MaxPaths]
	}
	ch.Paths = kept
	return ch
}

// RandomScatterers places n scatterers uniformly in [x0,x1]×[y0,y1].
func RandomScatterers(rng *rand.Rand, n int, x0, y0, x1, y1 float64) []Point2 {
	out := make([]Point2, n)
	for i := range out {
		out[i] = Point2{
			X: x0 + rng.Float64()*(x1-x0),
			Y: y0 + rng.Float64()*(y1-y0),
		}
	}
	return out
}
