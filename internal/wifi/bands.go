// Package wifi describes the 802.11 frequency plan Chronos hops across:
// the 2.4 GHz ISM channels and the 5 GHz U-NII/DFS channels available to
// an Intel 5300 class 802.11n radio in the U.S., together with the HT20
// OFDM subcarrier layout over which CSI is reported.
package wifi

import (
	"fmt"
	"math"
)

// SpeedOfLight is the propagation speed used to convert time of flight to
// distance, in meters per second.
const SpeedOfLight = 299792458.0

// SubcarrierSpacing is the 802.11n OFDM subcarrier spacing (312.5 kHz).
const SubcarrierSpacing = 312.5e3

// BandwidthHT20 is the nominal channel bandwidth in hertz.
const BandwidthHT20 = 20e6

// Band is one Wi-Fi frequency band (a 20 MHz channel) identified by its
// IEEE channel number and center frequency.
type Band struct {
	Channel int     // IEEE channel number (1..14, 36..165)
	Center  float64 // center frequency in Hz
	DFS     bool    // subject to dynamic frequency selection in the U.S.
}

// GHz24 reports whether the band lies in the 2.4 GHz ISM range, where the
// Intel 5300 firmware reports channel phase modulo π/2 (§11 of the paper).
func (b Band) GHz24() bool { return b.Center < 3e9 }

// String implements fmt.Stringer.
func (b Band) String() string {
	return fmt.Sprintf("ch%d(%.3fGHz)", b.Channel, b.Center/1e9)
}

// USBands returns the 35 U.S. Wi-Fi bands with independent center
// frequencies that the paper sweeps (§5): 2.4 GHz channels 1, 6, 11
// (the non-overlapping set), the 5 GHz U-NII-1/2 channels 36–64, the DFS
// channels 100–140, and U-NII-3 channels 149–165.
//
// The returned slice is freshly allocated; callers may reorder it.
func USBands() []Band {
	var bands []Band
	// 2.4 GHz: non-overlapping 20 MHz channels. Channel k centers at
	// 2407 + 5k MHz for k=1..13.
	for _, ch := range []int{1, 6, 11} {
		bands = append(bands, Band{Channel: ch, Center: (2407 + 5*float64(ch)) * 1e6})
	}
	// 5 GHz: channel k centers at 5000 + 5k MHz.
	add5 := func(chans []int, dfs bool) {
		for _, ch := range chans {
			bands = append(bands, Band{Channel: ch, Center: (5000 + 5*float64(ch)) * 1e6, DFS: dfs})
		}
	}
	// U-NII-1 and U-NII-2A: 36..64 in steps of 4 (8 channels).
	add5([]int{36, 40, 44, 48, 52, 56, 60, 64}, false)
	// U-NII-2C DFS: 100..140 in steps of 4 (11 channels); many 802.11h
	// radios (including the Intel 5300) support these.
	add5([]int{100, 104, 108, 112, 116, 120, 124, 128, 132, 136, 140}, true)
	// U-NII-3: 149..165 in steps of 4 (5 channels).
	add5([]int{149, 153, 157, 161, 165}, false)

	// 35 total bands with independent center frequencies: pad with the
	// remaining distinct 2.4 GHz centers the card can tune (channels 3, 4,
	// 5, 8, 9, 13, 2, 12): the paper counts 35 usable bands across
	// 2.4+5 GHz; partially overlapping 2.4 GHz channels still have
	// independent center frequencies, which is all the CRT math needs.
	for _, ch := range []int{2, 3, 4, 5, 8, 9, 12, 13} {
		bands = append(bands, Band{Channel: ch, Center: (2407 + 5*float64(ch)) * 1e6})
	}
	return bands
}

// Bands5GHz returns only the 5 GHz subset of USBands (quirk-free CSI).
func Bands5GHz() []Band {
	var out []Band
	for _, b := range USBands() {
		if !b.GHz24() {
			out = append(out, b)
		}
	}
	return out
}

// Bands24GHz returns only the 2.4 GHz subset of USBands.
func Bands24GHz() []Band {
	var out []Band
	for _, b := range USBands() {
		if b.GHz24() {
			out = append(out, b)
		}
	}
	return out
}

// CSISubcarriers returns the 30 subcarrier indices for which an Intel
// 5300 reports CSI in HT20 mode: every other subcarrier of the 56 usable
// (−28..−1, 1..28), i.e. ±28, ±26, ..., ±2 — 14 on each side plus ±1
// endpoints adjusted to the CSI Tool grouping. The zero subcarrier is
// never reported (DC), which is why Chronos interpolates (§5).
func CSISubcarriers() []int {
	// The 802.11n CSI Tool reports grouped subcarriers:
	// -28,-26,...,-2 and 2,4,...,28 would be 28; the tool's actual 30
	// indices include -28..-2 step 2 (14) plus -1? The canonical Intel
	// 5300 list for HT20 is:
	//   -28,-26,-24,-22,-20,-18,-16,-14,-12,-10,-8,-6,-4,-2,-1,
	//     1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28
	idx := []int{
		-28, -26, -24, -22, -20, -18, -16, -14, -12, -10, -8, -6, -4, -2, -1,
		1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28,
	}
	return append([]int(nil), idx...)
}

// SubcarrierFreq returns the absolute frequency of subcarrier k in band b.
func SubcarrierFreq(b Band, k int) float64 {
	return b.Center + float64(k)*SubcarrierSpacing
}

// UnambiguousRange returns the maximum time (seconds) over which a set of
// band center frequencies can disambiguate time of flight via the Chinese
// remainder structure: the least common multiple of the per-band periods
// 1/fᵢ, estimated numerically on a frequency grid of gcdHz resolution.
//
// In practice Wi-Fi center frequencies are all multiples of 5 MHz
// (actually of 2.5 MHz counting 2.4 GHz offsets), so the LCM of periods is
// 1/gcd(fᵢ) with gcd on that grid — e.g. ≈200 ns for the 2.4 GHz set the
// paper quotes (§4).
func UnambiguousRange(bands []Band) float64 {
	if len(bands) == 0 {
		return 0
	}
	// Represent each center frequency as an integer count of 0.5 MHz and
	// take the integer gcd.
	const unit = 0.5e6
	g := int64(math.Round(bands[0].Center / unit))
	for _, b := range bands[1:] {
		g = gcd64(g, int64(math.Round(b.Center/unit)))
	}
	if g == 0 {
		return 0
	}
	return 1 / (float64(g) * unit)
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

// TotalSpan returns the frequency span (max center − min center) covered
// by the band set — the "effective bandwidth" that sets the multipath
// profile resolution.
func TotalSpan(bands []Band) float64 {
	if len(bands) == 0 {
		return 0
	}
	lo, hi := bands[0].Center, bands[0].Center
	for _, b := range bands[1:] {
		if b.Center < lo {
			lo = b.Center
		}
		if b.Center > hi {
			hi = b.Center
		}
	}
	return hi - lo
}

// Centers extracts the center frequencies of bands, in order.
func Centers(bands []Band) []float64 {
	out := make([]float64, len(bands))
	for i, b := range bands {
		out[i] = b.Center
	}
	return out
}
