package wifi

import (
	"math"
	"testing"
)

func TestUSBandsCount(t *testing.T) {
	bands := USBands()
	if len(bands) != 35 {
		t.Fatalf("got %d bands, want 35 (paper §5)", len(bands))
	}
}

func TestUSBandsDistinctCenters(t *testing.T) {
	seen := map[float64]int{}
	for _, b := range USBands() {
		if prev, dup := seen[b.Center]; dup {
			t.Errorf("channels %d and %d share center %v", prev, b.Channel, b.Center)
		}
		seen[b.Center] = b.Channel
	}
}

func TestKnownCenterFrequencies(t *testing.T) {
	want := map[int]float64{
		1:   2.412e9,
		6:   2.437e9,
		11:  2.462e9,
		36:  5.18e9,
		64:  5.32e9,
		100: 5.5e9,
		140: 5.7e9,
		149: 5.745e9,
		165: 5.825e9,
	}
	got := map[int]float64{}
	for _, b := range USBands() {
		got[b.Channel] = b.Center
	}
	for ch, f := range want {
		if math.Abs(got[ch]-f) > 1 {
			t.Errorf("channel %d center = %v, want %v", ch, got[ch], f)
		}
	}
}

func TestDFSFlags(t *testing.T) {
	for _, b := range USBands() {
		wantDFS := b.Channel >= 100 && b.Channel <= 140
		if b.DFS != wantDFS {
			t.Errorf("channel %d DFS = %v, want %v", b.Channel, b.DFS, wantDFS)
		}
	}
}

func TestGHz24Split(t *testing.T) {
	b24, b5 := Bands24GHz(), Bands5GHz()
	if len(b24)+len(b5) != 35 {
		t.Errorf("split %d + %d != 35", len(b24), len(b5))
	}
	if len(b24) != 11 {
		t.Errorf("2.4 GHz bands = %d, want 11", len(b24))
	}
	for _, b := range b24 {
		if !b.GHz24() {
			t.Errorf("band %v misclassified", b)
		}
	}
	for _, b := range b5 {
		if b.GHz24() {
			t.Errorf("band %v misclassified", b)
		}
	}
}

func TestCSISubcarriers(t *testing.T) {
	sc := CSISubcarriers()
	if len(sc) != 30 {
		t.Fatalf("got %d subcarriers, want 30 (Intel 5300 HT20)", len(sc))
	}
	for i, k := range sc {
		if k == 0 {
			t.Error("zero subcarrier must not be reported (DC)")
		}
		if k < -28 || k > 28 {
			t.Errorf("subcarrier %d out of HT20 range", k)
		}
		if i > 0 && sc[i] <= sc[i-1] {
			t.Errorf("subcarriers not strictly increasing at %d", i)
		}
	}
}

func TestSubcarrierFreq(t *testing.T) {
	b := Band{Channel: 36, Center: 5.18e9}
	if got := SubcarrierFreq(b, 0); got != 5.18e9 {
		t.Errorf("k=0 freq = %v", got)
	}
	if got := SubcarrierFreq(b, -28); math.Abs(got-(5.18e9-28*312.5e3)) > 1e-6 {
		t.Errorf("k=-28 freq = %v", got)
	}
}

func TestUnambiguousRange(t *testing.T) {
	// The paper states ~200 ns (60 m) using the 2.4 GHz bands alone (§4).
	// The exact integer gcd of the 2.4 GHz centers is 1 MHz, giving 1 µs —
	// comfortably above the paper's conservative ~200 ns (60 m) claim.
	r24 := UnambiguousRange(Bands24GHz())
	if r24 < 200e-9 || r24 > 10e-6 {
		t.Errorf("2.4 GHz unambiguous range = %v s, want ≥200 ns", r24)
	}
	// All 35 bands can't do worse than the 2.4 GHz subset.
	rAll := UnambiguousRange(USBands())
	if rAll < r24-1e-12 {
		t.Errorf("all-band range %v < 2.4 GHz range %v", rAll, r24)
	}
	if got := UnambiguousRange(nil); got != 0 {
		t.Errorf("empty range = %v", got)
	}
}

func TestTotalSpan(t *testing.T) {
	span := TotalSpan(USBands())
	// 5.825 GHz - 2.412 GHz ≈ 3.413 GHz of spanned spectrum.
	if math.Abs(span-3.413e9) > 1e6 {
		t.Errorf("span = %v", span)
	}
	if got := TotalSpan(nil); got != 0 {
		t.Errorf("empty span = %v", got)
	}
	if got := TotalSpan(USBands()[:1]); got != 0 {
		t.Errorf("single-band span = %v", got)
	}
}

func TestCenters(t *testing.T) {
	bands := USBands()
	cs := Centers(bands)
	if len(cs) != len(bands) {
		t.Fatalf("len = %d", len(cs))
	}
	for i := range cs {
		if cs[i] != bands[i].Center {
			t.Errorf("centers[%d] mismatch", i)
		}
	}
}

func TestBandString(t *testing.T) {
	b := Band{Channel: 36, Center: 5.18e9}
	if got := b.String(); got != "ch36(5.180GHz)" {
		t.Errorf("String = %q", got)
	}
}
