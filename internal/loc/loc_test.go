package loc

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"chronos/internal/csi"
	"chronos/internal/geo"
	"chronos/internal/sim"
	"chronos/internal/tof"
	"chronos/internal/wifi"
)

// rig is a simulated 3-antenna receiver tracking a single-antenna
// transmitter in an office. The same radios persist across placements so
// calibration stays valid, as on real hardware.
type rig struct {
	office *sim.Office
	array  geo.Array
	tx     *csi.Radio
	rx     []*csi.Radio
	links  []*csi.Link
}

func newRig(rng *rand.Rand, nAnt int, sep float64) *rig {
	office := sim.NewOffice(rng, sim.OfficeConfig{})
	r := &rig{
		office: office,
		array:  geo.LinearArray(nAnt, sep),
		tx:     csi.NewRadio(rng),
	}
	r.tx.Quirk24 = false
	for i := 0; i < nAnt; i++ {
		rx := csi.NewRadio(rng)
		rx.Quirk24 = false
		r.rx = append(r.rx, rx)
		r.links = append(r.links, &csi.Link{TX: r.tx, RX: rx, SNRdB: 26})
	}
	return r
}

// place points every antenna link at the given TX/RX-center geometry.
func (r *rig) place(txPos, rxCenter geo.Point, nlos bool) {
	ap := sim.AntennaPlacement{TX: txPos, RXCenter: rxCenter, Array: r.array, NLOS: nlos}
	chans := r.office.AntennaChannels(ap, 5.5e9)
	for i := range r.links {
		r.links[i].Channel = chans[i]
	}
}

// sweeps captures one band sweep per antenna.
func (r *rig) sweeps(rng *rand.Rand, bands []wifi.Band, pairs int) [][][]csi.Pair {
	out := make([][][]csi.Pair, len(r.links))
	for i, l := range r.links {
		out[i] = l.Sweep(rng, bands, pairs, 2.4e-3)
	}
	return out
}

func calibratedLocalizer(t *testing.T, rng *rand.Rand, r *rig, bands []wifi.Band) *Localizer {
	t.Helper()
	loc := NewLocalizer(r.array, tof.Config{Mode: tof.Bands5GHzOnly, MaxIter: 800})
	// Calibrate at a known geometry.
	txPos, rxCenter := geo.Point{X: 5, Y: 5}, geo.Point{X: 10, Y: 10}
	r.place(txPos, rxCenter, false)
	trueDist := make([]float64, len(r.array.Antennas))
	for i, ant := range r.array.At(rxCenter) {
		trueDist[i] = txPos.Dist(ant)
	}
	if err := loc.CalibrateAll(rng, bands, r.links, trueDist, 3); err != nil {
		t.Fatal(err)
	}
	return loc
}

func TestLocateThreeAntennaLOS(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign-scale localization test")
	}
	rng := rand.New(rand.NewSource(1))
	r := newRig(rng, 3, 0.5)
	bands := wifi.Bands5GHz()
	loc := calibratedLocalizer(t, rng, r, bands)

	// Target placement: transmitter 4 m away from the array center.
	rxCenter := geo.Point{X: 10, Y: 10}
	txPos := geo.Point{X: 12.5, Y: 13}
	r.place(txPos, rxCenter, false)

	fix, err := loc.Locate(bands, r.sweeps(rng, bands, 3))
	if err != nil {
		t.Fatal(err)
	}
	// The fix is in the array frame (array center at origin).
	truthLocal := txPos.Sub(rxCenter)
	if e := fix.Position.Dist(truthLocal); e > 1.2 {
		t.Errorf("localization error %.2f m (fix %v, truth %v)", e, fix.Position, truthLocal)
	}
	if len(fix.Distances) < 2 {
		t.Errorf("kept distances = %d", len(fix.Distances))
	}
}

func TestLocateWiderArrayNoWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign-scale localization test")
	}
	// §10/§12.2: larger antenna separation should not hurt accuracy (it
	// should generally help). Run both on identical scenario seeds.
	bands := wifi.Bands5GHz()
	run := func(sep float64) float64 {
		rng := rand.New(rand.NewSource(42))
		r := newRig(rng, 3, sep)
		loc := calibratedLocalizer(t, rng, r, bands)
		rxCenter := geo.Point{X: 9, Y: 9}
		txPos := geo.Point{X: 13, Y: 12}
		r.place(txPos, rxCenter, false)
		var total float64
		const trials = 3
		for i := 0; i < trials; i++ {
			fix, err := loc.Locate(bands, r.sweeps(rng, bands, 3))
			if err != nil {
				t.Fatal(err)
			}
			total += fix.Position.Dist(txPos.Sub(rxCenter))
		}
		return total / trials
	}
	narrow, wide := run(0.15), run(0.5)
	if wide > narrow*2+0.3 {
		t.Errorf("wide-array error %.2f m much worse than narrow %.2f m", wide, narrow)
	}
}

func TestLocateSweepCountMismatch(t *testing.T) {
	loc := NewLocalizer(geo.LinearArray(3, 0.3), tof.Config{})
	if _, err := loc.Locate(wifi.Bands5GHz(), make([][][]csi.Pair, 2)); !errors.Is(err, ErrAntennaCount) {
		t.Errorf("err = %v", err)
	}
}

func TestLocateEmptySweepsFail(t *testing.T) {
	loc := NewLocalizer(geo.LinearArray(3, 0.3), tof.Config{})
	sweeps := make([][][]csi.Pair, 3) // all antennas empty
	if _, err := loc.Locate(wifi.Bands5GHz(), sweeps); err == nil {
		t.Error("empty sweeps accepted")
	}
}

func TestCalibrateAllInputMismatch(t *testing.T) {
	loc := NewLocalizer(geo.LinearArray(3, 0.3), tof.Config{})
	if err := loc.CalibrateAll(rand.New(rand.NewSource(1)), wifi.Bands5GHz(), nil, nil, 1); err == nil {
		t.Error("mismatched calibration inputs accepted")
	}
}

func TestLocateTwoAntennaAmbiguity(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign-scale localization test")
	}
	rng := rand.New(rand.NewSource(3))
	r := newRig(rng, 2, 0.5)
	bands := wifi.Bands5GHz()
	loc := calibratedLocalizer(t, rng, r, bands)

	rxCenter := geo.Point{X: 10, Y: 10}
	txPos := geo.Point{X: 12, Y: 13}
	r.place(txPos, rxCenter, false)
	fix, err := loc.Locate(bands, r.sweeps(rng, bands, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(fix.Candidates) < 2 {
		t.Fatalf("expected mirror ambiguity with 2 antennas, got %v", fix.Candidates)
	}
	// With only a 0.5 m baseline the bearing is noisy, but the range must
	// be accurate and the two candidates must mirror each other across
	// the array axis (y → −y).
	truthLocal := txPos.Sub(rxCenter)
	bestRangeErr := math.Inf(1)
	for _, c := range fix.Candidates {
		if e := math.Abs(c.Norm() - truthLocal.Norm()); e < bestRangeErr {
			bestRangeErr = e
		}
	}
	if bestRangeErr > 0.8 {
		t.Errorf("range error %.2f m", bestRangeErr)
	}
	a, b := fix.Candidates[0], fix.Candidates[1]
	if math.Abs(a.X-b.X) > 0.2 || math.Abs(a.Y+b.Y) > 0.2 {
		t.Errorf("candidates %v and %v are not mirror images", a, b)
	}
}
