package loc

import (
	"math/rand"
	"testing"

	"chronos/internal/csi"
	"chronos/internal/geo"
	"chronos/internal/sim"
	"chronos/internal/tof"
	"chronos/internal/wifi"
)

// arrayRig is the shared-packet analogue of rig: one transmitter, one
// multi-chain receiver card.
type arrayRig struct {
	office *sim.Office
	array  geo.Array
	link   *csi.ArrayLink
}

func newArrayRig(rng *rand.Rand, side float64) *arrayRig {
	office := sim.NewOffice(rng, sim.OfficeConfig{})
	tx := csi.NewRadio(rng)
	tx.Quirk24 = false
	rx := csi.NewRadio(rng)
	rx.Quirk24 = false
	return &arrayRig{
		office: office,
		array:  geo.TriangleArray(side),
		link:   &csi.ArrayLink{TX: tx, RX: rx, SNRdB: 26},
	}
}

func (r *arrayRig) place(txPos, rxCenter geo.Point, nlos bool) {
	ap := sim.AntennaPlacement{TX: txPos, RXCenter: rxCenter, Array: r.array, NLOS: nlos}
	r.link.Channels = r.office.AntennaChannels(ap, 5.5e9)
}

func TestLocateArrayAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign-scale localization test")
	}
	rng := rand.New(rand.NewSource(1))
	r := newArrayRig(rng, 0.3)
	bands := wifi.Bands5GHz()
	localizer := NewLocalizer(r.array, tof.Config{Mode: tof.Bands5GHzOnly, MaxIter: 1000})

	rxCenter := geo.Point{X: 10, Y: 10}
	calTx := geo.Point{X: 6, Y: 7}
	r.place(calTx, rxCenter, false)
	trueDist := make([]float64, 3)
	for i, ant := range r.array.At(rxCenter) {
		trueDist[i] = calTx.Dist(ant)
	}
	if err := localizer.CalibrateArray(rng, bands, r.link, trueDist, 3); err != nil {
		t.Fatal(err)
	}

	targets := []geo.Point{{X: 13, Y: 12}, {X: 15, Y: 6}, {X: 7, Y: 14}}
	good := 0
	for _, target := range targets {
		r.place(target, rxCenter, false)
		fix, err := localizer.LocateArray(bands, r.link.Sweep(rng, bands, 3, 2.4e-3))
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		if fix.Position.Dist(target.Sub(rxCenter)) < 1.0 {
			good++
		}
	}
	// At least 2 of 3 LOS fixes within a meter (paper median 58 cm).
	if good < 2 {
		t.Errorf("only %d/3 fixes within 1 m", good)
	}
}

func TestLocateArrayDistancesTrackTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign-scale localization test")
	}
	rng := rand.New(rand.NewSource(2))
	r := newArrayRig(rng, 0.3)
	bands := wifi.Bands5GHz()
	localizer := NewLocalizer(r.array, tof.Config{Mode: tof.Bands5GHzOnly, MaxIter: 1000})

	rxCenter := geo.Point{X: 9, Y: 9}
	calTx := geo.Point{X: 5, Y: 6}
	r.place(calTx, rxCenter, false)
	trueDist := make([]float64, 3)
	for i, ant := range r.array.At(rxCenter) {
		trueDist[i] = calTx.Dist(ant)
	}
	if err := localizer.CalibrateArray(rng, bands, r.link, trueDist, 3); err != nil {
		t.Fatal(err)
	}

	target := geo.Point{X: 13, Y: 11}
	r.place(target, rxCenter, false)
	fix, err := localizer.LocateArray(bands, r.link.Sweep(rng, bands, 3, 2.4e-3))
	if err != nil {
		t.Fatal(err)
	}
	ants := r.array.At(rxCenter)
	for i, ai := range fix.KeptAntennas {
		want := target.Dist(ants[ai])
		got := fix.Distances[i]
		if d := got - want; d > 0.5 || d < -0.5 {
			t.Errorf("antenna %d distance %v, want %v", ai, got, want)
		}
	}
}

func TestLocateArrayCountMismatch(t *testing.T) {
	l := NewLocalizer(geo.TriangleArray(0.3), tof.Config{})
	if _, err := l.LocateArray(wifi.Bands5GHz(), make([][][]csi.Pair, 2)); err == nil {
		t.Error("mismatched sweep count accepted")
	}
}

func TestCalibrateArrayInputMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLocalizer(geo.TriangleArray(0.3), tof.Config{})
	link := &csi.ArrayLink{TX: csi.NewRadio(rng), RX: csi.NewRadio(rng)}
	if err := l.CalibrateArray(rng, wifi.Bands5GHz(), link, []float64{1}, 1); err == nil {
		t.Error("mismatched calibration inputs accepted")
	}
}
