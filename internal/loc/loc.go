// Package loc is the §8 device-to-device localization engine: it runs the
// time-of-flight estimator once per receive antenna, converts the
// resulting ToFs to distances, rejects geometrically inconsistent
// estimates, and solves for the transmitter position relative to the
// receiver's antenna array by least squares.
package loc

import (
	"errors"
	"fmt"
	"math/rand"

	"chronos/internal/csi"
	"chronos/internal/geo"
	"chronos/internal/tof"
	"chronos/internal/wifi"
)

// Localizer estimates a transmitter's position relative to a rigid
// receive antenna array.
type Localizer struct {
	Array geo.Array
	// Estimators holds one calibrated ToF estimator per antenna. They may
	// share a Config but each carries its own calibration offset.
	Estimators []*tof.Estimator
	// OutlierSlack is the extra tolerance (meters) in the geometric
	// consistency check (default 0.45 m ≈ 1.5 ns of ToF error).
	OutlierSlack float64
}

// NewLocalizer builds a localizer for the given array, instantiating one
// estimator per antenna from cfg.
func NewLocalizer(array geo.Array, cfg tof.Config) *Localizer {
	ests := make([]*tof.Estimator, len(array.Antennas))
	for i := range ests {
		ests[i] = tof.NewEstimator(cfg)
	}
	return &Localizer{Array: array, Estimators: ests, OutlierSlack: 0.45}
}

// ErrAntennaCount reports a sweep count that does not match the array.
var ErrAntennaCount = errors.New("loc: sweep count does not match antenna count")

// Fix is one localization result.
type Fix struct {
	Position geo.Point // least-squares position in the array's frame
	// Candidates holds both solutions when only two usable distances
	// remained (mirror ambiguity, §8); otherwise nil.
	Candidates []geo.Point
	// Distances are the per-antenna distance estimates that survived
	// outlier rejection, index-aligned with KeptAntennas.
	Distances    []float64
	KeptAntennas []int
	DroppedCount int
}

// Locate runs the full §8 pipeline. sweeps[i] is the CSI band sweep
// captured at antenna i (against the same transmitter), aligned with
// bands.
func (l *Localizer) Locate(bands []wifi.Band, sweeps [][][]csi.Pair) (*Fix, error) {
	if len(sweeps) != len(l.Array.Antennas) {
		return nil, fmt.Errorf("%w: %d sweeps, %d antennas", ErrAntennaCount, len(sweeps), len(l.Array.Antennas))
	}
	circles := make([]geo.Circle, 0, len(sweeps))
	idx := make([]int, 0, len(sweeps))
	for i, sweep := range sweeps {
		est, err := l.Estimators[i].Estimate(bands, sweep)
		if err != nil {
			continue // a failed antenna just contributes no circle
		}
		circles = append(circles, geo.Circle{Center: l.Array.Antennas[i], Radius: est.Distance})
		idx = append(idx, i)
	}
	if len(circles) < 2 {
		return nil, errors.New("loc: fewer than two usable antenna distances")
	}

	kept := geo.RejectOutliers(circles, l.OutlierSlack)
	keptCircles := make([]geo.Circle, len(kept))
	keptIdx := make([]int, len(kept))
	for i, k := range kept {
		keptCircles[i] = circles[k]
		keptIdx[i] = idx[k]
	}

	pos, amb, err := geo.Trilaterate(keptCircles)
	if err != nil {
		return nil, err
	}
	fix := &Fix{
		Position:     pos,
		Candidates:   amb,
		KeptAntennas: keptIdx,
		DroppedCount: len(circles) - len(keptCircles),
	}
	for _, c := range keptCircles {
		fix.Distances = append(fix.Distances, c.Radius)
	}
	return fix, nil
}

// LocateArray runs §8 localization over a shared-packet array sweep
// (csi.ArrayLink): sweeps[i] holds antenna i's CSI pairs, each the
// product of antenna i's forward measurement (one packet shared by all
// chains) with the round-robin reverse measurement over antenna i's own
// channel. Each antenna therefore yields a clean per-antenna distance.
// Because all chains share each forward packet's detection delay and
// CFO, antenna-differential errors stay well below the absolute ones —
// the property that makes 30 cm baselines usable at room scale.
func (l *Localizer) LocateArray(bands []wifi.Band, sweeps [][][]csi.Pair) (*Fix, error) {
	if len(sweeps) != len(l.Array.Antennas) {
		return nil, fmt.Errorf("%w: %d sweeps, %d antennas", ErrAntennaCount, len(sweeps), len(l.Array.Antennas))
	}
	circles := make([]geo.Circle, 0, len(sweeps))
	idx := make([]int, 0, len(sweeps))
	for i, sweep := range sweeps {
		est, err := l.Estimators[i].Estimate(bands, sweep)
		if err != nil {
			continue
		}
		circles = append(circles, geo.Circle{Center: l.Array.Antennas[i], Radius: est.Distance})
		idx = append(idx, i)
	}
	if len(circles) < 2 {
		return nil, errors.New("loc: fewer than two usable antenna distances")
	}
	return l.solve(circles, idx)
}

// solve applies outlier rejection and least squares to distance circles.
func (l *Localizer) solve(circles []geo.Circle, idx []int) (*Fix, error) {
	kept := geo.RejectOutliers(circles, l.OutlierSlack)
	keptCircles := make([]geo.Circle, len(kept))
	keptIdx := make([]int, len(kept))
	for i, k := range kept {
		keptCircles[i] = circles[k]
		keptIdx[i] = idx[k]
	}
	pos, amb, err := geo.Trilaterate(keptCircles)
	if err != nil {
		return nil, err
	}
	if len(amb) == 2 && len(circles) > len(keptCircles) {
		// Two-circle mirror ambiguity after dropping an outlier: the
		// dropped circle is noisy but still carries enough signal to
		// pick a side. Choose the candidate with the smaller total
		// residual over every original circle.
		score := func(p geo.Point) float64 {
			var s float64
			for _, c := range circles {
				r := p.Dist(c.Center) - c.Radius
				s += r * r
			}
			return s
		}
		if score(amb[1]) < score(amb[0]) {
			pos = amb[1]
		} else {
			pos = amb[0]
		}
	}
	fix := &Fix{
		Position:     pos,
		Candidates:   amb,
		KeptAntennas: keptIdx,
		DroppedCount: len(circles) - len(keptCircles),
	}
	for _, c := range keptCircles {
		fix.Distances = append(fix.Distances, c.Radius)
	}
	return fix, nil
}

// CalibrateArray calibrates the per-antenna estimators of a shared-packet
// array link at a known geometry: trueDist[i] is the laser-measured
// distance from the transmitter to antenna i.
func (l *Localizer) CalibrateArray(rng *rand.Rand, bands []wifi.Band, link *csi.ArrayLink, trueDist []float64, pairsPerBand int) error {
	if len(trueDist) != len(l.Estimators) || len(link.Channels) != len(l.Estimators) {
		return errors.New("loc: calibration inputs do not match antenna count")
	}
	sweeps := link.Sweep(rng, bands, pairsPerBand, 2.4e-3)
	for i := range l.Estimators {
		off, err := tof.Calibrate(l.Estimators[i], bands, sweeps[i], trueDist[i])
		if err != nil {
			return fmt.Errorf("loc: calibrating antenna %d: %w", i, err)
		}
		l.Estimators[i].SetCalibrationOffset(off)
	}
	return nil
}

// CalibrateAll calibrates every antenna's estimator against a known
// transmitter position, emulating the paper's one-time setup. links[i] is
// the measurement link of antenna i; trueDist[i] the laser-measured
// distance from the transmitter to antenna i.
func (l *Localizer) CalibrateAll(rng *rand.Rand, bands []wifi.Band, links []*csi.Link, trueDist []float64, pairsPerBand int) error {
	if len(links) != len(l.Estimators) || len(trueDist) != len(l.Estimators) {
		return errors.New("loc: calibration inputs do not match antenna count")
	}
	for i, link := range links {
		sweep := link.Sweep(rng, bands, pairsPerBand, 2.4e-3)
		off, err := tof.Calibrate(l.Estimators[i], bands, sweep, trueDist[i])
		if err != nil {
			return fmt.Errorf("loc: calibrating antenna %d: %w", i, err)
		}
		l.Estimators[i].SetCalibrationOffset(off)
	}
	return nil
}
