// Package mac provides the deterministic virtual-time substrate for every
// protocol-level experiment: a discrete-event simulator, a lossy wireless
// link model, and message scheduling between simulated stations. Nothing
// here touches wall-clock time, so protocol runs are fast and exactly
// reproducible from a seed.
package mac

import (
	"container/heap"
	"math/rand"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker for events at the same instant (FIFO)
	fn  func()
	// canceled events stay in the heap but are skipped on pop.
	canceled bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is a single-threaded discrete-event simulator.
type Sim struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
}

// NewSim returns a simulator at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Timer is a handle that can cancel a scheduled event.
type Timer struct{ ev *event }

// Cancel prevents the timer's callback from running. Safe to call more
// than once or after the callback fired.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.canceled = true
	}
}

// Schedule runs fn after delay of virtual time and returns a cancellable
// handle. A negative delay is treated as zero (run at the current
// instant, after already-queued events at this instant).
func (s *Sim) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	ev := &event{at: s.now + delay, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return &Timer{ev: ev}
}

// Run processes events until the queue empties or virtual time would pass
// until. It returns the number of events executed.
func (s *Sim) Run(until time.Duration) int {
	n := 0
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&s.queue)
		if next.canceled {
			continue
		}
		s.now = next.at
		next.fn()
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// RunAll processes every pending event (including ones scheduled while
// running) and returns the count. Use only with protocols that terminate.
func (s *Sim) RunAll() int {
	n := 0
	for len(s.queue) > 0 {
		next := heap.Pop(&s.queue).(*event)
		if next.canceled {
			continue
		}
		s.now = next.at
		next.fn()
		n++
	}
	return n
}

// Pending returns the number of queued (possibly canceled) events.
func (s *Sim) Pending() int { return len(s.queue) }

// Link is a half-duplex lossy link between two stations. Delivery takes
// Latency plus the frame's airtime; each frame independently drops with
// probability LossProb.
type Link struct {
	Sim      *Sim
	Latency  time.Duration // propagation + processing latency
	Rate     float64       // bits per second (for airtime); 0 = instantaneous
	LossProb float64
	Rng      *rand.Rand
}

// Frame is an opaque message with a size used to compute airtime.
type Frame struct {
	Kind    string
	Payload int // bytes, for airtime
	Data    any
}

// Send delivers frame to the receiver callback after the link delay, or
// drops it. It reports whether the frame was put on the air (always true;
// loss happens silently at the receiver, as in a real radio).
func (l *Link) Send(f Frame, deliver func(Frame)) {
	airtime := time.Duration(0)
	if l.Rate > 0 {
		airtime = time.Duration(float64(f.Payload*8) / l.Rate * float64(time.Second))
	}
	total := l.Latency + airtime
	if l.Rng != nil && l.Rng.Float64() < l.LossProb {
		return // lost in flight: receiver never sees it
	}
	l.Sim.Schedule(total, func() { deliver(f) })
}
