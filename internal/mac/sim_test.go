package mac

import (
	"math/rand"
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.Schedule(3*time.Millisecond, func() { order = append(order, 3) })
	s.Schedule(1*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	s.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 3*time.Millisecond {
		t.Errorf("now = %v", s.Now())
	}
}

func TestScheduleSameInstantFIFO(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	s.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSim()
	var hits []time.Duration
	s.Schedule(time.Millisecond, func() {
		hits = append(hits, s.Now())
		s.Schedule(time.Millisecond, func() {
			hits = append(hits, s.Now())
		})
	})
	s.RunAll()
	if len(hits) != 2 || hits[0] != time.Millisecond || hits[1] != 2*time.Millisecond {
		t.Errorf("hits = %v", hits)
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	s := NewSim()
	ran := false
	s.Schedule(10*time.Millisecond, func() { ran = true })
	n := s.Run(5 * time.Millisecond)
	if n != 0 || ran {
		t.Error("event beyond horizon executed")
	}
	if s.Now() != 5*time.Millisecond {
		t.Errorf("now = %v, want horizon", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
	// Continuing runs it.
	s.Run(20 * time.Millisecond)
	if !ran {
		t.Error("event never ran")
	}
}

func TestTimerCancel(t *testing.T) {
	s := NewSim()
	ran := false
	tm := s.Schedule(time.Millisecond, func() { ran = true })
	tm.Cancel()
	tm.Cancel() // double-cancel is safe
	s.RunAll()
	if ran {
		t.Error("canceled event executed")
	}
	var nilTimer *Timer
	nilTimer.Cancel() // nil-safe
}

func TestNegativeDelay(t *testing.T) {
	s := NewSim()
	s.Run(5 * time.Millisecond) // advance clock
	ran := time.Duration(-1)
	s.Schedule(-time.Second, func() { ran = s.Now() })
	s.RunAll()
	if ran != 5*time.Millisecond {
		t.Errorf("negative delay ran at %v", ran)
	}
}

func TestLinkDeliveryTiming(t *testing.T) {
	s := NewSim()
	l := &Link{Sim: s, Latency: 10 * time.Microsecond, Rate: 1e6} // 1 Mbps
	var at time.Duration
	l.Send(Frame{Kind: "x", Payload: 125}, func(Frame) { at = s.Now() })
	s.RunAll()
	// 125 bytes at 1 Mbps = 1 ms airtime + 10 µs latency.
	want := time.Millisecond + 10*time.Microsecond
	if at != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
}

func TestLinkZeroRateInstantaneous(t *testing.T) {
	s := NewSim()
	l := &Link{Sim: s, Latency: time.Microsecond}
	var at time.Duration
	l.Send(Frame{Payload: 1500}, func(Frame) { at = s.Now() })
	s.RunAll()
	if at != time.Microsecond {
		t.Errorf("delivered at %v", at)
	}
}

func TestLinkLossRate(t *testing.T) {
	s := NewSim()
	l := &Link{Sim: s, Rng: rand.New(rand.NewSource(1)), LossProb: 0.3}
	delivered := 0
	n := 10000
	for i := 0; i < n; i++ {
		l.Send(Frame{}, func(Frame) { delivered++ })
	}
	s.RunAll()
	got := float64(delivered) / float64(n)
	if got < 0.66 || got > 0.74 {
		t.Errorf("delivery rate = %v, want ≈0.7", got)
	}
}

func TestLinkNoRngNeverDrops(t *testing.T) {
	s := NewSim()
	l := &Link{Sim: s, LossProb: 1.0} // no Rng → loss disabled
	delivered := 0
	l.Send(Frame{}, func(Frame) { delivered++ })
	s.RunAll()
	if delivered != 1 {
		t.Error("frame dropped without an Rng")
	}
}
