package ndft

import (
	"math"
	"math/rand"
	"testing"

	"chronos/internal/dsp"
	"chronos/internal/wifi"
)

func noisePlan(t testing.TB) *Plan {
	t.Helper()
	pl, err := NewPlan(wifi.Centers(wifi.Bands5GHz()), TauGrid(30e-9, 0.25e-9))
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func noiseVec(rng *rand.Rand, n int, sigma float64) dsp.Vec {
	h := make(dsp.Vec, n)
	for i := range h {
		h[i] = complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return h
}

// TestNoiseFloorCalibration pins the Rayleigh calibration: on pure
// complex Gaussian noise the estimator must recover the true noise norm
// E‖w‖ = σ·√(2n) within a modest factor (adjacent grid cells share
// correlated adjoint samples, so the effective sample count is well
// below the grid size and some spread is expected).
func TestNoiseFloorCalibration(t *testing.T) {
	pl := noisePlan(t)
	n, _ := pl.Dims()
	rng := rand.New(rand.NewSource(2))
	for _, sigma := range []float64{0.01, 0.1, 1, 25} {
		truth := sigma * math.Sqrt(2*float64(n))
		for trial := 0; trial < 3; trial++ {
			got := pl.NoiseFloor(noiseVec(rng, n, sigma))
			if got < 0.4*truth || got > 2.5*truth {
				t.Errorf("sigma=%v trial %d: NoiseFloor %v, want within [0.4, 2.5]× of %v", sigma, trial, got, truth)
			}
		}
	}
}

// TestNoiseFloorEdgeCases covers the degenerate inputs.
func TestNoiseFloorEdgeCases(t *testing.T) {
	pl := noisePlan(t)
	n, _ := pl.Dims()
	if got := pl.NoiseFloor(make(dsp.Vec, n)); got != 0 {
		t.Errorf("zero measurement: NoiseFloor %v, want 0", got)
	}
	if got := pl.NoiseFloor(make(dsp.Vec, 3)); !math.IsNaN(got) {
		t.Errorf("wrong length: NoiseFloor %v, want NaN", got)
	}
}

// FuzzNoiseFloor pins the estimator's two defining properties over
// random noise draws and sparse on-grid signal contamination:
//
//   - scale equivariance: NoiseFloor(c·h) = c·NoiseFloor(h) — robust
//     order statistics are positively homogeneous, so the estimate
//     carries no absolute-scale assumptions;
//   - off-support purity: a sparse signal lifts a minority of grid
//     cells (its support and their strong sidelobes), and the MAD's
//     breakdown point keeps the scale tracking the noise law of the
//     remaining cells — contamination by a signal comparable to the
//     noise moves the estimate by a bounded factor, never
//     proportionally to the signal.
func FuzzNoiseFloor(f *testing.F) {
	f.Add(int64(1), 0.1, 0.05, 3.0, 11.0)
	f.Add(int64(7), 1.0, 0.9, 8.5, 22.0)
	f.Add(int64(42), 0.02, 0.0, 5.0, 5.0)
	pl, err := NewPlan(wifi.Centers(wifi.Bands5GHz()), TauGrid(30e-9, 0.25e-9))
	if err != nil {
		f.Fatal(err)
	}
	n, _ := pl.Dims()
	f.Fuzz(func(t *testing.T, seed int64, sigma, gainFrac, d1, d2 float64) {
		if !(sigma > 1e-6 && sigma < 1e3) || math.IsNaN(gainFrac) || math.IsNaN(d1) || math.IsNaN(d2) {
			t.Skip()
		}
		// Contaminating paths: amplitudes bounded by half the noise sigma
		// so the signal's correlation footprint (which concentrates n-fold
		// atop its support and sidelobes) stays a minority perturbation —
		// the regime the purity property is stated for.
		gain := math.Abs(gainFrac)
		if gain > 1 {
			gain = 1
		}
		gain *= 0.5 * sigma
		clampDelay := func(d float64) float64 {
			d = math.Abs(d)
			return math.Mod(d, 29) * 1e-9
		}
		rng := rand.New(rand.NewSource(seed))
		h := noiseVec(rng, n, sigma)
		pure := pl.NoiseFloor(append(dsp.Vec(nil), h...))
		for i, fr := range pl.Freqs {
			for _, d := range []float64{clampDelay(d1), clampDelay(d2)} {
				ph := math.Mod(-2*math.Pi*fr*d, 2*math.Pi)
				h[i] += dsp.FromPolar(gain, ph)
			}
		}
		got := pl.NoiseFloor(h)
		if math.IsNaN(got) || got < 0 {
			t.Fatalf("NoiseFloor = %v on finite input", got)
		}
		// Scale equivariance (on the contaminated vector).
		const c = 37.5
		scaled := make(dsp.Vec, n)
		for i := range h {
			scaled[i] = h[i] * complex(c, 0)
		}
		if want, gotC := c*got, pl.NoiseFloor(scaled); math.Abs(gotC-want) > 1e-6*math.Abs(want)+1e-12 {
			t.Errorf("scale equivariance: NoiseFloor(c·h) = %v, want %v", gotC, want)
		}
		// Off-support purity: noise-level signal must not swing the
		// estimate beyond a bounded factor of the pure-noise estimate.
		if got < pure/3 || got > pure*3 {
			t.Errorf("off-support purity: contaminated estimate %v vs pure %v (gain %v, sigma %v)", got, pure, gain, sigma)
		}
	})
}
