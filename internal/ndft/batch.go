package ndft

import (
	"fmt"
	"math"
	"math/rand"

	"chronos/internal/dsp"
	"chronos/internal/obs"
)

// SolveRequest is one inversion request against a Plan: the measurement
// vector, an optional warm-start profile on the plan's delay grid, an
// optional recycled Result, and the solver options. The request shape is
// shared by Solve (B=1) and SolveBatch, so single and batched callers
// build the same value.
type SolveRequest struct {
	// H is the measurement vector (length = the plan's frequency count).
	H dsp.Vec
	// Warm, when non-nil, is an initial iterate on the plan's delay grid
	// — typically the previous sweep's converged profile. See Solve.
	Warm dsp.Vec
	// Dst, when non-nil, is reused for the result (its Profile and
	// Magnitude backing arrays are recycled), making steady-state solves
	// allocation-free; nil allocates a fresh Result, which SolveBatch
	// writes back into the request so the caller can read it. Requests
	// in one SolveBatch must carry distinct Dsts (aliasing is rejected
	// at validation — two requests cannot share one Result).
	Dst *Result
	InvertOptions
}

// polishGapFrac scales the solve's duality-gap tolerance down for the
// gap-certified polish exit: the polish pass exists to canonicalize the
// stopped iterate (warm and cold trajectories must land on the same
// restricted optimum), so its own certificate must be much tighter than
// the stop that triggered it — 1/16 keeps the canonical point within the
// agreement tolerances the equivalence fixtures pin while still bounding
// the polish far below its 600-iteration budget on broad noisy supports.
const polishGapFrac = 1.0 / 16

// polishGapExit gates the gap-certified polish exit (ROADMAP PR-5
// follow-on b). Package-internal so the regression test can compare the
// certified exit against the historical fixed-budget polish.
var polishGapExit = true

// Task phases: the stages of the sequential Solve flow a task advances
// through. The polish stages are split by what follows them — a main
// polish is still subject to the restricted solve's KKT audit, a
// fallback polish is not.
const (
	taskMain = iota
	taskPolish
	taskCold
	taskColdPolish
)

// solveTask is one request's solver state, advanced in lockstep with its
// batch. Every floating-point operation a task performs is identical, in
// value and order, to the one the same request performs in a sequential
// Solve — batching changes only which dictionary row is resident when
// the operation runs — so batch results are byte-identical to sequential
// ones regardless of batch composition.
type solveTask struct {
	pl   *Plan
	w    *workspace
	res  *Result
	opts InvertOptions

	alpha, corrInf float64
	corrMaxSq      float64
	needCorr       bool
	warm           dsp.Vec
	useGap         bool
	gapStopped     bool
	restricted     bool
	phase          int

	// Telemetry latches: everGap records that any main/cold phase ended
	// on the gap certificate (gapStopped itself is consumed by
	// startPolish), fellBack that the KKT audit forced the cold
	// fallback. Read once per batch by recordBatch; cleared by the
	// full-struct resets in init and the post-batch zeroing.
	everGap  bool
	fellBack bool

	// Current iterate-phase state (one beginIterate per phase).
	set          []int
	budget, iter int
	curAlpha     float64
	decay        float64
	tMom         float64
	checkAt      int
	allowRestart bool

	// Per-tick state consumed by the shared gradient pass.
	srcRe, srcIm []float64
	thr          float64
	cur          int

	done bool
}

// batchState is the pooled per-SolveBatch scratch: the task array and
// the per-tick list of tasks awaiting the shared gradient pass.
type batchState struct {
	tasks []solveTask
	grad  []*solveTask
	// wss are the batch's workspaces, owned across calls: cycling B
	// workspaces through the plan pool every batch would overflow the
	// pool's per-P ring and allocate; keeping them attached to the
	// (itself pooled) batchState makes steady-state batches allocation
	// free at any B.
	wss []*workspace
	// Lane-kernel staging: the group's residuals in lane-major layout
	// (resT[i*lw+b] for the active tier's lane width lw = batchLanes),
	// the per-group lane-major −h̃ the residual accumulation starts from
	// (rebuilt only when a group's membership changes), the per-row
	// coefficient lanes, and the per-lane dot outputs. The fixed arrays
	// are sized for the widest tier (maxLanes); only the first
	// batchLanes entries are live.
	resTRe, resTIm []float64
	hTRe, hTIm     []float64
	groups         [][maxLanes]*solveTask
	cr, ci         [maxLanes]float64
	gr, gi         [maxLanes]float64
	// Cache-blocked full-grid walk: per-row accumulator chains carried
	// across element tiles (8×batchLanes doubles per row) and the
	// folded per-row lane dots (gr then gi lanes, 2×batchLanes per
	// row).
	state, gT []float64
}

// Solve runs Algorithm 1 on one request — the B=1 thin wrapper over
// SolveBatch, sharing its entire implementation. req.Warm, when non-nil,
// restricts the iteration to a working set (the warm support dilated by
// warmDilate cells), making each iteration proportional to the support
// size rather than the grid size; a final full-grid KKT audit proves the
// excluded atoms inactive, and on violation (the target moved too far)
// the solver transparently falls back to a cold full-grid solve, so warm
// and cold starts converge to the same fixed points. req.Dst, when
// non-nil, is reused for the result, making steady-state solves
// allocation-free. Solve may be called concurrently on one shared Plan.
func (pl *Plan) Solve(req SolveRequest) (*Result, error) {
	var one [1]SolveRequest
	one[0] = req
	if err := pl.SolveBatch(one[:]); err != nil {
		return nil, err
	}
	return one[0].Dst, nil
}

// SolveBatch runs Algorithm 1 on B requests against one plan, advancing
// all of them in lockstep so the iteration's dominant cost — streaming
// the planar dictionary rows — is paid once per round for the whole
// batch instead of once per request (a cache-blocked matrix–matrix
// product: block over dictionary rows, stride over the B right-hand
// sides). Each request keeps its own α-continuation schedule, duality-gap
// stopping, warm-start working set, polish pass, and KKT audit, and its
// result is byte-identical to the sequential Solve of the same request:
// batching changes only which dictionary row is cache-resident when an
// operation runs, never the operations themselves or their order within
// a request.
//
// All requests are validated before any solving starts — shape checks
// plus a rejection of two requests sharing one non-nil Dst — and on
// error (the returned error names the failing request index) no request
// has been solved. Results are written to each request's Dst, allocating
// one when nil, so callers read reqs[i].Dst after return. Steady-state
// batches with recycled Dsts allocate nothing.
func (pl *Plan) SolveBatch(reqs []SolveRequest) error {
	if len(reqs) == 0 {
		return nil
	}
	wallStart := obs.Tick()
	n, m := pl.n, pl.m
	for i := range reqs {
		if len(reqs[i].H) != n {
			return fmt.Errorf("ndft: request %d: measurement length %d != %d frequencies", i, len(reqs[i].H), n)
		}
		if reqs[i].Warm != nil && len(reqs[i].Warm) != m {
			return fmt.Errorf("ndft: request %d: warm start length %d != %d grid points", i, len(reqs[i].Warm), m)
		}
		if reqs[i].Dst == nil {
			continue
		}
		// Two requests finalizing into one Result would silently
		// overwrite each other; reject the aliasing up front.
		for k := 0; k < i; k++ {
			if reqs[k].Dst == reqs[i].Dst {
				return fmt.Errorf("ndft: request %d: Dst aliases request %d's (each request needs its own Result)", i, k)
			}
		}
	}

	bs := pl.bs.Get().(*batchState)
	if cap(bs.tasks) < len(reqs) {
		bs.tasks = make([]solveTask, len(reqs))
		bs.grad = make([]*solveTask, 0, len(reqs))
	}
	bs.tasks = bs.tasks[:len(reqs)]
	for i := range bs.groups {
		// Task pointers recycle across calls: stale membership snapshots
		// must not pass the lane groups' change detection.
		bs.groups[i] = [maxLanes]*solveTask{}
	}
	for len(bs.wss) < len(reqs) {
		bs.wss = append(bs.wss, pl.getWorkspace())
	}
	for i := range reqs {
		if reqs[i].Dst == nil {
			reqs[i].Dst = &Result{}
		}
		bs.tasks[i].init(pl, &reqs[i], bs.wss[i])
	}

	// The Fᴴh̃ correlation pass is a dense adjoint product per request;
	// batch it over the dictionary rows like the iterations.
	pl.corrPass(bs.tasks)
	for i := range bs.tasks {
		bs.tasks[i].start()
	}

	// Lockstep driver: each round, every unfinished task sets up one
	// iteration (previous-iterate copy, sparse forward residual), the
	// shared gradient pass streams the dictionary once for all of them,
	// and each task finishes its iteration (momentum, continuation,
	// stopping, phase transitions). Tasks leave the round-robin as they
	// finalize; stragglers keep iterating with whoever remains.
	for {
		grad := bs.grad[:0]
		for i := range bs.tasks {
			t := &bs.tasks[i]
			for !t.done && t.iter >= t.budget {
				// Degenerate budget (caller passed MaxIter < 1): consume
				// the phase without running an iteration, as the
				// sequential loop would.
				t.afterIterate(t.budget)
			}
			if t.done {
				continue
			}
			t.beginTick()
			grad = append(grad, t)
		}
		bs.grad = grad
		if len(grad) == 0 {
			break
		}
		pl.gradPass(grad, bs)
		for _, t := range grad {
			t.endTick()
		}
	}

	if obs.Enabled() {
		recordBatch(bs.tasks, wallStart)
	}
	for i := range bs.tasks {
		bs.tasks[i] = solveTask{} // drop caller slices before pooling
	}
	bs.grad = bs.grad[:0]
	pl.bs.Put(bs)
	return nil
}

// init binds a task to its request: workspace, defaulted options, and
// the planar split of the measurement. The request pointer is only read,
// never retained.
func (t *solveTask) init(pl *Plan, req *SolveRequest, w *workspace) {
	*t = solveTask{
		pl:   pl,
		w:    w,
		res:  req.Dst,
		opts: req.InvertOptions.withDefaults(req.H),
		warm: req.Warm,
	}
	split(t.w.hRe, t.w.hIm, req.H)
	t.needCorr = t.opts.Alpha == 0 || !t.opts.PlainISTA
}

// start finishes setup after the batched correlation pass — α scaling,
// warm working-set construction or cold initialization, result reset —
// and enters the main iterate phase.
func (t *solveTask) start() {
	pl, w, m := t.pl, t.w, t.pl.m
	if t.needCorr {
		t.corrInf = math.Sqrt(t.corrMaxSq)
	}
	t.alpha = t.opts.Alpha
	if t.alpha == 0 {
		scale := t.opts.AlphaScale
		if scale == 0 {
			scale = 1
		}
		// Default α: a fraction of the largest correlation between the
		// measurement and any single atom, the standard LASSO scaling
		// (α_max = ‖Fᴴh‖∞ zeroes the whole profile; we default to 10%).
		t.alpha = 0.1 * scale * t.corrInf
	}

	// Initialize the iterate and, for warm starts with a usable support,
	// the restricted working set.
	w.active = w.active[:0]
	warm := t.warm
	idx := pl.allIdx
	if warm != nil {
		split(w.pRe, w.pIm, warm)
		for j := 0; j < m; j++ {
			if w.pRe[j] != 0 || w.pIm[j] != 0 {
				w.active = append(w.active, j)
			}
		}
		if len(w.active) == 0 {
			warm = nil // empty seed: run the ordinary cold start
		} else {
			w.idx = w.idx[:0]
			last := -1
			for _, j := range w.active {
				lo, hi := j-warmDilate, j+warmDilate
				if lo <= last {
					lo = last + 1
				}
				if lo < 0 {
					lo = 0
				}
				if hi > m-1 {
					hi = m - 1
				}
				for k := lo; k <= hi; k++ {
					w.idx = append(w.idx, k)
				}
				last = hi
			}
			if len(w.idx) < m {
				idx = w.idx
				t.restricted = true
			}
		}
	}
	if warm == nil {
		if t.opts.Seed != 0 {
			rng := rand.New(rand.NewSource(t.opts.Seed))
			s := norm2Planar(w.hRe, w.hIm) / float64(m)
			for i := 0; i < m; i++ {
				w.pRe[i], w.pIm[i] = rng.NormFloat64()*s, rng.NormFloat64()*s
				w.active = append(w.active, i)
			}
		} else {
			zero(w.pRe)
			zero(w.pIm)
		}
	}
	copy(w.yRe, w.pRe)
	copy(w.yIm, w.pIm)

	res := t.res
	res.Taus = pl.Taus
	res.Iterations, res.Converged, res.Work = 0, false, 0
	res.GapAtStop, res.NoiseFloor = 0, t.opts.NoiseFloor
	res.Parked = false
	// The gap rule needs a tolerance to stop against: the caller's
	// per-sweep noise estimate or an absolute GapTol. Without either the
	// checks could never pass, so they are skipped entirely and the
	// iterate rule decides alone.
	t.useGap = t.opts.Stop == StopGap && !t.opts.PlainISTA &&
		(t.opts.GapTol > 0 || t.opts.NoiseFloor > 0)

	// α-continuation: start with a large threshold that admits only the
	// strongest atoms and decay toward the target α, steering the iterate
	// into the basin of the sparse global optimum before fine fitting
	// begins — important because the non-uniform band lattice makes the
	// dictionary highly coherent (strong grating lobes). A warm start is
	// already in that basin and begins at the target α directly.
	a0 := t.alpha
	if !t.opts.PlainISTA && warm == nil && t.corrInf > t.alpha {
		a0 = t.corrInf * 0.5
	}
	t.phase = taskMain
	t.beginIterate(idx, a0, t.opts.MaxIter, t.restricted)
}

// beginIterate resets the per-phase iteration state — continuation
// schedule, momentum sequence, gap-check cadence — exactly as the
// sequential iterate() entry does.
func (t *solveTask) beginIterate(set []int, a0 float64, budget int, allowRestart bool) {
	t.set = set
	t.budget = budget
	t.iter = 0
	t.allowRestart = allowRestart
	t.curAlpha = a0
	// The continuation schedule must hand the target α a usable slice
	// of the budget: with a forced tiny α (the sparsity ablation) the
	// default decay could still be ramping when the budget expires,
	// and the Epsilon exit — gated on curAlpha == alpha — could then
	// never fire. Steepen the decay so the ramp spends at most half
	// the budget.
	t.decay = contDecay
	if a0 > t.alpha && t.alpha > 0 && budget > 0 {
		if need := math.Log(t.alpha/a0) / math.Log(t.decay); need > float64(budget)/2 {
			t.decay = math.Exp(2 * math.Log(t.alpha/a0) / float64(budget))
		}
	}
	t.tMom = 1
	t.checkAt = gapEvery
	t.res.Converged = false
}

// beginTick opens one iteration: retain the previous iterate, pick the
// gradient's source point, and accumulate its sparse forward residual.
func (t *solveTask) beginTick() {
	w := t.w
	t.iter++
	copy(w.prevRe, w.pRe)
	copy(w.prevIm, w.pIm)
	t.srcRe, t.srcIm = w.pRe, w.pIm
	if !t.opts.PlainISTA {
		t.srcRe, t.srcIm = w.yRe, w.yIm
	}
	// The forward residual resid = F·src − h̃ is owed by the gradient
	// pass (gradPass), which computes it per task — or lane-batched
	// across the group — immediately before the adjoint products.
	t.thr = t.pl.gamma * t.curAlpha
	t.cur = 0
}

// endTick closes the iteration the shared gradient pass just advanced:
// momentum/restart bookkeeping, α-continuation, work accounting, and the
// stopping rules, chaining into the next phase when the iterate ends.
func (t *solveTask) endTick() {
	w, set := t.w, t.set
	var diffSq float64
	w.active = w.active[:0]
	if t.opts.PlainISTA {
		for _, j := range set {
			dr, di := w.pRe[j]-w.prevRe[j], w.pIm[j]-w.prevIm[j]
			diffSq += dr*dr + di*di
			if w.pRe[j] != 0 || w.pIm[j] != 0 {
				w.active = append(w.active, j)
			}
		}
	} else {
		// Adaptive (gradient) restart, O'Donoghue & Candès: when
		// the extrapolated step opposes the direction of progress
		// the momentum has overshot — reset it, turning FISTA's
		// oscillatory tail into near-linear convergence. Restarts
		// run only on restricted working-set solves: the grating
		// lobes of the coherent band lattice make the full-grid
		// LASSO optimum a degenerate face (mass can sit on an
		// alias ghost with the same objective), and on the full
		// grid a restarted trajectory may settle on a ghost vertex
		// that the sustained-momentum trajectory avoids. A working
		// set inherited from the previous fix excludes the ghost
		// family entirely, so restarting there is safe — and it is
		// what lets warm solves converge in tens of iterations
		// instead of ringing for hundreds.
		var gdot float64
		for _, j := range set {
			dr, di := w.pRe[j]-w.prevRe[j], w.pIm[j]-w.prevIm[j]
			diffSq += dr*dr + di*di
			gdot += (w.yRe[j]-w.pRe[j])*dr + (w.yIm[j]-w.pIm[j])*di
		}
		if t.allowRestart && gdot > 0 && t.curAlpha == t.alpha {
			t.tMom = 1
		}
		tNext := (1 + math.Sqrt(1+4*t.tMom*t.tMom)) / 2
		beta := (t.tMom - 1) / tNext
		for _, j := range set {
			dr, di := w.pRe[j]-w.prevRe[j], w.pIm[j]-w.prevIm[j]
			w.yRe[j] = w.pRe[j] + beta*dr
			w.yIm[j] = w.pIm[j] + beta*di
			if w.yRe[j] != 0 || w.yIm[j] != 0 {
				w.active = append(w.active, j)
			}
		}
		t.tMom = tNext
		// Decay the continuation threshold toward the target α,
		// jumping ahead when the iterate has already stalled at
		// the current threshold (further same-α iterations are
		// no-ops the Epsilon exit cannot act on yet).
		if t.curAlpha > t.alpha {
			d := t.decay
			if math.Sqrt(diffSq) < t.opts.Epsilon {
				d = contStallDecay
			}
			t.curAlpha *= d
			if t.curAlpha < t.alpha {
				t.curAlpha = t.alpha
			}
		}
	}

	t.res.Work += int64(len(set))
	if math.Sqrt(diffSq) < t.opts.Epsilon && t.curAlpha == t.alpha {
		t.res.Converged = true
		t.afterIterate(t.iter)
		return
	}
	if (t.gapChecks() || t.preemptPolls()) && t.iter >= t.checkAt {
		if t.preemptPolls() && t.opts.Preempt() {
			t.park()
			return
		}
		if t.gapChecks() {
			stop, s := t.gapCheck()
			if stop {
				t.res.Converged = true
				if t.phase == taskMain || t.phase == taskCold {
					// A gap stop inside the polish is its exit, not a
					// trigger for another polish.
					t.gapStopped = true
					t.everGap = true
				}
				t.afterIterate(t.iter)
				return
			}
			if s >= gapDualGate {
				t.checkAt = t.iter + gapFine
			} else {
				t.checkAt = t.iter + gapEvery
			}
		} else {
			// Preempt-only cadence: no gap tolerance to measure, so the
			// poll just rides the coarse check interval.
			t.checkAt = t.iter + gapEvery
		}
	}
	if t.iter >= t.budget {
		t.afterIterate(t.budget)
	}
}

// preemptPolls reports whether the current phase polls the caller's
// preemption hook: only the main and cold-fallback iterates — a polish
// is short, restricted, and about to finish, so parking it would cost
// more than letting it run out.
func (t *solveTask) preemptPolls() bool {
	return t.opts.Preempt != nil && (t.phase == taskMain || t.phase == taskCold)
}

// park stops a preempted solve at the current iterate: the result
// carries the in-progress profile as a resume seed (Parked set,
// Converged false) and skips the KKT audit, cold fallback, and polish —
// a parked iterate is not an answer, so there is nothing to certify.
// The phase's iterations are booked so Work/Iterations telemetry stays
// an honest account of the cost paid before yielding.
func (t *solveTask) park() {
	t.res.Iterations += t.iter
	t.res.Converged = false
	t.res.Parked = true
	t.restricted = false
	t.finishResid()
	t.finalize()
}

// gapChecks reports whether the current phase runs duality-gap checks:
// the main and fallback iterates whenever a tolerance source exists, and
// — under the gap-certified polish exit — the polish pass too, against
// its polishGapFrac-tightened tolerance.
func (t *solveTask) gapChecks() bool {
	if !t.useGap {
		return false
	}
	if t.phase == taskPolish || t.phase == taskColdPolish {
		return polishGapExit
	}
	return true
}

// gapCheck measures the LASSO duality gap of the current iterate over
// the grid cells in the phase's working set and reports whether the
// solve may stop: the scaled residual θ = min(1, α/‖Fᴴr‖∞)·r is dual
// feasible (on the restricted set; the excluded cells are audited by the
// KKT pass), so
//
//	gap = ½‖r‖² + α‖p‖₁ + ½‖θ‖² + Re⟨θ, h̃⟩
//
// bounds the objective suboptimality. The tolerance is the noise
// energy ½‖w‖² (scaled by GapScale) from the caller's per-sweep
// estimate: once the objective is certified within the energy the
// noise contributes, the remaining iterations fit noise, not paths.
// A check costs about one iteration over the same set, paid once per
// gapEvery. GapAtStop refreshes on every check, so even
// iteration-capped solves report their last certified gap.
func (t *solveTask) gapCheck() (bool, float64) {
	pl, w, set, n := t.pl, t.w, t.set, t.pl.n
	// Residual at the iterate p: the iteration loop's residual is
	// taken at the extrapolation point y, which is not the point the
	// gap certifies. Both scratch residuals are recomputed next
	// iteration, so reusing them here is safe. The support scratch is
	// gsupp, not supp: during a polish the working set itself aliases
	// supp.
	w.gsupp = w.gsupp[:0]
	var l1 float64
	for _, j := range set {
		if w.pRe[j] != 0 || w.pIm[j] != 0 {
			w.gsupp = append(w.gsupp, j)
			l1 += math.Hypot(w.pRe[j], w.pIm[j])
		}
	}
	pl.forwardResid(w, w.pRe, w.pIm, w.gsupp)
	var resSq, rh float64
	for i := 0; i < n; i++ {
		resSq += w.residRe[i]*w.residRe[i] + w.resIm[i]*w.resIm[i]
		rh += w.residRe[i]*w.hRe[i] + w.resIm[i]*w.hIm[i]
	}
	var maxSq float64
	for _, j := range set {
		gr, gi := adjDot(pl.fhRe[j*n:(j+1)*n], pl.fhIm[j*n:(j+1)*n], w.residRe, w.resIm)
		if sq := gr*gr + gi*gi; sq > maxSq {
			maxSq = sq
		}
	}
	t.res.Work += int64(len(set) + len(w.gsupp))
	gInf := math.Sqrt(maxSq)
	s := 1.0
	if gInf > t.alpha && t.alpha > 0 {
		s = t.alpha / gInf
	}
	gap := 0.5*resSq + t.alpha*l1 + 0.5*s*s*resSq + s*rh
	if gap < 0 {
		gap = 0 // rounding on an essentially optimal iterate
	}
	t.res.GapAtStop = gap
	tol := t.opts.GapTol
	if tol == 0 {
		tol = 0.5 * t.opts.GapScale * t.opts.NoiseFloor * t.opts.NoiseFloor
	}
	if t.phase == taskPolish || t.phase == taskColdPolish {
		tol *= polishGapFrac
	}
	return s >= gapDualGate && gap <= tol, s
}

// afterIterate books the finished iterate phase and advances the task:
// main/fallback iterates chain into the polish when gap-stopped, then
// into the residual/KKT epilogue.
func (t *solveTask) afterIterate(consumed int) {
	t.res.Iterations += consumed
	switch t.phase {
	case taskMain, taskCold:
		if t.startPolish() {
			return
		}
	case taskPolish, taskColdPolish:
		// The solve converged by its gap certificate whether or not the
		// polish met the tight tolerance inside its budget.
		t.res.Converged = true
	}
	t.finish()
}

// startPolish canonicalizes a gap-stopped iterate: a restricted solve at
// the tight iterate tolerance over the stopped support (dilated by
// polishDilate cells), costing O(support) per iteration. The gap stop
// decides *when* the dense work may end; the polish pins *where* the
// iterate lands — any two trajectories that stop with the same
// support converge to the same restricted optimum, which is what
// keeps warm-started and cold fixes in agreement under early
// stopping, and sharpens the support amplitudes the downstream
// dominance tests read. Reports whether a polish phase was entered.
func (t *solveTask) startPolish() bool {
	if !t.gapStopped {
		return false
	}
	t.gapStopped = false
	w, m := t.w, t.pl.m
	w.supp = w.supp[:0]
	last := -1
	for j := 0; j < m; j++ {
		if w.pRe[j] == 0 && w.pIm[j] == 0 {
			continue
		}
		lo, hi := j-polishDilate, j+polishDilate
		if lo <= last {
			lo = last + 1
		}
		if lo < 0 {
			lo = 0
		}
		if hi > m-1 {
			hi = m - 1
		}
		for k := lo; k <= hi; k++ {
			w.supp = append(w.supp, k)
		}
		last = hi
	}
	if len(w.supp) == 0 || len(w.supp) >= m {
		return false
	}
	// Fresh momentum sequence seeded at p (y ≡ p is zero outside the
	// polish set, since the set contains the whole support).
	copy(w.yRe, w.pRe)
	copy(w.yIm, w.pIm)
	w.active = w.active[:0]
	for _, j := range w.supp {
		if w.pRe[j] != 0 || w.pIm[j] != 0 {
			w.active = append(w.active, j)
		}
	}
	if t.phase == taskCold {
		t.phase = taskColdPolish
	} else {
		t.phase = taskPolish
	}
	t.beginIterate(w.supp, t.alpha, polishBudget, true)
	return true
}

// finish runs the post-iterate epilogue: the final residual, the KKT
// audit of a restricted solve (falling back to a cold full-grid solve on
// violation, so warm starting can trade iterations but never the
// answer), and result materialization.
func (t *solveTask) finish() {
	pl, w, m := t.pl, t.w, t.pl.m
	t.finishResid()
	if t.restricted {
		t.restricted = false
		t.res.Work += int64(m) // the KKT audit is one dense adjoint pass
		if pl.kktViolated(w, t.alpha) {
			// The optimum left the working set (the target moved farther
			// than warmDilate cells between solves): discard the
			// restricted answer and run the cold full-grid solve.
			t.fellBack = true
			zero(w.pRe)
			zero(w.pIm)
			copy(w.yRe, w.pRe)
			copy(w.yIm, w.pIm)
			w.active = w.active[:0]
			a0 := t.alpha
			if !t.opts.PlainISTA && t.corrInf > t.alpha {
				a0 = t.corrInf * 0.5
			}
			t.phase = taskCold
			t.beginIterate(pl.allIdx, a0, t.opts.MaxIter, false)
			return
		}
	}
	t.finalize()
}

// finishResid recomputes resid = F·p − h̃ at the current iterate.
func (t *solveTask) finishResid() {
	w, m := t.w, t.pl.m
	w.active = w.active[:0]
	for j := 0; j < m; j++ {
		if w.pRe[j] != 0 || w.pIm[j] != 0 {
			w.active = append(w.active, j)
		}
	}
	t.pl.forwardResid(w, w.pRe, w.pIm, w.active)
}

// finalize materializes the Result and releases the workspace.
func (t *solveTask) finalize() {
	w, res, n, m := t.w, t.res, t.pl.n, t.pl.m
	var resSq float64
	for i := 0; i < n; i++ {
		resSq += w.residRe[i]*w.residRe[i] + w.resIm[i]*w.resIm[i]
	}
	res.Residual = math.Sqrt(resSq)

	res.Profile = growVec(res.Profile, m)
	res.Magnitude = growFloats(res.Magnitude, m)
	for j := 0; j < m; j++ {
		res.Profile[j] = complex(w.pRe[j], w.pIm[j])
		res.Magnitude[j] = math.Sqrt(w.pRe[j]*w.pRe[j] + w.pIm[j]*w.pIm[j])
	}
	t.w = nil // the workspace stays owned by the batchState
	t.done = true
}

// corrPass computes ‖Fᴴh̃‖∞ for every task that needs it (the default α
// scaling and the cold continuation ramp), batched over the dictionary
// rows so one row pass serves the whole batch.
func (pl *Plan) corrPass(tasks []solveTask) {
	n, m := pl.n, pl.m
	for j := 0; j < m; j++ {
		aRe, aIm := pl.fhRe[j*n:(j+1)*n], pl.fhIm[j*n:(j+1)*n]
		for i := range tasks {
			t := &tasks[i]
			if !t.needCorr {
				continue
			}
			cr, ci := adjDot(aRe, aIm, t.w.hRe, t.w.hIm)
			if sq := cr*cr + ci*ci; sq > t.corrMaxSq {
				t.corrMaxSq = sq
			}
		}
	}
}

// gradPass is the batch's shared gradient step: for every task,
// p ← SPARSIFY(src − γ·(Fᴴ·resid), γα), fused per grid cell. Tasks are
// partitioned into lane groups of the active tier's width (batchLanes);
// within a group the pass
// walks the union of the members' next rows in ascending order (the
// working sets are ascending), so each dictionary row is streamed once
// per round for the whole group — the cache-blocked matrix–matrix
// product, with the B right-hand sides striding the SIMD lanes. The
// per-task arithmetic is identical on every path (vector lane, scalar
// group, single-task fast path), which is what makes batch results
// byte-identical to sequential ones.
func (pl *Plan) gradPass(tasks []*solveTask, bs *batchState) {
	if len(tasks) == 1 {
		pl.gradTask(tasks[0])
		return
	}
	vector := activeTier != tierScalar
	if vector && pl.fullLockstep(tasks) {
		pl.gradFullLanes(tasks, bs)
		return
	}
	lw := batchLanes
	for g := 0; g < len(tasks); g += lw {
		end := g + lw
		if end > len(tasks) {
			end = len(tasks)
		}
		group := tasks[g:end]
		if vector && len(group) > 1 {
			pl.gradGroupLanes(group, g/lw, bs)
		} else if len(group) == 1 {
			pl.gradTask(group[0])
		} else {
			pl.gradGroupScalar(group)
		}
	}
}

// fullLockstep reports whether every task is about to walk the whole
// grid from the top — the cold-batch service case, where the adjoint
// pass of all lane groups fuses into one cache-blocked matrix–matrix
// product.
func (pl *Plan) fullLockstep(tasks []*solveTask) bool {
	for _, t := range tasks {
		if t.cur != 0 || len(t.set) != pl.m {
			return false
		}
	}
	return true
}

// laneStage prepares one lane group's forward residual in lane-major
// layout: the buffer starts as a copy of the members' (negated,
// lane-transposed) measurements — rebuilt only when the group's
// membership changes — and then walks the ascending union of the
// members' source supports, each dictionary column streamed once while
// the tier's axpy kernel scatters coef·column into exactly the lanes
// whose task carries it. Masked stores leave the other lanes untouched,
// and the ascending walk visits every task's support in its own
// (ascending) order, so each lane's accumulation chain is the scalar
// forwardResid's, bit for bit.
func (pl *Plan) laneStage(tasks []*solveTask, gi int, bs *batchState, resTRe, resTIm []float64) {
	n, m := pl.n, pl.m
	lw := batchLanes
	stride := n * lw
	for len(bs.groups) <= gi {
		bs.groups = append(bs.groups, [maxLanes]*solveTask{})
	}
	if len(bs.hTRe) < (gi+1)*stride {
		hTRe := make([]float64, (gi+1)*stride)
		hTIm := make([]float64, (gi+1)*stride)
		copy(hTRe, bs.hTRe)
		copy(hTIm, bs.hTIm)
		bs.hTRe, bs.hTIm = hTRe, hTIm
	}
	hTRe := bs.hTRe[gi*stride : (gi+1)*stride]
	hTIm := bs.hTIm[gi*stride : (gi+1)*stride]
	mem := &bs.groups[gi]
	changed := false
	for b := 0; b < lw; b++ {
		var tb *solveTask
		if b < len(tasks) {
			tb = tasks[b]
		}
		if mem[b] != tb {
			mem[b], changed = tb, true
		}
	}
	if changed {
		// Membership shifts only when a task finishes; in steady state
		// the per-tick residual start is a straight copy.
		for b := 0; b < lw; b++ {
			if b < len(tasks) {
				w := tasks[b].w
				for i := 0; i < n; i++ {
					hTRe[i*lw+b] = -w.hRe[i]
					hTIm[i*lw+b] = -w.hIm[i]
				}
			} else {
				for i := 0; i < n; i++ {
					hTRe[i*lw+b] = 0
					hTIm[i*lw+b] = 0
				}
			}
		}
	}
	copy(resTRe, hTRe)
	copy(resTIm, hTIm)

	var pos [maxLanes]int
	for {
		j := m
		for b, t := range tasks {
			if a := t.w.active; pos[b] < len(a) && a[pos[b]] < j {
				j = a[pos[b]]
			}
		}
		if j == m {
			return
		}
		var mask uint64
		for b, t := range tasks {
			if a := t.w.active; pos[b] < len(a) && a[pos[b]] == j {
				pos[b]++
				mask |= 1 << b
				bs.cr[b], bs.ci[b] = t.srcRe[j], t.srcIm[j]
			}
		}
		kernAxpy(&pl.fhRe[j*n], &pl.fhIm[j*n], &bs.cr[0], &bs.ci[0], &resTRe[0], &resTIm[0], n, mask)
	}
}

// gradFullLanes is the batch's cache-blocked matrix–matrix product: with
// every task walking the full grid in lockstep, the adjoint pass blocks
// the dictionary rows over L1-resident element tiles of the lane-major
// residuals, the B right-hand sides striding the SIMD lanes of every
// group — so each dictionary row slice is loaded once per tick for ALL
// groups, not once per group. Each row's accumulator chains are carried
// across tiles in exact reference order (the tier's chunked dot
// kernel), keeping every task's dot bit-identical to the scalar path.
func (pl *Plan) gradFullLanes(tasks []*solveTask, bs *batchState) {
	n, m := pl.n, pl.m
	gamma := pl.gamma
	lw := batchLanes
	stride := n * lw
	ng := (len(tasks) + lw - 1) / lw
	if cap(bs.resTRe) < ng*stride {
		bs.resTRe = make([]float64, ng*stride)
		bs.resTIm = make([]float64, ng*stride)
	}
	resTRe, resTIm := bs.resTRe[:ng*stride], bs.resTIm[:ng*stride]
	for g := 0; g < ng; g++ {
		end := (g + 1) * lw
		if end > len(tasks) {
			end = len(tasks)
		}
		pl.laneStage(tasks[g*lw:end], g, bs,
			resTRe[g*stride:(g+1)*stride], resTIm[g*stride:(g+1)*stride])
	}

	if cap(bs.state) < ng*m*8*lw {
		bs.state = make([]float64, ng*m*8*lw)
	}
	if cap(bs.gT) < ng*m*2*lw {
		bs.gT = make([]float64, ng*m*2*lw)
	}
	state, gT := bs.state, bs.gT
	// All groups' residual tiles must share L1 with the row slice and
	// the accumulator stream, so the element tile shrinks as groups are
	// added (kept a multiple of 4 to preserve chain phase).
	tile := dotTile / ng
	if tile < 32 {
		tile = 32
	}
	tile &^= 3
	for i0 := 0; i0 < n; i0 += tile {
		tl := tile
		if n-i0 < tl {
			tl = n - i0
		}
		var mode uint64
		if i0 == 0 {
			mode |= 1
		}
		if i0+tl == n {
			mode |= 2
		}
		for j := 0; j < m; j++ {
			for g := 0; g < ng; g++ {
				// State and output interleave the groups by row
				// ((j·ng+g)-major) so the accumulator traffic is one
				// sequential stream however many groups run.
				kernDotChunk(&pl.fhRe[j*n+i0], &pl.fhIm[j*n+i0],
					&resTRe[g*stride+i0*lw], &resTIm[g*stride+i0*lw], tl,
					&state[(j*ng+g)*8*lw], &gT[(j*ng+g)*2*lw], mode, n*8)
			}
		}
	}

	for i, t := range tasks {
		g, b := i/lw, i%lw
		w := t.w
		thr := t.thr
		thrSq := thr * thr
		srcRe, srcIm := t.srcRe, t.srcIm
		for j := 0; j < m; j++ {
			pr := srcRe[j] - gamma*gT[(j*ng+g)*2*lw+b]
			pi := srcIm[j] - gamma*gT[(j*ng+g)*2*lw+lw+b]
			if sq := pr*pr + pi*pi; sq <= thrSq { // "<=" also zeroes sq==thrSq==0, avoiding 0/0 below
				w.pRe[j], w.pIm[j] = 0, 0
			} else {
				a := math.Sqrt(sq)
				sc := (a - thr) / a
				w.pRe[j], w.pIm[j] = pr*sc, pi*sc
			}
		}
		t.cur = len(t.set)
	}
}

// gradGroupLanes runs one lane group's gradient step through the
// vectorized kernels, one solver task per SIMD lane: laneStage
// accumulates the members' forward residuals in a lane-major buffer,
// then the adjoint pass walks the ascending union of the members'
// working sets, each dictionary row streamed once while the tier's dot
// kernel computes every member's dot in its own lane with the reference
// scalar chain arithmetic (bit-identical per task). Lanes whose task
// does not need the row compute a discarded dot — cheaper than masking.
// The soft-threshold shrink stays scalar per task.
func (pl *Plan) gradGroupLanes(tasks []*solveTask, gi int, bs *batchState) {
	n, m := pl.n, pl.m
	gamma := pl.gamma
	stride := n * batchLanes
	if cap(bs.resTRe) < stride {
		bs.resTRe = make([]float64, stride)
		bs.resTIm = make([]float64, stride)
	}
	resTRe, resTIm := bs.resTRe[:stride], bs.resTIm[:stride]
	pl.laneStage(tasks, gi, bs, resTRe, resTIm)

	for {
		// The next dictionary row any member still needs; restricted
		// tasks skip the rows between their working-set cells.
		j := m
		for _, t := range tasks {
			if t.cur < len(t.set) && t.set[t.cur] < j {
				j = t.set[t.cur]
			}
		}
		if j == m {
			return
		}
		kernDot(&pl.fhRe[j*n], &pl.fhIm[j*n], &resTRe[0], &resTIm[0], n, &bs.gr[0], &bs.gi[0])
		for b, t := range tasks {
			if t.cur >= len(t.set) || t.set[t.cur] != j {
				continue
			}
			t.cur++
			w := t.w
			thr := t.thr
			thrSq := thr * thr
			pr := t.srcRe[j] - gamma*bs.gr[b]
			pi := t.srcIm[j] - gamma*bs.gi[b]
			if sq := pr*pr + pi*pi; sq <= thrSq { // "<=" also zeroes sq==thrSq==0, avoiding 0/0 below
				w.pRe[j], w.pIm[j] = 0, 0
			} else {
				a := math.Sqrt(sq)
				sc := (a - thr) / a
				w.pRe[j], w.pIm[j] = pr*sc, pi*sc
			}
		}
	}
}

// gradTask is the single-task gradient step — the scalar reference
// path, byte-for-byte the arithmetic every other gradPass path must
// reproduce. The adjoint dot product goes through adjDot, the one
// tier-dispatched implementation of the fixed-K chain contract (cdot on
// the scalar tier, the lane kernel otherwise — same bits either way).
// The shrinkage test compares squared magnitudes so the (dominant)
// zeroed taps never pay for a square root. Keep this body, the scalar
// group body, and the vector kernels in sync.
func (pl *Plan) gradTask(t *solveTask) {
	n := pl.n
	gamma := pl.gamma
	{
		srcRe, srcIm := t.srcRe, t.srcIm
		w := t.w
		// resid = F·src − h̃, accumulated over src's support only: the
		// soft-thresholded iterate is sparse, so the forward product
		// touches a few dozen dictionary columns, not the whole grid.
		pl.forwardResid(w, srcRe, srcIm, w.active)
		thr := t.thr
		thrSq := thr * thr
		rRe, rIm := w.residRe[:n], w.resIm[:n]
		for _, j := range t.set {
			gr, gi := adjDot(pl.fhRe[j*n:(j+1)*n], pl.fhIm[j*n:(j+1)*n], rRe, rIm)
			pr := srcRe[j] - gamma*gr
			pi := srcIm[j] - gamma*gi
			if sq := pr*pr + pi*pi; sq <= thrSq { // "<=" also zeroes sq==thrSq==0, avoiding 0/0 below
				w.pRe[j], w.pIm[j] = 0, 0
			} else {
				a := math.Sqrt(sq)
				sc := (a - thr) / a
				w.pRe[j], w.pIm[j] = pr*sc, pi*sc
			}
		}
	}
}

// gradGroupScalar is the scalar fallback for a lane group when the
// vector kernel is unavailable: the same row-union walk as the lane
// path and the same adjDot per task as gradTask, so results are
// identical on every architecture.
func (pl *Plan) gradGroupScalar(tasks []*solveTask) {
	n, m := pl.n, pl.m
	gamma := pl.gamma
	for _, t := range tasks {
		pl.forwardResid(t.w, t.srcRe, t.srcIm, t.w.active)
	}
	for {
		// The next dictionary row any task still needs; restricted tasks
		// skip the rows between their working-set cells.
		j := m
		for _, t := range tasks {
			if t.cur < len(t.set) && t.set[t.cur] < j {
				j = t.set[t.cur]
			}
		}
		if j == m {
			return
		}
		aRe, aIm := pl.fhRe[j*n:(j+1)*n], pl.fhIm[j*n:(j+1)*n]
		for _, t := range tasks {
			if t.cur >= len(t.set) || t.set[t.cur] != j {
				continue
			}
			t.cur++
			srcRe, srcIm := t.srcRe, t.srcIm
			w := t.w
			thr := t.thr
			thrSq := thr * thr
			gr, gi := adjDot(aRe, aIm, w.residRe[:n], w.resIm[:n])
			pr := srcRe[j] - gamma*gr
			pi := srcIm[j] - gamma*gi
			if sq := pr*pr + pi*pi; sq <= thrSq { // "<=" also zeroes sq==thrSq==0, avoiding 0/0 below
				w.pRe[j], w.pIm[j] = 0, 0
			} else {
				a := math.Sqrt(sq)
				sc := (a - thr) / a
				w.pRe[j], w.pIm[j] = pr*sc, pi*sc
			}
		}
	}
}

// norm2Planar is ‖h‖₂ over the planar split — the random-initialization
// scale the sequential path computed from the complex vector.
func norm2Planar(re, im []float64) float64 {
	var s float64
	for i := range re {
		s += re[i]*re[i] + im[i]*im[i]
	}
	return math.Sqrt(s)
}
