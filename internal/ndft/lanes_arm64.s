//go:build !ndft_noasm

// NEON 4-lane ports of the batch kernels plus the single-solve kernels.
// A 4-lane logical vector is a pair of 2×float64 q-registers; every
// lane performs the reference scalar accumulator-chain arithmetic
// exactly, mirroring the AVX2 bodies instruction for instruction. The
// Go arm64 assembler exposes only the fused vector FP forms (VFMLA /
// VFMLS), and fusing would change rounding and break the byte-identity
// contract — so the non-fused FMUL.2D / FADD.2D / FSUB.2D and the
// DUP-element broadcast are emitted as WORD-encoded instructions via
// the macros below.

#include "textflag.h"

// d = n * m  (FMUL Vd.2D, Vn.2D, Vm.2D)
#define VFMUL2D(m, n, d) WORD $(0x6E60DC00 | (m)<<16 | (n)<<5 | (d))
// d = n + m  (FADD Vd.2D, Vn.2D, Vm.2D)
#define VFADD2D(m, n, d) WORD $(0x4E60D400 | (m)<<16 | (n)<<5 | (d))
// d = n - m  (FSUB Vd.2D, Vn.2D, Vm.2D)
#define VFSUB2D(m, n, d) WORD $(0x4EE0D400 | (m)<<16 | (n)<<5 | (d))
// d.2D = broadcast n.D[0]  (DUP Vd.2D, Vn.D[0])
#define VDUPD0(n, d) WORD $(0x4E080400 | (n)<<5 | (d))

// Broadcast the next row element at Rp (post-incremented by 8) across
// the 2D vector v (the matching scalar register Fd = Dv), via the
// integer register Rs.
#define BCAST(Rp, Rs, Fd, v) \
	MOVD.P 8(Rp), Rs; \
	FMOVD  Rs, Fd; \
	VDUPD0(v, v)

// One adjoint-dot element update for chain c: given broadcasts ar=V16,
// ai=V17 and lane loads br=V18/V19, bi=V20/V21,
//   gr_c += ar*br - ai*bi   (chain regs gr0/gr1)
//   gi_c += ar*bi + ai*br   (chain regs gi0/gi1)
// with temps V22..V25, in the exact scalar operation order:
// t=ar*br, u=ai*bi, t=t-u, gr+=t; t=ar*bi, u=ai*br, t=t+u, gi+=t.
#define DOTSTEP(gr0, gr1, gi0, gi1) \
	VFMUL2D(18, 16, 22); \
	VFMUL2D(19, 16, 23); \
	VFMUL2D(20, 17, 24); \
	VFMUL2D(21, 17, 25); \
	VFSUB2D(24, 22, 22); \
	VFSUB2D(25, 23, 23); \
	VFADD2D(22, gr0, gr0); \
	VFADD2D(23, gr1, gr1); \
	VFMUL2D(20, 16, 22); \
	VFMUL2D(21, 16, 23); \
	VFMUL2D(18, 17, 24); \
	VFMUL2D(19, 17, 25); \
	VFADD2D(24, 22, 22); \
	VFADD2D(25, 23, 23); \
	VFADD2D(22, gi0, gi0); \
	VFADD2D(23, gi1, gi1)

// Load one element's broadcasts and lane vectors, advancing the
// pointers: row re/im from R0/R1 (+8 each), resT re lanes into V18/V19
// from R2 (+32), resT im lanes into V20/V21 from R3 (+32).
#define LOADELEM \
	BCAST(R0, R8, F16, 16); \
	BCAST(R1, R8, F17, 17); \
	VLD1.P 32(R2), [V18.D2, V19.D2]; \
	VLD1.P 32(R3), [V20.D2, V21.D2]

// func dot4neon(rowRe, rowIm, resTRe, resTIm *float64, n int, grOut, giOut *float64)
//
// Four independent lane dot products of the shared adjoint row against
// the lane-transposed residuals (resT[i*4+b] = lane b element i), with
// the fixed-K cdot chain contract: element i feeds chain i mod 4, the
// k mod 4 tail feeds chain 0, fold is (s0+s1)+(s2+s3).
TEXT ·dot4neon(SB), NOSPLIT, $0-56
	MOVD rowRe+0(FP), R0
	MOVD rowIm+8(FP), R1
	MOVD resTRe+16(FP), R2
	MOVD resTIm+24(FP), R3
	MOVD n+32(FP), R4

	// gr chains 0..3 = V0/V1, V2/V3, V4/V5, V6/V7;
	// gi chains 0..3 = V8/V9, V10/V11, V12/V13, V14/V15.
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16
	VEOR V4.B16, V4.B16, V4.B16
	VEOR V5.B16, V5.B16, V5.B16
	VEOR V6.B16, V6.B16, V6.B16
	VEOR V7.B16, V7.B16, V7.B16
	VEOR V8.B16, V8.B16, V8.B16
	VEOR V9.B16, V9.B16, V9.B16
	VEOR V10.B16, V10.B16, V10.B16
	VEOR V11.B16, V11.B16, V11.B16
	VEOR V12.B16, V12.B16, V12.B16
	VEOR V13.B16, V13.B16, V13.B16
	VEOR V14.B16, V14.B16, V14.B16
	VEOR V15.B16, V15.B16, V15.B16

loop4:
	CMP $4, R4
	BLT tail

	LOADELEM
	DOTSTEP(0, 1, 8, 9)
	LOADELEM
	DOTSTEP(2, 3, 10, 11)
	LOADELEM
	DOTSTEP(4, 5, 12, 13)
	LOADELEM
	DOTSTEP(6, 7, 14, 15)

	SUB $4, R4
	B   loop4

tail:
	CBZ R4, done

	LOADELEM
	DOTSTEP(0, 1, 8, 9)

	SUB $1, R4
	B   tail

done:
	// Pinned fold (s0+s1)+(s2+s3), per lane half.
	VFADD2D(2, 0, 0)
	VFADD2D(3, 1, 1)
	VFADD2D(6, 4, 4)
	VFADD2D(7, 5, 5)
	VFADD2D(4, 0, 0)
	VFADD2D(5, 1, 1)
	VFADD2D(10, 8, 8)
	VFADD2D(11, 9, 9)
	VFADD2D(14, 12, 12)
	VFADD2D(15, 13, 13)
	VFADD2D(12, 8, 8)
	VFADD2D(13, 9, 9)
	MOVD grOut+40(FP), R5
	MOVD giOut+48(FP), R6
	VST1 [V0.D2, V1.D2], (R5)
	VST1 [V8.D2, V9.D2], (R6)
	RET

// func axpy4neon(rowRe, rowIm, coefRe, coefIm, resTRe, resTIm *float64, n int, mask *uint64)
//
// Lane-masked forward-residual accumulation. mask points at 4 qwords
// (all-ones for active lanes, zero otherwise — kernels.go's axpyMask
// table); the new lane values are computed in temporaries and blended
// into the old ones with BIT under the mask before a full store, so
// masked-out lanes keep their exact prior bits. Each active lane
// performs the scalar forwardResid chain arithmetic (the sign-folded
// dstRe += ar*cr + rowIm*ci form; see axpy8avx512).
TEXT ·axpy4neon(SB), NOSPLIT, $0-64
	MOVD rowRe+0(FP), R0
	MOVD rowIm+8(FP), R1
	MOVD coefRe+16(FP), R2
	MOVD coefIm+24(FP), R3
	MOVD resTRe+32(FP), R4
	MOVD resTIm+40(FP), R5
	MOVD n+48(FP), R6
	MOVD mask+56(FP), R7

	VLD1 (R7), [V26.D2, V27.D2] // lane mask
	VLD1 (R2), [V2.D2, V3.D2]   // cr lanes
	VLD1 (R3), [V4.D2, V5.D2]   // ci lanes

axloop:
	CBZ R6, axdone

	BCAST(R0, R8, F16, 16) // ar
	BCAST(R1, R8, F17, 17) // rowIm[i]

	// dstRe += ar*cr + rowIm*ci
	VFMUL2D(2, 16, 22)
	VFMUL2D(3, 16, 23)
	VFMUL2D(4, 17, 24)
	VFMUL2D(5, 17, 25)
	VFADD2D(24, 22, 22)
	VFADD2D(25, 23, 23)
	VLD1 (R4), [V18.D2, V19.D2]
	VFADD2D(18, 22, 22)
	VFADD2D(19, 23, 23)
	VBIT V26.B16, V22.B16, V18.B16
	VBIT V27.B16, V23.B16, V19.B16
	VST1.P [V18.D2, V19.D2], 32(R4)

	// dstIm += ar*ci - rowIm*cr
	VFMUL2D(4, 16, 22)
	VFMUL2D(5, 16, 23)
	VFMUL2D(2, 17, 24)
	VFMUL2D(3, 17, 25)
	VFSUB2D(24, 22, 22)
	VFSUB2D(25, 23, 23)
	VLD1 (R5), [V18.D2, V19.D2]
	VFADD2D(18, 22, 22)
	VFADD2D(19, 23, 23)
	VBIT V26.B16, V22.B16, V18.B16
	VBIT V27.B16, V23.B16, V19.B16
	VST1.P [V18.D2, V19.D2], 32(R5)

	SUB $1, R6
	B   axloop

axdone:
	RET

// func dotChunk4neon(rowRe, rowIm, resTRe, resTIm *float64, k int, state, out *float64, mode uint64, stride int)
//
// Tiled variant of dot4neon: the same eight accumulator chains carried
// across element tiles in a 32-double per-row state (layout internal to
// the kernel, V0..V15 in order). mode bit 0 starts the row (zero
// chains), bit 1 ends it (fold and write the 8-double gr|gi lane
// outputs). Tiles start at multiples of 4, preserving chain phase.
// stride is accepted for signature parity with the amd64 tiers; the
// explicit prefetch is omitted here.
TEXT ·dotChunk4neon(SB), NOSPLIT, $0-72
	MOVD rowRe+0(FP), R0
	MOVD rowIm+8(FP), R1
	MOVD resTRe+16(FP), R2
	MOVD resTIm+24(FP), R3
	MOVD k+32(FP), R4
	MOVD state+40(FP), R5
	MOVD mode+56(FP), R7

	TBZ $0, R7, ckload
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16
	VEOR V4.B16, V4.B16, V4.B16
	VEOR V5.B16, V5.B16, V5.B16
	VEOR V6.B16, V6.B16, V6.B16
	VEOR V7.B16, V7.B16, V7.B16
	VEOR V8.B16, V8.B16, V8.B16
	VEOR V9.B16, V9.B16, V9.B16
	VEOR V10.B16, V10.B16, V10.B16
	VEOR V11.B16, V11.B16, V11.B16
	VEOR V12.B16, V12.B16, V12.B16
	VEOR V13.B16, V13.B16, V13.B16
	VEOR V14.B16, V14.B16, V14.B16
	VEOR V15.B16, V15.B16, V15.B16
	B    ckbody

ckload:
	VLD1.P 64(R5), [V0.D2, V1.D2, V2.D2, V3.D2]
	VLD1.P 64(R5), [V4.D2, V5.D2, V6.D2, V7.D2]
	VLD1.P 64(R5), [V8.D2, V9.D2, V10.D2, V11.D2]
	VLD1   (R5), [V12.D2, V13.D2, V14.D2, V15.D2]

ckbody:

ckloop4:
	CMP $4, R4
	BLT cktail

	LOADELEM
	DOTSTEP(0, 1, 8, 9)
	LOADELEM
	DOTSTEP(2, 3, 10, 11)
	LOADELEM
	DOTSTEP(4, 5, 12, 13)
	LOADELEM
	DOTSTEP(6, 7, 14, 15)

	SUB $4, R4
	B   ckloop4

cktail:
	CBZ R4, ckdone

	LOADELEM
	DOTSTEP(0, 1, 8, 9)

	SUB $1, R4
	B   cktail

ckdone:
	TBNZ $1, R7, ckreduce
	MOVD state+40(FP), R5
	VST1.P [V0.D2, V1.D2, V2.D2, V3.D2], 64(R5)
	VST1.P [V4.D2, V5.D2, V6.D2, V7.D2], 64(R5)
	VST1.P [V8.D2, V9.D2, V10.D2, V11.D2], 64(R5)
	VST1   [V12.D2, V13.D2, V14.D2, V15.D2], (R5)
	RET

ckreduce:
	VFADD2D(2, 0, 0)
	VFADD2D(3, 1, 1)
	VFADD2D(6, 4, 4)
	VFADD2D(7, 5, 5)
	VFADD2D(4, 0, 0)
	VFADD2D(5, 1, 1)
	VFADD2D(10, 8, 8)
	VFADD2D(11, 9, 9)
	VFADD2D(14, 12, 12)
	VFADD2D(15, 13, 13)
	VFADD2D(12, 8, 8)
	VFADD2D(13, 9, 9)
	MOVD   out+48(FP), R6
	VST1.P [V0.D2, V1.D2], 32(R6)
	VST1   [V8.D2, V9.D2], (R6)
	RET

// func dotVecNeon(aRe, aIm, xRe, xIm *float64, k4 int, part *float64)
//
// The single-solve adjoint dot's vector body: the four cdot accumulator
// chains run across the four lanes (lane c = chain c, element 4i+c),
// each lane performing the scalar chain arithmetic exactly. Runs the
// k4 = k&^3 main-loop elements only; the Go wrapper (adjDot) adds the
// tail into chain 0 and applies the pinned fold. part receives the 8
// raw partial sums (sr0..sr3, si0..si3).
TEXT ·dotVecNeon(SB), NOSPLIT, $0-48
	MOVD aRe+0(FP), R0
	MOVD aIm+8(FP), R1
	MOVD xRe+16(FP), R2
	MOVD xIm+24(FP), R3
	MOVD k4+32(FP), R4

	VEOR V0.B16, V0.B16, V0.B16 // sr chains 0/1
	VEOR V1.B16, V1.B16, V1.B16 // sr chains 2/3
	VEOR V2.B16, V2.B16, V2.B16 // si chains 0/1
	VEOR V3.B16, V3.B16, V3.B16 // si chains 2/3

vloop:
	CMP $4, R4
	BLT vdone

	VLD1.P 32(R0), [V4.D2, V5.D2]   // ar
	VLD1.P 32(R1), [V6.D2, V7.D2]   // ai
	VLD1.P 32(R2), [V8.D2, V9.D2]   // br
	VLD1.P 32(R3), [V10.D2, V11.D2] // bi

	VFMUL2D(8, 4, 12)  // ar*br
	VFMUL2D(9, 5, 13)
	VFMUL2D(10, 6, 14) // ai*bi
	VFMUL2D(11, 7, 15)
	VFSUB2D(14, 12, 12) // ar*br - ai*bi
	VFSUB2D(15, 13, 13)
	VFADD2D(12, 0, 0)
	VFADD2D(13, 1, 1)

	VFMUL2D(10, 4, 12) // ar*bi
	VFMUL2D(11, 5, 13)
	VFMUL2D(8, 6, 14)  // ai*br
	VFMUL2D(9, 7, 15)
	VFADD2D(14, 12, 12) // ar*bi + ai*br
	VFADD2D(15, 13, 13)
	VFADD2D(12, 2, 2)
	VFADD2D(13, 3, 3)

	SUB $4, R4
	B   vloop

vdone:
	MOVD part+40(FP), R5
	VST1 [V0.D2, V1.D2, V2.D2, V3.D2], (R5)
	RET

// func axpyColNeon(rowRe, rowIm *float64, cr, ci float64, dstRe, dstIm *float64, n4 int)
//
// The single-solve forward column accumulation:
// dst[i] += conj(row[i])·(cr+i·ci) elementwise, in the sign-folded form
// of the scalar forwardResid body (dstRe += ar*cr + rowIm*ci,
// dstIm += ar*ci - rowIm*cr — exact; see axpy8avx512). Elementwise, so
// there are no chains to preserve; the Go wrapper (axpyCol) handles the
// n&3 tail.
TEXT ·axpyColNeon(SB), NOSPLIT, $0-56
	MOVD  rowRe+0(FP), R0
	MOVD  rowIm+8(FP), R1
	FMOVD cr+16(FP), F2
	VDUPD0(2, 2)
	FMOVD ci+24(FP), F3
	VDUPD0(3, 3)
	MOVD  dstRe+32(FP), R4
	MOVD  dstIm+40(FP), R5
	MOVD  n4+48(FP), R6

acloop:
	CMP $4, R6
	BLT acdone

	VLD1.P 32(R0), [V4.D2, V5.D2] // ar
	VLD1.P 32(R1), [V6.D2, V7.D2] // rowIm

	// dstRe += ar*cr + rowIm*ci
	VFMUL2D(2, 4, 12)
	VFMUL2D(2, 5, 13)
	VFMUL2D(3, 6, 14)
	VFMUL2D(3, 7, 15)
	VFADD2D(14, 12, 12)
	VFADD2D(15, 13, 13)
	VLD1 (R4), [V8.D2, V9.D2]
	VFADD2D(8, 12, 12)
	VFADD2D(9, 13, 13)
	VST1.P [V12.D2, V13.D2], 32(R4)

	// dstIm += ar*ci - rowIm*cr
	VFMUL2D(3, 4, 12)
	VFMUL2D(3, 5, 13)
	VFMUL2D(2, 6, 14)
	VFMUL2D(2, 7, 15)
	VFSUB2D(14, 12, 12)
	VFSUB2D(15, 13, 13)
	VLD1 (R5), [V8.D2, V9.D2]
	VFADD2D(8, 12, 12)
	VFADD2D(9, 13, 13)
	VST1.P [V12.D2, V13.D2], 32(R5)

	SUB $4, R6
	B   acloop

acdone:
	RET
