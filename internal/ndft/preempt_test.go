package ndft

import (
	"math"
	"math/rand"
	"testing"

	"chronos/internal/dsp"
	"chronos/internal/wifi"
)

// preemptFixture builds a plan and a noisy two-path measurement of the
// kind a bulk tracking stream solves: enough noise that a cold solve
// runs well past the first gap-check boundary.
func preemptFixture(t testing.TB) (*Plan, dsp.Vec, InvertOptions) {
	t.Helper()
	freqs := wifi.Centers(wifi.Bands5GHz())
	pl, err := NewPlan(freqs, TauGrid(20e-9, 0.5e-9))
	if err != nil {
		t.Fatal(err)
	}
	n, _ := pl.Dims()
	rng := rand.New(rand.NewSource(23))
	h := synthChannel(freqs, []float64{7, 11.2}, []float64{1, 0.6})
	for i := range h {
		h[i] += complex(rng.NormFloat64()*0.05, rng.NormFloat64()*0.05)
	}
	wNorm := 0.05 * math.Sqrt(2*float64(n))
	return pl, h, InvertOptions{MaxIter: 4000, NoiseFloor: wNorm}
}

// TestSolvePark pins the park contract: with a hook that always asks to
// yield, the solve stops at the first check boundary with the phase's
// iterations booked, Parked set, Converged clear, and a non-empty
// iterate to resume from.
func TestSolvePark(t *testing.T) {
	pl, h, opts := preemptFixture(t)
	opts.Preempt = func() bool { return true }
	res, err := pl.Solve(SolveRequest{H: h, InvertOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Parked || res.Converged {
		t.Fatalf("Parked=%v Converged=%v, want parked and not converged", res.Parked, res.Converged)
	}
	if res.Iterations != gapEvery {
		t.Errorf("parked after %d iterations, want the first check boundary (%d)", res.Iterations, gapEvery)
	}
	nz := 0
	for _, v := range res.Profile {
		if v != 0 {
			nz++
		}
	}
	if nz == 0 {
		t.Error("parked iterate is empty; nothing to resume from")
	}
}

// TestSolveParkResume proves a parked solve is resumable: seeding a
// fresh solve with the parked profile must land on the same fix as the
// never-preempted reference (same first-peak delay, matching residual),
// in fewer iterations than a cold start — the restricted-support resume
// the scheduler's preemption relies on.
func TestSolveParkResume(t *testing.T) {
	pl, h, opts := preemptFixture(t)

	ref, err := pl.Solve(SolveRequest{H: append(dsp.Vec(nil), h...), InvertOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Converged {
		t.Fatal("reference solve did not converge; fixture too noisy")
	}

	popts := opts
	popts.Preempt = func() bool { return true }
	parked, err := pl.Solve(SolveRequest{H: append(dsp.Vec(nil), h...), InvertOptions: popts})
	if err != nil {
		t.Fatal(err)
	}
	if !parked.Parked {
		t.Fatal("solve did not park")
	}

	seed := append(dsp.Vec(nil), parked.Profile...)
	resumed, err := pl.Solve(SolveRequest{H: append(dsp.Vec(nil), h...), Warm: seed, InvertOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Converged {
		t.Fatal("resumed solve did not converge")
	}
	refPeak, ok1 := ref.FirstPeakDelay(0.15)
	resPeak, ok2 := resumed.FirstPeakDelay(0.15)
	if !ok1 || !ok2 {
		t.Fatalf("missing first peak: ref ok=%v resumed ok=%v", ok1, ok2)
	}
	if math.Abs(refPeak-resPeak) > 0.5e-9 {
		t.Errorf("resumed first peak %v, reference %v (off by more than one grid cell)", resPeak, refPeak)
	}
	if resumed.Residual > 1.5*ref.Residual {
		t.Errorf("resumed residual %v far above reference %v", resumed.Residual, ref.Residual)
	}
	if parked.Iterations+resumed.Iterations >= 4000 {
		t.Errorf("park+resume consumed %d+%d iterations; resume did not exploit the parked support",
			parked.Iterations, resumed.Iterations)
	}
}

// TestSolveParkLater checks the poll cadence: a hook that yields only
// after the second boundary parks at a later check, and a hook that
// never fires leaves the result bit-identical to a solve with no hook
// at all.
func TestSolveParkLater(t *testing.T) {
	pl, h, opts := preemptFixture(t)

	polls := 0
	lopts := opts
	lopts.Preempt = func() bool { polls++; return polls > 2 }
	res, err := pl.Solve(SolveRequest{H: append(dsp.Vec(nil), h...), InvertOptions: lopts})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parked && res.Iterations <= gapEvery {
		t.Errorf("parked at iteration %d despite the hook passing the first two polls", res.Iterations)
	}

	ref, err := pl.Solve(SolveRequest{H: append(dsp.Vec(nil), h...), InvertOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	nopts := opts
	nopts.Preempt = func() bool { return false }
	same, err := pl.Solve(SolveRequest{H: append(dsp.Vec(nil), h...), InvertOptions: nopts})
	if err != nil {
		t.Fatal(err)
	}
	if same.Parked {
		t.Fatal("never-firing hook parked the solve")
	}
	if len(same.Profile) != len(ref.Profile) {
		t.Fatalf("profile length %d vs %d", len(same.Profile), len(ref.Profile))
	}
	for j := range same.Profile {
		if same.Profile[j] != ref.Profile[j] {
			t.Fatalf("cell %d: %v != %v — an idle hook must not change results", j, same.Profile[j], ref.Profile[j])
		}
	}
	if same.Iterations != ref.Iterations || same.Converged != ref.Converged {
		t.Fatalf("telemetry diverged: iters %d/%d converged %v/%v",
			same.Iterations, ref.Iterations, same.Converged, ref.Converged)
	}
}
