package ndft

import (
	"math"
	"math/rand"
	"testing"

	"chronos/internal/dsp"
	"chronos/internal/wifi"
)

// synthChannel builds the frequency-domain measurement for paths with
// given delays (ns) and gains across freqs.
func synthChannel(freqs []float64, delaysNs, gains []float64) dsp.Vec {
	h := make(dsp.Vec, len(freqs))
	for i, f := range freqs {
		for k := range delaysNs {
			ph := -2 * math.Pi * f * delaysNs[k] * 1e-9
			h[i] += dsp.FromPolar(gains[k], math.Mod(ph, 2*math.Pi))
		}
	}
	return h
}

func TestTauGrid(t *testing.T) {
	g := TauGrid(10e-9, 1e-9)
	if len(g) != 11 {
		t.Fatalf("len = %d", len(g))
	}
	if g[0] != 0 || math.Abs(g[10]-10e-9) > 1e-18 {
		t.Errorf("endpoints: %v %v", g[0], g[10])
	}
	if TauGrid(0, 1) != nil || TauGrid(1, 0) != nil {
		t.Error("degenerate grids should be nil")
	}
}

func TestNewMatrixErrors(t *testing.T) {
	if _, err := NewMatrix(nil, []float64{1}); err == nil {
		t.Error("empty freqs accepted")
	}
	if _, err := NewMatrix([]float64{1}, nil); err == nil {
		t.Error("empty taus accepted")
	}
}

func TestForwardMatchesDirectEvaluation(t *testing.T) {
	freqs := wifi.Centers(wifi.Bands5GHz())
	taus := TauGrid(30e-9, 0.5e-9)
	m, err := NewMatrix(freqs, taus)
	if err != nil {
		t.Fatal(err)
	}
	// A profile with a single unit tap at grid index 10 must produce
	// exactly the single-path channel at that delay.
	p := make(dsp.Vec, len(taus))
	p[10] = 1
	h := m.Forward(p)
	want := synthChannel(freqs, []float64{taus[10] * 1e9}, []float64{1})
	for i := range h {
		if d := h[i] - want[i]; math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("freq %d: %v vs %v", i, h[i], want[i])
		}
	}
}

func TestInvertSinglePath(t *testing.T) {
	freqs := wifi.Centers(wifi.Bands5GHz())
	taus := TauGrid(50e-9, 0.1e-9)
	m, err := NewMatrix(freqs, taus)
	if err != nil {
		t.Fatal(err)
	}
	trueTau := 7.3e-9
	h := synthChannel(freqs, []float64{7.3}, []float64{1})
	res, err := m.Invert(h, InvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := res.FirstPeakDelay(0.3)
	if !ok {
		t.Fatal("no peak")
	}
	if math.Abs(got-trueTau) > 0.1e-9 {
		t.Errorf("peak at %v, want %v", got, trueTau)
	}
}

func TestInvertFig4ThreePaths(t *testing.T) {
	// The Fig. 4 scenario: 5.2, 10, 16 ns with descending gains. All
	// three peaks must be recovered and the first peak must sit at 5.2 ns.
	freqs := wifi.Centers(wifi.USBands())
	taus := TauGrid(40e-9, 0.1e-9)
	m, err := NewMatrix(freqs, taus)
	if err != nil {
		t.Fatal(err)
	}
	h := synthChannel(freqs, []float64{5.2, 10, 16}, []float64{1, 0.7, 0.5})
	res, err := m.Invert(h, InvertOptions{MaxIter: 4000})
	if err != nil {
		t.Fatal(err)
	}
	first, ok := res.FirstPeakDelay(0.2)
	if !ok {
		t.Fatal("no peak")
	}
	if math.Abs(first-5.2e-9) > 0.2e-9 {
		t.Errorf("first peak at %v, want 5.2 ns", first)
	}
	peaks := dsp.FindPeaks(res.Taus, res.Magnitude, 0.2)
	if len(peaks) < 3 {
		t.Fatalf("recovered %d peaks, want ≥ 3", len(peaks))
	}
	wants := []float64{5.2e-9, 10e-9, 16e-9}
	for _, w := range wants {
		found := false
		for _, p := range peaks {
			if math.Abs(p.X-w) < 0.3e-9 {
				found = true
			}
		}
		if !found {
			t.Errorf("path at %v not recovered; peaks: %+v", w, peaks)
		}
	}
}

func TestInvertProfileIsSparse(t *testing.T) {
	freqs := wifi.Centers(wifi.USBands())
	taus := TauGrid(40e-9, 0.1e-9)
	m, _ := NewMatrix(freqs, taus)
	h := synthChannel(freqs, []float64{5.2, 10, 16}, []float64{1, 0.7, 0.5})
	res, err := m.Invert(h, InvertOptions{MaxIter: 4000})
	if err != nil {
		t.Fatal(err)
	}
	nonzero := 0
	for _, v := range res.Profile {
		if v != 0 {
			nonzero++
		}
	}
	// The L1 prior must keep the solution much sparser than the grid.
	if nonzero > len(taus)/4 {
		t.Errorf("profile has %d/%d nonzeros — not sparse", nonzero, len(taus))
	}
}

func TestInvertNoiseRobust(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	freqs := wifi.Centers(wifi.USBands())
	taus := TauGrid(40e-9, 0.1e-9)
	m, _ := NewMatrix(freqs, taus)
	trueTau := 9.4e-9
	h := synthChannel(freqs, []float64{9.4, 14.1}, []float64{1, 0.6})
	for i := range h {
		h[i] += complex(rng.NormFloat64()*0.05, rng.NormFloat64()*0.05)
	}
	res, err := m.Invert(h, InvertOptions{MaxIter: 4000})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := res.FirstPeakDelay(0.3)
	if !ok {
		t.Fatal("no peak")
	}
	if math.Abs(got-trueTau) > 0.3e-9 {
		t.Errorf("first peak %v, want %v", got, trueTau)
	}
}

func TestInvertAlphaControlsSparsity(t *testing.T) {
	// Bigger α ⇒ fewer nonzeros (§6: "A bigger choice of α leads to
	// fewer non-zero values in p").
	freqs := wifi.Centers(wifi.USBands())
	taus := TauGrid(30e-9, 0.2e-9)
	m, _ := NewMatrix(freqs, taus)
	h := synthChannel(freqs, []float64{5, 9, 13, 21}, []float64{1, 0.8, 0.6, 0.4})

	count := func(alpha float64) int {
		res, err := m.Invert(h, InvertOptions{Alpha: alpha, MaxIter: 3000})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, v := range res.Profile {
			if v != 0 {
				n++
			}
		}
		return n
	}
	corr := make(dsp.Vec, len(taus))
	m.F.MulVecH(corr, h)
	aMax := dsp.NormInf(corr)
	small, large := count(0.01*aMax), count(0.5*aMax)
	if large >= small {
		t.Errorf("nonzeros: α small → %d, α large → %d; want decrease", small, large)
	}
}

func TestInvertDimensionMismatch(t *testing.T) {
	freqs := wifi.Centers(wifi.Bands5GHz())
	m, _ := NewMatrix(freqs, TauGrid(10e-9, 1e-9))
	if _, err := m.Invert(make(dsp.Vec, 3), InvertOptions{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestInvertZeroMeasurement(t *testing.T) {
	freqs := wifi.Centers(wifi.Bands5GHz())
	m, _ := NewMatrix(freqs, TauGrid(10e-9, 1e-9))
	res, err := m.Invert(make(dsp.Vec, len(freqs)), InvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dsp.Norm2(res.Profile) != 0 {
		t.Errorf("zero input produced nonzero profile (norm %v)", dsp.Norm2(res.Profile))
	}
	if !res.Converged {
		t.Error("zero input should converge immediately")
	}
}

func TestInvertRandomInitMatchesZeroInit(t *testing.T) {
	// Algorithm 1 initializes p₀ randomly; the objective is convex, so a
	// random start must reach (nearly) the same first-peak answer.
	freqs := wifi.Centers(wifi.USBands())
	taus := TauGrid(30e-9, 0.2e-9)
	m, _ := NewMatrix(freqs, taus)
	h := synthChannel(freqs, []float64{6.6, 12.2}, []float64{1, 0.5})

	r0, err := m.Invert(h, InvertOptions{MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := m.Invert(h, InvertOptions{MaxIter: 5000, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	p0, ok0 := r0.FirstPeakDelay(0.3)
	p1, ok1 := r1.FirstPeakDelay(0.3)
	if !ok0 || !ok1 {
		t.Fatal("missing peaks")
	}
	if math.Abs(p0-p1) > 0.3e-9 {
		t.Errorf("init sensitivity: %v vs %v", p0, p1)
	}
}

func TestResultResidualSmallOnExactData(t *testing.T) {
	freqs := wifi.Centers(wifi.USBands())
	taus := TauGrid(20e-9, 0.1e-9)
	m, _ := NewMatrix(freqs, taus)
	// Tap exactly on the grid: residual should drop well below the
	// signal norm.
	p := make(dsp.Vec, len(taus))
	p[50] = 1
	h := m.Forward(p)
	res, err := m.Invert(h, InvertOptions{Alpha: 0.01, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 0.2*dsp.Norm2(h) {
		t.Errorf("residual %v vs signal %v", res.Residual, dsp.Norm2(h))
	}
}

func TestDominantPeaksCount(t *testing.T) {
	freqs := wifi.Centers(wifi.USBands())
	taus := TauGrid(40e-9, 0.1e-9)
	m, _ := NewMatrix(freqs, taus)
	h := synthChannel(freqs, []float64{5.2, 10, 16}, []float64{1, 0.7, 0.5})
	res, err := m.Invert(h, InvertOptions{MaxIter: 4000})
	if err != nil {
		t.Fatal(err)
	}
	n := res.DominantPeaks(0.2)
	if n < 3 || n > 6 {
		t.Errorf("dominant peaks = %d, want 3–6", n)
	}
}
