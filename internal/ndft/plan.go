package ndft

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"chronos/internal/dsp"
	"chronos/internal/linalg"
)

// Plan is the precomputed, reusable form of one NDFT inversion problem:
// the dictionary F for a fixed (freqs, taus) pair, its conjugate
// transpose laid out row-major so the adjoint product streams through
// memory, and the Lipschitz/step constants Algorithm 1 needs. A Plan is
// built once per band-group signature and shared: Solve is safe for
// concurrent use (scratch vectors live in an internal pool, one set per
// in-flight solve), and steady-state solves allocate nothing, so the
// per-sweep hot path of the streaming trackers and the campaign worker
// pool never rebuild or reallocate solver state.
//
// Both the dictionary and the iterate vectors are stored as split
// real/imaginary float64 slices ("planar" layout). The solver's inner
// products then run on independent scalar accumulator chains, which the
// interleaved complex128 representation would serialize.
type Plan struct {
	Freqs []float64 // n measurement frequencies (Hz)
	Taus  []float64 // m delay-grid points (seconds)

	n, m int
	// The conjugate-transpose dictionary Fᴴ (m×n), row-major planar. It
	// is the only stored form: the adjoint product walks its rows, and
	// the forward product walks the same rows as conjugated columns of
	// F, so no separate forward copy is kept.
	fhRe, fhIm []float64

	normSq float64 // ‖F‖₂²
	gamma  float64 // ISTA step size 1/‖F‖₂²

	// allIdx is [0, m): the full-grid iteration set, shared by every
	// dense solve so restricted and dense paths run the same loops.
	allIdx []int

	ws sync.Pool // *workspace
}

// interleaved rebuilds the complex form of F from the stored adjoint
// (F[i][k] = conj(Fᴴ[k][i])) — only the Matrix compatibility wrapper
// needs it, so plans resolved through a registry never carry an extra
// forward copy in any layout.
func (pl *Plan) interleaved() *linalg.CMatrix {
	n, m := pl.n, pl.m
	f := linalg.NewCMatrix(n, m)
	for i := 0; i < n; i++ {
		for k := 0; k < m; k++ {
			f.Data[i*m+k] = complex(pl.fhRe[k*n+i], -pl.fhIm[k*n+i])
		}
	}
	return f
}

// workspace is the per-solve scratch state: every vector Algorithm 1
// touches, preallocated at plan dimensions so iterations are
// allocation-free.
type workspace struct {
	hRe, hIm       []float64 // measurement, planar (n)
	residRe, resIm []float64 // F·src − h̃ (n)
	pRe, pIm       []float64 // iterate (m)
	prevRe, prevIm []float64 // previous iterate (m)
	yRe, yIm       []float64 // FISTA extrapolation point (m)
	active         []int     // support of the extrapolation point (≤ m)
	idx            []int     // restricted working set for warm solves (≤ m)
	supp           []int     // support of the iterate at a gap check (≤ m)
	corr           []float64 // correlation magnitudes for the noise MAD (≤ m)
}

// NewPlan precomputes the NDFT dictionary, its adjoint, and the ISTA
// step size for the given frequencies and delay grid. Construction is
// O(n·m) plus a short power iteration; amortize it through a registry
// (see internal/tof) rather than per solve.
func NewPlan(freqs, taus []float64) (*Plan, error) {
	n, m := len(freqs), len(taus)
	if n == 0 || m == 0 {
		return nil, errEmptyGrid
	}
	pl := &Plan{
		Freqs: append([]float64(nil), freqs...),
		Taus:  append([]float64(nil), taus...),
		n:     n, m: m,
		fhRe: make([]float64, n*m), fhIm: make([]float64, n*m),
	}
	f := linalg.NewCMatrix(n, m)
	for i, fr := range freqs {
		for k, tau := range taus {
			ph := -2 * math.Pi * fr * tau
			// Reduce the argument before Sincos: fr·tau can reach 1e1
			// range but ph magnitudes stay modest; Mod keeps precision.
			ph = math.Mod(ph, 2*math.Pi)
			s, c := math.Sincos(ph)
			f.Data[i*m+k] = complex(c, s)
			// Adjoint row k, column i: conj(F[i][k]).
			pl.fhRe[k*n+i], pl.fhIm[k*n+i] = c, -s
		}
	}
	// f is used only for the power iteration below and then released;
	// the planar adjoint is the plan's dictionary.
	pl.allIdx = make([]int, m)
	for j := range pl.allIdx {
		pl.allIdx[j] = j
	}
	norm := f.SpectralNorm(rand.New(rand.NewSource(1)), 40)
	if norm == 0 {
		return nil, errZeroNorm
	}
	pl.normSq = norm * norm
	pl.gamma = 1 / pl.normSq
	pl.ws.New = func() any {
		return &workspace{
			hRe: make([]float64, n), hIm: make([]float64, n),
			residRe: make([]float64, n), resIm: make([]float64, n),
			pRe: make([]float64, m), pIm: make([]float64, m),
			prevRe: make([]float64, m), prevIm: make([]float64, m),
			yRe: make([]float64, m), yIm: make([]float64, m),
			active: make([]int, 0, m), idx: make([]int, 0, m),
			supp: make([]int, 0, m), corr: make([]float64, 0, m),
		}
	}
	return pl, nil
}

// Dims returns the plan's (frequency, delay-grid) dimensions.
func (pl *Plan) Dims() (n, m int) { return pl.n, pl.m }

// Gamma returns the precomputed ISTA step size 1/‖F‖₂².
func (pl *Plan) Gamma() float64 { return pl.gamma }

// warmDilate is the working-set dilation radius, in grid cells, around
// each warm-start support cell: peaks may drift this far between solves
// (several cells covers walking-speed motion and noise wander on the
// default grids) without leaving the restricted set. Drifts beyond the
// set are caught by the KKT check and fall back to a full solve.
const warmDilate = 8

// kktSlack is the multiplicative tolerance on the LASSO optimality bound
// |Fᴴ(F·p−h̃)| ≤ α when auditing grid cells excluded from a restricted
// solve; an excluded cell marginally above α would carry a negligible
// coefficient, so a small slack avoids needless full-grid fallbacks.
const kktSlack = 1.02

// gapEvery and gapFine are the duality-gap check cadences, in
// iterations. A check costs about one iteration over the same working
// set (one sparse forward plus one adjoint pass), so the coarse cadence
// bounds the overhead near 1/gapEvery while the dual-feasibility gate
// is still closed; once a check observes the gate open (the support has
// settled and the stop is near), the cadence tightens to gapFine so the
// stop lands close to the actual tolerance crossing instead of up to a
// whole coarse period past it.
const (
	gapEvery = 25
	gapFine  = 5
)

// gapDualGate is the minimum dual-feasibility scaling s = α/‖Fᴴr‖∞ at
// which a gap check may stop the solve. Early iterations leave signal
// in the residual, which makes the scaled dual point loose and the gap
// bound slack; requiring the gradient to be nearly below α first means
// the support is essentially settled and the remaining work is
// amplitude refinement the noise floor bounds.
const gapDualGate = 0.85

// contDecay is the per-iteration α-continuation decay, and
// contStallDecay the accelerated decay applied when the iterate has
// already converged (‖Δp‖ < ε) at the current continuation threshold:
// the Epsilon exit is gated on the schedule having reached the target α,
// so idling through the remaining schedule at the slow decay would burn
// budget making no progress.
const (
	contDecay      = 0.97
	contStallDecay = 0.7
)

// polishDilate is the working-set dilation around the support of a
// gap-stopped iterate for the amplitude-polish pass, and polishBudget
// its iteration cap. A gap stop certifies the objective within the
// noise energy, but the amplitudes on the found support are still
// mid-trajectory; polishing that support (a restricted solve at the
// tight iterate tolerance) canonicalizes the result — any two
// trajectories that stop with the same support converge to the same
// restricted optimum — and sharpens peak magnitudes for downstream
// dominance tests, at a cost proportional to the support size rather
// than the grid.
const (
	polishDilate = 3
	polishBudget = 600
)

// Solve runs Algorithm 1 on measurement h. warm, when non-nil, is an
// initial iterate on the plan's delay grid — typically the previous
// sweep's converged profile. A warm solve restricts the iteration to a
// working set (the warm support dilated by warmDilate cells), making
// each iteration proportional to the support size rather than the grid
// size; a final full-grid KKT audit proves the excluded atoms inactive,
// and on violation (the target moved too far) the solver transparently
// falls back to a cold full-grid solve, so warm and cold starts converge
// to the same fixed points. dst, when non-nil, is reused for the result
// (its Profile and Magnitude backing arrays are recycled), making
// steady-state solves allocation-free; pass nil to allocate a fresh
// Result. Solve may be called concurrently on one shared Plan.
func (pl *Plan) Solve(h dsp.Vec, opts InvertOptions, warm dsp.Vec, dst *Result) (*Result, error) {
	n, m := pl.n, pl.m
	if len(h) != n {
		return nil, fmt.Errorf("ndft: measurement length %d != %d frequencies", len(h), n)
	}
	if warm != nil && len(warm) != m {
		return nil, fmt.Errorf("ndft: warm start length %d != %d grid points", len(warm), m)
	}
	opts = opts.withDefaults(h)

	w := pl.getWorkspace()
	defer pl.ws.Put(w)
	split(w.hRe, w.hIm, h)

	// Fᴴh̃ is needed for the default α scaling and (cold starts) for the
	// continuation ramp's initial threshold; one pass covers both.
	var corrInf float64
	if opts.Alpha == 0 || !opts.PlainISTA {
		var maxSq float64
		for j := 0; j < m; j++ {
			cr, ci := cdot(pl.fhRe[j*n:(j+1)*n], pl.fhIm[j*n:(j+1)*n], w.hRe, w.hIm)
			if sq := cr*cr + ci*ci; sq > maxSq {
				maxSq = sq
			}
		}
		corrInf = math.Sqrt(maxSq)
	}
	alpha := opts.Alpha
	if alpha == 0 {
		scale := opts.AlphaScale
		if scale == 0 {
			scale = 1
		}
		// Default α: a fraction of the largest correlation between the
		// measurement and any single atom, the standard LASSO scaling
		// (α_max = ‖Fᴴh‖∞ zeroes the whole profile; we default to 10%).
		alpha = 0.1 * scale * corrInf
	}

	// Initialize the iterate and, for warm starts with a usable support,
	// the restricted working set.
	w.active = w.active[:0]
	idx := pl.allIdx
	restricted := false
	if warm != nil {
		split(w.pRe, w.pIm, warm)
		for j := 0; j < m; j++ {
			if w.pRe[j] != 0 || w.pIm[j] != 0 {
				w.active = append(w.active, j)
			}
		}
		if len(w.active) == 0 {
			warm = nil // empty seed: run the ordinary cold start
		} else {
			w.idx = w.idx[:0]
			last := -1
			for _, j := range w.active {
				lo, hi := j-warmDilate, j+warmDilate
				if lo <= last {
					lo = last + 1
				}
				if lo < 0 {
					lo = 0
				}
				if hi > m-1 {
					hi = m - 1
				}
				for k := lo; k <= hi; k++ {
					w.idx = append(w.idx, k)
				}
				last = hi
			}
			if len(w.idx) < m {
				idx = w.idx
				restricted = true
			}
		}
	}
	if warm == nil {
		if opts.Seed != 0 {
			rng := rand.New(rand.NewSource(opts.Seed))
			s := dsp.Norm2(h) / float64(m)
			for i := 0; i < m; i++ {
				w.pRe[i], w.pIm[i] = rng.NormFloat64()*s, rng.NormFloat64()*s
				w.active = append(w.active, i)
			}
		} else {
			zero(w.pRe)
			zero(w.pIm)
		}
	}
	copy(w.yRe, w.pRe)
	copy(w.yIm, w.pIm)

	gamma := pl.gamma
	if dst == nil {
		dst = &Result{}
	}
	res := dst
	res.Taus = pl.Taus
	res.Iterations, res.Converged, res.Work = 0, false, 0
	res.GapAtStop, res.NoiseFloor = 0, opts.NoiseFloor
	// The gap rule needs a tolerance to stop against: the caller's
	// per-sweep noise estimate or an absolute GapTol. Without either the
	// checks could never pass, so they are skipped entirely and the
	// iterate rule decides alone.
	useGap := opts.Stop == StopGap && !opts.PlainISTA &&
		(opts.GapTol > 0 || opts.NoiseFloor > 0)
	gapStopped := false

	// gapCheck measures the LASSO duality gap of the current iterate over
	// the grid cells in set and reports whether the solve may stop: the
	// scaled residual θ = min(1, α/‖Fᴴr‖∞)·r is dual feasible (on the
	// restricted set; the excluded cells are audited by the KKT pass), so
	//
	//	gap = ½‖r‖² + α‖p‖₁ + ½‖θ‖² + Re⟨θ, h̃⟩
	//
	// bounds the objective suboptimality. The tolerance is the noise
	// energy ½‖w‖² (scaled by GapScale) from the caller's per-sweep
	// estimate: once the objective is certified within the energy the
	// noise contributes, the remaining iterations fit noise, not paths.
	// A check costs about one iteration over the same set, paid once per
	// gapEvery. GapAtStop refreshes on every check, so even
	// iteration-capped solves report their last certified gap.
	gapCheck := func(set []int) (bool, float64) {
		// Residual at the iterate p: the iteration loop's residual is
		// taken at the extrapolation point y, which is not the point the
		// gap certifies. Both scratch residuals are recomputed next
		// iteration, so reusing them here is safe.
		w.supp = w.supp[:0]
		var l1 float64
		for _, j := range set {
			if w.pRe[j] != 0 || w.pIm[j] != 0 {
				w.supp = append(w.supp, j)
				l1 += math.Hypot(w.pRe[j], w.pIm[j])
			}
		}
		pl.forwardResid(w, w.pRe, w.pIm, w.supp)
		var resSq, rh float64
		for i := 0; i < n; i++ {
			resSq += w.residRe[i]*w.residRe[i] + w.resIm[i]*w.resIm[i]
			rh += w.residRe[i]*w.hRe[i] + w.resIm[i]*w.hIm[i]
		}
		var maxSq float64
		for _, j := range set {
			gr, gi := cdot(pl.fhRe[j*n:(j+1)*n], pl.fhIm[j*n:(j+1)*n], w.residRe, w.resIm)
			if sq := gr*gr + gi*gi; sq > maxSq {
				maxSq = sq
			}
		}
		res.Work += int64(len(set) + len(w.supp))
		gInf := math.Sqrt(maxSq)
		s := 1.0
		if gInf > alpha && alpha > 0 {
			s = alpha / gInf
		}
		gap := 0.5*resSq + alpha*l1 + 0.5*s*s*resSq + s*rh
		if gap < 0 {
			gap = 0 // rounding on an essentially optimal iterate
		}
		res.GapAtStop = gap
		tol := opts.GapTol
		if tol == 0 {
			tol = 0.5 * opts.GapScale * opts.NoiseFloor * opts.NoiseFloor
		}
		return s >= gapDualGate && gap <= tol, s
	}

	// iterate runs Algorithm 1 over the grid cells in set (the iterate
	// must be zero outside it), starting the continuation threshold at
	// a0; it reports the iterations spent and sets res.Converged.
	// allowRestart enables the adaptive momentum restart — used only for
	// restricted working-set solves (see below).
	iterate := func(set []int, a0 float64, budget int, allowRestart bool) int {
		curAlpha := a0
		// The continuation schedule must hand the target α a usable slice
		// of the budget: with a forced tiny α (the sparsity ablation) the
		// default decay could still be ramping when the budget expires,
		// and the Epsilon exit — gated on curAlpha == alpha — could then
		// never fire. Steepen the decay so the ramp spends at most half
		// the budget.
		decay := contDecay
		if a0 > alpha && alpha > 0 && budget > 0 {
			if need := math.Log(alpha/a0) / math.Log(decay); need > float64(budget)/2 {
				decay = math.Exp(2 * math.Log(alpha/a0) / float64(budget))
			}
		}
		tMom := 1.0
		checkAt := gapEvery
		res.Converged = false
		for iter := 1; iter <= budget; iter++ {
			copy(w.prevRe, w.pRe)
			copy(w.prevIm, w.pIm)
			srcRe, srcIm := w.pRe, w.pIm
			if !opts.PlainISTA {
				srcRe, srcIm = w.yRe, w.yIm
			}
			// resid = F·src − h̃, accumulated over src's support only: the
			// soft-thresholded iterate is sparse, so the forward product
			// touches a few dozen dictionary columns, not the whole grid.
			// The adjoint rows ARE those columns (conjugated), so the
			// column walk streams through memory.
			pl.forwardResid(w, srcRe, srcIm, w.active)
			// p ← SPARSIFY(src − γ·(Fᴴ·resid), γα), fused per grid cell.
			// The shrinkage test compares squared magnitudes so the
			// (dominant) zeroed taps never pay for a square root. The
			// adjoint dot product is a deliberate manual inline of cdot:
			// the gradient pass makes m short (length-n) dots per
			// iteration, and the per-call overhead of the out-of-line
			// kernel is measurable there (Go does not inline cdot); keep
			// the two bodies in sync if the kernel changes.
			thr := gamma * curAlpha
			thrSq := thr * thr
			rRe, rIm := w.residRe[:n], w.resIm[:n]
			for _, j := range set {
				aRe, aIm := pl.fhRe[j*n:(j+1)*n], pl.fhIm[j*n:(j+1)*n]
				var gr0, gi0, gr1, gi1 float64
				i := 0
				for ; i+2 <= n; i += 2 {
					ar0, ai0, br0, bi0 := aRe[i], aIm[i], rRe[i], rIm[i]
					gr0 += ar0*br0 - ai0*bi0
					gi0 += ar0*bi0 + ai0*br0
					ar1, ai1, br1, bi1 := aRe[i+1], aIm[i+1], rRe[i+1], rIm[i+1]
					gr1 += ar1*br1 - ai1*bi1
					gi1 += ar1*bi1 + ai1*br1
				}
				if i < n {
					gr0 += aRe[i]*rRe[i] - aIm[i]*rIm[i]
					gi0 += aRe[i]*rIm[i] + aIm[i]*rRe[i]
				}
				gr, gi := gr0+gr1, gi0+gi1
				pr := srcRe[j] - gamma*gr
				pi := srcIm[j] - gamma*gi
				if sq := pr*pr + pi*pi; sq <= thrSq { // "<=" also zeroes sq==thrSq==0, avoiding 0/0 below
					w.pRe[j], w.pIm[j] = 0, 0
				} else {
					a := math.Sqrt(sq)
					sc := (a - thr) / a
					w.pRe[j], w.pIm[j] = pr*sc, pi*sc
				}
			}

			var diffSq float64
			w.active = w.active[:0]
			if opts.PlainISTA {
				for _, j := range set {
					dr, di := w.pRe[j]-w.prevRe[j], w.pIm[j]-w.prevIm[j]
					diffSq += dr*dr + di*di
					if w.pRe[j] != 0 || w.pIm[j] != 0 {
						w.active = append(w.active, j)
					}
				}
			} else {
				// Adaptive (gradient) restart, O'Donoghue & Candès: when
				// the extrapolated step opposes the direction of progress
				// the momentum has overshot — reset it, turning FISTA's
				// oscillatory tail into near-linear convergence. Restarts
				// run only on restricted working-set solves: the grating
				// lobes of the coherent band lattice make the full-grid
				// LASSO optimum a degenerate face (mass can sit on an
				// alias ghost with the same objective), and on the full
				// grid a restarted trajectory may settle on a ghost vertex
				// that the sustained-momentum trajectory avoids. A working
				// set inherited from the previous fix excludes the ghost
				// family entirely, so restarting there is safe — and it is
				// what lets warm solves converge in tens of iterations
				// instead of ringing for hundreds.
				var gdot float64
				for _, j := range set {
					dr, di := w.pRe[j]-w.prevRe[j], w.pIm[j]-w.prevIm[j]
					diffSq += dr*dr + di*di
					gdot += (w.yRe[j]-w.pRe[j])*dr + (w.yIm[j]-w.pIm[j])*di
				}
				if allowRestart && gdot > 0 && curAlpha == alpha {
					tMom = 1
				}
				tNext := (1 + math.Sqrt(1+4*tMom*tMom)) / 2
				beta := (tMom - 1) / tNext
				for _, j := range set {
					dr, di := w.pRe[j]-w.prevRe[j], w.pIm[j]-w.prevIm[j]
					w.yRe[j] = w.pRe[j] + beta*dr
					w.yIm[j] = w.pIm[j] + beta*di
					if w.yRe[j] != 0 || w.yIm[j] != 0 {
						w.active = append(w.active, j)
					}
				}
				tMom = tNext
				// Decay the continuation threshold toward the target α,
				// jumping ahead when the iterate has already stalled at
				// the current threshold (further same-α iterations are
				// no-ops the Epsilon exit cannot act on yet).
				if curAlpha > alpha {
					d := decay
					if math.Sqrt(diffSq) < opts.Epsilon {
						d = contStallDecay
					}
					curAlpha *= d
					if curAlpha < alpha {
						curAlpha = alpha
					}
				}
			}

			res.Work += int64(len(set))
			if math.Sqrt(diffSq) < opts.Epsilon && curAlpha == alpha {
				res.Converged = true
				return iter
			}
			if useGap && iter >= checkAt {
				stop, s := gapCheck(set)
				if stop {
					res.Converged = true
					gapStopped = true
					return iter
				}
				if s >= gapDualGate {
					checkAt = iter + gapFine
				} else {
					checkAt = iter + gapEvery
				}
			}
		}
		return budget
	}

	// finishResid recomputes resid = F·p − h̃ at the current iterate.
	finishResid := func() {
		w.active = w.active[:0]
		for j := 0; j < m; j++ {
			if w.pRe[j] != 0 || w.pIm[j] != 0 {
				w.active = append(w.active, j)
			}
		}
		pl.forwardResid(w, w.pRe, w.pIm, w.active)
	}

	// polish canonicalizes a gap-stopped iterate: a restricted solve at
	// the tight iterate tolerance over the stopped support (dilated by
	// polishDilate cells), costing O(support) per iteration. The gap stop
	// decides *when* the dense work may end; the polish pins *where* the
	// iterate lands — any two trajectories that stop with the same
	// support converge to the same restricted optimum, which is what
	// keeps warm-started and cold fixes in agreement under early
	// stopping, and sharpens the support amplitudes the downstream
	// dominance tests read.
	polish := func() {
		if !gapStopped {
			return
		}
		gapStopped = false
		w.supp = w.supp[:0]
		last := -1
		for j := 0; j < m; j++ {
			if w.pRe[j] == 0 && w.pIm[j] == 0 {
				continue
			}
			lo, hi := j-polishDilate, j+polishDilate
			if lo <= last {
				lo = last + 1
			}
			if lo < 0 {
				lo = 0
			}
			if hi > m-1 {
				hi = m - 1
			}
			for k := lo; k <= hi; k++ {
				w.supp = append(w.supp, k)
			}
			last = hi
		}
		if len(w.supp) == 0 || len(w.supp) >= m {
			return
		}
		// Fresh momentum sequence seeded at p (y ≡ p is zero outside the
		// polish set, since the set contains the whole support).
		copy(w.yRe, w.pRe)
		copy(w.yIm, w.pIm)
		w.active = w.active[:0]
		for _, j := range w.supp {
			if w.pRe[j] != 0 || w.pIm[j] != 0 {
				w.active = append(w.active, j)
			}
		}
		useGap = false // the polish runs pure iterate-rule
		res.Iterations += iterate(w.supp, alpha, polishBudget, true)
		useGap = true
		// The solve converged by its gap certificate whether or not the
		// polish met the tight tolerance inside its budget.
		res.Converged = true
	}

	// α-continuation: start with a large threshold that admits only the
	// strongest atoms and decay toward the target α, steering the iterate
	// into the basin of the sparse global optimum before fine fitting
	// begins — important because the non-uniform band lattice makes the
	// dictionary highly coherent (strong grating lobes). A warm start is
	// already in that basin and begins at the target α directly.
	a0 := alpha
	if !opts.PlainISTA && warm == nil && corrInf > alpha {
		a0 = corrInf * 0.5
	}
	res.Iterations = iterate(idx, a0, opts.MaxIter, restricted)
	polish()
	finishResid()

	if restricted {
		res.Work += int64(m) // the KKT audit is one dense adjoint pass
	}
	if restricted && pl.kktViolated(w, alpha) {
		// The optimum left the working set (the target moved farther than
		// warmDilate cells between solves): discard the restricted answer
		// and run the cold full-grid solve, so warm starting can trade
		// iterations but never the answer.
		zero(w.pRe)
		zero(w.pIm)
		copy(w.yRe, w.pRe)
		copy(w.yIm, w.pIm)
		w.active = w.active[:0]
		a0 = alpha
		if !opts.PlainISTA && corrInf > alpha {
			a0 = corrInf * 0.5
		}
		res.Iterations += iterate(pl.allIdx, a0, opts.MaxIter, false)
		polish()
		finishResid()
	}

	var resSq float64
	for i := 0; i < n; i++ {
		resSq += w.residRe[i]*w.residRe[i] + w.resIm[i]*w.resIm[i]
	}
	res.Residual = math.Sqrt(resSq)

	res.Profile = growVec(res.Profile, m)
	res.Magnitude = growFloats(res.Magnitude, m)
	for j := 0; j < m; j++ {
		res.Profile[j] = complex(w.pRe[j], w.pIm[j])
		res.Magnitude[j] = math.Sqrt(w.pRe[j]*w.pRe[j] + w.pIm[j]*w.pIm[j])
	}
	return res, nil
}

// kktViolated audits the LASSO optimality conditions of a restricted
// solution over the full grid: every zero coefficient must satisfy
// |Fᴴ(F·p−h̃)|ⱼ ≤ α (within kktSlack). One full adjoint pass — the cost
// of a single dense iteration — proves the working set contained the
// optimum; a violation means the restricted answer must be discarded.
// Expects w.resid* to hold the residual at the current iterate.
func (pl *Plan) kktViolated(w *workspace, alpha float64) bool {
	n, m := pl.n, pl.m
	limSq := alpha * kktSlack * alpha * kktSlack
	for j := 0; j < m; j++ {
		if w.pRe[j] != 0 || w.pIm[j] != 0 {
			continue
		}
		gr, gi := cdot(pl.fhRe[j*n:(j+1)*n], pl.fhIm[j*n:(j+1)*n], w.residRe, w.resIm)
		if gr*gr+gi*gi > limSq {
			return true
		}
	}
	return false
}

// forwardResid computes resid = F·src − h̃ into the workspace, walking
// only the dictionary columns in src's support (ascending, so the
// accumulation order — hence the result — is deterministic). Each column
// F[·][j] is read as the conjugate of adjoint row j, which is contiguous.
func (pl *Plan) forwardResid(w *workspace, srcRe, srcIm []float64, active []int) {
	n := pl.n
	for i := 0; i < n; i++ {
		w.residRe[i] = -w.hRe[i]
		w.resIm[i] = -w.hIm[i]
	}
	for _, j := range active {
		cr, ci := srcRe[j], srcIm[j]
		row := pl.fhRe[j*n : (j+1)*n]
		rowIm := pl.fhIm[j*n : (j+1)*n]
		dstRe := w.residRe[:n]
		dstIm := w.resIm[:n]
		for i, ar := range row {
			ai := -rowIm[i] // F[i][j] = conj(Fᴴ[j][i])
			dstRe[i] += ar*cr - ai*ci
			dstIm[i] += ar*ci + ai*cr
		}
	}
}

func (pl *Plan) getWorkspace() *workspace { return pl.ws.Get().(*workspace) }

// cdot is the planar complex inner product Σ a[k]·x[k] (no conjugation —
// the adjoint rows are stored pre-conjugated). Two-way unrolling keeps
// four independent accumulator chains in flight, hiding scalar add
// latency; the split is deterministic, so results are identical across
// runs and worker counts.
func cdot(aRe, aIm, xRe, xIm []float64) (float64, float64) {
	k := len(aRe)
	aIm = aIm[:k]
	xRe = xRe[:k]
	xIm = xIm[:k]
	var sr0, si0, sr1, si1, sr2, si2, sr3, si3 float64
	i := 0
	for ; i+4 <= k; i += 4 {
		ar0, ai0, br0, bi0 := aRe[i], aIm[i], xRe[i], xIm[i]
		sr0 += ar0*br0 - ai0*bi0
		si0 += ar0*bi0 + ai0*br0
		ar1, ai1, br1, bi1 := aRe[i+1], aIm[i+1], xRe[i+1], xIm[i+1]
		sr1 += ar1*br1 - ai1*bi1
		si1 += ar1*bi1 + ai1*br1
		ar2, ai2, br2, bi2 := aRe[i+2], aIm[i+2], xRe[i+2], xIm[i+2]
		sr2 += ar2*br2 - ai2*bi2
		si2 += ar2*bi2 + ai2*br2
		ar3, ai3, br3, bi3 := aRe[i+3], aIm[i+3], xRe[i+3], xIm[i+3]
		sr3 += ar3*br3 - ai3*bi3
		si3 += ar3*bi3 + ai3*br3
	}
	for ; i < k; i++ {
		sr0 += aRe[i]*xRe[i] - aIm[i]*xIm[i]
		si0 += aRe[i]*xIm[i] + aIm[i]*xRe[i]
	}
	return (sr0 + sr1) + (sr2 + sr3), (si0 + si1) + (si2 + si3)
}

// split scatters a complex vector into planar destination slices.
func split(dstRe, dstIm []float64, v dsp.Vec) {
	for i, c := range v {
		dstRe[i], dstIm[i] = real(c), imag(c)
	}
}

func zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// growVec returns v resized to n elements, reusing its backing array
// when the capacity allows.
func growVec(v dsp.Vec, n int) dsp.Vec {
	if cap(v) >= n {
		return v[:n]
	}
	return make(dsp.Vec, n)
}

func growFloats(v []float64, n int) []float64 {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]float64, n)
}
