package ndft

import (
	"math"
	"math/rand"
	"sync"

	"chronos/internal/dsp"
	"chronos/internal/linalg"
)

// Plan is the precomputed, reusable form of one NDFT inversion problem:
// the dictionary F for a fixed (freqs, taus) pair, its conjugate
// transpose laid out row-major so the adjoint product streams through
// memory, and the Lipschitz/step constants Algorithm 1 needs. A Plan is
// built once per band-group signature and shared: Solve is safe for
// concurrent use (scratch vectors live in an internal pool, one set per
// in-flight solve), and steady-state solves allocate nothing, so the
// per-sweep hot path of the streaming trackers and the campaign worker
// pool never rebuild or reallocate solver state.
//
// Both the dictionary and the iterate vectors are stored as split
// real/imaginary float64 slices ("planar" layout). The solver's inner
// products then run on independent scalar accumulator chains, which the
// interleaved complex128 representation would serialize.
type Plan struct {
	Freqs []float64 // n measurement frequencies (Hz)
	Taus  []float64 // m delay-grid points (seconds)

	n, m int
	// The conjugate-transpose dictionary Fᴴ (m×n), row-major planar. It
	// is the only stored form: the adjoint product walks its rows, and
	// the forward product walks the same rows as conjugated columns of
	// F, so no separate forward copy is kept.
	fhRe, fhIm []float64

	normSq float64 // ‖F‖₂²
	gamma  float64 // ISTA step size 1/‖F‖₂²

	// allIdx is [0, m): the full-grid iteration set, shared by every
	// dense solve so restricted and dense paths run the same loops.
	allIdx []int

	ws sync.Pool // *workspace
	bs sync.Pool // *batchState
}

// interleaved rebuilds the complex form of F from the stored adjoint
// (F[i][k] = conj(Fᴴ[k][i])) — only the Matrix compatibility wrapper
// needs it, so plans resolved through a registry never carry an extra
// forward copy in any layout.
func (pl *Plan) interleaved() *linalg.CMatrix {
	n, m := pl.n, pl.m
	f := linalg.NewCMatrix(n, m)
	for i := 0; i < n; i++ {
		for k := 0; k < m; k++ {
			f.Data[i*m+k] = complex(pl.fhRe[k*n+i], -pl.fhIm[k*n+i])
		}
	}
	return f
}

// workspace is the per-solve scratch state: every vector Algorithm 1
// touches, preallocated at plan dimensions so iterations are
// allocation-free.
type workspace struct {
	hRe, hIm       []float64 // measurement, planar (n)
	residRe, resIm []float64 // F·src − h̃ (n)
	pRe, pIm       []float64 // iterate (m)
	prevRe, prevIm []float64 // previous iterate (m)
	yRe, yIm       []float64 // FISTA extrapolation point (m)
	active         []int     // support of the extrapolation point (≤ m)
	idx            []int     // restricted working set for warm solves (≤ m)
	supp           []int     // polish working set (≤ m)
	gsupp          []int     // support of the iterate at a gap check (≤ m)
	corr           []float64 // correlation magnitudes for the noise MAD (≤ m)
}

// NewPlan precomputes the NDFT dictionary, its adjoint, and the ISTA
// step size for the given frequencies and delay grid. Construction is
// O(n·m) plus a short power iteration; amortize it through a registry
// (see internal/tof) rather than per solve.
func NewPlan(freqs, taus []float64) (*Plan, error) {
	n, m := len(freqs), len(taus)
	if n == 0 || m == 0 {
		return nil, errEmptyGrid
	}
	pl := &Plan{
		Freqs: append([]float64(nil), freqs...),
		Taus:  append([]float64(nil), taus...),
		n:     n, m: m,
		fhRe: make([]float64, n*m), fhIm: make([]float64, n*m),
	}
	f := linalg.NewCMatrix(n, m)
	for i, fr := range freqs {
		for k, tau := range taus {
			ph := -2 * math.Pi * fr * tau
			// Reduce the argument before Sincos: fr·tau can reach 1e1
			// range but ph magnitudes stay modest; Mod keeps precision.
			ph = math.Mod(ph, 2*math.Pi)
			s, c := math.Sincos(ph)
			f.Data[i*m+k] = complex(c, s)
			// Adjoint row k, column i: conj(F[i][k]).
			pl.fhRe[k*n+i], pl.fhIm[k*n+i] = c, -s
		}
	}
	// f is used only for the power iteration below and then released;
	// the planar adjoint is the plan's dictionary.
	pl.allIdx = make([]int, m)
	for j := range pl.allIdx {
		pl.allIdx[j] = j
	}
	norm := f.SpectralNorm(rand.New(rand.NewSource(1)), 40)
	if norm == 0 {
		return nil, errZeroNorm
	}
	pl.normSq = norm * norm
	pl.gamma = 1 / pl.normSq
	pl.ws.New = func() any {
		return &workspace{
			hRe: make([]float64, n), hIm: make([]float64, n),
			residRe: make([]float64, n), resIm: make([]float64, n),
			pRe: make([]float64, m), pIm: make([]float64, m),
			prevRe: make([]float64, m), prevIm: make([]float64, m),
			yRe: make([]float64, m), yIm: make([]float64, m),
			active: make([]int, 0, m), idx: make([]int, 0, m),
			supp: make([]int, 0, m), gsupp: make([]int, 0, m),
			corr: make([]float64, 0, m),
		}
	}
	pl.bs.New = func() any { return &batchState{} }
	return pl, nil
}

// Dims returns the plan's (frequency, delay-grid) dimensions.
func (pl *Plan) Dims() (n, m int) { return pl.n, pl.m }

// Gamma returns the precomputed ISTA step size 1/‖F‖₂².
func (pl *Plan) Gamma() float64 { return pl.gamma }

// warmDilate is the working-set dilation radius, in grid cells, around
// each warm-start support cell: peaks may drift this far between solves
// (several cells covers walking-speed motion and noise wander on the
// default grids) without leaving the restricted set. Drifts beyond the
// set are caught by the KKT check and fall back to a full solve.
const warmDilate = 8

// kktSlack is the multiplicative tolerance on the LASSO optimality bound
// |Fᴴ(F·p−h̃)| ≤ α when auditing grid cells excluded from a restricted
// solve; an excluded cell marginally above α would carry a negligible
// coefficient, so a small slack avoids needless full-grid fallbacks.
const kktSlack = 1.02

// gapEvery and gapFine are the duality-gap check cadences, in
// iterations. A check costs about one iteration over the same working
// set (one sparse forward plus one adjoint pass), so the coarse cadence
// bounds the overhead near 1/gapEvery while the dual-feasibility gate
// is still closed; once a check observes the gate open (the support has
// settled and the stop is near), the cadence tightens to gapFine so the
// stop lands close to the actual tolerance crossing instead of up to a
// whole coarse period past it.
const (
	gapEvery = 25
	gapFine  = 5
)

// gapDualGate is the minimum dual-feasibility scaling s = α/‖Fᴴr‖∞ at
// which a gap check may stop the solve. Early iterations leave signal
// in the residual, which makes the scaled dual point loose and the gap
// bound slack; requiring the gradient to be nearly below α first means
// the support is essentially settled and the remaining work is
// amplitude refinement the noise floor bounds.
const gapDualGate = 0.85

// contDecay is the per-iteration α-continuation decay, and
// contStallDecay the accelerated decay applied when the iterate has
// already converged (‖Δp‖ < ε) at the current continuation threshold:
// the Epsilon exit is gated on the schedule having reached the target α,
// so idling through the remaining schedule at the slow decay would burn
// budget making no progress.
const (
	contDecay      = 0.97
	contStallDecay = 0.7
)

// polishDilate is the working-set dilation around the support of a
// gap-stopped iterate for the amplitude-polish pass, and polishBudget
// its iteration cap. A gap stop certifies the objective within the
// noise energy, but the amplitudes on the found support are still
// mid-trajectory; polishing that support (a restricted solve at the
// tight iterate tolerance) canonicalizes the result — any two
// trajectories that stop with the same support converge to the same
// restricted optimum — and sharpens peak magnitudes for downstream
// dominance tests, at a cost proportional to the support size rather
// than the grid.
const (
	polishDilate = 3
	polishBudget = 600
)

// kktViolated audits the LASSO optimality conditions of a restricted
// solution over the full grid: every zero coefficient must satisfy
// |Fᴴ(F·p−h̃)|ⱼ ≤ α (within kktSlack). One full adjoint pass — the cost
// of a single dense iteration — proves the working set contained the
// optimum; a violation means the restricted answer must be discarded.
// Expects w.resid* to hold the residual at the current iterate.
func (pl *Plan) kktViolated(w *workspace, alpha float64) bool {
	n, m := pl.n, pl.m
	limSq := alpha * kktSlack * alpha * kktSlack
	for j := 0; j < m; j++ {
		if w.pRe[j] != 0 || w.pIm[j] != 0 {
			continue
		}
		gr, gi := adjDot(pl.fhRe[j*n:(j+1)*n], pl.fhIm[j*n:(j+1)*n], w.residRe, w.resIm)
		if gr*gr+gi*gi > limSq {
			return true
		}
	}
	return false
}

// forwardResid computes resid = F·src − h̃ into the workspace, walking
// only the dictionary columns in src's support (ascending, so the
// accumulation order — hence the result — is deterministic). Each column
// F[·][j] is read as the conjugate of adjoint row j, which is
// contiguous; the elementwise accumulation goes through axpyCol, which
// vectorizes it on the active kernel tier without changing a bit.
func (pl *Plan) forwardResid(w *workspace, srcRe, srcIm []float64, active []int) {
	n := pl.n
	for i := 0; i < n; i++ {
		w.residRe[i] = -w.hRe[i]
		w.resIm[i] = -w.hIm[i]
	}
	for _, j := range active {
		axpyCol(pl.fhRe[j*n:(j+1)*n], pl.fhIm[j*n:(j+1)*n],
			srcRe[j], srcIm[j], w.residRe[:n], w.resIm[:n])
	}
}

func (pl *Plan) getWorkspace() *workspace { return pl.ws.Get().(*workspace) }

// cdot is the planar complex inner product Σ a[k]·x[k] (no conjugation —
// the adjoint rows are stored pre-conjugated), and the reference
// implementation of the solver's fixed-K accumulation contract: four
// independent accumulator chains (element i feeds chain i mod 4), the
// k mod 4 tail feeding chain 0, folded as (s0+s1)+(s2+s3). The chains
// hide scalar add latency; the fixed split is deterministic, so results
// are identical across runs, worker counts, and — because every SIMD
// tier implements the same contract lane-for-lane (see adjDot and the
// lane kernels) — across architectures.
func cdot(aRe, aIm, xRe, xIm []float64) (float64, float64) {
	k := len(aRe)
	aIm = aIm[:k]
	xRe = xRe[:k]
	xIm = xIm[:k]
	var sr0, si0, sr1, si1, sr2, si2, sr3, si3 float64
	i := 0
	for ; i+4 <= k; i += 4 {
		ar0, ai0, br0, bi0 := aRe[i], aIm[i], xRe[i], xIm[i]
		sr0 += ar0*br0 - ai0*bi0
		si0 += ar0*bi0 + ai0*br0
		ar1, ai1, br1, bi1 := aRe[i+1], aIm[i+1], xRe[i+1], xIm[i+1]
		sr1 += ar1*br1 - ai1*bi1
		si1 += ar1*bi1 + ai1*br1
		ar2, ai2, br2, bi2 := aRe[i+2], aIm[i+2], xRe[i+2], xIm[i+2]
		sr2 += ar2*br2 - ai2*bi2
		si2 += ar2*bi2 + ai2*br2
		ar3, ai3, br3, bi3 := aRe[i+3], aIm[i+3], xRe[i+3], xIm[i+3]
		sr3 += ar3*br3 - ai3*bi3
		si3 += ar3*bi3 + ai3*br3
	}
	for ; i < k; i++ {
		sr0 += aRe[i]*xRe[i] - aIm[i]*xIm[i]
		si0 += aRe[i]*xIm[i] + aIm[i]*xRe[i]
	}
	return (sr0 + sr1) + (sr2 + sr3), (si0 + si1) + (si2 + si3)
}

// split scatters a complex vector into planar destination slices.
func split(dstRe, dstIm []float64, v dsp.Vec) {
	for i, c := range v {
		dstRe[i], dstIm[i] = real(c), imag(c)
	}
}

func zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// growVec returns v resized to n elements, reusing its backing array
// when the capacity allows.
func growVec(v dsp.Vec, n int) dsp.Vec {
	if cap(v) >= n {
		return v[:n]
	}
	return make(dsp.Vec, n)
}

func growFloats(v []float64, n int) []float64 {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]float64, n)
}
