//go:build arm64 && !ndft_noasm

package ndft

// The 4-lane NEON ports of the batch kernels (two 2×float64 q-registers
// paired per 4-lane vector) plus the single-solve kernels. Every lane
// performs the reference scalar accumulator-chain arithmetic exactly —
// the NEON bodies mirror the AVX2 ones instruction for instruction
// (separate multiply and add/subtract, never fused multiply-add, which
// would change rounding). See lanes_arm64.s.
//
//go:noescape
func dot4neon(rowRe, rowIm, resTRe, resTIm *float64, n int, grOut, giOut *float64)

//go:noescape
func dotChunk4neon(rowRe, rowIm, resTRe, resTIm *float64, k int, state, out *float64, mode uint64, stride int)

//go:noescape
func axpy4neon(rowRe, rowIm, coefRe, coefIm, resTRe, resTIm *float64, n int, mask *uint64)

//go:noescape
func dotVecNeon(aRe, aIm, xRe, xIm *float64, k4 int, part *float64)

//go:noescape
func axpyColNeon(rowRe, rowIm *float64, cr, ci float64, dstRe, dstIm *float64, n4 int)

// detectTier resolves to the NEON tier unconditionally: ASIMD with
// double-precision vectors is an architectural requirement of AArch64,
// so there is nothing to probe (the CHRONOS_NDFT_KERNEL clamp and the
// ndft_noasm build tag remain the ways to force the scalar path).
func detectTier() kernelTier { return tierNEON }

func kernDot(rowRe, rowIm, resTRe, resTIm *float64, n int, grOut, giOut *float64) {
	dot4neon(rowRe, rowIm, resTRe, resTIm, n, grOut, giOut)
}

func kernDotChunk(rowRe, rowIm, resTRe, resTIm *float64, k int, state, out *float64, mode uint64, stride int) {
	dotChunk4neon(rowRe, rowIm, resTRe, resTIm, k, state, out, mode, stride)
}

func kernAxpy(rowRe, rowIm, coefRe, coefIm, resTRe, resTIm *float64, n int, mask uint64) {
	axpy4neon(rowRe, rowIm, coefRe, coefIm, resTRe, resTIm, n, &axpyMask[mask&15][0])
}

func kernAdjDot(aRe, aIm, xRe, xIm *float64, k4 int, part *float64) {
	dotVecNeon(aRe, aIm, xRe, xIm, k4, part)
}

func kernAxpyCol(rowRe, rowIm *float64, cr, ci float64, dstRe, dstIm *float64, n4 int) {
	axpyColNeon(rowRe, rowIm, cr, ci, dstRe, dstIm, n4)
}
