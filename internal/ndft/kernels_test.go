package ndft

import (
	"math"
	"math/rand"
	"testing"
)

// vectorTiers lists every vector tier the host CPU can actually run, so
// the kernel tests cover all compiled-in tiers the hardware supports
// (an AVX-512 machine tests the AVX2 kernels too — they are the same
// contract at half the width). Empty on scalar-only builds.
func vectorTiers() []kernelTier {
	switch detectTier() {
	case tierAVX512:
		return []kernelTier{tierAVX512, tierAVX2}
	case tierAVX2:
		return []kernelTier{tierAVX2}
	case tierNEON:
		return []kernelTier{tierNEON}
	}
	return nil
}

// forceTier pins the kernel tier for one subtest, restoring the
// process-wide tier on cleanup.
func forceTier(t *testing.T, tier kernelTier) {
	t.Helper()
	prev := setKernelTier(tier)
	if activeTier != tier {
		setKernelTier(prev)
		t.Fatalf("tier %v unavailable (detected %v)", tier, detectTier())
	}
	t.Cleanup(func() { setKernelTier(prev) })
}

// bothNaNOrEqualBits treats two values as equivalent when they are
// bit-identical or both NaN. NaN payloads are excluded deliberately:
// the Go compiler does not pin operand order for commutative scalar
// ops, so which of two NaN inputs propagates is unspecified even
// between two scalar builds — the solver never feeds NaNs through
// these kernels.
func bothNaNOrEqualBits(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// kernelVec fills a test vector mixing magnitudes, exact zeros,
// denormals, and (when allowNaN) NaNs.
func kernelVec(rng *rand.Rand, n int, allowNaN bool) []float64 {
	v := make([]float64, n)
	for i := range v {
		switch rng.Intn(10) {
		case 0:
			v[i] = 0
		case 1:
			v[i] = math.Copysign(5e-324, rng.NormFloat64()) // denormal
		case 2:
			v[i] = rng.NormFloat64() * 1e300
		case 3:
			if allowNaN {
				v[i] = math.NaN()
			} else {
				v[i] = rng.NormFloat64() * 1e-300
			}
		default:
			v[i] = rng.NormFloat64()
		}
	}
	return v
}

// TestAdjDotMatchesCdot fuzzes the tier-dispatched adjoint dot against
// the scalar contract reference on every available vector tier: every
// length (odd tails, partial lane groups, below the vector cutover)
// must produce bit-identical sums — the property the warm-solve and
// alias-refit paths rely on when the tier changes between runs.
func TestAdjDotMatchesCdot(t *testing.T) {
	tiers := vectorTiers()
	if len(tiers) == 0 {
		t.Skip("no vector tier on this machine")
	}
	for _, tier := range tiers {
		t.Run(tier.String(), func(t *testing.T) {
			forceTier(t, tier)
			rng := rand.New(rand.NewSource(41))
			for n := 0; n <= 67; n++ {
				for trial := 0; trial < 20; trial++ {
					allowNaN := trial%5 == 4
					aRe := kernelVec(rng, n, allowNaN)
					aIm := kernelVec(rng, n, allowNaN)
					xRe := kernelVec(rng, n, allowNaN)
					xIm := kernelVec(rng, n, allowNaN)
					wantR, wantI := cdot(aRe, aIm, xRe, xIm)
					gotR, gotI := adjDot(aRe, aIm, xRe, xIm)
					if !bothNaNOrEqualBits(gotR, wantR) || !bothNaNOrEqualBits(gotI, wantI) {
						t.Fatalf("n=%d: got (%v,%v) want (%v,%v)", n, gotR, gotI, wantR, wantI)
					}
				}
			}
		})
	}
}

// FuzzAdjDotEquivalence is the fuzzer-driven variant of the table test
// above: arbitrary float bit patterns (including infinities and NaNs)
// through every available tier must match the scalar contract.
func FuzzAdjDotEquivalence(f *testing.F) {
	f.Add(int64(1), 7)
	f.Add(int64(99), 16)
	f.Add(int64(5), 65)
	f.Fuzz(func(t *testing.T, seed int64, n int) {
		if n < 0 || n > 512 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		aRe := kernelVec(rng, n, true)
		aIm := kernelVec(rng, n, true)
		xRe := kernelVec(rng, n, true)
		xIm := kernelVec(rng, n, true)
		wantR, wantI := cdot(aRe, aIm, xRe, xIm)
		for _, tier := range vectorTiers() {
			prev := setKernelTier(tier)
			gotR, gotI := adjDot(aRe, aIm, xRe, xIm)
			setKernelTier(prev)
			if !bothNaNOrEqualBits(gotR, wantR) || !bothNaNOrEqualBits(gotI, wantI) {
				t.Fatalf("tier=%v n=%d: got (%v,%v) want (%v,%v)", tier, n, gotR, gotI, wantR, wantI)
			}
		}
	})
}

// TestAxpyColMatchesScalar fuzzes the tier-dispatched column
// accumulation against the scalar forwardResid body: elementwise, so
// every element must be bit-identical on every available tier,
// including odd tails and lengths below the vector cutover.
func TestAxpyColMatchesScalar(t *testing.T) {
	tiers := vectorTiers()
	if len(tiers) == 0 {
		t.Skip("no vector tier on this machine")
	}
	refAxpyCol := func(rowRe, rowIm []float64, cr, ci float64, dstRe, dstIm []float64) {
		for i, ar := range rowRe {
			ai := -rowIm[i]
			dstRe[i] += ar*cr - ai*ci
			dstIm[i] += ar*ci + ai*cr
		}
	}
	for _, tier := range tiers {
		t.Run(tier.String(), func(t *testing.T) {
			forceTier(t, tier)
			rng := rand.New(rand.NewSource(43))
			for n := 0; n <= 67; n++ {
				for trial := 0; trial < 10; trial++ {
					rowRe := kernelVec(rng, n, false)
					rowIm := kernelVec(rng, n, false)
					cr, ci := rng.NormFloat64(), rng.NormFloat64()
					dstRe := kernelVec(rng, n, false)
					dstIm := kernelVec(rng, n, false)
					wantRe := append([]float64(nil), dstRe...)
					wantIm := append([]float64(nil), dstIm...)
					refAxpyCol(rowRe, rowIm, cr, ci, wantRe, wantIm)
					axpyCol(rowRe, rowIm, cr, ci, dstRe, dstIm)
					for i := 0; i < n; i++ {
						if math.Float64bits(dstRe[i]) != math.Float64bits(wantRe[i]) ||
							math.Float64bits(dstIm[i]) != math.Float64bits(wantIm[i]) {
							t.Fatalf("n=%d i=%d: got (%v,%v) want (%v,%v)", n, i, dstRe[i], dstIm[i], wantRe[i], wantIm[i])
						}
					}
				}
			}
		})
	}
}

// TestSolveBatchTierEquivalence solves one batch on every available
// vector tier and scalar-forced, and requires byte-identical results
// across all of them — the cross-tier face of SolveBatch's
// batch-equals-sequential contract (and, because avx512 groups 8 tasks
// per lane kernel call while avx2/neon group 4, a lane-width
// independence proof on real solves).
func TestSolveBatchTierEquivalence(t *testing.T) {
	pl, reqs := batchFixture(t)
	solveOn := func(tier kernelTier) []*Result {
		prev := setKernelTier(tier)
		defer setKernelTier(prev)
		batch := make([]SolveRequest, len(reqs))
		for i := range reqs {
			batch[i] = cloneReq(reqs[i])
		}
		if err := pl.SolveBatch(batch); err != nil {
			t.Fatalf("tier %v: %v", tier, err)
		}
		out := make([]*Result, len(batch))
		for i := range batch {
			out[i] = batch[i].Dst
		}
		return out
	}
	want := solveOn(tierScalar)
	for _, tier := range vectorTiers() {
		got := solveOn(tier)
		for i := range want {
			sameResult(t, tier.String(), want[i], got[i])
		}
	}
}

// TestLaneWidthIndependence pins that group partitioning width is a
// throughput knob, not a numerical one: the scalar path partitioned at
// width 4 must reproduce the width-8 partitioning byte for byte (the
// per-task arithmetic never depends on which lane group a task lands
// in).
func TestLaneWidthIndependence(t *testing.T) {
	pl, reqs := batchFixture(t)
	solveAt := func(lanes int) []*Result {
		prev := setKernelTier(tierScalar)
		defer setKernelTier(prev)
		batchLanes = lanes
		dotTile = tileFor(lanes)
		defer func() {
			batchLanes = tierScalar.lanes()
			dotTile = tileFor(tierScalar.lanes())
		}()
		batch := make([]SolveRequest, len(reqs))
		for i := range reqs {
			batch[i] = cloneReq(reqs[i])
		}
		if err := pl.SolveBatch(batch); err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		out := make([]*Result, len(batch))
		for i := range batch {
			out[i] = batch[i].Dst
		}
		return out
	}
	want := solveAt(8)
	got := solveAt(4)
	for i := range want {
		sameResult(t, "lanes4-vs-8", want[i], got[i])
	}
}

// TestForceKernel pins the public tier-forcing semantics: unknown names
// and unavailable tiers error without changing the active tier,
// downgrades succeed, and the returned previous name restores exactly.
func TestForceKernel(t *testing.T) {
	orig := VectorKernel()
	t.Cleanup(func() {
		if _, err := ForceKernel(orig); err != nil {
			t.Fatalf("restoring %q: %v", orig, err)
		}
	})

	if _, err := ForceKernel("avx1024"); err != errUnknownKernel {
		t.Fatalf("unknown name: err=%v want %v", err, errUnknownKernel)
	}
	if got := VectorKernel(); got != orig {
		t.Fatalf("failed force changed tier: %q -> %q", orig, got)
	}

	// Some vector tier is always unavailable: NEON on amd64, AVX-512 on
	// arm64 and scalar-only builds.
	unavailable := "neon"
	if detectTier() == tierNEON || detectTier() == tierScalar {
		unavailable = "avx512"
	}
	if _, err := ForceKernel(unavailable); err != errKernelUnavailable {
		t.Fatalf("unavailable tier %q: err=%v want %v", unavailable, err, errKernelUnavailable)
	}
	if got := VectorKernel(); got != orig {
		t.Fatalf("failed force changed tier: %q -> %q", orig, got)
	}

	prev, err := ForceKernel("scalar")
	if err != nil {
		t.Fatalf("forcing scalar: %v", err)
	}
	if prev != orig {
		t.Fatalf("prev = %q, want %q", prev, orig)
	}
	if VectorKernel() != "scalar" {
		t.Fatalf("scalar force not active: tier=%q", VectorKernel())
	}
	if batchLanes != 8 || dotTile != tileFor(8) {
		t.Fatalf("scalar sizing: lanes=%d tile=%d", batchLanes, dotTile)
	}

	// Downgrade within the amd64 family when the host allows it.
	if detectTier() == tierAVX512 {
		if _, err := ForceKernel("avx2"); err != nil {
			t.Fatalf("avx512 host refusing avx2 downgrade: %v", err)
		}
		if VectorKernel() != "avx2" || batchLanes != 4 {
			t.Fatalf("avx2 force: tier=%q lanes=%d", VectorKernel(), batchLanes)
		}
	}
}
