// AVX-512 batch-lane kernel for the gradient pass: eight solver tasks
// occupy the eight zmm lanes, and every lane executes the EXACT scalar
// operation sequence of the reference dot in gradPass/cdot's inline body
// (two-way unroll, four accumulator chains, separate multiply and
// add/subtract instructions — no FMA, which would change rounding).
// Lane-wise vector arithmetic is bit-identical to scalar arithmetic, so
// batched results match sequential solves byte for byte; see batch.go.

#include "textflag.h"

// func dot8avx512(rowRe, rowIm, resTRe, resTIm *float64, n int, grOut, giOut *float64)
//
// rowRe/rowIm: one planar adjoint row (n doubles each), shared by lanes.
// resTRe/resTIm: lane-transposed residuals, resT[i*8+b] = lane b element i.
// grOut/giOut: 8 doubles each, lane dot products (gr0+gr1, gi0+gi1).
TEXT ·dot8avx512(SB), NOSPLIT, $0-56
	MOVQ rowRe+0(FP), SI
	MOVQ rowIm+8(FP), DI
	MOVQ resTRe+16(FP), R8
	MOVQ resTIm+24(FP), R9
	MOVQ n+32(FP), CX

	// Z0..Z3 = gr0, gi0, gr1, gi1 accumulator chains (per lane).
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3

	XORQ AX, AX // i

loop2:
	MOVQ CX, DX
	SUBQ AX, DX
	CMPQ DX, $2
	JLT  tail

	MOVQ AX, BX
	SHLQ $6, BX // i*8 lanes*8 bytes

	// Element i -> chains 0: gr0 += ar0*br0 - ai0*bi0; gi0 += ar0*bi0 + ai0*br0
	VBROADCASTSD (SI)(AX*8), Z4  // ar0
	VBROADCASTSD (DI)(AX*8), Z5  // ai0
	VMOVUPD      (R8)(BX*1), Z6  // br0 lanes
	VMOVUPD      (R9)(BX*1), Z7  // bi0 lanes
	VMULPD       Z6, Z4, Z8      // ar0*br0
	VMULPD       Z7, Z5, Z9      // ai0*bi0
	VSUBPD       Z9, Z8, Z8      // ar0*br0 - ai0*bi0
	VADDPD       Z8, Z0, Z0
	VMULPD       Z7, Z4, Z8      // ar0*bi0
	VMULPD       Z6, Z5, Z9      // ai0*br0
	VADDPD       Z9, Z8, Z8      // ar0*bi0 + ai0*br0
	VADDPD       Z8, Z1, Z1

	// Element i+1 -> chains 1.
	VBROADCASTSD 8(SI)(AX*8), Z4
	VBROADCASTSD 8(DI)(AX*8), Z5
	VMOVUPD      64(R8)(BX*1), Z6
	VMOVUPD      64(R9)(BX*1), Z7
	VMULPD       Z6, Z4, Z8
	VMULPD       Z7, Z5, Z9
	VSUBPD       Z9, Z8, Z8
	VADDPD       Z8, Z2, Z2
	VMULPD       Z7, Z4, Z8
	VMULPD       Z6, Z5, Z9
	VADDPD       Z9, Z8, Z8
	VADDPD       Z8, Z3, Z3

	ADDQ $2, AX
	JMP  loop2

tail:
	CMPQ AX, CX
	JGE  done

	MOVQ AX, BX
	SHLQ $6, BX
	VBROADCASTSD (SI)(AX*8), Z4
	VBROADCASTSD (DI)(AX*8), Z5
	VMOVUPD      (R8)(BX*1), Z6
	VMOVUPD      (R9)(BX*1), Z7
	VMULPD       Z6, Z4, Z8
	VMULPD       Z7, Z5, Z9
	VSUBPD       Z9, Z8, Z8
	VADDPD       Z8, Z0, Z0
	VMULPD       Z7, Z4, Z8
	VMULPD       Z6, Z5, Z9
	VADDPD       Z9, Z8, Z8
	VADDPD       Z8, Z1, Z1

done:
	// gr = gr0 + gr1, gi = gi0 + gi1 (addition is commutative in IEEE
	// 754, so lane order matches the scalar gr0+gr1 exactly).
	VADDPD Z2, Z0, Z0
	VADDPD Z3, Z1, Z1
	MOVQ   grOut+40(FP), R10
	MOVQ   giOut+48(FP), R11
	VMOVUPD Z0, (R10)
	VMOVUPD Z1, (R11)
	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpy8avx512(rowRe, rowIm, coefRe, coefIm, resTRe, resTIm *float64, n int, mask uint64)
//
// Lane-masked forward-residual accumulation: for each lane b with mask
// bit b set, resT[i*8+b] += coef_b · column_j[i] elementwise over i,
// exactly as the scalar forwardResid body — per element the chain is
// dstRe += ar*cr − ai*ci, dstIm += ar*ci + ai*cr with ai = −rowIm[i],
// which folds sign-exactly to dstRe += ar*cr + rowIm*ci and
// dstIm += ar*ci − rowIm*cr (IEEE negation is exact and x−(−y) ≡ x+y).
// Merge-masked stores leave unmasked lanes' memory untouched, so lanes
// whose task does not carry row j keep their residual bits exactly.
TEXT ·axpy8avx512(SB), NOSPLIT, $0-64
	MOVQ  rowRe+0(FP), SI
	MOVQ  rowIm+8(FP), DI
	MOVQ  coefRe+16(FP), AX
	MOVQ  coefIm+24(FP), BX
	MOVQ  resTRe+32(FP), R8
	MOVQ  resTIm+40(FP), R9
	MOVQ  n+48(FP), CX
	MOVQ  mask+56(FP), DX
	KMOVW DX, K1

	VMOVUPD (AX), Z2 // cr lanes
	VMOVUPD (BX), Z3 // ci lanes

	XORQ AX, AX // i
	XORQ BX, BX // i*64 byte offset

axloop:
	CMPQ AX, CX
	JGE  axdone

	VBROADCASTSD (SI)(AX*8), Z4 // ar
	VBROADCASTSD (DI)(AX*8), Z5 // rowIm[i]

	// dstRe += ar*cr + rowIm*ci
	VMULPD  Z2, Z4, Z6
	VMULPD  Z3, Z5, Z7
	VADDPD  Z7, Z6, Z6
	VMOVUPD (R8)(BX*1), Z8
	VADDPD  Z6, Z8, Z8
	VMOVUPD Z8, K1, (R8)(BX*1)

	// dstIm += ar*ci − rowIm*cr
	VMULPD  Z3, Z4, Z6
	VMULPD  Z2, Z5, Z7
	VSUBPD  Z7, Z6, Z6
	VMOVUPD (R9)(BX*1), Z8
	VADDPD  Z6, Z8, Z8
	VMOVUPD Z8, K1, (R9)(BX*1)

	INCQ AX
	ADDQ $64, BX
	JMP  axloop

axdone:
	VZEROUPPER
	RET

// func dotChunk8avx512(rowRe, rowIm, resTRe, resTIm *float64, k int, state, out *float64, mode uint64, stride int)
//
// One (row, element-tile) chunk of the cache-blocked batch gradient: the
// same four accumulator chains as dot8avx512, but carried across tiles
// in a 32-double per-row state so the lane-major residual can be walked
// one L1-resident tile at a time for all rows. mode bit 0 starts the
// row (zero chains), bit 1 ends it (fold chains and write the 16-double
// gr|gi lane outputs). Chain parity is preserved because tiles start at
// even element offsets, so the accumulation order is exactly the scalar
// reference's. stride is the dictionary row pitch in bytes; the loop
// prefetches the NEXT row's slice while streaming this one, since
// consecutive rows sit a full row apart and the hardware stride
// prefetcher loses them across page boundaries. The main loop retires
// four elements (two chain pairs) per iteration.
TEXT ·dotChunk8avx512(SB), NOSPLIT, $0-72
	MOVQ rowRe+0(FP), SI
	MOVQ rowIm+8(FP), DI
	MOVQ resTRe+16(FP), R8
	MOVQ resTIm+24(FP), R9
	MOVQ k+32(FP), CX
	MOVQ state+40(FP), R10
	MOVQ mode+56(FP), DX
	MOVQ stride+64(FP), R12
	LEAQ (SI)(R12*1), R13 // next row re (prefetch target)
	LEAQ (DI)(R12*1), R14 // next row im

	TESTQ $1, DX
	JZ    ckload
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	JMP    ckbody

ckload:
	VMOVUPD (R10), Z0
	VMOVUPD 64(R10), Z1
	VMOVUPD 128(R10), Z2
	VMOVUPD 192(R10), Z3

ckbody:
	XORQ AX, AX

ckloop4:
	MOVQ CX, BX
	SUBQ AX, BX
	CMPQ BX, $4
	JLT  ckloop2

	PREFETCHT0 (R13)(AX*8)
	PREFETCHT0 (R14)(AX*8)

	MOVQ AX, BX
	SHLQ $6, BX

	VBROADCASTSD (SI)(AX*8), Z4
	VBROADCASTSD (DI)(AX*8), Z5
	VMOVUPD      (R8)(BX*1), Z6
	VMOVUPD      (R9)(BX*1), Z7
	VMULPD       Z6, Z4, Z8
	VMULPD       Z7, Z5, Z9
	VSUBPD       Z9, Z8, Z8
	VADDPD       Z8, Z0, Z0
	VMULPD       Z7, Z4, Z8
	VMULPD       Z6, Z5, Z9
	VADDPD       Z9, Z8, Z8
	VADDPD       Z8, Z1, Z1

	VBROADCASTSD 8(SI)(AX*8), Z4
	VBROADCASTSD 8(DI)(AX*8), Z5
	VMOVUPD      64(R8)(BX*1), Z6
	VMOVUPD      64(R9)(BX*1), Z7
	VMULPD       Z6, Z4, Z8
	VMULPD       Z7, Z5, Z9
	VSUBPD       Z9, Z8, Z8
	VADDPD       Z8, Z2, Z2
	VMULPD       Z7, Z4, Z8
	VMULPD       Z6, Z5, Z9
	VADDPD       Z9, Z8, Z8
	VADDPD       Z8, Z3, Z3

	VBROADCASTSD 16(SI)(AX*8), Z4
	VBROADCASTSD 16(DI)(AX*8), Z5
	VMOVUPD      128(R8)(BX*1), Z6
	VMOVUPD      128(R9)(BX*1), Z7
	VMULPD       Z6, Z4, Z8
	VMULPD       Z7, Z5, Z9
	VSUBPD       Z9, Z8, Z8
	VADDPD       Z8, Z0, Z0
	VMULPD       Z7, Z4, Z8
	VMULPD       Z6, Z5, Z9
	VADDPD       Z9, Z8, Z8
	VADDPD       Z8, Z1, Z1

	VBROADCASTSD 24(SI)(AX*8), Z4
	VBROADCASTSD 24(DI)(AX*8), Z5
	VMOVUPD      192(R8)(BX*1), Z6
	VMOVUPD      192(R9)(BX*1), Z7
	VMULPD       Z6, Z4, Z8
	VMULPD       Z7, Z5, Z9
	VSUBPD       Z9, Z8, Z8
	VADDPD       Z8, Z2, Z2
	VMULPD       Z7, Z4, Z8
	VMULPD       Z6, Z5, Z9
	VADDPD       Z9, Z8, Z8
	VADDPD       Z8, Z3, Z3

	ADDQ $4, AX
	JMP  ckloop4

ckloop2:
	MOVQ CX, BX
	SUBQ AX, BX
	CMPQ BX, $2
	JLT  cktail

	MOVQ AX, BX
	SHLQ $6, BX

	VBROADCASTSD (SI)(AX*8), Z4
	VBROADCASTSD (DI)(AX*8), Z5
	VMOVUPD      (R8)(BX*1), Z6
	VMOVUPD      (R9)(BX*1), Z7
	VMULPD       Z6, Z4, Z8
	VMULPD       Z7, Z5, Z9
	VSUBPD       Z9, Z8, Z8
	VADDPD       Z8, Z0, Z0
	VMULPD       Z7, Z4, Z8
	VMULPD       Z6, Z5, Z9
	VADDPD       Z9, Z8, Z8
	VADDPD       Z8, Z1, Z1

	VBROADCASTSD 8(SI)(AX*8), Z4
	VBROADCASTSD 8(DI)(AX*8), Z5
	VMOVUPD      64(R8)(BX*1), Z6
	VMOVUPD      64(R9)(BX*1), Z7
	VMULPD       Z6, Z4, Z8
	VMULPD       Z7, Z5, Z9
	VSUBPD       Z9, Z8, Z8
	VADDPD       Z8, Z2, Z2
	VMULPD       Z7, Z4, Z8
	VMULPD       Z6, Z5, Z9
	VADDPD       Z9, Z8, Z8
	VADDPD       Z8, Z3, Z3

	ADDQ $2, AX
	JMP  ckloop2

cktail:
	CMPQ AX, CX
	JGE  ckdone

	MOVQ AX, BX
	SHLQ $6, BX
	VBROADCASTSD (SI)(AX*8), Z4
	VBROADCASTSD (DI)(AX*8), Z5
	VMOVUPD      (R8)(BX*1), Z6
	VMOVUPD      (R9)(BX*1), Z7
	VMULPD       Z6, Z4, Z8
	VMULPD       Z7, Z5, Z9
	VSUBPD       Z9, Z8, Z8
	VADDPD       Z8, Z0, Z0
	VMULPD       Z7, Z4, Z8
	VMULPD       Z6, Z5, Z9
	VADDPD       Z9, Z8, Z8
	VADDPD       Z8, Z1, Z1

ckdone:
	TESTQ $2, DX
	JNZ   ckreduce
	VMOVUPD Z0, (R10)
	VMOVUPD Z1, 64(R10)
	VMOVUPD Z2, 128(R10)
	VMOVUPD Z3, 192(R10)
	VZEROUPPER
	RET

ckreduce:
	VADDPD Z2, Z0, Z0
	VADDPD Z3, Z1, Z1
	MOVQ   out+48(FP), R11
	VMOVUPD Z0, (R11)
	VMOVUPD Z1, 64(R11)
	VZEROUPPER
	RET
