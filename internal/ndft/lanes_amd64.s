//go:build !ndft_noasm

// AVX-512 batch-lane kernels for the gradient pass: eight solver tasks
// occupy the eight zmm lanes, and every lane executes the EXACT scalar
// operation sequence of the fixed-K adjoint-dot contract (cdot in
// plan.go): four accumulator chains, element i feeding chain i mod 4,
// the tail feeding chain 0, the fold pinned as (s0+s1)+(s2+s3) —
// separate multiply and add/subtract instructions, no FMA, which would
// change rounding. Lane-wise vector arithmetic is bit-identical to
// scalar arithmetic, so batched results match sequential solves byte
// for byte; see batch.go and kernels.go.

#include "textflag.h"

// func dot8avx512(rowRe, rowIm, resTRe, resTIm *float64, n int, grOut, giOut *float64)
//
// rowRe/rowIm: one planar adjoint row (n doubles each), shared by lanes.
// resTRe/resTIm: lane-transposed residuals, resT[i*8+b] = lane b element i.
// grOut/giOut: 8 doubles each, the folded lane dot products.
TEXT ·dot8avx512(SB), NOSPLIT, $0-56
	MOVQ rowRe+0(FP), SI
	MOVQ rowIm+8(FP), DI
	MOVQ resTRe+16(FP), R8
	MOVQ resTIm+24(FP), R9
	MOVQ n+32(FP), CX

	// Z0..Z3 = gr0..gr3, Z4..Z7 = gi0..gi3 chains (per lane).
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7

	XORQ AX, AX // i

loop4:
	MOVQ CX, DX
	SUBQ AX, DX
	CMPQ DX, $4
	JLT  tail

	MOVQ AX, BX
	SHLQ $6, BX // i*8 lanes*8 bytes

	// Element i -> chain 0: gr0 += ar*br - ai*bi; gi0 += ar*bi + ai*br
	VBROADCASTSD (SI)(AX*8), Z8   // ar
	VBROADCASTSD (DI)(AX*8), Z9   // ai
	VMOVUPD      (R8)(BX*1), Z10  // br lanes
	VMOVUPD      (R9)(BX*1), Z11  // bi lanes
	VMULPD       Z10, Z8, Z12     // ar*br
	VMULPD       Z11, Z9, Z13     // ai*bi
	VSUBPD       Z13, Z12, Z12    // ar*br - ai*bi
	VADDPD       Z12, Z0, Z0
	VMULPD       Z11, Z8, Z12     // ar*bi
	VMULPD       Z10, Z9, Z13     // ai*br
	VADDPD       Z13, Z12, Z12    // ar*bi + ai*br
	VADDPD       Z12, Z4, Z4

	// Element i+1 -> chain 1.
	VBROADCASTSD 8(SI)(AX*8), Z8
	VBROADCASTSD 8(DI)(AX*8), Z9
	VMOVUPD      64(R8)(BX*1), Z10
	VMOVUPD      64(R9)(BX*1), Z11
	VMULPD       Z10, Z8, Z12
	VMULPD       Z11, Z9, Z13
	VSUBPD       Z13, Z12, Z12
	VADDPD       Z12, Z1, Z1
	VMULPD       Z11, Z8, Z12
	VMULPD       Z10, Z9, Z13
	VADDPD       Z13, Z12, Z12
	VADDPD       Z12, Z5, Z5

	// Element i+2 -> chain 2.
	VBROADCASTSD 16(SI)(AX*8), Z8
	VBROADCASTSD 16(DI)(AX*8), Z9
	VMOVUPD      128(R8)(BX*1), Z10
	VMOVUPD      128(R9)(BX*1), Z11
	VMULPD       Z10, Z8, Z12
	VMULPD       Z11, Z9, Z13
	VSUBPD       Z13, Z12, Z12
	VADDPD       Z12, Z2, Z2
	VMULPD       Z11, Z8, Z12
	VMULPD       Z10, Z9, Z13
	VADDPD       Z13, Z12, Z12
	VADDPD       Z12, Z6, Z6

	// Element i+3 -> chain 3.
	VBROADCASTSD 24(SI)(AX*8), Z8
	VBROADCASTSD 24(DI)(AX*8), Z9
	VMOVUPD      192(R8)(BX*1), Z10
	VMOVUPD      192(R9)(BX*1), Z11
	VMULPD       Z10, Z8, Z12
	VMULPD       Z11, Z9, Z13
	VSUBPD       Z13, Z12, Z12
	VADDPD       Z12, Z3, Z3
	VMULPD       Z11, Z8, Z12
	VMULPD       Z10, Z9, Z13
	VADDPD       Z13, Z12, Z12
	VADDPD       Z12, Z7, Z7

	ADDQ $4, AX
	JMP  loop4

tail:
	// Remaining k mod 4 elements feed chain 0 sequentially (the cdot
	// tail loop).
	CMPQ AX, CX
	JGE  done

	MOVQ AX, BX
	SHLQ $6, BX
	VBROADCASTSD (SI)(AX*8), Z8
	VBROADCASTSD (DI)(AX*8), Z9
	VMOVUPD      (R8)(BX*1), Z10
	VMOVUPD      (R9)(BX*1), Z11
	VMULPD       Z10, Z8, Z12
	VMULPD       Z11, Z9, Z13
	VSUBPD       Z13, Z12, Z12
	VADDPD       Z12, Z0, Z0
	VMULPD       Z11, Z8, Z12
	VMULPD       Z10, Z9, Z13
	VADDPD       Z13, Z12, Z12
	VADDPD       Z12, Z4, Z4

	INCQ AX
	JMP  tail

done:
	// Pinned fold (s0+s1)+(s2+s3), lane-wise identical to the scalar
	// fold.
	VADDPD Z1, Z0, Z0
	VADDPD Z3, Z2, Z2
	VADDPD Z2, Z0, Z0
	VADDPD Z5, Z4, Z4
	VADDPD Z7, Z6, Z6
	VADDPD Z6, Z4, Z4
	MOVQ   grOut+40(FP), R10
	MOVQ   giOut+48(FP), R11
	VMOVUPD Z0, (R10)
	VMOVUPD Z4, (R11)
	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpy8avx512(rowRe, rowIm, coefRe, coefIm, resTRe, resTIm *float64, n int, mask uint64)
//
// Lane-masked forward-residual accumulation: for each lane b with mask
// bit b set, resT[i*8+b] += coef_b · column_j[i] elementwise over i,
// exactly as the scalar forwardResid body — per element the chain is
// dstRe += ar*cr − ai*ci, dstIm += ar*ci + ai*cr with ai = −rowIm[i],
// which folds sign-exactly to dstRe += ar*cr + rowIm*ci and
// dstIm += ar*ci − rowIm*cr (IEEE negation is exact and x−(−y) ≡ x+y).
// Merge-masked stores leave unmasked lanes' memory untouched, so lanes
// whose task does not carry row j keep their residual bits exactly.
TEXT ·axpy8avx512(SB), NOSPLIT, $0-64
	MOVQ  rowRe+0(FP), SI
	MOVQ  rowIm+8(FP), DI
	MOVQ  coefRe+16(FP), AX
	MOVQ  coefIm+24(FP), BX
	MOVQ  resTRe+32(FP), R8
	MOVQ  resTIm+40(FP), R9
	MOVQ  n+48(FP), CX
	MOVQ  mask+56(FP), DX
	KMOVW DX, K1

	VMOVUPD (AX), Z2 // cr lanes
	VMOVUPD (BX), Z3 // ci lanes

	XORQ AX, AX // i
	XORQ BX, BX // i*64 byte offset

axloop:
	CMPQ AX, CX
	JGE  axdone

	VBROADCASTSD (SI)(AX*8), Z4 // ar
	VBROADCASTSD (DI)(AX*8), Z5 // rowIm[i]

	// dstRe += ar*cr + rowIm*ci
	VMULPD  Z2, Z4, Z6
	VMULPD  Z3, Z5, Z7
	VADDPD  Z7, Z6, Z6
	VMOVUPD (R8)(BX*1), Z8
	VADDPD  Z6, Z8, Z8
	VMOVUPD Z8, K1, (R8)(BX*1)

	// dstIm += ar*ci − rowIm*cr
	VMULPD  Z3, Z4, Z6
	VMULPD  Z2, Z5, Z7
	VSUBPD  Z7, Z6, Z6
	VMOVUPD (R9)(BX*1), Z8
	VADDPD  Z6, Z8, Z8
	VMOVUPD Z8, K1, (R9)(BX*1)

	INCQ AX
	ADDQ $64, BX
	JMP  axloop

axdone:
	VZEROUPPER
	RET

// func dotChunk8avx512(rowRe, rowIm, resTRe, resTIm *float64, k int, state, out *float64, mode uint64, stride int)
//
// One (row, element-tile) chunk of the cache-blocked batch gradient: the
// same eight accumulator chains as dot8avx512, but carried across tiles
// in a 64-double per-row state so the lane-major residual can be walked
// one L1-resident tile at a time for all rows. mode bit 0 starts the
// row (zero chains), bit 1 ends it (fold chains and write the 16-double
// gr|gi lane outputs). Chain phase is preserved because tiles start at
// multiples of 4 (gradFullLanes aligns the tile size), so the
// accumulation order is exactly the scalar reference's — including the
// final tile's sub-4 tail into chain 0. stride is the dictionary row
// pitch in bytes; the loop prefetches the NEXT row's slice while
// streaming this one, since consecutive rows sit a full row apart and
// the hardware stride prefetcher loses them across page boundaries.
TEXT ·dotChunk8avx512(SB), NOSPLIT, $0-72
	MOVQ rowRe+0(FP), SI
	MOVQ rowIm+8(FP), DI
	MOVQ resTRe+16(FP), R8
	MOVQ resTIm+24(FP), R9
	MOVQ k+32(FP), CX
	MOVQ state+40(FP), R10
	MOVQ mode+56(FP), DX
	MOVQ stride+64(FP), R12
	LEAQ (SI)(R12*1), R13 // next row re (prefetch target)
	LEAQ (DI)(R12*1), R14 // next row im

	TESTQ $1, DX
	JZ    ckload
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7
	JMP    ckbody

ckload:
	VMOVUPD (R10), Z0
	VMOVUPD 64(R10), Z1
	VMOVUPD 128(R10), Z2
	VMOVUPD 192(R10), Z3
	VMOVUPD 256(R10), Z4
	VMOVUPD 320(R10), Z5
	VMOVUPD 384(R10), Z6
	VMOVUPD 448(R10), Z7

ckbody:
	XORQ AX, AX

ckloop4:
	MOVQ CX, BX
	SUBQ AX, BX
	CMPQ BX, $4
	JLT  cktail

	PREFETCHT0 (R13)(AX*8)
	PREFETCHT0 (R14)(AX*8)

	MOVQ AX, BX
	SHLQ $6, BX

	VBROADCASTSD (SI)(AX*8), Z8
	VBROADCASTSD (DI)(AX*8), Z9
	VMOVUPD      (R8)(BX*1), Z10
	VMOVUPD      (R9)(BX*1), Z11
	VMULPD       Z10, Z8, Z12
	VMULPD       Z11, Z9, Z13
	VSUBPD       Z13, Z12, Z12
	VADDPD       Z12, Z0, Z0
	VMULPD       Z11, Z8, Z12
	VMULPD       Z10, Z9, Z13
	VADDPD       Z13, Z12, Z12
	VADDPD       Z12, Z4, Z4

	VBROADCASTSD 8(SI)(AX*8), Z8
	VBROADCASTSD 8(DI)(AX*8), Z9
	VMOVUPD      64(R8)(BX*1), Z10
	VMOVUPD      64(R9)(BX*1), Z11
	VMULPD       Z10, Z8, Z12
	VMULPD       Z11, Z9, Z13
	VSUBPD       Z13, Z12, Z12
	VADDPD       Z12, Z1, Z1
	VMULPD       Z11, Z8, Z12
	VMULPD       Z10, Z9, Z13
	VADDPD       Z13, Z12, Z12
	VADDPD       Z12, Z5, Z5

	VBROADCASTSD 16(SI)(AX*8), Z8
	VBROADCASTSD 16(DI)(AX*8), Z9
	VMOVUPD      128(R8)(BX*1), Z10
	VMOVUPD      128(R9)(BX*1), Z11
	VMULPD       Z10, Z8, Z12
	VMULPD       Z11, Z9, Z13
	VSUBPD       Z13, Z12, Z12
	VADDPD       Z12, Z2, Z2
	VMULPD       Z11, Z8, Z12
	VMULPD       Z10, Z9, Z13
	VADDPD       Z13, Z12, Z12
	VADDPD       Z12, Z6, Z6

	VBROADCASTSD 24(SI)(AX*8), Z8
	VBROADCASTSD 24(DI)(AX*8), Z9
	VMOVUPD      192(R8)(BX*1), Z10
	VMOVUPD      192(R9)(BX*1), Z11
	VMULPD       Z10, Z8, Z12
	VMULPD       Z11, Z9, Z13
	VSUBPD       Z13, Z12, Z12
	VADDPD       Z12, Z3, Z3
	VMULPD       Z11, Z8, Z12
	VMULPD       Z10, Z9, Z13
	VADDPD       Z13, Z12, Z12
	VADDPD       Z12, Z7, Z7

	ADDQ $4, AX
	JMP  ckloop4

cktail:
	CMPQ AX, CX
	JGE  ckdone

	MOVQ AX, BX
	SHLQ $6, BX
	VBROADCASTSD (SI)(AX*8), Z8
	VBROADCASTSD (DI)(AX*8), Z9
	VMOVUPD      (R8)(BX*1), Z10
	VMOVUPD      (R9)(BX*1), Z11
	VMULPD       Z10, Z8, Z12
	VMULPD       Z11, Z9, Z13
	VSUBPD       Z13, Z12, Z12
	VADDPD       Z12, Z0, Z0
	VMULPD       Z11, Z8, Z12
	VMULPD       Z10, Z9, Z13
	VADDPD       Z13, Z12, Z12
	VADDPD       Z12, Z4, Z4

	INCQ AX
	JMP  cktail

ckdone:
	TESTQ $2, DX
	JNZ   ckreduce
	VMOVUPD Z0, (R10)
	VMOVUPD Z1, 64(R10)
	VMOVUPD Z2, 128(R10)
	VMOVUPD Z3, 192(R10)
	VMOVUPD Z4, 256(R10)
	VMOVUPD Z5, 320(R10)
	VMOVUPD Z6, 384(R10)
	VMOVUPD Z7, 448(R10)
	VZEROUPPER
	RET

ckreduce:
	VADDPD Z1, Z0, Z0
	VADDPD Z3, Z2, Z2
	VADDPD Z2, Z0, Z0
	VADDPD Z5, Z4, Z4
	VADDPD Z7, Z6, Z6
	VADDPD Z6, Z4, Z4
	MOVQ   out+48(FP), R11
	VMOVUPD Z0, (R11)
	VMOVUPD Z4, 64(R11)
	VZEROUPPER
	RET
