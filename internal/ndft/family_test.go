package ndft

import (
	"math"
	"math/rand"
	"testing"

	"chronos/internal/dsp"
)

func TestShiftProfile(t *testing.T) {
	mk := func() dsp.Vec { return dsp.Vec{1, 2, 3, 4, 5} }
	p := mk()
	ShiftProfile(p, 2)
	want := dsp.Vec{4, 5, 1, 2, 3}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("shift +2 = %v, want %v", p, want)
		}
	}
	ShiftProfile(p, -2)
	orig := mk()
	for i := range p {
		if p[i] != orig[i] {
			t.Fatalf("shift −2 did not undo +2: %v", p)
		}
	}
	ShiftProfile(p, 0)
	ShiftProfile(p, 5)
	ShiftProfile(p, -10)
	for i := range p {
		if p[i] != orig[i] {
			t.Fatalf("full-cycle shifts changed profile: %v", p)
		}
	}
	ShiftProfile(nil, 3) // must not panic
}

func TestFoldMassReusesDst(t *testing.T) {
	mag := []float64{1, 2, 3, 4, 5, 6, 7}
	dst := make([]float64, 0, 8)
	fold := FoldMass(dst, mag, 3)
	want := []float64{1 + 4 + 7, 2 + 5, 3 + 6}
	for i := range fold {
		if fold[i] != want[i] {
			t.Fatalf("fold = %v, want %v", fold, want)
		}
	}
	if got := FoldMass(nil, mag, 0); len(got) != 0 {
		t.Errorf("degenerate period folded to %v, want empty", got)
	}
}

func TestMemoryBytesScalesWithGrid(t *testing.T) {
	freqs := []float64{5.18e9, 5.2e9, 5.22e9, 5.24e9}
	small, err := NewPlan(freqs, TauGrid(20e-9, 0.5e-9))
	if err != nil {
		t.Fatal(err)
	}
	large, err := NewPlan(freqs, TauGrid(60e-9, 0.5e-9))
	if err != nil {
		t.Fatal(err)
	}
	if small.MemoryBytes() <= 0 || large.MemoryBytes() <= 2*small.MemoryBytes() {
		t.Errorf("memory accounting off: small=%d large=%d", small.MemoryBytes(), large.MemoryBytes())
	}
}

func TestWeightedResidualMatchesPlain(t *testing.T) {
	freqs := []float64{5.18e9, 5.2e9, 5.26e9, 5.745e9, 5.825e9}
	plan, err := NewPlan(freqs, TauGrid(30e-9, 0.5e-9))
	if err != nil {
		t.Fatal(err)
	}
	p := make(dsp.Vec, len(plan.Taus))
	p[10], p[24] = 1, complex(0.4, 0.2)
	h := make(dsp.Vec, len(freqs))
	for i, f := range freqs {
		for j, c := range p {
			if c != 0 {
				ph := math.Mod(-2*math.Pi*f*plan.Taus[j], 2*math.Pi)
				h[i] += c * dsp.FromPolar(1, ph)
			}
		}
	}
	res, err := plan.Solve(SolveRequest{H: h, InvertOptions: InvertOptions{MaxIter: 2000}})
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]float64, len(freqs))
	for i := range ones {
		ones[i] = 1
	}
	wr := plan.WeightedResidual(res.Profile, h, ones)
	if math.Abs(wr-res.Residual) > 1e-9*(1+res.Residual) {
		t.Errorf("unit-weighted residual %v != plain residual %v", wr, res.Residual)
	}
	if !math.IsNaN(plan.WeightedResidual(res.Profile, h[:2], ones)) {
		t.Error("dimension mismatch not flagged")
	}
}

// fuzzBandPlan derives a deterministic random band plan and path set
// from the fuzz seed: 14–24 center frequencies on the 5 MHz raster
// (mixing on- and off-20 MHz-raster channels, dense enough that the
// inversion is well posed — a handful of arbitrary bands cannot
// localize anything, and no fold invariant can survive a solver that
// fails to localize) and one dominant path plus an optional weaker one.
func fuzzBandPlan(seed int64) (freqs []float64, delays []float64, gains []float64) {
	rng := rand.New(rand.NewSource(seed))
	n := 14 + rng.Intn(11)
	used := map[int]bool{}
	for len(freqs) < n {
		// 5170..5835 MHz in 5 MHz steps.
		k := 1034 + rng.Intn(134)
		if used[k] {
			continue
		}
		used[k] = true
		freqs = append(freqs, float64(k)*5e6)
	}
	delays = []float64{2e-9 + rng.Float64()*18e-9}
	gains = []float64{1}
	if rng.Intn(2) == 1 {
		delays = append(delays, delays[0]+1e-9+rng.Float64()*8e-9)
		gains = append(gains, 0.3+0.3*rng.Float64())
	}
	return freqs, delays, gains
}

func synth(freqs, delays, gains []float64, shift float64) dsp.Vec {
	h := make(dsp.Vec, len(freqs))
	for i, f := range freqs {
		for k := range delays {
			ph := math.Mod(-2*math.Pi*f*(delays[k]+shift), 2*math.Pi)
			h[i] += dsp.FromPolar(gains[k], ph)
		}
	}
	return h
}

// FuzzFamilyFold drives random band plans through the family-fold
// invariants the alias ranking rests on:
//
//  1. folded mass is conserved (every grid cell lands in exactly one
//     residue);
//  2. the winning family index is stable under the per-frequency phase
//     rotation corresponding to a one-alias-period delay shift — the
//     shifted profile folds onto the same residue;
//  3. a warm-seeded window refit converges to the same first peak as
//     the cold refit.
func FuzzFamilyFold(f *testing.F) {
	for _, s := range []int64{1, 7, 42, 1234, 99999} {
		f.Add(s)
	}
	const (
		period = 25e-9
		step   = 0.5e-9
		maxTau = 60e-9
		cells  = 50 // period / step
	)
	f.Fuzz(func(t *testing.T, seed int64) {
		freqs, delays, gains := fuzzBandPlan(seed)
		plan, err := NewPlan(freqs, TauGrid(maxTau, step))
		if err != nil {
			t.Skip()
		}
		h := synth(freqs, delays, gains, 0)
		res, err := plan.Solve(SolveRequest{H: h, InvertOptions: InvertOptions{MaxIter: 1500}})
		if err != nil {
			t.Skip()
		}

		// (1) Conservation.
		fold := FoldMass(nil, res.Magnitude, cells)
		var total, folded float64
		for _, v := range res.Magnitude {
			total += v
		}
		for _, v := range fold {
			folded += v
		}
		if math.Abs(total-folded) > 1e-9*(1+total) {
			t.Fatalf("fold lost mass: %v vs %v", folded, total)
		}
		if total == 0 {
			t.Skip() // solver found nothing to fold
		}

		// (2) Family stability under a one-period delay rotation: the
		// winning residue of each solve must remain essentially tied for
		// the win in the other (two real paths with near-equal folded
		// mass may swap argmax between independent solves; a residue
		// that actually moved would hold almost no mass in the rotated
		// fold).
		argmax := func(v []float64) int {
			best := 0
			for i := range v {
				if v[i] > v[best] {
					best = i
				}
			}
			return best
		}
		massAt := func(v []float64, r int) float64 {
			m := v[r]
			if w := v[(r+cells-1)%cells]; w > m {
				m = w
			}
			if w := v[(r+1)%cells]; w > m {
				m = w
			}
			return m
		}
		h2 := synth(freqs, delays, gains, period)
		res2, err := plan.Solve(SolveRequest{H: h2, InvertOptions: InvertOptions{MaxIter: 1500}})
		if err != nil {
			t.Skip()
		}
		fold2 := FoldMass(nil, res2.Magnitude, cells)
		a, b := argmax(fold), argmax(fold2)
		if massAt(fold2, a) < 0.6*fold2[b] {
			t.Errorf("family %d lost its mass under a one-period rotation (seed %d)", a, seed)
		}
		if massAt(fold, b) < 0.6*fold[a] {
			t.Errorf("rotated winner %d holds no mass in the original fold (seed %d)", b, seed)
		}

		// (3) Warm window refit reproduces the cold first peak.
		wplan, err := NewPlan(freqs, TauGrid(24e-9, step))
		if err != nil {
			t.Skip()
		}
		if delays[0] > 22e-9 {
			t.Skip() // direct path outside the window
		}
		coldRes, err := wplan.Solve(SolveRequest{H: h, InvertOptions: InvertOptions{MaxIter: 800}})
		if err != nil {
			t.Skip()
		}
		warmRes, err := wplan.Solve(SolveRequest{H: h, Warm: coldRes.Profile, InvertOptions: InvertOptions{MaxIter: 800}})
		if err != nil {
			t.Fatal(err)
		}
		cp, okC := coldRes.FirstPeakDelay(0.2)
		wp, okW := warmRes.FirstPeakDelay(0.2)
		if okC != okW {
			t.Fatalf("warm refit peak presence %v != cold %v", okW, okC)
		}
		if okC && math.Abs(cp-wp) > step {
			t.Errorf("warm refit first peak %.3g differs from cold %.3g by more than a cell", wp, cp)
		}
	})
}
