package ndft

import (
	"testing"
	"time"

	"chronos/internal/obs"
)

// BenchmarkObsOverheadWarmStart is the committed overhead guard for the
// observability layer: it times the BenchmarkPlanSolveWarmStart hot
// path with metrics disabled and enabled in interleaved min-of-reps
// legs and FAILS if the enabled path costs more than 2% extra, or if it
// allocates. The legs use a fixed internal repetition count, so the
// assertion fires even under the CI bench-smoke's -benchtime=1x.
//
// The budget was 1% when the warm solve ran the scalar adjoint; the
// vectorized single-solve kernels roughly halved a leg's duration
// without adding any instrumentation (recording still happens once per
// batch, outside the iteration loop), so the same absolute overhead now
// doubles as a fraction — and shared CI runners show ±1–2% proportional
// frequency drift that min-of-reps cannot fully strip at the shorter
// leg length. 2% of the vectorized leg is the old 1% of the scalar leg.
func BenchmarkObsOverheadWarmStart(b *testing.B) {
	pl, h, seed := benchPlan(b)
	dst := &Result{}
	solve := func() {
		if _, err := pl.Solve(SolveRequest{H: h, Warm: seed, Dst: dst, InvertOptions: InvertOptions{MaxIter: 4000}}); err != nil {
			b.Fatal(err)
		}
	}

	obs.Reset()
	defer func() { obs.SetEnabled(false); obs.Reset() }()

	// With obs on, the hot path must stay allocation-free.
	obs.SetEnabled(true)
	if n := testing.AllocsPerRun(10, solve); n != 0 {
		b.Fatalf("instrumented warm solve allocates %v allocs/op, want 0", n)
	}

	// Leg-interleaved global minima: each round times one disabled and
	// one enabled leg back to back, so the two series ride the same
	// drift (thermal, scheduler, host frequency), and the overall
	// minimum per side estimates that path's true floor — the right
	// estimator under one-sided noise, and robust to proportional drift
	// that summing per-phase minima would bake into the ratio.
	const rounds, solvesPerLeg = 24, 25
	timeLeg := func(on bool) time.Duration {
		obs.SetEnabled(on)
		start := time.Now()
		for i := 0; i < solvesPerLeg; i++ {
			solve()
		}
		return time.Since(start)
	}
	// Warm both paths once before timing.
	timeLeg(false)
	timeLeg(true)

	off, on := time.Duration(1<<63-1), time.Duration(1<<63-1)
	for r := 0; r < rounds; r++ {
		if d := timeLeg(false); d < off {
			off = d
		}
		if d := timeLeg(true); d < on {
			on = d
		}
	}
	ratio := float64(on) / float64(off)
	b.ReportMetric(ratio, "enabled/disabled")
	if ratio > 1.02 {
		b.Fatalf("obs overhead %.2f%% exceeds the 2%% budget (disabled %v, enabled %v per leg)",
			(ratio-1)*100, off, on)
	}

	// Keep the benchmark honest as a benchmark too: report the
	// instrumented per-op cost for the b.N protocol.
	obs.SetEnabled(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solve()
	}
}
