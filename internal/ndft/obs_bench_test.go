package ndft

import (
	"testing"
	"time"

	"chronos/internal/obs"
)

// BenchmarkObsOverheadWarmStart is the committed overhead guard for the
// observability layer: it times the BenchmarkPlanSolveWarmStart hot
// path with metrics disabled and enabled in interleaved min-of-reps
// legs and FAILS if the enabled path costs more than 1% extra, or if it
// allocates. The legs use a fixed internal repetition count, so the
// assertion fires even under the CI bench-smoke's -benchtime=1x.
func BenchmarkObsOverheadWarmStart(b *testing.B) {
	pl, h, seed := benchPlan(b)
	dst := &Result{}
	solve := func() {
		if _, err := pl.Solve(SolveRequest{H: h, Warm: seed, Dst: dst, InvertOptions: InvertOptions{MaxIter: 4000}}); err != nil {
			b.Fatal(err)
		}
	}

	obs.Reset()
	defer func() { obs.SetEnabled(false); obs.Reset() }()

	// With obs on, the hot path must stay allocation-free.
	obs.SetEnabled(true)
	if n := testing.AllocsPerRun(10, solve); n != 0 {
		b.Fatalf("instrumented warm solve allocates %v allocs/op, want 0", n)
	}

	// Interleaved min-of-reps: alternating legs cancel drift (thermal,
	// scheduler), and the minimum is the right estimator for "what does
	// the code cost" under one-sided noise.
	const legs, solvesPerLeg = 8, 25
	minLeg := func(on bool) time.Duration {
		obs.SetEnabled(on)
		best := time.Duration(1<<63 - 1)
		for l := 0; l < legs; l++ {
			start := time.Now()
			for i := 0; i < solvesPerLeg; i++ {
				solve()
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	// Warm both paths once before timing.
	minLeg(false)
	minLeg(true)

	var off, on time.Duration
	for r := 0; r < 2; r++ {
		off += minLeg(false)
		on += minLeg(true)
	}
	ratio := float64(on) / float64(off)
	b.ReportMetric(ratio, "enabled/disabled")
	if ratio > 1.01 {
		b.Fatalf("obs overhead %.2f%% exceeds the 1%% budget (disabled %v, enabled %v per leg)",
			(ratio-1)*100, off, on)
	}

	// Keep the benchmark honest as a benchmark too: report the
	// instrumented per-op cost for the b.N protocol.
	obs.SetEnabled(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solve()
	}
}
