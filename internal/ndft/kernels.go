package ndft

import "os"

// kernelTier identifies the SIMD kernel family the solver hot loops run
// on this machine. Exactly one tier is active per process, resolved once
// at init (CPUID on amd64, architecture on arm64) and clamped by the
// CHRONOS_NDFT_KERNEL environment variable (downgrade-only, so a forced
// tier can never select instructions the CPU lacks). Every tier — the
// scalar fallback included — implements the same fixed-K accumulation
// contract (see cdot), so the tier changes throughput, never results.
type kernelTier uint8

const (
	tierScalar kernelTier = iota
	tierAVX2
	tierAVX512
	tierNEON
)

// String returns the tier name used by VectorKernel, the
// CHRONOS_NDFT_KERNEL variable, BENCH output, and the obs snapshot.
func (t kernelTier) String() string {
	switch t {
	case tierAVX512:
		return "avx512"
	case tierAVX2:
		return "avx2"
	case tierNEON:
		return "neon"
	}
	return "scalar"
}

// lanes is the tier's batch-lane width: solver tasks per SIMD register
// in the batched gradient kernels. Eight float64 lanes fill a zmm, four
// fill a ymm or a NEON q-register pair. The scalar tier keeps the
// historical width of eight so group partitioning — which never affects
// results, only grouping — is unchanged from the pre-tier code.
func (t kernelTier) lanes() int {
	if t == tierAVX2 || t == tierNEON {
		return 4
	}
	return 8
}

// maxLanes bounds every tier's lane width; fixed-size per-lane scratch
// arrays (batchState.cr/ci/gr/gi, group membership) are sized by it.
const maxLanes = 8

// tileFor sizes the element tile of the cache-blocked gradient walk so
// one lane-major residual tile stays L1-resident per planar component
// (lanes × tile × 8 bytes = 8 KiB) regardless of lane width. The tile
// must be a multiple of 4 to preserve the accumulator-chain phase of
// the fixed-K contract across tile boundaries.
func tileFor(lanes int) int { return 1024 / lanes }

var (
	// activeTier is the resolved kernel tier. Mutate only through
	// setKernelTier (tests/benches); the solver reads it on every
	// gradient pass.
	activeTier = resolveTier()
	// batchLanes and dotTile are the active tier's lane width and
	// element-tile size, kept in lockstep with activeTier.
	batchLanes = activeTier.lanes()
	dotTile    = tileFor(activeTier.lanes())
)

// resolveTier detects the best tier the hardware supports and applies
// the CHRONOS_NDFT_KERNEL clamp. The clamp is downgrade-only: it can
// force the scalar contract path (CI does, on AVX-512 runners) or step
// an amd64 machine down to avx2, never select an unsupported tier.
func resolveTier() kernelTier {
	t := detectTier()
	if name := os.Getenv("CHRONOS_NDFT_KERNEL"); name != "" {
		if req, ok := parseTier(name); ok {
			t = clampTier(t, req)
		}
	}
	return t
}

func parseTier(name string) (kernelTier, bool) {
	switch name {
	case "scalar":
		return tierScalar, true
	case "avx2":
		return tierAVX2, true
	case "avx512":
		return tierAVX512, true
	case "neon":
		return tierNEON, true
	}
	return tierScalar, false
}

// clampTier resolves a requested tier against the detected one:
// requests for the detected tier, the scalar fallback, or a strict
// downgrade within the same instruction family are honored; anything
// else (an upgrade, or a cross-architecture tier) keeps the detection.
func clampTier(detected, requested kernelTier) kernelTier {
	switch {
	case requested == detected || requested == tierScalar:
		return requested
	case detected == tierAVX512 && requested == tierAVX2:
		return requested
	}
	return detected
}

// setKernelTier is the test/bench hook behind ForceKernel: it swaps the
// active tier (clamped against detection) and the lane-width-derived
// sizing in lockstep, returning the previous tier. Not safe to call
// concurrently with solves.
func setKernelTier(t kernelTier) kernelTier {
	prev := activeTier
	t = clampTier(detectTier(), t)
	activeTier = t
	batchLanes = t.lanes()
	dotTile = tileFor(t.lanes())
	obsKernelLanes.Set(float64(batchLanes))
	return prev
}

// VectorKernel reports the active SIMD kernel tier as a string:
// "avx512", "avx2", "neon", or "scalar". Every tier returns
// byte-identical solver results; the tier determines only throughput.
// Campaign snapshots and CI gates key their throughput assertions on
// this value.
func VectorKernel() string { return activeTier.String() }

// ForceKernel forces the kernel tier by name ("scalar", "avx2",
// "avx512", "neon") and returns the previously active tier's name. The
// request is clamped downgrade-only against the detected hardware —
// forcing an unavailable tier is an error, so a successful call always
// means subsequent solves run the named tier. It exists for benchmarks
// and tests that A/B tiers in one process (the CHRONOS_NDFT_KERNEL
// environment variable is the process-level equivalent); it is not safe
// to call concurrently with solves.
func ForceKernel(name string) (prev string, err error) {
	req, ok := parseTier(name)
	if !ok {
		return activeTier.String(), errUnknownKernel
	}
	if clampTier(detectTier(), req) != req {
		return activeTier.String(), errKernelUnavailable
	}
	return setKernelTier(req).String(), nil
}

// axpyMask expands a 4-bit lane mask into per-lane all-ones/zero
// qwords — the blend masks the 4-lane tiers (AVX2 VMASKMOVPD, NEON
// VBIT) use to emulate the AVX-512 merge-masked store: masked-out
// lanes' memory must not move a single bit.
var axpyMask = func() (t [16][4]uint64) {
	for m := range t {
		for b := 0; b < 4; b++ {
			if m&(1<<b) != 0 {
				t[m][b] = ^uint64(0)
			}
		}
	}
	return
}()

// adjDot is the solver's adjoint inner product Σ a[k]·x[k] (planar, no
// conjugation), dispatched on the active tier. The accumulation-chain
// layout is a fixed contract shared by every implementation: K=4
// partial sums, element i feeding chain i mod 4 through the stride-4
// main loop, the tail (k mod 4 elements) feeding chain 0 sequentially,
// and the pinned fold (s0+s1)+(s2+s3). cdot is the scalar reference;
// the SIMD tiers run the four chains in vector lanes and leave the tail
// and fold to this wrapper, so scalar and vector paths are
// byte-identical to each other on every tier.
func adjDot(aRe, aIm, xRe, xIm []float64) (float64, float64) {
	k := len(aRe)
	if activeTier == tierScalar || k < 8 {
		return cdot(aRe, aIm, xRe, xIm)
	}
	aIm = aIm[:k]
	xRe = xRe[:k]
	xIm = xIm[:k]
	var p [8]float64 // sr0..sr3, si0..si3
	k4 := k &^ 3
	kernAdjDot(&aRe[0], &aIm[0], &xRe[0], &xIm[0], k4, &p[0])
	sr0, si0 := p[0], p[4]
	for i := k4; i < k; i++ {
		sr0 += aRe[i]*xRe[i] - aIm[i]*xIm[i]
		si0 += aRe[i]*xIm[i] + aIm[i]*xRe[i]
	}
	return (sr0 + p[1]) + (p[2] + p[3]), (si0 + p[5]) + (p[6] + p[7])
}

// axpyCol accumulates one scaled conjugated dictionary column into the
// residual: dst[i] += conj(row[i])·(cr+i·ci) elementwise, the inner
// loop of forwardResid, dispatched on the active tier. The operation is
// elementwise — no accumulation chains — so the vector form is
// trivially bit-identical to the scalar loop (the sign-folded form
// dstRe += ar·cr + rowIm·ci is exact: IEEE negation is exact and
// x−(−y) ≡ x+y).
func axpyCol(rowRe, rowIm []float64, cr, ci float64, dstRe, dstIm []float64) {
	n := len(rowRe)
	rowIm = rowIm[:n]
	dstRe = dstRe[:n]
	dstIm = dstIm[:n]
	i := 0
	if activeTier != tierScalar && n >= 8 {
		n4 := n &^ 3
		kernAxpyCol(&rowRe[0], &rowIm[0], cr, ci, &dstRe[0], &dstIm[0], n4)
		i = n4
	}
	for ; i < n; i++ {
		ar := rowRe[i]
		ai := -rowIm[i] // F[i][j] = conj(Fᴴ[j][i])
		dstRe[i] += ar*cr - ai*ci
		dstIm[i] += ar*ci + ai*cr
	}
}
