package ndft

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"chronos/internal/dsp"
	"chronos/internal/wifi"
)

func fig4Plan(t testing.TB) (*Plan, dsp.Vec) {
	t.Helper()
	freqs := wifi.Centers(wifi.USBands())
	taus := TauGrid(40e-9, 0.1e-9)
	pl, err := NewPlan(freqs, taus)
	if err != nil {
		t.Fatal(err)
	}
	return pl, synthChannel(freqs, []float64{5.2, 10, 16}, []float64{1, 0.7, 0.5})
}

// TestPlanSolveMatchesInvert pins the compatibility contract: Matrix.Invert
// is a thin wrapper over Plan.Solve, so the two entry points must agree
// exactly on the same inputs.
func TestPlanSolveMatchesInvert(t *testing.T) {
	freqs := wifi.Centers(wifi.USBands())
	taus := TauGrid(40e-9, 0.1e-9)
	m, err := NewMatrix(freqs, taus)
	if err != nil {
		t.Fatal(err)
	}
	h := synthChannel(freqs, []float64{5.2, 10, 16}, []float64{1, 0.7, 0.5})
	opts := InvertOptions{MaxIter: 2000}

	a, err := m.Invert(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Plan().Solve(SolveRequest{H: h, InvertOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	if a.Iterations != b.Iterations || a.Converged != b.Converged || a.Residual != b.Residual {
		t.Errorf("wrapper diverged: %+v vs %+v", a, b)
	}
	for i := range a.Profile {
		if a.Profile[i] != b.Profile[i] {
			t.Fatalf("profile[%d]: %v vs %v", i, a.Profile[i], b.Profile[i])
		}
	}
}

// TestPlanWarmStartEquivalence is the warm-start acceptance test: warm
// and cold solves must converge to the same first-peak delay (the
// solver's fixed points do not depend on the start), and on the
// steady-state case warm starts are built for — a target that barely
// moved, a fresh noise draw — the warm solve must take far fewer
// iterations.
func TestPlanWarmStartEquivalence(t *testing.T) {
	pl, _ := fig4Plan(t)
	freqs := pl.Freqs
	opts := InvertOptions{MaxIter: 4000}
	rng := rand.New(rand.NewSource(21))
	noisy := func(delaysNs ...float64) dsp.Vec {
		h := synthChannel(freqs, delaysNs, []float64{1, 0.7, 0.5})
		for i := range h {
			h[i] += complex(rng.NormFloat64()*0.05, rng.NormFloat64()*0.05)
		}
		return h
	}

	cold0, err := pl.Solve(SolveRequest{H: noisy(5.2, 10, 16), InvertOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	// The static steady state: same geometry, new measurement noise.
	h := noisy(5.2, 10, 16)
	cold, err := pl.Solve(SolveRequest{H: h, InvertOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := pl.Solve(SolveRequest{H: h, Warm: cold0.Profile, InvertOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	pc, okC := cold.FirstPeakDelay(0.3)
	pw, okW := warm.FirstPeakDelay(0.3)
	if !okC || !okW {
		t.Fatal("missing peaks")
	}
	if math.Abs(pc-pw) > 0.2e-9 {
		t.Errorf("warm first peak %v vs cold %v", pw, pc)
	}
	if !warm.Converged {
		t.Error("warm solve did not converge")
	}
	if warm.Iterations*2 > cold.Iterations {
		t.Errorf("steady-state warm start took %d iterations vs cold %d, want < half", warm.Iterations, cold.Iterations)
	}
	t.Logf("static steady state: cold %d, warm %d iterations", cold.Iterations, warm.Iterations)

	// A drifted target (~0.2 ns): the warm fix must still agree with the
	// cold one — warm starting trades iterations, never the answer.
	hd := noisy(5.4, 10.2, 16.2)
	coldD, err := pl.Solve(SolveRequest{H: hd, InvertOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	warmD, err := pl.Solve(SolveRequest{H: hd, Warm: cold0.Profile, InvertOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	pcD, okC := coldD.FirstPeakDelay(0.3)
	pwD, okW := warmD.FirstPeakDelay(0.3)
	if !okC || !okW {
		t.Fatal("missing drifted peaks")
	}
	if math.Abs(pcD-pwD) > 0.2e-9 {
		t.Errorf("drifted warm first peak %v vs cold %v", pwD, pcD)
	}
}

// TestPlanWarmStartRejectsWrongLength guards the grid-length contract.
func TestPlanWarmStartRejectsWrongLength(t *testing.T) {
	pl, h := fig4Plan(t)
	if _, err := pl.Solve(SolveRequest{H: h, Warm: make(dsp.Vec, 3), InvertOptions: InvertOptions{}}); err == nil {
		t.Error("mismatched warm-start length accepted")
	}
}

// TestPlanSolveDstReuse checks that a recycled Result reproduces a fresh
// one exactly — the allocation-free steady-state path.
func TestPlanSolveDstReuse(t *testing.T) {
	pl, h := fig4Plan(t)
	opts := InvertOptions{MaxIter: 1500}
	fresh, err := pl.Solve(SolveRequest{H: h, InvertOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	dst := &Result{}
	for k := 0; k < 3; k++ {
		got, err := pl.Solve(SolveRequest{H: h, Dst: dst, InvertOptions: opts})
		if err != nil {
			t.Fatal(err)
		}
		if got != dst {
			t.Fatal("Solve did not return dst")
		}
		if got.Iterations != fresh.Iterations || got.Residual != fresh.Residual {
			t.Fatalf("pass %d diverged: %d/%v vs %d/%v", k, got.Iterations, got.Residual, fresh.Iterations, fresh.Residual)
		}
		for i := range fresh.Profile {
			if got.Profile[i] != fresh.Profile[i] {
				t.Fatalf("pass %d profile[%d] differs", k, i)
			}
		}
	}
}

// TestPlanSolveSteadyStateAllocsNothing is the zero-alloc acceptance
// criterion: with a recycled Result, repeat solves on one plan perform
// no heap allocation.
func TestPlanSolveSteadyStateAllocsNothing(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented sync.Pool drops items; zero-alloc holds only in normal builds")
	}
	pl, h := fig4Plan(t)
	opts := InvertOptions{MaxIter: 200}
	dst := &Result{}
	warm, err := pl.Solve(SolveRequest{H: h, Dst: dst, InvertOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	seed := warm.Profile
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := pl.Solve(SolveRequest{H: h, Warm: seed, Dst: dst, InvertOptions: opts}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Solve allocated %.1f objects/op, want 0", allocs)
	}
}

// TestPlanSolveConcurrentIdentical exercises the shared-plan contract
// under the race detector: concurrent solves on one Plan must not
// interfere and must all produce the serial result.
func TestPlanSolveConcurrentIdentical(t *testing.T) {
	pl, h := fig4Plan(t)
	opts := InvertOptions{MaxIter: 800}
	want, err := pl.Solve(SolveRequest{H: h, InvertOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	results := make([]*Result, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = pl.Solve(SolveRequest{H: h, InvertOptions: opts})
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatal(errs[w])
		}
		if results[w].Iterations != want.Iterations || results[w].Residual != want.Residual {
			t.Fatalf("worker %d diverged: %d/%v vs %d/%v",
				w, results[w].Iterations, results[w].Residual, want.Iterations, want.Residual)
		}
		for i := range want.Profile {
			if results[w].Profile[i] != want.Profile[i] {
				t.Fatalf("worker %d profile[%d] differs", w, i)
			}
		}
	}
}

// --- Plan.Solve micro-benchmarks (the zero-alloc perf trajectory) ---

func benchPlan(b *testing.B) (*Plan, dsp.Vec, dsp.Vec) {
	b.Helper()
	pl, _ := fig4Plan(b)
	rng := rand.New(rand.NewSource(5))
	noisy := func() dsp.Vec {
		h := synthChannel(pl.Freqs, []float64{5.2, 10, 16}, []float64{1, 0.7, 0.5})
		for i := range h {
			h[i] += complex(rng.NormFloat64()*0.05, rng.NormFloat64()*0.05)
		}
		return h
	}
	seedRes, err := pl.Solve(SolveRequest{H: noisy(), InvertOptions: InvertOptions{MaxIter: 4000}})
	if err != nil {
		b.Fatal(err)
	}
	// The next sweep's measurement: same geometry, fresh noise — the
	// static tracking steady state.
	return pl, noisy(), seedRes.Profile
}

func BenchmarkPlanSolveColdStart(b *testing.B) {
	pl, h, _ := benchPlan(b)
	dst := &Result{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pl.Solve(SolveRequest{H: h, Dst: dst, InvertOptions: InvertOptions{MaxIter: 4000}})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Iterations), "iters/op")
	}
}

func BenchmarkPlanSolveWarmStart(b *testing.B) {
	pl, h, seed := benchPlan(b)
	dst := &Result{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pl.Solve(SolveRequest{H: h, Warm: seed, Dst: dst, InvertOptions: InvertOptions{MaxIter: 4000}})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Iterations), "iters/op")
	}
}

// TestGapStopWarmColdEquivalence is the PR-5 acceptance fixture for the
// noise-adaptive stopping rule, at three SNRs: with a per-sweep noise
// floor supplied, both cold and warm solves must stop early via the
// duality-gap certificate (far below the fixed-tolerance iteration
// counts), report convergence, and agree on the first-peak delay — the
// polish pass canonicalizes the stopped iterate, so early stopping
// trades iterations, not answers.
func TestGapStopWarmColdEquivalence(t *testing.T) {
	freqs := wifi.Centers(wifi.Bands5GHz())
	pl, err := NewPlan(freqs, TauGrid(20e-9, 0.5e-9))
	if err != nil {
		t.Fatal(err)
	}
	n, _ := pl.Dims()
	for _, sigma := range []float64{0.02, 0.05, 0.1} {
		rng := rand.New(rand.NewSource(9))
		noisy := func() dsp.Vec {
			h := synthChannel(freqs, []float64{7, 11.2}, []float64{1, 0.6})
			for i := range h {
				h[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
			}
			return h
		}
		wNorm := sigma * math.Sqrt(2*float64(n))
		opts := InvertOptions{MaxIter: 4000, NoiseFloor: wNorm}
		seed, err := pl.Solve(SolveRequest{H: noisy(), InvertOptions: opts})
		if err != nil {
			t.Fatal(err)
		}
		h := noisy()
		cold, err := pl.Solve(SolveRequest{H: h, InvertOptions: opts})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := pl.Solve(SolveRequest{H: h, Warm: seed.Profile, InvertOptions: opts})
		if err != nil {
			t.Fatal(err)
		}
		full, err := pl.Solve(SolveRequest{H: h, InvertOptions: InvertOptions{MaxIter: 4000, Stop: StopIterate}})
		if err != nil {
			t.Fatal(err)
		}
		if !cold.Converged || !warm.Converged {
			t.Fatalf("sigma=%v: gap solves did not converge (cold %v, warm %v)", sigma, cold.Converged, warm.Converged)
		}
		if cold.GapAtStop <= 0 {
			t.Errorf("sigma=%v: cold gap telemetry missing (GapAtStop=%v)", sigma, cold.GapAtStop)
		}
		if cold.Work >= full.Work {
			t.Errorf("sigma=%v: gap-stopped cold work %d not below fixed-tolerance work %d", sigma, cold.Work, full.Work)
		}
		if warm.Work*2 >= cold.Work {
			t.Errorf("sigma=%v: warm work %d not clearly below cold %d", sigma, warm.Work, cold.Work)
		}
		pc, okC := cold.FirstPeakDelay(0.3)
		pw, okW := warm.FirstPeakDelay(0.3)
		pf, okF := full.FirstPeakDelay(0.3)
		if !okC || !okW || !okF {
			t.Fatalf("sigma=%v: missing peaks", sigma)
		}
		if math.Abs(pc-pw) > 0.2e-9 {
			t.Errorf("sigma=%v: warm first peak %v vs cold %v", sigma, pw, pc)
		}
		if math.Abs(pc-pf) > 0.5e-9 {
			t.Errorf("sigma=%v: gap-stopped first peak %v vs fixed-tolerance %v", sigma, pc, pf)
		}
	}
}

// TestGapTolOverride pins the absolute-tolerance escape hatch: a huge
// GapTol stops almost immediately, a zero NoiseFloor with no GapTol
// disables the gap rule entirely.
func TestGapTolOverride(t *testing.T) {
	pl, h := fig4Plan(t)
	loose, err := pl.Solve(SolveRequest{H: h, InvertOptions: InvertOptions{MaxIter: 2000, GapTol: 1e12}})
	if err != nil {
		t.Fatal(err)
	}
	if !loose.Converged || loose.Iterations > 2*gapEvery+polishBudget {
		t.Errorf("huge GapTol: iterations %d, converged %v — want near-immediate stop", loose.Iterations, loose.Converged)
	}
	plain, err := pl.Solve(SolveRequest{H: h, InvertOptions: InvertOptions{MaxIter: 2000}})
	if err != nil {
		t.Fatal(err)
	}
	if plain.GapAtStop != 0 {
		t.Errorf("no tolerance source: gap checks ran anyway (GapAtStop=%v)", plain.GapAtStop)
	}
}
