package ndft

import (
	"math"
	"sort"

	"chronos/internal/dsp"
)

// This file holds ndft's measurement-domain noise estimator. The
// observation model is h = F·p + w with w circular complex Gaussian
// noise. For any grid cell j the adjoint correlation (Fᴴw)ⱼ is a sum of
// n unit-magnitude rotations of the noise samples, so its magnitude is
// Rayleigh with scale σ·√n (σ the per-component noise std). Cells
// carrying no signal draw |(Fᴴ·)ⱼ| from that one Rayleigh law, and the
// MAD — a robust scale statistic over the off-support bins — recovers
// σ·√n as long as the cells a sparse signal (and its grating-lobe
// sidelobes) lifts stay a minority. That holds for noise-dominated
// measurements; strong signals on this highly coherent dictionary leak
// sidelobe mass into most cells and bias the estimate upward, which is
// why the production estimation stack prefers the tof layer's
// pair-spread estimator (exactly signal-free) and treats this one as
// the no-repeated-pairs fallback.

// rayleighMedian and rayleighMAD are the median and the median absolute
// deviation of the unit-scale Rayleigh distribution: med = √(2·ln 2) and
// the numerical solution of F(med+d) − F(med−d) = ½. They calibrate the
// robust statistics below so the returned scale is unbiased on pure
// noise.
const (
	rayleighMedian = 1.1774100226
	rayleighMAD    = 0.4484937750
)

// noiseScaleMAD estimates the Rayleigh scale of a sample of correlation
// magnitudes via the median absolute deviation, which stays calibrated
// when a minority of the cells carry signal mass (the off-support purity
// property the fuzz target pins). mags is sorted in place. Returns 0 for
// empty input.
func noiseScaleMAD(mags []float64) float64 {
	if len(mags) == 0 {
		return 0
	}
	sort.Float64s(mags)
	med := mags[len(mags)/2]
	for i, v := range mags {
		mags[i] = math.Abs(v - med)
	}
	sort.Float64s(mags)
	return mags[len(mags)/2] / rayleighMAD
}

// noiseNormFromScale converts a Rayleigh correlation scale s = σ·√n into
// the expected L2 norm of the length-n noise vector: E‖w‖² = 2nσ² = 2s²,
// so ‖w‖ ≈ s·√2 — independent of both grid and measurement dimensions.
func noiseNormFromScale(s float64) float64 { return s * math.Sqrt2 }

// NoiseFloor estimates the L2 norm of the noise component of measurement
// h from the scale of its adjoint-correlation magnitudes across the
// delay grid, using the MAD estimator above (a sparse multipath signal
// lifts a minority of cells; the robust scale tracks the noise law of
// the rest). The returned value is directly comparable to
// Result.Residual: a solve converged to the noise floor leaves a
// residual of about this norm. It is scale-equivariant —
// NoiseFloor(c·h) = |c|·NoiseFloor(h) — and costs one dense adjoint
// pass.
func (pl *Plan) NoiseFloor(h dsp.Vec) float64 {
	n, m := pl.n, pl.m
	if len(h) != n {
		return math.NaN()
	}
	w := pl.getWorkspace()
	defer pl.ws.Put(w)
	split(w.hRe, w.hIm, h)
	mags := w.corr[:0]
	for j := 0; j < m; j++ {
		cr, ci := adjDot(pl.fhRe[j*n:(j+1)*n], pl.fhIm[j*n:(j+1)*n], w.hRe, w.hIm)
		mags = append(mags, math.Hypot(cr, ci))
	}
	return noiseNormFromScale(noiseScaleMAD(mags))
}
