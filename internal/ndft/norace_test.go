//go:build !race

package ndft

const raceEnabled = false
