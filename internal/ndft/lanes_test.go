//go:build amd64

package ndft

import (
	"math"
	"math/rand"
	"testing"
)

// refDot is the scalar reference chain arithmetic of the gradient pass's
// inline dot (two-way unroll, four chains) — the solver's numerical
// contract that every vector lane must reproduce bit for bit.
func refDot(aRe, aIm, xRe, xIm []float64) (float64, float64) {
	n := len(aRe)
	var gr0, gi0, gr1, gi1 float64
	i := 0
	for ; i+2 <= n; i += 2 {
		ar0, ai0, br0, bi0 := aRe[i], aIm[i], xRe[i], xIm[i]
		gr0 += ar0*br0 - ai0*bi0
		gi0 += ar0*bi0 + ai0*br0
		ar1, ai1, br1, bi1 := aRe[i+1], aIm[i+1], xRe[i+1], xIm[i+1]
		gr1 += ar1*br1 - ai1*bi1
		gi1 += ar1*bi1 + ai1*br1
	}
	if i < n {
		gr0 += aRe[i]*xRe[i] - aIm[i]*xIm[i]
		gi0 += aRe[i]*xIm[i] + aIm[i]*xRe[i]
	}
	return gr0 + gr1, gi0 + gi1
}

// TestDotChunkLanesBitExact pins the tiled kernel: chaining
// dotChunk8avx512 across element tiles must reproduce the one-shot
// reference dot exactly in every lane, for tile splits that exercise
// first/middle/last modes and odd tails.
func TestDotChunkLanesBitExact(t *testing.T) {
	if !useDotLanes {
		t.Skip("no AVX-512 on this machine")
	}
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 2, 127, 128, 129, 255, 256, 300, 720} {
		rowRe := make([]float64, n)
		rowIm := make([]float64, n)
		resTRe := make([]float64, n*laneWidth)
		resTIm := make([]float64, n*laneWidth)
		lanes := make([][2][]float64, laneWidth)
		for b := range lanes {
			lanes[b][0] = make([]float64, n)
			lanes[b][1] = make([]float64, n)
		}
		state := make([]float64, 4*laneWidth)
		out := make([]float64, 2*laneWidth)
		for trial := 0; trial < 10; trial++ {
			for i := 0; i < n; i++ {
				rowRe[i] = rng.NormFloat64()
				rowIm[i] = rng.NormFloat64()
				for b := 0; b < laneWidth; b++ {
					xr, xi := rng.NormFloat64(), rng.NormFloat64()
					lanes[b][0][i], lanes[b][1][i] = xr, xi
					resTRe[i*laneWidth+b] = xr
					resTIm[i*laneWidth+b] = xi
				}
			}
			for i0 := 0; i0 < n; i0 += dotTile {
				tl := dotTile
				if n-i0 < tl {
					tl = n - i0
				}
				var mode uint64
				if i0 == 0 {
					mode |= 1
				}
				if i0+tl == n {
					mode |= 2
				}
				dotChunk8avx512(&rowRe[i0], &rowIm[i0], &resTRe[i0*laneWidth], &resTIm[i0*laneWidth], tl, &state[0], &out[0], mode, n*8)
			}
			for b := 0; b < laneWidth; b++ {
				wantR, wantI := refDot(rowRe, rowIm, lanes[b][0], lanes[b][1])
				if out[b] != wantR || out[laneWidth+b] != wantI {
					t.Fatalf("n=%d lane=%d: got (%v,%v) want (%v,%v)", n, b, out[b], out[laneWidth+b], wantR, wantI)
				}
			}
		}
	}
}

// refAxpy is the scalar forwardResid accumulation for one column: the
// reference chain the masked axpy kernel's active lanes must reproduce.
func refAxpy(rowRe, rowIm []float64, cr, ci float64, dstRe, dstIm []float64) {
	for i, ar := range rowRe {
		ai := -rowIm[i]
		dstRe[i] += ar*cr - ai*ci
		dstIm[i] += ar*ci + ai*cr
	}
}

// TestAxpyLanesBitExact pins the masked accumulation kernel: active
// lanes must match the scalar forwardResid chain exactly, and masked-out
// lanes must not move a single bit (including signed zeros and NaNs).
func TestAxpyLanesBitExact(t *testing.T) {
	if !useDotLanes {
		t.Skip("no AVX-512 on this machine")
	}
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 5, 35, 150} {
		rowRe := make([]float64, n)
		rowIm := make([]float64, n)
		resTRe := make([]float64, n*laneWidth)
		resTIm := make([]float64, n*laneWidth)
		want := make([][2][]float64, laneWidth)
		for b := range want {
			want[b][0] = make([]float64, n)
			want[b][1] = make([]float64, n)
		}
		var cr, ci [laneWidth]float64
		for trial := 0; trial < 50; trial++ {
			mask := uint64(rng.Intn(256))
			scale := math.Pow(10, float64(rng.Intn(40)-20))
			for b := 0; b < laneWidth; b++ {
				cr[b], ci[b] = rng.NormFloat64()*scale, rng.NormFloat64()*scale
			}
			for i := 0; i < n; i++ {
				rowRe[i] = rng.NormFloat64()
				rowIm[i] = rng.NormFloat64()
				for b := 0; b < laneWidth; b++ {
					xr, xi := rng.NormFloat64(), rng.NormFloat64()
					switch rng.Intn(8) {
					case 0:
						xr = math.Copysign(0, xr) // signed zeros must survive masking
					case 1:
						xr = math.NaN()
					}
					want[b][0][i], want[b][1][i] = xr, xi
					resTRe[i*laneWidth+b] = xr
					resTIm[i*laneWidth+b] = xi
				}
			}
			for b := 0; b < laneWidth; b++ {
				if mask&(1<<b) != 0 {
					refAxpy(rowRe, rowIm, cr[b], ci[b], want[b][0], want[b][1])
				}
			}
			axpy8avx512(&rowRe[0], &rowIm[0], &cr[0], &ci[0], &resTRe[0], &resTIm[0], n, mask)
			for b := 0; b < laneWidth; b++ {
				for i := 0; i < n; i++ {
					gr, gi := resTRe[i*laneWidth+b], resTIm[i*laneWidth+b]
					wr, wi := want[b][0][i], want[b][1][i]
					if math.Float64bits(gr) != math.Float64bits(wr) || math.Float64bits(gi) != math.Float64bits(wi) {
						t.Fatalf("n=%d mask=%02x lane=%d i=%d: got (%v,%v) want (%v,%v)", n, mask, b, i, gr, gi, wr, wi)
					}
				}
			}
		}
	}
}

// TestDotLanesBitExact pins the lane kernel's contract: every lane of
// dot8avx512 must equal the scalar reference dot exactly, for every
// vector length (odd tails included), across magnitudes from subnormal
// to huge.
func TestDotLanesBitExact(t *testing.T) {
	if !useDotLanes {
		t.Skip("no AVX-512 on this machine")
	}
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 7, 16, 35, 36, 101} {
		rowRe := make([]float64, n)
		rowIm := make([]float64, n)
		resTRe := make([]float64, n*laneWidth)
		resTIm := make([]float64, n*laneWidth)
		lanes := make([][4][]float64, laneWidth) // per-lane xRe, xIm
		for b := range lanes {
			lanes[b][0] = make([]float64, n)
			lanes[b][1] = make([]float64, n)
		}
		for trial := 0; trial < 50; trial++ {
			scale := math.Pow(10, float64(rng.Intn(40)-20))
			for i := 0; i < n; i++ {
				rowRe[i] = rng.NormFloat64()
				rowIm[i] = rng.NormFloat64()
				for b := 0; b < laneWidth; b++ {
					xr, xi := rng.NormFloat64()*scale, rng.NormFloat64()*scale
					if rng.Intn(5) == 0 {
						xr = 0 // exercise exact zeros (sparse residuals)
					}
					lanes[b][0][i], lanes[b][1][i] = xr, xi
					resTRe[i*laneWidth+b] = xr
					resTIm[i*laneWidth+b] = xi
				}
			}
			var gr, gi [laneWidth]float64
			dot8avx512(&rowRe[0], &rowIm[0], &resTRe[0], &resTIm[0], n, &gr[0], &gi[0])
			for b := 0; b < laneWidth; b++ {
				wantR, wantI := refDot(rowRe, rowIm, lanes[b][0], lanes[b][1])
				if gr[b] != wantR || gi[b] != wantI {
					t.Fatalf("n=%d lane=%d: got (%v,%v) want (%v,%v)", n, b, gr[b], gi[b], wantR, wantI)
				}
			}
		}
	}
}
