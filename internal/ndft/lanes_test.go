//go:build (amd64 || arm64) && !ndft_noasm

package ndft

import (
	"math"
	"math/rand"
	"testing"
)

// TestDotChunkLanesBitExact pins the tiled kernel on every available
// tier: chaining kernDotChunk across element tiles must reproduce the
// one-shot reference dot (cdot, the fixed-K contract) exactly in every
// lane, for tile splits that exercise first/middle/last modes and odd
// tails.
func TestDotChunkLanesBitExact(t *testing.T) {
	for _, tier := range vectorTiers() {
		t.Run(tier.String(), func(t *testing.T) {
			forceTier(t, tier)
			lw := batchLanes
			rng := rand.New(rand.NewSource(23))
			for _, n := range []int{1, 2, 127, 128, 129, 255, 256, 300, 720} {
				rowRe := make([]float64, n)
				rowIm := make([]float64, n)
				resTRe := make([]float64, n*lw)
				resTIm := make([]float64, n*lw)
				lanes := make([][2][]float64, lw)
				for b := range lanes {
					lanes[b][0] = make([]float64, n)
					lanes[b][1] = make([]float64, n)
				}
				state := make([]float64, 8*lw)
				out := make([]float64, 2*lw)
				for trial := 0; trial < 10; trial++ {
					for i := 0; i < n; i++ {
						rowRe[i] = rng.NormFloat64()
						rowIm[i] = rng.NormFloat64()
						for b := 0; b < lw; b++ {
							xr, xi := rng.NormFloat64(), rng.NormFloat64()
							lanes[b][0][i], lanes[b][1][i] = xr, xi
							resTRe[i*lw+b] = xr
							resTIm[i*lw+b] = xi
						}
					}
					for i0 := 0; i0 < n; i0 += dotTile {
						tl := dotTile
						if n-i0 < tl {
							tl = n - i0
						}
						var mode uint64
						if i0 == 0 {
							mode |= 1
						}
						if i0+tl == n {
							mode |= 2
						}
						kernDotChunk(&rowRe[i0], &rowIm[i0], &resTRe[i0*lw], &resTIm[i0*lw], tl, &state[0], &out[0], mode, n*8)
					}
					for b := 0; b < lw; b++ {
						wantR, wantI := cdot(rowRe, rowIm, lanes[b][0], lanes[b][1])
						if out[b] != wantR || out[lw+b] != wantI {
							t.Fatalf("n=%d lane=%d: got (%v,%v) want (%v,%v)", n, b, out[b], out[lw+b], wantR, wantI)
						}
					}
				}
			}
		})
	}
}

// refAxpy is the scalar forwardResid accumulation for one column: the
// reference chain the masked axpy kernel's active lanes must reproduce.
func refAxpy(rowRe, rowIm []float64, cr, ci float64, dstRe, dstIm []float64) {
	for i, ar := range rowRe {
		ai := -rowIm[i]
		dstRe[i] += ar*cr - ai*ci
		dstIm[i] += ar*ci + ai*cr
	}
}

// TestAxpyLanesBitExact pins the masked accumulation kernel on every
// available tier: active lanes must match the scalar forwardResid chain
// exactly, and masked-out lanes must not move a single bit (including
// signed zeros and NaNs). On the 4-lane tiers this exercises the
// emulated merge-mask (VMASKMOVPD / VBIT) against the same contract as
// the AVX-512 opmask stores.
func TestAxpyLanesBitExact(t *testing.T) {
	for _, tier := range vectorTiers() {
		t.Run(tier.String(), func(t *testing.T) {
			forceTier(t, tier)
			lw := batchLanes
			rng := rand.New(rand.NewSource(11))
			for _, n := range []int{1, 2, 5, 35, 150} {
				rowRe := make([]float64, n)
				rowIm := make([]float64, n)
				resTRe := make([]float64, n*lw)
				resTIm := make([]float64, n*lw)
				want := make([][2][]float64, lw)
				for b := range want {
					want[b][0] = make([]float64, n)
					want[b][1] = make([]float64, n)
				}
				cr := make([]float64, lw)
				ci := make([]float64, lw)
				for trial := 0; trial < 50; trial++ {
					mask := uint64(rng.Intn(1 << lw))
					scale := math.Pow(10, float64(rng.Intn(40)-20))
					for b := 0; b < lw; b++ {
						cr[b], ci[b] = rng.NormFloat64()*scale, rng.NormFloat64()*scale
					}
					for i := 0; i < n; i++ {
						rowRe[i] = rng.NormFloat64()
						rowIm[i] = rng.NormFloat64()
						for b := 0; b < lw; b++ {
							xr, xi := rng.NormFloat64(), rng.NormFloat64()
							switch rng.Intn(8) {
							case 0:
								xr = math.Copysign(0, xr) // signed zeros must survive masking
							case 1:
								xr = math.NaN()
							}
							want[b][0][i], want[b][1][i] = xr, xi
							resTRe[i*lw+b] = xr
							resTIm[i*lw+b] = xi
						}
					}
					for b := 0; b < lw; b++ {
						if mask&(1<<b) != 0 {
							refAxpy(rowRe, rowIm, cr[b], ci[b], want[b][0], want[b][1])
						}
					}
					kernAxpy(&rowRe[0], &rowIm[0], &cr[0], &ci[0], &resTRe[0], &resTIm[0], n, mask)
					for b := 0; b < lw; b++ {
						for i := 0; i < n; i++ {
							gr, gi := resTRe[i*lw+b], resTIm[i*lw+b]
							wr, wi := want[b][0][i], want[b][1][i]
							if math.Float64bits(gr) != math.Float64bits(wr) || math.Float64bits(gi) != math.Float64bits(wi) {
								t.Fatalf("n=%d mask=%02x lane=%d i=%d: got (%v,%v) want (%v,%v)", n, mask, b, i, gr, gi, wr, wi)
							}
						}
					}
				}
			}
		})
	}
}

// TestDotLanesBitExact pins the lane kernel's contract on every
// available tier: every lane of kernDot must equal the scalar reference
// dot (cdot) exactly, for every vector length (odd tails included),
// across magnitudes from subnormal to huge.
func TestDotLanesBitExact(t *testing.T) {
	for _, tier := range vectorTiers() {
		t.Run(tier.String(), func(t *testing.T) {
			forceTier(t, tier)
			lw := batchLanes
			rng := rand.New(rand.NewSource(7))
			for _, n := range []int{1, 2, 3, 7, 16, 35, 36, 101} {
				rowRe := make([]float64, n)
				rowIm := make([]float64, n)
				resTRe := make([]float64, n*lw)
				resTIm := make([]float64, n*lw)
				lanes := make([][2][]float64, lw) // per-lane xRe, xIm
				for b := range lanes {
					lanes[b][0] = make([]float64, n)
					lanes[b][1] = make([]float64, n)
				}
				for trial := 0; trial < 50; trial++ {
					scale := math.Pow(10, float64(rng.Intn(40)-20))
					for i := 0; i < n; i++ {
						rowRe[i] = rng.NormFloat64()
						rowIm[i] = rng.NormFloat64()
						for b := 0; b < lw; b++ {
							xr, xi := rng.NormFloat64()*scale, rng.NormFloat64()*scale
							if rng.Intn(5) == 0 {
								xr = 0 // exercise exact zeros (sparse residuals)
							}
							lanes[b][0][i], lanes[b][1][i] = xr, xi
							resTRe[i*lw+b] = xr
							resTIm[i*lw+b] = xi
						}
					}
					gr := make([]float64, lw)
					gi := make([]float64, lw)
					kernDot(&rowRe[0], &rowIm[0], &resTRe[0], &resTIm[0], n, &gr[0], &gi[0])
					for b := 0; b < lw; b++ {
						wantR, wantI := cdot(rowRe, rowIm, lanes[b][0], lanes[b][1])
						if gr[b] != wantR || gi[b] != wantI {
							t.Fatalf("n=%d lane=%d: got (%v,%v) want (%v,%v)", n, b, gr[b], gi[b], wantR, wantI)
						}
					}
				}
			}
		})
	}
}
