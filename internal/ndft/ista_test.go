package ndft

import (
	"math"
	"testing"

	"chronos/internal/dsp"
	"chronos/internal/wifi"
)

func TestPlainISTARecoversSameFirstPeak(t *testing.T) {
	// Algorithm 1 verbatim (no momentum, no continuation) and the
	// accelerated variant share fixed points; on clean data both must
	// find the same direct path.
	freqs := wifi.Centers(wifi.USBands())
	taus := TauGrid(30e-9, 0.2e-9)
	m, err := NewMatrix(freqs, taus)
	if err != nil {
		t.Fatal(err)
	}
	h := synthChannel(freqs, []float64{6.6, 12.2}, []float64{1, 0.5})

	fast, err := m.Invert(h, InvertOptions{MaxIter: 3000})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := m.Invert(h, InvertOptions{MaxIter: 12000, PlainISTA: true})
	if err != nil {
		t.Fatal(err)
	}
	pf, okF := fast.FirstPeakDelay(0.3)
	pp, okP := plain.FirstPeakDelay(0.3)
	if !okF || !okP {
		t.Fatal("missing peaks")
	}
	if math.Abs(pf-pp) > 0.3e-9 {
		t.Errorf("plain ISTA peak %v vs accelerated %v", pp, pf)
	}
}

func TestPlainISTANeedsMoreIterations(t *testing.T) {
	freqs := wifi.Centers(wifi.Bands5GHz())
	taus := TauGrid(30e-9, 0.2e-9)
	m, _ := NewMatrix(freqs, taus)
	h := synthChannel(freqs, []float64{8}, []float64{1})

	fast, _ := m.Invert(h, InvertOptions{MaxIter: 20000})
	plain, _ := m.Invert(h, InvertOptions{MaxIter: 20000, PlainISTA: true})
	if !fast.Converged {
		t.Skip("accelerated variant did not converge in budget")
	}
	if plain.Converged && plain.Iterations < fast.Iterations {
		t.Errorf("plain ISTA converged faster (%d) than accelerated (%d) — unexpected on this dictionary",
			plain.Iterations, fast.Iterations)
	}
}

func TestAlphaScaleSweepsSparsity(t *testing.T) {
	freqs := wifi.Centers(wifi.USBands())
	taus := TauGrid(30e-9, 0.2e-9)
	m, _ := NewMatrix(freqs, taus)
	h := synthChannel(freqs, []float64{5, 9, 13}, []float64{1, 0.7, 0.5})

	nonzeros := func(scale float64) int {
		res, err := m.Invert(h, InvertOptions{AlphaScale: scale, MaxIter: 3000})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, v := range res.Profile {
			if v != 0 {
				n++
			}
		}
		return n
	}
	if small, large := nonzeros(0.2), nonzeros(5); large >= small {
		t.Errorf("AlphaScale 5 gave %d nonzeros vs %d at 0.2 — sparsity knob inverted", large, small)
	}
}

func TestInvertEpsilonStopsEarly(t *testing.T) {
	freqs := wifi.Centers(wifi.Bands5GHz())
	taus := TauGrid(20e-9, 0.5e-9)
	m, _ := NewMatrix(freqs, taus)
	h := synthChannel(freqs, []float64{7}, []float64{1})
	loose, err := m.Invert(h, InvertOptions{Epsilon: 1e-1 * dsp.Norm2(h), MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := m.Invert(h, InvertOptions{Epsilon: 1e-9 * dsp.Norm2(h), MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !loose.Converged {
		t.Error("loose epsilon did not converge")
	}
	if loose.Iterations >= tight.Iterations {
		t.Errorf("loose epsilon took %d iterations vs tight %d", loose.Iterations, tight.Iterations)
	}
}
