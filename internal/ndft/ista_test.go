package ndft

import (
	"math"
	"testing"

	"chronos/internal/dsp"
	"chronos/internal/wifi"
)

func TestPlainISTARecoversSameFirstPeak(t *testing.T) {
	// Algorithm 1 verbatim (no momentum, no continuation) and the
	// accelerated variant share fixed points; on clean data both must
	// find the same direct path.
	freqs := wifi.Centers(wifi.USBands())
	taus := TauGrid(30e-9, 0.2e-9)
	m, err := NewMatrix(freqs, taus)
	if err != nil {
		t.Fatal(err)
	}
	h := synthChannel(freqs, []float64{6.6, 12.2}, []float64{1, 0.5})

	fast, err := m.Invert(h, InvertOptions{MaxIter: 3000})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := m.Invert(h, InvertOptions{MaxIter: 12000, PlainISTA: true})
	if err != nil {
		t.Fatal(err)
	}
	pf, okF := fast.FirstPeakDelay(0.3)
	pp, okP := plain.FirstPeakDelay(0.3)
	if !okF || !okP {
		t.Fatal("missing peaks")
	}
	if math.Abs(pf-pp) > 0.3e-9 {
		t.Errorf("plain ISTA peak %v vs accelerated %v", pp, pf)
	}
}

func TestPlainISTANeedsMoreIterations(t *testing.T) {
	freqs := wifi.Centers(wifi.Bands5GHz())
	taus := TauGrid(30e-9, 0.2e-9)
	m, _ := NewMatrix(freqs, taus)
	h := synthChannel(freqs, []float64{8}, []float64{1})

	fast, _ := m.Invert(h, InvertOptions{MaxIter: 20000})
	plain, _ := m.Invert(h, InvertOptions{MaxIter: 20000, PlainISTA: true})
	if !fast.Converged {
		t.Skip("accelerated variant did not converge in budget")
	}
	if plain.Converged && plain.Iterations < fast.Iterations {
		t.Errorf("plain ISTA converged faster (%d) than accelerated (%d) — unexpected on this dictionary",
			plain.Iterations, fast.Iterations)
	}
}

func TestAlphaScaleSweepsSparsity(t *testing.T) {
	freqs := wifi.Centers(wifi.USBands())
	taus := TauGrid(30e-9, 0.2e-9)
	m, _ := NewMatrix(freqs, taus)
	h := synthChannel(freqs, []float64{5, 9, 13}, []float64{1, 0.7, 0.5})

	nonzeros := func(scale float64) int {
		res, err := m.Invert(h, InvertOptions{AlphaScale: scale, MaxIter: 3000})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, v := range res.Profile {
			if v != 0 {
				n++
			}
		}
		return n
	}
	if small, large := nonzeros(0.2), nonzeros(5); large >= small {
		t.Errorf("AlphaScale 5 gave %d nonzeros vs %d at 0.2 — sparsity knob inverted", large, small)
	}
}

func TestInvertEpsilonStopsEarly(t *testing.T) {
	freqs := wifi.Centers(wifi.Bands5GHz())
	taus := TauGrid(20e-9, 0.5e-9)
	m, _ := NewMatrix(freqs, taus)
	h := synthChannel(freqs, []float64{7}, []float64{1})
	loose, err := m.Invert(h, InvertOptions{Epsilon: 1e-1 * dsp.Norm2(h), MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := m.Invert(h, InvertOptions{Epsilon: 1e-9 * dsp.Norm2(h), MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !loose.Converged {
		t.Error("loose epsilon did not converge")
	}
	if loose.Iterations >= tight.Iterations {
		t.Errorf("loose epsilon took %d iterations vs tight %d", loose.Iterations, tight.Iterations)
	}
}

// TestContinuationStallExitsEarly is the regression for the
// α-continuation early-exit bug: the Epsilon exit is gated on the
// continuation schedule having reached the target α, and the schedule
// used to decay at a fixed 0.97/iteration regardless of progress — a
// solve whose iterate had already stalled idled through the remaining
// ramp (53+ iterations at the default α ratio) before it was allowed to
// stop. With the stall-accelerated decay the same solve exits in a
// handful of iterations.
func TestContinuationStallExitsEarly(t *testing.T) {
	freqs := wifi.Centers(wifi.Bands5GHz())
	m, _ := NewMatrix(freqs, TauGrid(20e-9, 0.5e-9))
	h := synthChannel(freqs, []float64{7}, []float64{1})
	res, err := m.Invert(h, InvertOptions{Epsilon: 1e-2 * dsp.Norm2(h), MaxIter: 5000, Stop: StopIterate})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("loose-epsilon solve did not converge")
	}
	// The fixed 0.97 ramp alone takes ~53 iterations here; the stalled
	// iterate must fall through it far faster.
	if res.Iterations > 30 {
		t.Errorf("stalled continuation took %d iterations, want ≤ 30", res.Iterations)
	}
}

// TestContinuationScheduleFitsBudget pins the schedule-termination
// guarantee: with a forced tiny α the fixed decay needs more iterations
// than the whole budget (ln(250)/ln(1/0.97) ≈ 182 > 200), so the old
// solver could never reach the target α, never arm the Epsilon exit,
// and always burned the cap. The steepened schedule must hand the
// target α at least half the budget and converge.
func TestContinuationScheduleFitsBudget(t *testing.T) {
	freqs := wifi.Centers(wifi.Bands5GHz())
	m, _ := NewMatrix(freqs, TauGrid(20e-9, 0.5e-9))
	h := synthChannel(freqs, []float64{7}, []float64{1})
	res, err := m.Invert(h, InvertOptions{AlphaScale: 0.01, Epsilon: 1e-2 * dsp.Norm2(h), MaxIter: 200, Stop: StopIterate})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("tiny-α solve capped at %d iterations without converging", res.Iterations)
	}
	if res.Iterations >= 200 {
		t.Errorf("tiny-α solve used the whole budget (%d)", res.Iterations)
	}
}
