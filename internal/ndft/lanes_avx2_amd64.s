//go:build !ndft_noasm

// AVX2 (ymm) 4-lane ports of the batch kernels, plus the single-solve
// kernels shared by both amd64 vector tiers. The bodies mirror the
// AVX-512 kernels instruction for instruction at half the lane width:
// the same fixed-K adjoint-dot contract (four accumulator chains,
// element i mod 4, tail to chain 0, pinned (s0+s1)+(s2+s3) fold),
// separate multiply and add/subtract — no FMA, which would change
// rounding. AVX2 has no opmask registers, so axpy4avx2 emulates the
// AVX-512 merge-masked store with VMASKMOVPD against a 4-qword
// all-ones/zero lane mask (masked-out lanes' memory does not move).

#include "textflag.h"

// func dot4avx2(rowRe, rowIm, resTRe, resTIm *float64, n int, grOut, giOut *float64)
//
// rowRe/rowIm: one planar adjoint row (n doubles each), shared by lanes.
// resTRe/resTIm: lane-transposed residuals, resT[i*4+b] = lane b element i.
// grOut/giOut: 4 doubles each, the folded lane dot products.
TEXT ·dot4avx2(SB), NOSPLIT, $0-56
	MOVQ rowRe+0(FP), SI
	MOVQ rowIm+8(FP), DI
	MOVQ resTRe+16(FP), R8
	MOVQ resTIm+24(FP), R9
	MOVQ n+32(FP), CX

	// Y0..Y3 = gr0..gr3, Y4..Y7 = gi0..gi3 chains (per lane).
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	XORQ AX, AX // i

loop4:
	MOVQ CX, DX
	SUBQ AX, DX
	CMPQ DX, $4
	JLT  tail

	MOVQ AX, BX
	SHLQ $5, BX // i*4 lanes*8 bytes

	// Element i -> chain 0: gr0 += ar*br - ai*bi; gi0 += ar*bi + ai*br
	VBROADCASTSD (SI)(AX*8), Y8   // ar
	VBROADCASTSD (DI)(AX*8), Y9   // ai
	VMOVUPD      (R8)(BX*1), Y10  // br lanes
	VMOVUPD      (R9)(BX*1), Y11  // bi lanes
	VMULPD       Y10, Y8, Y12     // ar*br
	VMULPD       Y11, Y9, Y13     // ai*bi
	VSUBPD       Y13, Y12, Y12    // ar*br - ai*bi
	VADDPD       Y12, Y0, Y0
	VMULPD       Y11, Y8, Y12     // ar*bi
	VMULPD       Y10, Y9, Y13     // ai*br
	VADDPD       Y13, Y12, Y12    // ar*bi + ai*br
	VADDPD       Y12, Y4, Y4

	// Element i+1 -> chain 1.
	VBROADCASTSD 8(SI)(AX*8), Y8
	VBROADCASTSD 8(DI)(AX*8), Y9
	VMOVUPD      32(R8)(BX*1), Y10
	VMOVUPD      32(R9)(BX*1), Y11
	VMULPD       Y10, Y8, Y12
	VMULPD       Y11, Y9, Y13
	VSUBPD       Y13, Y12, Y12
	VADDPD       Y12, Y1, Y1
	VMULPD       Y11, Y8, Y12
	VMULPD       Y10, Y9, Y13
	VADDPD       Y13, Y12, Y12
	VADDPD       Y12, Y5, Y5

	// Element i+2 -> chain 2.
	VBROADCASTSD 16(SI)(AX*8), Y8
	VBROADCASTSD 16(DI)(AX*8), Y9
	VMOVUPD      64(R8)(BX*1), Y10
	VMOVUPD      64(R9)(BX*1), Y11
	VMULPD       Y10, Y8, Y12
	VMULPD       Y11, Y9, Y13
	VSUBPD       Y13, Y12, Y12
	VADDPD       Y12, Y2, Y2
	VMULPD       Y11, Y8, Y12
	VMULPD       Y10, Y9, Y13
	VADDPD       Y13, Y12, Y12
	VADDPD       Y12, Y6, Y6

	// Element i+3 -> chain 3.
	VBROADCASTSD 24(SI)(AX*8), Y8
	VBROADCASTSD 24(DI)(AX*8), Y9
	VMOVUPD      96(R8)(BX*1), Y10
	VMOVUPD      96(R9)(BX*1), Y11
	VMULPD       Y10, Y8, Y12
	VMULPD       Y11, Y9, Y13
	VSUBPD       Y13, Y12, Y12
	VADDPD       Y12, Y3, Y3
	VMULPD       Y11, Y8, Y12
	VMULPD       Y10, Y9, Y13
	VADDPD       Y13, Y12, Y12
	VADDPD       Y12, Y7, Y7

	ADDQ $4, AX
	JMP  loop4

tail:
	// Remaining k mod 4 elements feed chain 0 sequentially (the cdot
	// tail loop).
	CMPQ AX, CX
	JGE  done

	MOVQ AX, BX
	SHLQ $5, BX
	VBROADCASTSD (SI)(AX*8), Y8
	VBROADCASTSD (DI)(AX*8), Y9
	VMOVUPD      (R8)(BX*1), Y10
	VMOVUPD      (R9)(BX*1), Y11
	VMULPD       Y10, Y8, Y12
	VMULPD       Y11, Y9, Y13
	VSUBPD       Y13, Y12, Y12
	VADDPD       Y12, Y0, Y0
	VMULPD       Y11, Y8, Y12
	VMULPD       Y10, Y9, Y13
	VADDPD       Y13, Y12, Y12
	VADDPD       Y12, Y4, Y4

	INCQ AX
	JMP  tail

done:
	// Pinned fold (s0+s1)+(s2+s3).
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VADDPD Y5, Y4, Y4
	VADDPD Y7, Y6, Y6
	VADDPD Y6, Y4, Y4
	MOVQ   grOut+40(FP), R10
	MOVQ   giOut+48(FP), R11
	VMOVUPD Y0, (R10)
	VMOVUPD Y4, (R11)
	VZEROUPPER
	RET

// func axpy4avx2(rowRe, rowIm, coefRe, coefIm, resTRe, resTIm *float64, n int, mask *uint64)
//
// Lane-masked forward-residual accumulation, the AVX2 port of
// axpy8avx512: mask points at 4 qwords (all-ones for active lanes, zero
// for inactive — kernels.go's axpyMask table) and VMASKMOVPD stores
// only the active lanes, so masked-out lanes' memory never moves. Each
// active lane performs the scalar forwardResid chain arithmetic exactly
// (the sign-folded dstRe += ar*cr + rowIm*ci form; see axpy8avx512).
TEXT ·axpy4avx2(SB), NOSPLIT, $0-64
	MOVQ rowRe+0(FP), SI
	MOVQ rowIm+8(FP), DI
	MOVQ coefRe+16(FP), AX
	MOVQ coefIm+24(FP), BX
	MOVQ resTRe+32(FP), R8
	MOVQ resTIm+40(FP), R9
	MOVQ n+48(FP), CX
	MOVQ mask+56(FP), DX

	VMOVUPD (DX), Y1 // lane mask (all-ones/zero qwords)
	VMOVUPD (AX), Y2 // cr lanes
	VMOVUPD (BX), Y3 // ci lanes

	XORQ AX, AX // i
	XORQ BX, BX // i*32 byte offset

axloop:
	CMPQ AX, CX
	JGE  axdone

	VBROADCASTSD (SI)(AX*8), Y4 // ar
	VBROADCASTSD (DI)(AX*8), Y5 // rowIm[i]

	// dstRe += ar*cr + rowIm*ci
	VMULPD     Y2, Y4, Y6
	VMULPD     Y3, Y5, Y7
	VADDPD     Y7, Y6, Y6
	VMOVUPD    (R8)(BX*1), Y8
	VADDPD     Y6, Y8, Y8
	VMASKMOVPD Y8, Y1, (R8)(BX*1)

	// dstIm += ar*ci − rowIm*cr
	VMULPD     Y3, Y4, Y6
	VMULPD     Y2, Y5, Y7
	VSUBPD     Y7, Y6, Y6
	VMOVUPD    (R9)(BX*1), Y8
	VADDPD     Y6, Y8, Y8
	VMASKMOVPD Y8, Y1, (R9)(BX*1)

	INCQ AX
	ADDQ $32, BX
	JMP  axloop

axdone:
	VZEROUPPER
	RET

// func dotChunk4avx2(rowRe, rowIm, resTRe, resTIm *float64, k int, state, out *float64, mode uint64, stride int)
//
// The AVX2 port of dotChunk8avx512: the same eight accumulator chains
// carried across element tiles in a 32-double per-row state. mode bit 0
// starts the row (zero chains), bit 1 ends it (fold and write the
// 8-double gr|gi lane outputs). Tiles start at multiples of 4, so chain
// phase matches the scalar reference exactly.
TEXT ·dotChunk4avx2(SB), NOSPLIT, $0-72
	MOVQ rowRe+0(FP), SI
	MOVQ rowIm+8(FP), DI
	MOVQ resTRe+16(FP), R8
	MOVQ resTIm+24(FP), R9
	MOVQ k+32(FP), CX
	MOVQ state+40(FP), R10
	MOVQ mode+56(FP), DX
	MOVQ stride+64(FP), R12
	LEAQ (SI)(R12*1), R13 // next row re (prefetch target)
	LEAQ (DI)(R12*1), R14 // next row im

	TESTQ $1, DX
	JZ    ckload
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	JMP    ckbody

ckload:
	VMOVUPD (R10), Y0
	VMOVUPD 32(R10), Y1
	VMOVUPD 64(R10), Y2
	VMOVUPD 96(R10), Y3
	VMOVUPD 128(R10), Y4
	VMOVUPD 160(R10), Y5
	VMOVUPD 192(R10), Y6
	VMOVUPD 224(R10), Y7

ckbody:
	XORQ AX, AX

ckloop4:
	MOVQ CX, BX
	SUBQ AX, BX
	CMPQ BX, $4
	JLT  cktail

	PREFETCHT0 (R13)(AX*8)
	PREFETCHT0 (R14)(AX*8)

	MOVQ AX, BX
	SHLQ $5, BX

	VBROADCASTSD (SI)(AX*8), Y8
	VBROADCASTSD (DI)(AX*8), Y9
	VMOVUPD      (R8)(BX*1), Y10
	VMOVUPD      (R9)(BX*1), Y11
	VMULPD       Y10, Y8, Y12
	VMULPD       Y11, Y9, Y13
	VSUBPD       Y13, Y12, Y12
	VADDPD       Y12, Y0, Y0
	VMULPD       Y11, Y8, Y12
	VMULPD       Y10, Y9, Y13
	VADDPD       Y13, Y12, Y12
	VADDPD       Y12, Y4, Y4

	VBROADCASTSD 8(SI)(AX*8), Y8
	VBROADCASTSD 8(DI)(AX*8), Y9
	VMOVUPD      32(R8)(BX*1), Y10
	VMOVUPD      32(R9)(BX*1), Y11
	VMULPD       Y10, Y8, Y12
	VMULPD       Y11, Y9, Y13
	VSUBPD       Y13, Y12, Y12
	VADDPD       Y12, Y1, Y1
	VMULPD       Y11, Y8, Y12
	VMULPD       Y10, Y9, Y13
	VADDPD       Y13, Y12, Y12
	VADDPD       Y12, Y5, Y5

	VBROADCASTSD 16(SI)(AX*8), Y8
	VBROADCASTSD 16(DI)(AX*8), Y9
	VMOVUPD      64(R8)(BX*1), Y10
	VMOVUPD      64(R9)(BX*1), Y11
	VMULPD       Y10, Y8, Y12
	VMULPD       Y11, Y9, Y13
	VSUBPD       Y13, Y12, Y12
	VADDPD       Y12, Y2, Y2
	VMULPD       Y11, Y8, Y12
	VMULPD       Y10, Y9, Y13
	VADDPD       Y13, Y12, Y12
	VADDPD       Y12, Y6, Y6

	VBROADCASTSD 24(SI)(AX*8), Y8
	VBROADCASTSD 24(DI)(AX*8), Y9
	VMOVUPD      96(R8)(BX*1), Y10
	VMOVUPD      96(R9)(BX*1), Y11
	VMULPD       Y10, Y8, Y12
	VMULPD       Y11, Y9, Y13
	VSUBPD       Y13, Y12, Y12
	VADDPD       Y12, Y3, Y3
	VMULPD       Y11, Y8, Y12
	VMULPD       Y10, Y9, Y13
	VADDPD       Y13, Y12, Y12
	VADDPD       Y12, Y7, Y7

	ADDQ $4, AX
	JMP  ckloop4

cktail:
	CMPQ AX, CX
	JGE  ckdone

	MOVQ AX, BX
	SHLQ $5, BX
	VBROADCASTSD (SI)(AX*8), Y8
	VBROADCASTSD (DI)(AX*8), Y9
	VMOVUPD      (R8)(BX*1), Y10
	VMOVUPD      (R9)(BX*1), Y11
	VMULPD       Y10, Y8, Y12
	VMULPD       Y11, Y9, Y13
	VSUBPD       Y13, Y12, Y12
	VADDPD       Y12, Y0, Y0
	VMULPD       Y11, Y8, Y12
	VMULPD       Y10, Y9, Y13
	VADDPD       Y13, Y12, Y12
	VADDPD       Y12, Y4, Y4

	INCQ AX
	JMP  cktail

ckdone:
	TESTQ $2, DX
	JNZ   ckreduce
	VMOVUPD Y0, (R10)
	VMOVUPD Y1, 32(R10)
	VMOVUPD Y2, 64(R10)
	VMOVUPD Y3, 96(R10)
	VMOVUPD Y4, 128(R10)
	VMOVUPD Y5, 160(R10)
	VMOVUPD Y6, 192(R10)
	VMOVUPD Y7, 224(R10)
	VZEROUPPER
	RET

ckreduce:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VADDPD Y5, Y4, Y4
	VADDPD Y7, Y6, Y6
	VADDPD Y6, Y4, Y4
	MOVQ   out+48(FP), R11
	VMOVUPD Y0, (R11)
	VMOVUPD Y4, 32(R11)
	VZEROUPPER
	RET

// func dotVec4(aRe, aIm, xRe, xIm *float64, k4 int, part *float64)
//
// The single-solve adjoint dot's vector body, shared by the avx512 and
// avx2 tiers: the four cdot accumulator chains run across the four ymm
// lanes (lane c = chain c, element 4i+c), each lane performing the
// scalar chain arithmetic exactly. Runs the k4 = k&^3 main-loop
// elements only; the Go wrapper (adjDot) adds the tail into chain 0 and
// applies the pinned fold. part receives the 8 raw partial sums
// (sr0..sr3, si0..si3).
TEXT ·dotVec4(SB), NOSPLIT, $0-48
	MOVQ aRe+0(FP), SI
	MOVQ aIm+8(FP), DI
	MOVQ xRe+16(FP), R8
	MOVQ xIm+24(FP), R9
	MOVQ k4+32(FP), CX

	VXORPD Y0, Y0, Y0 // sr chains
	VXORPD Y1, Y1, Y1 // si chains

	XORQ AX, AX // byte offset

	SHLQ $3, CX // k4*8 bytes
	JMP  vcheck

vloop:
	VMOVUPD (SI)(AX*1), Y2 // ar
	VMOVUPD (DI)(AX*1), Y3 // ai
	VMOVUPD (R8)(AX*1), Y4 // br
	VMOVUPD (R9)(AX*1), Y5 // bi

	VMULPD Y4, Y2, Y6 // ar*br
	VMULPD Y5, Y3, Y7 // ai*bi
	VSUBPD Y7, Y6, Y6 // ar*br - ai*bi
	VADDPD Y6, Y0, Y0

	VMULPD Y5, Y2, Y6 // ar*bi
	VMULPD Y4, Y3, Y7 // ai*br
	VADDPD Y7, Y6, Y6 // ar*bi + ai*br
	VADDPD Y6, Y1, Y1

	ADDQ $32, AX

vcheck:
	CMPQ AX, CX
	JLT  vloop

	MOVQ    part+40(FP), R10
	VMOVUPD Y0, (R10)
	VMOVUPD Y1, 32(R10)
	VZEROUPPER
	RET

// func axpyCol4(rowRe, rowIm *float64, cr, ci float64, dstRe, dstIm *float64, n4 int)
//
// The single-solve forward column accumulation, shared by the avx512
// and avx2 tiers: dst[i] += conj(row[i])·(cr+i·ci) elementwise across
// ymm lanes, in the sign-folded form of the scalar forwardResid body
// (dstRe += ar*cr + rowIm*ci, dstIm += ar*ci − rowIm*cr — exact; see
// axpy8avx512). Elementwise, so there are no chains to preserve; the Go
// wrapper (axpyCol) handles the n&3 tail.
TEXT ·axpyCol4(SB), NOSPLIT, $0-56
	MOVQ         rowRe+0(FP), SI
	MOVQ         rowIm+8(FP), DI
	VBROADCASTSD cr+16(FP), Y2
	VBROADCASTSD ci+24(FP), Y3
	MOVQ         dstRe+32(FP), R8
	MOVQ         dstIm+40(FP), R9
	MOVQ         n4+48(FP), CX

	XORQ AX, AX // byte offset
	SHLQ $3, CX // n4*8 bytes
	JMP  accheck

acloop:
	VMOVUPD (SI)(AX*1), Y4 // ar
	VMOVUPD (DI)(AX*1), Y5 // rowIm

	// dstRe += ar*cr + rowIm*ci
	VMULPD  Y2, Y4, Y6
	VMULPD  Y3, Y5, Y7
	VADDPD  Y7, Y6, Y6
	VMOVUPD (R8)(AX*1), Y8
	VADDPD  Y6, Y8, Y8
	VMOVUPD Y8, (R8)(AX*1)

	// dstIm += ar*ci − rowIm*cr
	VMULPD  Y3, Y4, Y6
	VMULPD  Y2, Y5, Y7
	VSUBPD  Y7, Y6, Y6
	VMOVUPD (R9)(AX*1), Y8
	VADDPD  Y6, Y8, Y8
	VMOVUPD Y8, (R9)(AX*1)

	ADDQ $32, AX

accheck:
	CMPQ AX, CX
	JLT  acloop

	VZEROUPPER
	RET
