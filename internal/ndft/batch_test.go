package ndft

import (
	"math"
	"math/rand"
	"testing"

	"chronos/internal/dsp"
	"chronos/internal/wifi"
)

// batchFixture builds a plan plus a set of measurement/warm/option
// combinations that exercise every solver path in one batch: cold
// noiseless, cold noisy gap-stopped, warm on a fresh noise draw, warm
// whose seed forces the KKT fallback (target jumped), plain ISTA, and
// random-seeded starts.
func batchFixture(t testing.TB) (*Plan, []SolveRequest) {
	t.Helper()
	freqs := wifi.Centers(wifi.Bands5GHz())
	pl, err := NewPlan(freqs, TauGrid(20e-9, 0.5e-9))
	if err != nil {
		t.Fatal(err)
	}
	n, _ := pl.Dims()
	rng := rand.New(rand.NewSource(17))
	noisy := func(sigma float64, delaysNs ...float64) dsp.Vec {
		h := synthChannel(freqs, delaysNs, []float64{1, 0.6})
		for i := range h {
			h[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
		}
		return h
	}
	wNorm := 0.05 * math.Sqrt(2*float64(n))
	gapOpts := InvertOptions{MaxIter: 4000, NoiseFloor: wNorm}

	seed, err := pl.Solve(SolveRequest{H: noisy(0.05, 7, 11.2), InvertOptions: gapOpts})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []SolveRequest{
		{H: synthChannel(freqs, []float64{7, 11.2}, []float64{1, 0.6}), InvertOptions: InvertOptions{MaxIter: 2000}},
		{H: noisy(0.05, 7, 11.2), InvertOptions: gapOpts},
		{H: noisy(0.05, 7.1, 11.3), Warm: seed.Profile, InvertOptions: gapOpts},
		// The target jumped far beyond warmDilate: the restricted solve
		// must fail its KKT audit and fall back to the cold path.
		{H: noisy(0.05, 14.5, 17.9), Warm: seed.Profile, InvertOptions: gapOpts},
		{H: noisy(0.1, 7, 11.2), InvertOptions: InvertOptions{MaxIter: 2000, PlainISTA: true, Alpha: 2}},
		{H: noisy(0.02, 5.5, 9.8), InvertOptions: InvertOptions{MaxIter: 2000, Seed: 3}},
	}
	return pl, reqs
}

// cloneReq deep-copies a request so sequential and batched solves cannot
// share result or input storage.
func cloneReq(r SolveRequest) SolveRequest {
	c := r
	c.H = append(dsp.Vec(nil), r.H...)
	if r.Warm != nil {
		c.Warm = append(dsp.Vec(nil), r.Warm...)
	}
	c.Dst = nil
	return c
}

// sameResult asserts byte-identity of two results (exact float equality
// on every field and element).
func sameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if want.Iterations != got.Iterations || want.Converged != got.Converged ||
		want.Work != got.Work || want.Residual != got.Residual ||
		want.GapAtStop != got.GapAtStop || want.NoiseFloor != got.NoiseFloor {
		t.Errorf("%s: scalar fields diverged:\n  seq   %+v\n  batch %+v", label, want, got)
	}
	if len(want.Profile) != len(got.Profile) {
		t.Fatalf("%s: profile length %d vs %d", label, len(want.Profile), len(got.Profile))
	}
	for i := range want.Profile {
		if want.Profile[i] != got.Profile[i] {
			t.Fatalf("%s: profile[%d]: %v vs %v", label, i, want.Profile[i], got.Profile[i])
		}
	}
	for i := range want.Magnitude {
		if want.Magnitude[i] != got.Magnitude[i] {
			t.Fatalf("%s: magnitude[%d]: %v vs %v", label, i, want.Magnitude[i], got.Magnitude[i])
		}
	}
}

// TestSolveBatchMatchesSequential is the golden batch-equivalence suite:
// SolveBatch at B∈{1,2,16} must produce results byte-identical to the
// sequential Solve of each request, with mixed warm/cold requests and
// mixed options in one batch. Batching may change only throughput, never
// answers — this is what lets the coalescer batch opportunistically
// without perturbing determinism anywhere downstream.
func TestSolveBatchMatchesSequential(t *testing.T) {
	pl, base := batchFixture(t)

	// Sequential references.
	refs := make([]*Result, len(base))
	for i, r := range base {
		res, err := pl.Solve(cloneReq(r))
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = res
	}

	for _, B := range []int{1, 2, 16} {
		reqs := make([]SolveRequest, B)
		for i := range reqs {
			reqs[i] = cloneReq(base[i%len(base)])
		}
		if err := pl.SolveBatch(reqs); err != nil {
			t.Fatalf("B=%d: %v", B, err)
		}
		for i := range reqs {
			if reqs[i].Dst == nil {
				t.Fatalf("B=%d: request %d: nil Dst after batch", B, i)
			}
			sameResult(t, label(B, i), refs[i%len(base)], reqs[i].Dst)
		}
	}
}

func label(b, i int) string {
	return "B=" + itoa(b) + " req=" + itoa(i)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestSolveBatchValidatesUpfront pins the all-or-nothing validation
// contract: a bad request anywhere in the batch fails the whole call
// before any solving, naming the offending index, and no Dst is written.
func TestSolveBatchValidatesUpfront(t *testing.T) {
	pl, base := batchFixture(t)
	reqs := []SolveRequest{
		cloneReq(base[0]),
		{H: make(dsp.Vec, 3)},
	}
	err := pl.SolveBatch(reqs)
	if err == nil {
		t.Fatal("bad measurement length accepted")
	}
	if reqs[0].Dst != nil {
		t.Errorf("request 0 solved despite batch validation failure")
	}
	reqs = []SolveRequest{
		cloneReq(base[0]),
		{H: cloneReq(base[0]).H, Warm: make(dsp.Vec, 5)},
	}
	if err := pl.SolveBatch(reqs); err == nil {
		t.Fatal("bad warm length accepted")
	}
	// Two requests sharing one Dst would finalize into the same Result,
	// silently overwriting one of them — rejected at validation.
	shared := &Result{}
	reqs = []SolveRequest{cloneReq(base[0]), cloneReq(base[1])}
	reqs[0].Dst, reqs[1].Dst = shared, shared
	if err := pl.SolveBatch(reqs); err == nil {
		t.Fatal("aliased Dst accepted")
	}
	if err := pl.SolveBatch(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

// TestSolveBatchSteadyStateAllocsNothing extends the zero-alloc pin to
// the batch path: with recycled Dsts, a steady-state SolveBatch performs
// no allocations at any B.
func TestSolveBatchSteadyStateAllocsNothing(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	pl, base := batchFixture(t)
	// Skip the rng-seeded fixture request: a random start allocates its
	// generator on the sequential path too, so it is outside the
	// zero-alloc contract.
	base = base[:5]
	reqs := make([]SolveRequest, 8)
	for i := range reqs {
		reqs[i] = cloneReq(base[i%len(base)])
	}
	// Warm the pools and materialize the Dsts.
	if err := pl.SolveBatch(reqs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := pl.SolveBatch(reqs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state SolveBatch allocates %v times per call, want 0", allocs)
	}
}

// TestPolishGapExit is the regression pin for the gap-certified polish
// exit (ROADMAP PR-5 follow-on b): on a broad noisy support the polish
// pass must stop on its own tightened duality-gap certificate instead of
// always burning its full fixed budget, and the certified exit must not
// move the first-peak answer relative to the fixed-budget polish.
func TestPolishGapExit(t *testing.T) {
	freqs := wifi.Centers(wifi.Bands5GHz())
	pl, err := NewPlan(freqs, TauGrid(20e-9, 0.5e-9))
	if err != nil {
		t.Fatal(err)
	}
	n, _ := pl.Dims()
	rng := rand.New(rand.NewSource(41))
	// High noise on many paths: the gap stop fires with a broad support,
	// which is exactly the case whose polish used to run all 600
	// iterations.
	h := synthChannel(freqs, []float64{5, 7.5, 11.2, 14.1}, []float64{1, 0.8, 0.6, 0.5})
	for i := range h {
		h[i] += complex(rng.NormFloat64()*0.1, rng.NormFloat64()*0.1)
	}
	opts := InvertOptions{MaxIter: 4000, NoiseFloor: 0.1 * math.Sqrt(2*float64(n))}

	certified, err := pl.Solve(SolveRequest{H: h, InvertOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	polishGapExit = false
	fixed, ferr := pl.Solve(SolveRequest{H: h, InvertOptions: opts})
	polishGapExit = true
	if ferr != nil {
		t.Fatal(ferr)
	}

	if certified.Iterations >= fixed.Iterations {
		t.Errorf("certified polish exit did not save iterations: %d vs fixed-budget %d",
			certified.Iterations, fixed.Iterations)
	}
	if !certified.Converged {
		t.Error("certified solve not marked converged")
	}
	pc, okC := certified.FirstPeakDelay(0.3)
	pf, okF := fixed.FirstPeakDelay(0.3)
	if !okC || !okF {
		t.Fatal("missing first peak")
	}
	if math.Abs(pc-pf) > 0.2e-9 {
		t.Errorf("certified polish moved the first peak: %v vs %v", pc, pf)
	}
}

// FuzzSolveBatchEquivalence fuzzes the batch/sequential equivalence over
// randomized geometries, noise, batch compositions, and option mixes:
// for every generated batch, SolveBatch must be byte-identical to the
// per-request sequential Solve.
func FuzzSolveBatchEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(3), false)
	f.Add(int64(7), uint8(5), true)
	f.Add(int64(99), uint8(16), false)
	f.Fuzz(func(t *testing.T, seed int64, bRaw uint8, warmMix bool) {
		B := int(bRaw%16) + 1
		rng := rand.New(rand.NewSource(seed))
		freqs := wifi.Centers(wifi.Bands5GHz())
		pl, err := NewPlan(freqs, TauGrid(20e-9, 0.5e-9))
		if err != nil {
			t.Fatal(err)
		}
		n, _ := pl.Dims()
		mk := func() dsp.Vec {
			d1 := 4 + rng.Float64()*8
			d2 := d1 + 1 + rng.Float64()*6
			sigma := rng.Float64() * 0.1
			h := synthChannel(freqs, []float64{d1, d2}, []float64{1, 0.4 + rng.Float64()*0.4})
			for i := range h {
				h[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
			}
			return h
		}
		gapOpts := InvertOptions{MaxIter: 3000, NoiseFloor: 0.05 * math.Sqrt(2*float64(n))}
		var warmSrc *Result
		if warmMix {
			warmSrc, err = pl.Solve(SolveRequest{H: mk(), InvertOptions: gapOpts})
			if err != nil {
				t.Fatal(err)
			}
		}
		reqs := make([]SolveRequest, B)
		for i := range reqs {
			reqs[i] = SolveRequest{H: mk(), InvertOptions: gapOpts}
			if warmMix && i%2 == 1 {
				reqs[i].Warm = warmSrc.Profile
			}
			if i%3 == 2 {
				reqs[i].InvertOptions = InvertOptions{MaxIter: 1500}
			}
		}
		refs := make([]*Result, B)
		for i := range reqs {
			res, err := pl.Solve(cloneReq(reqs[i]))
			if err != nil {
				t.Fatal(err)
			}
			refs[i] = res
		}
		if err := pl.SolveBatch(reqs); err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			sameResult(t, label(B, i), refs[i], reqs[i].Dst)
		}
	})
}
