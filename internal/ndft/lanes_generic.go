//go:build (!amd64 && !arm64) || ndft_noasm

package ndft

// detectTier resolves to the scalar contract path: either the
// architecture has no vector kernels or the ndft_noasm build tag forced
// them off. Batched solves share the scalar kernel with sequential ones
// (identical results, per-session throughput).
func detectTier() kernelTier { return tierScalar }

// The kernel entry points are never reached on the scalar tier (every
// dispatch site gates on activeTier first); the stubs keep the package
// compiling on any architecture.

func kernDot(rowRe, rowIm, resTRe, resTIm *float64, n int, grOut, giOut *float64) {
	panic("ndft: vector kernel called on scalar tier")
}

func kernDotChunk(rowRe, rowIm, resTRe, resTIm *float64, k int, state, out *float64, mode uint64, stride int) {
	panic("ndft: vector kernel called on scalar tier")
}

func kernAxpy(rowRe, rowIm, coefRe, coefIm, resTRe, resTIm *float64, n int, mask uint64) {
	panic("ndft: vector kernel called on scalar tier")
}

func kernAdjDot(aRe, aIm, xRe, xIm *float64, k4 int, part *float64) {
	panic("ndft: vector kernel called on scalar tier")
}

func kernAxpyCol(rowRe, rowIm *float64, cr, ci float64, dstRe, dstIm *float64, n4 int) {
	panic("ndft: vector kernel called on scalar tier")
}
