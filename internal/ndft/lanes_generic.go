//go:build !amd64

package ndft

// laneWidth mirrors the amd64 batch-lane width so group partitioning is
// architecture-independent; without the vector kernel groups simply run
// the scalar path.
const laneWidth = 8

// useDotLanes is false off amd64: batched solves share the scalar
// kernel with sequential ones (identical results, per-session
// throughput).
const useDotLanes = false

func dot8avx512(rowRe, rowIm, resTRe, resTIm *float64, n int, grOut, giOut *float64) {
	panic("ndft: vector kernel called without AVX-512 support")
}

func axpy8avx512(rowRe, rowIm, coefRe, coefIm, resTRe, resTIm *float64, n int, mask uint64) {
	panic("ndft: vector kernel called without AVX-512 support")
}

const dotTile = 128

func dotChunk8avx512(rowRe, rowIm, resTRe, resTIm *float64, k int, state, out *float64, mode uint64, stride int) {
	panic("ndft: vector kernel called without AVX-512 support")
}
