package ndft

import (
	"math"

	"chronos/internal/dsp"
)

// This file holds the alias-family grid operations. The non-uniform band
// lattice is dominated by a regular channel raster, so the dictionary has
// strong grating lobes: an atom at delay τ and its translate at τ + P
// (P the alias period, expressed here in grid cells) are nearly
// indistinguishable, and profile mass can land on either vertex of the
// degenerate LASSO face. Grid cells that differ by a whole number of
// periods therefore form one alias *family*; decisions that should be
// vertex-insensitive (which peak is the direct path) are taken on folded
// per-family mass, and only the final placement of the winning family
// consults the off-lattice measurements.

// FoldMass folds a profile magnitude modulo period grid cells into
// per-family mass: dst[r] = Σₖ mag[r + k·period]. Every input cell
// contributes to exactly one family, so total mass is conserved. dst is
// reused when it has the capacity, and the folded slice is returned.
// period must be positive; mag shorter than one period folds to itself.
func FoldMass(dst, mag []float64, period int) []float64 {
	if period <= 0 {
		return dst[:0]
	}
	if cap(dst) < period {
		dst = make([]float64, period)
	}
	dst = dst[:period]
	for r := range dst {
		dst[r] = 0
	}
	for j, v := range mag {
		dst[j%period] += v
	}
	return dst
}

// ShiftProfile circularly shifts a profile by cells grid positions in
// place (positive toward larger delay), using the three-reversal rotation
// so no scratch is allocated — it runs between solves on the warm-start
// hot path. Mass shifted past either end wraps around; callers translate
// by far less than the grid span, and any wrapped residue lands outside
// the dilated working set's interesting region and is cheap for the
// solver to zero again.
func ShiftProfile(p dsp.Vec, cells int) {
	n := len(p)
	if n == 0 {
		return
	}
	cells %= n
	if cells < 0 {
		cells += n
	}
	if cells == 0 {
		return
	}
	reverse := func(v dsp.Vec) {
		for i, j := 0, len(v)-1; i < j; i, j = i+1, j-1 {
			v[i], v[j] = v[j], v[i]
		}
	}
	reverse(p[:n-cells])
	reverse(p[n-cells:])
	reverse(p)
}

// WeightedResidual recomputes the per-frequency residual F·p − h for a
// solved profile p on this plan and returns the w-weighted L2 norm
// √Σᵢ wᵢ·|F·p − h|ᵢ². Alias placement uses it to score hypothesis refits
// on the discriminating (off-lattice) channels only: bands whose
// frequency is a multiple of the alias rate fit every hypothesis
// identically, so including their residual noise in the comparison only
// dilutes the decision. The forward product walks p's support, reading
// each dictionary column as the conjugate of the contiguous adjoint row.
func (pl *Plan) WeightedResidual(p dsp.Vec, h dsp.Vec, w []float64) float64 {
	n := pl.n
	if len(p) != pl.m || len(h) != n || len(w) != n {
		return math.NaN()
	}
	residRe := make([]float64, n)
	residIm := make([]float64, n)
	for i, c := range h {
		residRe[i], residIm[i] = -real(c), -imag(c)
	}
	for j, c := range p {
		if c == 0 {
			continue
		}
		cr, ci := real(c), imag(c)
		row := pl.fhRe[j*n : (j+1)*n]
		rowIm := pl.fhIm[j*n : (j+1)*n]
		for i, ar := range row {
			ai := -rowIm[i] // F[i][j] = conj(Fᴴ[j][i])
			residRe[i] += ar*cr - ai*ci
			residIm[i] += ar*ci + ai*cr
		}
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += w[i] * (residRe[i]*residRe[i] + residIm[i]*residIm[i])
	}
	return math.Sqrt(sum)
}

// MaxCorrelation returns ‖Fᴴh‖∞, the largest correlation between the
// measurement and any single atom — the quantity the solver's default α
// scales from. Callers comparing residuals across related solves (the
// alias-window hypothesis refits) compute it once on a reference
// measurement and pass the resulting fixed α to every solve: letting
// each hypothesis auto-scale its own α would penalize the well-matched
// window (large correlations → more shrinkage → larger residual) and
// systematically favor displaced windows.
func (pl *Plan) MaxCorrelation(h dsp.Vec) float64 {
	n := pl.n
	if len(h) != n {
		return math.NaN()
	}
	hRe := make([]float64, n)
	hIm := make([]float64, n)
	split(hRe, hIm, h)
	var maxSq float64
	for j := 0; j < pl.m; j++ {
		cr, ci := adjDot(pl.fhRe[j*n:(j+1)*n], pl.fhIm[j*n:(j+1)*n], hRe, hIm)
		if sq := cr*cr + ci*ci; sq > maxSq {
			maxSq = sq
		}
	}
	return math.Sqrt(maxSq)
}

// MemoryBytes approximates the plan's resident size. The planar adjoint
// dictionary (two float64 planes of n×m) dominates; the frequency/delay
// grids and the full-grid index set are included, pooled per-solve
// workspaces are not (they scale with concurrent solves, not with the
// registry's plan count).
func (pl *Plan) MemoryBytes() int64 {
	return int64(8 * (2*pl.n*pl.m + len(pl.Freqs) + len(pl.Taus) + len(pl.allIdx)))
}
