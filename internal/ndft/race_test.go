//go:build race

package ndft

// raceEnabled reports that this test binary was built with the race
// detector, under which sync.Pool deliberately drops items and the
// zero-allocation steady-state guarantee cannot be observed.
const raceEnabled = true
