package ndft

import "chronos/internal/obs"

// Solver observability handles. Everything here counts
// scheduling-independent quantities — requests, iterations, stopping
// outcomes — so campaign counter totals are identical at any worker
// count; only the wall-clock histogram contents vary per host. All
// recording happens once per SolveBatch call (aggregated over the
// batch), never inside the iteration loop, which is how the
// instrumented hot path stays 0 allocs/op and within 1% of the
// uninstrumented solver (BenchmarkObsOverheadWarmStart asserts both).
var (
	// obsSolveRequests counts solve requests (a Solve is a B=1 batch).
	obsSolveRequests = obs.NewCounter("ndft.solve.requests")
	// obsSolveIterations totals solver iterations across all phases
	// (main, polish, cold fallback) of every request.
	obsSolveIterations = obs.NewCounter("ndft.solve.iterations")
	// obsSolveGapStops counts requests whose main or fallback iterate
	// ended on the duality-gap certificate rather than the iterate rule
	// or the cap.
	obsSolveGapStops = obs.NewCounter("ndft.solve.gap_stops")
	// obsSolveCapped counts requests that hit their iteration cap
	// without meeting a stopping rule (Result.Converged == false).
	obsSolveCapped = obs.NewCounter("ndft.solve.capped")
	// obsSolveKKTFallbacks counts restricted warm solves whose KKT
	// audit failed, forcing the transparent cold full-grid fallback.
	obsSolveKKTFallbacks = obs.NewCounter("ndft.solve.kkt_fallbacks")
	// obsSolveParked counts requests preempted at a gap-check boundary
	// (InvertOptions.Preempt fired; the caller holds a resume seed).
	obsSolveParked = obs.NewCounter("ndft.solve.parked")
	// obsBatchWidth is the distribution of SolveBatch widths (B).
	obsBatchWidth = obs.NewHist("ndft.solve.batch_width")
	// obsBatchWallNs is wall time per SolveBatch call, nanoseconds.
	obsBatchWallNs = obs.NewHist("ndft.solve.batch_wall_ns")
	// obsKernelLanes is the active kernel tier's batch-lane width (8 for
	// avx512/scalar, 4 for avx2/neon); the tier name itself rides the
	// snapshot as the ndft.vector_kernel label. Together they let a
	// /metrics poll (and CI's throughput gates) see which kernel a
	// deployment actually runs.
	obsKernelLanes = obs.NewGauge("ndft.kernel_lanes")
)

// init publishes the resolved kernel tier on the snapshot and keeps a
// callback refreshing the label so tier forcing (tests, benches) is
// visible on the next capture. The lanes gauge is refreshed there too:
// gauges no-op while the layer is disabled, so an init-time Set alone
// could be lost if obs is enabled later.
func init() {
	obs.SetLabel("ndft.vector_kernel", VectorKernel())
	obs.OnSnapshot(func(s *obs.Snapshot) {
		if s.Labels == nil {
			s.Labels = make(map[string]string, 1)
		}
		s.Labels["ndft.vector_kernel"] = VectorKernel()
		s.Gauges["ndft.kernel_lanes"] = float64(batchLanes)
	})
}

// recordBatch aggregates one finished batch into the solver metrics.
// Called once per SolveBatch with the task array still live; allocates
// nothing.
func recordBatch(tasks []solveTask, wallStart int64) {
	var iters, gapStops, capped, fellBack, parked int64
	for i := range tasks {
		t := &tasks[i]
		iters += int64(t.res.Iterations)
		if t.res.Parked {
			parked++
		} else if !t.res.Converged {
			capped++
		}
		if t.everGap {
			gapStops++
		}
		if t.fellBack {
			fellBack++
		}
	}
	obsSolveRequests.Add(int64(len(tasks)))
	obsSolveIterations.Add(iters)
	obsSolveGapStops.Add(gapStops)
	obsSolveCapped.Add(capped)
	obsSolveKKTFallbacks.Add(fellBack)
	obsSolveParked.Add(parked)
	obsBatchWidth.Observe(float64(len(tasks)))
	obsBatchWallNs.Since(wallStart)
}
