package ndft

// laneWidth is the batch-lane width of the vectorized gradient kernel:
// eight float64 lanes per AVX-512 zmm register, one solver task per
// lane. Tasks beyond a multiple of eight form a partial (or scalar)
// group; lane assignment never affects results, only throughput.
const laneWidth = 8

// dot8avx512 computes, for eight independent lanes b, the planar complex
// dot product of the shared adjoint row against lane b's transposed
// residual (resT[i*8+b]), writing gr/gi per lane. Each lane performs the
// reference scalar chain arithmetic exactly (see lanes_amd64.s), which
// is what keeps batched solves byte-identical to sequential ones.
//
//go:noescape
func dot8avx512(rowRe, rowIm, resTRe, resTIm *float64, n int, grOut, giOut *float64)

// dotTile is the element-tile width of the cache-blocked gradient walk:
// 128 elements × 8 lanes × 8 bytes = 8 KiB per planar component, so one
// tile of the lane-major residual stays L1-resident while every
// dictionary row streams across it. Must be even to preserve the
// accumulator-chain parity of the reference scalar dot.
const dotTile = 128

// dotChunk8avx512 advances one row's eight lane dots across one element
// tile, carrying the four accumulator chains in state (4×8 doubles per
// row). mode bit 0 zeroes the chains (first tile), bit 1 folds them and
// writes out (gr lanes, then gi lanes — 16 doubles). stride is the
// dictionary row pitch in bytes, used to prefetch the next row's slice.
// See lanes_amd64.s.
//
//go:noescape
func dotChunk8avx512(rowRe, rowIm, resTRe, resTIm *float64, k int, state, out *float64, mode uint64, stride int)

// axpy8avx512 accumulates, for every lane b whose mask bit is set, the
// scaled dictionary column coef_b·col_j into lane b of the transposed
// residual (resT[i*8+b] over i), with merge-masked stores so the other
// lanes' bits never move. Each active lane performs the scalar
// forwardResid chain arithmetic exactly (see lanes_amd64.s).
//
//go:noescape
func axpy8avx512(rowRe, rowIm, coefRe, coefIm, resTRe, resTIm *float64, n int, mask uint64)

func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// useDotLanes reports whether the vectorized batch kernel may run:
// AVX-512F present and the OS saves the full zmm + opmask state. When
// false, batched solves fall back to the scalar kernel — identical
// results, per-session throughput.
var useDotLanes = detectAVX512()

func detectAVX512() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	if c1&osxsave == 0 {
		return false
	}
	// XCR0: SSE+AVX state (bits 1-2) and opmask/zmm state (bits 5-7)
	// must all be OS-enabled before zmm registers are usable.
	lo, _ := xgetbv0()
	if lo&0xe6 != 0xe6 {
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	const avx512f = 1 << 16
	return b7&avx512f != 0
}
