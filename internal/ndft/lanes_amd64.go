//go:build amd64 && !ndft_noasm

package ndft

// dot8avx512 computes, for eight independent lanes b, the planar complex
// dot product of the shared adjoint row against lane b's transposed
// residual (resT[i*8+b]), writing gr/gi per lane. Each lane performs the
// reference scalar chain arithmetic exactly (the fixed-K cdot contract;
// see lanes_amd64.s), which is what keeps batched solves byte-identical
// to sequential ones.
//
//go:noescape
func dot8avx512(rowRe, rowIm, resTRe, resTIm *float64, n int, grOut, giOut *float64)

// dotChunk8avx512 advances one row's eight lane dots across one element
// tile, carrying the eight accumulator chains in state (8×8 doubles per
// row). mode bit 0 zeroes the chains (first tile), bit 1 folds them and
// writes out (gr lanes, then gi lanes — 16 doubles). stride is the
// dictionary row pitch in bytes, used to prefetch the next row's slice.
// See lanes_amd64.s.
//
//go:noescape
func dotChunk8avx512(rowRe, rowIm, resTRe, resTIm *float64, k int, state, out *float64, mode uint64, stride int)

// axpy8avx512 accumulates, for every lane b whose mask bit is set, the
// scaled dictionary column coef_b·col_j into lane b of the transposed
// residual (resT[i*8+b] over i), with merge-masked stores so the other
// lanes' bits never move. Each active lane performs the scalar
// forwardResid chain arithmetic exactly (see lanes_amd64.s).
//
//go:noescape
func axpy8avx512(rowRe, rowIm, coefRe, coefIm, resTRe, resTIm *float64, n int, mask uint64)

// The 4-lane AVX2 ports of the three batch kernels (ymm registers, no
// opmask — axpy4avx2 emulates the merge-masked store with VMASKMOVPD
// against an expanded lane mask), plus the single-solve kernels shared
// by both amd64 vector tiers: dotVec4 runs the four cdot accumulator
// chains across ymm lanes and axpyCol4 the elementwise column
// accumulation. See lanes_avx2_amd64.s.
//
//go:noescape
func dot4avx2(rowRe, rowIm, resTRe, resTIm *float64, n int, grOut, giOut *float64)

//go:noescape
func dotChunk4avx2(rowRe, rowIm, resTRe, resTIm *float64, k int, state, out *float64, mode uint64, stride int)

//go:noescape
func axpy4avx2(rowRe, rowIm, coefRe, coefIm, resTRe, resTIm *float64, n int, mask *uint64)

//go:noescape
func dotVec4(aRe, aIm, xRe, xIm *float64, k4 int, part *float64)

//go:noescape
func axpyCol4(rowRe, rowIm *float64, cr, ci float64, dstRe, dstIm *float64, n4 int)

func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// detectTier resolves the best amd64 kernel tier the CPU and OS
// support: AVX-512F with full zmm+opmask state, else AVX2 with ymm
// state, else the scalar contract path.
func detectTier() kernelTier {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return tierScalar
	}
	_, _, c1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	if c1&osxsave == 0 {
		return tierScalar
	}
	lo, _ := xgetbv0()
	_, b7, _, _ := cpuidex(7, 0)
	// XCR0: SSE+AVX state (bits 1-2) and opmask/zmm state (bits 5-7)
	// must all be OS-enabled before zmm registers are usable.
	const avx512f = 1 << 16
	if lo&0xe6 == 0xe6 && b7&avx512f != 0 {
		return tierAVX512
	}
	// AVX2 needs only the SSE+AVX state bits and the leaf-7 AVX2 flag.
	const avx2 = 1 << 5
	if lo&0x6 == 0x6 && b7&avx2 != 0 {
		return tierAVX2
	}
	return tierScalar
}

// kernDot / kernDotChunk / kernAxpy dispatch one batch-kernel call to
// the active tier's implementation. The lane count (batchLanes) and the
// lane-major layouts the callers stage are already tier-sized; both
// implementations honor the same fixed-K chain contract, so the tier
// changes throughput only. Never called on the scalar tier.
func kernDot(rowRe, rowIm, resTRe, resTIm *float64, n int, grOut, giOut *float64) {
	if activeTier == tierAVX512 {
		dot8avx512(rowRe, rowIm, resTRe, resTIm, n, grOut, giOut)
	} else {
		dot4avx2(rowRe, rowIm, resTRe, resTIm, n, grOut, giOut)
	}
}

func kernDotChunk(rowRe, rowIm, resTRe, resTIm *float64, k int, state, out *float64, mode uint64, stride int) {
	if activeTier == tierAVX512 {
		dotChunk8avx512(rowRe, rowIm, resTRe, resTIm, k, state, out, mode, stride)
	} else {
		dotChunk4avx2(rowRe, rowIm, resTRe, resTIm, k, state, out, mode, stride)
	}
}

func kernAxpy(rowRe, rowIm, coefRe, coefIm, resTRe, resTIm *float64, n int, mask uint64) {
	if activeTier == tierAVX512 {
		axpy8avx512(rowRe, rowIm, coefRe, coefIm, resTRe, resTIm, n, mask)
	} else {
		axpy4avx2(rowRe, rowIm, coefRe, coefIm, resTRe, resTIm, n, &axpyMask[mask&15][0])
	}
}

// kernAdjDot / kernAxpyCol are the single-solve kernels: the ymm forms
// serve both amd64 vector tiers (the adjoint chains are four wide by
// contract, so zmm registers would buy nothing). Never called on the
// scalar tier.
func kernAdjDot(aRe, aIm, xRe, xIm *float64, k4 int, part *float64) {
	dotVec4(aRe, aIm, xRe, xIm, k4, part)
}

func kernAxpyCol(rowRe, rowIm *float64, cr, ci float64, dstRe, dstIm *float64, n4 int) {
	axpyCol4(rowRe, rowIm, cr, ci, dstRe, dstIm, n4)
}
