// Package ndft implements §6 of the paper: recovering a multipath profile
// from channel measurements taken at non-uniformly spaced Wi-Fi center
// frequencies. The measurements form a Non-uniform Discrete Fourier
// Transform of the (sparse) path-delay profile; inversion is
// under-determined, so Algorithm 1 regularizes with an L1 sparsity prior
// and solves via proximal-gradient iteration (ISTA).
//
// The solver core is Plan: a precomputed dictionary (plus adjoint, step
// size, and pooled scratch state) that is built once per band-group
// signature and shared across goroutines, with warm-started,
// allocation-free steady-state solves. Matrix is the historical
// construct-and-invert entry point, kept as a thin wrapper over Plan.
package ndft

import (
	"errors"

	"chronos/internal/dsp"
	"chronos/internal/linalg"
)

var (
	errEmptyGrid         = errors.New("ndft: empty frequency or delay grid")
	errZeroNorm          = errors.New("ndft: zero spectral norm")
	errUnknownKernel     = errors.New("ndft: unknown kernel tier (want scalar, avx2, avx512, or neon)")
	errKernelUnavailable = errors.New("ndft: kernel tier not supported by this CPU")
)

// Matrix is the n×m non-uniform Fourier matrix F with
// F[i][k] = e^{−j2π·fᵢ·τₖ}, mapping a delay-domain profile p (length m)
// to frequency-domain measurements h = F·p (length n). It is a
// compatibility wrapper over Plan, which owns the precomputed solver
// state.
type Matrix struct {
	Freqs []float64 // n measurement frequencies (Hz)
	Taus  []float64 // m delay-grid points (seconds)
	F     *linalg.CMatrix

	plan *Plan
}

// NewMatrix builds the NDFT matrix for the given frequencies and delay
// grid and precomputes the ISTA step size. Construction is O(n·m).
func NewMatrix(freqs, taus []float64) (*Matrix, error) {
	pl, err := NewPlan(freqs, taus)
	if err != nil {
		return nil, err
	}
	return &Matrix{Freqs: pl.Freqs, Taus: pl.Taus, F: pl.interleaved(), plan: pl}, nil
}

// Plan returns the underlying solver plan.
func (m *Matrix) Plan() *Plan { return m.plan }

// TauGrid builds a uniform delay grid [0, maxTau] with the given step,
// inclusive of both endpoints (within floating-point rounding).
func TauGrid(maxTau, step float64) []float64 {
	if step <= 0 || maxTau <= 0 {
		return nil
	}
	n := int(maxTau/step) + 1
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) * step
	}
	return out
}

// Forward computes h = F·p.
func (m *Matrix) Forward(p dsp.Vec) dsp.Vec {
	h := make(dsp.Vec, len(m.Freqs))
	m.F.MulVec(h, p)
	return h
}

// StopRule selects how Solve decides it is done.
type StopRule int

const (
	// StopGap (default) stops when a LASSO duality-gap bound falls below
	// a tolerance scaled to the caller's per-sweep noise floor
	// (InvertOptions.NoiseFloor — the tof layer measures it from the
	// spread of repeated CSI pairs per band), in addition to the iterate
	// test. Useful precision is bounded by the measurement noise, so
	// iterating past the point where the objective is within a fraction
	// of the noise energy of its optimum only fits noise; with no floor
	// supplied the rule reduces to StopIterate.
	StopGap StopRule = iota
	// StopIterate is the historical fixed-tolerance rule: stop only when
	// ‖p_{t+1} − p_t‖₂ < Epsilon. Kept as the convergence ablation path;
	// at campaign SNR it routinely runs to the iteration cap because the
	// default 1e−6·‖h‖ tolerance sits far below the noise floor.
	StopIterate
)

// InvertOptions tunes Algorithm 1.
type InvertOptions struct {
	// Alpha is the sparsity parameter α: larger values force fewer
	// nonzero profile taps. Default 0.1·‖Fᴴh‖∞ (see code).
	Alpha float64
	// AlphaScale multiplies the auto-scaled α when Alpha is zero
	// (default 1); used by the sparsity ablation.
	AlphaScale float64
	// Epsilon is the convergence threshold ε on ‖p_{t+1} − p_t‖₂.
	// Default 1e−6·‖h‖₂.
	Epsilon float64
	// Stop selects the termination rule (default StopGap). StopIterate
	// disables the noise-adaptive duality-gap test.
	Stop StopRule
	// GapScale scales the noise-derived duality-gap tolerance: the solve
	// stops once the gap bound drops below
	// GapScale·(estimated noise energy)/2. Smaller values iterate closer
	// to the exact optimum. The default is 0.7, tuned so the full
	// estimation stack holds its accuracy fixtures (rich-multipath peak
	// picks degrade above ~1) while keeping the ≥2× cold-work reduction
	// at campaign SNR; the SNR-sweep ablation varies it.
	GapScale float64
	// GapTol, when nonzero, is an absolute duality-gap tolerance that
	// overrides the noise-derived one.
	GapTol float64
	// NoiseFloor is the caller's estimate of ‖w‖₂, the L2 norm of the
	// measurement's noise component, in the same units as
	// Result.Residual. The tof layer measures it per sweep from the
	// spread of repeated CSI pairs on each band; callers without repeated
	// measurements can fall back to Plan.NoiseFloor. When zero (and
	// GapTol is zero) the gap rule has no tolerance to stop against and
	// Solve behaves as StopIterate — which is exactly right for noiseless
	// synthetic data, where iterating to the fixed tolerance is cheap and
	// maximally accurate.
	NoiseFloor float64
	// MaxIter caps iteration count (default 2000).
	MaxIter int
	// Seed seeds the random initialization of p₀ (Algorithm 1
	// initializes p₀ randomly). Zero means start from the zero vector,
	// which is deterministic and converges at least as fast for this
	// convex objective. Ignored when a warm start is supplied.
	Seed int64
	// PlainISTA disables the FISTA momentum and α-continuation
	// refinements and runs Algorithm 1 exactly as printed in the paper.
	// The fixed points are identical; the refinements only reach them in
	// far fewer iterations on the highly coherent NDFT dictionary.
	PlainISTA bool
	// Preempt, when non-nil, is polled at the duality-gap check cadence
	// of the main and cold-fallback iterate phases (never mid-iteration,
	// never during a polish). When it returns true the solve parks: it
	// stops immediately and returns its current iterate with
	// Result.Parked set. A parked result is a resume seed, not an answer
	// — its profile has not been KKT-audited or polished — and is meant
	// to be passed back as SolveRequest.Warm, which resumes the
	// optimization from the parked restricted support. Schedulers use
	// this to yield a long bulk solve to latency-class work at a cheap
	// boundary. Nil (the default) disables polling; results are then
	// byte-identical to builds without this field.
	Preempt func() bool
}

func (o InvertOptions) withDefaults(h dsp.Vec) InvertOptions {
	if o.Epsilon == 0 {
		o.Epsilon = 1e-6 * dsp.Norm2(h)
		if o.Epsilon == 0 {
			o.Epsilon = 1e-12
		}
	}
	if o.MaxIter == 0 {
		o.MaxIter = 2000
	}
	if o.GapScale == 0 {
		o.GapScale = 0.7
	}
	return o
}

// Result is the output of one inversion.
type Result struct {
	Profile    dsp.Vec   // sparse delay-domain profile p (len == len(Taus))
	Magnitude  []float64 // |p| per grid point — the multipath profile plot
	Taus       []float64 // the delay grid (aliases Matrix.Taus)
	Iterations int
	Converged  bool
	Residual   float64 // ‖h − F·p‖₂ at termination
	// GapAtStop is the LASSO duality-gap bound measured at the last gap
	// check (0 when no check ran: StopIterate, PlainISTA, or a solve that
	// finished before the first check). For a gap-stopped solve it is the
	// certified suboptimality of the returned profile.
	GapAtStop float64
	// NoiseFloor echoes the noise estimate the stopping tolerance was
	// derived from (InvertOptions.NoiseFloor), for telemetry plumbing.
	NoiseFloor float64
	// Work counts grid cells processed across all iterations (a dense
	// solve costs Iterations×grid; restricted warm solves cost less per
	// iteration). Callers use it to compare warm against cold solves on
	// actual cost rather than raw iteration counts.
	Work int64
	// Parked reports that the solve was preempted (InvertOptions.Preempt
	// fired at a gap-check boundary) and returned its in-progress iterate
	// instead of a converged answer. Parked implies !Converged; resume by
	// re-solving with Profile as the warm start.
	Parked bool
}

// Invert runs Algorithm 1: proximal-gradient (ISTA) iterations
//
//	p_{t+1} = SPARSIFY(p_t − γ·Fᴴ(F·p_t − h̃), γα)
//
// until ‖p_{t+1} − p_t‖ < ε or MaxIter. The returned profile's magnitude
// is the multipath profile of Fig. 4(b); its first dominant peak is the
// direct path. It is a cold-start, freshly-allocated convenience over
// Plan.Solve.
func (m *Matrix) Invert(h dsp.Vec, opts InvertOptions) (*Result, error) {
	return m.plan.Solve(SolveRequest{H: h, InvertOptions: opts})
}

// FirstPeakDelay extracts the direct-path delay from an inversion result:
// the earliest profile peak at or above threshold·max (§6's "first peak"
// rule). ok is false when the profile is empty.
func (r *Result) FirstPeakDelay(threshold float64) (float64, bool) {
	p, ok := dsp.FirstPeak(r.Taus, r.Magnitude, threshold)
	if !ok {
		return 0, false
	}
	return p.X, true
}

// DominantPeaks counts profile peaks at or above threshold·max — the
// sparsity census reported in §12.1.
func (r *Result) DominantPeaks(threshold float64) int {
	return dsp.DominantPeakCount(r.Taus, r.Magnitude, threshold)
}
