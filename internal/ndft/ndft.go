// Package ndft implements §6 of the paper: recovering a multipath profile
// from channel measurements taken at non-uniformly spaced Wi-Fi center
// frequencies. The measurements form a Non-uniform Discrete Fourier
// Transform of the (sparse) path-delay profile; inversion is
// under-determined, so Algorithm 1 regularizes with an L1 sparsity prior
// and solves via proximal-gradient iteration (ISTA).
package ndft

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"chronos/internal/dsp"
	"chronos/internal/linalg"
)

// Matrix is the n×m non-uniform Fourier matrix F with
// F[i][k] = e^{−j2π·fᵢ·τₖ}, mapping a delay-domain profile p (length m)
// to frequency-domain measurements h = F·p (length n).
type Matrix struct {
	Freqs  []float64 // n measurement frequencies (Hz)
	Taus   []float64 // m delay-grid points (seconds)
	F      *linalg.CMatrix
	gamma  float64 // ISTA step size 1/‖F‖₂²
	normSq float64 // cached ‖F‖₂²
}

// NewMatrix builds the NDFT matrix for the given frequencies and delay
// grid and precomputes the ISTA step size. Construction is O(n·m).
func NewMatrix(freqs, taus []float64) (*Matrix, error) {
	n, m := len(freqs), len(taus)
	if n == 0 || m == 0 {
		return nil, errors.New("ndft: empty frequency or delay grid")
	}
	f := linalg.NewCMatrix(n, m)
	for i, fr := range freqs {
		row := f.Data[i*m : (i+1)*m]
		for k, tau := range taus {
			ph := -2 * math.Pi * fr * tau
			// Reduce the argument before Sincos: fr·tau can reach 1e1
			// range but ph magnitudes stay modest; Mod keeps precision.
			ph = math.Mod(ph, 2*math.Pi)
			s, c := math.Sincos(ph)
			row[k] = complex(c, s)
		}
	}
	mat := &Matrix{
		Freqs: append([]float64(nil), freqs...),
		Taus:  append([]float64(nil), taus...),
		F:     f,
	}
	norm := f.SpectralNorm(rand.New(rand.NewSource(1)), 40)
	if norm == 0 {
		return nil, errors.New("ndft: zero spectral norm")
	}
	mat.normSq = norm * norm
	mat.gamma = 1 / mat.normSq
	return mat, nil
}

// TauGrid builds a uniform delay grid [0, maxTau] with the given step,
// inclusive of both endpoints (within floating-point rounding).
func TauGrid(maxTau, step float64) []float64 {
	if step <= 0 || maxTau <= 0 {
		return nil
	}
	n := int(maxTau/step) + 1
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) * step
	}
	return out
}

// Forward computes h = F·p.
func (m *Matrix) Forward(p dsp.Vec) dsp.Vec {
	h := make(dsp.Vec, len(m.Freqs))
	m.F.MulVec(h, p)
	return h
}

// InvertOptions tunes Algorithm 1.
type InvertOptions struct {
	// Alpha is the sparsity parameter α: larger values force fewer
	// nonzero profile taps. Default 0.1·‖Fᴴh‖∞ (see code).
	Alpha float64
	// AlphaScale multiplies the auto-scaled α when Alpha is zero
	// (default 1); used by the sparsity ablation.
	AlphaScale float64
	// Epsilon is the convergence threshold ε on ‖p_{t+1} − p_t‖₂.
	// Default 1e−6·‖h‖₂.
	Epsilon float64
	// MaxIter caps iteration count (default 2000).
	MaxIter int
	// Seed seeds the random initialization of p₀ (Algorithm 1
	// initializes p₀ randomly). Zero means start from the zero vector,
	// which is deterministic and converges at least as fast for this
	// convex objective.
	Seed int64
	// PlainISTA disables the FISTA momentum and α-continuation
	// refinements and runs Algorithm 1 exactly as printed in the paper.
	// The fixed points are identical; the refinements only reach them in
	// far fewer iterations on the highly coherent NDFT dictionary.
	PlainISTA bool
}

func (o InvertOptions) withDefaults(h dsp.Vec) InvertOptions {
	if o.Epsilon == 0 {
		o.Epsilon = 1e-6 * dsp.Norm2(h)
		if o.Epsilon == 0 {
			o.Epsilon = 1e-12
		}
	}
	if o.MaxIter == 0 {
		o.MaxIter = 2000
	}
	return o
}

// Result is the output of one inversion.
type Result struct {
	Profile    dsp.Vec   // sparse delay-domain profile p (len == len(Taus))
	Magnitude  []float64 // |p| per grid point — the multipath profile plot
	Taus       []float64 // the delay grid (aliases Matrix.Taus)
	Iterations int
	Converged  bool
	Residual   float64 // ‖h − F·p‖₂ at termination
}

// Invert runs Algorithm 1: proximal-gradient (ISTA) iterations
//
//	p_{t+1} = SPARSIFY(p_t − γ·Fᴴ(F·p_t − h̃), γα)
//
// until ‖p_{t+1} − p_t‖ < ε or MaxIter. The returned profile's magnitude
// is the multipath profile of Fig. 4(b); its first dominant peak is the
// direct path.
func (m *Matrix) Invert(h dsp.Vec, opts InvertOptions) (*Result, error) {
	n, mm := len(m.Freqs), len(m.Taus)
	if len(h) != n {
		return nil, fmt.Errorf("ndft: measurement length %d != %d frequencies", len(h), n)
	}
	opts = opts.withDefaults(h)

	// Default α: a fraction of the largest correlation between the
	// measurement and any single atom, the standard LASSO scaling
	// (α_max = ‖Fᴴh‖∞ zeroes the whole profile; we default to 10%).
	alpha := opts.Alpha
	if alpha == 0 {
		scale := opts.AlphaScale
		if scale == 0 {
			scale = 1
		}
		alpha = 0.1 * scale * dsp.NormInf(mustCorr(m, h))
	}

	p := make(dsp.Vec, mm)
	if opts.Seed != 0 {
		rng := rand.New(rand.NewSource(opts.Seed))
		for i := range p {
			p[i] = complex(rng.NormFloat64(), rng.NormFloat64()) * complex(dsp.Norm2(h)/float64(mm), 0)
		}
	}

	prev := make(dsp.Vec, mm)
	resid := make(dsp.Vec, n)
	grad := make(dsp.Vec, mm)
	y := p.Clone() // FISTA extrapolation point

	// α-continuation: start with a large threshold that admits only the
	// strongest atoms and decay toward the target α. This steers the
	// iterate into the basin of the sparse global optimum before fine
	// fitting begins — important because the non-uniform band lattice
	// makes the dictionary highly coherent (strong grating lobes).
	curAlpha := alpha
	if !opts.PlainISTA {
		if corr := dsp.NormInf(mustCorr(m, h)); corr > alpha {
			curAlpha = corr * 0.5
		}
	}
	tMom := 1.0

	res := &Result{Taus: m.Taus}
	for iter := 1; iter <= opts.MaxIter; iter++ {
		copy(prev, p)
		src := p
		if !opts.PlainISTA {
			src = y
		}
		// resid = F·src − h̃
		m.F.MulVec(resid, src)
		dsp.Sub(resid, resid, h)
		// grad = Fᴴ·resid
		m.F.MulVecH(grad, resid)
		// p ← SPARSIFY(src − γ·grad, γα)
		copy(p, src)
		dsp.AXPY(p, complex(-m.gamma, 0), grad)
		dsp.SoftThreshold(p, m.gamma*curAlpha)

		if !opts.PlainISTA {
			// Nesterov momentum.
			tNext := (1 + math.Sqrt(1+4*tMom*tMom)) / 2
			beta := complex((tMom-1)/tNext, 0)
			for i := range y {
				y[i] = p[i] + beta*(p[i]-prev[i])
			}
			tMom = tNext
			// Decay the continuation threshold toward the target α.
			if curAlpha > alpha {
				curAlpha *= 0.97
				if curAlpha < alpha {
					curAlpha = alpha
				}
			}
		}

		dsp.Sub(prev, p, prev)
		res.Iterations = iter
		if dsp.Norm2(prev) < opts.Epsilon && curAlpha == alpha {
			res.Converged = true
			break
		}
	}

	m.F.MulVec(resid, p)
	dsp.Sub(resid, resid, h)
	res.Residual = dsp.Norm2(resid)
	res.Profile = p
	res.Magnitude = dsp.Abs(make([]float64, mm), p)
	return res, nil
}

// mustCorr computes Fᴴ·h, the correlation of the measurement with every
// dictionary atom (used for α scaling).
func mustCorr(m *Matrix, h dsp.Vec) dsp.Vec {
	corr := make(dsp.Vec, len(m.Taus))
	m.F.MulVecH(corr, h)
	return corr
}

// FirstPeakDelay extracts the direct-path delay from an inversion result:
// the earliest profile peak at or above threshold·max (§6's "first peak"
// rule). ok is false when the profile is empty.
func (r *Result) FirstPeakDelay(threshold float64) (float64, bool) {
	p, ok := dsp.FirstPeak(r.Taus, r.Magnitude, threshold)
	if !ok {
		return 0, false
	}
	return p.X, true
}

// DominantPeaks counts profile peaks at or above threshold·max — the
// sparsity census reported in §12.1.
func (r *Result) DominantPeaks(threshold float64) int {
	return dsp.DominantPeakCount(r.Taus, r.Magnitude, threshold)
}
