package sim

import (
	"math"
	"math/rand"
	"testing"

	"chronos/internal/geo"
	"chronos/internal/wifi"
)

func TestNewOfficeDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	o := NewOffice(rng, OfficeConfig{})
	if o.Width != 20 || o.Height != 20 {
		t.Errorf("size = %v×%v", o.Width, o.Height)
	}
	if len(o.Locations) != 30 {
		t.Errorf("locations = %d, want 30", len(o.Locations))
	}
	// 4 boundary walls + 3 interior.
	if len(o.Env.Walls) != 7 {
		t.Errorf("walls = %d, want 7", len(o.Env.Walls))
	}
	if len(o.Env.Scatterers) != 10 {
		t.Errorf("scatterers = %d", len(o.Env.Scatterers))
	}
}

func TestOfficeDeterministic(t *testing.T) {
	a := NewOffice(rand.New(rand.NewSource(7)), OfficeConfig{})
	b := NewOffice(rand.New(rand.NewSource(7)), OfficeConfig{})
	for i := range a.Locations {
		if a.Locations[i] != b.Locations[i] {
			t.Fatal("same seed produced different offices")
		}
	}
}

func TestLocationsInBoundsAndSpaced(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	o := NewOffice(rng, OfficeConfig{})
	for i, p := range o.Locations {
		if p.X < 1 || p.X > 19 || p.Y < 1 || p.Y > 19 {
			t.Errorf("location %d out of bounds: %v", i, p)
		}
		for j := i + 1; j < len(o.Locations); j++ {
			if p.Dist(o.Locations[j]) < 1.5 {
				t.Errorf("locations %d and %d too close", i, j)
			}
		}
	}
}

func TestRandomPlacementRespectsMaxDist(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	o := NewOffice(rng, OfficeConfig{})
	for i := 0; i < 100; i++ {
		p := o.RandomPlacement(rng, 15, i%2 == 0)
		if d := p.TrueDistance(); d <= 0.5 || d > 15 {
			t.Errorf("distance %v out of (0.5, 15]", d)
		}
		if p.NLOS != (i%2 == 0) {
			t.Error("NLOS flag not honored")
		}
	}
}

func TestPlacementGroundTruth(t *testing.T) {
	p := Placement{TX: geo.Point{X: 0, Y: 0}, RX: geo.Point{X: 3, Y: 4}}
	if p.TrueDistance() != 5 {
		t.Errorf("TrueDistance = %v", p.TrueDistance())
	}
	want := 5.0 / wifi.SpeedOfLight
	if math.Abs(p.TrueToF()-want) > 1e-18 {
		t.Errorf("TrueToF = %v", p.TrueToF())
	}
}

func TestChannelDirectDelayMatchesGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	o := NewOffice(rng, OfficeConfig{})
	p := o.RandomPlacement(rng, 15, false)
	ch := o.Channel(p, 5.5e9)
	if math.Abs(ch.DirectDelay()-p.TrueToF()) > 1e-15 {
		t.Errorf("direct delay %v != true ToF %v", ch.DirectDelay(), p.TrueToF())
	}
	if len(ch.Paths) < 2 {
		t.Errorf("office channel has only %d paths — multipath missing", len(ch.Paths))
	}
}

func TestNLOSChannelWeakerDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	o := NewOffice(rng, OfficeConfig{})
	p := o.RandomPlacement(rng, 10, false)
	los := o.Channel(p, 5.5e9)
	p.NLOS = true
	nlos := o.Channel(p, 5.5e9)
	if nlos.Paths[0].Gain >= los.Paths[0].Gain {
		t.Error("NLOS direct path not attenuated")
	}
}

func TestNewLinkSNRDegradesWithDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	o := NewOffice(rng, OfficeConfig{})
	near := Placement{TX: o.Locations[0], RX: geo.Point{X: o.Locations[0].X + 1, Y: o.Locations[0].Y}}
	far := Placement{TX: o.Locations[0], RX: geo.Point{X: o.Locations[0].X + 14, Y: o.Locations[0].Y}}
	ln := o.NewLink(rng, near, LinkConfig{})
	lf := o.NewLink(rng, far, LinkConfig{})
	if lf.SNRdB >= ln.SNRdB {
		t.Errorf("far SNR %v not below near SNR %v", lf.SNRdB, ln.SNRdB)
	}
}

func TestNewLinkQuirkFlag(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	o := NewOffice(rng, OfficeConfig{})
	p := o.RandomPlacement(rng, 10, false)
	l := o.NewLink(rng, p, LinkConfig{Quirk: true})
	if !l.TX.Quirk24 || !l.RX.Quirk24 {
		t.Error("quirk flag not propagated")
	}
}

func TestAntennaChannels(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	o := NewOffice(rng, OfficeConfig{})
	ap := AntennaPlacement{
		TX:       geo.Point{X: 5, Y: 5},
		RXCenter: geo.Point{X: 12, Y: 9},
		Array:    geo.LinearArray(3, 0.3),
	}
	chans := o.AntennaChannels(ap, 5.5e9)
	if len(chans) != 3 {
		t.Fatalf("channels = %d", len(chans))
	}
	// Each antenna's direct delay must match its own geometry.
	for i, ant := range ap.Array.At(ap.RXCenter) {
		want := ap.TX.Dist(ant) / wifi.SpeedOfLight
		if math.Abs(chans[i].DirectDelay()-want) > 1e-15 {
			t.Errorf("antenna %d: delay %v, want %v", i, chans[i].DirectDelay(), want)
		}
	}
	// Delays must differ between antennas (that difference is the
	// localization signal).
	if chans[0].DirectDelay() == chans[2].DirectDelay() {
		t.Error("antenna delays identical")
	}
}
