// Package sim builds the evaluation scenarios of §12: a 20 m × 20 m
// office floor with walls, metal cabinets and furniture scatterers, 30
// candidate device locations, and line-of-sight / non-line-of-sight
// placement pairs. It glues the rf propagation model to the csi
// measurement layer so experiments can draw complete device-pair links
// with one call.
package sim

import (
	"math"
	"math/rand"

	"chronos/internal/csi"
	"chronos/internal/geo"
	"chronos/internal/rf"
	"chronos/internal/wifi"
)

// Office is one instantiated floor plan with candidate device locations.
type Office struct {
	Env       *rf.Environment
	Locations []geo.Point // candidate device positions (blue dots of Fig. 6)
	Width     float64
	Height    float64
}

// OfficeConfig tunes floor-plan generation.
type OfficeConfig struct {
	Width, Height   float64 // floor size in meters (default 20 × 20)
	Locations       int     // number of candidate spots (default 30)
	Scatterers      int     // furniture/cabinet scatterers (default 10)
	WallLoss        float64 // reflection amplitude loss (default 0.55)
	NLOSAttenDB     float64 // direct-path penetration loss in NLOS (default 8)
	InternalWalls   int     // number of interior wall segments (default 3)
	ScattererLoss   float64 // amplitude loss of scattered paths (default 0.3)
	MinPlacementGap float64 // minimum spacing between candidate locations (default 1.5)
}

func (c OfficeConfig) withDefaults() OfficeConfig {
	if c.Width == 0 {
		c.Width = 20
	}
	if c.Height == 0 {
		c.Height = 20
	}
	if c.Locations == 0 {
		c.Locations = 30
	}
	if c.Scatterers == 0 {
		c.Scatterers = 10
	}
	if c.WallLoss == 0 {
		c.WallLoss = 0.55
	}
	if c.NLOSAttenDB == 0 {
		c.NLOSAttenDB = 8
	}
	if c.InternalWalls == 0 {
		c.InternalWalls = 3
	}
	if c.ScattererLoss == 0 {
		c.ScattererLoss = 0.3
	}
	if c.MinPlacementGap == 0 {
		c.MinPlacementGap = 1.5
	}
	return c
}

// NewOffice generates a floor plan. All randomness comes from rng, so a
// fixed seed reproduces the testbed exactly.
func NewOffice(rng *rand.Rand, cfg OfficeConfig) *Office {
	cfg = cfg.withDefaults()
	walls := rf.Rectangle(0, 0, cfg.Width, cfg.Height, cfg.WallLoss)

	// Interior walls: horizontal or vertical segments (office partitions,
	// metal cabinets) with slightly higher reflectivity.
	for i := 0; i < cfg.InternalWalls; i++ {
		x := 2 + rng.Float64()*(cfg.Width-4)
		y := 2 + rng.Float64()*(cfg.Height-4)
		length := 2 + rng.Float64()*4
		if i%2 == 0 {
			walls = append(walls, rf.Wall{
				A: rf.Point2{X: x, Y: y}, B: rf.Point2{X: math.Min(x+length, cfg.Width-1), Y: y},
				Loss: 0.7,
			})
		} else {
			walls = append(walls, rf.Wall{
				A: rf.Point2{X: x, Y: y}, B: rf.Point2{X: x, Y: math.Min(y+length, cfg.Height-1)},
				Loss: 0.7,
			})
		}
	}

	env := &rf.Environment{
		Walls:         walls,
		Scatterers:    rf.RandomScatterers(rng, cfg.Scatterers, 1, 1, cfg.Width-1, cfg.Height-1),
		ScattererLoss: cfg.ScattererLoss,
		NLOSAttenDB:   cfg.NLOSAttenDB,
	}

	// Candidate locations with a minimum pairwise gap.
	var locs []geo.Point
	for len(locs) < cfg.Locations {
		p := geo.Point{
			X: 1 + rng.Float64()*(cfg.Width-2),
			Y: 1 + rng.Float64()*(cfg.Height-2),
		}
		tooClose := false
		for _, q := range locs {
			if p.Dist(q) < cfg.MinPlacementGap {
				tooClose = true
				break
			}
		}
		if !tooClose {
			locs = append(locs, p)
		}
	}
	return &Office{Env: env, Locations: locs, Width: cfg.Width, Height: cfg.Height}
}

// Placement is one experiment instance: a transmitter and receiver
// location pair and whether the link is treated as non-line-of-sight.
type Placement struct {
	TX, RX geo.Point
	NLOS   bool
}

// TrueDistance returns the ground-truth TX–RX distance (the laser-range
// measurement of §12.1).
func (p Placement) TrueDistance() float64 { return p.TX.Dist(p.RX) }

// TrueToF returns the ground-truth direct-path time of flight.
func (p Placement) TrueToF() float64 { return p.TrueDistance() / wifi.SpeedOfLight }

// RandomPlacement draws a location pair with distance at most maxDist
// (the paper uses up to 15 m) and the requested visibility class.
func (o *Office) RandomPlacement(rng *rand.Rand, maxDist float64, nlos bool) Placement {
	for {
		i := rng.Intn(len(o.Locations))
		j := rng.Intn(len(o.Locations))
		if i == j {
			continue
		}
		p := Placement{TX: o.Locations[i], RX: o.Locations[j], NLOS: nlos}
		if d := p.TrueDistance(); d > 0.5 && d <= maxDist {
			return p
		}
	}
}

// Channel builds the multipath channel for a placement at a representative
// frequency. The path census is pruned to the dominant few: §12.1 reports
// a mean of ≈5 dominant peaks in measured indoor profiles, and the sparse
// inversion has only ~24 five-GHz measurements to explain the squared
// channel's pairwise cross-terms, so weak straggler paths are dropped at
// generation just as they fall below the noise floor on real hardware.
func (o *Office) Channel(p Placement, freq float64) *rf.Channel {
	return rf.GenerateChannel(o.Env,
		rf.Point2{X: p.TX.X, Y: p.TX.Y},
		rf.Point2{X: p.RX.X, Y: p.RX.Y},
		rf.PropagationOptions{Freq: freq, NLOS: p.NLOS, MinGain: 0.15, MaxPaths: 6})
}

// LinkConfig tunes device-pair link creation.
type LinkConfig struct {
	SNRdB float64 // per-subcarrier CSI SNR (default 28)
	Quirk bool    // radios exhibit the 2.4 GHz quirk (default matches radios)
}

// LinkSNR is the office link budget: the base per-subcarrier SNR degrades
// gently with distance (the §12.1 observation that error grows at longer
// ranges) and drops further through obstructions. baseSNRdB of 0 means
// the default 28 dB. Shared by NewLink and the streaming tracking
// sessions so both evaluate on the same budget.
func LinkSNR(baseSNRdB, dist float64, nlos bool) float64 {
	if baseSNRdB == 0 {
		baseSNRdB = 28
	}
	snr := baseSNRdB - 10*math.Log10(math.Max(dist, 1))
	if nlos {
		snr -= 4
	}
	return snr
}

// NewLink instantiates two fresh radios over the placement's channel,
// with the LinkSNR budget applied at the placement's distance.
func (o *Office) NewLink(rng *rand.Rand, p Placement, cfg LinkConfig) *csi.Link {
	tx, rx := csi.NewRadio(rng), csi.NewRadio(rng)
	tx.Quirk24, rx.Quirk24 = cfg.Quirk, cfg.Quirk
	return &csi.Link{
		TX: tx, RX: rx,
		Channel: o.Channel(p, 5.5e9),
		SNRdB:   LinkSNR(cfg.SNRdB, p.TrueDistance(), p.NLOS),
	}
}

// AntennaPlacement describes a multi-antenna receiver placement: the
// array sits (untranslated) at RXCenter and the single-antenna
// transmitter at TX.
type AntennaPlacement struct {
	TX       geo.Point
	RXCenter geo.Point
	Array    geo.Array
	NLOS     bool
}

// AntennaChannels builds one channel per receive antenna. Each antenna
// sees its own geometry (its own direct delay), which is what localization
// triangulates on.
func (o *Office) AntennaChannels(ap AntennaPlacement, freq float64) []*rf.Channel {
	out := make([]*rf.Channel, len(ap.Array.Antennas))
	for i, ant := range ap.Array.At(ap.RXCenter) {
		out[i] = rf.GenerateChannel(o.Env,
			rf.Point2{X: ap.TX.X, Y: ap.TX.Y},
			rf.Point2{X: ant.X, Y: ant.Y},
			rf.PropagationOptions{Freq: freq, NLOS: ap.NLOS, MinGain: 0.15, MaxPaths: 6})
	}
	return out
}
