package linalg

import (
	"errors"
	"math"
)

// Residual evaluates a vector-valued residual r(x) and its Jacobian J(x)
// at point x. r has m components, x has n, and jac is row-major m×n.
// Implementations fill r and jac in place so the solver can reuse buffers.
type Residual interface {
	Dims() (m, n int)
	Eval(x []float64, r []float64, jac []float64)
}

// GNOptions configures Gauss–Newton iteration.
type GNOptions struct {
	MaxIter   int     // maximum iterations (default 50)
	Tol       float64 // stop when the step norm falls below Tol (default 1e-9)
	Damping   float64 // Levenberg damping added to JᵀJ diagonal (default 1e-9)
	StepLimit float64 // optional per-iteration step clamp; 0 disables
}

func (o GNOptions) withDefaults() GNOptions {
	if o.MaxIter == 0 {
		o.MaxIter = 50
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	if o.Damping == 0 {
		o.Damping = 1e-9
	}
	return o
}

// ErrNoConverge reports that Gauss–Newton hit MaxIter without meeting Tol.
var ErrNoConverge = errors.New("linalg: gauss-newton did not converge")

// GaussNewton minimizes ‖r(x)‖₂² starting from x0 and returns the refined
// solution together with the final residual norm. The returned error is
// ErrNoConverge when the iteration cap is hit (the best-so-far solution is
// still returned) or ErrSingular when the normal equations collapse.
func GaussNewton(res Residual, x0 []float64, opts GNOptions) ([]float64, float64, error) {
	opts = opts.withDefaults()
	m, n := res.Dims()
	x := append([]float64(nil), x0...)
	if len(x) != n {
		return nil, 0, errors.New("linalg: x0 has wrong dimension")
	}
	r := make([]float64, m)
	jac := make([]float64, m*n)
	jtj := make([]float64, n*n)
	jtr := make([]float64, n)

	var lastNorm float64
	for iter := 0; iter < opts.MaxIter; iter++ {
		res.Eval(x, r, jac)
		lastNorm = norm2(r)

		// Normal equations (JᵀJ + λI)·δ = −Jᵀr.
		for i := range jtj {
			jtj[i] = 0
		}
		for i := range jtr {
			jtr[i] = 0
		}
		for i := 0; i < m; i++ {
			row := jac[i*n : (i+1)*n]
			ri := r[i]
			for p := 0; p < n; p++ {
				jtr[p] -= row[p] * ri
				for q := p; q < n; q++ {
					jtj[p*n+q] += row[p] * row[q]
				}
			}
		}
		for p := 0; p < n; p++ {
			jtj[p*n+p] += opts.Damping
			for q := 0; q < p; q++ {
				jtj[p*n+q] = jtj[q*n+p]
			}
		}
		delta, err := SolveReal(jtj, n, jtr)
		if err != nil {
			return x, lastNorm, err
		}
		stepNorm := norm2(delta)
		if opts.StepLimit > 0 && stepNorm > opts.StepLimit {
			scale := opts.StepLimit / stepNorm
			for i := range delta {
				delta[i] *= scale
			}
			stepNorm = opts.StepLimit
		}
		for i := range x {
			x[i] += delta[i]
		}
		if stepNorm < opts.Tol {
			res.Eval(x, r, jac)
			return x, norm2(r), nil
		}
	}
	res.Eval(x, r, jac)
	return x, norm2(r), ErrNoConverge
}

func norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
