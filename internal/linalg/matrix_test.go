package linalg

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"chronos/internal/dsp"
)

func TestMulVec(t *testing.T) {
	m := NewCMatrix(2, 3)
	// [1 2 3; 4 5 6]
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, complex(float64(i*3+j+1), 0))
		}
	}
	x := dsp.Vec{1, 1i, -1}
	dst := make(dsp.Vec, 2)
	m.MulVec(dst, x)
	if dst[0] != complex(-2, 2) || dst[1] != complex(-2, 5) {
		t.Errorf("MulVec = %v", dst)
	}
}

func TestMulVecHAdjointProperty(t *testing.T) {
	// <Mx, y> == <x, Mᴴy> for random matrices.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 3+rng.Intn(5), 2+rng.Intn(6)
		m := NewCMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		x := make(dsp.Vec, cols)
		y := make(dsp.Vec, rows)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		for i := range y {
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		mx := m.MulVec(make(dsp.Vec, rows), x)
		mhy := m.MulVecH(make(dsp.Vec, cols), y)
		lhs := dsp.Dot(y, mx) // <y, Mx>
		rhs := dsp.Dot(mhy, x)
		if cmplx.Abs(lhs-rhs) > 1e-9*(1+cmplx.Abs(lhs)) {
			t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
		}
	}
}

func TestMulVecPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m := NewCMatrix(2, 2)
	m.MulVec(make(dsp.Vec, 2), make(dsp.Vec, 3))
}

func TestSpectralNormDiagonal(t *testing.T) {
	m := NewCMatrix(3, 3)
	m.Set(0, 0, 2)
	m.Set(1, 1, -7)
	m.Set(2, 2, 1i)
	rng := rand.New(rand.NewSource(2))
	if got := m.SpectralNorm(rng, 50); math.Abs(got-7) > 1e-6 {
		t.Errorf("SpectralNorm = %v, want 7", got)
	}
}

func TestSpectralNormUpperBoundsColumns(t *testing.T) {
	// ‖M‖₂ ≥ ‖M e_j‖₂ for every unit basis vector.
	rng := rand.New(rand.NewSource(3))
	m := NewCMatrix(4, 3)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	norm := m.SpectralNorm(rand.New(rand.NewSource(4)), 100)
	for j := 0; j < 3; j++ {
		e := make(dsp.Vec, 3)
		e[j] = 1
		col := m.MulVec(make(dsp.Vec, 4), e)
		if c := dsp.Norm2(col); c > norm+1e-6 {
			t.Errorf("column %d norm %v exceeds spectral norm %v", j, c, norm)
		}
	}
}

func TestSpectralNormEmpty(t *testing.T) {
	m := NewCMatrix(0, 0)
	if got := m.SpectralNorm(rand.New(rand.NewSource(1)), 10); got != 0 {
		t.Errorf("empty SpectralNorm = %v", got)
	}
}

func TestSolveReal(t *testing.T) {
	// 2x + y = 5; x - y = 1  →  x = 2, y = 1
	a := []float64{2, 1, 1, -1}
	b := []float64{5, 1}
	x, err := SolveReal(a, 2, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Errorf("SolveReal = %v", x)
	}
}

func TestSolveRealNeedsPivoting(t *testing.T) {
	// Zero in the top-left corner forces a row swap.
	a := []float64{0, 1, 1, 0}
	b := []float64{3, 4}
	x, err := SolveReal(a, 2, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-4) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("SolveReal = %v", x)
	}
}

func TestSolveRealSingular(t *testing.T) {
	a := []float64{1, 2, 2, 4}
	b := []float64{1, 2}
	if _, err := SolveReal(a, 2, b); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveRealDimMismatch(t *testing.T) {
	if _, err := SolveReal([]float64{1}, 2, []float64{1, 2}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestSolveRealRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(6)
		a := make([]float64, n*n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += a[i*n+j] * want[j]
			}
		}
		got, err := SolveReal(append([]float64(nil), a...), n, b)
		if errors.Is(err, ErrSingular) {
			continue // random matrix can be near-singular
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent: y = 3x + 2 sampled at 4 points.
	a := []float64{0, 1, 1, 1, 2, 1, 3, 1}
	b := []float64{2, 5, 8, 11}
	x, err := LeastSquares(a, 4, 2, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Errorf("LeastSquares = %v", x)
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// Property: the least-squares residual is orthogonal to the columns
	// of A.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 8, 3
		a := make([]float64, m*n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(append([]float64(nil), a...), m, n, append([]float64(nil), b...))
		if err != nil {
			return true
		}
		for j := 0; j < n; j++ {
			var dot float64
			for i := 0; i < m; i++ {
				r := b[i]
				for k := 0; k < n; k++ {
					r -= a[i*n+k] * x[k]
				}
				dot += a[i*n+j] * r
			}
			if math.Abs(dot) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	if _, err := LeastSquares(make([]float64, 2), 1, 2, []float64{1}); err == nil {
		t.Error("expected error for m < n")
	}
}
