// Package linalg implements the small dense linear-algebra kernel Chronos
// needs: complex matrix–vector products for the non-uniform DFT, power
// iteration for the ISTA step size, and real least squares / Gauss–Newton
// for trilateration.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"chronos/internal/dsp"
)

// CMatrix is a dense row-major complex matrix.
type CMatrix struct {
	Rows, Cols int
	Data       []complex128 // len Rows*Cols, row-major
}

// NewCMatrix allocates a zeroed Rows×Cols complex matrix.
func NewCMatrix(rows, cols int) *CMatrix {
	return &CMatrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns the element at (i, j).
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// MulVec computes dst = M·x. dst must have length Rows and x length Cols.
func (m *CMatrix) MulVec(dst, x dsp.Vec) dsp.Vec {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVec dims %dx%d vs x=%d dst=%d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var sum complex128
		for j, r := range row {
			sum += r * x[j]
		}
		dst[i] = sum
	}
	return dst
}

// MulVecH computes dst = Mᴴ·x (conjugate transpose times x). dst must have
// length Cols and x length Rows.
func (m *CMatrix) MulVecH(dst, x dsp.Vec) dsp.Vec {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVecH dims %dx%d vs x=%d dst=%d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		xi := x[i]
		for j, r := range row {
			dst[j] += cmplx.Conj(r) * xi
		}
	}
	return dst
}

// SpectralNorm estimates ‖M‖₂ (the largest singular value) by power
// iteration on MᴴM. iters around 30 gives plenty of accuracy for choosing
// the ISTA step size γ = 1/‖F‖₂². rng seeds the start vector so results
// are deterministic.
func (m *CMatrix) SpectralNorm(rng *rand.Rand, iters int) float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	v := make(dsp.Vec, m.Cols)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	tmp := make(dsp.Vec, m.Rows)
	for k := 0; k < iters; k++ {
		m.MulVec(tmp, v)
		m.MulVecH(v, tmp)
		n := dsp.Norm2(v)
		if n == 0 {
			return 0
		}
		dsp.Scale(v, complex(1/n, 0), v)
	}
	m.MulVec(tmp, v)
	return dsp.Norm2(tmp)
}

// ErrSingular reports a numerically singular system.
var ErrSingular = errors.New("linalg: singular matrix")

// SolveReal solves the real linear system A·x = b in place using Gaussian
// elimination with partial pivoting. A is row-major n×n, b has length n.
// A and b are clobbered; the solution is returned.
func SolveReal(a []float64, n int, b []float64) ([]float64, error) {
	if len(a) != n*n || len(b) != n {
		return nil, fmt.Errorf("linalg: SolveReal dims a=%d b=%d n=%d", len(a), len(b), n)
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		maxAbs := math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-14 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				a[col*n+j], a[pivot*n+j] = a[pivot*n+j], a[col*n+j]
			}
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a[r*n+j] -= f * a[col*n+j]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for j := r + 1; j < n; j++ {
			sum -= a[r*n+j] * b[j]
		}
		b[r] = sum / a[r*n+r]
	}
	return b, nil
}

// LeastSquares solves min‖A·x − b‖₂ for a real m×n matrix (m ≥ n) via the
// normal equations AᵀA·x = Aᵀb. Suitable for the small, well-conditioned
// systems in trilateration.
func LeastSquares(a []float64, m, n int, b []float64) ([]float64, error) {
	if len(a) != m*n || len(b) != m {
		return nil, fmt.Errorf("linalg: LeastSquares dims a=%d b=%d m=%d n=%d", len(a), len(b), m, n)
	}
	if m < n {
		return nil, fmt.Errorf("linalg: underdetermined system m=%d < n=%d", m, n)
	}
	ata := make([]float64, n*n)
	atb := make([]float64, n)
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		for p := 0; p < n; p++ {
			atb[p] += row[p] * b[i]
			for q := p; q < n; q++ {
				ata[p*n+q] += row[p] * row[q]
			}
		}
	}
	for p := 0; p < n; p++ {
		for q := 0; q < p; q++ {
			ata[p*n+q] = ata[q*n+p]
		}
	}
	return SolveReal(ata, n, atb)
}
