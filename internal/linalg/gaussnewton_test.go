package linalg

import (
	"errors"
	"math"
	"testing"
)

// circleResidual implements the trilateration residual: distances from a
// 2D point to fixed anchors.
type circleResidual struct {
	anchors [][2]float64
	dists   []float64
}

func (c *circleResidual) Dims() (int, int) { return len(c.anchors), 2 }

func (c *circleResidual) Eval(x, r, jac []float64) {
	for i, a := range c.anchors {
		dx, dy := x[0]-a[0], x[1]-a[1]
		d := math.Hypot(dx, dy)
		r[i] = d - c.dists[i]
		if d < 1e-12 {
			jac[i*2], jac[i*2+1] = 0, 0
			continue
		}
		jac[i*2] = dx / d
		jac[i*2+1] = dy / d
	}
}

func TestGaussNewtonTrilateration(t *testing.T) {
	truth := [2]float64{3.2, -1.7}
	anchors := [][2]float64{{0, 0}, {10, 0}, {0, 10}}
	res := &circleResidual{anchors: anchors}
	for _, a := range anchors {
		res.dists = append(res.dists, math.Hypot(truth[0]-a[0], truth[1]-a[1]))
	}
	x, norm, err := GaussNewton(res, []float64{5, 5}, GNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-truth[0]) > 1e-6 || math.Abs(x[1]-truth[1]) > 1e-6 {
		t.Errorf("solution = %v, want %v", x, truth)
	}
	if norm > 1e-6 {
		t.Errorf("residual norm = %v", norm)
	}
}

func TestGaussNewtonNoisyOverdetermined(t *testing.T) {
	truth := [2]float64{4, 4}
	anchors := [][2]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}}
	res := &circleResidual{anchors: anchors}
	noise := []float64{0.05, -0.03, 0.02, -0.04}
	for i, a := range anchors {
		res.dists = append(res.dists, math.Hypot(truth[0]-a[0], truth[1]-a[1])+noise[i])
	}
	x, _, err := GaussNewton(res, []float64{1, 1}, GNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Hypot(x[0]-truth[0], x[1]-truth[1]) > 0.1 {
		t.Errorf("solution = %v too far from %v", x, truth)
	}
}

func TestGaussNewtonStepLimit(t *testing.T) {
	truth := [2]float64{0.5, 0.5}
	anchors := [][2]float64{{0, 0}, {1, 0}, {0, 1}}
	res := &circleResidual{anchors: anchors}
	for _, a := range anchors {
		res.dists = append(res.dists, math.Hypot(truth[0]-a[0], truth[1]-a[1]))
	}
	// A tiny step limit forces many iterations from a distant start; the
	// limit must cap convergence speed without breaking correctness.
	x, _, err := GaussNewton(res, []float64{20, 20}, GNOptions{MaxIter: 500, StepLimit: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Hypot(x[0]-truth[0], x[1]-truth[1]) > 1e-6 {
		t.Errorf("solution = %v, want %v", x, truth)
	}
}

func TestGaussNewtonMaxIter(t *testing.T) {
	truth := [2]float64{3, 3}
	anchors := [][2]float64{{0, 0}, {10, 0}, {0, 10}}
	res := &circleResidual{anchors: anchors}
	for _, a := range anchors {
		res.dists = append(res.dists, math.Hypot(truth[0]-a[0], truth[1]-a[1]))
	}
	_, _, err := GaussNewton(res, []float64{50, 50}, GNOptions{MaxIter: 1, StepLimit: 0.01})
	if !errors.Is(err, ErrNoConverge) {
		t.Errorf("err = %v, want ErrNoConverge", err)
	}
}

func TestGaussNewtonBadStart(t *testing.T) {
	res := &circleResidual{anchors: [][2]float64{{0, 0}}, dists: []float64{1}}
	if _, _, err := GaussNewton(res, []float64{1}, GNOptions{}); err == nil {
		t.Error("expected dimension error")
	}
}
