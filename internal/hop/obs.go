package hop

import "chronos/internal/obs"

// Hop-protocol observability handles. Everything is driven by the
// virtual-time MAC simulator, so both the counters and the histogram
// contents (dwell, sweep duration, revert time — all virtual
// nanoseconds) are fully deterministic for a given seed at any worker
// count.
var (
	// obsHops counts completed band hops (acked announce rounds).
	obsHops = obs.NewCounter("hop.hops")
	// obsAnnounces counts announce frames sent, retransmissions included.
	obsAnnounces = obs.NewCounter("hop.announces")
	// obsRetries totals announce retransmissions across completed hops.
	obsRetries = obs.NewCounter("hop.retries")
	// obsFailSafes counts fail-safe reverts to the default band.
	obsFailSafes = obs.NewCounter("hop.failsafes")
	// obsRevertNs totals virtual time lost to fail-safe reverts.
	obsRevertNs = obs.NewCounter("hop.revert_ns")
	// obsDwellNs is per-band occupancy (virtual ns from band entry to
	// leave) across sweeps.
	obsDwellNs = obs.NewHist("hop.band_dwell_ns")
	// obsSweepNs is full-sweep duration in virtual nanoseconds.
	obsSweepNs = obs.NewHist("hop.sweep_duration_ns")
)
