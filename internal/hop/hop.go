// Package hop implements the §4 channel-hopping protocol on the mac
// virtual-time substrate. The transmitter drives the sweep: before
// leaving a band it announces the next band in a control packet; the
// receiver acknowledges and retunes; once the acknowledgment arrives the
// transmitter retunes too. Lost announcements or acknowledgments are
// retransmitted after a timeout, and both sides fall back to the default
// band if a band stays silent too long — the paper's fail-safe.
//
// The sweep duration distribution this produces is Fig. 9a (median
// ≈84 ms over 35 bands).
package hop

import (
	"math/rand"
	"time"

	"chronos/internal/mac"
	"chronos/internal/wifi"
)

// Config tunes protocol timing. Defaults reproduce the paper's per-band
// budget: 35 bands in a median of ≈84 ms.
type Config struct {
	// Dwell is the time spent exchanging CSI packets on each band before
	// the hop announcement (default 1.1 ms — a handful of packet/ACK
	// pairs at microsecond airtimes).
	Dwell time.Duration
	// SwitchTime is the radio retune latency after deciding to hop
	// (default 1.15 ms, the dominant per-band cost on the Intel 5300).
	SwitchTime time.Duration
	// SwitchJitter adds uniform random retune spread (default 0.2 ms).
	SwitchJitter time.Duration
	// AckTimeout is the announce retransmission timeout (default 300 µs).
	AckTimeout time.Duration
	// MaxRetries bounds announce retransmissions before the fail-safe
	// aborts the band (default 8).
	MaxRetries int
	// FailSafe is the silence window after which both radios revert to
	// the default band (default 20 ms).
	FailSafe time.Duration
	// LossProb is the control-frame loss probability (default 0.02).
	LossProb float64
	// Latency is the one-way control-frame delay (default 60 µs:
	// DIFS + airtime + kernel path, per §11's hrtimer implementation).
	Latency time.Duration
}

func (c Config) withDefaults() Config {
	if c.Dwell == 0 {
		c.Dwell = 1100 * time.Microsecond
	}
	if c.SwitchTime == 0 {
		c.SwitchTime = 1150 * time.Microsecond
	}
	if c.SwitchJitter == 0 {
		c.SwitchJitter = 200 * time.Microsecond
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 300 * time.Microsecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.FailSafe == 0 {
		c.FailSafe = 20 * time.Millisecond
	}
	if c.LossProb == 0 {
		c.LossProb = 0.02
	}
	if c.Latency == 0 {
		c.Latency = 60 * time.Microsecond
	}
	return c
}

// BandVisit records the protocol's stay on one band.
type BandVisit struct {
	Band      wifi.Band
	Enter     time.Duration // virtual time both sides were on the band
	Leave     time.Duration // virtual time the transmitter left
	Retries   int           // announce retransmissions needed to move on
	FailSafed bool          // band abandoned via the fail-safe timer
}

// SweepResult summarizes one full sweep across all bands.
type SweepResult struct {
	Duration  time.Duration
	Visits    []BandVisit
	Announces int // total announce frames sent (incl. retransmissions)
	FailSafes int
}

// Sweep runs the hop protocol across bands once and returns its timing.
// All randomness (losses, jitter) is drawn from rng.
func Sweep(rng *rand.Rand, bands []wifi.Band, cfg Config) SweepResult {
	cfg = cfg.withDefaults()
	sim := mac.NewSim()
	link := &mac.Link{Sim: sim, Latency: cfg.Latency, Rng: rng, LossProb: cfg.LossProb}

	res := SweepResult{}
	var enterTime time.Duration

	// The protocol is sequential (one band at a time), so a recursive
	// event-driven walk over bands is the clearest encoding of the two
	// state machines.
	var visitBand func(i int)
	var hopTo func(i, retries int)

	// hopTo announces band i to the receiver, retrying on timeout; when
	// the ACK arrives both radios retune and visitBand(i) runs.
	hopTo = func(i, retries int) {
		if i >= len(bands) {
			return
		}
		if retries > cfg.MaxRetries {
			// Fail-safe: both radios revert to the default band and the
			// transmitter restarts the hop announcement there. We model
			// the cost as one fail-safe window before the next attempt.
			res.FailSafes++
			if len(res.Visits) > 0 {
				res.Visits[len(res.Visits)-1].FailSafed = true
			}
			sim.Schedule(cfg.FailSafe, func() { hopTo(i, 0) })
			return
		}
		res.Announces++
		acked := false
		// Announce → receiver; receiver ACKs → transmitter.
		link.Send(mac.Frame{Kind: "announce", Payload: 28}, func(mac.Frame) {
			link.Send(mac.Frame{Kind: "ack", Payload: 14}, func(mac.Frame) {
				if acked {
					return
				}
				acked = true
				// Both sides retune; the slower radio gates band entry.
				sw := cfg.SwitchTime + time.Duration(rng.Int63n(int64(cfg.SwitchJitter)+1))
				sim.Schedule(sw, func() {
					if len(res.Visits) > 0 {
						res.Visits[len(res.Visits)-1].Retries = retries
					}
					visitBand(i)
				})
			})
		})
		// Retransmit on silence.
		sim.Schedule(cfg.AckTimeout, func() {
			if !acked {
				hopTo(i, retries+1)
			}
		})
	}

	visitBand = func(i int) {
		enterTime = sim.Now()
		res.Visits = append(res.Visits, BandVisit{Band: bands[i], Enter: enterTime})
		// Exchange CSI packets for the dwell, then move on.
		sim.Schedule(cfg.Dwell, func() {
			res.Visits[len(res.Visits)-1].Leave = sim.Now()
			if i+1 < len(bands) {
				hopTo(i+1, 0)
			}
		})
	}

	// The sweep starts with both radios already on band 0.
	visitBand(0)
	sim.RunAll()
	res.Duration = sim.Now()
	return res
}

// SweepDurations runs n independent sweeps and returns their durations in
// seconds — the sample behind the Fig. 9a CDF.
func SweepDurations(rng *rand.Rand, bands []wifi.Band, cfg Config, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = Sweep(rng, bands, cfg).Duration.Seconds()
	}
	return out
}
