// Package hop implements the §4 channel-hopping protocol on the mac
// virtual-time substrate. The transmitter drives the sweep: before
// leaving a band it announces the next band in a control packet; the
// receiver acknowledges and retunes; once the acknowledgment arrives the
// transmitter retunes too. Lost announcements or acknowledgments are
// retransmitted after a timeout, and both sides fall back to the default
// band if a band stays silent too long — the paper's fail-safe.
//
// The sweep duration distribution this produces is Fig. 9a (median
// ≈84 ms over 35 bands).
package hop

import (
	"math/rand"
	"time"

	"chronos/internal/mac"
	"chronos/internal/obs"
	"chronos/internal/wifi"
)

// Config tunes protocol timing. Defaults reproduce the paper's per-band
// budget: 35 bands in a median of ≈84 ms.
type Config struct {
	// Dwell is the time spent exchanging CSI packets on each band before
	// the hop announcement (default 1.1 ms — a handful of packet/ACK
	// pairs at microsecond airtimes).
	Dwell time.Duration
	// SwitchTime is the radio retune latency after deciding to hop
	// (default 1.15 ms, the dominant per-band cost on the Intel 5300).
	SwitchTime time.Duration
	// SwitchJitter adds uniform random retune spread (default 0.2 ms).
	SwitchJitter time.Duration
	// AckTimeout is the announce retransmission timeout (default 300 µs).
	AckTimeout time.Duration
	// MaxRetries bounds announce retransmissions before the fail-safe
	// aborts the band (default 8).
	MaxRetries int
	// FailSafe is the silence window after which both radios revert to
	// the default band (default 20 ms).
	FailSafe time.Duration
	// LossProb is the control-frame loss probability (default 0.02).
	LossProb float64
	// Latency is the one-way control-frame delay (default 60 µs:
	// DIFS + airtime + kernel path, per §11's hrtimer implementation).
	Latency time.Duration
}

func (c Config) withDefaults() Config {
	if c.Dwell == 0 {
		c.Dwell = 1100 * time.Microsecond
	}
	if c.SwitchTime == 0 {
		c.SwitchTime = 1150 * time.Microsecond
	}
	if c.SwitchJitter == 0 {
		c.SwitchJitter = 200 * time.Microsecond
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 300 * time.Microsecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.FailSafe == 0 {
		c.FailSafe = 20 * time.Millisecond
	}
	if c.LossProb == 0 {
		c.LossProb = 0.02
	}
	if c.Latency == 0 {
		c.Latency = 60 * time.Microsecond
	}
	return c
}

// BandVisit records the protocol's stay on one band.
type BandVisit struct {
	Band      wifi.Band
	Enter     time.Duration // virtual time both sides were on the band
	Leave     time.Duration // virtual time the transmitter left
	Retries   int           // announce retransmissions needed to move on
	FailSafed bool          // band abandoned via the fail-safe timer
}

// SweepResult summarizes one full sweep across all bands.
type SweepResult struct {
	Duration  time.Duration
	Visits    []BandVisit
	Announces int // total announce frames sent (incl. retransmissions)
	FailSafes int
	// RevertTime is the total virtual time lost to fail-safe reverts: the
	// silence window plus the retune back to the default band before the
	// announcement restarts there.
	RevertTime time.Duration
}

// Hopper drives the transmitter-side hop state machine for one device
// pair on an externally owned simulator, so several pairs can interleave
// their hops on one virtual timeline (internal/track's multi-client
// scheduler) while Sweep remains the single-pair convenience wrapper.
//
// A Hopper is bound to its simulator and RNG and is not safe for
// concurrent use; interleaving is achieved by event ordering on the
// shared Sim, never by goroutines.
type Hopper struct {
	Sim  *mac.Sim
	Rng  *rand.Rand
	Cfg  Config // effective (defaulted) configuration
	Link *mac.Link

	// Counters accumulate across every Hop on this pair.
	Announces  int
	FailSafes  int
	RevertTime time.Duration
}

// NewHopper builds a hop driver for one device pair on sim.
func NewHopper(sim *mac.Sim, rng *rand.Rand, cfg Config) *Hopper {
	cfg = cfg.withDefaults()
	return &Hopper{
		Sim: sim, Rng: rng, Cfg: cfg,
		Link: &mac.Link{Sim: sim, Latency: cfg.Latency, Rng: rng, LossProb: cfg.LossProb},
	}
}

// SwitchDelay draws one radio retune time (base switch time plus
// jitter). Exported so schedulers layering on the Hopper charge retunes
// from the same model the hop protocol uses.
func (h *Hopper) SwitchDelay() time.Duration {
	return h.Cfg.SwitchTime + time.Duration(h.Rng.Int63n(int64(h.Cfg.SwitchJitter)+1))
}

// hopState is the Hop-scoped state shared across announce rounds: an ack
// that lands after its round already timed out (AckTimeout shorter than
// the ack round trip) must still complete the hop exactly once, silence
// every outstanding retry timer, and call off a pending fail-safe revert.
type hopState struct {
	acked  bool
	revert *mac.Timer // pending fail-safe revert, nil when none
}

// Hop announces the next band to the receiver, retrying lost control
// frames and applying the fail-safe on retry exhaustion. done runs
// exactly once, at the virtual instant both radios are on the new band,
// with the retransmit count of the successful announce round and the
// number of fail-safe reverts taken along the way.
func (h *Hopper) Hop(done func(retries, failsafes int)) { h.hop(0, 0, &hopState{}, done) }

// hop runs one announce round.
func (h *Hopper) hop(retries, failsafes int, st *hopState, done func(retries, failsafes int)) {
	cfg := h.Cfg
	if retries > cfg.MaxRetries {
		// Fail-safe: after a silent window both radios revert to the
		// default band (one retune) and the transmitter restarts the hop
		// announcement from there. Counters are charged when the revert
		// actually happens — a late in-flight ack cancels it.
		revert := cfg.FailSafe + h.SwitchDelay()
		st.revert = h.Sim.Schedule(revert, func() {
			st.revert = nil
			h.FailSafes++
			h.RevertTime += revert
			obsFailSafes.Inc()
			obsRevertNs.Add(int64(revert))
			h.hop(0, failsafes+1, st, done)
		})
		return
	}
	h.Announces++
	obsAnnounces.Inc()
	// Announce → receiver; receiver ACKs → transmitter.
	h.Link.Send(mac.Frame{Kind: "announce", Payload: 28}, func(mac.Frame) {
		h.Link.Send(mac.Frame{Kind: "ack", Payload: 14}, func(mac.Frame) {
			if st.acked {
				return
			}
			st.acked = true
			st.revert.Cancel()
			obsHops.Inc()
			obsRetries.Add(int64(retries))
			// Both sides retune; the slower radio gates band entry.
			h.Sim.Schedule(h.SwitchDelay(), func() { done(retries, failsafes) })
		})
	})
	// Retransmit on silence.
	h.Sim.Schedule(cfg.AckTimeout, func() {
		if !st.acked {
			h.hop(retries+1, failsafes, st, done)
		}
	})
}

// Sweep runs the hop protocol across bands once and returns its timing.
// All randomness (losses, jitter) is drawn from rng.
func Sweep(rng *rand.Rand, bands []wifi.Band, cfg Config) SweepResult {
	cfg = cfg.withDefaults()
	sim := mac.NewSim()
	h := NewHopper(sim, rng, cfg)

	res := SweepResult{}
	var visitBand func(i int)
	visitBand = func(i int) {
		res.Visits = append(res.Visits, BandVisit{Band: bands[i], Enter: sim.Now()})
		// Exchange CSI packets for the dwell, then move on.
		sim.Schedule(cfg.Dwell, func() {
			v := &res.Visits[len(res.Visits)-1]
			v.Leave = sim.Now()
			if i+1 < len(bands) {
				h.Hop(func(retries, failsafes int) {
					v.Retries = retries
					if failsafes > 0 {
						v.FailSafed = true
					}
					visitBand(i + 1)
				})
			}
		})
	}

	// The sweep starts with both radios already on band 0.
	visitBand(0)
	sim.RunAll()
	res.Duration = sim.Now()
	res.Announces = h.Announces
	res.FailSafes = h.FailSafes
	res.RevertTime = h.RevertTime
	if obs.Enabled() {
		for i := range res.Visits {
			v := &res.Visits[i]
			obsDwellNs.Observe(float64(v.Leave - v.Enter))
		}
		obsSweepNs.Observe(float64(res.Duration))
	}
	return res
}

// SweepDurations runs n independent sweeps and returns their durations in
// seconds — the sample behind the Fig. 9a CDF.
func SweepDurations(rng *rand.Rand, bands []wifi.Band, cfg Config, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = Sweep(rng, bands, cfg).Duration.Seconds()
	}
	return out
}
