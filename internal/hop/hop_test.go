package hop

import (
	"math/rand"
	"testing"
	"time"

	"chronos/internal/stats"
	"chronos/internal/wifi"
)

func TestSweepVisitsEveryBand(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bands := wifi.USBands()
	res := Sweep(rng, bands, Config{})
	if len(res.Visits) < len(bands) {
		t.Fatalf("visited %d bands, want ≥ %d", len(res.Visits), len(bands))
	}
	// Every band must appear among the visits.
	seen := map[int]bool{}
	for _, v := range res.Visits {
		seen[v.Band.Channel] = true
	}
	for _, b := range bands {
		if !seen[b.Channel] {
			t.Errorf("band %v never visited", b)
		}
	}
}

func TestSweepDurationNearPaper(t *testing.T) {
	// Fig. 9a: median hop time over 35 bands ≈ 84 ms.
	rng := rand.New(rand.NewSource(2))
	durs := SweepDurations(rng, wifi.USBands(), Config{}, 50)
	med := stats.Median(durs)
	if med < 0.070 || med > 0.100 {
		t.Errorf("median sweep = %.1f ms, want ≈84 ms", med*1000)
	}
}

func TestSweepMonotoneVisits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	res := Sweep(rng, wifi.USBands(), Config{})
	for i := 1; i < len(res.Visits); i++ {
		if res.Visits[i].Enter < res.Visits[i-1].Leave {
			t.Fatalf("visit %d enters before previous leaves", i)
		}
	}
	for _, v := range res.Visits {
		if v.Leave < v.Enter {
			t.Fatalf("visit leaves before entering: %+v", v)
		}
	}
}

func TestSweepLossyLinkRetries(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	clean := Sweep(rng, wifi.USBands(), Config{LossProb: 1e-9})
	lossy := Sweep(rng, wifi.USBands(), Config{LossProb: 0.3})
	if lossy.Announces <= clean.Announces {
		t.Errorf("lossy link sent %d announces vs clean %d — retries missing",
			lossy.Announces, clean.Announces)
	}
	if lossy.Duration <= clean.Duration {
		t.Errorf("lossy sweep (%v) not slower than clean (%v)", lossy.Duration, clean.Duration)
	}
}

func TestSweepFailSafeOnTerribleLink(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// 85% loss: some bands should need the fail-safe, yet the sweep must
	// still terminate and cover all bands.
	res := Sweep(rng, wifi.USBands()[:10], Config{LossProb: 0.85, MaxRetries: 3})
	if res.FailSafes == 0 {
		t.Error("no fail-safes triggered at 85% loss")
	}
	if len(res.Visits) < 10 {
		t.Errorf("sweep did not complete: %d visits", len(res.Visits))
	}
}

func TestSweepDeterministicPerSeed(t *testing.T) {
	a := Sweep(rand.New(rand.NewSource(7)), wifi.USBands(), Config{})
	b := Sweep(rand.New(rand.NewSource(7)), wifi.USBands(), Config{})
	if a.Duration != b.Duration || a.Announces != b.Announces {
		t.Error("same seed produced different sweeps")
	}
}

func TestSweepDurationsLength(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	durs := SweepDurations(rng, wifi.USBands()[:5], Config{}, 7)
	if len(durs) != 7 {
		t.Fatalf("len = %d", len(durs))
	}
	for _, d := range durs {
		if d <= 0 {
			t.Error("non-positive duration")
		}
	}
}

func TestSweepScalesWithBandCount(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	short := stats.Median(SweepDurations(rng, wifi.USBands()[:10], Config{}, 20))
	full := stats.Median(SweepDurations(rng, wifi.USBands(), Config{}, 20))
	if full <= short {
		t.Errorf("35-band sweep (%v) not longer than 10-band (%v)", full, short)
	}
	// Roughly proportional: 35/10 = 3.5×.
	if ratio := full / short; ratio < 2.5 || ratio > 4.5 {
		t.Errorf("scaling ratio = %.2f, want ≈3.5", ratio)
	}
}

func TestSweepDwellRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cfg := Config{Dwell: 5 * time.Millisecond}
	res := Sweep(rng, wifi.USBands()[:3], cfg)
	for i, v := range res.Visits {
		if stay := v.Leave - v.Enter; stay < 5*time.Millisecond {
			t.Errorf("visit %d stayed only %v", i, stay)
		}
	}
}
